bench/bench_util.ml: Analyze Bechamel Benchmark Float Hashtbl Instance Measure Printf Staged String Test Time Toolkit Unix
