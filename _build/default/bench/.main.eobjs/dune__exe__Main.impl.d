bench/main.ml: Array Baselines Bench_util Events Filename Fun List Oodb Option Printf Sentinel String Sys Workloads
