bench/main.mli:
