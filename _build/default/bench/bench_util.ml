(* Measurement helpers shared by the experiments in main.ml. *)

open Bechamel
open Toolkit

(* Nanoseconds per run of [f], estimated by Bechamel's OLS fit. *)
let ns_per_run ?(quota = 0.3) name f =
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None () in
  let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let tbl = Analyze.all ols Instance.monotonic_clock results in
  match Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] with
  | [ est ] -> (
    match Analyze.OLS.estimates est with
    | Some (ns :: _) -> ns
    | Some [] | None -> Float.nan)
  | _ -> Float.nan

(* Wall-clock milliseconds for one execution of [f]; the result of [f] is
   returned alongside. *)
let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1000.)

let header title =
  Printf.printf "\n== %s %s\n" title
    (String.make (max 0 (72 - String.length title)) '=')

let row fmt = Printf.printf fmt

let fmt_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1_000. then Printf.sprintf "%.0f ns" ns
  else if ns < 1_000_000. then Printf.sprintf "%.2f us" (ns /. 1_000.)
  else Printf.sprintf "%.2f ms" (ns /. 1_000_000.)

let fmt_ms ms =
  if ms < 1. then Printf.sprintf "%.3f ms" ms else Printf.sprintf "%.1f ms" ms
