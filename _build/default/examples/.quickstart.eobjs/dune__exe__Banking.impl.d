examples/banking.ml: Array Events Format List Oodb Printf Sentinel Workloads
