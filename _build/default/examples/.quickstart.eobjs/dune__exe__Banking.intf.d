examples/banking.mli:
