examples/hospital.ml: Array Events List Oodb Option Printf Sentinel Workloads
