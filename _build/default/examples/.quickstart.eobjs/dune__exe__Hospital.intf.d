examples/hospital.mli:
