examples/network.ml: Events Oodb Printf Sentinel Workloads
