examples/network.mli:
