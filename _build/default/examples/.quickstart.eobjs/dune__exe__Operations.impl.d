examples/operations.ml: Events Filename Format List Oodb Printf Sentinel Sys Workloads
