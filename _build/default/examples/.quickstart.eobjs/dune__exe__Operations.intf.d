examples/operations.mli:
