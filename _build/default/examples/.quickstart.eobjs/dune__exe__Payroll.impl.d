examples/payroll.ml: Array Baselines Events List Oodb Printexc Printf Sentinel Workloads
