examples/payroll.mli:
