examples/portfolio.ml: Events Oodb Option Printf Sentinel Workloads
