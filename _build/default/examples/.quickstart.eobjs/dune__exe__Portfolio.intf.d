examples/portfolio.mli:
