examples/quickstart.ml: Events List Oodb Printf Sentinel
