examples/quickstart.mli:
