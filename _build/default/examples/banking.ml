(* The paper's §4.6 composite event, plus persistence of rules as
   first-class objects:

     Event* deposit  = new Primitive ("end Account::Deposit(float x)")
     Event* withdraw = new Primitive ("before Account::Withdraw(float x)")
     Event* DepWit   = new Sequence (deposit, withdraw)

   Demonstrated here:
   - signature-based event construction (Expr.of_signature);
   - a sequence event: deposit followed by an ATTEMPT to withdraw (bom);
   - a deferred rule that aborts overdrawing transactions at commit;
   - save / load / rehydrate: the rule object survives the reload and
     keeps firing once its condition/action names are re-registered.

   Run with: dune exec examples/banking.exe *)

module Db = Oodb.Db
module Value = Oodb.Value
module Transaction = Oodb.Transaction
module System = Sentinel.System
module Expr = Events.Expr
module W = Workloads.Banking

let register_functions sys =
  System.register_condition sys "always" (fun _ _ -> true);
  System.register_action sys "log-dep-wit" (fun _db inst ->
      Printf.printf "  !! DepWit detected: %s\n"
        (Format.asprintf "%a" Events.Detector.pp_instance inst));
  System.register_condition sys "overdrawn" (fun db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] -> Value.to_float (Db.get db occ.source "balance") < 0.
      | _ -> false);
  System.register_action sys "abort-overdraft" (fun _db _inst ->
      raise (Oodb.Errors.Rule_abort "insufficient funds"))

let build_rules sys account =
  (* Paper §4.6, verbatim signatures. *)
  let deposit = Expr.of_signature "end account::deposit(float x)" in
  let withdraw = Expr.of_signature "begin account::withdraw(float x)" in
  let dep_wit = Expr.seq deposit withdraw in
  ignore
    (System.create_rule sys ~name:"DepWit" ~monitor:[ account ] ~event:dep_wit
       ~condition:"always" ~action:"log-dep-wit" ());
  (* Overdraft guard: deferred, so it checks the final balance at commit. *)
  ignore
    (System.create_rule sys ~name:"no-overdraft"
       ~coupling:Sentinel.Coupling.Deferred
       ~monitor_classes:[ W.account_class ]
       ~event:(Expr.eom ~cls:W.account_class "withdraw")
       ~condition:"overdrawn" ~action:"abort-overdraft" ())

let () =
  let db = Db.create () in
  let sys = System.create db in
  W.install db;
  register_functions sys;
  let rng = Workloads.Prng.create 3 in
  let accounts = W.populate db rng ~accounts:4 in
  let account = accounts.(0) in
  Db.set db account "balance" (Value.Float 100.);
  build_rules sys account;

  print_endline "deposit(50) then withdraw(30): sequence detected --";
  ignore (Db.send db account "deposit" [ Value.Float 50. ]);
  ignore (Db.send db account "withdraw" [ Value.Float 30. ]);

  let balance () = Value.to_float (Db.get db account "balance") in
  Printf.printf "balance: %.2f\n" (balance ());

  print_endline "transaction: withdraw(1000) -- deferred rule aborts at commit:";
  (match
     Transaction.atomically db (fun () ->
         ignore (Db.send db account "withdraw" [ Value.Float 1000. ]))
   with
  | Ok () -> print_endline "committed (unexpected!)"
  | Error (Oodb.Errors.Rule_abort m) ->
    Printf.printf "aborted as expected: %s; balance restored to %.2f\n" m
      (balance ())
  | Error e -> raise e);

  (* --- persistence round trip ------------------------------------------- *)
  print_endline "saving database (rules included, as first-class objects)...";
  let text = Oodb.Persist.to_string db in
  let db2 = Db.create () in
  let sys2 = System.create db2 in
  W.install db2;
  register_functions sys2;
  Oodb.Persist.of_string db2 text;
  System.rehydrate sys2;
  Printf.printf "reloaded: %d rules restored\n" (List.length (System.rules sys2));
  print_endline "deposit(10) then withdraw(5) on the reloaded store:";
  ignore (Db.send db2 account "deposit" [ Value.Float 10. ]);
  ignore (Db.send db2 account "withdraw" [ Value.Float 5. ]);
  print_endline "done."
