(* The paper's §2.1 patient-database motivation: "when a patient class is
   defined (and instances are created), it is not known who may be
   interested in monitoring that patient; depending upon the diagnosis,
   additional groups or physicians may have to track the patient's
   progress."

   Demonstrated here:
   - patients exist long before any rule does;
   - a physician attaches a fever rule to ONE patient at runtime, without
     touching the patient class;
   - the rule's event is an aperiodic window: fevers only count between
     admit and discharge;
   - the alert runs detached (its own transaction), so a failing alert
     never disturbs the ward's updates.

   Run with: dune exec examples/hospital.exe *)

module Db = Oodb.Db
module Value = Oodb.Value
module System = Sentinel.System
module Expr = Events.Expr
module W = Workloads.Hospital

let () =
  let db = Db.create () in
  let sys = System.create db in
  W.install db;
  let rng = Workloads.Prng.create 11 in
  let ward = W.populate db rng ~patients:20 ~physicians:3 in

  (* A day of vitals before anyone monitors anything. *)
  Workloads.Dsl.apply_ops db (W.vitals_stream rng ward ~n:200 ());
  Printf.printf "200 vitals recorded, %d events generated, 0 rules exist\n"
    (Db.stats db).events_generated;

  (* Dr-0 takes over patient-5 and wants fever alerts while admitted. *)
  let patient = ward.patients.(5) in
  let doctor = ward.physicians.(0) in

  System.register_condition sys "febrile" (fun _db inst ->
      (* last constituent is the vitals reading inside the window *)
      match List.rev inst.Events.Detector.constituents with
      | occ :: _ -> (
        match occ.params with
        | [ temperature; _pulse ] -> Value.to_float temperature >= 39.0
        | _ -> false)
      | [] -> false);
  System.register_action sys "page-doctor" (fun db _inst ->
      ignore (Db.send db doctor "alert" []);
      Printf.printf "  !! page: %s has a fever (alert #%s)\n"
        (Value.to_str (Db.get db patient "name"))
        (Value.to_string (Db.get db doctor "alerts")));

  (* Window: admit .. discharge; each vitals reading inside it signals. *)
  let fever_event =
    Expr.aperiodic
      (Expr.eom ~cls:W.patient_class ~sources:[ patient ] "admit")
      (Expr.eom ~cls:W.patient_class ~sources:[ patient ] "record_vitals")
      (Expr.eom ~cls:W.patient_class ~sources:[ patient ] "discharge")
  in
  ignore
    (System.create_rule sys ~name:"fever-watch" ~coupling:Sentinel.Coupling.Detached
       ~monitor:[ patient ] ~event:fever_event ~condition:"febrile"
       ~action:"page-doctor" ());

  let vitals temperature pulse =
    ignore
      (Db.send db patient "record_vitals"
         [ Value.Float temperature; Value.Int pulse ])
  in
  print_endline "fever before admission -- window closed, silent:";
  vitals 39.5 100;
  print_endline "admit; normal reading; febrile reading:";
  ignore (Db.send db patient "admit" []);
  vitals 37.0 72;
  vitals 39.7 104;
  print_endline "discharge; febrile reading after -- silent again:";
  ignore (Db.send db patient "discharge" []);
  vitals 40.0 110;

  Printf.printf "doctor alert count: %s\n"
    (Value.to_string (Db.get db doctor "alerts"));

  (* The rest of the ward keeps flowing; untouched by the rule. *)
  Workloads.Dsl.apply_ops db (W.vitals_stream rng ward ~n:300 ());
  let rule = Option.get (System.find_rule sys "fever-watch") in
  Printf.printf "after 300 more ward-wide readings: rule fired %d time(s)\n"
    (System.rule_info sys rule).Sentinel.Rule.fired
