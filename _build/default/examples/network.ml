(* Network management — the paper's third motivating domain (§2.1), used
   here to exercise the temporal event operators:

   - NOT:      a link that acknowledged a probe but never sent its heartbeat
               before the next probe is suspicious;
   - PERIODIC: while an incident is open, poll every 50 time units;
   - PLUS:     escalate 200 time units after an incident opens, unless it
               was closed (the closing event resets via a fresh NOT window).

   Also demonstrates rule templates: the "flaky-link" template is declared
   once and bound per-link as links come under suspicion.

   Run with: dune exec examples/network.exe *)

module Db = Oodb.Db
module Value = Oodb.Value
module System = Sentinel.System
module Template = Sentinel.Template
module Expr = Events.Expr

let () =
  let db = Db.create () in
  let sys = System.create db in
  Db.define_class db
    (Oodb.Schema.define "link"
       ~attrs:[ ("name", Value.Str ""); ("status", Value.Str "up") ]
       ~methods:
         [
           ("probe", fun _ _ _ -> Value.Null);
           ("heartbeat", fun _ _ _ -> Value.Null);
           ("open_incident", Workloads.Dsl.setter "status");
           ("close_incident", Workloads.Dsl.setter "status");
         ]
       ~events:
         [
           ("probe", Oodb.Schema.On_end);
           ("heartbeat", Oodb.Schema.On_end);
           ("open_incident", Oodb.Schema.On_end);
           ("close_incident", Oodb.Schema.On_end);
         ]);
  let link name =
    Db.new_object db "link" ~attrs:[ ("name", Value.Str name) ]
  in
  let backbone = link "backbone" and uplink = link "uplink" in

  let say fmt = Printf.printf fmt in
  System.register_action sys "flag-flaky" (fun db inst ->
      match inst.Events.Detector.constituents with
      | occ :: _ ->
        say "  !! %s missed its heartbeat between probes\n"
          (Value.to_str (Db.get db occ.source "name"))
      | [] -> ());
  System.register_action sys "poll" (fun _ inst ->
      say "  .. periodic poll tick at t=%d\n" inst.Events.Detector.t_end);
  System.register_action sys "escalate" (fun _ inst ->
      say "  !! ESCALATION: incident still open at t=%d\n"
        inst.Events.Detector.t_end);

  (* Template declared once; bound per-link on demand. *)
  let flaky =
    Template.declare sys ~name:"flaky-link"
      ~event:
        (Expr.not_between (Expr.eom ~cls:"link" "probe")
           (Expr.eom ~cls:"link" "heartbeat")
           (Expr.eom ~cls:"link" "probe"))
      ~condition:"true" ~action:"flag-flaky" ()
  in
  ignore (Template.bind sys flaky [ backbone ]);

  (* Periodic polling while an incident is open. *)
  ignore
    (System.create_rule sys ~name:"incident-poll" ~monitor:[ backbone ]
       ~event:
         (Expr.periodic
            (Expr.eom ~cls:"link" ~sources:[ backbone ] "open_incident")
            50
            (Expr.eom ~cls:"link" ~sources:[ backbone ] "close_incident"))
       ~condition:"true" ~action:"poll" ());

  (* Escalation 200 units after an incident opens; closing first means the
     condition (status still "down") fails. *)
  System.register_condition sys "still-down" (fun db _ ->
      Value.to_str (Db.get db backbone "status") = "down");
  ignore
    (System.create_rule sys ~name:"escalation" ~monitor:[ backbone ]
       ~event:
         (Expr.plus (Expr.eom ~cls:"link" ~sources:[ backbone ] "open_incident") 200)
       ~condition:"still-down" ~action:"escalate" ());

  let send o m args = ignore (Db.send db o m args) in
  say "probe; heartbeat; probe -- healthy, silent:\n";
  send backbone "probe" [];
  send backbone "heartbeat" [];
  send backbone "probe" [];
  say "probe; probe with no heartbeat -- flaky:\n";
  send backbone "probe" [];
  say "(uplink misses heartbeats too, but nothing is bound to it)\n";
  send uplink "probe" [];
  send uplink "probe" [];

  say "opening incident on backbone at t=%d:\n" (Db.now db);
  send backbone "open_incident" [ Value.Str "down" ];
  let t0 = Db.now db in
  say "time passes (polls every 50):\n";
  System.advance_time sys (t0 + 120);
  say "incident closed at t=%d; polling stops:\n" (t0 + 120);
  send backbone "close_incident" [ Value.Str "up" ];
  System.advance_time sys (t0 + 199);
  say "t+200 arrives -- escalation rule triggers but condition sees the \
       incident closed:\n";
  System.advance_time sys (t0 + 250);
  say "reopening and letting it rot:\n";
  send backbone "open_incident" [ Value.Str "down" ];
  System.advance_time sys (Db.now db + 300);
  say "done.\n"
