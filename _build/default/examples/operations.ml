(* Operating a Sentinel store: the administration & tooling tour.

   - runtime schema evolution: promote a passive legacy method to an event
     generator, add an attribute with backfill;
   - static rule analysis: triggering graph, termination verdict;
   - execution audit: committed firings as queryable objects;
   - multi-session isolation: two clients, a lock conflict, abort+retry;
   - integrity verification and reachability GC;
   - WAL checkpointing.

   Run with: dune exec examples/operations.exe *)

module Db = Oodb.Db
module Value = Oodb.Value
module Schema = Oodb.Schema
module System = Sentinel.System
module Expr = Events.Expr
module Session = Oodb.Session

let () =
  let db = Db.create () in
  let sys = System.create db in

  (* A legacy class designed with no monitoring in mind. *)
  Db.define_class db
    (Schema.define "device"
       ~attrs:[ ("name", Value.Str ""); ("temp", Value.Float 20.) ]
       ~methods:[ ("report_temp", Workloads.Dsl.setter "temp") ]);
  let boiler = Db.new_object db "device" ~attrs:[ ("name", Value.Str "boiler") ] in

  print_endline "== schema evolution ==";
  let backfilled =
    Oodb.Evolution.add_attribute db ~cls:"device" ~attr:"alarm_count"
      ~default:(Value.Int 0)
  in
  Printf.printf "added device.alarm_count, backfilled %d instance(s)\n" backfilled;
  Oodb.Evolution.add_event_generator db ~cls:"device" ~meth:"report_temp"
    Schema.On_end;
  print_endline "promoted report_temp to an event generator at runtime";

  (* Rules over the evolved class; actions declare their effects for the
     static analysis. *)
  System.register_condition sys "too-hot" (fun db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] ->
        ignore db;
        Value.to_float (List.hd occ.params) > 90.
      | _ -> false);
  System.register_action sys "raise-alarm"
    (fun db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] ->
        let n = Value.to_int (Db.get db occ.source "alarm_count") in
        Db.set db occ.source "alarm_count" (Value.Int (n + 1))
      | _ -> ());
  let rule =
    System.create_rule sys ~name:"overheat" ~monitor_classes:[ "device" ]
      ~event:(Events.Parser.parse "end device::report_temp where $0 > 90")
      ~condition:"true" ~action:"raise-alarm" ()
  in
  ignore rule;

  (* a deliberately looping pair so the analysis has something to flag:
     re-probe's action declares it may send report_temp again *)
  System.register_action sys
    ~may_send:[ ("report_temp", Oodb.Types.After) ]
    "re-probe"
    (fun _ _ -> ());
  let reprobe =
    System.create_rule sys ~name:"re-probe-loop" ~enabled:false
      ~event:(Expr.eom ~cls:"device" "report_temp")
      ~condition:"true" ~action:"re-probe" ()
  in
  print_endline "\n== static analysis ==";
  Format.printf "%a" Sentinel.Analysis.pp_report sys;
  System.delete_rule sys reprobe;
  print_endline "after deleting the looping rule:";
  Format.printf "%a" Sentinel.Analysis.pp_report sys;

  print_endline "\n== audit ==";
  let audit = Sentinel.Audit.attach ~persist:true sys in
  ignore (Db.send db boiler "report_temp" [ Value.Float 50. ]); (* filtered out *)
  ignore (Db.send db boiler "report_temp" [ Value.Float 95. ]);
  ignore (Db.send db boiler "report_temp" [ Value.Float 99. ]);
  Printf.printf "in-memory audit entries: %d; persistent firing objects: %d\n"
    (Sentinel.Audit.count audit)
    (List.length (Sentinel.Audit.stored_firings sys));
  Printf.printf "boiler alarm_count = %s\n"
    (Value.to_string (Db.get db boiler "alarm_count"));

  print_endline "\n== sessions (strict 2PL, no-wait) ==";
  let m = Session.manager db in
  let alice = Session.session ~name:"alice" m in
  let bob = Session.session ~name:"bob" m in
  Session.begin_ alice;
  Session.begin_ bob;
  Session.set alice boiler "temp" (Value.Float 42.);
  (match Session.get bob boiler "temp" with
  | _ -> print_endline "bob read under alice's lock (unexpected!)"
  | exception Oodb.Errors.Lock_conflict (_, holder) ->
    Printf.printf "bob's read conflicts (%s); bob aborts and retries\n" holder;
    Session.abort bob);
  Session.commit alice;
  Session.begin_ bob;
  Printf.printf "after alice commits, bob reads temp = %s\n"
    (Value.to_string (Session.get bob boiler "temp"));
  Session.commit bob;

  print_endline "\n== integrity and garbage ==";
  (match Oodb.Verify.check ~quiescent:true db with
  | Ok () -> print_endline "integrity check: OK"
  | Error ps -> List.iter print_endline ps);
  for _ = 1 to 5 do
    ignore (Db.new_object db "device")
  done;
  let collected = Oodb.Gc.collect db ~roots:[ boiler ] in
  Printf.printf "GC collected %d unreachable object(s); rules survive (class \
                 consumers are roots)\n"
    collected;
  (match Oodb.Verify.check ~quiescent:true db with
  | Ok () -> print_endline "integrity after GC: OK"
  | Error ps -> List.iter print_endline ps);

  print_endline "\n== WAL checkpoint ==";
  let wal_path = Filename.temp_file "ops" ".wal" in
  let snap_path = Filename.temp_file "ops" ".db" in
  let wal = Oodb.Wal.attach db wal_path in
  ignore (Db.send db boiler "report_temp" [ Value.Float 91. ]);
  Printf.printf "1 update logged: %d batch(es) in the WAL\n"
    (Oodb.Wal.batches_written wal);
  Oodb.Wal.checkpoint wal ~snapshot:snap_path;
  Printf.printf "checkpointed to %s; log truncated\n" (Filename.basename snap_path);
  Oodb.Wal.detach wal;
  Sys.remove wal_path;
  Sys.remove snap_path;
  print_endline "done."
