(* The paper's §5 worked example — the Salary-check rule in all three
   systems, plus the Figure 9/10 rules:

     Salary check: an employee's salary is always less than his/her
                   manager's salary.

   - Sentinel expresses it ONCE as a rule triggered by a disjunction of
     events from two classes (employee and manager), subscribed at class
     level.
   - Ode needs two complementary hard constraints, one per class (Fig. 11).
   - ADAM needs two rule objects, one per active-class (Fig. 13).

   Also shown: the Figure 10 instance-level IncomeLevel rule, which keeps
   one specific employee's income equal to his manager's.

   Run with: dune exec examples/payroll.exe *)

module Db = Oodb.Db
module Value = Oodb.Value
module System = Sentinel.System
module Expr = Events.Expr
module W = Workloads.Payroll

let salary db oid = Value.to_float (Db.get db oid "salary")

(* An employee violates Salary-check when a manager is set and earns less. *)
let employee_ok db emp =
  match Db.get db emp "mgr" with
  | Value.Obj mgr -> salary db emp < salary db mgr
  | _ -> true

let manager_ok db mgr =
  (* the manager must out-earn every direct report *)
  Oodb.Query.select db W.employee_class (Oodb.Query.Eq ("mgr", Value.Obj mgr))
  |> List.for_all (fun emp -> salary db emp < salary db mgr)

(* --- 1. Sentinel: one rule, spanning both classes ----------------------- *)

let sentinel_version () =
  print_endline "== Sentinel: one rule, one definition, both classes ==";
  let db = Db.create () in
  let sys = System.create db in
  W.install db;
  let rng = Workloads.Prng.create 7 in
  let pop = W.populate db rng ~managers:3 ~employees:12 in

  System.register_condition sys "salary-check-violated" (fun db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] ->
        if Db.is_instance_of db occ.source W.manager_class then
          not (manager_ok db occ.source)
        else not (employee_ok db occ.source)
      | _ -> false);
  System.register_action sys "reject" (fun _db _inst ->
      raise (Oodb.Errors.Rule_abort "salary check violated"));

  (* Disjunction of the two classes' set_salary events; class-level
     subscription to employee covers managers too (manager <: employee),
     but we keep the paper's explicit two-class form. *)
  let event =
    Expr.disj
      (Expr.eom ~cls:W.employee_class "set_salary")
      (Expr.eom ~cls:W.manager_class "set_salary")
  in
  ignore
    (System.create_rule sys ~name:"Salary-check"
       ~monitor_classes:[ W.employee_class ]
       ~event ~condition:"salary-check-violated" ~action:"reject" ());

  let fred = pop.employees.(0) in
  let mgr = Value.to_oid (Db.get db fred "mgr") in
  Printf.printf "fred earns %.0f, manager earns %.0f\n" (salary db fred)
    (salary db mgr);
  (* A legal raise commits; an illegal one aborts the transaction. *)
  let attempt amount =
    let result =
      Oodb.Transaction.atomically db (fun () ->
          ignore (Db.send db fred "set_salary" [ Value.Float amount ]))
    in
    Printf.printf "set_salary(%.0f): %s (salary now %.0f)\n" amount
      (match result with
      | Ok () -> "committed"
      | Error (Oodb.Errors.Rule_abort m) -> "ABORTED: " ^ m
      | Error e -> "error: " ^ Printexc.to_string e)
      (salary db fred)
  in
  attempt (salary db mgr -. 1.);
  attempt (salary db mgr +. 500.)

(* --- 2. Ode: two complementary constraints (Figure 11) ------------------- *)

let ode_version () =
  print_endline "\n== Ode baseline: two hard constraints, fixed at class definition ==";
  let db = Db.create () in
  W.install db;
  let ode = Baselines.Ode.create db in
  (* Must be declared before any instance exists. *)
  Baselines.Ode.declare_constraint ode ~cls:W.employee_class
    ~name:"sal < mgr->salary()" employee_ok;
  Baselines.Ode.declare_constraint ode ~cls:W.manager_class
    ~name:"sal_greater_than_all_employees()" manager_ok;
  let rng = Workloads.Prng.create 7 in
  let pop = W.populate db rng ~managers:3 ~employees:12 in
  let fred = pop.employees.(0) in
  let mgr = Value.to_oid (Db.get db fred "mgr") in
  let attempt amount =
    let result =
      Oodb.Transaction.atomically db (fun () ->
          ignore (Baselines.Ode.send ode fred "set_salary" [ Value.Float amount ]))
    in
    Printf.printf "set_salary(%.0f): %s\n" amount
      (match result with
      | Ok () -> "committed"
      | Error (Oodb.Errors.Rule_abort m) -> "ABORTED: " ^ m
      | Error e -> "error: " ^ Printexc.to_string e)
  in
  attempt (salary db mgr -. 1.);
  attempt (salary db mgr +. 500.);
  Printf.printf "constraint evaluations so far: %d\n"
    (Baselines.Ode.checks_performed ode)

(* --- 3. ADAM: two rule objects, centralized checking (Figure 13) --------- *)

let adam_version () =
  print_endline "\n== ADAM baseline: two rules, centralized dispatch ==";
  let db = Db.create () in
  W.install db;
  let adam = Baselines.Adam.create db in
  let reject_if bad _name =
    ( (fun db (occ : Oodb.Types.occurrence) -> bad db occ.source),
      fun _db (_occ : Oodb.Types.occurrence) ->
        raise (Oodb.Errors.Rule_abort "Invalid Salary") )
  in
  let c1, a1 = reject_if (fun db o -> not (employee_ok db o)) "emp" in
  ignore
    (Baselines.Adam.add_rule adam ~name:"employee-salary-rule"
       ~active_class:W.employee_class ~meth:"set_salary" ~condition:c1 ~action:a1
       ());
  let c2, a2 = reject_if (fun db o -> not (manager_ok db o)) "mgr" in
  ignore
    (Baselines.Adam.add_rule adam ~name:"manager-salary-rule"
       ~active_class:W.manager_class ~meth:"set_salary" ~condition:c2 ~action:a2
       ());
  let rng = Workloads.Prng.create 7 in
  let pop = W.populate db rng ~managers:3 ~employees:12 in
  let fred = pop.employees.(0) in
  let mgr = Value.to_oid (Db.get db fred "mgr") in
  let attempt amount =
    let result =
      Oodb.Transaction.atomically db (fun () ->
          ignore (Db.send db fred "set_salary" [ Value.Float amount ]))
    in
    Printf.printf "set_salary(%.0f): %s\n" amount
      (match result with
      | Ok () -> "committed"
      | Error (Oodb.Errors.Rule_abort m) -> "ABORTED: " ^ m
      | Error e -> "error: " ^ Printexc.to_string e)
  in
  attempt (salary db mgr -. 1.);
  attempt (salary db mgr +. 500.);
  Printf.printf "(rule, event) scans so far: %d\n" (Baselines.Adam.scans adam)

(* --- 4. Figure 10: instance-level IncomeLevel rule ------------------------ *)

let income_level () =
  print_endline "\n== Figure 10: instance-level IncomeLevel rule ==";
  let db = Db.create () in
  let sys = System.create db in
  W.install db;
  let fred =
    Db.new_object db W.employee_class ~attrs:[ ("name", Value.Str "Fred") ]
  in
  let mike =
    Db.new_object db W.manager_class ~attrs:[ ("name", Value.Str "Mike") ]
  in
  System.register_condition sys "incomes-differ" (fun db _ ->
      Value.to_float (Db.get db fred "income")
      <> Value.to_float (Db.get db mike "income"));
  System.register_action sys "make-equal" (fun db inst ->
      (* set the other party's income to the one just changed *)
      match inst.Events.Detector.constituents with
      | [ occ ] ->
        let target = if Oodb.Oid.equal occ.source fred then mike else fred in
        Db.set db target "income" (Db.get db occ.source "income");
        Printf.printf "  !! IncomeLevel equalized incomes at %s\n"
          (Value.to_string (Db.get db target "income"))
      | _ -> ());
  let equal_event =
    Expr.disj
      (Expr.eom ~cls:W.employee_class "change_income")
      (Expr.eom ~cls:W.manager_class "change_income")
  in
  ignore
    (System.create_rule sys ~name:"IncomeLevel"
       ~monitor:[ fred; mike ] (* Fred.Subscribe(IncomeLevel); Mike.Subscribe(...) *)
       ~event:equal_event ~condition:"incomes-differ" ~action:"make-equal" ());
  ignore (Db.send db fred "change_income" [ Value.Float 4200. ]);
  Printf.printf "fred=%s mike=%s\n"
    (Value.to_string (Db.get db fred "income"))
    (Value.to_string (Db.get db mike "income"));
  ignore (Db.send db mike "change_income" [ Value.Float 5100. ]);
  Printf.printf "fred=%s mike=%s\n"
    (Value.to_string (Db.get db fred "income"))
    (Value.to_string (Db.get db mike "income"))

let () =
  sentinel_version ();
  ode_version ();
  adam_version ();
  income_level ()
