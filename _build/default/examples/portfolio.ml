(* The paper's §2.1 motivating example — the external monitoring viewpoint.

   Three classes (Stock, Portfolio, FinancialInfo) are defined independently
   of any rule.  Later, at runtime, the Purchase rule is created:

     RULE Purchase :
       WHEN IBM!SetPrice And DowJones!SetValue
       IF   IBM!GetPrice < $80 and DowJones!Change < 3.4%
       THEN Parker!PurchaseIBMStock

   The rule monitors two objects of *different classes* through a composite
   (conjunction) event whose primitives are filtered to those instances —
   something neither Ode nor ADAM could express directly.

   Run with: dune exec examples/portfolio.exe *)

module Db = Oodb.Db
module Value = Oodb.Value
module System = Sentinel.System
module Expr = Events.Expr
module W = Workloads.Stock_market

let () =
  let db = Db.create () in
  let sys = System.create db in
  W.install db;

  let ibm =
    Db.new_object db W.stock_class
      ~attrs:[ ("symbol", Value.Str "IBM"); ("price", Value.Float 95.) ]
  in
  let dow_jones =
    Db.new_object db W.financial_info_class
      ~attrs:[ ("name", Value.Str "DowJones") ]
  in
  let parker =
    Db.new_object db W.portfolio_class ~attrs:[ ("owner", Value.Str "Parker") ]
  in

  (* WHEN: conjunction of two primitives, each narrowed to one instance. *)
  let purchase_event =
    Expr.conj
      (Expr.eom ~cls:W.stock_class ~sources:[ ibm ] "set_price")
      (Expr.eom ~cls:W.financial_info_class ~sources:[ dow_jones ] "set_value")
  in

  (* IF: conditions read the monitored objects' current state. *)
  System.register_condition sys "ibm-cheap-and-dow-calm" (fun db _inst ->
      Value.to_float (Db.get db ibm "price") < 80.
      && Value.to_float (Db.get db dow_jones "change") < 3.4);

  (* THEN: the Parker portfolio buys 10 shares of IBM. *)
  System.register_action sys "parker-buys-ibm" (fun db _inst ->
      ignore (Db.send db parker "purchase" [ Value.Obj ibm; Value.Int 10 ]);
      Printf.printf "  !! Purchase fired: Parker now holds %s shares, cash %s\n"
        (Value.to_string (Db.get db parker "shares"))
        (Value.to_string (Db.get db parker "cash")));

  let rule =
    System.create_rule sys ~name:"Purchase"
      ~monitor:[ ibm; dow_jones ] (* subscription spans two classes *)
      ~event:purchase_event ~condition:"ibm-cheap-and-dow-calm"
      ~action:"parker-buys-ibm" ()
  in
  ignore rule;

  let tick label oid meth args =
    Printf.printf "%s\n" label;
    ignore (Db.send db oid meth args)
  in
  tick "IBM!SetPrice(85) -- only half the conjunction:" ibm "set_price"
    [ Value.Float 85. ];
  tick "DowJones!SetValue(3100, +1.2%) -- conjunction completes, but IBM >= $80:"
    dow_jones "set_value"
    [ Value.Float 3100.; Value.Float 1.2 ];
  tick
    "IBM!SetPrice(75) -- cheap now; fires at once (the recent-context \
     detector still holds the last DowJones instance):"
    ibm "set_price" [ Value.Float 75. ];
  tick "DowJones!SetValue(3150, +0.9%) -- fires again:" dow_jones "set_value"
    [ Value.Float 3150.; Value.Float 0.9 ];

  (* Other market traffic does not disturb the rule: unsubscribed objects. *)
  let rng = Workloads.Prng.create 42 in
  let market = W.populate db rng ~stocks:50 ~indexes:3 ~portfolios:5 in
  Workloads.Dsl.apply_ops db (W.ticks rng market ~n:1000);
  Printf.printf
    "after 1000 unrelated market ticks the rule fired %d time(s) total\n"
    (System.rule_info sys (Option.get (System.find_rule sys "Purchase")))
      .Sentinel.Rule.fired
