(* Quickstart: the smallest useful active-database program.

   1. Define a reactive class whose event interface marks set_salary as an
      end-of-method event generator (paper Figure 8).
   2. Create a rule at runtime — no class recompilation — and subscribe it
      to one specific instance (paper §4.7, instance-level rules).
   3. Send messages; watch the rule fire only when its condition holds.

   Run with: dune exec examples/quickstart.exe *)

module Db = Oodb.Db
module Value = Oodb.Value
module Schema = Oodb.Schema
module System = Sentinel.System
module Expr = Events.Expr

let () =
  let db = Db.create () in
  let sys = System.create db in

  (* A reactive employee class: the event interface is part of the class
     definition; everything else about rules happens at runtime. *)
  Db.define_class db
    (Schema.define "employee"
       ~attrs:[ ("name", Value.Str ""); ("salary", Value.Float 0.) ]
       ~methods:
         [
           ( "set_salary",
             fun db self args ->
               (match args with
               | [ v ] -> Db.set db self "salary" v
               | _ -> failwith "set_salary: arity");
               Value.Null );
           ("get_salary", fun db self _ -> Db.get db self "salary");
         ]
       ~events:[ ("set_salary", Schema.On_end) ]);

  let fred =
    Db.new_object db "employee"
      ~attrs:[ ("name", Value.Str "Fred"); ("salary", Value.Float 2000.) ]
  in

  (* Condition and action are registered under names; the rule object only
     stores the names, so it can persist and be re-linked after a reload. *)
  System.register_condition sys "raise-above-5k" (fun _db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] -> (
        match occ.params with
        | [ amount ] -> Value.to_float amount > 5000.
        | _ -> false)
      | _ -> false);
  System.register_action sys "report" (fun db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] ->
        Printf.printf "  !! rule fired: %s got a raise to %s\n"
          (Value.to_str (Db.get db occ.source "name"))
          (Value.to_string (List.hd occ.params))
      | _ -> ());

  let rule =
    System.create_rule sys ~name:"watch-fred" ~monitor:[ fred ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"raise-above-5k" ~action:"report" ()
  in

  print_endline "sending set_salary(3000.) -- below threshold, silent:";
  ignore (Db.send db fred "set_salary" [ Value.Float 3000. ]);
  print_endline "sending set_salary(9000.) -- above threshold:";
  ignore (Db.send db fred "set_salary" [ Value.Float 9000. ]);

  (* Rules are first-class objects: inspect and disable like any object. *)
  Printf.printf "rule object %s, fired %d time(s)\n"
    (Oodb.Oid.to_string rule)
    (System.rule_info sys rule).Sentinel.Rule.fired;
  System.disable sys rule;
  print_endline "rule disabled; sending set_salary(9999.) -- silent:";
  ignore (Db.send db fred "set_salary" [ Value.Float 9999. ]);
  print_endline "done."
