lib/baselines/adam.ml: List Oodb String
