lib/baselines/adam.mli: Oodb
