lib/baselines/ode.ml: Hashtbl List Oodb Option Printf String
