lib/baselines/ode.mli: Oodb
