module Db = Oodb.Db
module Oid = Oodb.Oid
module Errors = Oodb.Errors
module Schema = Oodb.Schema

type rule = {
  r_name : string;
  r_active_class : string;
  r_meth : string;
  r_modifier : Oodb.Types.modifier;
  mutable r_enabled : bool;
  mutable r_disabled_for : Oid.Set.t;
  r_condition : Db.t -> Oodb.Types.occurrence -> bool;
  r_action : Db.t -> Oodb.Types.occurrence -> unit;
  mutable r_fired : int;
}

type t = {
  db : Db.t;
  mutable rules : rule list;
  mutable n_scans : int;
}

let matches t (r : rule) (occ : Oodb.Types.occurrence) =
  r.r_enabled
  && r.r_modifier = occ.modifier
  && String.equal r.r_meth occ.meth
  && Schema.is_subclass t.db ~sub:occ.source_class ~super:r.r_active_class
  && not (Oid.Set.mem occ.source r.r_disabled_for)

let on_event t _db (occ : Oodb.Types.occurrence) =
  (* Centralized checking: every rule is examined for every event. *)
  let consider r =
    t.n_scans <- t.n_scans + 1;
    if matches t r occ && r.r_condition t.db occ then begin
      r.r_fired <- r.r_fired + 1;
      r.r_action t.db occ
    end
  in
  List.iter consider t.rules

let create db =
  let t = { db; rules = []; n_scans = 0 } in
  Db.add_tap db (fun db occ -> on_event t db occ);
  t

let add_rule t ~name ~active_class ~meth ?(modifier = Oodb.Types.After)
    ?(enabled = true) ~condition ~action () =
  if not (Db.has_class t.db active_class) then
    raise (Errors.No_such_class active_class);
  let r =
    {
      r_name = name;
      r_active_class = active_class;
      r_meth = meth;
      r_modifier = modifier;
      r_enabled = enabled;
      r_disabled_for = Oid.Set.empty;
      r_condition = condition;
      r_action = action;
      r_fired = 0;
    }
  in
  t.rules <- t.rules @ [ r ];
  r

let remove_rule t r = t.rules <- List.filter (fun x -> x != r) t.rules
let enable r = r.r_enabled <- true
let disable r = r.r_enabled <- false
let disable_for _t r oid = r.r_disabled_for <- Oid.Set.add oid r.r_disabled_for
let enable_for _t r oid = r.r_disabled_for <- Oid.Set.remove oid r.r_disabled_for
let rule_name r = r.r_name
let fired r = r.r_fired
let rule_count t = List.length t.rules
let scans t = t.n_scans
let total_fired t = List.fold_left (fun acc r -> acc + r.r_fired) 0 t.rules
