(** ADAM-style baseline: centralized runtime rules.

    Models the second approach of the paper's §1/§5.1 (and Figures 12–13):
    everything happens at runtime, rules are objects with an [active-class]
    attribute, and rule checking is {e centralized} — every generated event
    is matched against {e every} rule in the system ("this is in contrast to
    adopting a centralized approach where all rules defined in the system
    are checked when events are generated", §3.5).

    Reproduced consequences:

    - rules are class-level only: a rule applies to all instances of its
      active class (and subclasses); per-instance scoping is expressed
      negatively through the [disabled-for] list, as in ADAM;
    - a rule spanning two classes needs two rule objects sharing an event
      description (Figure 13);
    - dispatch cost grows with the total number of rules, measured by
      {!scans}: experiment E2's contrast with Sentinel's subscription.

    The baseline taps the substrate's event stream (every occurrence,
    regardless of subscriptions), so monitored classes still declare event
    interfaces — in ADAM every method invocation is a potential event. *)

type rule

type t

val create : Oodb.Db.t -> t
(** Installs the centralized tap on the database. *)

val add_rule :
  t ->
  name:string ->
  active_class:string ->
  meth:string ->
  ?modifier:Oodb.Types.modifier ->
  ?enabled:bool ->
  condition:(Oodb.Db.t -> Oodb.Types.occurrence -> bool) ->
  action:(Oodb.Db.t -> Oodb.Types.occurrence -> unit) ->
  unit ->
  rule
(** Runtime rule creation ([new ... => integrity-rule]).  [modifier]
    defaults to [After] (ADAM's [when([after])]). *)

val remove_rule : t -> rule -> unit
val enable : rule -> unit
val disable : rule -> unit

val disable_for : t -> rule -> Oodb.Oid.t -> unit
(** Add an instance to the rule's [disabled-for] list. *)

val enable_for : t -> rule -> Oodb.Oid.t -> unit

val rule_name : rule -> string
val fired : rule -> int

val rule_count : t -> int

val scans : t -> int
(** Total (event, rule) matching attempts — the centralized-dispatch cost. *)

val total_fired : t -> int
