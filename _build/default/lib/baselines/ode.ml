module Db = Oodb.Db
module Oid = Oodb.Oid
module Value = Oodb.Value
module Errors = Oodb.Errors
module Schema = Oodb.Schema

type kind = Hard | Soft

type constr = {
  c_name : string;
  c_kind : kind;
  c_check : Db.t -> Oid.t -> bool;
  c_repair : (Db.t -> Oid.t -> unit) option;
}

type t = {
  db : Db.t;
  per_class : (string, constr list) Hashtbl.t; (* declaration order *)
  mutable n_checks : int;
  mutable n_violations : int;
}

let create db = { db; per_class = Hashtbl.create 16; n_checks = 0; n_violations = 0 }

let class_constraints t cls =
  Option.value ~default:[] (Hashtbl.find_opt t.per_class cls)

(* Constraints applicable to an instance: own class first, then inherited. *)
let applicable t cls =
  List.concat_map (class_constraints t) (Schema.ancestry t.db cls)

let constraints_of t cls = List.map (fun c -> c.c_name) (applicable t cls)

let make_constraint t ~cls ~name ~kind ~repair check =
  if not (Db.has_class t.db cls) then raise (Errors.No_such_class cls);
  if List.exists (fun c -> String.equal c.c_name name) (applicable t cls) then
    Errors.type_error "constraint %S already declared for %s" name cls;
  (match (kind, repair) with
  | Soft, None -> Errors.type_error "soft constraint %S needs a repair action" name
  | _ -> ());
  { c_name = name; c_kind = kind; c_check = check; c_repair = repair }

let attach t cls c =
  Hashtbl.replace t.per_class cls (class_constraints t cls @ [ c ])

let declare_constraint t ~cls ~name ?(kind = Hard) ?repair check =
  if Db.extent t.db ~deep:true cls <> [] then
    Errors.type_error
      "class %s already has instances; Ode-style constraints are fixed at \
       class-definition time (use add_constraint_with_rebuild)"
      cls;
  attach t cls (make_constraint t ~cls ~name ~kind ~repair check)

let eval_constraint t oid c =
  t.n_checks <- t.n_checks + 1;
  if not (c.c_check t.db oid) then begin
    t.n_violations <- t.n_violations + 1;
    match (c.c_kind, c.c_repair) with
    | Hard, _ ->
      raise
        (Errors.Rule_abort
           (Printf.sprintf "hard constraint %S violated by %s" c.c_name
              (Oid.to_string oid)))
    | Soft, Some repair ->
      repair t.db oid;
      t.n_checks <- t.n_checks + 1;
      if not (c.c_check t.db oid) then
        raise
          (Errors.Rule_abort
             (Printf.sprintf
                "soft constraint %S still violated by %s after repair" c.c_name
                (Oid.to_string oid)))
    | Soft, None -> assert false
  end

let check_object t oid =
  let cls = Db.class_of t.db oid in
  List.iter (eval_constraint t oid) (applicable t cls)

let add_constraint_with_rebuild t ~cls ~name ?(kind = Hard) ?repair check =
  let c = make_constraint t ~cls ~name ~kind ~repair check in
  attach t cls c;
  (* The "recompilation" pass: every stored instance is revisited and
     re-validated against the new constraint set. *)
  let instances = Db.extent t.db ~deep:true cls in
  List.iter (fun oid -> eval_constraint t oid c) instances;
  List.length instances

let send t receiver meth args =
  let result = Db.send t.db receiver meth args in
  check_object t receiver;
  result

let checks_performed t = t.n_checks
let violations t = t.n_violations
