(** Ode-style baseline: rules as constraints compiled into class definitions.

    Models the first approach of the paper's §1/§5.1: (parameterized) rules
    are specified only at class-definition time and pre-processed into the
    host code.  Consequences reproduced here:

    - constraints attach to exactly one class (a rule spanning classes must
      be declared once per class — Figure 11's two complementary
      constraints);
    - constraints are fixed once the class has instances; adding one to a
      live class requires a {e rebuild} (re-validating and re-linking every
      stored instance), which {!add_constraint_with_rebuild} performs and
      which experiment E7 measures;
    - checking is inlined at every method return on the receiving object
      (no event objects, no subscriptions): use {!send} instead of
      {!Oodb.Db.send} for objects of constrained classes;
    - hard constraints abort the transaction when violated; soft
      constraints run a repair action.

    Constraints are inherited by subclasses, as in Ode. *)

type kind = Hard | Soft

type t

val create : Oodb.Db.t -> t

val declare_constraint :
  t ->
  cls:string ->
  name:string ->
  ?kind:kind ->
  ?repair:(Oodb.Db.t -> Oodb.Oid.t -> unit) ->
  (Oodb.Db.t -> Oodb.Oid.t -> bool) ->
  unit
(** Attach a constraint (a per-instance invariant) to a class.  Allowed only
    while the class has no instances — the compile-time restriction.
    @raise Oodb.Errors.Type_error when instances already exist, when the
    name is taken, or when a [Soft] constraint lacks a [repair]. *)

val add_constraint_with_rebuild :
  t ->
  cls:string ->
  name:string ->
  ?kind:kind ->
  ?repair:(Oodb.Db.t -> Oodb.Oid.t -> unit) ->
  (Oodb.Db.t -> Oodb.Oid.t -> bool) ->
  int
(** "Recompile": attach a constraint to a class that already has instances
    by re-validating every stored instance (deep extent).  Returns the
    number of instances revisited.  Instances violating a [Hard] constraint
    raise {!Oodb.Errors.Rule_abort} immediately. *)

val send : t -> Oodb.Oid.t -> string -> Oodb.Value.t list -> Oodb.Value.t
(** Dispatch a message, then check every constraint applicable to the
    receiver (its class chain).  Hard violation ⇒ {!Oodb.Errors.Rule_abort};
    soft violation ⇒ run the repair, then re-check once (a still-violated
    soft constraint aborts). *)

val check_object : t -> Oodb.Oid.t -> unit
(** Run the receiver-side checks without sending a message. *)

val constraints_of : t -> string -> string list
(** Names of the constraints applicable to instances of a class (inherited
    ones included). *)

val checks_performed : t -> int
(** Total constraint evaluations, for the benchmarks. *)

val violations : t -> int
