lib/core/sentinel.ml: Analysis Audit Coupling Function_registry Notifiable Rule Rule_dsl Scheduler Sentinel_classes System Template
