lib/core/analysis.ml: Buffer Expr Format Function_registry Hashtbl Import List Oid Printf Rule String System
