lib/core/analysis.mli: Format Import Oid System
