lib/core/audit.ml: Db Detector Format Import List Oid Oodb Printexc Rule System Value
