lib/core/audit.mli: Detector Import Oid Oodb System
