lib/core/coupling.ml: Format Oodb
