lib/core/coupling.mli: Format
