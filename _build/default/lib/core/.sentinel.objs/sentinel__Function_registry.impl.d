lib/core/function_registry.ml: Db Detector Errors Hashtbl Import List Oodb
