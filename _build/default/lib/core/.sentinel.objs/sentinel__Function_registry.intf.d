lib/core/function_registry.mli: Db Detector Import Oodb
