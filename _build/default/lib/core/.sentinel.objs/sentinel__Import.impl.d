lib/core/import.ml: Events Oodb
