lib/core/notifiable.ml: Import List Occurrence
