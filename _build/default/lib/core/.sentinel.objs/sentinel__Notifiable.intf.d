lib/core/notifiable.mli: Import Occurrence
