lib/core/rule.ml: Coupling Detector Expr Function_registry Import Notifiable Oid
