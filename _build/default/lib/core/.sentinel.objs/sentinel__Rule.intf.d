lib/core/rule.mli: Context Coupling Detector Expr Function_registry Import Notifiable Occurrence Oid
