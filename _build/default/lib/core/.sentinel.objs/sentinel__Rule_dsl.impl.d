lib/core/rule_dsl.ml: Buffer Context Coupling Db Errors Events Expr Import In_channel List Oid Printf Rule String System Transaction
