lib/core/rule_dsl.mli: Import Oid System
