lib/core/scheduler.ml: Int List Oodb
