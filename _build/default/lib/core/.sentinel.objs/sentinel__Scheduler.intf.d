lib/core/scheduler.mli:
