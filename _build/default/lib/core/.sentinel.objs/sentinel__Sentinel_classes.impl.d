lib/core/sentinel_classes.ml: Context Coupling Db Import Oodb Value
