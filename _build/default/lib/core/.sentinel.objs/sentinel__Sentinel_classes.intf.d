lib/core/sentinel_classes.mli: Db Import
