lib/core/system.ml: Codec Context Coupling Db Detector Errors Fun Function_registry Import List Occurrence Oid Oodb Printf Rule Scheduler Sentinel_classes String Transaction Value
