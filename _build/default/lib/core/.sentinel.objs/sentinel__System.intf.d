lib/core/system.mli: Context Coupling Db Events Expr Function_registry Import Occurrence Oid Oodb Rule Scheduler
