lib/core/template.ml: Codec Context Coupling Db Errors Expr Function_registry Import List Oid Oodb Printf Rule Sentinel_classes String System Value
