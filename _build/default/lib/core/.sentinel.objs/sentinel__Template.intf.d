lib/core/template.mli: Context Coupling Expr Import Oid System
