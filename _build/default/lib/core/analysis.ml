open Import

(* The (method, modifier) pairs that can trigger a rule: its expression's
   primitive leaves. *)
let trigger_keys rule =
  Expr.prims rule.Rule.event
  |> List.map (fun (p : Expr.prim) -> (p.p_meth, p.p_modifier))
  |> List.sort_uniq compare

(* The (method, modifier) pairs a rule's action may generate.  A begin
   event and an end event are both possible for any sent method unless the
   declaration says otherwise — the declaration is explicit, so we take it
   verbatim. *)
let effect_keys sys rule =
  Function_registry.action_effects (System.registry sys) rule.Rule.action_name

let rules_info sys =
  List.map (fun oid -> (oid, System.rule_info sys oid)) (System.rules sys)

let edges sys =
  let all = rules_info sys in
  let out = ref [] in
  List.iter
    (fun (o1, r1) ->
      let effects = effect_keys sys r1 in
      if effects <> [] then
        List.iter
          (fun (o2, r2) ->
            let triggers = trigger_keys r2 in
            if List.exists (fun e -> List.mem e triggers) effects then
              out := (o1, o2) :: !out)
          all)
    all;
  List.sort compare !out

let may_trigger sys oid =
  edges sys |> List.filter_map (fun (a, b) -> if Oid.equal a oid then Some b else None)

(* Tarjan's strongly-connected components, iterative enough for rule-set
   sizes; returns components in reverse topological order. *)
let sccs nodes succ =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !components

let graph sys =
  let nodes = System.rules sys in
  let es = edges sys in
  let succ v =
    List.filter_map (fun (a, b) -> if Oid.equal a v then Some b else None) es
  in
  (nodes, succ)

let cycles sys =
  let nodes, succ = graph sys in
  sccs nodes succ
  |> List.filter (fun component ->
         match component with
         | [] -> false
         | [ v ] -> List.exists (Oid.equal v) (succ v) (* self-loop *)
         | _ -> true)

let is_terminating sys = cycles sys = []

let strata sys =
  let nodes, succ = graph sys in
  if cycles sys <> [] then None
  else begin
    (* stratum v = 0 when v triggers nothing; else 1 + max over successors *)
    let memo = Hashtbl.create 16 in
    let rec stratum v =
      match Hashtbl.find_opt memo v with
      | Some s -> s
      | None ->
        let s =
          match succ v with
          | [] -> 0
          | ws -> 1 + List.fold_left (fun acc w -> max acc (stratum w)) 0 ws
        in
        Hashtbl.replace memo v s;
        s
    in
    let max_stratum = List.fold_left (fun acc v -> max acc (stratum v)) 0 nodes in
    Some
      (List.init (max_stratum + 1) (fun k ->
           List.filter (fun v -> stratum v = k) nodes))
  end

let to_dot sys =
  let name oid = (System.rule_info sys oid).Rule.name in
  let looping = List.concat (cycles sys) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph triggering {\n";
  List.iter
    (fun oid ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=%S%s];\n" (Oid.to_int oid) (name oid)
           (if List.exists (Oid.equal oid) looping then " color=red" else "")))
    (System.rules sys);
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d;\n" (Oid.to_int a) (Oid.to_int b)))
    (edges sys);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_report ppf sys =
  let name oid = (System.rule_info sys oid).Rule.name in
  let es = edges sys in
  Format.fprintf ppf "triggering graph: %d rule(s), %d edge(s)@."
    (List.length (System.rules sys))
    (List.length es);
  List.iter
    (fun (a, b) -> Format.fprintf ppf "  %s may trigger %s@." (name a) (name b))
    es;
  match cycles sys with
  | [] ->
    Format.fprintf ppf "verdict: terminating@.";
    (match strata sys with
    | Some layers ->
      List.iteri
        (fun k layer ->
          Format.fprintf ppf "  stratum %d: %s@." k
            (String.concat ", " (List.map name layer)))
        layers
    | None -> ())
  | cs ->
    Format.fprintf ppf "verdict: POTENTIALLY NON-TERMINATING@.";
    List.iter
      (fun c ->
        Format.fprintf ppf "  cycle: %s@."
          (String.concat " -> " (List.map name c)))
      cs
