open Import

(** Static analysis of rule sets: the triggering graph.

    Cascading rules (an action sends messages that trigger further rules)
    are bounded at runtime by the system's cascade limit; this module is the
    static counterpart, in the tradition of active-database triggering-graph
    analysis: rule R₁ {e may trigger} R₂ when one of the primitive events
    R₁'s action declares it can generate ({!Function_registry} [may_send])
    matches, by (method, modifier), a primitive leaf of R₂'s event
    expression.  Matching ignores classes and instances — the analysis is
    deliberately conservative: absence of an edge proves absence of
    triggering, presence of one does not prove it happens.

    Consequences:
    - an acyclic triggering graph proves the rule set terminates for any
      event stream (cascades are bounded by the graph's depth);
    - cycles identify the rule groups that could loop;
    - an acyclic graph stratifies: rules in stratum 0 trigger nothing,
      stratum k+1 rules only trigger strata ≤ k. *)

val edges : System.t -> (Oid.t * Oid.t) list
(** All may-trigger edges, lexicographically sorted.  Only enabled and
    disabled rules alike are included (a disabled rule can be re-enabled). *)

val may_trigger : System.t -> Oid.t -> Oid.t list
(** Direct successors of one rule. *)

val cycles : System.t -> Oid.t list list
(** Strongly connected components that can actually loop: components of
    size ≥ 2 and self-looping single rules.  Empty ⇔ the set terminates. *)

val is_terminating : System.t -> bool

val strata : System.t -> Oid.t list list option
(** Topological layers, leaves (trigger-nothing rules) first; [None] when
    the graph is cyclic. *)

val pp_report : Format.formatter -> System.t -> unit
(** Human-readable analysis report (edges, verdict, cycles or strata). *)

val to_dot : System.t -> string
(** The triggering graph in Graphviz DOT syntax (rules as nodes, may-trigger
    edges; rules on a cycle drawn in red). *)
