type t = Immediate | Deferred | Detached

let all = [ Immediate; Deferred; Detached ]

let to_string = function
  | Immediate -> "immediate"
  | Deferred -> "deferred"
  | Detached -> "detached"

let of_string = function
  | "immediate" -> Immediate
  | "deferred" -> Deferred
  | "detached" -> Detached
  | s -> raise (Oodb.Errors.Parse_error ("unknown coupling mode: " ^ s))

let pp ppf c = Format.pp_print_string ppf (to_string c)
