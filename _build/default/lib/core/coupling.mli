(** Coupling modes — when a triggered rule's condition/action run relative
    to the triggering transaction (the paper's rule attribute [mode],
    Figure 7 / Figure 9's [M: Immediate]). *)

type t =
  | Immediate
      (** condition and action run synchronously, inside the triggering
          transaction, at the point the event is detected *)
  | Deferred
      (** execution is postponed to just before the outermost commit, still
          inside the transaction (so the action can abort it) *)
  | Detached
      (** execution runs in its own transaction after the triggering
          transaction commits; it dies with an aborted trigger *)

val all : t list
val to_string : t -> string

val of_string : string -> t
(** @raise Oodb.Errors.Parse_error *)

val pp : Format.formatter -> t -> unit
