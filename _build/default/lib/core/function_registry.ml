open Import

type condition = Db.t -> Detector.instance -> bool
type action = Db.t -> Detector.instance -> unit

type action_entry = {
  a_fn : action;
  (* primitive events this action may generate, for static rule analysis:
     (method, modifier) pairs of the messages it can send *)
  a_may_send : (string * Oodb.Types.modifier) list;
}

type t = {
  conditions : (string, condition) Hashtbl.t;
  actions : (string, action_entry) Hashtbl.t;
}

let register tbl kind name f =
  if Hashtbl.mem tbl name then
    Errors.type_error "%s %S is already registered" kind name;
  Hashtbl.replace tbl name f

let register_condition t name f = register t.conditions "condition" name f

let register_action ?(may_send = []) t name f =
  register t.actions "action" name { a_fn = f; a_may_send = may_send }

let find tbl kind name =
  match Hashtbl.find_opt tbl name with
  | Some f -> f
  | None -> Errors.type_error "unknown %s %S" kind name

let find_condition t name = find t.conditions "condition" name
let find_action t name = (find t.actions "action" name).a_fn
let action_effects t name = (find t.actions "action" name).a_may_send

let names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
let condition_names t = names t.conditions
let action_names t = names t.actions

let create () =
  let t = { conditions = Hashtbl.create 16; actions = Hashtbl.create 16 } in
  register_condition t "true" (fun _ _ -> true);
  register_action t "abort" (fun _ _ -> raise (Errors.Rule_abort "rule action: abort"));
  t
