open Import

(** Named condition and action functions.

    The paper stores conditions and actions as C++ pointers-to-member-
    function; code is not persistable, so a loaded rule must re-link its
    behaviour.  Here every condition/action is registered under a name; rule
    objects persist the {e names} and rehydration looks the closures back
    up.  Registries are per-{!System.t} so independent systems (and tests)
    do not interfere. *)

type condition = Db.t -> Detector.instance -> bool
(** A condition sees the database and the composite-event instance (whose
    constituent occurrences carry the actual parameters — the paper's
    recorded parameters). *)

type action = Db.t -> Detector.instance -> unit
(** An action may mutate the database, send messages (possibly cascading
    rule firings) or raise {!Errors.Rule_abort} to abort the triggering
    transaction. *)

type t

val create : unit -> t

val register_condition : t -> string -> condition -> unit
(** @raise Errors.Type_error when the name is already taken. *)

val register_action :
  ?may_send:(string * Oodb.Types.modifier) list -> t -> string -> action -> unit
(** [may_send] declares the primitive events the action can generate — the
    (method, modifier) pairs of messages it sends.  This powers the static
    triggering-graph analysis ({!Analysis}); omitting it means the action
    is treated as side-effect-free for analysis purposes.
    @raise Errors.Type_error when the name is already taken. *)

val find_condition : t -> string -> condition
(** @raise Errors.Type_error on unknown names. *)

val find_action : t -> string -> action
(** @raise Errors.Type_error on unknown names. *)

val action_effects : t -> string -> (string * Oodb.Types.modifier) list
(** The [may_send] declaration of a registered action.
    @raise Errors.Type_error on unknown names. *)

val condition_names : t -> string list
val action_names : t -> string list

(** {1 Built-ins}

    Every registry is created with two built-ins:
    - condition ["true"] — always satisfied;
    - action ["abort"] — raises {!Errors.Rule_abort} (Figure 9's action). *)
