open Import

type t = {
  limit : int;
  mutable entries : Occurrence.t list; (* newest first *)
  mutable stored : int;
  mutable total : int;
}

let create ?(limit = 1024) () = { limit; entries = []; stored = 0; total = 0 }

let record t o =
  t.total <- t.total + 1;
  if t.limit > 0 then begin
    t.entries <- o :: t.entries;
    t.stored <- t.stored + 1;
    if t.stored > t.limit then begin
      (* Drop the oldest half rather than one-by-one: keeps record O(1)
         amortized without a ring buffer. *)
      let keep = max 1 (t.limit / 2) in
      t.entries <- List.filteri (fun i _ -> i < keep) t.entries;
      t.stored <- keep
    end
  end

let all t = List.rev t.entries

let recent t n =
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  List.rev (take n t.entries)

let count t = t.total

let clear t =
  t.entries <- [];
  t.stored <- 0
