open Import

(** The Record behaviour of notifiable objects (paper §4.2): a bounded log
    of the primitive occurrences delivered to a consumer, with the
    parameters computed when each event was raised. *)

type t

val create : ?limit:int -> unit -> t
(** [limit] (default 1024) bounds the log; the oldest entries are dropped
    first.  [limit = 0] disables recording entirely. *)

val record : t -> Occurrence.t -> unit

val all : t -> Occurrence.t list
(** Chronological (oldest first). *)

val recent : t -> int -> Occurrence.t list
(** The last [n] recorded occurrences, chronological. *)

val count : t -> int
(** Total recorded since creation (including dropped entries). *)

val clear : t -> unit
