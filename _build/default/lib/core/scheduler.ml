type strategy = Fifo | Lifo | Priority_fifo | Priority_lifo

let default = Priority_fifo

let to_string = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Priority_fifo -> "priority-fifo"
  | Priority_lifo -> "priority-lifo"

let of_string = function
  | "fifo" -> Fifo
  | "lifo" -> Lifo
  | "priority-fifo" -> Priority_fifo
  | "priority-lifo" -> Priority_lifo
  | s -> raise (Oodb.Errors.Parse_error ("unknown scheduling strategy: " ^ s))

let order strategy entries =
  let cmp (p1, s1, _) (p2, s2, _) =
    match strategy with
    | Fifo -> Int.compare s1 s2
    | Lifo -> Int.compare s2 s1
    | Priority_fifo ->
      let c = Int.compare p2 p1 in
      if c <> 0 then c else Int.compare s1 s2
    | Priority_lifo ->
      let c = Int.compare p2 p1 in
      if c <> 0 then c else Int.compare s2 s1
  in
  List.map (fun (_, _, x) -> x) (List.stable_sort cmp entries)
