open Import

(** The class hierarchy the paper adds to Zeitgeist (Figure 3):
    zg-pos → Notifiable → {Event, Rule}.

    In this reproduction persistence is ambient (every stored object
    persists), so the zg-pos root is implicit; [Notifiable] and its [Event]
    and [Rule] subclasses are ordinary registered classes whose instances
    hold the durable half of events and rules.  The [Reactive] side of the
    paper's hierarchy is realised as the [reactive] class flag plus the
    event interface in {!Oodb.Schema}. *)

val notifiable_class : string
(** ["__notifiable"] *)

val event_class : string
(** ["__event"], subclass of notifiable *)

val rule_class : string
(** ["__rule"], subclass of notifiable *)

val install : Db.t -> unit
(** Register the three classes; idempotent. *)

(** {1 Attribute names of rule objects} *)

val a_name : string

val a_event : string
(** encoded {!Events.Codec} expression *)

val a_event_ref : string
(** OID of a named event object, or [Null] *)

val a_condition : string
val a_action : string
val a_coupling : string
val a_context : string
val a_priority : string
val a_enabled : string
val a_fired : string
