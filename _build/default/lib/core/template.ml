open Import
module C = Sentinel_classes

type t = Oid.t

let template_class = "__template"

let ensure_class db =
  if not (Db.has_class db template_class) then
    Db.define_class db
      (Oodb.Schema.define template_class ~super:C.notifiable_class
         ~attrs:
           [
             (C.a_event, Value.Str "");
             (C.a_condition, Value.Str "true");
             (C.a_action, Value.Str "abort");
             (C.a_coupling, Value.Str (Coupling.to_string Coupling.Immediate));
             (C.a_context, Value.Str (Context.to_string Context.Recent));
             (C.a_priority, Value.Int 0);
           ])

let templates sys =
  let db = System.db sys in
  ensure_class db;
  Db.extent db ~deep:false template_class

let find sys name =
  let db = System.db sys in
  templates sys
  |> List.find_opt (fun oid ->
         String.equal (Value.to_str (Db.get db oid C.a_name)) name)

let check_is_template sys oid =
  let db = System.db sys in
  if
    (not (Db.exists db oid))
    || not (String.equal (Db.class_of db oid) template_class)
  then Errors.type_error "%s is not a rule template" (Oid.to_string oid)

let declare sys ~name ?(coupling = Coupling.Immediate)
    ?(context = Context.Recent) ?(priority = 0) ~event ~condition ~action () =
  let db = System.db sys in
  ensure_class db;
  if find sys name <> None then
    Errors.type_error "template %S already declared" name;
  let registry = System.registry sys in
  let (_ : Function_registry.condition) =
    Function_registry.find_condition registry condition
  and (_ : Function_registry.action) =
    Function_registry.find_action registry action
  in
  Db.new_object db template_class
    ~attrs:
      [
        (C.a_name, Value.Str name);
        (C.a_event, Value.Str (Codec.encode event));
        (C.a_condition, Value.Str condition);
        (C.a_action, Value.Str action);
        (C.a_coupling, Value.Str (Coupling.to_string coupling));
        (C.a_context, Value.Str (Context.to_string context));
        (C.a_priority, Value.Int priority);
      ]

let instance_name sys tpl objs =
  let db = System.db sys in
  Printf.sprintf "%s@%s"
    (Value.to_str (Db.get db tpl C.a_name))
    (String.concat "," (List.map (fun o -> string_of_int (Oid.to_int o)) objs))

let bind sys tpl objs =
  check_is_template sys tpl;
  if objs = [] then Errors.type_error "bind: no objects given";
  let db = System.db sys in
  let get a = Db.get db tpl a in
  let event =
    Expr.restrict_sources (Codec.decode (Value.to_str (get C.a_event))) objs
  in
  System.create_rule sys
    ~name:(instance_name sys tpl objs)
    ~coupling:(Coupling.of_string (Value.to_str (get C.a_coupling)))
    ~context:(Context.of_string (Value.to_str (get C.a_context)))
    ~priority:(Value.to_int (get C.a_priority))
    ~monitor:objs ~event
    ~condition:(Value.to_str (get C.a_condition))
    ~action:(Value.to_str (get C.a_action))
    ()

let unbind sys tpl objs =
  check_is_template sys tpl;
  match System.find_rule sys (instance_name sys tpl objs) with
  | Some rule -> System.delete_rule sys rule
  | None -> ()

let bindings sys tpl =
  check_is_template sys tpl;
  let db = System.db sys in
  let prefix = Value.to_str (Db.get db tpl C.a_name) ^ "@" in
  let plen = String.length prefix in
  List.filter
    (fun rule ->
      let name = (System.rule_info sys rule).Rule.name in
      String.length name >= plen && String.sub name 0 plen = prefix)
    (System.rules sys)
