open Import

(** Parameterized rule templates — the synthesis of the paper's two
    approaches (§1: "rules that are specified at class definition time (Ode
    style) and rules that can be constructed at runtime (ADAM style) …
    compile both using a uniform framework").

    A template is a rule specification declared once — typically alongside
    a class definition — without being attached to anything.  At runtime it
    is {e bound} to specific instances: binding creates an ordinary
    instance-level rule whose event expression is narrowed to the bound
    objects and which subscribes to them.  Unbinding deletes that rule.
    Templates are first-class persistent objects (class ["__template"]), so
    they reload with the database and can be re-bound after
    {!System.rehydrate}. *)

type t = Oid.t
(** A template is identified by its object. *)

val declare :
  System.t ->
  name:string ->
  ?coupling:Coupling.t ->
  ?context:Context.t ->
  ?priority:int ->
  event:Expr.t ->
  condition:string ->
  action:string ->
  unit ->
  t
(** Store a template.  The event expression's source filters are ignored;
    binding supplies them.  Condition/action names are checked immediately.
    @raise Errors.Type_error on unknown names or duplicate template name. *)

val find : System.t -> string -> t option

val bind : System.t -> t -> Oid.t list -> Oid.t
(** [bind sys tpl objs] instantiates the template for the given objects:
    creates an enabled rule named ["<template>@<oid>,…"], restricted and
    subscribed to exactly [objs].
    @raise Errors.Type_error when [objs] is empty or the template OID is
    not a template. *)

val unbind : System.t -> t -> Oid.t list -> unit
(** Delete the rule a previous [bind] with the same objects created; no-op
    when none exists. *)

val bindings : System.t -> t -> Oid.t list
(** Rule objects currently instantiated from this template. *)

val templates : System.t -> t list
