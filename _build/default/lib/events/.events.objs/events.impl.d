lib/events/events.ml: Codec Context Detector Event_graph Expr Parser Signature
