lib/events/codec.ml: Buffer Char Errors Expr Import List Occurrence Oid Oodb Printf String
