lib/events/codec.mli: Expr
