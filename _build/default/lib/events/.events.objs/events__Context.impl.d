lib/events/context.ml: Format Oodb
