lib/events/context.mli: Format
