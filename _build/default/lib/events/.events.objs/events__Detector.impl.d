lib/events/detector.ml: Array Context Expr Format Import List Occurrence Oid Oodb String Value
