lib/events/detector.mli: Context Expr Format Import Occurrence Oodb
