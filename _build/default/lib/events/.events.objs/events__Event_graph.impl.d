lib/events/event_graph.ml: Detector Expr Hashtbl Import List Occurrence Oodb String
