lib/events/event_graph.mli: Context Detector Expr Import Occurrence Oodb
