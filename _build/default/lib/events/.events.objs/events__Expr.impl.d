lib/events/expr.ml: Errors Format Import Int List Occurrence Oid Oodb Option Printf Signature String Value
