lib/events/expr.mli: Format Import Oid Oodb Value
