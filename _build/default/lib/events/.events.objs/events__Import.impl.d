lib/events/import.ml: Oodb
