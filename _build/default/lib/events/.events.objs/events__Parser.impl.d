lib/events/parser.ml: Buffer Errors Expr Import List Occurrence Printf String Value
