lib/events/parser.mli: Expr
