lib/events/signature.ml: Format Oodb Option Printf String
