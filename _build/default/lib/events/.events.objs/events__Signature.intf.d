lib/events/signature.mli: Format Oodb
