(** Serialization of event expressions.

    Rule and event objects are first-class persistent objects; their event
    expressions are stored as an attribute in this compact textual form and
    decoded when the rule layer rehydrates a loaded database.

    [decode (encode e)] is structurally equal to [e] ({!Expr.equal}). *)

val encode : Expr.t -> string

val decode : string -> Expr.t
(** @raise Oodb.Errors.Parse_error on malformed input. *)
