type t = Recent | Chronicle | Continuous | Cumulative

let all = [ Recent; Chronicle; Continuous; Cumulative ]

let to_string = function
  | Recent -> "recent"
  | Chronicle -> "chronicle"
  | Continuous -> "continuous"
  | Cumulative -> "cumulative"

let of_string = function
  | "recent" -> Recent
  | "chronicle" -> Chronicle
  | "continuous" -> Continuous
  | "cumulative" -> Cumulative
  | s -> raise (Oodb.Errors.Parse_error ("unknown parameter context: " ^ s))

let pp ppf c = Format.pp_print_string ppf (to_string c)
