(** Parameter contexts for composite-event detection.

    The paper treats the parameters computed when an event is raised as part
    of the event object's state (§3.3).  When a composite event has several
    candidate constituent occurrences, a {e parameter context} — the notion
    Sentinel's event algebra (Snoop) introduced — picks which ones form the
    composite occurrence and which are consumed.  The precise semantics this
    library implements for the binary operators (conjunction, sequence) are:

    - {b Recent}: each side buffers only its most recent instance.  A
      detection pairs the two recent instances and {e retains} them, so a
      newer occurrence on either side can pair again (sliding, sensor-style
      semantics).
    - {b Chronicle}: both sides are FIFO queues; a detection pairs and
      {e consumes} the oldest compatible instances (stream-join semantics).
    - {b Continuous}: every buffered instance on the opposite side pairs
      with the arriving instance; all of them, and the arriving instance,
      are consumed (each initiator starts its own window; one terminator
      closes them all).
    - {b Cumulative}: all buffered instances on both sides are folded into a
      single composite occurrence and consumed.

    Disjunction is context-insensitive. *)

type t = Recent | Chronicle | Continuous | Cumulative

val all : t list
val to_string : t -> string
val of_string : string -> t
(** @raise Oodb.Errors.Parse_error on unknown names. *)

val pp : Format.formatter -> t -> unit
