open Import

type entry = {
  e_sub_id : int;
  e_detector : Detector.t;
  e_leaf : Detector.leaf;
}

type subscription = {
  s_id : int;
  s_detector : Detector.t;
  s_keys : (string * Oodb.Types.modifier) list;
  s_temporal : bool;
}

type t = {
  g_subsumes : sub:string -> super:string -> bool;
  index : (string * Oodb.Types.modifier, entry list ref) Hashtbl.t;
  temporal : (int, Detector.t) Hashtbl.t;
  mutable next_id : int;
  mutable n_subs : int;
  mutable n_routed : int;
}

let create ?(subsumes = fun ~sub ~super -> String.equal sub super) () =
  {
    g_subsumes = subsumes;
    index = Hashtbl.create 64;
    temporal = Hashtbl.create 8;
    next_id = 1;
    n_subs = 0;
    n_routed = 0;
  }

let bucket t key =
  match Hashtbl.find_opt t.index key with
  | Some b -> b
  | None ->
    let b = ref [] in
    Hashtbl.replace t.index key b;
    b

let subscribe t ?context ~on_signal expr =
  let d = Detector.create ?context ~subsumes:t.g_subsumes ~on_signal expr in
  let id = t.next_id in
  t.next_id <- id + 1;
  let keys =
    List.map
      (fun leaf ->
        let p = Detector.leaf_prim leaf in
        let key = (p.Expr.p_meth, p.Expr.p_modifier) in
        let b = bucket t key in
        b := { e_sub_id = id; e_detector = d; e_leaf = leaf } :: !b;
        key)
      (Detector.leaves d)
  in
  let temporal = Detector.has_temporal expr in
  if temporal then Hashtbl.replace t.temporal id d;
  t.n_subs <- t.n_subs + 1;
  { s_id = id; s_detector = d; s_keys = keys; s_temporal = temporal }

let unsubscribe t sub =
  let removed = ref false in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.index key with
      | None -> ()
      | Some b ->
        let before = List.length !b in
        b := List.filter (fun e -> e.e_sub_id <> sub.s_id) !b;
        if List.length !b < before then removed := true;
        if !b = [] then Hashtbl.remove t.index key)
    sub.s_keys;
  if sub.s_temporal then Hashtbl.remove t.temporal sub.s_id;
  if !removed then t.n_subs <- t.n_subs - 1

let detector sub = sub.s_detector

let advance t now = Hashtbl.iter (fun _ d -> Detector.advance d now) t.temporal

let feed t (occ : Occurrence.t) =
  advance t occ.at;
  match Hashtbl.find_opt t.index (occ.meth, occ.modifier) with
  | None -> ()
  | Some b ->
    (* oldest subscription first, matching Detector.feed's determinism *)
    List.iter
      (fun e ->
        t.n_routed <- t.n_routed + 1;
        Detector.offer_leaf e.e_detector e.e_leaf occ)
      (List.rev !b)

let subscription_count t = t.n_subs

let leaf_count t =
  Hashtbl.fold (fun _ b acc -> acc + List.length !b) t.index 0

let routed t = t.n_routed
