open Import

(** A shared event graph: many detectors, one dispatch structure.

    The paper's §1 lists event-management cost as a core concern: "the
    number of events can be very large in contrast to the relational case".
    Feeding every occurrence to every rule's detector costs
    O(#detectors × #leaves) per event.  The event graph indexes every
    registered detector's primitive leaves by (method name, modifier), so an
    occurrence is routed only to leaves that can possibly match — the
    fan-out becomes O(leaves listening to that method).

    Subscriptions own their detector (partial state is never shared, so two
    rules with the same expression still detect independently, as in the
    paper's per-rule local event detectors — Figure 2); what is shared is
    the routing work.

    Experiment E11 measures the effect. *)

type t

type subscription

val create : ?subsumes:(sub:string -> super:string -> bool) -> unit -> t

val subscribe :
  t ->
  ?context:Context.t ->
  on_signal:(Detector.instance -> unit) ->
  Expr.t ->
  subscription
(** Compile the expression and wire its leaves into the index. *)

val unsubscribe : t -> subscription -> unit
(** Idempotent. *)

val detector : subscription -> Detector.t
(** The subscription's private detector (counters, reset …). *)

val feed : t -> Occurrence.t -> unit
(** Route one occurrence: advance temporal detectors, then offer the
    occurrence to every leaf registered under its (method, modifier). *)

val advance : t -> Oodb.Types.timestamp -> unit

val subscription_count : t -> int

val leaf_count : t -> int
(** Total leaves currently indexed. *)

val routed : t -> int
(** Leaf offers performed so far — the measured dispatch work. *)
