open Import

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

(* An event-level mask: compare one actual parameter against a constant.
   Filters are data (no closures), so they persist with the expression. *)
type param_filter = { pf_index : int; pf_cmp : cmp; pf_value : Value.t }

type prim = {
  p_modifier : Oodb.Types.modifier;
  p_class : string option;
  p_meth : string;
  p_sources : Oid.Set.t;
  p_filters : param_filter list; (* conjunction *)
}

type t =
  | Prim of prim
  | And of t * t
  | Or of t * t
  | Seq of t * t
  | Any of int * t list
  | Not of t * t * t
  | Aperiodic of t * t * t
  | Aperiodic_star of t * t * t
  | Periodic of t * int * int option * t
  | Plus of t * int

let prim ?cls ?(sources = []) ?(filters = []) modifier meth =
  List.iter
    (fun f ->
      if f.pf_index < 0 then
        Errors.type_error "param filter: negative parameter index %d" f.pf_index)
    filters;
  Prim
    {
      p_modifier = modifier;
      p_class = cls;
      p_meth = meth;
      p_sources = Oid.Set.of_list sources;
      p_filters = filters;
    }

let cmp_to_string = function
  | Ceq -> "="
  | Cne -> "!="
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let cmp_of_string = function
  | "=" -> Ceq
  | "!=" | "<>" -> Cne
  | "<" -> Clt
  | "<=" -> Cle
  | ">" -> Cgt
  | ">=" -> Cge
  | s -> raise (Errors.Parse_error ("unknown comparison: " ^ s))

let filter_matches f params =
  match List.nth_opt params f.pf_index with
  | None -> false
  | Some actual ->
    let c = Value.compare actual f.pf_value in
    (match f.pf_cmp with
    | Ceq -> c = 0
    | Cne -> c <> 0
    | Clt -> c < 0
    | Cle -> c <= 0
    | Cgt -> c > 0
    | Cge -> c >= 0)

let of_signature ?sources ?filters s =
  let sg = Signature.parse s in
  prim ?cls:sg.Signature.s_class ?sources ?filters sg.s_modifier sg.s_meth

let bom ?cls ?sources ?filters meth =
  prim ?cls ?sources ?filters Oodb.Types.Before meth

let eom ?cls ?sources ?filters meth =
  prim ?cls ?sources ?filters Oodb.Types.After meth
let conj a b = And (a, b)
let disj a b = Or (a, b)
let seq a b = Seq (a, b)

let any m es =
  let n = List.length es in
  if m <= 0 || m > n then
    Errors.type_error "any: need 0 < m <= %d, got %d" n m;
  Any (m, es)

let not_between e1 e2 e3 = Not (e1, e2, e3)
let aperiodic e1 e2 e3 = Aperiodic (e1, e2, e3)
let aperiodic_star e1 e2 e3 = Aperiodic_star (e1, e2, e3)

let periodic ?limit e1 dt e3 =
  if dt <= 0 then Errors.type_error "periodic: period must be positive";
  (match limit with
  | Some l when l <= 0 -> Errors.type_error "periodic: limit must be positive"
  | _ -> ());
  Periodic (e1, dt, limit, e3)

let plus e dt =
  if dt <= 0 then Errors.type_error "plus: delay must be positive";
  Plus (e, dt)

let filter_equal f g =
  f.pf_index = g.pf_index && f.pf_cmp = g.pf_cmp && Value.equal f.pf_value g.pf_value

let prim_equal a b =
  a.p_modifier = b.p_modifier
  && Option.equal String.equal a.p_class b.p_class
  && String.equal a.p_meth b.p_meth
  && Oid.Set.equal a.p_sources b.p_sources
  && List.equal filter_equal a.p_filters b.p_filters

let rec equal x y =
  match (x, y) with
  | Prim a, Prim b -> prim_equal a b
  | And (a, b), And (c, d) | Or (a, b), Or (c, d) | Seq (a, b), Seq (c, d) ->
    equal a c && equal b d
  | Any (m, es), Any (n, fs) -> m = n && List.equal equal es fs
  | Not (a, b, c), Not (d, e, f)
  | Aperiodic (a, b, c), Aperiodic (d, e, f)
  | Aperiodic_star (a, b, c), Aperiodic_star (d, e, f) ->
    equal a d && equal b e && equal c f
  | Periodic (a, p, l, b), Periodic (c, q, m, d) ->
    equal a c && p = q && Option.equal Int.equal l m && equal b d
  | Plus (a, p), Plus (b, q) -> equal a b && p = q
  | ( ( Prim _ | And _ | Or _ | Seq _ | Any _ | Not _ | Aperiodic _
      | Aperiodic_star _ | Periodic _ | Plus _ ),
      _ ) ->
    false

let rec prims = function
  | Prim p -> [ p ]
  | And (a, b) | Or (a, b) | Seq (a, b) -> prims a @ prims b
  | Any (_, es) -> List.concat_map prims es
  | Not (a, b, c) | Aperiodic (a, b, c) | Aperiodic_star (a, b, c) ->
    prims a @ prims b @ prims c
  | Periodic (a, _, _, b) -> prims a @ prims b
  | Plus (a, _) -> prims a

let restrict_sources e sources =
  let sources = Oid.Set.of_list sources in
  let rec walk = function
    | Prim p -> Prim { p with p_sources = sources }
    | And (a, b) -> And (walk a, walk b)
    | Or (a, b) -> Or (walk a, walk b)
    | Seq (a, b) -> Seq (walk a, walk b)
    | Any (m, es) -> Any (m, List.map walk es)
    | Not (a, b, c) -> Not (walk a, walk b, walk c)
    | Aperiodic (a, b, c) -> Aperiodic (walk a, walk b, walk c)
    | Aperiodic_star (a, b, c) -> Aperiodic_star (walk a, walk b, walk c)
    | Periodic (a, dt, limit, b) -> Periodic (walk a, dt, limit, walk b)
    | Plus (a, dt) -> Plus (walk a, dt)
  in
  walk e

let rec size = function
  | Prim _ -> 1
  | And (a, b) | Or (a, b) | Seq (a, b) -> 1 + size a + size b
  | Any (_, es) -> 1 + List.fold_left (fun acc e -> acc + size e) 0 es
  | Not (a, b, c) | Aperiodic (a, b, c) | Aperiodic_star (a, b, c) ->
    1 + size a + size b + size c
  | Periodic (a, _, _, b) -> 1 + size a + size b
  | Plus (a, _) -> 1 + size a

let rec depth = function
  | Prim _ -> 1
  | And (a, b) | Or (a, b) | Seq (a, b) -> 1 + max (depth a) (depth b)
  | Any (_, es) -> 1 + List.fold_left (fun acc e -> max acc (depth e)) 0 es
  | Not (a, b, c) | Aperiodic (a, b, c) | Aperiodic_star (a, b, c) ->
    1 + max (depth a) (max (depth b) (depth c))
  | Periodic (a, _, _, b) -> 1 + max (depth a) (depth b)
  | Plus (a, _) -> 1 + depth a

let pp_prim ppf p =
  Format.fprintf ppf "%s %s%s"
    (Occurrence.modifier_to_string p.p_modifier)
    (match p.p_class with Some c -> c ^ "::" | None -> "")
    p.p_meth;
  if not (Oid.Set.is_empty p.p_sources) then
    Format.fprintf ppf "{%s}"
      (String.concat ","
         (List.map Oid.to_string (Oid.Set.elements p.p_sources)));
  List.iter
    (fun f ->
      Format.fprintf ppf " where $%d %s %s" f.pf_index (cmp_to_string f.pf_cmp)
        (Value.to_string f.pf_value))
    p.p_filters

let rec pp ppf = function
  | Prim p -> Format.fprintf ppf "(%a)" pp_prim p
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Seq (a, b) -> Format.fprintf ppf "(%a ; %a)" pp a pp b
  | Any (m, es) ->
    Format.fprintf ppf "ANY(%d; %a)" m
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      es
  | Not (a, b, c) -> Format.fprintf ppf "NOT(%a, %a, %a)" pp b pp a pp c
  | Aperiodic (a, b, c) -> Format.fprintf ppf "A(%a, %a, %a)" pp a pp b pp c
  | Aperiodic_star (a, b, c) -> Format.fprintf ppf "A*(%a, %a, %a)" pp a pp b pp c
  | Periodic (a, dt, limit, b) ->
    Format.fprintf ppf "P(%a, %d%s, %a)" pp a dt
      (match limit with Some l -> Printf.sprintf "/%d" l | None -> "")
      pp b
  | Plus (a, dt) -> Format.fprintf ppf "(%a + %d)" pp a dt

let to_string e = Format.asprintf "%a" pp e
