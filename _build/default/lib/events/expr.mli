open Import

(** Event expressions: primitive events and the operator algebra.

    The paper's §4.3 supports conjunction, disjunction and sequence and
    builds composite events by applying operators to event objects; this
    module also provides the further Snoop operators Sentinel grew into
    (ANY, NOT, aperiodic, periodic, their cumulative variants and relative
    temporal events), which DESIGN.md lists as implemented extensions. *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type param_filter = { pf_index : int; pf_cmp : cmp; pf_value : Value.t }
(** An event-level mask comparing one actual parameter ([pf_index]th,
    0-based) against a constant.  Filters are plain data, so — unlike rule
    conditions, which are named closures — they persist inside the
    expression and are checked before the occurrence enters the detector. *)

type prim = {
  p_modifier : Oodb.Types.modifier;
  p_class : string option;  (** [None] matches any class *)
  p_meth : string;
  p_sources : Oid.Set.t;
      (** restrict to specific instances; empty = any instance.  This is how
          a primitive event object narrows to the objects a rule subscribed
          to, e.g. the IBM stock object only. *)
  p_filters : param_filter list;  (** conjunction of parameter masks *)
}

type t =
  | Prim of prim
  | And of t * t  (** both occur, in any order *)
  | Or of t * t  (** either occurs *)
  | Seq of t * t  (** left completes strictly before right starts *)
  | Any of int * t list
      (** [Any (m, es)]: occurrences of [m] {e distinct} members of [es] *)
  | Not of t * t * t
      (** [Not (e1, e2, e3)]: [e3] after [e1] with no [e2] in between *)
  | Aperiodic of t * t * t
      (** [Aperiodic (e1, e2, e3)]: each [e2] inside the window opened by
          [e1] and closed by [e3] signals *)
  | Aperiodic_star of t * t * t
      (** cumulative variant: one signal at [e3] carrying all the [e2]s *)
  | Periodic of t * int * int option * t
      (** [Periodic (e1, dt, limit, e3)]: a tick every [dt] logical time
          units after [e1], until [e3] (or [limit] ticks) *)
  | Plus of t * int  (** [Plus (e, dt)]: [dt] time units after [e] *)

(** {1 Constructors} *)

val prim :
  ?cls:string ->
  ?sources:Oid.t list ->
  ?filters:param_filter list ->
  Oodb.Types.modifier ->
  string ->
  t
(** @raise Oodb.Errors.Type_error on negative filter indexes. *)

val filter_matches : param_filter -> Value.t list -> bool
(** Evaluate one mask against an actual-parameter list; out-of-range
    indexes fail the filter. *)

val cmp_to_string : cmp -> string

val cmp_of_string : string -> cmp
(** Accepts [=], [!=], [<>], [<], [<=], [>], [>=].
    @raise Oodb.Errors.Parse_error otherwise. *)

val of_signature :
  ?sources:Oid.t list -> ?filters:param_filter list -> string -> t
(** Parse a paper-style signature, e.g.
    [of_signature "end Employee::Set-Salary(float x)"].
    @raise Oodb.Errors.Parse_error *)

val bom : ?cls:string -> ?sources:Oid.t list -> ?filters:param_filter list -> string -> t
(** begin-of-method primitive *)

val eom : ?cls:string -> ?sources:Oid.t list -> ?filters:param_filter list -> string -> t
(** end-of-method primitive *)

val conj : t -> t -> t
val disj : t -> t -> t
val seq : t -> t -> t
val any : int -> t list -> t
(** @raise Oodb.Errors.Type_error unless [0 < m <= length es]. *)

val not_between : t -> t -> t -> t
(** [not_between e1 e2 e3] = [Not (e1, e2, e3)]. *)

val aperiodic : t -> t -> t -> t
val aperiodic_star : t -> t -> t -> t

val periodic : ?limit:int -> t -> int -> t -> t
(** @raise Oodb.Errors.Type_error when the period is not positive. *)

val plus : t -> int -> t
(** @raise Oodb.Errors.Type_error when the delay is not positive. *)

(** {1 Inspection} *)

val equal : t -> t -> bool
val prims : t -> prim list
(** All primitive leaves, left to right. *)

val restrict_sources : t -> Oid.t list -> t
(** Narrow every primitive leaf to the given instances (replacing existing
    source filters).  Used to bind a parameterized rule template to
    specific objects. *)

val size : t -> int
(** Number of AST nodes. *)

val depth : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
