open Import

let fail fmt = Printf.ksprintf (fun m -> raise (Errors.Parse_error m)) fmt

(* --- tokenizer -------------------------------------------------------------- *)

type token =
  | Word of string (* identifier, possibly with :: *)
  | Int of int
  | Float of float
  | Text of string (* quoted string literal *)
  | Param of int (* $N *)
  | Cmp of string (* = != < <= > >= *)
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Slash

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '*' | '.' -> true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    (match input.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
      push Lparen;
      incr i
    | ')' ->
      push Rparen;
      incr i
    | ',' ->
      push Comma;
      incr i
    | ';' ->
      push Semi;
      incr i
    | '/' ->
      push Slash;
      incr i
    | '$' ->
      incr i;
      let start = !i in
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do
        incr i
      done;
      let digits = String.sub input start (!i - start) in
      (match int_of_string_opt digits with
      | Some v -> push (Param v)
      | None -> fail "event syntax: bad parameter reference $%s" digits)
    | '=' ->
      push (Cmp "=");
      incr i
    | '!' when !i + 1 < n && input.[!i + 1] = '=' ->
      push (Cmp "!=");
      i := !i + 2
    | '<' when !i + 1 < n && input.[!i + 1] = '>' ->
      push (Cmp "!=");
      i := !i + 2
    | '<' when !i + 1 < n && input.[!i + 1] = '=' ->
      push (Cmp "<=");
      i := !i + 2
    | '<' ->
      push (Cmp "<");
      incr i
    | '>' when !i + 1 < n && input.[!i + 1] = '=' ->
      push (Cmp ">=");
      i := !i + 2
    | '>' ->
      push (Cmp ">");
      incr i
    | ('\'' | '"') as quote ->
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = quote then closed := true
        else Buffer.add_char buf input.[!i];
        incr i
      done;
      if not !closed then fail "event syntax: unterminated string";
      push (Text (Buffer.contents buf))
    | c when is_word_char c ->
      let start = !i in
      while !i < n && is_word_char input.[!i] do
        incr i
      done;
      let w = String.sub input start (!i - start) in
      (match int_of_string_opt w with
      | Some v -> push (Int v)
      | None -> (
        match float_of_string_opt w with
        | Some f when String.contains w '.' -> push (Float f)
        | _ -> push (Word w)))
    | c -> fail "event syntax: unexpected character %C at %d" c !i)
  done;
  List.rev !tokens

(* --- parser ------------------------------------------------------------------ *)

type state = { mutable rest : token list }

let peek st = match st.rest with [] -> None | t :: _ -> Some t

let next st =
  match st.rest with
  | [] -> fail "event syntax: unexpected end of input"
  | t :: rest ->
    st.rest <- rest;
    t

let expect st tok what =
  let got = next st in
  if got <> tok then fail "event syntax: expected %s" what

let expect_int st what =
  match next st with Int v -> v | _ -> fail "event syntax: expected %s" what

let keyword w = String.lowercase_ascii w

let rec parse_expr st =
  let left = parse_seq st in
  match peek st with
  | Some (Word w) when keyword w = "or" ->
    let _ = next st in
    Expr.disj left (parse_expr st)
  | _ -> left

and parse_seq st =
  let left = parse_conj st in
  match peek st with
  | Some Semi ->
    let _ = next st in
    Expr.seq left (parse_seq st)
  | _ -> left

and parse_conj st =
  let left = parse_atom st in
  match peek st with
  | Some (Word w) when keyword w = "and" ->
    let _ = next st in
    Expr.conj left (parse_conj st)
  | _ -> left

and parse_literal st =
  match next st with
  | Int v -> Value.Int v
  | Float f -> Value.Float f
  | Text s -> Value.Str s
  | Word w -> (
    match keyword w with
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | "null" -> Value.Null
    | other -> fail "event syntax: expected literal, got %S" other)
  | _ -> fail "event syntax: expected literal"

(* "where $N <op> literal [and $M <op> literal ...]" — a trailing [and]
   continues the filter list only when a parameter reference follows, so a
   conjunction of events after a filtered primitive still parses. *)
and parse_where st expr =
  match peek st with
  | Some (Word w) when keyword w = "where" ->
    let _ = next st in
    let filters = ref [] in
    let rec one () =
      (match next st with
      | Param pf_index -> (
        match next st with
        | Cmp op ->
          let pf_value = parse_literal st in
          filters :=
            { Expr.pf_index; pf_cmp = Expr.cmp_of_string op; pf_value }
            :: !filters
        | _ -> fail "event syntax: expected comparison after $%d" pf_index)
      | _ -> fail "event syntax: expected $N after 'where'");
      match st.rest with
      | Word w :: Param _ :: _ when keyword w = "and" ->
        let _ = next st in
        one ()
      | _ -> ()
    in
    one ();
    (match expr with
    | Expr.Prim p -> Expr.Prim { p with p_filters = List.rev !filters }
    | _ -> fail "event syntax: 'where' only applies to primitive events")
  | _ -> expr

and parse_atom st =
  match next st with
  | Lparen ->
    let e = parse_expr st in
    expect st Rparen "')'";
    e
  | Word w -> (
    match keyword w with
    | "begin" | "before" | "end" | "after" -> (
      let modifier = Occurrence.modifier_of_string (keyword w) in
      match next st with
      | Word name -> (
        let plain s = s <> "" && not (String.contains s ':') in
        (* "cls::meth" or bare "meth" *)
        match String.index_opt name ':' with
        | Some i
          when i + 1 < String.length name
               && name.[i + 1] = ':'
               && i > 0
               && i + 2 < String.length name ->
          let cls = String.sub name 0 i in
          let meth = String.sub name (i + 2) (String.length name - i - 2) in
          if plain cls && plain meth then
            parse_where st (Expr.prim ~cls modifier meth)
          else fail "event syntax: bad qualified name %S" name
        | Some _ -> fail "event syntax: bad qualified name %S" name
        | None -> parse_where st (Expr.prim modifier name))
      | _ -> fail "event syntax: expected method name after %S" w)
    | "any" ->
      expect st Lparen "'(' after any";
      let m = expect_int st "count" in
      let items = ref [] in
      let rec more () =
        match next st with
        | Comma ->
          items := parse_expr st :: !items;
          more ()
        | Rparen -> ()
        | _ -> fail "event syntax: expected ',' or ')' in any(...)"
      in
      more ();
      Expr.any m (List.rev !items)
    | "not" | "aperiodic" | "aperiodic*" ->
      expect st Lparen ("'(' after " ^ w);
      let a = parse_expr st in
      expect st Comma "','";
      let b = parse_expr st in
      expect st Comma "','";
      let c = parse_expr st in
      expect st Rparen "')'";
      (match keyword w with
      | "not" -> Expr.not_between a b c
      | "aperiodic" -> Expr.aperiodic a b c
      | _ -> Expr.aperiodic_star a b c)
    | "periodic" ->
      expect st Lparen "'(' after periodic";
      let a = parse_expr st in
      expect st Comma "','";
      let dt = expect_int st "period" in
      let limit =
        match peek st with
        | Some Slash ->
          let _ = next st in
          Some (expect_int st "limit")
        | _ -> None
      in
      expect st Comma "','";
      let b = parse_expr st in
      expect st Rparen "')'";
      Expr.periodic ?limit a dt b
    | "plus" ->
      expect st Lparen "'(' after plus";
      let a = parse_expr st in
      expect st Comma "','";
      let dt = expect_int st "delay" in
      expect st Rparen "')'";
      Expr.plus a dt
    | other -> fail "event syntax: unexpected word %S" other)
  | Int v -> fail "event syntax: unexpected number %d" v
  | Float f -> fail "event syntax: unexpected number %g" f
  | Text s -> fail "event syntax: unexpected string %S" s
  | Param i -> fail "event syntax: unexpected $%d" i
  | Cmp op -> fail "event syntax: unexpected %s" op
  | Rparen -> fail "event syntax: unexpected ')'"
  | Comma -> fail "event syntax: unexpected ','"
  | Semi -> fail "event syntax: unexpected ';'"
  | Slash -> fail "event syntax: unexpected '/'"

let parse input =
  let st = { rest = tokenize input } in
  let e = parse_expr st in
  if st.rest <> [] then fail "event syntax: trailing tokens in %S" input;
  e

(* --- printing ----------------------------------------------------------------- *)

let literal_to_syntax = function
  | Value.Null -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int v -> string_of_int v
  | Value.Float f ->
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ "."
  | Value.Str str -> "'" ^ str ^ "'"
  | (Value.Obj _ | Value.List _) as v ->
    raise
      (Errors.Parse_error
         ("event syntax: no literal syntax for " ^ Value.to_string v))

let rec to_syntax (e : Expr.t) =
  match e with
  | Prim p ->
    let filters =
      match p.p_filters with
      | [] -> ""
      | fs ->
        " where "
        ^ String.concat " and "
            (List.map
               (fun (f : Expr.param_filter) ->
                 Printf.sprintf "$%d %s %s" f.pf_index
                   (Expr.cmp_to_string f.pf_cmp)
                   (literal_to_syntax f.pf_value))
               fs)
    in
    Printf.sprintf "%s %s%s%s"
      (Occurrence.modifier_to_string p.p_modifier)
      (match p.p_class with Some c -> c ^ "::" | None -> "")
      p.p_meth filters
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_syntax a) (to_syntax b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_syntax a) (to_syntax b)
  | Seq (a, b) -> Printf.sprintf "(%s ; %s)" (to_syntax a) (to_syntax b)
  | Any (m, es) ->
    Printf.sprintf "any(%d, %s)" m (String.concat ", " (List.map to_syntax es))
  | Not (a, b, c) ->
    Printf.sprintf "not(%s, %s, %s)" (to_syntax a) (to_syntax b) (to_syntax c)
  | Aperiodic (a, b, c) ->
    Printf.sprintf "aperiodic(%s, %s, %s)" (to_syntax a) (to_syntax b)
      (to_syntax c)
  | Aperiodic_star (a, b, c) ->
    Printf.sprintf "aperiodic*(%s, %s, %s)" (to_syntax a) (to_syntax b)
      (to_syntax c)
  | Periodic (a, dt, limit, b) ->
    Printf.sprintf "periodic(%s, %d%s, %s)" (to_syntax a) dt
      (match limit with Some l -> "/" ^ string_of_int l | None -> "")
      (to_syntax b)
  | Plus (a, dt) -> Printf.sprintf "plus(%s, %d)" (to_syntax a) dt
