(** Concrete syntax for event expressions.

    Grammar (case-insensitive keywords):

    {v expr  ::= seq ("or" seq)*
       seq   ::= conj (";" conj)*              -- sequence, as in the paper
       conj  ::= atom ("and" atom)*
       atom  ::= "(" expr ")"
               | prim [ "where" mask ("and" mask)* ]
               | "any" "(" int "," expr {"," expr} ")"
               | "not" "(" expr "," expr "," expr ")"
               | "aperiodic"  "(" expr "," expr "," expr ")"
               | "aperiodic*" "(" expr "," expr "," expr ")"
               | "periodic" "(" expr "," int ["/" int] "," expr ")"
               | "plus" "(" expr "," int ")"
       prim  ::= ("begin"|"end"|"before"|"after") [class "::"] method
       mask  ::= "$" int op literal            -- parameter filter
       op    ::= "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
       literal ::= integer | float | 'text' | "text" | true | false | null v}

    A [where] clause filters on the event's actual parameters ($0 is the
    first argument): ["end account::withdraw where $0 > 1000"].  An [and]
    after a mask continues the mask list when followed by [$]; otherwise it
    is event conjunction.

    Binding strength: [and] over [;] over [or], so
    ["end a::m and end b::n or end c::k"] parses as [(a∧b) ∨ c].

    Examples from the paper:
    - ["end Employee::Change-Income or end Manager::Change-Income"]
    - ["end Account::Deposit ; begin Account::Withdraw"]
    - ["end Stock::SetPrice and end FinancialInfo::SetValue"] *)

val parse : string -> Expr.t
(** @raise Oodb.Errors.Parse_error with position information. *)

val to_syntax : Expr.t -> string
(** Render an expression back to parsable syntax ([parse (to_syntax e)] is
    structurally equal to [e] for source-filter-free expressions; instance
    filters have no concrete syntax and are dropped). *)
