type t = {
  s_modifier : Oodb.Types.modifier;
  s_class : string option;
  s_meth : string;
}

let fail fmt = Printf.ksprintf (fun m -> raise (Oodb.Errors.Parse_error m)) fmt

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let valid_name s = s <> "" && String.for_all is_name_char s

let parse input =
  let s = String.trim input in
  let space =
    match String.index_opt s ' ' with
    | Some i -> i
    | None -> fail "signature %S: missing modifier" input
  in
  let modifier = Oodb.Occurrence.modifier_of_string (String.sub s 0 space) in
  let rest = String.trim (String.sub s space (String.length s - space)) in
  (* Strip an optional trailing parameter list. *)
  let rest =
    match String.index_opt rest '(' with
    | Some i ->
      if s.[String.length s - 1] <> ')' then
        fail "signature %S: unterminated parameter list" input
      else String.trim (String.sub rest 0 i)
    | None -> rest
  in
  let cls, meth =
    match String.index_opt rest ':' with
    | None -> (None, rest)
    | Some i ->
      if i + 1 >= String.length rest || rest.[i + 1] <> ':' then
        fail "signature %S: expected '::'" input
      else
        ( Some (String.sub rest 0 i),
          String.sub rest (i + 2) (String.length rest - i - 2) )
  in
  (match cls with
  | Some c when not (valid_name c) -> fail "signature %S: bad class name %S" input c
  | _ -> ());
  if not (valid_name meth) then fail "signature %S: bad method name %S" input meth;
  { s_modifier = modifier; s_class = cls; s_meth = meth }

let to_string t =
  Printf.sprintf "%s %s%s"
    (Oodb.Occurrence.modifier_to_string t.s_modifier)
    (match t.s_class with Some c -> c ^ "::" | None -> "")
    t.s_meth

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  a.s_modifier = b.s_modifier
  && Option.equal String.equal a.s_class b.s_class
  && String.equal a.s_meth b.s_meth
