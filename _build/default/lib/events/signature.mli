(** Event-signature parsing.

    The paper creates primitive event objects from textual signatures:

    {v Event* empsal = new Primitive ("end Employee::Set-Salary(float x)") v}

    The grammar accepted here:

    {v signature ::= when [class "::"] method [ "(" formals ")" ]
       when      ::= "begin" | "before" | "end" | "after" v}

    The formal-parameter list is documentation only and is ignored; the
    class part is optional (omitting it matches the method on any class).
    Method and class names may contain letters, digits, [_], [-]. *)

type t = {
  s_modifier : Oodb.Types.modifier;
  s_class : string option;
  s_meth : string;
}

val parse : string -> t
(** @raise Oodb.Errors.Parse_error *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
