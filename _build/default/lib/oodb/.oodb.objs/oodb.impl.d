lib/oodb/oodb.ml: Btree Db Errors Evolution Gc Introspect Occurrence Oid Persist Query Query_parser Schema Session Transaction Types Value Verify Wal
