lib/oodb/btree.ml: Array List Oid Printf Value
