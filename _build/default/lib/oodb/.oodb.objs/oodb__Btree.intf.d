lib/oodb/btree.mli: Oid Value
