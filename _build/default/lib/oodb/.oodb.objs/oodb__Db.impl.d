lib/oodb/db.ml: Btree Errors Hashtbl Heap List Oid Option Schema String Transaction Types
