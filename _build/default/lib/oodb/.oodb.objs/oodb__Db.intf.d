lib/oodb/db.mli: Oid Schema Types Value
