lib/oodb/errors.ml: Format Oid Printexc Printf
