lib/oodb/errors.mli: Format Oid
