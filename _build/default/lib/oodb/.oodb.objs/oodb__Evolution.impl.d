lib/oodb/evolution.ml: Db Errors Hashtbl Heap Int List Printf Schema String Transaction Types
