lib/oodb/evolution.mli: Db Schema Value
