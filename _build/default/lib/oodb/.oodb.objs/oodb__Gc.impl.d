lib/oodb/gc.ml: Db List Oid Value
