lib/oodb/gc.mli: Db Oid
