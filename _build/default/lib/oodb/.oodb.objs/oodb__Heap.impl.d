lib/oodb/heap.ml: Btree Errors Hashtbl List Oid Schema Types
