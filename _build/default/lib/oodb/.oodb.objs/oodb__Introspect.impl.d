lib/oodb/introspect.ml: Db Format Hashtbl Int List Option Schema Types Value
