lib/oodb/introspect.mli: Db Format Types Value
