lib/oodb/occurrence.ml: Errors Format Int List Oid String Types Value
