lib/oodb/occurrence.mli: Format Oid Types Value
