lib/oodb/oid.ml: Format Hashtbl Int Set
