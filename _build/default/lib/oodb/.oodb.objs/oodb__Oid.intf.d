lib/oodb/oid.mli: Format Hashtbl Set
