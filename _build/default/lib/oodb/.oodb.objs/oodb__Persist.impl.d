lib/oodb/persist.ml: Buffer Char Db Errors Fun Hashtbl Heap In_channel List Oid Printf String Sys Transaction Types Value
