lib/oodb/persist.mli: Db Value
