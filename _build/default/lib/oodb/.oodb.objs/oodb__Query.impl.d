lib/oodb/query.ml: Db Format List Value
