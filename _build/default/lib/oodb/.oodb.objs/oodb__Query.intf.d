lib/oodb/query.mli: Db Format Oid Value
