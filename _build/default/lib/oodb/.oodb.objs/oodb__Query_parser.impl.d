lib/oodb/query_parser.ml: Buffer Errors List Oid Printf Query String Value
