lib/oodb/query_parser.mli: Query
