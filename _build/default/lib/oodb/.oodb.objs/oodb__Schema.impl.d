lib/oodb/schema.ml: Errors Hashtbl List Oid String Types Value
