lib/oodb/schema.mli: Oid Types Value
