lib/oodb/session.ml: Db Errors Hashtbl Heap List Oid Printf String Transaction Types
