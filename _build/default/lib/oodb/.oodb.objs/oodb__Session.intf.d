lib/oodb/session.mli: Db Oid Value
