lib/oodb/transaction.ml: Errors Hashtbl Heap List Types
