lib/oodb/transaction.mli: Types
