lib/oodb/types.ml: Btree Hashtbl Oid Value
