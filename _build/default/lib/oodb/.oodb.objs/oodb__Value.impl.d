lib/oodb/value.ml: Bool Errors Float Format Int List Oid Stdlib String
