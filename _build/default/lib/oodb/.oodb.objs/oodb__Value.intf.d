lib/oodb/value.mli: Format Oid
