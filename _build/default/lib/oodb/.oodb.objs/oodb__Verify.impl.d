lib/oodb/verify.ml: Btree Db Errors Hashtbl List Oid Printf Schema Transaction Types Value
