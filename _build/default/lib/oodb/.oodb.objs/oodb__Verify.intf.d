lib/oodb/verify.mli: Db
