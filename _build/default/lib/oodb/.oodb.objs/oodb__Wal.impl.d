lib/oodb/wal.ml: Db Errors Fun In_channel List Oid Persist Printf String Sys Types Unix
