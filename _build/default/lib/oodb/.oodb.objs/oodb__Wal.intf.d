lib/oodb/wal.mli: Db
