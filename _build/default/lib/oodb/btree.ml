(* A textbook in-memory B+-tree: values only at the leaves, leaves linked
   for range scans, splitting on overflow, borrowing/merging on underflow.
   Nodes hold sorted arrays; with the default order of 16, the O(order)
   array copies on mutation are cheaper than pointer-chasing structures. *)

type payload = unit Oid.Table.t

type node = Leaf of leaf | Node of internal

and leaf = {
  mutable entries : (Value.t * payload) array; (* sorted by key *)
  mutable next : leaf option;
}

and internal = {
  (* keys.(i) is the smallest key reachable in children.(i+1);
     Array.length children = Array.length keys + 1 *)
  mutable keys : Value.t array;
  mutable children : node array;
}

type t = { mutable root : node; order : int; mutable n_pairs : int }

let create ?(order = 16) () =
  let order = max 4 order in
  { root = Leaf { entries = [||]; next = None }; order; n_pairs = 0 }

let cardinal t = t.n_pairs

(* --- array helpers -------------------------------------------------------- *)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j ->
      if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

(* Index of [key] in a sorted entries array, or the insertion point. *)
let leaf_search entries key =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare (fst entries.(mid)) key < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* Child index to route [key] to: first separator strictly greater wins. *)
let route (n : internal) key =
  let lo = ref 0 and hi = ref (Array.length n.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare n.keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let node_size = function
  | Leaf l -> Array.length l.entries
  | Node n -> Array.length n.children

(* --- find / iterate -------------------------------------------------------- *)

let rec find_leaf node key =
  match node with
  | Leaf l -> l
  | Node n -> find_leaf n.children.(route n key) key

let payload_oids p =
  Oid.Table.fold (fun oid () acc -> oid :: acc) p [] |> List.sort Oid.compare

let find t key =
  let l = find_leaf t.root key in
  let i = leaf_search l.entries key in
  if i < Array.length l.entries && Value.equal (fst l.entries.(i)) key then
    payload_oids (snd l.entries.(i))
  else []

let rec leftmost = function Leaf l -> l | Node n -> leftmost n.children.(0)

let iter t f =
  let rec walk = function
    | None -> ()
    | Some l ->
      Array.iter (fun (k, p) -> f k (payload_oids p)) l.entries;
      walk l.next
  in
  walk (Some (leftmost t.root))

let min_key t =
  let rec first = function
    | None -> None
    | Some l ->
      if Array.length l.entries > 0 then Some (fst l.entries.(0))
      else first l.next
  in
  first (Some (leftmost t.root))

let rec rightmost = function
  | Leaf l -> l
  | Node n -> rightmost n.children.(Array.length n.children - 1)

let max_key t =
  let l = rightmost t.root in
  let n = Array.length l.entries in
  if n > 0 then Some (fst l.entries.(n - 1)) else None

let range t ?lo ?hi () =
  let start =
    match lo with
    | None -> leftmost t.root
    | Some (v, _) -> find_leaf t.root v
  in
  let keep_lo k =
    match lo with
    | None -> true
    | Some (v, inclusive) ->
      let c = Value.compare k v in
      if inclusive then c >= 0 else c > 0
  in
  let below_hi k =
    match hi with
    | None -> true
    | Some (v, inclusive) ->
      let c = Value.compare k v in
      if inclusive then c <= 0 else c < 0
  in
  let out = ref [] in
  let exception Done in
  (try
     let rec walk = function
       | None -> ()
       | Some l ->
         Array.iter
           (fun (k, p) ->
             if not (below_hi k) then raise Done;
             if keep_lo k then out := (k, payload_oids p) :: !out)
           l.entries;
         walk l.next
     in
     walk (Some start)
   with Done -> ());
  List.rev !out

let key_count t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let height t =
  let rec depth = function Leaf _ -> 1 | Node n -> 1 + depth n.children.(0) in
  depth t.root

let clear t =
  t.root <- Leaf { entries = [||]; next = None };
  t.n_pairs <- 0

(* --- insertion --------------------------------------------------------------- *)

(* Insert into a subtree; returns [Some (separator, right_sibling)] when the
   node split. *)
let rec insert_rec t node key oid =
  match node with
  | Leaf l ->
    let i = leaf_search l.entries key in
    if i < Array.length l.entries && Value.equal (fst l.entries.(i)) key then begin
      let p = snd l.entries.(i) in
      if not (Oid.Table.mem p oid) then begin
        Oid.Table.replace p oid ();
        t.n_pairs <- t.n_pairs + 1
      end;
      None
    end
    else begin
      let p = Oid.Table.create 2 in
      Oid.Table.replace p oid ();
      l.entries <- array_insert l.entries i (key, p);
      t.n_pairs <- t.n_pairs + 1;
      if Array.length l.entries <= t.order then None
      else begin
        (* split the leaf in half; the right half's first key separates *)
        let n = Array.length l.entries in
        let mid = n / 2 in
        let right =
          { entries = Array.sub l.entries mid (n - mid); next = l.next }
        in
        l.entries <- Array.sub l.entries 0 mid;
        l.next <- Some right;
        Some (fst right.entries.(0), Leaf right)
      end
    end
  | Node n -> (
    let i = route n key in
    match insert_rec t n.children.(i) key oid with
    | None -> None
    | Some (sep, right) ->
      n.keys <- array_insert n.keys i sep;
      n.children <- array_insert n.children (i + 1) right;
      if Array.length n.children <= t.order then None
      else begin
        (* split the internal node: the middle separator moves up *)
        let nk = Array.length n.keys in
        let mid = nk / 2 in
        let up = n.keys.(mid) in
        let right =
          {
            keys = Array.sub n.keys (mid + 1) (nk - mid - 1);
            children =
              Array.sub n.children (mid + 1) (Array.length n.children - mid - 1);
          }
        in
        n.keys <- Array.sub n.keys 0 mid;
        n.children <- Array.sub n.children 0 (mid + 1);
        Some (up, Node right)
      end)

let insert t key oid =
  match insert_rec t t.root key oid with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Node { keys = [| sep |]; children = [| t.root; right |] }

(* --- deletion ------------------------------------------------------------------ *)

let min_leaf_entries t = t.order / 2
let min_node_children t = (t.order + 1) / 2

let first_key_of_subtree node =
  let l = leftmost node in
  fst l.entries.(0)

(* Rebalance child [i] of [parent] after a removal left it under-occupied. *)
let fix_child t (parent : internal) i =
  let child = parent.children.(i) in
  let underflow =
    match child with
    | Leaf l -> Array.length l.entries < min_leaf_entries t
    | Node n -> Array.length n.children < min_node_children t
  in
  if underflow then begin
    let left = if i > 0 then Some (parent.children.(i - 1)) else None in
    let right =
      if i < Array.length parent.children - 1 then Some (parent.children.(i + 1))
      else None
    in
    let can_lend = function
      | Some (Leaf l) -> Array.length l.entries > min_leaf_entries t
      | Some (Node n) -> Array.length n.children > min_node_children t
      | None -> false
    in
    match (child, left, right) with
    (* -- borrow into a leaf ------------------------------------------------ *)
    | Leaf c, Some (Leaf l), _ when can_lend left ->
      let n = Array.length l.entries in
      c.entries <- array_insert c.entries 0 l.entries.(n - 1);
      l.entries <- array_remove l.entries (n - 1);
      parent.keys.(i - 1) <- fst c.entries.(0)
    | Leaf c, _, Some (Leaf r) when can_lend right ->
      c.entries <- array_insert c.entries (Array.length c.entries) r.entries.(0);
      r.entries <- array_remove r.entries 0;
      parent.keys.(i) <- fst r.entries.(0)
    (* -- borrow into an internal node -------------------------------------- *)
    | Node c, Some (Node l), _ when can_lend left ->
      let nk = Array.length l.keys and nc = Array.length l.children in
      c.keys <- array_insert c.keys 0 parent.keys.(i - 1);
      c.children <- array_insert c.children 0 l.children.(nc - 1);
      parent.keys.(i - 1) <- l.keys.(nk - 1);
      l.keys <- array_remove l.keys (nk - 1);
      l.children <- array_remove l.children (nc - 1)
    | Node c, _, Some (Node r) when can_lend right ->
      c.keys <- array_insert c.keys (Array.length c.keys) parent.keys.(i);
      c.children <-
        array_insert c.children (Array.length c.children) r.children.(0);
      parent.keys.(i) <- r.keys.(0);
      r.keys <- array_remove r.keys 0;
      r.children <- array_remove r.children 0
    (* -- merge with a sibling ----------------------------------------------- *)
    | Leaf c, Some (Leaf l), _ ->
      l.entries <- Array.append l.entries c.entries;
      l.next <- c.next;
      parent.keys <- array_remove parent.keys (i - 1);
      parent.children <- array_remove parent.children i
    | Leaf c, None, Some (Leaf r) ->
      c.entries <- Array.append c.entries r.entries;
      c.next <- r.next;
      parent.keys <- array_remove parent.keys i;
      parent.children <- array_remove parent.children (i + 1)
    | Node c, Some (Node l), _ ->
      l.keys <- Array.append l.keys (array_insert c.keys 0 parent.keys.(i - 1));
      l.children <- Array.append l.children c.children;
      parent.keys <- array_remove parent.keys (i - 1);
      parent.children <- array_remove parent.children i
    | Node c, None, Some (Node r) ->
      c.keys <- Array.append c.keys (array_insert r.keys 0 parent.keys.(i));
      c.children <- Array.append c.children r.children;
      parent.keys <- array_remove parent.keys i;
      parent.children <- array_remove parent.children (i + 1)
    (* a leaf's siblings are leaves; an internal node's are internal *)
    | Leaf _, Some (Node _), _
    | Leaf _, None, Some (Node _)
    | Node _, Some (Leaf _), _
    | Node _, None, Some (Leaf _) ->
      assert false
    | _, None, None -> () (* the root has no siblings *)
  end

let rec remove_rec t node key oid =
  match node with
  | Leaf l ->
    let i = leaf_search l.entries key in
    if i < Array.length l.entries && Value.equal (fst l.entries.(i)) key then begin
      let p = snd l.entries.(i) in
      if Oid.Table.mem p oid then begin
        Oid.Table.remove p oid;
        t.n_pairs <- t.n_pairs - 1;
        if Oid.Table.length p = 0 then l.entries <- array_remove l.entries i
      end
    end
  | Node n ->
    let i = route n key in
    remove_rec t n.children.(i) key oid;
    (* keep the separator exact: it must equal the smallest key on the
       right, which removal may have changed *)
    if i > 0 && node_size n.children.(i) > 0 then
      n.keys.(i - 1) <- first_key_of_subtree n.children.(i);
    fix_child t n i

let remove t key oid =
  remove_rec t t.root key oid;
  (* collapse a root that lost all but one child *)
  match t.root with
  | Node n when Array.length n.children = 1 -> t.root <- n.children.(0)
  | Node _ | Leaf _ -> ()

(* --- invariants ------------------------------------------------------------------ *)

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let rec check node ~is_root ~lo ~hi =
    (* returns depth *)
    let in_bounds k =
      (match lo with Some v when Value.compare k v < 0 -> false | _ -> true)
      && match hi with Some v when Value.compare k v >= 0 -> false | _ -> true
    in
    match node with
    | Leaf l ->
      let n = Array.length l.entries in
      if (not is_root) && n < min_leaf_entries t then
        bad "leaf underflow: %d < %d" n (min_leaf_entries t);
      if n > t.order then bad "leaf overflow: %d" n;
      Array.iteri
        (fun i (k, p) ->
          if not (in_bounds k) then bad "leaf key out of separator bounds";
          if Oid.Table.length p = 0 then bad "empty payload";
          if i > 0 && Value.compare (fst l.entries.(i - 1)) k >= 0 then
            bad "leaf keys not strictly increasing")
        l.entries;
      1
    | Node n ->
      let nc = Array.length n.children in
      if Array.length n.keys <> nc - 1 then bad "keys/children arity mismatch";
      if (not is_root) && nc < min_node_children t then
        bad "internal underflow: %d < %d" nc (min_node_children t);
      if is_root && nc < 2 then bad "internal root with < 2 children";
      if nc > t.order then bad "internal overflow: %d" nc;
      Array.iteri
        (fun i k ->
          if not (in_bounds k) then bad "separator out of bounds";
          if i > 0 && Value.compare n.keys.(i - 1) k >= 0 then
            bad "separators not strictly increasing")
        n.keys;
      (* each separator equals the smallest key of the child to its right *)
      Array.iteri
        (fun i k ->
          if node_size n.children.(i + 1) > 0 then
            let smallest = first_key_of_subtree n.children.(i + 1) in
            if not (Value.equal smallest k) then
              bad "separator %s != child min %s" (Value.to_string k)
                (Value.to_string smallest))
        n.keys;
      let depths =
        Array.mapi
          (fun i child ->
            let lo = if i = 0 then lo else Some n.keys.(i - 1) in
            let hi = if i = nc - 1 then hi else Some n.keys.(i) in
            check child ~is_root:false ~lo ~hi)
          n.children
      in
      Array.iter
        (fun d -> if d <> depths.(0) then bad "non-uniform leaf depth")
        depths;
      depths.(0) + 1
  in
  try
    let (_ : int) = check t.root ~is_root:true ~lo:None ~hi:None in
    (* leaf chain visits exactly the tree's keys in order *)
    let chain = ref [] in
    iter t (fun k _ -> chain := k :: !chain);
    let sorted = List.sort Value.compare !chain in
    if List.rev !chain <> sorted then fail "leaf chain out of order"
    else begin
      let pairs = ref 0 in
      iter t (fun _ oids -> pairs := !pairs + List.length oids);
      if !pairs <> t.n_pairs then
        fail "cardinal mismatch: counted %d, recorded %d" !pairs t.n_pairs
      else Ok ()
    end
  with Bad msg -> Error msg
