(** An in-memory B+-tree over {!Value.t} keys, multi-valued (each key maps
    to a set of OIDs).

    Backs the substrate's {e ordered} secondary indexes: equality lookups
    like the hash index, plus range scans for the comparison predicates of
    {!Query}.  Keys are ordered by {!Value.compare} (numeric values compare
    across [Int]/[Float]).

    The implementation is a textbook B+-tree: values only in leaves, leaves
    doubly linked for range scans, node splitting on overflow and borrowing/
    merging on underflow.  [check_invariants] verifies structure and is
    exercised by the property tests. *)

type t

val create : ?order:int -> unit -> t
(** [order] is the maximum number of keys per node (default 16, minimum 4;
    smaller orders are useful in tests to force deep trees). *)

val insert : t -> Value.t -> Oid.t -> unit
(** Idempotent per (key, oid) pair. *)

val remove : t -> Value.t -> Oid.t -> unit
(** Removes one (key, oid) pair; the key disappears when its last OID
    goes.  Unknown pairs are ignored. *)

val find : t -> Value.t -> Oid.t list
(** OIDs under exactly this key, in OID order. *)

val range :
  t ->
  ?lo:Value.t * bool ->
  ?hi:Value.t * bool ->
  unit ->
  (Value.t * Oid.t list) list
(** [range t ~lo:(v, inclusive) ~hi:(w, inclusive) ()] returns the keys in
    [lo..hi] in ascending order with their OIDs.  Omitting a bound leaves
    that side open. *)

val min_key : t -> Value.t option
val max_key : t -> Value.t option

val cardinal : t -> int
(** Number of (key, oid) pairs. *)

val key_count : t -> int
(** Number of distinct keys. *)

val height : t -> int
(** 1 for a single leaf. *)

val iter : t -> (Value.t -> Oid.t list -> unit) -> unit
(** Ascending key order. *)

val clear : t -> unit

val check_invariants : t -> (unit, string) result
(** Structural validation: key ordering, separator correctness, occupancy
    bounds, uniform leaf depth, leaf-chain consistency. *)
