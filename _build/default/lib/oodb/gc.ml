let rec value_refs acc (v : Value.t) =
  match v with
  | Value.Obj o -> o :: acc
  | Value.List vs -> List.fold_left value_refs acc vs
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ -> acc

(* OIDs directly referenced by one object: attribute values + consumers. *)
let direct_refs db oid =
  let attrs = Db.attrs db oid in
  let from_attrs = List.fold_left (fun acc (_, v) -> value_refs acc v) [] attrs in
  Db.consumers_of db oid @ from_attrs

let class_level_roots (db : Db.t) =
  List.concat_map (fun cls -> Db.class_consumers_of db cls) (Db.classes db)

let reachable db ~roots =
  let seen = ref Oid.Set.empty in
  let rec visit oid =
    if Db.exists db oid && not (Oid.Set.mem oid !seen) then begin
      seen := Oid.Set.add oid !seen;
      List.iter visit (direct_refs db oid)
    end
  in
  List.iter visit roots;
  List.iter visit (class_level_roots db);
  !seen

let garbage db ~roots =
  let live = reachable db ~roots in
  List.concat_map
    (fun cls ->
      List.filter
        (fun oid -> not (Oid.Set.mem oid live))
        (Db.extent db ~deep:false cls))
    (Db.classes db)
  |> List.sort Oid.compare

let collect db ~roots =
  let victims = garbage db ~roots in
  List.iter (Db.delete_object db) victims;
  List.length victims
