(** Reachability analysis and garbage collection of stored objects.

    Objects reference each other through [Obj]-valued attributes (including
    inside lists), through subscription consumer lists, and through
    class-level consumer registrations.  Given a set of roots, {!reachable}
    computes the transitively reachable objects and {!collect} deletes the
    rest — the persistent-store analogue of tracing collection.

    Class-level consumers are treated as roots themselves: a rule
    subscribed to a whole class must survive even when no instance
    currently references it.

    Collection is a bulk delete: it runs through {!Db.delete_object}, so it
    is undo-logged (collect inside a transaction and abort to preview) and
    journaled to an attached WAL. *)

val reachable : Db.t -> roots:Oid.t list -> Oid.Set.t
(** Transitive closure over attribute references, consumer lists and (from
    any reachable object) nothing else; unknown/dead root OIDs are
    ignored. *)

val garbage : Db.t -> roots:Oid.t list -> Oid.t list
(** Live objects not reachable from [roots] ∪ class-level consumers, in
    OID order. *)

val collect : Db.t -> roots:Oid.t list -> int
(** Delete all garbage; returns how many objects were removed. *)
