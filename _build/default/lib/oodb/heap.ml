(* Raw heap mutations shared by Db (the logging, event-raising front door)
   and Transaction (undo replay).  Nothing here logs undo records or raises
   events; callers are responsible for that. *)

open Types

let find_obj db oid =
  match Oid.Table.find_opt db.objects oid with
  | None -> raise (Errors.No_such_object oid)
  | Some o when not o.alive -> raise (Errors.Dead_object oid)
  | Some o -> o

let find_obj_any db oid =
  (* Used by undo replay, which may legitimately touch dead objects. *)
  match Oid.Table.find_opt db.objects oid with
  | None -> raise (Errors.No_such_object oid)
  | Some o -> o

let extent_table db cls =
  match Hashtbl.find_opt db.extents cls with
  | Some t -> t
  | None ->
    let t = Oid.Table.create 16 in
    Hashtbl.replace db.extents cls t;
    t

let add_to_extent db cls oid = Oid.Table.replace (extent_table db cls) oid ()
let remove_from_extent db cls oid = Oid.Table.remove (extent_table db cls) oid

(* All indexes that cover attribute [attr] of an instance whose runtime class
   is [cls]: an index declared on (C, a) covers instances of C and of every
   subclass of C. *)
let covering_indexes db cls attr =
  List.filter_map
    (fun c -> Hashtbl.find_opt db.indexes (c, attr))
    (Schema.ancestry db cls)

let index_remove ix v oid =
  match ix.ix_backing with
  | Ix_hash entries -> (
    match Hashtbl.find_opt entries v with
    | None -> ()
    | Some bucket ->
      Oid.Table.remove bucket oid;
      if Oid.Table.length bucket = 0 then Hashtbl.remove entries v)
  | Ix_ordered tree -> Btree.remove tree v oid

let index_add ix v oid =
  match ix.ix_backing with
  | Ix_hash entries ->
    let bucket =
      match Hashtbl.find_opt entries v with
      | Some b -> b
      | None ->
        let b = Oid.Table.create 4 in
        Hashtbl.replace entries v b;
        b
    in
    Oid.Table.replace bucket oid ()
  | Ix_ordered tree -> Btree.insert tree v oid

(* Set or remove ([v = None]) an attribute, keeping covering indexes in
   sync.  Returns the previous binding. *)
let raw_set_attr db o name v =
  let old = Hashtbl.find_opt o.attrs name in
  let ixs = covering_indexes db o.cls name in
  List.iter
    (fun ix -> match old with Some ov -> index_remove ix ov o.id | None -> ())
    ixs;
  (match v with
  | Some nv ->
    Hashtbl.replace o.attrs name nv;
    List.iter (fun ix -> index_add ix nv o.id) ixs
  | None -> Hashtbl.remove o.attrs name);
  old

let index_all_attrs db o =
  Hashtbl.iter
    (fun name v ->
      List.iter (fun ix -> index_add ix v o.id) (covering_indexes db o.cls name))
    o.attrs

let unindex_all_attrs db o =
  Hashtbl.iter
    (fun name v ->
      List.iter
        (fun ix -> index_remove ix v o.id)
        (covering_indexes db o.cls name))
    o.attrs

let insert_obj db o =
  Oid.Table.replace db.objects o.id o;
  add_to_extent db o.cls o.id;
  index_all_attrs db o

let remove_obj db o =
  unindex_all_attrs db o;
  remove_from_extent db o.cls o.id;
  Oid.Table.remove db.objects o.id
