type class_stats = {
  cs_name : string;
  cs_super : string option;
  cs_reactive : bool;
  cs_attributes : (string * Value.t) list;
  cs_methods : string list;
  cs_event_interface : (string * Types.interface_entry) list;
  cs_direct_instances : int;
  cs_deep_instances : int;
}

let class_stats db name =
  let c = Schema.find db name in
  let interface =
    List.filter_map
      (fun meth ->
        match Schema.lookup_interface db name meth with
        | Some e -> Some (meth, e)
        | None -> None)
      (Schema.methods_of db name)
  in
  {
    cs_name = name;
    cs_super = c.Types.super;
    cs_reactive = Schema.is_reactive db name;
    cs_attributes = Schema.all_attrs db name;
    cs_methods = List.sort compare (Schema.methods_of db name);
    cs_event_interface = interface;
    cs_direct_instances = List.length (Db.extent db ~deep:false name);
    cs_deep_instances = List.length (Db.extent db ~deep:true name);
  }

let attribute_histogram db ~cls ~attr ?(top = 10) () =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun oid ->
      match Db.get_opt db oid attr with
      | Some v ->
        Hashtbl.replace counts v
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
      | None -> ())
    (Db.extent db ~deep:true cls);
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) counts []
  |> List.sort (fun (v1, n1) (v2, n2) ->
         let c = Int.compare n2 n1 in
         if c <> 0 then c else Value.compare v1 v2)
  |> List.filteri (fun i _ -> i < top)

let subscription_count db =
  List.fold_left
    (fun acc cls ->
      List.fold_left
        (fun acc oid -> acc + List.length (Db.consumers_of db oid))
        acc
        (Db.extent db ~deep:false cls))
    0 (Db.classes db)

let entry_label (e : Types.interface_entry) =
  match (e.on_begin, e.on_end) with
  | true, true -> "begin && end"
  | true, false -> "begin"
  | false, true -> "end"
  | false, false -> "none"

let pp_class ppf stats =
  Format.fprintf ppf "class %s%s%s  (%d direct / %d deep instance(s))@."
    stats.cs_name
    (match stats.cs_super with Some s -> " : " ^ s | None -> "")
    (if stats.cs_reactive then "  [reactive]" else "")
    stats.cs_direct_instances stats.cs_deep_instances;
  List.iter
    (fun (name, default) ->
      Format.fprintf ppf "  attr %-16s default %s@." name (Value.to_string default))
    stats.cs_attributes;
  List.iter
    (fun meth ->
      let evt =
        match List.assoc_opt meth stats.cs_event_interface with
        | Some e -> "  [event " ^ entry_label e ^ "]"
        | None -> ""
      in
      Format.fprintf ppf "  method %s%s@." meth evt)
    stats.cs_methods

let pp_schema ppf db =
  List.iter
    (fun name -> pp_class ppf (class_stats db name))
    (List.sort compare (Db.classes db))

let pp_summary ppf db =
  let total_objects =
    List.fold_left
      (fun acc cls -> acc + List.length (Db.extent db ~deep:false cls))
      0 (Db.classes db)
  in
  let s = Db.stats db in
  Format.fprintf ppf
    "%d object(s) across %d class(es); logical clock %d; %d subscription \
     edge(s); stats: %d sends, %d events, %d notifications, %d commits, %d \
     aborts@."
    total_objects
    (List.length (Db.classes db))
    (Db.now db) (subscription_count db) s.Types.sends s.Types.events_generated
    s.Types.notifications s.Types.txns_committed s.Types.txns_aborted
