(** Introspection: human-readable reports over a live database.

    Backs the CLI's [inspect] output and debugging sessions; everything here
    is read-only. *)

type class_stats = {
  cs_name : string;
  cs_super : string option;
  cs_reactive : bool;
  cs_attributes : (string * Value.t) list;  (** merged spec with defaults *)
  cs_methods : string list;
  cs_event_interface : (string * Types.interface_entry) list;
  cs_direct_instances : int;
  cs_deep_instances : int;
}

val class_stats : Db.t -> string -> class_stats
(** @raise Errors.No_such_class *)

val attribute_histogram :
  Db.t -> cls:string -> attr:string -> ?top:int -> unit -> (Value.t * int) list
(** The [top] (default 10) most frequent values of an attribute over the
    deep extent, most frequent first. *)

val subscription_count : Db.t -> int
(** Total instance-level subscription edges. *)

val pp_schema : Format.formatter -> Db.t -> unit
(** Every class: inheritance, attributes, methods, event interface. *)

val pp_summary : Format.formatter -> Db.t -> unit
(** One-paragraph database summary: objects, classes, indexes, clock,
    subscription edges, statistics counters. *)
