(** Primitive event occurrences.

    The record itself is defined in {!Types} (it is part of the recursive
    knot); this module provides construction, comparison and printing. *)

type t = Types.occurrence = {
  source : Oid.t;
  source_class : string;
  meth : string;
  modifier : Types.modifier;
  params : Value.t list;
  at : Types.timestamp;
}

val make :
  source:Oid.t ->
  source_class:string ->
  meth:string ->
  modifier:Types.modifier ->
  params:Value.t list ->
  at:Types.timestamp ->
  t

val modifier_to_string : Types.modifier -> string
(** ["begin"] / ["end"], matching the paper's event-signature syntax. *)

val modifier_of_string : string -> Types.modifier
(** Accepts ["begin"], ["before"], ["end"], ["after"].
    @raise Errors.Parse_error otherwise. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Ordered by timestamp, then source, then method. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
