type t = int

let of_int n = n
let to_int n = n
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf n = Format.fprintf ppf "@@%d" n
let to_string n = "@" ^ string_of_int n

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
