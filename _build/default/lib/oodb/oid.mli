(** Object identifiers.

    Every object stored in an {!Db.t} — including rule and event objects,
    which the paper treats as first-class citizens — is named by an OID that
    is unique within its database and never reused. *)

type t

val of_int : int -> t
(** [of_int n] builds the OID with raw value [n].  Intended for the
    persistence layer and tests; fresh OIDs come from object creation. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hashtables keyed by OID. *)
module Table : Hashtbl.S with type key = t

(** Sets of OIDs. *)
module Set : Set.S with type elt = t
