let fail fmt = Printf.ksprintf (fun m -> raise (Errors.Parse_error m)) fmt

type token =
  | Word of string
  | Lit of Value.t
  | Op of string
  | Lparen
  | Rparen

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let is_num_char = function
  | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    (match input.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
      push Lparen;
      incr i
    | ')' ->
      push Rparen;
      incr i
    | '=' ->
      push (Op "=");
      incr i
    | '!' when !i + 1 < n && input.[!i + 1] = '=' ->
      push (Op "!=");
      i := !i + 2
    | '<' when !i + 1 < n && input.[!i + 1] = '>' ->
      push (Op "!=");
      i := !i + 2
    | '<' when !i + 1 < n && input.[!i + 1] = '=' ->
      push (Op "<=");
      i := !i + 2
    | '<' ->
      push (Op "<");
      incr i
    | '>' when !i + 1 < n && input.[!i + 1] = '=' ->
      push (Op ">=");
      i := !i + 2
    | '>' ->
      push (Op ">");
      incr i
    | '@' ->
      incr i;
      let start = !i in
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do
        incr i
      done;
      let digits = String.sub input start (!i - start) in
      (match int_of_string_opt digits with
      | Some v -> push (Lit (Value.Obj (Oid.of_int v)))
      | None -> fail "query syntax: bad oid literal @%s" digits)
    | ('\'' | '"') as quote ->
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = quote then closed := true
        else Buffer.add_char buf input.[!i];
        incr i
      done;
      if not !closed then fail "query syntax: unterminated string";
      push (Lit (Value.Str (Buffer.contents buf)))
    | ('0' .. '9' | '-') ->
      let start = !i in
      incr i;
      while !i < n && is_num_char input.[!i] do
        incr i
      done;
      let text = String.sub input start (!i - start) in
      (match int_of_string_opt text with
      | Some v -> push (Lit (Value.Int v))
      | None -> (
        match float_of_string_opt text with
        | Some v -> push (Lit (Value.Float v))
        | None -> fail "query syntax: bad number %S" text))
    | c when is_word_char c ->
      let start = !i in
      while !i < n && is_word_char input.[!i] do
        incr i
      done;
      push (Word (String.sub input start (!i - start)))
    | c -> fail "query syntax: unexpected character %C" c)
  done;
  List.rev !tokens

type state = { mutable rest : token list }

let peek st = match st.rest with [] -> None | t :: _ -> Some t

let next st =
  match st.rest with
  | [] -> fail "query syntax: unexpected end of input"
  | t :: rest ->
    st.rest <- rest;
    t

let keyword = String.lowercase_ascii

let literal_of_word w =
  match keyword w with
  | "true" -> Some (Value.Bool true)
  | "false" -> Some (Value.Bool false)
  | "null" -> Some Value.Null
  | _ -> None

let rec parse_pred st =
  let left = parse_conj st in
  match peek st with
  | Some (Word w) when keyword w = "or" ->
    let _ = next st in
    Query.Or (left, parse_pred st)
  | _ -> left

and parse_conj st =
  let left = parse_unary st in
  match peek st with
  | Some (Word w) when keyword w = "and" ->
    let _ = next st in
    Query.And (left, parse_conj st)
  | _ -> left

and parse_unary st =
  match next st with
  | Lparen ->
    let p = parse_pred st in
    (match next st with
    | Rparen -> p
    | _ -> fail "query syntax: expected ')'")
  | Word w when keyword w = "not" -> Query.Not (parse_unary st)
  | Word w when keyword w = "true" -> Query.True
  | Word w when keyword w = "has" -> (
    match next st with
    | Word attr -> Query.Has attr
    | _ -> fail "query syntax: expected attribute after 'has'")
  | Word attr -> (
    match next st with
    | Op op -> (
      let v =
        match next st with
        | Lit v -> v
        | Word w -> (
          match literal_of_word w with
          | Some v -> v
          | None -> fail "query syntax: expected literal, got %S" w)
        | _ -> fail "query syntax: expected literal after operator"
      in
      match op with
      | "=" -> Query.Eq (attr, v)
      | "!=" -> Query.Ne (attr, v)
      | "<" -> Query.Lt (attr, v)
      | "<=" -> Query.Le (attr, v)
      | ">" -> Query.Gt (attr, v)
      | ">=" -> Query.Ge (attr, v)
      | _ -> assert false)
    | _ -> fail "query syntax: expected comparison after %S" attr)
  | Lit v -> fail "query syntax: dangling literal %s" (Value.to_string v)
  | Op op -> fail "query syntax: dangling operator %S" op
  | Rparen -> fail "query syntax: unexpected ')'"

let parse input =
  let st = { rest = tokenize input } in
  let p = parse_pred st in
  if st.rest <> [] then fail "query syntax: trailing tokens in %S" input;
  p

let literal_to_syntax = function
  | Value.Null -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int v -> string_of_int v
  | Value.Float f ->
    (* keep the token recognizably a float so it reparses with the same
       runtime tag *)
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
    else s ^ "."
  | Value.Str s -> "'" ^ s ^ "'"
  | Value.Obj o -> "@" ^ string_of_int (Oid.to_int o)
  | Value.List _ ->
    raise (Errors.Parse_error "query syntax: list literals have no syntax")

let rec to_syntax = function
  | Query.True -> "true"
  | Query.Eq (a, v) -> Printf.sprintf "%s = %s" a (literal_to_syntax v)
  | Query.Ne (a, v) -> Printf.sprintf "%s != %s" a (literal_to_syntax v)
  | Query.Lt (a, v) -> Printf.sprintf "%s < %s" a (literal_to_syntax v)
  | Query.Le (a, v) -> Printf.sprintf "%s <= %s" a (literal_to_syntax v)
  | Query.Gt (a, v) -> Printf.sprintf "%s > %s" a (literal_to_syntax v)
  | Query.Ge (a, v) -> Printf.sprintf "%s >= %s" a (literal_to_syntax v)
  | Query.Has a -> "has " ^ a
  | Query.And (p, q) -> Printf.sprintf "(%s and %s)" (to_syntax p) (to_syntax q)
  | Query.Or (p, q) -> Printf.sprintf "(%s or %s)" (to_syntax p) (to_syntax q)
  | Query.Not p -> Printf.sprintf "not (%s)" (to_syntax p)
