(** Concrete syntax for query predicates.

    Grammar (case-insensitive keywords):

    {v pred   ::= conj ("or" conj)*
       conj   ::= unary ("and" unary)*
       unary  ::= "not" unary | "(" pred ")" | "true"
                | "has" attr
                | attr op literal
       op     ::= "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
       literal::= integer | float | 'text' | "text"
                | "true" | "false" | "null" | @oid v}

    Examples: ["salary >= 1000 and salary < 2000"],
    ["not (name = 'bob') or mgr = @7"], ["has mgr and age > 30"]. *)

val parse : string -> Query.pred
(** @raise Errors.Parse_error *)

val to_syntax : Query.pred -> string
(** Render back to parsable syntax; [parse (to_syntax p)] is structurally
    equal to [p]. *)
