open Types

type t = class_def
type event_when = On_begin | On_end | On_both
type method_impl = db -> Oid.t -> Value.t list -> Value.t

let entry_of_when = function
  | On_begin -> { on_begin = true; on_end = false }
  | On_end -> { on_begin = false; on_end = true }
  | On_both -> { on_begin = true; on_end = true }

let define ?super ?reactive ?(attrs = []) ?(methods = []) ?(events = [])
    ?(all_events = false) cname =
  let mtbl = Hashtbl.create (max 4 (List.length methods)) in
  let add_method (mname, impl) =
    if Hashtbl.mem mtbl mname then
      Errors.type_error "class %s defines method %s twice" cname mname;
    Hashtbl.replace mtbl mname { mname; impl }
  in
  List.iter add_method methods;
  let itbl = Hashtbl.create (max 4 (List.length events)) in
  (* footnote 7: every member function is a potential (bom + eom) event;
     explicit entries below override per method *)
  if all_events then
    List.iter
      (fun (mname, _) -> Hashtbl.replace itbl mname (entry_of_when On_both))
      methods;
  let add_event (mname, w) =
    if Hashtbl.mem itbl mname && not all_events then
      Errors.type_error "class %s lists method %s twice in its event interface"
        cname mname;
    Hashtbl.replace itbl mname (entry_of_when w)
  in
  List.iter add_event events;
  let reactive =
    match reactive with
    | Some r -> r
    | None -> all_events || not (List.is_empty events)
  in
  { cname; super; attr_spec = attrs; methods = mtbl; interface = itbl; reactive }

let find db name =
  match Hashtbl.find_opt db.classes name with
  | Some c -> c
  | None -> raise (Errors.No_such_class name)

let mem db name = Hashtbl.mem db.classes name

let ancestry db name =
  let rec walk acc name =
    let c = find db name in
    let acc = name :: acc in
    match c.super with None -> List.rev acc | Some s -> walk acc s
  in
  walk [] name

let is_subclass db ~sub ~super =
  List.exists (String.equal super) (ancestry db sub)

let rec lookup_along db name meth =
  let c = find db name in
  match Hashtbl.find_opt c.methods meth with
  | Some m -> Some m
  | None -> (
    match c.super with None -> None | Some s -> lookup_along db s meth)

let lookup_method db cls meth =
  match lookup_along db cls meth with
  | Some m -> m
  | None -> raise (Errors.No_such_method (cls, meth))

let rec lookup_interface db cls meth =
  let c = find db cls in
  match Hashtbl.find_opt c.interface meth with
  | Some e -> Some e
  | None -> (
    match c.super with None -> None | Some s -> lookup_interface db s meth)

let all_attrs db cls =
  (* Walk root-first so subclass declarations override. *)
  let chain = List.rev (ancestry db cls) in
  let merged = Hashtbl.create 16 in
  let order = ref [] in
  let add (name, default) =
    if not (Hashtbl.mem merged name) then order := name :: !order;
    Hashtbl.replace merged name default
  in
  List.iter (fun c -> List.iter add (find db c).attr_spec) chain;
  List.rev_map (fun name -> (name, Hashtbl.find merged name)) !order

let is_reactive db cls = List.exists (fun c -> (find db c).reactive) (ancestry db cls)

let methods_of db cls =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let visit c =
    Hashtbl.iter
      (fun m _ ->
        if not (Hashtbl.mem seen m) then begin
          Hashtbl.replace seen m ();
          out := m :: !out
        end)
      (find db c).methods
  in
  List.iter visit (ancestry db cls);
  List.rev !out
