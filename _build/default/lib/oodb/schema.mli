(** Class definitions: attributes, methods, the event interface, inheritance.

    A {e reactive class definition} is a traditional class definition plus an
    event interface specification (paper §3.1).  The event interface names
    the subset of methods that act as primitive event generators and whether
    each generates its event at begin-of-method, end-of-method, or both. *)

type t = Types.class_def

type event_when =
  | On_begin  (** [event begin m(...)] — raised before the body runs *)
  | On_end    (** [event end m(...)] — raised after the body returns *)
  | On_both   (** [event begin && end m(...)] *)

type method_impl = Types.db -> Oid.t -> Value.t list -> Value.t
(** A method body: receives the database, the receiver's OID and the actual
    parameters; returns the method result. *)

val define :
  ?super:string ->
  ?reactive:bool ->
  ?attrs:(string * Value.t) list ->
  ?methods:(string * method_impl) list ->
  ?events:(string * event_when) list ->
  ?all_events:bool ->
  string ->
  t
(** [define name] builds a class definition.
    - [super]: single-inheritance parent (must already exist when the class
      is registered with {!Db.define_class}).
    - [reactive]: defaults to [true] when [events] is non-empty, [false]
      otherwise.  Passive classes bypass the event machinery entirely.
    - [attrs]: attribute names with default values; merged with (and
      overriding) inherited attributes.
    - [events]: the event interface.  Every listed method must be defined by
      this class or an ancestor (checked at registration time).
    - [all_events]: the paper's footnote-7 alternative — treat {e every}
      method of this class as a begin-and-end event generator ("the number
      of events generated will be twice the number of member functions").
      Explicit [events] entries still override per method. *)

(** {1 Inheritance-aware lookups}

    These take the database because resolution walks the registered
    superclass chain. *)

val find : Types.db -> string -> t
(** @raise Errors.No_such_class *)

val mem : Types.db -> string -> bool

val ancestry : Types.db -> string -> string list
(** [ancestry db c] is [c] followed by its superclasses, root last. *)

val is_subclass : Types.db -> sub:string -> super:string -> bool
(** Reflexive: [is_subclass db ~sub:c ~super:c = true]. *)

val lookup_method : Types.db -> string -> string -> Types.method_def
(** [lookup_method db cls m] resolves [m] along the chain starting at [cls].
    @raise Errors.No_such_method *)

val lookup_interface : Types.db -> string -> string -> Types.interface_entry option
(** Event-interface entry for method [m] as seen from [cls]; the nearest
    declaration along the chain wins (a subclass may re-declare when an
    inherited method generates events). *)

val all_attrs : Types.db -> string -> (string * Value.t) list
(** Merged attribute specification (name, default) for instances of a class;
    subclass declarations override superclass ones. *)

val is_reactive : Types.db -> string -> bool
(** True when the class or any ancestor was declared reactive. *)

val methods_of : Types.db -> string -> string list
(** All method names understood by instances of the class (deduplicated). *)
