(** Multi-client isolation: sessions with strict two-phase locking.

    The core {!Transaction} machinery gives one client nested transactions;
    this layer lets several logical clients (sessions) interleave flat
    transactions over the same store with serializable isolation:

    - reads take shared locks, writes take exclusive locks (upgrade allowed
      for a sole holder);
    - locking is {e no-wait}: a conflicting request raises
      {!Errors.Lock_conflict} immediately (deadlock-free by construction —
      the conventional policy is to abort and retry);
    - locks are held until commit/abort (strict 2PL), so interleaved
      committed executions are conflict-serializable;
    - abort undoes the session's own writes.

    Scope and honest limitations, documented up front: sessions are a
    cooperative-concurrency front end for the in-memory substrate (there is
    no OS-level parallelism to protect against); {!send} locks the receiver
    exclusively, but a method body that reaches out to {e other} objects
    through the raw [Db] API is not tracked — lock coverage is exact for
    attribute-level access through the session.  Session transactions are
    independent of the global {!Transaction} stack and must not be mixed
    with it while active. *)

type manager
(** The shared lock table over one database. *)

type t
(** One logical client. *)

val manager : Db.t -> manager
val session : ?name:string -> manager -> t
val name : t -> string

val begin_ : t -> unit
(** @raise Errors.Transaction_error when the session already has an open
    transaction, or when a global {!Transaction} is in progress. *)

val commit : t -> unit
(** Keep the session's writes; release its locks. *)

val abort : t -> unit
(** Undo the session's writes (in reverse order); release its locks. *)

val active : t -> bool

(** {1 Data access}

    Lock lifetimes are explicit: every accessor below requires an open
    session transaction and raises {!Errors.Transaction_error} otherwise. *)

val get : t -> Oid.t -> string -> Value.t
(** Shared lock on the object, then read. *)

val set : t -> Oid.t -> string -> Value.t -> unit
(** Exclusive lock, then write (undo-logged in the session). *)

val send : t -> Oid.t -> string -> Value.t list -> Value.t
(** Exclusive lock on the receiver, then dispatch. Writes performed by the
    method body on the receiver are {e not} individually undo-logged; the
    receiver's full attribute state is snapshotted first and restored on
    abort. *)

val new_object : t -> ?attrs:(string * Value.t) list -> string -> Oid.t
(** The fresh object is born exclusively locked by this session. *)

val delete_object : t -> Oid.t -> unit
(** Exclusive lock, then delete; abort resurrects the object. *)

(** {1 Introspection} *)

val locks_held : t -> (Oid.t * [ `Shared | `Exclusive ]) list
val conflicts : manager -> int
(** Total lock conflicts raised so far. *)
