type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Obj of Oid.t
  | List of t list

let null = Null
let bool b = Bool b
let int n = Int n
let float f = Float f
let str s = Str s
let obj o = Obj o
let list vs = List vs

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "str"
  | Obj _ -> "obj"
  | List _ -> "list"

let bad expected v =
  Errors.type_error "expected %s, got %s" expected (type_name v)

let to_bool = function Bool b -> b | v -> bad "bool" v
let to_int = function Int n -> n | v -> bad "int" v

let to_float = function
  | Float f -> f
  | Int n -> Stdlib.float_of_int n
  | v -> bad "float" v

let to_str = function Str s -> s | v -> bad "str" v
let to_oid = function Obj o -> o | v -> bad "obj" v
let to_list = function List vs -> vs | v -> bad "list" v
let is_null = function Null -> true | _ -> false

let tag_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* numeric values compare against each other *)
  | Str _ -> 3
  | Obj _ -> 4
  | List _ -> 5

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (Stdlib.float_of_int x) y
  | Float x, Int y -> Float.compare x (Stdlib.float_of_int y)
  | Str x, Str y -> String.compare x y
  | Obj x, Obj y -> Oid.compare x y
  | List x, List y -> List.compare compare x y
  | _ -> Int.compare (tag_rank a) (tag_rank b)

let equal a b = compare a b = 0

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Obj o -> Oid.pp ppf o
  | List vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      vs

let to_string v = Format.asprintf "%a" pp v
