(** Dynamically typed attribute values.

    The object layer is dynamically typed, like the C++-with-preprocessor
    layer the paper builds on once objects are reached through OIDs: an
    attribute holds one of a small set of runtime-tagged values.  Method
    parameters, event parameters (the "actual parameters" carried by a
    generated primitive event) and rule-condition inputs are all values of
    this type. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Obj of Oid.t  (** a reference to another object *)
  | List of t list

(** {1 Constructors} *)

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val obj : Oid.t -> t
val list : t list -> t

(** {1 Accessors}

    Each accessor raises {!Errors.Type_error} when the value has the wrong
    tag; [Int] silently widens to [float] in {!to_float} because arithmetic
    conditions in rules routinely mix the two. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_oid : t -> Oid.t
val to_list : t -> t list

val is_null : t -> bool

(** {1 Comparison}

    [compare] is a total order: values of different tags are ordered by tag;
    [Int] and [Float] compare numerically against each other so that query
    predicates behave naturally. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Tag name} *)

val type_name : t -> string
(** ["null"], ["bool"], ["int"], ["float"], ["str"], ["obj"] or ["list"]. *)
