(** Internal-consistency checking.

    Validates the substrate's cross-structure invariants — the checks a
    production store runs after recovery or in stress tests:

    - every live object's class is registered, and every extent entry
      points at a live object of exactly that class (and vice versa);
    - every attribute an object stores is declared by its class chain, and
      every declared attribute is present;
    - every index entry agrees with the indexed object's current attribute
      value, and every matching object is indexed (hash and ordered alike;
      ordered indexes additionally pass {!Btree.check_invariants});
    - no transaction state is leaked ([check ~quiescent:true]).

    Consumer lists may reference deleted objects by design (stale
    subscriptions are ignored at delivery), so they are not flagged. *)

val check : ?quiescent:bool -> Db.t -> (unit, string list) result
(** All violated invariants, human-readable; [Ok ()] when sound.
    [quiescent] (default false) additionally requires no open transaction. *)

val check_exn : ?quiescent:bool -> Db.t -> unit
(** @raise Errors.Transaction_error with the first violation. *)
