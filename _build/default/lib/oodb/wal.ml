open Types

let magic = "SENTINELWAL 1"

type t = {
  wal_db : db;
  path : string;
  mutable oc : out_channel;
  (* one buffer per open transaction, innermost first; entries newest
     first *)
  mutable stack : string list list;
  mutable n_batches : int;
  mutable n_entries : int;
  mutable attached : bool;
}

let batches_written t = t.n_batches
let entries_written t = t.n_entries

(* --- entry codec ----------------------------------------------------------- *)

let oid_s o = string_of_int (Oid.to_int o)

let encode_mutation = function
  | M_create (oid, cls, attrs) ->
    let attr (name, v) = name ^ "=" ^ Persist.encode_value v in
    String.concat " " ([ "c"; oid_s oid; cls ] @ List.map attr attrs)
  | M_delete oid -> "d " ^ oid_s oid
  | M_set (oid, name, v) ->
    Printf.sprintf "s %s %s %s" (oid_s oid) name (Persist.encode_value v)
  | M_subscribe (r, c) -> Printf.sprintf "+ %s %s" (oid_s r) (oid_s c)
  | M_unsubscribe (r, c) -> Printf.sprintf "- %s %s" (oid_s r) (oid_s c)
  | M_subscribe_class (cls, c) -> Printf.sprintf "c+ %s %s" cls (oid_s c)
  | M_unsubscribe_class (cls, c) -> Printf.sprintf "c- %s %s" cls (oid_s c)
  | M_create_index (cls, attr, ordered) ->
    Printf.sprintf "ix %s %s %s" cls attr (if ordered then "o" else "h")
  | M_drop_index (cls, attr) -> Printf.sprintf "dx %s %s" cls attr
  | M_clock now -> "k " ^ string_of_int now

let parse_error fmt =
  Printf.ksprintf (fun s -> raise (Errors.Parse_error s)) fmt

let parse_oid w =
  match int_of_string_opt w with
  | Some n -> Oid.of_int n
  | None -> parse_error "wal: bad oid %S" w

let decode_mutation line =
  let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  match words with
  | "c" :: oid :: cls :: attrs ->
    let attr w =
      match String.index_opt w '=' with
      | Some i ->
        ( String.sub w 0 i,
          Persist.decode_value (String.sub w (i + 1) (String.length w - i - 1)) )
      | None -> parse_error "wal: bad attribute %S" w
    in
    M_create (parse_oid oid, cls, List.map attr attrs)
  | [ "d"; oid ] -> M_delete (parse_oid oid)
  | [ "s"; oid; name; v ] -> M_set (parse_oid oid, name, Persist.decode_value v)
  | [ "+"; r; c ] -> M_subscribe (parse_oid r, parse_oid c)
  | [ "-"; r; c ] -> M_unsubscribe (parse_oid r, parse_oid c)
  | [ "c+"; cls; c ] -> M_subscribe_class (cls, parse_oid c)
  | [ "c-"; cls; c ] -> M_unsubscribe_class (cls, parse_oid c)
  | [ "ix"; cls; attr; k ] ->
    let ordered =
      match k with
      | "o" -> true
      | "h" -> false
      | other -> parse_error "wal: bad index kind %S" other
    in
    M_create_index (cls, attr, ordered)
  | [ "dx"; cls; attr ] -> M_drop_index (cls, attr)
  | [ "k"; now ] -> (
    match int_of_string_opt now with
    | Some v -> M_clock v
    | None -> parse_error "wal: bad clock %S" now)
  | _ -> parse_error "wal: bad entry %S" line

(* --- writing ----------------------------------------------------------------- *)

let write_batch t entries =
  (* entries arrive newest first *)
  output_string t.oc "B\n";
  List.iter
    (fun e ->
      output_string t.oc e;
      output_char t.oc '\n';
      t.n_entries <- t.n_entries + 1)
    (List.rev entries);
  output_string t.oc "E\n";
  flush t.oc;
  t.n_batches <- t.n_batches + 1

let on_event t event =
  if t.attached then
    match event with
    | J_begin -> t.stack <- [] :: t.stack
    | J_mutation m -> (
      let entry = encode_mutation m in
      match t.stack with
      | [] -> write_batch t [ entry ] (* autocommit *)
      | buf :: rest -> t.stack <- (entry :: buf) :: rest)
    | J_commit_inner -> (
      match t.stack with
      | inner :: parent :: rest -> t.stack <- (inner @ parent) :: rest
      | _ -> ())
    | J_commit -> (
      match t.stack with
      | [ buf ] ->
        t.stack <- [];
        if buf <> [] then write_batch t buf
      | _ -> ())
    | J_abort -> (
      match t.stack with [] -> () | _ :: rest -> t.stack <- rest)

let attach db path =
  if db.on_journal <> None then
    raise (Errors.Transaction_error "a journal is already attached");
  if db.txns <> [] then
    raise (Errors.Transaction_error "cannot attach a journal mid-transaction");
  let fresh = not (Sys.file_exists path) || (Unix.stat path).Unix.st_size = 0 in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if fresh then begin
    output_string oc (magic ^ "\n");
    flush oc
  end;
  let t =
    { wal_db = db; path; oc; stack = []; n_batches = 0; n_entries = 0; attached = true }
  in
  db.on_journal <- Some (on_event t);
  t

let detach t =
  if t.attached then begin
    t.attached <- false;
    t.wal_db.on_journal <- None;
    flush t.oc;
    close_out_noerr t.oc
  end

let checkpoint t ~snapshot =
  Persist.save t.wal_db snapshot;
  close_out_noerr t.oc;
  t.oc <- open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 t.path;
  output_string t.oc (magic ^ "\n");
  flush t.oc

(* --- replay ------------------------------------------------------------------- *)

let apply_mutation db m =
  match m with
  | M_create (oid, cls, attrs) ->
    (* force the allocator so replay reproduces the logged OID (aborted
       transactions may have burned identifiers in the original run) *)
    db.next_oid <- Oid.to_int oid;
    let got = Db.new_object db ~attrs cls in
    if not (Oid.equal got oid) then
      parse_error "wal: replay allocated %s, expected %s" (Oid.to_string got)
        (Oid.to_string oid)
  | M_delete oid -> Db.delete_object db oid
  | M_set (oid, name, v) -> Db.set db oid name v
  | M_subscribe (r, c) -> Db.subscribe db ~reactive:r ~consumer:c
  | M_unsubscribe (r, c) -> Db.unsubscribe db ~reactive:r ~consumer:c
  | M_subscribe_class (cls, c) -> Db.subscribe_class db ~cls ~consumer:c
  | M_unsubscribe_class (cls, c) -> Db.unsubscribe_class db ~cls ~consumer:c
  | M_create_index (cls, attr, ordered) ->
    Db.create_index db ~kind:(if ordered then `Ordered else `Hash) ~cls ~attr ()
  | M_drop_index (cls, attr) -> Db.drop_index db ~cls ~attr
  | M_clock now -> Db.advance_clock db now

let replay db path =
  if not (Sys.file_exists path) then 0
  else begin
    let saved_journal = db.on_journal in
    db.on_journal <- None;
    Fun.protect
      ~finally:(fun () -> db.on_journal <- saved_journal)
      (fun () ->
        In_channel.with_open_text path (fun ic ->
            (match In_channel.input_line ic with
            | Some l when l = magic -> ()
            | Some l -> parse_error "wal: bad magic %S" l
            | None -> parse_error "wal: empty file");
            let applied = ref 0 in
            (* read one batch; None = clean EOF or torn tail *)
            let rec read_batch () =
              match In_channel.input_line ic with
              | None -> None
              | Some "B" -> collect []
              | Some "" -> read_batch ()
              | Some l -> parse_error "wal: expected batch start, got %S" l
            and collect acc =
              match In_channel.input_line ic with
              | None -> None (* torn batch: crash mid-write; discard *)
              | Some "E" -> Some (List.rev_map decode_mutation acc)
              | Some l -> collect (l :: acc)
            in
            let rec loop () =
              match read_batch () with
              | None -> ()
              | Some entries ->
                (* apply the whole batch atomically; a batch from the log
                   must replay cleanly or recovery stops *)
                List.iter (apply_mutation db) entries;
                incr applied;
                loop ()
            in
            loop ();
            !applied))
  end
