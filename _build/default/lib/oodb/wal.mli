(** Write-ahead logging and crash recovery.

    {!Persist} snapshots the whole store; this module complements it with an
    append-only log of logical mutations (object creation/deletion,
    attribute writes, subscriptions, index DDL) grouped into transaction
    batches.  Recovery = load the latest snapshot (if any) into a fresh
    database with the same classes registered, then {!replay} the log:
    committed batches are re-applied, aborted transactions never reach the
    log, and a torn batch at the tail (a crash mid-write) is ignored.

    The log records data only — method bodies and rule code re-bind from
    registered classes and the rule layer's registry, exactly as with
    {!Persist}.  Replay reproduces OIDs and the logical clock, so
    occurrence timestamps and rule subscriptions stay coherent.

    Typical lifecycle:
    {[
      let wal = Wal.attach db "app.wal" in
      ... transactions ...
      Wal.checkpoint wal ~snapshot:"app.db";   (* truncates the log *)
      ... crash ...
      (* recovery: *)
      let db = Db.create () in
      register_classes db;
      if Sys.file_exists "app.db" then Persist.load db "app.db";
      let applied = Wal.replay db "app.wal" in
      ...
    ]} *)

type t

val attach : Db.t -> string -> t
(** Install journaling on the database, appending to (or creating) the log
    file.  Mutations outside any transaction are logged as single-entry
    batches; transactional mutations buffer until the outermost commit and
    are dropped on abort (inner aborts drop only their own entries).
    @raise Errors.Transaction_error when a journal is already attached or a
    transaction is open. *)

val detach : t -> unit
(** Flush, close and uninstall.  Idempotent. *)

val checkpoint : t -> snapshot:string -> unit
(** Atomically save a {!Persist} snapshot and truncate the log. *)

val batches_written : t -> int
val entries_written : t -> int

val replay : Db.t -> string -> int
(** Apply all complete batches from the log to [db]; returns how many were
    applied.  A truncated final batch is silently discarded.  A missing
    file counts as an empty log.
    @raise Errors.Parse_error on structurally corrupt entries
    @raise Errors.No_such_class when the log references unregistered
    classes. *)
