lib/workloads/banking.ml: Array Dsl List Oodb Printf Prng
