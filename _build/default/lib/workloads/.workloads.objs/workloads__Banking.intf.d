lib/workloads/banking.mli: Oodb Prng
