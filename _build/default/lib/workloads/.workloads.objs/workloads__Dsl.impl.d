lib/workloads/dsl.ml: List Oodb
