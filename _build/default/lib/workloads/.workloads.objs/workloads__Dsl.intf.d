lib/workloads/dsl.mli: Oodb
