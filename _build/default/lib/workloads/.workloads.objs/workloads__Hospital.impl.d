lib/workloads/hospital.ml: Array List Oodb Printf Prng
