lib/workloads/hospital.mli: Oodb Prng
