lib/workloads/payroll.ml: Array Dsl List Oodb Printf Prng
