lib/workloads/payroll.mli: Oodb Prng
