lib/workloads/prng.mli:
