lib/workloads/stock_market.ml: Array Dsl List Oodb Printf Prng
