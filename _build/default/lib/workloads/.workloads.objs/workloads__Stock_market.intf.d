lib/workloads/stock_market.mli: Oodb Prng
