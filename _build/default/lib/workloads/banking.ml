module Db = Oodb.Db
module Value = Oodb.Value
module Schema = Oodb.Schema

let account_class = "account"

let deposit_impl db self args =
  let amount = Value.to_float (Dsl.one_arg "deposit" args) in
  let balance = Value.to_float (Db.get db self "balance") in
  Db.set db self "balance" (Value.Float (balance +. amount));
  Value.Null

let withdraw_impl db self args =
  let amount = Value.to_float (Dsl.one_arg "withdraw" args) in
  let balance = Value.to_float (Db.get db self "balance") in
  Db.set db self "balance" (Value.Float (balance -. amount));
  Value.Null

let install db =
  if not (Db.has_class db account_class) then
    Db.define_class db
      (Schema.define account_class
         ~attrs:[ ("owner", Value.Str ""); ("balance", Value.Float 0.) ]
         ~methods:
           [
             ("deposit", deposit_impl);
             ("withdraw", withdraw_impl);
             ("get_balance", Dsl.getter "balance");
           ]
         ~events:[ ("deposit", Schema.On_end); ("withdraw", Schema.On_both) ])

let populate db rng ~accounts =
  Array.init accounts (fun i ->
      Db.new_object db account_class
        ~attrs:
          [
            ("owner", Value.Str (Printf.sprintf "acct-%d" i));
            ("balance", Value.Float (Prng.float rng 1000.));
          ])

let transactions rng accounts ~n ?(withdraw_rate = 0.4) () =
  List.init n (fun _ ->
      let account = Prng.choice rng accounts in
      let amount = Value.Float (1. +. Prng.float rng 499.) in
      if Prng.bool rng withdraw_rate then (account, "withdraw", [ amount ])
      else (account, "deposit", [ amount ]))
