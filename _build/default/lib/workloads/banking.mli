(** The paper's §4.6 account scenario: the composite event
    "deposit followed by an attempt to withdraw"

    {v Event* deposit  = new Primitive ("end Account::Deposit(float x)")
       Event* withdraw = new Primitive ("before Account::Withdraw(float x)")
       Event* DepWit   = new Sequence (deposit, withdraw) v} *)

val account_class : string
(** ["account"]: attr [balance]; reactive [deposit] (eom) and [withdraw]
    (bom {e and} eom — the "attempt" is the begin-of-method event). *)

val install : Oodb.Db.t -> unit

val populate : Oodb.Db.t -> Prng.t -> accounts:int -> Oodb.Oid.t array

val transactions :
  Prng.t ->
  Oodb.Oid.t array ->
  n:int ->
  ?withdraw_rate:float ->
  unit ->
  (Oodb.Oid.t * string * Oodb.Value.t list) list
(** Deposit/withdraw mix ([withdraw_rate] defaults to 0.4); amounts in
    [\[1, 500)].  Withdrawals may overdraw — rules are expected to police
    that. *)
