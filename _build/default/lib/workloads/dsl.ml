module Db = Oodb.Db
module Value = Oodb.Value
module Errors = Oodb.Errors

let one_arg meth = function
  | [ v ] -> v
  | args -> Errors.type_error "%s expects 1 argument, got %d" meth (List.length args)

let setter attr db self args =
  Db.set db self attr (one_arg attr args);
  Value.Null

let getter attr db self _args = Db.get db self attr

let adder attr db self args =
  let delta = Value.to_float (one_arg attr args) in
  let current = Value.to_float (Db.get db self attr) in
  Db.set db self attr (Value.Float (current +. delta));
  Value.Null

let apply_ops db ops =
  List.iter (fun (oid, meth, args) -> ignore (Db.send db oid meth args)) ops
