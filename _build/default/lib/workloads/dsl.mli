(** Helpers for defining workload classes: standard setter/getter method
    bodies so each scenario module declares its schema compactly. *)

val setter : string -> Oodb.Schema.method_impl
(** [setter attr] assigns its single argument to [attr] and returns [Null]. *)

val getter : string -> Oodb.Schema.method_impl
(** [getter attr] ignores its arguments and returns the attribute. *)

val adder : string -> Oodb.Schema.method_impl
(** [adder attr] adds its single numeric argument to a float attribute. *)

val apply_ops : Oodb.Db.t -> (Oodb.Oid.t * string * Oodb.Value.t list) list -> unit
(** Send each operation in order. *)

val one_arg : string -> Oodb.Value.t list -> Oodb.Value.t
(** Arity check for single-argument method bodies.
    @raise Oodb.Errors.Type_error on any other arity. *)
