module Db = Oodb.Db
module Value = Oodb.Value
module Errors = Oodb.Errors
module Schema = Oodb.Schema

let patient_class = "patient"
let physician_class = "physician"

let record_vitals_impl db self args =
  match args with
  | [ temperature; pulse ] ->
    Db.set db self "temperature" temperature;
    Db.set db self "pulse" pulse;
    Value.Null
  | _ -> Errors.type_error "record_vitals expects (temperature, pulse)"

let set_admitted flag db self _args =
  Db.set db self "admitted" (Value.Bool flag);
  Value.Null

let alert_impl db self _args =
  let n = Value.to_int (Db.get db self "alerts") in
  Db.set db self "alerts" (Value.Int (n + 1));
  Value.Null

let install db =
  if not (Db.has_class db patient_class) then begin
    Db.define_class db
      (Schema.define patient_class
         ~attrs:
           [
             ("name", Value.Str "");
             ("temperature", Value.Float 36.8);
             ("pulse", Value.Int 70);
             ("admitted", Value.Bool true);
           ]
         ~methods:
           [
             ("record_vitals", record_vitals_impl);
             ("admit", set_admitted true);
             ("discharge", set_admitted false);
           ]
         ~events:
           [
             ("record_vitals", Schema.On_end);
             ("admit", Schema.On_end);
             ("discharge", Schema.On_end);
           ]);
    Db.define_class db
      (Schema.define physician_class
         ~attrs:[ ("name", Value.Str ""); ("alerts", Value.Int 0) ]
         ~methods:[ ("alert", alert_impl) ])
  end

type ward = { patients : Oodb.Oid.t array; physicians : Oodb.Oid.t array }

let populate db rng ~patients ~physicians =
  ignore rng;
  let mk_patient i =
    Db.new_object db patient_class
      ~attrs:[ ("name", Value.Str (Printf.sprintf "patient-%d" i)) ]
  in
  let mk_physician i =
    Db.new_object db physician_class
      ~attrs:[ ("name", Value.Str (Printf.sprintf "dr-%d" i)) ]
  in
  {
    patients = Array.init patients mk_patient;
    physicians = Array.init physicians mk_physician;
  }

let vitals_stream rng ward ~n ?(fever_rate = 0.05) () =
  List.init n (fun _ ->
      let patient = Prng.choice rng ward.patients in
      let febrile = Prng.bool rng fever_rate in
      let temperature =
        if febrile then 39.0 +. Prng.float rng 2.0
        else 36.0 +. Prng.float rng 1.5
      in
      let pulse =
        if febrile then 95 + Prng.int rng 40 else 55 + Prng.int rng 40
      in
      ( patient,
        "record_vitals",
        [ Value.Float temperature; Value.Int pulse ] ))
