(** The paper's §2.1 patient-database motivation: patients are defined long
    before anyone knows who will monitor them; physicians and monitoring
    groups attach rules at runtime, depending on diagnoses. *)

val patient_class : string
(** ["patient"]: attrs [name], [temperature], [pulse], [admitted];
    reactive [record_vitals] (eom, args (temperature, pulse)), [admit]
    (eom), [discharge] (eom). *)

val physician_class : string
(** ["physician"]: attrs [name], [alerts] (int counter); passive method
    [alert] increments the counter. *)

val install : Oodb.Db.t -> unit

type ward = { patients : Oodb.Oid.t array; physicians : Oodb.Oid.t array }

val populate : Oodb.Db.t -> Prng.t -> patients:int -> physicians:int -> ward

val vitals_stream :
  Prng.t ->
  ward ->
  n:int ->
  ?fever_rate:float ->
  unit ->
  (Oodb.Oid.t * string * Oodb.Value.t list) list
(** [n] [record_vitals] messages; with probability [fever_rate] (default
    0.05) a reading is febrile (temperature ≥ 39.0), otherwise normal
    (36.0–37.5). *)
