module Db = Oodb.Db
module Value = Oodb.Value
module Schema = Oodb.Schema

let employee_class = "employee"
let manager_class = "manager"

let install db =
  if not (Db.has_class db employee_class) then begin
    Db.define_class db
      (Schema.define employee_class
         ~attrs:
           [
             ("name", Value.Str "");
             ("salary", Value.Float 0.);
             ("income", Value.Float 0.);
             ("age", Value.Int 30);
             ("mgr", Value.Null);
           ]
         ~methods:
           [
             ("set_salary", Dsl.setter "salary");
             ("get_salary", Dsl.getter "salary");
             ("change_income", Dsl.setter "income");
             ("get_age", Dsl.getter "age");
             ("get_name", Dsl.getter "name");
           ]
         ~events:
           [
             ("set_salary", Schema.On_end);
             ("change_income", Schema.On_end);
             ("get_salary", Schema.On_end);
             ("get_age", Schema.On_both);
           ]);
    Db.define_class db (Schema.define manager_class ~super:employee_class)
  end

type population = { managers : Oodb.Oid.t array; employees : Oodb.Oid.t array }

let populate db rng ~managers ~employees =
  let mk cls i salary =
    Db.new_object db cls
      ~attrs:
        [
          ("name", Value.Str (Printf.sprintf "%s-%d" cls i));
          ("salary", Value.Float salary);
          ("income", Value.Float salary);
          ("age", Value.Int (25 + Prng.int rng 40));
        ]
  in
  let mgrs =
    Array.init managers (fun i ->
        mk manager_class i (5000. +. Prng.float rng 5000.))
  in
  let emps =
    Array.init employees (fun i ->
        let e = mk employee_class i (1000. +. Prng.float rng 3000.) in
        if managers > 0 then
          Db.set db e "mgr" (Value.Obj (Prng.choice rng mgrs));
        e)
  in
  { managers = mgrs; employees = emps }

let pick_target rng pop =
  let nm = Array.length pop.managers and ne = Array.length pop.employees in
  let k = Prng.int rng (nm + ne) in
  if k < nm then (pop.managers.(k), true) else (pop.employees.(k - nm), false)

let salary_updates rng pop ~n =
  List.init n (fun _ ->
      let target, is_mgr = pick_target rng pop in
      let salary =
        if is_mgr then 5000. +. Prng.float rng 5000.
        else 1000. +. Prng.float rng 3000.
      in
      (target, "set_salary", [ Value.Float salary ]))

let income_updates rng pop ~n =
  List.init n (fun _ ->
      let target, is_mgr = pick_target rng pop in
      let income =
        if is_mgr then 5000. +. Prng.float rng 5000.
        else 1000. +. Prng.float rng 3000.
      in
      (target, "change_income", [ Value.Float income ]))
