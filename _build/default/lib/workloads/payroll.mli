(** The paper's running payroll example (Figures 8–13): [employee] with a
    [manager] subclass, salary/income updates, and the Salary-check and
    IncomeLevel rules built on them. *)

val employee_class : string
(** ["employee"]: attrs [name], [salary], [income], [mgr] (manager OID or
    null); reactive methods [set_salary] (eom), [change_income] (eom),
    [get_salary] (eom), [get_age] (bom+eom) — the Figure 8 interface —
    plus passive [get_name]. *)

val manager_class : string
(** ["manager"], subclass of employee. *)

val install : Oodb.Db.t -> unit

type population = {
  managers : Oodb.Oid.t array;
  employees : Oodb.Oid.t array;  (** each wired to a manager via [mgr] *)
}

val populate :
  Oodb.Db.t -> Prng.t -> managers:int -> employees:int -> population
(** Managers get salaries in [\[5000, 10000)], employees in [\[1000, 4000)]. *)

val salary_updates :
  Prng.t ->
  population ->
  n:int ->
  (Oodb.Oid.t * string * Oodb.Value.t list) list
(** [n] random [set_salary] messages over the whole population; targets and
    amounts are drawn deterministically from the PRNG.  Updates stay within
    each role's salary band so they do not violate the Salary-check
    constraint (violation injection is up to the caller). *)

val income_updates :
  Prng.t ->
  population ->
  n:int ->
  (Oodb.Oid.t * string * Oodb.Value.t list) list
(** Random [change_income] messages (Figure 10's IncomeLevel scenario). *)
