type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the conversion to OCaml's 63-bit int stays positive *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t p = float t 1.0 < p

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
