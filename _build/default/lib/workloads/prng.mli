(** Deterministic pseudo-random numbers (splitmix64).

    Workloads must be reproducible across runs and platforms, so they use
    this self-contained generator rather than [Stdlib.Random]. *)

type t

val create : int -> t
(** Seeded generator; equal seeds yield equal streams. *)

val next : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choice : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
