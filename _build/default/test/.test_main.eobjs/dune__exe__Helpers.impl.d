test/helpers.ml: Alcotest Events List Oodb Sentinel String Workloads
