test/test_analysis.ml: Alcotest Expr Format Helpers List Oid Oodb Sentinel System
