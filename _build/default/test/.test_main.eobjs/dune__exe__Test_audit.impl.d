test/test_audit.ml: Alcotest Db Errors Events Expr Helpers List Oodb Sentinel System Transaction Value Workloads
