test/test_baselines.ml: Alcotest Baselines Db Errors Helpers List Oodb Printf Transaction Value
