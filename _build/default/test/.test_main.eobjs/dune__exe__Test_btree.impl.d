test/test_btree.ml: Alcotest Helpers List Oid Oodb Printf QCheck2 QCheck_alcotest Value
