test/test_db.ml: Alcotest Db Errors Helpers List Oid Oodb Value
