test/test_detector.ml: Alcotest Events Expr Helpers List Oid Oodb QCheck2 QCheck_alcotest String
