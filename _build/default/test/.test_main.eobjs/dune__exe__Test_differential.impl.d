test/test_differential.ml: Alcotest Array Baselines Db Expr Helpers List Oodb Printf QCheck2 QCheck_alcotest System Value Workloads
