test/test_event_graph.ml: Alcotest Array Events Expr Helpers List Oodb Printf QCheck2 QCheck_alcotest
