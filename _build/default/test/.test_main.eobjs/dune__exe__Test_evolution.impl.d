test/test_evolution.ml: Alcotest Db Errors Expr Helpers Oodb Schema System Transaction Value Workloads
