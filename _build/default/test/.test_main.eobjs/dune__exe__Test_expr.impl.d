test/test_expr.ml: Alcotest Errors Events Expr Helpers List Oid Oodb QCheck2 QCheck_alcotest String
