test/test_gc.ml: Alcotest Db Expr Helpers List Oid Oodb Schema System Transaction Value
