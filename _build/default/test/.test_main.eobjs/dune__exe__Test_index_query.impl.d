test/test_index_query.ml: Alcotest Db Helpers List Oid Oodb Printf QCheck2 QCheck_alcotest Schema Transaction Value
