test/test_interactions.ml: Alcotest Array Db Events Expr Filename Fun Helpers List Oodb Printf QCheck2 QCheck_alcotest Schema Sentinel Sys System Transaction Value Workloads
