test/test_introspect.ml: Alcotest Db Expr Format Helpers List Oodb Sentinel System Value
