test/test_paper_examples.ml: Alcotest Array Baselines Db Errors Events Expr Helpers List Oid Oodb Schema Sentinel System Transaction Value Workloads
