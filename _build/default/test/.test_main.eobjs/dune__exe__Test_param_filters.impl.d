test/test_param_filters.ml: Alcotest Array Db Errors Events Expr Helpers List Oid Oodb Printf System Value Workloads
