test/test_parser.ml: Alcotest Errors Events Expr Helpers List Oid Printf QCheck2 QCheck_alcotest Test_expr
