test/test_persist.ml: Alcotest Db Errors Filename Fun Helpers List Oid Oodb QCheck2 QCheck_alcotest Sys System Test_value Transaction Value Workloads
