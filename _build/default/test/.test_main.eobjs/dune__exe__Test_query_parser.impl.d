test/test_query_parser.ml: Alcotest Db Errors Helpers List Oid Oodb Printf String Value
