test/test_rehydrate.ml: Alcotest Db Events Expr Helpers Oodb Sentinel System Value Workloads
