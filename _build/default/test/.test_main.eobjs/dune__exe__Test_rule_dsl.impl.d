test/test_rule_dsl.ml: Alcotest Db Errors Events Expr Filename Fun Helpers List Oid Out_channel Printf Sentinel String Sys System Value
