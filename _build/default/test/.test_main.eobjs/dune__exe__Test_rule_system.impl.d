test/test_rule_system.ml: Alcotest Db Errors Events Expr Helpers List Sentinel System Transaction Value
