test/test_schema.ml: Alcotest Db Errors Helpers List Oodb Schema Value Workloads
