test/test_session.ml: Alcotest Db Errors Format Helpers List Oodb Transaction Value
