test/test_signature.ml: Alcotest Errors Events Helpers List Oodb
