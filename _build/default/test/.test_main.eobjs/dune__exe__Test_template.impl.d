test/test_template.ml: Alcotest Db Expr Helpers List Oodb Sentinel System Value Workloads
