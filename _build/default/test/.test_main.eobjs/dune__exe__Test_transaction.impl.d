test/test_transaction.ml: Alcotest Array Db Errors Helpers List Oid QCheck2 QCheck_alcotest Transaction Value
