test/test_value.ml: Alcotest Errors Helpers List Oid Oodb QCheck2 QCheck_alcotest Value
