test/test_verify.ml: Alcotest Array Db Errors Hashtbl Helpers List Oodb QCheck2 QCheck_alcotest String Transaction Value Workloads
