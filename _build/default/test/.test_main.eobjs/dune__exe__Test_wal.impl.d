test/test_wal.ml: Alcotest Array Db Errors Expr Filename Fun Helpers List Oid Oodb QCheck2 QCheck_alcotest Sys System Transaction Value
