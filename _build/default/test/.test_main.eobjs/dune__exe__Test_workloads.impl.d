test/test_workloads.ml: Alcotest Array Db Helpers Int List Value Workloads
