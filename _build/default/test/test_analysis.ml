open Helpers
module Analysis = Sentinel.Analysis

(* A system where actions declare what they may send. *)
let fixture () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "quiet" (fun _ _ -> ());
  System.register_action sys
    ~may_send:[ ("change_income", Oodb.Types.After) ]
    "bump-income"
    (fun _ _ -> ());
  (db, sys)

let rule sys name ~on ~action =
  System.create_rule sys ~name ~event:(Expr.eom ~cls:"employee" on)
    ~condition:"true" ~action ()

let test_edges_and_termination () =
  let _db, sys = fixture () in
  (* salary-rule's action may send change_income; income-rule listens *)
  let r1 = rule sys "salary-rule" ~on:"set_salary" ~action:"bump-income" in
  let r2 = rule sys "income-rule" ~on:"change_income" ~action:"quiet" in
  Alcotest.(check (list (pair oid oid))) "one edge" [ (r1, r2) ] (Analysis.edges sys);
  Alcotest.(check (list oid)) "successors" [ r2 ] (Analysis.may_trigger sys r1);
  Alcotest.(check bool) "terminating" true (Analysis.is_terminating sys);
  match Analysis.strata sys with
  | Some [ s0; s1 ] ->
    Alcotest.(check (list oid)) "stratum 0 = leaf" [ r2 ] s0;
    Alcotest.(check (list oid)) "stratum 1 = trigger" [ r1 ] s1
  | _ -> Alcotest.fail "expected two strata"

let test_self_loop () =
  let _db, sys = fixture () in
  let a = Oodb.Types.After in
  System.register_action sys ~may_send:[ ("set_salary", a) ] "re-set"
    (fun _ _ -> ());
  let r = rule sys "loop" ~on:"set_salary" ~action:"re-set" in
  Alcotest.(check bool) "not terminating" false (Analysis.is_terminating sys);
  Alcotest.(check (list (list oid))) "self cycle" [ [ r ] ] (Analysis.cycles sys);
  Alcotest.(check bool) "no strata" true (Analysis.strata sys = None)

let test_two_rule_cycle () =
  let _db, sys = fixture () in
  let a = Oodb.Types.After in
  System.register_action sys ~may_send:[ ("change_income", a) ] "poke-income"
    (fun _ _ -> ());
  System.register_action sys ~may_send:[ ("set_salary", a) ] "poke-salary"
    (fun _ _ -> ());
  let r1 = rule sys "r1" ~on:"set_salary" ~action:"poke-income" in
  let r2 = rule sys "r2" ~on:"change_income" ~action:"poke-salary" in
  (match Analysis.cycles sys with
  | [ component ] ->
    Alcotest.(check (list oid)) "both in the cycle" [ r1; r2 ]
      (List.sort Oid.compare component)
  | _ -> Alcotest.fail "expected one cycle");
  (* breaking the cycle by deleting one rule restores termination *)
  System.delete_rule sys r2;
  Alcotest.(check bool) "terminating after delete" true
    (Analysis.is_terminating sys)

let test_modifier_precision () =
  let _db, sys = fixture () in
  (* action sends eom change_income; a rule on BOM change_income is NOT
     triggered by it *)
  ignore (rule sys "sender" ~on:"set_salary" ~action:"bump-income");
  ignore
    (System.create_rule sys ~name:"bom-listener"
       ~event:(Expr.bom ~cls:"employee" "change_income")
       ~condition:"true" ~action:"quiet" ());
  Alcotest.(check (list (pair oid oid))) "no edge across modifiers" []
    (Analysis.edges sys)

let test_undeclared_effects_are_silent () =
  let _db, sys = fixture () in
  ignore (rule sys "a" ~on:"set_salary" ~action:"quiet");
  ignore (rule sys "b" ~on:"set_salary" ~action:"quiet");
  Alcotest.(check (list (pair oid oid))) "no declared effects, no edges" []
    (Analysis.edges sys);
  Alcotest.(check bool) "trivially terminating" true (Analysis.is_terminating sys)

let test_report_renders () =
  let _db, sys = fixture () in
  ignore (rule sys "salary-rule" ~on:"set_salary" ~action:"bump-income");
  ignore (rule sys "income-rule" ~on:"change_income" ~action:"quiet");
  let report = Format.asprintf "%a" Analysis.pp_report sys in
  Alcotest.(check bool) "mentions edge" true
    (contains_substring ~sub:"salary-rule may trigger income-rule" report);
  Alcotest.(check bool) "verdict" true
    (contains_substring ~sub:"terminating" report)

let suite =
  [
    test "edges, termination, strata" test_edges_and_termination;
    test "self loop detected" test_self_loop;
    test "two-rule cycle" test_two_rule_cycle;
    test "modifier precision" test_modifier_precision;
    test "undeclared effects are silent" test_undeclared_effects_are_silent;
    test "report renders" test_report_renders;
  ]
