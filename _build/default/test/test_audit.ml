open Helpers
module Audit = Sentinel.Audit

let fixture ?persist () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  System.register_condition sys "big" (fun _db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] -> Value.to_float (List.hd occ.params) > 100.
      | _ -> false);
  let audit = Audit.attach ?persist sys in
  (db, sys, audit)

let watch sys ?(name = "watch") ?(condition = "true") ?(action = "noop") target =
  System.create_rule sys ~name ~monitor:[ target ]
    ~event:(Expr.eom ~cls:"employee" "set_salary")
    ~condition ~action ()

let test_outcomes_logged () =
  let db, sys, audit = fixture () in
  let e = new_employee db in
  let r = watch sys e ~condition:"big" in
  ignore (Db.send db e "set_salary" [ Value.Float 50. ]); (* condition false *)
  ignore (Db.send db e "set_salary" [ Value.Float 200. ]); (* fires *)
  (match Audit.entries audit with
  | [ a; b ] ->
    Alcotest.(check bool) "first false" true (a.e_outcome = Audit.Condition_false);
    Alcotest.(check bool) "second fired" true (b.e_outcome = Audit.Fired);
    Alcotest.check oid "rule recorded" r a.e_rule;
    Alcotest.(check string) "name" "watch" a.e_rule_name;
    Alcotest.(check bool) "chronological" true (a.e_at < b.e_at)
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  Alcotest.(check int) "count" 2 (Audit.count audit);
  Alcotest.(check int) "per-rule filter" 2 (List.length (Audit.entries_for audit r));
  Audit.clear audit;
  Alcotest.(check int) "cleared" 0 (List.length (Audit.entries audit))

let test_abort_logged () =
  let db, sys, audit = fixture () in
  let e = new_employee db in
  ignore (watch sys e ~action:"abort");
  (match
     Transaction.atomically db (fun () ->
         ignore (Db.send db e "set_salary" [ Value.Float 1. ]))
   with
  | Error (Errors.Rule_abort _) -> ()
  | _ -> Alcotest.fail "expected abort");
  match Audit.entries audit with
  | [ { e_outcome = Audit.Aborted _; _ } ] -> ()
  | _ -> Alcotest.fail "abort not logged"

let test_persistent_firings () =
  let db, sys, _audit = fixture ~persist:true () in
  let e = new_employee db in
  let r = watch sys e in
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  ignore (Db.send db e "set_salary" [ Value.Float 2. ]);
  (match Audit.stored_firings sys with
  | [ f1; _f2 ] ->
    Alcotest.check value "references rule" (Value.Obj r) (Db.get db f1 "rule");
    Alcotest.(check string) "outcome attr" "fired"
      (Value.to_str (Db.get db f1 "outcome"))
  | l -> Alcotest.failf "expected 2 firing objects, got %d" (List.length l));
  (* firing records of an aborted transaction vanish with it *)
  System.register_action sys "mutate-then-abort" (fun db _ ->
      Db.set db e "income" (Value.Float 1.);
      raise (Errors.Rule_abort "no"));
  ignore (watch sys e ~name:"aborter" ~action:"mutate-then-abort");
  (match
     Transaction.atomically db (fun () ->
         ignore (Db.send db e "set_salary" [ Value.Float 3. ]))
   with
  | Error (Errors.Rule_abort _) -> ()
  | _ -> Alcotest.fail "expected abort");
  (* the "watch" firing inside the aborted txn must not persist *)
  Alcotest.(check int) "aborted txn leaves no records" 2
    (List.length (Audit.stored_firings sys));
  (* ... and the persistent records survive a save/load round trip *)
  let db2 = Db.create () in
  Workloads.Payroll.install db2;
  let sys2 = System.create db2 in
  Oodb.Persist.of_string db2 (Oodb.Persist.to_string db);
  Alcotest.(check int) "audit survives reload" 2
    (List.length (Audit.stored_firings sys2))

let test_detach () =
  let db, sys, audit = fixture () in
  let e = new_employee db in
  ignore (watch sys e);
  Audit.detach audit;
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "no longer observing" 0 (Audit.count audit)

let test_limit () =
  let db, sys, _ = fixture () in
  let audit = Audit.attach ~limit:10 sys in
  let e = new_employee db in
  ignore (watch sys e);
  for i = 1 to 100 do
    ignore (Db.send db e "set_salary" [ Value.Float (float_of_int i) ])
  done;
  Alcotest.(check int) "total counted" 100 (Audit.count audit);
  Alcotest.(check bool) "log bounded" true (List.length (Audit.entries audit) <= 10)

let suite =
  [
    test "outcomes logged" test_outcomes_logged;
    test "abort logged" test_abort_logged;
    test "persistent firing objects" test_persistent_firings;
    test "detach" test_detach;
    test "memory bound" test_limit;
  ]
