open Helpers
module Ode = Baselines.Ode
module Adam = Baselines.Adam

let salary db o = Value.to_float (Db.get db o "salary")

(* --- Ode ------------------------------------------------------------------- *)

let ode_fixture () =
  let db = employee_db () in
  let ode = Ode.create db in
  Ode.declare_constraint ode ~cls:"employee" ~name:"non-negative-salary"
    (fun db o -> salary db o >= 0.);
  (db, ode)

let test_ode_hard_constraint () =
  let db, ode = ode_fixture () in
  let e = new_employee db ~salary:5. in
  (match
     Transaction.atomically db (fun () ->
         ignore (Ode.send ode e "set_salary" [ Value.Float (-1.) ]))
   with
  | Ok () -> Alcotest.fail "violation accepted"
  | Error (Errors.Rule_abort _) -> ()
  | Error e -> raise e);
  Alcotest.check value "rolled back" (Value.Float 5.) (Db.get db e "salary");
  (* a legal update passes *)
  ignore (Ode.send ode e "set_salary" [ Value.Float 7. ]);
  Alcotest.check value "accepted" (Value.Float 7.) (Db.get db e "salary")

let test_ode_soft_constraint_repairs () =
  let db = employee_db () in
  let ode = Ode.create db in
  Ode.declare_constraint ode ~cls:"employee" ~name:"salary-cap" ~kind:Ode.Soft
    ~repair:(fun db o -> Db.set db o "salary" (Value.Float 100.))
    (fun db o -> salary db o <= 100.);
  let e = new_employee db ~salary:50. in
  ignore (Ode.send ode e "set_salary" [ Value.Float 500. ]);
  Alcotest.check value "repaired to cap" (Value.Float 100.) (Db.get db e "salary")

let test_ode_soft_needs_repair () =
  let db = employee_db () in
  let ode = Ode.create db in
  check_raises_any "soft without repair" (fun () ->
      Ode.declare_constraint ode ~cls:"employee" ~name:"x" ~kind:Ode.Soft
        (fun _ _ -> true))

let test_ode_frozen_after_instances () =
  let db, ode = ode_fixture () in
  ignore (new_employee db);
  check_raises_any "compile-time restriction" (fun () ->
      Ode.declare_constraint ode ~cls:"employee" ~name:"late" (fun _ _ -> true))

let test_ode_rebuild () =
  let db, ode = ode_fixture () in
  for _ = 1 to 10 do
    ignore (new_employee db ~salary:50.)
  done;
  let revisited =
    Ode.add_constraint_with_rebuild ode ~cls:"employee" ~name:"cap"
      (fun db o -> salary db o <= 60.)
  in
  Alcotest.(check int) "all instances revisited" 10 revisited;
  Alcotest.(check (list string))
    "constraint active" [ "non-negative-salary"; "cap" ]
    (Ode.constraints_of ode "employee");
  (* rebuild against violating data aborts *)
  ignore (new_employee db ~salary:1000.);
  check_raises_any "violating instance rejected" (fun () ->
      ignore
        (Ode.add_constraint_with_rebuild ode ~cls:"employee" ~name:"cap2"
           (fun db o -> salary db o <= 500.)))

let test_ode_inheritance () =
  let db, ode = ode_fixture () in
  (* the employee constraint applies to manager instances too *)
  let m = new_employee db ~cls:"manager" ~salary:10. in
  Alcotest.(check (list string))
    "inherited" [ "non-negative-salary" ]
    (Ode.constraints_of ode "manager");
  match
    Transaction.atomically db (fun () ->
        ignore (Ode.send ode m "set_salary" [ Value.Float (-5.) ]))
  with
  | Ok () -> Alcotest.fail "subclass escaped the constraint"
  | Error (Errors.Rule_abort _) -> ()
  | Error e -> raise e

let test_ode_duplicate_name () =
  let db, ode = ode_fixture () in
  ignore db;
  check_raises_any "duplicate" (fun () ->
      Ode.declare_constraint ode ~cls:"employee" ~name:"non-negative-salary"
        (fun _ _ -> true))

let test_ode_counters () =
  let db, ode = ode_fixture () in
  let e = new_employee db in
  ignore (Ode.send ode e "set_salary" [ Value.Float 1. ]);
  ignore (Ode.send ode e "set_salary" [ Value.Float 2. ]);
  Alcotest.(check int) "checks counted" 2 (Ode.checks_performed ode);
  Alcotest.(check int) "no violations" 0 (Ode.violations ode)

(* --- ADAM ------------------------------------------------------------------- *)

let adam_fixture () =
  let db = employee_db () in
  let adam = Adam.create db in
  let fired = ref [] in
  let rule =
    Adam.add_rule adam ~name:"watch" ~active_class:"employee" ~meth:"set_salary"
      ~condition:(fun _ _ -> true)
      ~action:(fun _db occ -> fired := occ :: !fired)
      ()
  in
  (db, adam, rule, fun () -> List.length !fired)

let test_adam_class_level_dispatch () =
  let db, _adam, rule, fired = adam_fixture () in
  let e = new_employee db in
  let m = new_employee db ~cls:"manager" in
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  ignore (Db.send db m "set_salary" [ Value.Float 2. ]); (* subclass matches *)
  ignore (Db.send db e "change_income" [ Value.Float 3. ]); (* method mismatch *)
  Alcotest.(check int) "fired" 2 (fired ());
  Alcotest.(check int) "rule counter" 2 (Adam.fired rule)

let test_adam_disabled_for () =
  let db, adam, rule, fired = adam_fixture () in
  let e1 = new_employee db and e2 = new_employee db in
  Adam.disable_for adam rule e1;
  ignore (Db.send db e1 "set_salary" [ Value.Float 1. ]);
  ignore (Db.send db e2 "set_salary" [ Value.Float 2. ]);
  Alcotest.(check int) "e1 excluded" 1 (fired ());
  Adam.enable_for adam rule e1;
  ignore (Db.send db e1 "set_salary" [ Value.Float 3. ]);
  Alcotest.(check int) "re-included" 2 (fired ())

let test_adam_enable_disable_remove () =
  let db, adam, rule, fired = adam_fixture () in
  let e = new_employee db in
  Adam.disable rule;
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Adam.enable rule;
  ignore (Db.send db e "set_salary" [ Value.Float 2. ]);
  Adam.remove_rule adam rule;
  ignore (Db.send db e "set_salary" [ Value.Float 3. ]);
  Alcotest.(check int) "only the enabled window" 1 (fired ());
  Alcotest.(check int) "no rules left" 0 (Adam.rule_count adam)

let test_adam_centralized_scan_cost () =
  let db, adam, _rule, _fired = adam_fixture () in
  (* add 9 unrelated rules: every event still scans all 10 *)
  for i = 1 to 9 do
    ignore
      (Adam.add_rule adam
         ~name:(Printf.sprintf "unrelated-%d" i)
         ~active_class:"manager" ~meth:"get_age"
         ~condition:(fun _ _ -> true)
         ~action:(fun _ _ -> ())
         ())
  done;
  let e = new_employee db in
  let before = Adam.scans adam in
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "every rule scanned for one event" 10
    (Adam.scans adam - before)

let test_adam_modifier () =
  let db = employee_db () in
  let adam = Adam.create db in
  let boms = ref 0 in
  ignore
    (Adam.add_rule adam ~name:"bom-watch" ~active_class:"employee" ~meth:"get_age"
       ~modifier:Oodb.Types.Before
       ~condition:(fun _ _ -> true)
       ~action:(fun _ _ -> incr boms)
       ());
  let e = new_employee db in
  ignore (Db.send db e "get_age" []); (* generates bom + eom *)
  Alcotest.(check int) "only bom matched" 1 !boms

let suite =
  [
    test "ode: hard constraint aborts" test_ode_hard_constraint;
    test "ode: soft constraint repairs" test_ode_soft_constraint_repairs;
    test "ode: soft requires repair" test_ode_soft_needs_repair;
    test "ode: frozen after instances" test_ode_frozen_after_instances;
    test "ode: rebuild revisits instances" test_ode_rebuild;
    test "ode: constraints inherited" test_ode_inheritance;
    test "ode: duplicate names rejected" test_ode_duplicate_name;
    test "ode: counters" test_ode_counters;
    test "adam: class-level dispatch" test_adam_class_level_dispatch;
    test "adam: disabled-for list" test_adam_disabled_for;
    test "adam: enable/disable/remove" test_adam_enable_disable_remove;
    test "adam: centralized scan cost" test_adam_centralized_scan_cost;
    test "adam: modifier filter" test_adam_modifier;
  ]
