open Helpers
module Btree = Oodb.Btree

let vi n = Value.Int n
let o n = Oid.of_int n

let check_ok t label =
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invariant broken: %s" label msg

let test_empty () =
  let t = Btree.create () in
  check_ok t "empty";
  Alcotest.(check int) "cardinal" 0 (Btree.cardinal t);
  Alcotest.(check int) "keys" 0 (Btree.key_count t);
  Alcotest.(check int) "height" 1 (Btree.height t);
  Alcotest.(check (list int)) "find" [] (List.map Oid.to_int (Btree.find t (vi 1)));
  Alcotest.(check bool) "min" true (Btree.min_key t = None);
  Alcotest.(check bool) "max" true (Btree.max_key t = None);
  Alcotest.(check int) "range" 0 (List.length (Btree.range t ()))

let test_basic_insert_find () =
  let t = Btree.create ~order:4 () in
  List.iter (fun k -> Btree.insert t (vi k) (o k)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6 ];
  check_ok t "after inserts";
  Alcotest.(check int) "cardinal" 9 (Btree.cardinal t);
  Alcotest.(check bool) "deep tree" true (Btree.height t > 1);
  List.iter
    (fun k ->
      Alcotest.(check (list int))
        (Printf.sprintf "find %d" k)
        [ k ]
        (List.map Oid.to_int (Btree.find t (vi k))))
    [ 1; 5; 9 ];
  Alcotest.(check bool) "min" true (Btree.min_key t = Some (vi 1));
  Alcotest.(check bool) "max" true (Btree.max_key t = Some (vi 9))

let test_multivalue () =
  let t = Btree.create () in
  Btree.insert t (vi 1) (o 10);
  Btree.insert t (vi 1) (o 11);
  Btree.insert t (vi 1) (o 10); (* idempotent *)
  Alcotest.(check (list int)) "two oids" [ 10; 11 ]
    (List.map Oid.to_int (Btree.find t (vi 1)));
  Alcotest.(check int) "cardinal counts pairs" 2 (Btree.cardinal t);
  Alcotest.(check int) "one key" 1 (Btree.key_count t);
  Btree.remove t (vi 1) (o 10);
  Alcotest.(check (list int)) "one left" [ 11 ]
    (List.map Oid.to_int (Btree.find t (vi 1)));
  Btree.remove t (vi 1) (o 11);
  Alcotest.(check (list int)) "key gone" [] (List.map Oid.to_int (Btree.find t (vi 1)));
  Alcotest.(check int) "no keys" 0 (Btree.key_count t)

let test_range () =
  let t = Btree.create ~order:4 () in
  List.iter (fun k -> Btree.insert t (vi k) (o k)) (List.init 20 (fun i -> i * 2));
  let keys r = List.map (fun (k, _) -> Value.to_int k) r in
  Alcotest.(check (list int)) "closed range" [ 10; 12; 14 ]
    (keys (Btree.range t ~lo:(vi 10, true) ~hi:(vi 14, true) ()));
  Alcotest.(check (list int)) "open lo" [ 12; 14 ]
    (keys (Btree.range t ~lo:(vi 10, false) ~hi:(vi 14, true) ()));
  Alcotest.(check (list int)) "open hi" [ 10; 12 ]
    (keys (Btree.range t ~lo:(vi 10, true) ~hi:(vi 14, false) ()));
  Alcotest.(check (list int)) "unbounded above" [ 34; 36; 38 ]
    (keys (Btree.range t ~lo:(vi 34, true) ()));
  Alcotest.(check (list int)) "unbounded below" [ 0; 2 ]
    (keys (Btree.range t ~hi:(vi 2, true) ()));
  Alcotest.(check int) "full scan" 20 (List.length (Btree.range t ()));
  Alcotest.(check (list int)) "between keys" [ 12 ]
    (keys (Btree.range t ~lo:(vi 11, true) ~hi:(vi 13, true) ()));
  Alcotest.(check int) "empty range" 0
    (List.length (Btree.range t ~lo:(vi 100, true) ()))

let test_delete_rebalances () =
  let t = Btree.create ~order:4 () in
  let n = 200 in
  for k = 1 to n do
    Btree.insert t (vi k) (o k)
  done;
  check_ok t "built";
  let deep = Btree.height t in
  Alcotest.(check bool) "tall" true (deep >= 3);
  (* delete odd keys, checking invariants as we go *)
  for k = 1 to n do
    if k mod 2 = 1 then begin
      Btree.remove t (vi k) (o k);
      if k mod 37 = 0 then check_ok t (Printf.sprintf "during deletes (%d)" k)
    end
  done;
  check_ok t "after odd deletes";
  Alcotest.(check int) "half left" (n / 2) (Btree.cardinal t);
  (* delete everything *)
  for k = 1 to n do
    Btree.remove t (vi k) (o k)
  done;
  check_ok t "empty again";
  Alcotest.(check int) "all gone" 0 (Btree.cardinal t);
  Alcotest.(check int) "height collapsed" 1 (Btree.height t)

let test_unknown_removals_ignored () =
  let t = Btree.create () in
  Btree.insert t (vi 1) (o 1);
  Btree.remove t (vi 2) (o 1); (* absent key *)
  Btree.remove t (vi 1) (o 99); (* absent oid *)
  Alcotest.(check int) "unchanged" 1 (Btree.cardinal t);
  check_ok t "still valid"

let test_mixed_value_types () =
  let t = Btree.create ~order:4 () in
  let values =
    [ Value.Null; Value.Bool false; Value.Int 3; Value.Float 3.5;
      Value.Str "abc"; Value.Obj (o 1); Value.List [ Value.Int 1 ] ]
  in
  List.iteri (fun i v -> Btree.insert t v (o (100 + i))) values;
  check_ok t "mixed tags";
  Alcotest.(check int) "all present" (List.length values) (Btree.key_count t);
  (* numeric cross-tag ordering: Int 3 < Float 3.5 *)
  let keys =
    Btree.range t ~lo:(Value.Int 3, true) ~hi:(Value.Float 3.5, true) ()
    |> List.map fst
  in
  Alcotest.(check int) "numeric range spans tags" 2 (List.length keys)

(* --- properties -------------------------------------------------------------- *)

(* Random insert/remove interleavings keep invariants and agree with a
   model (sorted association list). *)
let ops_gen =
  QCheck2.Gen.(
    list_size (int_bound 300)
      (pair bool (pair (int_bound 40) (int_bound 5))))

let model_of_ops ops =
  List.fold_left
    (fun acc (ins, (k, id)) ->
      let existing = try List.assoc k acc with Not_found -> [] in
      let acc' = List.remove_assoc k acc in
      if ins then
        let ids = if List.mem id existing then existing else id :: existing in
        (k, ids) :: acc'
      else
        let ids = List.filter (( <> ) id) existing in
        if ids = [] then acc' else (k, ids) :: acc')
    [] ops

let tree_of_ops order ops =
  let t = Btree.create ~order () in
  List.iter
    (fun (ins, (k, id)) ->
      if ins then Btree.insert t (vi k) (o id) else Btree.remove t (vi k) (o id))
    ops;
  t

let tree_contents t =
  let out = ref [] in
  Btree.iter t (fun k oids -> out := (Value.to_int k, List.map Oid.to_int oids) :: !out);
  List.rev !out

let prop_model =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"btree agrees with model" ~count:150
       (QCheck2.Gen.pair (QCheck2.Gen.oneofl [ 4; 5; 8 ]) ops_gen)
       (fun (order, ops) ->
         let t = tree_of_ops order ops in
         let model =
           model_of_ops ops
           |> List.map (fun (k, ids) -> (k, List.sort compare ids))
           |> List.sort compare
         in
         tree_contents t = model))

let prop_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"btree invariants hold under churn" ~count:150
       (QCheck2.Gen.pair (QCheck2.Gen.oneofl [ 4; 5; 8 ]) ops_gen)
       (fun (order, ops) ->
         Btree.check_invariants (tree_of_ops order ops) = Ok ()))

let prop_range_is_filter =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"range = filtered full scan" ~count:150
       QCheck2.Gen.(
         triple ops_gen (int_bound 40) (int_bound 40))
       (fun (ops, a, b) ->
         let lo = min a b and hi = max a b in
         let t = tree_of_ops 4 ops in
         let ranged =
           Btree.range t ~lo:(vi lo, true) ~hi:(vi hi, true) ()
           |> List.map (fun (k, _) -> Value.to_int k)
         in
         let scanned =
           tree_contents t |> List.map fst
           |> List.filter (fun k -> k >= lo && k <= hi)
         in
         ranged = scanned))

let suite =
  [
    test "empty tree" test_empty;
    test "insert and find" test_basic_insert_find;
    test "multi-valued keys" test_multivalue;
    test "range scans" test_range;
    test "delete rebalances" test_delete_rebalances;
    test "unknown removals ignored" test_unknown_removals_ignored;
    test "mixed value types" test_mixed_value_types;
    prop_model;
    prop_invariants;
    prop_range_is_filter;
  ]
