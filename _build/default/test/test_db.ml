open Helpers

let test_object_lifecycle () =
  let db = employee_db () in
  let e = new_employee db ~name:"ann" ~salary:2000. in
  Alcotest.(check bool) "exists" true (Db.exists db e);
  Alcotest.(check string) "class_of" "employee" (Db.class_of db e);
  Alcotest.check value "attr" (Value.Str "ann") (Db.get db e "name");
  Alcotest.check value "default attr" (Value.Float 2000.) (Db.get db e "salary");
  Db.delete_object db e;
  Alcotest.(check bool) "deleted" false (Db.exists db e);
  Alcotest.check_raises "get after delete" (Errors.No_such_object e) (fun () ->
      ignore (Db.get db e "name"))

let test_attr_errors () =
  let db = employee_db () in
  let e = new_employee db in
  Alcotest.check_raises "unknown get"
    (Errors.No_such_attribute ("employee", "shoe_size"))
    (fun () -> ignore (Db.get db e "shoe_size"));
  Alcotest.check_raises "unknown set"
    (Errors.No_such_attribute ("employee", "shoe_size"))
    (fun () -> Db.set db e "shoe_size" (Value.Int 42));
  Alcotest.check_raises "unknown attr at creation"
    (Errors.No_such_attribute ("employee", "bogus"))
    (fun () -> ignore (Db.new_object db "employee" ~attrs:[ ("bogus", Value.Null) ]));
  Alcotest.check_raises "unknown class" (Errors.No_such_class "robot") (fun () ->
      ignore (Db.new_object db "robot"))

let test_send_dispatch () =
  let db = employee_db () in
  let e = new_employee db ~salary:100. in
  ignore (Db.send db e "set_salary" [ Value.Float 250. ]);
  Alcotest.check value "method ran" (Value.Float 250.) (Db.get db e "salary");
  Alcotest.check value "return value" (Value.Float 250.)
    (Db.send db e "get_salary" []);
  Alcotest.check_raises "unknown method"
    (Errors.No_such_method ("employee", "resign"))
    (fun () -> ignore (Db.send db e "resign" []))

let test_send_inheritance () =
  let db = employee_db () in
  let m = new_employee db ~cls:"manager" ~salary:9000. in
  (* manager inherits employee's methods and event interface *)
  ignore (Db.send db m "set_salary" [ Value.Float 9500. ]);
  Alcotest.check value "inherited method" (Value.Float 9500.)
    (Db.get db m "salary");
  Alcotest.(check bool) "is_instance_of super" true
    (Db.is_instance_of db m "employee");
  Alcotest.(check bool) "not instance of sibling" false
    (Db.is_instance_of db (new_employee db) "manager")

let test_event_generation_counts () =
  let db = employee_db () in
  let e = new_employee db in
  Db.reset_stats db;
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]); (* eom *)
  ignore (Db.send db e "get_age" []); (* bom + eom *)
  ignore (Db.send db e "get_name" []); (* passive method: none *)
  Alcotest.(check int) "events" 3 (Db.stats db).events_generated;
  Alcotest.(check int) "sends" 3 (Db.stats db).sends

let test_instance_subscription () =
  let db, sys, collector, seen = sys_with_collector () in
  ignore sys;
  let e1 = new_employee db and e2 = new_employee db in
  Db.subscribe db ~reactive:e1 ~consumer:collector;
  ignore (Db.send db e1 "set_salary" [ Value.Float 5. ]);
  ignore (Db.send db e2 "set_salary" [ Value.Float 6. ]);
  let occs = seen () in
  Alcotest.(check int) "only subscribed source" 1 (List.length occs);
  (match occs with
  | [ o ] ->
    Alcotest.check oid "source" e1 o.source;
    Alcotest.(check string) "method" "set_salary" o.meth;
    Alcotest.check (Alcotest.list value) "params" [ Value.Float 5. ] o.params
  | _ -> Alcotest.fail "expected one occurrence");
  (* unsubscribe stops delivery; resubscribing twice is idempotent *)
  Db.subscribe db ~reactive:e1 ~consumer:collector;
  Alcotest.(check int) "idempotent subscribe" 1
    (List.length (Db.consumers_of db e1));
  Db.unsubscribe db ~reactive:e1 ~consumer:collector;
  ignore (Db.send db e1 "set_salary" [ Value.Float 7. ]);
  Alcotest.(check int) "after unsubscribe" 1 (List.length (seen ()))

let test_class_subscription () =
  let db, sys, collector, seen = sys_with_collector () in
  ignore sys;
  Db.subscribe_class db ~cls:"employee" ~consumer:collector;
  let e = new_employee db and m = new_employee db ~cls:"manager" in
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  (* class-level subscription covers subclass instances *)
  ignore (Db.send db m "set_salary" [ Value.Float 2. ]);
  Alcotest.(check int) "both delivered" 2 (List.length (seen ()));
  (* instance + class subscription: delivered once *)
  Db.subscribe db ~reactive:e ~consumer:collector;
  ignore (Db.send db e "set_salary" [ Value.Float 3. ]);
  Alcotest.(check int) "deduplicated" 3 (List.length (seen ()));
  Db.unsubscribe_class db ~cls:"employee" ~consumer:collector;
  ignore (Db.send db m "set_salary" [ Value.Float 4. ]);
  Alcotest.(check int) "class unsubscribed" 3 (List.length (seen ()))

let test_explicit_signal () =
  let db, sys, collector, seen = sys_with_collector () in
  ignore sys;
  let e = new_employee db in
  Db.subscribe db ~reactive:e ~consumer:collector;
  Db.signal db ~source:e ~meth:"custom_event" ~modifier:Oodb.Types.After
    [ Value.Int 1 ];
  match seen () with
  | [ o ] ->
    Alcotest.(check string) "explicit event" "custom_event" o.meth;
    Alcotest.(check string) "class recorded" "employee" o.source_class
  | _ -> Alcotest.fail "expected one occurrence"

let test_taps () =
  let db = employee_db () in
  let count = ref 0 in
  Db.add_tap db (fun _ _ -> incr count);
  let e = new_employee db in
  (* taps see events even with no subscriptions at all *)
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "tap saw it" 1 !count;
  Db.clear_taps db;
  ignore (Db.send db e "set_salary" [ Value.Float 2. ]);
  Alcotest.(check int) "cleared" 1 !count

let test_extents () =
  let db = employee_db () in
  let e1 = new_employee db and e2 = new_employee db in
  let m = new_employee db ~cls:"manager" in
  Alcotest.(check (list oid))
    "shallow employee" [ e1; e2 ]
    (Db.extent db ~deep:false "employee");
  Alcotest.(check (list oid))
    "deep employee" [ e1; e2; m ]
    (Db.extent db ~deep:true "employee");
  Alcotest.(check (list oid)) "manager" [ m ] (Db.extent db "manager");
  Db.delete_object db e1;
  Alcotest.(check (list oid))
    "after delete" [ e2; m ]
    (Db.extent db ~deep:true "employee")

let test_clock () =
  let db = Db.create () in
  Alcotest.(check int) "starts at 0" 0 (Db.now db);
  Alcotest.(check int) "tick" 1 (Db.tick db);
  Db.advance_clock db 10;
  Alcotest.(check int) "advance" 10 (Db.now db);
  Db.advance_clock db 5;
  Alcotest.(check int) "never backwards" 10 (Db.now db)

let test_no_such_object () =
  let db = Db.create () in
  let ghost = Oid.of_int 999 in
  Alcotest.check_raises "get" (Errors.No_such_object ghost) (fun () ->
      ignore (Db.get db ghost "x"));
  Alcotest.(check bool) "exists false" false (Db.exists db ghost)

let suite =
  [
    test "object lifecycle" test_object_lifecycle;
    test "attribute errors" test_attr_errors;
    test "send dispatch" test_send_dispatch;
    test "send with inheritance" test_send_inheritance;
    test "event generation counts" test_event_generation_counts;
    test "instance subscription" test_instance_subscription;
    test "class subscription" test_class_subscription;
    test "explicit signal" test_explicit_signal;
    test "centralized taps" test_taps;
    test "extents" test_extents;
    test "logical clock" test_clock;
    test "missing objects" test_no_such_object;
  ]
