open Helpers

(* Shorthand primitive occurrences: a/b/c are eom events of methods
   "a"/"b"/"c" with auto-incrementing timestamps. *)
let occ ?source ?cls meth at = mk_occ ?source ?cls ~at meth Oodb.Types.After
let bom_occ meth at = mk_occ ~at meth Oodb.Types.Before

let ea = Expr.eom "a"
let eb = Expr.eom "b"
let ec = Expr.eom "c"

let stream meths = List.mapi (fun i m -> occ m (i + 1)) meths

let run ?context expr meths = snd (detect ?context expr (stream meths))
let count ?context expr meths = List.length (run ?context expr meths)

(* --- primitive matching --------------------------------------------------- *)

let test_prim_matching () =
  Alcotest.(check int) "method match" 2 (count ea [ "a"; "b"; "a" ]);
  Alcotest.(check int) "modifier mismatch" 0
    (List.length (snd (detect ea [ bom_occ "a" 1 ])));
  Alcotest.(check int) "class filter hit" 1
    (List.length (snd (detect (Expr.eom ~cls:"employee" "a") [ occ "a" 1 ])));
  Alcotest.(check int) "class filter miss" 0
    (List.length (snd (detect (Expr.eom ~cls:"stock" "a") [ occ "a" 1 ])));
  Alcotest.(check int) "source filter hit" 1
    (List.length
       (snd (detect (Expr.eom ~sources:[ Oid.of_int 5 ] "a") [ occ ~source:5 "a" 1 ])));
  Alcotest.(check int) "source filter miss" 0
    (List.length
       (snd (detect (Expr.eom ~sources:[ Oid.of_int 5 ] "a") [ occ ~source:6 "a" 1 ])))

let test_prim_subsumption () =
  (* with a subsumption oracle, an event on the superclass matches
     subclass occurrences *)
  let subsumes ~sub ~super =
    String.equal sub super || (sub = "manager" && super = "employee")
  in
  let d, signals =
    detect ~subsumes (Expr.eom ~cls:"employee" "a") [ occ ~cls:"manager" "a" 1 ]
  in
  Alcotest.(check int) "subclass occurrence matches" 1 (List.length signals);
  Alcotest.(check int) "fed counter" 1 (Events.Detector.fed d);
  Alcotest.(check int) "signal counter" 1 (Events.Detector.signalled d)

(* --- disjunction ----------------------------------------------------------- *)

let test_disjunction () =
  Alcotest.(check int) "either side" 3 (count (Expr.disj ea eb) [ "a"; "b"; "a"; "c" ]);
  (* context-insensitive *)
  List.iter
    (fun ctx ->
      Alcotest.(check int)
        (Events.Context.to_string ctx)
        3
        (count ~context:ctx (Expr.disj ea eb) [ "a"; "b"; "a"; "c" ]))
    Events.Context.all

(* --- conjunction per context ----------------------------------------------- *)

let conj = Expr.conj ea eb

let test_and_recent () =
  (* recent instances are retained: every completion re-pairs *)
  Alcotest.(check int) "b then a" 1 (count ~context:Recent conj [ "b"; "a" ]);
  Alcotest.(check int) "a a b -> pairs latest a" 1
    (count ~context:Recent conj [ "a"; "a"; "b" ]);
  (match run ~context:Recent conj [ "a"; "a"; "b" ] with
  | [ i ] -> Alcotest.(check (list (pair string int))) "latest initiator"
      [ ("a", 2); ("b", 3) ] (shape i)
  | _ -> Alcotest.fail "one signal expected");
  (* retained: second b pairs with the same recent a *)
  Alcotest.(check int) "a b b" 2 (count ~context:Recent conj [ "a"; "b"; "b" ])

let test_and_chronicle () =
  (* FIFO pairing, each instance consumed once *)
  Alcotest.(check int) "a b b" 1 (count ~context:Chronicle conj [ "a"; "b"; "b" ]);
  Alcotest.(check int) "a a b b" 2 (count ~context:Chronicle conj [ "a"; "a"; "b"; "b" ]);
  (match run ~context:Chronicle conj [ "a"; "a"; "b"; "b" ] with
  | [ i1; i2 ] ->
    Alcotest.(check (list (pair string int))) "oldest first"
      [ ("a", 1); ("b", 3) ] (shape i1);
    Alcotest.(check (list (pair string int))) "then next"
      [ ("a", 2); ("b", 4) ] (shape i2)
  | _ -> Alcotest.fail "two signals expected")

let test_and_continuous () =
  (* one terminator pairs with every buffered initiator, consuming them *)
  Alcotest.(check int) "a a b" 2 (count ~context:Continuous conj [ "a"; "a"; "b" ]);
  Alcotest.(check int) "a a b b" 2 (count ~context:Continuous conj [ "a"; "a"; "b"; "b" ]);
  (* the second b found an empty buffer and is itself buffered *)
  Alcotest.(check int) "a a b b a" 3
    (count ~context:Continuous conj [ "a"; "a"; "b"; "b"; "a" ])

let test_and_cumulative () =
  (* everything folds into one composite *)
  let signals = run ~context:Cumulative conj [ "a"; "a"; "b" ] in
  Alcotest.(check int) "one signal" 1 (List.length signals);
  (match signals with
  | [ i ] ->
    Alcotest.(check (list (pair string int))) "all constituents"
      [ ("a", 1); ("a", 2); ("b", 3) ] (shape i)
  | _ -> assert false);
  Alcotest.(check int) "buffers cleared" 2
    (count ~context:Cumulative conj [ "a"; "b"; "a"; "b" ])

(* --- sequence per context ---------------------------------------------------- *)

let seq = Expr.seq ea eb

let test_seq_ordering () =
  (* right before left never signals, in any context *)
  List.iter
    (fun ctx ->
      Alcotest.(check int)
        ("b a " ^ Events.Context.to_string ctx)
        0
        (count ~context:ctx seq [ "b"; "a" ]))
    Events.Context.all;
  Alcotest.(check int) "a b" 1 (count seq [ "a"; "b" ])

let test_seq_contexts () =
  Alcotest.(check int) "recent: a a b uses latest" 1
    (count ~context:Recent seq [ "a"; "a"; "b" ]);
  (match run ~context:Recent seq [ "a"; "a"; "b" ] with
  | [ i ] ->
    Alcotest.(check (list (pair string int))) "latest a" [ ("a", 2); ("b", 3) ] (shape i)
  | _ -> Alcotest.fail "one expected");
  Alcotest.(check int) "recent: initiator retained" 2
    (count ~context:Recent seq [ "a"; "b"; "b" ]);
  Alcotest.(check int) "chronicle: consumed" 1
    (count ~context:Chronicle seq [ "a"; "b"; "b" ]);
  Alcotest.(check int) "chronicle: pairs in order" 2
    (count ~context:Chronicle seq [ "a"; "a"; "b"; "b" ]);
  Alcotest.(check int) "continuous: both initiators" 2
    (count ~context:Continuous seq [ "a"; "a"; "b" ]);
  Alcotest.(check int) "continuous: consumed" 2
    (count ~context:Continuous seq [ "a"; "a"; "b"; "b" ]);
  Alcotest.(check int) "cumulative: one signal" 1
    (count ~context:Cumulative seq [ "a"; "a"; "b" ]);
  match run ~context:Cumulative seq [ "a"; "a"; "b" ] with
  | [ i ] ->
    Alcotest.(check (list (pair string int)))
      "cumulative constituents"
      [ ("a", 1); ("a", 2); ("b", 3) ]
      (shape i)
  | _ -> Alcotest.fail "one expected"

let test_seq_nested () =
  (* (a ; b) ; c needs a < b < c *)
  let e = Expr.seq (Expr.seq ea eb) ec in
  Alcotest.(check int) "in order" 1 (count e [ "a"; "b"; "c" ]);
  Alcotest.(check int) "inner out of order" 0 (count e [ "b"; "a"; "c" ]);
  Alcotest.(check int) "outer out of order" 0 (count e [ "c"; "a"; "b" ])

(* --- any ---------------------------------------------------------------------- *)

let test_any () =
  let e = Expr.any 2 [ ea; eb; ec ] in
  Alcotest.(check int) "two distinct" 1 (count e [ "a"; "c" ]);
  Alcotest.(check int) "same child twice is not enough" 0 (count e [ "a"; "a" ]);
  Alcotest.(check int) "resets after signal" 2 (count e [ "a"; "b"; "c"; "a" ]);
  match run e [ "a"; "c" ] with
  | [ i ] ->
    Alcotest.(check (list (pair string int))) "constituents" [ ("a", 1); ("c", 2) ] (shape i)
  | _ -> Alcotest.fail "one expected"

(* --- not ----------------------------------------------------------------------- *)

let test_not () =
  let e = Expr.not_between ea eb ec in
  Alcotest.(check int) "a c with no b" 1 (count e [ "a"; "c" ]);
  Alcotest.(check int) "interposed b cancels" 0 (count e [ "a"; "b"; "c" ]);
  Alcotest.(check int) "initiator consumed" 1 (count e [ "a"; "c"; "c" ]);
  Alcotest.(check int) "no initiator" 0 (count e [ "c" ]);
  Alcotest.(check int) "fresh initiator after cancel" 1
    (count e [ "a"; "b"; "a"; "c" ])

(* --- aperiodic ------------------------------------------------------------------ *)

let test_aperiodic () =
  let e = Expr.aperiodic ea eb ec in
  Alcotest.(check int) "b inside window" 2 (count e [ "a"; "b"; "b"; "c" ]);
  Alcotest.(check int) "b outside window" 0 (count e [ "b"; "c"; "b" ]);
  Alcotest.(check int) "window closes" 1 (count e [ "a"; "b"; "c"; "b" ]);
  Alcotest.(check int) "window reopens" 2 (count e [ "a"; "b"; "c"; "a"; "b" ]);
  match run e [ "a"; "b"; "c" ] with
  | [ i ] ->
    Alcotest.(check (list (pair string int)))
      "carries opener and the b" [ ("a", 1); ("b", 2) ] (shape i)
  | _ -> Alcotest.fail "one expected"

let test_aperiodic_star () =
  let e = Expr.aperiodic_star ea eb ec in
  (match run e [ "a"; "b"; "b"; "c" ] with
  | [ i ] ->
    Alcotest.(check (list (pair string int)))
      "one cumulative signal"
      [ ("a", 1); ("b", 2); ("b", 3); ("c", 4) ]
      (shape i)
  | _ -> Alcotest.fail "one expected");
  Alcotest.(check int) "signals even with zero b" 1 (count e [ "a"; "c" ]);
  Alcotest.(check int) "nothing without opener" 0 (count e [ "b"; "c" ])

(* --- periodic / plus -------------------------------------------------------------- *)

let test_periodic () =
  let e = Expr.periodic ea 10 ec in
  let signals = ref [] in
  let d = Events.Detector.create ~on_signal:(fun i -> signals := i :: !signals) e in
  Events.Detector.feed d (occ "a" 5); (* opens: ticks at 15, 25, ... *)
  Events.Detector.advance d 14;
  Alcotest.(check int) "not due yet" 0 (List.length !signals);
  Events.Detector.advance d 26;
  Alcotest.(check int) "two ticks due" 2 (List.length !signals);
  Events.Detector.feed d (occ "c" 27); (* closes *)
  Events.Detector.advance d 100;
  Alcotest.(check int) "closed" 2 (List.length !signals);
  (* tick timestamps are the due instants *)
  let ats =
    List.rev_map (fun (i : Events.Detector.instance) -> i.t_end) !signals
  in
  Alcotest.(check (list int)) "due instants" [ 15; 25 ] ats

let test_periodic_limit () =
  let e = Expr.periodic ~limit:3 ea 10 ec in
  let signals = ref 0 in
  let d = Events.Detector.create ~on_signal:(fun _ -> incr signals) e in
  Events.Detector.feed d (occ "a" 0);
  Events.Detector.advance d 1000;
  Alcotest.(check int) "limit respected" 3 !signals

let test_plus () =
  let e = Expr.plus ea 10 in
  let signals = ref [] in
  let d = Events.Detector.create ~on_signal:(fun i -> signals := i :: !signals) e in
  Events.Detector.feed d (occ "a" 5);
  Events.Detector.feed d (occ "a" 7);
  Events.Detector.advance d 14;
  Alcotest.(check int) "not due" 0 (List.length !signals);
  Events.Detector.advance d 15;
  Alcotest.(check int) "first due" 1 (List.length !signals);
  Events.Detector.advance d 17;
  Alcotest.(check int) "second due" 2 (List.length !signals)

(* --- machinery --------------------------------------------------------------------- *)

let test_reset () =
  let d, _ = detect conj [ occ "a" 1 ] in
  Events.Detector.reset d;
  let signals = ref 0 in
  ignore signals;
  (* after reset the buffered 'a' is gone: a lone b does not signal *)
  Events.Detector.feed d (occ "b" 2);
  Alcotest.(check int) "no stale state" 0 (Events.Detector.signalled d)

let test_expire () =
  (* chronicle conjunction: stale lefts are pruned, fresh ones kept *)
  let signals = ref 0 in
  let d =
    Events.Detector.create ~context:Chronicle
      ~on_signal:(fun _ -> incr signals)
      conj
  in
  Events.Detector.feed d (occ "a" 1);
  Events.Detector.feed d (occ "a" 100);
  Events.Detector.expire d ~before:50;
  (* the t=1 'a' is gone; the t=100 one pairs *)
  Events.Detector.feed d (occ "b" 101);
  Events.Detector.feed d (occ "b" 102);
  Alcotest.(check int) "only the fresh initiator paired" 1 !signals;
  (* windows survive expiry: an open aperiodic window still fires *)
  let signals2 = ref 0 in
  let d2 =
    Events.Detector.create
      ~on_signal:(fun _ -> incr signals2)
      (Expr.aperiodic ea eb ec)
  in
  Events.Detector.feed d2 (occ "a" 1);
  Events.Detector.expire d2 ~before:1000;
  Events.Detector.feed d2 (occ "b" 1001);
  Alcotest.(check int) "window intact" 1 !signals2;
  (* scheduled plus events survive too *)
  let signals3 = ref 0 in
  let d3 =
    Events.Detector.create ~on_signal:(fun _ -> incr signals3) (Expr.plus ea 10)
  in
  Events.Detector.feed d3 (occ "a" 1);
  Events.Detector.expire d3 ~before:1000;
  Events.Detector.advance d3 2000;
  Alcotest.(check int) "scheduled event fired" 1 !signals3

let test_advance_monotone () =
  let e = Expr.plus ea 10 in
  let signals = ref 0 in
  let d = Events.Detector.create ~on_signal:(fun _ -> incr signals) e in
  Events.Detector.feed d (occ "a" 5);
  Events.Detector.advance d 100;
  Events.Detector.advance d 50; (* ignored: time never goes back *)
  Alcotest.(check int) "fired once" 1 !signals

let test_instance_times () =
  match run (Expr.conj ea eb) [ "b"; "a" ] with
  | [ i ] ->
    Alcotest.(check int) "t_start" 1 i.t_start;
    Alcotest.(check int) "t_end" 2 i.t_end;
    Alcotest.(check bool) "chronological constituents" true
      (shape i = [ ("b", 1); ("a", 2) ])
  | _ -> Alcotest.fail "one expected"

(* --- more edge cases ------------------------------------------------------ *)

let test_overlapping_children () =
  (* one occurrence matching both children of a conjunction completes it
     only together with a distinct partner occurrence *)
  let e = Expr.conj (Expr.eom "a") (Expr.eom "a") in
  Alcotest.(check int) "single a pairs with itself per semantics" 1
    (count ~context:Recent e [ "a" ]);
  (* in chronicle the same occurrence enters both sides' queues and pairs *)
  Alcotest.(check int) "chronicle" 1 (count ~context:Chronicle e [ "a" ])

let test_any_n_of_n () =
  let e = Expr.any 3 [ ea; eb; ec ] in
  Alcotest.(check int) "needs all three" 0 (count e [ "a"; "b" ]);
  Alcotest.(check int) "all three" 1 (count e [ "a"; "b"; "c" ]);
  Alcotest.(check int) "order free" 1 (count e [ "c"; "a"; "b" ])

let test_deep_mixed_tree () =
  (* ((a;b) AND c) OR not(a, b, c) over a scripted stream *)
  let e =
    Expr.disj
      (Expr.conj (Expr.seq ea eb) ec)
      (Expr.not_between ea eb ec)
  in
  (* stream: a b c — seq(a,b) completes at b; AND completes at c;
     NOT is cancelled by the interposed b.  Total: 1 *)
  Alcotest.(check int) "left arm only" 1 (count e [ "a"; "b"; "c" ]);
  (* stream: a c — seq never completes; NOT fires at c.  Total: 1 *)
  Alcotest.(check int) "right arm only" 1 (count e [ "a"; "c" ])

let test_composite_inside_window () =
  (* aperiodic whose middle event is itself composite: each completed
     (a;b) inside the window signals *)
  let e = Expr.aperiodic (Expr.eom "open") (Expr.seq ea eb) (Expr.eom "close") in
  Alcotest.(check int) "composite middle" 2
    (count e [ "open"; "a"; "b"; "a"; "b"; "close"; "a"; "b" ])

let test_counters_accumulate () =
  let d, signals = detect (Expr.disj ea eb) (stream [ "a"; "b"; "c"; "a" ]) in
  Alcotest.(check int) "fed counts everything" 4 (Events.Detector.fed d);
  Alcotest.(check int) "signalled matches list" (List.length signals)
    (Events.Detector.signalled d);
  Alcotest.(check int) "three signals" 3 (Events.Detector.signalled d)

(* Properties *)

let meths_gen = QCheck2.Gen.(list_size (int_bound 30) (oneofl [ "a"; "b"; "c" ]))

let prop_disjunction_additive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"|A or B| = |A| + |B| for disjoint prims" ~count:100
       meths_gen (fun ms ->
         count (Expr.disj ea eb) ms = count ea ms + count eb ms))

let prop_seq_respects_order =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sequence constituents always ordered" ~count:100
       (QCheck2.Gen.pair meths_gen (QCheck2.Gen.oneofl Events.Context.all))
       (fun (ms, ctx) ->
         run ~context:ctx (Expr.seq ea eb) ms
         |> List.for_all (fun (i : Events.Detector.instance) ->
                match (i.constituents, List.rev i.constituents) with
                | first :: _, last :: _ -> first.at < last.at
                | _ -> false)))

let prop_chronicle_consumes_once =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"chronicle conjunction consumes each occurrence once"
       ~count:100 meths_gen (fun ms ->
         let signals = run ~context:Chronicle (Expr.conj ea eb) ms in
         let used = List.concat_map (fun (i : Events.Detector.instance) -> i.constituents) signals in
         let distinct = List.sort_uniq Oodb.Occurrence.compare used in
         List.length used = List.length distinct))

let prop_cumulative_at_most_min =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"cumulative signals <= min(|A|,|B|)" ~count:100
       meths_gen (fun ms ->
         count ~context:Cumulative (Expr.conj ea eb) ms
         <= min (count ea ms) (count eb ms)))

let suite =
  [
    test "primitive matching" test_prim_matching;
    test "primitive subsumption" test_prim_subsumption;
    test "disjunction" test_disjunction;
    test "conjunction: recent" test_and_recent;
    test "conjunction: chronicle" test_and_chronicle;
    test "conjunction: continuous" test_and_continuous;
    test "conjunction: cumulative" test_and_cumulative;
    test "sequence ordering" test_seq_ordering;
    test "sequence contexts" test_seq_contexts;
    test "nested sequence" test_seq_nested;
    test "any" test_any;
    test "not" test_not;
    test "aperiodic" test_aperiodic;
    test "aperiodic star" test_aperiodic_star;
    test "periodic" test_periodic;
    test "periodic with limit" test_periodic_limit;
    test "plus" test_plus;
    test "overlapping children" test_overlapping_children;
    test "any n of n" test_any_n_of_n;
    test "deep mixed tree" test_deep_mixed_tree;
    test "composite inside window" test_composite_inside_window;
    test "counters accumulate" test_counters_accumulate;
    test "reset" test_reset;
    test "expire" test_expire;
    test "advance is monotone" test_advance_monotone;
    test "instance timing" test_instance_times;
    prop_disjunction_additive;
    prop_seq_respects_order;
    prop_chronicle_consumes_once;
    prop_cumulative_at_most_min;
  ]
