(* Differential testing: for the rule shapes that both engines can express
   — class-level rules on single primitive events with stateless conditions
   — Sentinel (subscription dispatch) and ADAM (centralized scan) must make
   identical firing decisions on identical workloads.  The architectures
   differ; the semantics must not. *)

open Helpers
module Prng = Workloads.Prng

(* A random workload: n messages over a small population of employees and
   managers, each message one of the reactive methods. *)
type spec = {
  sp_seed : int;
  sp_rules : (string * string * Oodb.Types.modifier) list;
      (* active_class, method, modifier *)
  sp_ops : int;
}

let spec_gen =
  let open QCheck2.Gen in
  let rule_gen =
    let* cls = oneofl [ "employee"; "manager" ] in
    let* meth = oneofl [ "set_salary"; "change_income"; "get_age" ] in
    let* modifier = oneofl [ Oodb.Types.Before; Oodb.Types.After ] in
    return (cls, meth, modifier)
  in
  let* sp_seed = int_bound 10_000 in
  let* sp_rules = list_size (int_range 1 6) rule_gen in
  let* sp_ops = int_range 10 200 in
  return { sp_seed; sp_rules; sp_ops }

let build_population db rng =
  let pop = Workloads.Payroll.populate db rng ~managers:3 ~employees:10 in
  Array.append pop.managers pop.employees

let run_ops db rng objs n =
  for _ = 1 to n do
    let target = Prng.choice rng objs in
    match Prng.int rng 3 with
    | 0 -> ignore (Db.send db target "set_salary" [ Value.Float (Prng.float rng 100.) ])
    | 1 ->
      ignore (Db.send db target "change_income" [ Value.Float (Prng.float rng 100.) ])
    | _ -> ignore (Db.send db target "get_age" [])
  done

(* Events only fire for interface-listed (method, modifier) pairs; both
   engines see the same stream, so rules on non-generating pairs fire zero
   times in both. *)

let sentinel_counts spec =
  let db = employee_db () in
  let sys = System.create db in
  let counts = List.map (fun _ -> ref 0) spec.sp_rules in
  List.iteri
    (fun i (cls, meth, modifier) ->
      let cell = List.nth counts i in
      System.register_action sys (Printf.sprintf "count-%d" i) (fun _ _ -> incr cell);
      ignore
        (System.create_rule sys
           ~name:(Printf.sprintf "r%d" i)
           ~monitor_classes:[ cls ]
           ~event:(Expr.prim ~cls modifier meth)
           ~condition:"true"
           ~action:(Printf.sprintf "count-%d" i)
           ()))
    spec.sp_rules;
  let rng = Prng.create spec.sp_seed in
  let objs = build_population db rng in
  run_ops db rng objs spec.sp_ops;
  List.map (fun r -> !r) counts

let adam_counts spec =
  let db = employee_db () in
  let adam = Baselines.Adam.create db in
  let rules =
    List.mapi
      (fun i (cls, meth, modifier) ->
        Baselines.Adam.add_rule adam
          ~name:(Printf.sprintf "r%d" i)
          ~active_class:cls ~meth ~modifier
          ~condition:(fun _ _ -> true)
          ~action:(fun _ _ -> ())
          ())
      spec.sp_rules
  in
  let rng = Prng.create spec.sp_seed in
  let objs = build_population db rng in
  run_ops db rng objs spec.sp_ops;
  List.map Baselines.Adam.fired rules

let prop_engines_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sentinel and adam fire identically" ~count:100
       spec_gen (fun spec -> sentinel_counts spec = adam_counts spec))

(* And a pinned concrete case so a property-shrink failure has a readable
   sibling. *)
let test_concrete_agreement () =
  let spec =
    {
      sp_seed = 7;
      sp_rules =
        [
          ("employee", "set_salary", Oodb.Types.After);
          ("manager", "set_salary", Oodb.Types.After);
          ("employee", "get_age", Oodb.Types.Before);
          ("employee", "set_salary", Oodb.Types.Before); (* never generated *)
        ];
      sp_ops = 500;
    }
  in
  let s = sentinel_counts spec and a = adam_counts spec in
  Alcotest.(check (list int)) "identical firing counts" a s;
  (* sanity: the workload actually fired things *)
  Alcotest.(check bool) "non-trivial" true (List.exists (fun c -> c > 0) s);
  (* bom set_salary is not in the event interface: both silent *)
  Alcotest.(check int) "non-generating pair silent" 0 (List.nth s 3)

let suite =
  [
    test "concrete agreement" test_concrete_agreement;
    prop_engines_agree;
  ]
