open Helpers
module Graph = Events.Event_graph

let occ ?(source = 1) ?(cls = "employee") ~at meth =
  mk_occ ~source ~cls ~at meth Oodb.Types.After

let test_routing_equivalence () =
  (* the graph must produce exactly what independent detectors produce *)
  let exprs =
    [
      Expr.eom "a";
      Expr.conj (Expr.eom "a") (Expr.eom "b");
      Expr.seq (Expr.eom "b") (Expr.eom "c");
      Expr.disj (Expr.eom "a") (Expr.eom "c");
    ]
  in
  let stream = List.init 60 (fun i ->
      occ ~at:(i + 1) (List.nth [ "a"; "b"; "c"; "d" ] (i mod 4)))
  in
  (* naive: every detector sees every occurrence *)
  let naive =
    List.map
      (fun e ->
        let n = ref 0 in
        let d = Events.Detector.create ~on_signal:(fun _ -> incr n) e in
        List.iter (Events.Detector.feed d) stream;
        !n)
      exprs
  in
  (* graph: indexed routing *)
  let g = Graph.create () in
  let counts = List.map (fun _ -> ref 0) exprs in
  List.iter2
    (fun e n -> ignore (Graph.subscribe g ~on_signal:(fun _ -> incr n) e))
    exprs counts;
  List.iter (Graph.feed g) stream;
  Alcotest.(check (list int)) "same detections" naive
    (List.map (fun r -> !r) counts)

let test_routing_is_selective () =
  let g = Graph.create () in
  (* 50 subscriptions on methods m0..m49 *)
  let hits = Array.make 50 0 in
  for i = 0 to 49 do
    ignore
      (Graph.subscribe g
         ~on_signal:(fun _ -> hits.(i) <- hits.(i) + 1)
         (Expr.eom (Printf.sprintf "m%d" i)))
  done;
  Alcotest.(check int) "leaves indexed" 50 (Graph.leaf_count g);
  (* one occurrence of m7: only one leaf offer happens *)
  Graph.feed g (occ ~at:1 "m7");
  Alcotest.(check int) "routed once" 1 (Graph.routed g);
  Alcotest.(check int) "m7 fired" 1 hits.(7);
  (* an occurrence nothing listens to routes nowhere *)
  Graph.feed g (occ ~at:2 "unknown");
  Alcotest.(check int) "still one" 1 (Graph.routed g)

let test_unsubscribe () =
  let g = Graph.create () in
  let n = ref 0 in
  let sub = Graph.subscribe g ~on_signal:(fun _ -> incr n) (Expr.eom "a") in
  Graph.feed g (occ ~at:1 "a");
  Graph.unsubscribe g sub;
  Graph.unsubscribe g sub; (* idempotent *)
  Graph.feed g (occ ~at:2 "a");
  Alcotest.(check int) "stopped" 1 !n;
  Alcotest.(check int) "no subs" 0 (Graph.subscription_count g);
  Alcotest.(check int) "no leaves" 0 (Graph.leaf_count g)

let test_modifier_keying () =
  let g = Graph.create () in
  let boms = ref 0 and eoms = ref 0 in
  ignore (Graph.subscribe g ~on_signal:(fun _ -> incr boms) (Expr.bom "m"));
  ignore (Graph.subscribe g ~on_signal:(fun _ -> incr eoms) (Expr.eom "m"));
  Graph.feed g (mk_occ ~at:1 "m" Oodb.Types.Before);
  Graph.feed g (mk_occ ~at:2 "m" Oodb.Types.After);
  Alcotest.(check int) "bom" 1 !boms;
  Alcotest.(check int) "eom" 1 !eoms;
  (* each occurrence routed to exactly the matching-modifier leaf *)
  Alcotest.(check int) "routed" 2 (Graph.routed g)

let test_temporal_advance () =
  let g = Graph.create () in
  let ticks = ref 0 in
  ignore
    (Graph.subscribe g
       ~on_signal:(fun _ -> incr ticks)
       (Expr.periodic (Expr.eom "open") 10 (Expr.eom "close")));
  Graph.feed g (occ ~at:5 "open");
  (* unrelated traffic advances the clock and fires due ticks *)
  Graph.feed g (occ ~at:26 "noise");
  Alcotest.(check int) "ticks at 15 and 25" 2 !ticks;
  Graph.advance g 40;
  Alcotest.(check int) "explicit advance" 3 !ticks

let test_shared_contexts_independent () =
  (* two subscriptions on the same expression detect independently *)
  let g = Graph.create () in
  let a = ref 0 and b = ref 0 in
  let e = Expr.conj (Expr.eom "x") (Expr.eom "y") in
  ignore (Graph.subscribe g ~on_signal:(fun _ -> incr a) e);
  let sub_b = Graph.subscribe g ~on_signal:(fun _ -> incr b) e in
  Graph.feed g (occ ~at:1 "x");
  (* resetting one detector must not affect the other *)
  Events.Detector.reset (Graph.detector sub_b);
  Graph.feed g (occ ~at:2 "y");
  Alcotest.(check int) "a detected" 1 !a;
  Alcotest.(check int) "b was reset" 0 !b

let prop_graph_equals_naive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"graph routing = naive feeding" ~count:100
       QCheck2.Gen.(list_size (int_bound 40) (oneofl [ "a"; "b"; "c" ]))
       (fun meths ->
         let stream = List.mapi (fun i m -> occ ~at:(i + 1) m) meths in
         let exprs =
           [
             Expr.seq (Expr.eom "a") (Expr.eom "b");
             Expr.conj (Expr.eom "b") (Expr.eom "c");
             Expr.any 2 [ Expr.eom "a"; Expr.eom "b"; Expr.eom "c" ];
           ]
         in
         let naive =
           List.map
             (fun e ->
               let n = ref 0 in
               let d = Events.Detector.create ~on_signal:(fun _ -> incr n) e in
               List.iter (Events.Detector.feed d) stream;
               !n)
             exprs
         in
         let g = Graph.create () in
         let counts = List.map (fun _ -> ref 0) exprs in
         List.iter2
           (fun e n -> ignore (Graph.subscribe g ~on_signal:(fun _ -> incr n) e))
           exprs counts;
         List.iter (Graph.feed g) stream;
         naive = List.map (fun r -> !r) counts))

let suite =
  [
    test "routing equivalence" test_routing_equivalence;
    test "routing is selective" test_routing_is_selective;
    test "unsubscribe" test_unsubscribe;
    test "modifier keying" test_modifier_keying;
    test "temporal advance" test_temporal_advance;
    test "subscriptions are independent" test_shared_contexts_independent;
    prop_graph_equals_naive;
  ]
