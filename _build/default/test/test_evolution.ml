open Helpers
module Evolution = Oodb.Evolution

let test_add_attribute_backfills () =
  let db = employee_db () in
  let e = new_employee db in
  let m = new_employee db ~cls:"manager" in
  let n = Evolution.add_attribute db ~cls:"employee" ~attr:"bonus" ~default:(Value.Float 0.) in
  Alcotest.(check int) "both instances backfilled" 2 n;
  Alcotest.check value "employee has it" (Value.Float 0.) (Db.get db e "bonus");
  Alcotest.check value "subclass instance too" (Value.Float 0.) (Db.get db m "bonus");
  (* new instances get the default *)
  let e2 = new_employee db in
  Alcotest.check value "new instance" (Value.Float 0.) (Db.get db e2 "bonus");
  (* and the attribute is settable/indexable like any other *)
  Db.set db e "bonus" (Value.Float 50.);
  Db.create_index db ~cls:"employee" ~attr:"bonus" ();
  Alcotest.(check (list oid)) "indexed" [ e ]
    (Db.index_lookup db ~cls:"employee" ~attr:"bonus" (Value.Float 50.))

let test_add_attribute_conflicts () =
  let db = employee_db () in
  check_raises_any "existing attr" (fun () ->
      ignore (Evolution.add_attribute db ~cls:"employee" ~attr:"salary" ~default:Value.Null));
  check_raises_any "inherited attr" (fun () ->
      ignore (Evolution.add_attribute db ~cls:"manager" ~attr:"salary" ~default:Value.Null));
  (* a subclass already declaring the name blocks the superclass *)
  Db.define_class db
    (Schema.define "contractor" ~super:"employee" ~attrs:[ ("agency", Value.Str "") ]);
  check_raises_any "subclass declares it" (fun () ->
      ignore (Evolution.add_attribute db ~cls:"employee" ~attr:"agency" ~default:Value.Null));
  Transaction.begin_ db;
  check_raises_any "DDL in txn" (fun () ->
      ignore (Evolution.add_attribute db ~cls:"employee" ~attr:"x" ~default:Value.Null));
  Transaction.abort db

let test_remove_attribute () =
  let db = employee_db () in
  let e = new_employee db in
  ignore (Evolution.add_attribute db ~cls:"employee" ~attr:"bonus" ~default:(Value.Int 1));
  Db.create_index db ~cls:"employee" ~attr:"bonus" ();
  let n = Evolution.remove_attribute db ~cls:"employee" ~attr:"bonus" in
  Alcotest.(check int) "touched" 1 n;
  Alcotest.check_raises "gone" (Errors.No_such_attribute ("employee", "bonus"))
    (fun () -> ignore (Db.get db e "bonus"));
  Alcotest.(check (list oid)) "unindexed" []
    (Db.index_lookup db ~cls:"employee" ~attr:"bonus" (Value.Int 1));
  check_raises_any "not declared here" (fun () ->
      ignore (Evolution.remove_attribute db ~cls:"manager" ~attr:"salary"))

let test_add_method () =
  let db = employee_db () in
  let e = new_employee db ~salary:100. in
  Evolution.add_method db ~cls:"employee" "double_salary" (fun db self _ ->
      let v = Value.to_float (Db.get db self "salary") in
      Db.set db self "salary" (Value.Float (v *. 2.));
      Db.get db self "salary");
  Alcotest.check value "new method runs" (Value.Float 200.)
    (Db.send db e "double_salary" []);
  check_raises_any "duplicate" (fun () ->
      Evolution.add_method db ~cls:"employee" "double_salary" (fun _ _ _ -> Value.Null))

let test_promote_method_to_event_generator () =
  let db = Db.create () in
  let sys = System.create db in
  (* a PASSIVE legacy class, defined with no monitoring in mind *)
  Db.define_class db
    (Schema.define "legacy"
       ~attrs:[ ("x", Value.Int 0) ]
       ~methods:[ ("poke", Workloads.Dsl.setter "x") ]);
  let o = Db.new_object db "legacy" in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  ignore
    (System.create_rule sys ~monitor:[ o ]
       ~event:(Expr.eom ~cls:"legacy" "poke")
       ~condition:"true" ~action:"count" ());
  ignore (Db.send db o "poke" [ Value.Int 1 ]);
  Alcotest.(check int) "passive: no events" 0 !fired;
  (* promote at runtime; the stored instance is untouched *)
  Evolution.add_event_generator db ~cls:"legacy" ~meth:"poke" Schema.On_end;
  ignore (Db.send db o "poke" [ Value.Int 2 ]);
  Alcotest.(check int) "now reactive" 1 !fired;
  (* demote again *)
  Evolution.remove_event_generator db ~cls:"legacy" ~meth:"poke";
  ignore (Db.send db o "poke" [ Value.Int 3 ]);
  Alcotest.(check int) "demoted" 1 !fired

let test_event_generator_inheritance_refresh () =
  let db = Db.create () in
  Db.define_class db
    (Schema.define "base"
       ~methods:[ ("m", fun _ _ _ -> Value.Null) ]);
  Db.define_class db (Schema.define "derived" ~super:"base");
  let d = Db.new_object db "derived" in
  let count = ref 0 in
  Db.add_tap db (fun _ _ -> incr count);
  ignore (Db.send db d "m" []);
  Alcotest.(check int) "passive" 0 !count;
  (* promoting on the BASE must refresh the subclass's flattened cache *)
  Evolution.add_event_generator db ~cls:"base" ~meth:"m" Schema.On_both;
  ignore (Db.send db d "m" []);
  Alcotest.(check int) "subclass inherits promotion" 2 !count;
  check_raises_any "unknown method" (fun () ->
      Evolution.add_event_generator db ~cls:"base" ~meth:"ghost" Schema.On_end)

let suite =
  [
    test "add attribute backfills" test_add_attribute_backfills;
    test "add attribute conflicts" test_add_attribute_conflicts;
    test "remove attribute" test_remove_attribute;
    test "add method" test_add_method;
    test "promote method to event generator" test_promote_method_to_event_generator;
    test "promotion refreshes subclasses" test_event_generator_inheritance_refresh;
  ]
