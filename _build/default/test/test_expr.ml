open Helpers
module Codec = Events.Codec

let e1 = Expr.eom ~cls:"employee" "set_salary"
let e2 = Expr.bom ~cls:"manager" "set_salary"
let e3 = Expr.eom "tick"

let test_constructors () =
  (match Expr.prim ~cls:"c" ~sources:[ Oid.of_int 1 ] Oodb.Types.After "m" with
  | Expr.Prim p ->
    Alcotest.(check string) "meth" "m" p.p_meth;
    Alcotest.(check int) "sources" 1 (Oid.Set.cardinal p.p_sources)
  | _ -> Alcotest.fail "not a prim");
  match Expr.of_signature ~sources:[ Oid.of_int 9 ] "end stock::set_price(float p)" with
  | Expr.Prim p ->
    Alcotest.(check (option string)) "cls" (Some "stock") p.p_class;
    Alcotest.(check bool) "source filter" true
      (Oid.Set.mem (Oid.of_int 9) p.p_sources)
  | _ -> Alcotest.fail "not a prim"

let test_validation () =
  check_raises_any "any m=0" (fun () -> Expr.any 0 [ e1 ]);
  check_raises_any "any m>n" (fun () -> Expr.any 3 [ e1; e2 ]);
  check_raises_any "periodic dt=0" (fun () -> Expr.periodic e1 0 e2);
  check_raises_any "periodic limit=0" (fun () -> Expr.periodic ~limit:0 e1 5 e2);
  check_raises_any "plus dt<0" (fun () -> Expr.plus e1 (-1))

let test_equal () =
  Alcotest.(check bool) "same" true (Expr.equal (Expr.conj e1 e2) (Expr.conj e1 e2));
  Alcotest.(check bool) "operator matters" false
    (Expr.equal (Expr.conj e1 e2) (Expr.disj e1 e2));
  Alcotest.(check bool) "order matters" false
    (Expr.equal (Expr.seq e1 e2) (Expr.seq e2 e1));
  Alcotest.(check bool) "sources matter" false
    (Expr.equal (Expr.eom ~cls:"c" "m") (Expr.eom ~cls:"c" ~sources:[ Oid.of_int 1 ] "m"))

let test_inspection () =
  let e = Expr.conj (Expr.seq e1 e2) (Expr.disj e3 e1) in
  Alcotest.(check int) "prims" 4 (List.length (Expr.prims e));
  Alcotest.(check int) "size" 7 (Expr.size e);
  Alcotest.(check int) "depth" 3 (Expr.depth e);
  Alcotest.(check int) "not size" 4 (Expr.size (Expr.not_between e1 e2 e3));
  Alcotest.(check bool) "pp mentions operator" true
    (let s = Expr.to_string (Expr.conj e1 e2) in
     String.length s > 0
     &&
     let rec contains i =
       i + 3 <= String.length s && (String.sub s i 3 = "AND" || contains (i + 1))
     in
     contains 0)

let test_codec_cases () =
  let roundtrip e =
    Alcotest.(check bool)
      (Expr.to_string e)
      true
      (Expr.equal e (Codec.decode (Codec.encode e)))
  in
  roundtrip e1;
  roundtrip (Expr.eom "anyclass_method");
  roundtrip (Expr.eom ~cls:"weird class!" ~sources:[ Oid.of_int 3; Oid.of_int 7 ] "odd,meth()");
  roundtrip (Expr.conj e1 e2);
  roundtrip (Expr.disj (Expr.seq e1 e2) e3);
  roundtrip (Expr.any 2 [ e1; e2; e3 ]);
  roundtrip (Expr.not_between e1 e2 e3);
  roundtrip (Expr.aperiodic e1 e2 e3);
  roundtrip (Expr.aperiodic_star e1 e2 e3);
  roundtrip (Expr.periodic e1 10 e3);
  roundtrip (Expr.periodic ~limit:5 e1 10 e3);
  roundtrip (Expr.plus e1 42)

let test_codec_errors () =
  let bad s =
    match Codec.decode s with
    | _ -> Alcotest.failf "%S should not decode" s
    | exception Errors.Parse_error _ -> ()
  in
  bad "";
  bad "frob(a,b)";
  bad "and(prim(end,,m,))"; (* missing second operand *)
  bad "prim(end,,m,)x"; (* trailing garbage *)
  bad "per(prim(end,,m,),x,-,prim(end,,m,))"

(* Random expression generator for the roundtrip property. *)
let expr_gen =
  let open QCheck2.Gen in
  let name = oneofl [ "m1"; "m2"; "set_salary"; "deposit" ] in
  let prim_gen =
    let* meth = name in
    let* cls = opt (oneofl [ "employee"; "manager"; "account" ]) in
    let* srcs = list_size (int_bound 2) (map (fun i -> Oid.of_int (1 + abs i)) small_signed_int) in
    let* modifier = oneofl [ Oodb.Types.Before; Oodb.Types.After ] in
    return (Expr.prim ?cls ~sources:srcs modifier meth)
  in
  sized
  @@ fix (fun self n ->
         if n <= 1 then prim_gen
         else
           let sub = self (n / 2) in
           oneof
             [
               prim_gen;
               map2 Expr.conj sub sub;
               map2 Expr.disj sub sub;
               map2 Expr.seq sub sub;
               map3 Expr.not_between sub sub sub;
               map3 Expr.aperiodic sub sub sub;
               map3 Expr.aperiodic_star sub sub sub;
               (let* a = sub and* b = sub and* dt = int_range 1 100 in
                return (Expr.periodic a dt b));
               (let* a = sub and* dt = int_range 1 100 in
                return (Expr.plus a dt));
               (let* es = list_size (int_range 1 3) sub in
                let* m = int_range 1 (List.length es) in
                return (Expr.any m es));
             ])

let prop_codec_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"expr codec roundtrip" ~count:300 expr_gen (fun e ->
         Expr.equal e (Codec.decode (Codec.encode e))))

let prop_size_depth =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"depth <= size" ~count:200 expr_gen (fun e ->
         Expr.depth e <= Expr.size e && Expr.size e >= 1))

let suite =
  [
    test "constructors" test_constructors;
    test "validation" test_validation;
    test "structural equality" test_equal;
    test "inspection" test_inspection;
    test "codec cases" test_codec_cases;
    test "codec rejects garbage" test_codec_errors;
    prop_codec_roundtrip;
    prop_size_depth;
  ]
