open Helpers
module Gc = Oodb.Gc

let test_reachability () =
  let db = employee_db () in
  let a = new_employee db and b = new_employee db and c = new_employee db in
  let d = new_employee db in
  Db.set db a "mgr" (Value.Obj b); (* a -> b *)
  Db.set db b "mgr" (Value.Obj c); (* b -> c *)
  ignore d; (* unreferenced *)
  let live = Gc.reachable db ~roots:[ a ] in
  Alcotest.(check int) "three reachable" 3 (Oid.Set.cardinal live);
  Alcotest.(check bool) "d unreachable" false (Oid.Set.mem d live);
  Alcotest.(check (list oid)) "garbage" [ d ] (Gc.garbage db ~roots:[ a ])

let test_refs_inside_lists () =
  let db = Db.create () in
  Db.define_class db
    (Schema.define "container" ~attrs:[ ("items", Value.List []) ]);
  let inner = Db.new_object db "container" in
  let outer =
    Db.new_object db "container"
      ~attrs:[ ("items", Value.List [ Value.Int 1; Value.List [ Value.Obj inner ] ]) ]
  in
  Alcotest.(check bool) "nested list reference found" true
    (Oid.Set.mem inner (Gc.reachable db ~roots:[ outer ]))

let test_consumers_keep_alive () =
  let db, sys, collector, _ = sys_with_collector () in
  ignore sys;
  let e = new_employee db in
  Db.subscribe db ~reactive:e ~consumer:collector;
  (* the collector is reachable through e's consumers list *)
  Alcotest.(check bool) "consumer reachable" true
    (Oid.Set.mem collector (Gc.reachable db ~roots:[ e ]))

let test_class_consumers_are_roots () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let rule =
    System.create_rule sys ~monitor_classes:[ "employee" ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"true" ~action:"noop" ()
  in
  (* no explicit root references the rule, yet it must survive *)
  Alcotest.(check (list oid)) "no garbage" [] (Gc.garbage db ~roots:[]);
  Alcotest.(check bool) "rule is live" true
    (Oid.Set.mem rule (Gc.reachable db ~roots:[]))

let test_collect () =
  let db = employee_db () in
  let keep = new_employee db in
  let child = new_employee db in
  Db.set db keep "mgr" (Value.Obj child);
  for _ = 1 to 10 do
    ignore (new_employee db)
  done;
  let removed = Gc.collect db ~roots:[ keep ] in
  Alcotest.(check int) "ten collected" 10 removed;
  Alcotest.(check bool) "root kept" true (Db.exists db keep);
  Alcotest.(check bool) "referenced kept" true (Db.exists db child);
  Alcotest.(check int) "extent shrank" 2
    (List.length (Db.extent db ~deep:true "employee"));
  Alcotest.(check int) "idempotent" 0 (Gc.collect db ~roots:[ keep ])

let test_collect_is_undoable () =
  let db = employee_db () in
  let keep = new_employee db in
  let stray = new_employee db in
  Transaction.begin_ db;
  Alcotest.(check int) "collected in txn" 1 (Gc.collect db ~roots:[ keep ]);
  Alcotest.(check bool) "gone inside" false (Db.exists db stray);
  Transaction.abort db;
  Alcotest.(check bool) "restored by abort" true (Db.exists db stray)

let test_cycles_collected_together () =
  let db = employee_db () in
  let a = new_employee db and b = new_employee db in
  (* a and b reference each other but nothing roots them *)
  Db.set db a "mgr" (Value.Obj b);
  Db.set db b "mgr" (Value.Obj a);
  let keep = new_employee db in
  Alcotest.(check int) "cycle collected" 2 (Gc.collect db ~roots:[ keep ])

let suite =
  [
    test "reachability" test_reachability;
    test "references inside lists" test_refs_inside_lists;
    test "consumers keep alive" test_consumers_keep_alive;
    test "class consumers are roots" test_class_consumers_are_roots;
    test "collect" test_collect;
    test "collect is undoable" test_collect_is_undoable;
    test "cycles collected" test_cycles_collected_together;
  ]
