open Helpers
module Query = Oodb.Query

let db_with_index () =
  let db = employee_db () in
  let emps =
    List.init 10 (fun i ->
        new_employee db
          ~name:(Printf.sprintf "e%d" i)
          ~salary:(float_of_int (100 * (i mod 3))))
  in
  let mgr = new_employee db ~cls:"manager" ~salary:0. ~name:"m0" in
  Db.create_index db ~cls:"employee" ~attr:"salary" ();
  (db, emps, mgr)

let lookup db v =
  Db.index_lookup db ~cls:"employee" ~attr:"salary" (Value.Float v)

let test_index_builds_over_existing () =
  let db, _, mgr = db_with_index () in
  (* 0,3,6,9 have salary 0, plus the manager *)
  Alcotest.(check int) "bucket size" 5 (List.length (lookup db 0.));
  Alcotest.(check bool) "includes subclass instance" true
    (List.exists (Oid.equal mgr) (lookup db 0.))

let test_index_maintained_on_set () =
  let db, emps, _ = db_with_index () in
  let e = List.hd emps in
  Db.set db e "salary" (Value.Float 777.);
  Alcotest.(check (list oid)) "new bucket" [ e ] (lookup db 777.);
  Alcotest.(check bool) "old bucket updated" true
    (not (List.exists (Oid.equal e) (lookup db 0.)))

let test_index_maintained_on_create_delete () =
  let db, _, _ = db_with_index () in
  let e = new_employee db ~salary:555. in
  Alcotest.(check (list oid)) "new object indexed" [ e ] (lookup db 555.);
  Db.delete_object db e;
  Alcotest.(check (list oid)) "removed on delete" [] (lookup db 555.)

let test_index_consistent_after_abort () =
  let db, emps, _ = db_with_index () in
  let e = List.hd emps in
  Transaction.begin_ db;
  Db.set db e "salary" (Value.Float 888.);
  let e2 = new_employee db ~salary:888. in
  Alcotest.(check int) "inside txn" 2 (List.length (lookup db 888.));
  ignore e2;
  Transaction.abort db;
  Alcotest.(check (list oid)) "bucket emptied by abort" [] (lookup db 888.);
  Alcotest.(check bool) "back in old bucket" true
    (List.exists (Oid.equal e) (lookup db 0.))

let test_index_management () =
  let db, _, _ = db_with_index () in
  Alcotest.(check bool) "has" true (Db.has_index db ~cls:"employee" ~attr:"salary");
  Db.create_index db ~cls:"employee" ~attr:"salary" (); (* idempotent *)
  Db.drop_index db ~cls:"employee" ~attr:"salary";
  Alcotest.(check bool) "dropped" false
    (Db.has_index db ~cls:"employee" ~attr:"salary");
  check_raises_any "lookup after drop" (fun () -> lookup db 0.)

let test_query_predicates () =
  let db, _, _ = db_with_index () in
  let q p = List.length (Query.select db "employee" p) in
  Alcotest.(check int) "eq" 5 (q (Query.Eq ("salary", Value.Float 0.)));
  Alcotest.(check int) "ne" 6 (q (Query.Ne ("salary", Value.Float 0.)));
  Alcotest.(check int) "lt" 5 (q (Query.Lt ("salary", Value.Float 100.)));
  Alcotest.(check int) "le" 8 (q (Query.Le ("salary", Value.Float 100.)));
  Alcotest.(check int) "gt" 3 (q (Query.Gt ("salary", Value.Float 100.)));
  Alcotest.(check int) "ge" 6 (q (Query.Ge ("salary", Value.Float 100.)));
  Alcotest.(check int) "true" 11 (q Query.True);
  Alcotest.(check int) "and" 2
    (q (Query.And (Query.Eq ("salary", Value.Float 100.), Query.Ne ("name", Value.Str "e1"))));
  Alcotest.(check int) "or" 8
    (q (Query.Or (Query.Eq ("salary", Value.Float 0.), Query.Eq ("salary", Value.Float 100.))));
  Alcotest.(check int) "not" 6 (q (Query.Not (Query.Eq ("salary", Value.Float 0.))));
  Alcotest.(check int) "has" 11 (q (Query.Has "salary"));
  Alcotest.(check int) "shallow" 4
    (List.length
       (Query.select db ~deep:false "employee" (Query.Eq ("salary", Value.Float 0.))))

let test_query_missing_attr_is_false () =
  let db = Db.create () in
  Db.define_class db (Schema.define "a" ~attrs:[ ("x", Value.Int 1) ]);
  Db.define_class db (Schema.define "b" ~super:"a" ~attrs:[ ("y", Value.Int 2) ]);
  let _a = Db.new_object db "a" in
  let b = Db.new_object db "b" in
  (* querying the deep extent of [a] on [y]: plain [a]s simply don't match *)
  Alcotest.(check (list oid))
    "heterogeneous extent" [ b ]
    (Query.select db "a" (Query.Eq ("y", Value.Int 2)))

let test_ordered_index () =
  let db = employee_db () in
  let emps =
    List.init 20 (fun i -> new_employee db ~salary:(float_of_int (i * 10)))
  in
  Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"salary" ();
  Alcotest.(check bool) "kind reported" true
    (Db.index_kind db ~cls:"employee" ~attr:"salary" = Some `Ordered);
  (* equality works on ordered indexes too *)
  Alcotest.(check (list oid)) "eq probe" [ List.nth emps 3 ]
    (Db.index_lookup db ~cls:"employee" ~attr:"salary" (Value.Float 30.));
  (* range probe *)
  Alcotest.(check int) "range probe" 3
    (List.length
       (Db.index_range db ~cls:"employee" ~attr:"salary"
          ~lo:(Value.Float 50., true) ~hi:(Value.Float 70., true) ()));
  (* maintained under mutation *)
  Db.set db (List.hd emps) "salary" (Value.Float 65.);
  Alcotest.(check int) "after set" 4
    (List.length
       (Db.index_range db ~cls:"employee" ~attr:"salary"
          ~lo:(Value.Float 50., true) ~hi:(Value.Float 70., true) ()));
  (* hash index refuses ranges *)
  Db.create_index db ~cls:"employee" ~attr:"name" ();
  check_raises_any "hash range" (fun () ->
      ignore (Db.index_range db ~cls:"employee" ~attr:"name" ()))

let test_query_uses_ordered_index () =
  let db = employee_db () in
  List.iter
    (fun i -> ignore (new_employee db ~salary:(float_of_int i)))
    (List.init 50 (fun i -> i));
  let p = Query.And (Query.Ge ("salary", Value.Float 10.), Query.Lt ("salary", Value.Float 20.)) in
  let scan = Query.select db "employee" p in
  Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"salary" ();
  Alcotest.(check (list oid)) "indexed = scan" scan (Query.select db "employee" p);
  Alcotest.(check int) "count" 10 (Query.count db "employee" p)

(* Property: index-accelerated select gives the same result as a scan. *)
let prop_index_matches_scan =
  QCheck2.Test.make ~name:"indexed select = scan select" ~count:50
    QCheck2.Gen.(list_size (int_bound 40) (int_bound 5))
    (fun salaries ->
      let db = employee_db () in
      List.iter
        (fun s -> ignore (new_employee db ~salary:(float_of_int s)))
        salaries;
      let p = Query.Eq ("salary", Value.Float 2.) in
      let scan = Query.select db "employee" p in
      Db.create_index db ~cls:"employee" ~attr:"salary" ();
      let indexed = Query.select db "employee" p in
      List.map Oid.to_int scan = List.map Oid.to_int indexed)

let suite =
  [
    test "index builds over existing objects" test_index_builds_over_existing;
    test "index maintained on set" test_index_maintained_on_set;
    test "index maintained on create/delete" test_index_maintained_on_create_delete;
    test "index consistent after abort" test_index_consistent_after_abort;
    test "index management" test_index_management;
    test "query predicates" test_query_predicates;
    test "query over heterogeneous extent" test_query_missing_attr_is_false;
    test "ordered index" test_ordered_index;
    test "query uses ordered index" test_query_uses_ordered_index;
    QCheck_alcotest.to_alcotest prop_index_matches_scan;
  ]
