(* Cross-feature interaction tests: the places where two subsystems meet
   and could disagree. *)

open Helpers
module Session = Oodb.Session
module Template = Sentinel.Template
module Evolution = Oodb.Evolution

let test_session_send_triggers_rules () =
  let db = employee_db () in
  let sys = System.create db in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  let e = new_employee db ~salary:1. in
  ignore
    (System.create_rule sys ~monitor:[ e ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"count" ());
  let m = Session.manager db in
  let s = Session.session m in
  Session.begin_ s;
  ignore (Session.send s e "set_salary" [ Value.Float 9. ]);
  Alcotest.(check int) "immediate rule fired through session" 1 !fired;
  (* the session abort restores the receiver even though the rule ran *)
  Session.abort s;
  Alcotest.check value "receiver restored" (Value.Float 1.) (Db.get db e "salary")

let test_template_with_filters () =
  let db = Db.create () in
  let sys = System.create db in
  Workloads.Banking.install db;
  let accounts = Workloads.Banking.populate db (Workloads.Prng.create 1) ~accounts:2 in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  (* a filtered template: bind narrows instances, the mask narrows amounts *)
  let tpl =
    Template.declare sys ~name:"large-withdrawals"
      ~event:(Events.Parser.parse "begin account::withdraw where $0 >= 100")
      ~condition:"true" ~action:"count" ()
  in
  ignore (Template.bind sys tpl [ accounts.(0) ]);
  ignore (Db.send db accounts.(0) "withdraw" [ Value.Float 50. ]); (* mask *)
  ignore (Db.send db accounts.(0) "withdraw" [ Value.Float 500. ]); (* fires *)
  ignore (Db.send db accounts.(1) "withdraw" [ Value.Float 500. ]); (* unbound *)
  Alcotest.(check int) "mask and binding compose" 1 !fired

let test_evolved_class_with_rules () =
  (* evolve a passive class, then monitor it with a DSL-loaded rule *)
  let db = Db.create () in
  let sys = System.create db in
  Db.define_class db
    (Schema.define "sensor"
       ~attrs:[ ("value", Value.Float 0.) ]
       ~methods:[ ("update", Workloads.Dsl.setter "value") ]);
  let s1 = Db.new_object db "sensor" in
  Evolution.add_event_generator db ~cls:"sensor" ~meth:"update" Schema.On_end;
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  ignore
    (Sentinel.Rule_dsl.load_string sys
       {|rule sensor-watch
         on end sensor::update where $0 > 10
         then count
         monitor class sensor
         end|});
  ignore (Db.send db s1 "update" [ Value.Float 5. ]);
  ignore (Db.send db s1 "update" [ Value.Float 15. ]);
  Alcotest.(check int) "evolved + DSL + filter" 1 !fired

let test_wal_replays_rule_objects () =
  (* a rule created while a WAL is attached is reconstructed by replay *)
  let wal_path = Filename.temp_file "sentinel_ix" ".wal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists wal_path then Sys.remove wal_path)
    (fun () ->
      let db = employee_db () in
      let sys = System.create db in
      System.register_action sys "count" (fun _ _ -> ());
      let wal = Oodb.Wal.attach db wal_path in
      let e = new_employee db in
      let rule =
        System.create_rule sys ~name:"walled" ~monitor:[ e ]
          ~event:(Expr.eom ~cls:"employee" "set_salary")
          ~condition:"true" ~action:"count" ()
      in
      Oodb.Wal.detach wal;
      (* recover into a fresh store and rehydrate the rule layer *)
      let db2 = Db.create () in
      Workloads.Payroll.install db2;
      let sys2 = System.create db2 in
      let fired = ref 0 in
      System.register_action sys2 "count" (fun _ _ -> incr fired);
      ignore (Oodb.Wal.replay db2 wal_path);
      System.rehydrate sys2;
      Alcotest.(check (list oid)) "rule recovered from log" [ rule ]
        (System.rules sys2);
      ignore (Db.send db2 e "set_salary" [ Value.Float 1. ]);
      Alcotest.(check int) "fires after replay" 1 !fired)

let test_gc_respects_rule_references () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "count" (fun _ _ -> ());
  let e = new_employee db in
  (* an instance-level rule: e holds the rule in its consumers list, so
     rooting e keeps the rule; rooting nothing collects both *)
  let rule =
    System.create_rule sys ~monitor:[ e ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"true" ~action:"count" ()
  in
  Alcotest.(check bool) "rule live via subscription" true
    (Oodb.Oid.Set.mem rule (Oodb.Gc.reachable db ~roots:[ e ]));
  let collected = Oodb.Gc.collect db ~roots:[ e ] in
  Alcotest.(check int) "nothing to collect" 0 collected;
  Alcotest.(check bool) "rule survived" true (Db.exists db rule)

let test_expire_then_verify () =
  (* expiry and integrity checks interact safely with live detectors *)
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "count" (fun _ _ -> ());
  let e = new_employee db in
  ignore
    (System.create_rule sys ~context:Events.Context.Chronicle ~monitor:[ e ]
       ~event:
         (Expr.conj
            (Expr.eom ~cls:"employee" "set_salary")
            (Expr.eom ~cls:"employee" "change_income"))
       ~condition:"true" ~action:"count" ());
  for i = 1 to 100 do
    ignore (Db.send db e "set_salary" [ Value.Float (float_of_int i) ])
  done;
  System.expire_partial_state sys ~max_age:10;
  Alcotest.(check bool) "db still sound" true
    (Oodb.Verify.check ~quiescent:true db = Ok ())

(* Property: random rule sets (mixed couplings, priorities, contexts,
   operators) over random transactional workloads leave the whole system
   consistent: accounting identities hold and the store verifies. *)
let prop_system_consistency =
  let open QCheck2.Gen in
  let rule_gen =
    let* coupling =
      oneofl Sentinel.Coupling.[ Immediate; Deferred; Detached ]
    in
    let* context = oneofl Events.Context.all in
    let* priority = int_bound 9 in
    let* shape = oneofl [ `Prim; `Disj; `Seq ] in
    return (coupling, context, priority, shape)
  in
  let spec = pair (list_size (int_range 1 5) rule_gen) (int_range 5 60) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random rule systems stay consistent" ~count:60 spec
       (fun (rule_specs, n_ops) ->
         let db = employee_db () in
         let sys = System.create db in
         System.register_action sys "noop" (fun _ _ -> ());
         let rules =
           List.mapi
             (fun i (coupling, context, priority, shape) ->
               let event =
                 let sal = Expr.eom ~cls:"employee" "set_salary" in
                 let inc = Expr.eom ~cls:"employee" "change_income" in
                 match shape with
                 | `Prim -> sal
                 | `Disj -> Expr.disj sal inc
                 | `Seq -> Expr.seq sal inc
               in
               System.create_rule sys
                 ~name:(Printf.sprintf "r%d" i)
                 ~coupling ~context ~priority ~monitor_classes:[ "employee" ]
                 ~event ~condition:"true" ~action:"noop" ())
             rule_specs
         in
         let rng = Workloads.Prng.create (n_ops * 31) in
         let pop =
           Workloads.Payroll.populate db rng ~managers:2 ~employees:5
         in
         for _ = 1 to n_ops do
           let target, _ =
             let all = Array.append pop.managers pop.employees in
             (Workloads.Prng.choice rng all, ())
           in
           let meth =
             if Workloads.Prng.bool rng 0.5 then "set_salary" else "change_income"
           in
           match
             Transaction.atomically db (fun () ->
                 ignore (Db.send db target meth [ Value.Float 1. ]))
           with
           | Ok () -> ()
           | Error e -> raise e
         done;
         let stats = System.stats sys in
         let total_fired =
           List.fold_left
             (fun acc r -> acc + (System.rule_info sys r).Sentinel.Rule.fired)
             0 rules
         in
         stats.conditions_checked >= stats.actions_executed
         && total_fired = stats.actions_executed
         && (not (Transaction.in_progress db))
         && Oodb.Verify.check ~quiescent:true db = Ok ()))

let suite =
  [
    test "session send triggers rules" test_session_send_triggers_rules;
    test "template with filters" test_template_with_filters;
    test "evolved class with DSL rules" test_evolved_class_with_rules;
    test "wal replays rule objects" test_wal_replays_rule_objects;
    test "gc respects rule references" test_gc_respects_rule_references;
    test "expire then verify" test_expire_then_verify;
    prop_system_consistency;
  ]
