open Helpers
module Introspect = Oodb.Introspect
module Analysis = Sentinel.Analysis

let test_class_stats () =
  let db = employee_db () in
  ignore (new_employee db);
  ignore (new_employee db ~cls:"manager");
  let s = Introspect.class_stats db "employee" in
  Alcotest.(check (option string)) "no super" None s.cs_super;
  Alcotest.(check bool) "reactive" true s.cs_reactive;
  Alcotest.(check int) "direct" 1 s.cs_direct_instances;
  Alcotest.(check int) "deep" 2 s.cs_deep_instances;
  Alcotest.(check bool) "has set_salary method" true
    (List.mem "set_salary" s.cs_methods);
  Alcotest.(check bool) "event interface lists it" true
    (List.mem_assoc "set_salary" s.cs_event_interface);
  Alcotest.(check bool) "get_name not an event" false
    (List.mem_assoc "get_name" s.cs_event_interface);
  let m = Introspect.class_stats db "manager" in
  Alcotest.(check (option string)) "manager super" (Some "employee") m.cs_super;
  Alcotest.(check bool) "inherits attrs" true (List.mem_assoc "salary" m.cs_attributes)

let test_histogram () =
  let db = employee_db () in
  ignore (new_employee db ~salary:1.);
  ignore (new_employee db ~salary:2.);
  ignore (new_employee db ~salary:2.);
  ignore (new_employee db ~salary:3.);
  (match Introspect.attribute_histogram db ~cls:"employee" ~attr:"salary" () with
  | (v, n) :: _ ->
    Alcotest.check value "most frequent" (Value.Float 2.) v;
    Alcotest.(check int) "count" 2 n
  | [] -> Alcotest.fail "empty histogram");
  Alcotest.(check int) "top limits" 2
    (List.length
       (Introspect.attribute_histogram db ~cls:"employee" ~attr:"salary" ~top:2 ()))

let test_reports_render () =
  let db, sys, collector, _ = sys_with_collector () in
  ignore sys;
  let e = new_employee db in
  Db.subscribe db ~reactive:e ~consumer:collector;
  Alcotest.(check int) "subscription edges" 1 (Introspect.subscription_count db);
  let schema = Format.asprintf "%a" Introspect.pp_schema db in
  Alcotest.(check bool) "schema mentions class" true
    (contains_substring ~sub:"class employee" schema);
  Alcotest.(check bool) "schema mentions event" true
    (contains_substring ~sub:"[event" schema);
  let summary = Format.asprintf "%a" Introspect.pp_summary db in
  Alcotest.(check bool) "summary mentions edges" true
    (contains_substring ~sub:"1 subscription edge" summary)

let test_dot_export () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys
    ~may_send:[ ("set_salary", Oodb.Types.After) ]
    "loop-action"
    (fun _ _ -> ());
  ignore
    (System.create_rule sys ~name:"looper"
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"loop-action" ());
  let dot = Analysis.to_dot sys in
  Alcotest.(check bool) "digraph" true (contains_substring ~sub:"digraph" dot);
  Alcotest.(check bool) "node labelled" true
    (contains_substring ~sub:"\"looper\"" dot);
  Alcotest.(check bool) "self loop in red" true
    (contains_substring ~sub:"color=red" dot);
  Alcotest.(check bool) "edge drawn" true (contains_substring ~sub:" -> " dot)

let suite =
  [
    test "class stats" test_class_stats;
    test "attribute histogram" test_histogram;
    test "reports render" test_reports_render;
    test "triggering graph dot export" test_dot_export;
  ]
