(* Integration tests reproducing the paper's worked examples end to end:
   - §2.1 / Figure 2: the Purchase rule (inter-object, inter-class event)
   - Figure 9: the class-level Marriage rule with Immediate coupling + abort
   - Figure 10: the instance-level IncomeLevel rule across two classes
   - §4.6: the Deposit;Withdraw sequence event from signatures
   - §5.1: Salary-check enforced identically by Sentinel, Ode and ADAM *)

open Helpers
module Coupling = Sentinel.Coupling
module Rule = Sentinel.Rule

(* --- §2.1 Purchase ----------------------------------------------------------- *)

let test_purchase_rule () =
  let db = Db.create () in
  let sys = System.create db in
  Workloads.Stock_market.install db;
  let ibm =
    Db.new_object db "stock"
      ~attrs:[ ("symbol", Value.Str "IBM"); ("price", Value.Float 100.) ]
  in
  let other_stock = Db.new_object db "stock" in
  let dow = Db.new_object db "financial_info" ~attrs:[ ("name", Value.Str "DowJones") ] in
  let parker = Db.new_object db "portfolio" in
  System.register_condition sys "purchase-cond" (fun db _ ->
      Value.to_float (Db.get db ibm "price") < 80.
      && Value.to_float (Db.get db dow "change") < 3.4);
  System.register_action sys "purchase-act" (fun db _ ->
      ignore (Db.send db parker "purchase" [ Value.Obj ibm; Value.Int 1 ]));
  ignore
    (System.create_rule sys ~name:"Purchase" ~monitor:[ ibm; dow ]
       ~event:
         (Expr.conj
            (Expr.eom ~cls:"stock" ~sources:[ ibm ] "set_price")
            (Expr.eom ~cls:"financial_info" ~sources:[ dow ] "set_value"))
       ~condition:"purchase-cond" ~action:"purchase-act" ());
  let shares () = Value.to_int (Db.get db parker "shares") in
  (* other stocks' prices are irrelevant even though the class matches *)
  ignore (Db.send db other_stock "set_price" [ Value.Float 10. ]);
  ignore (Db.send db dow "set_value" [ Value.Float 3000.; Value.Float 1.0 ]);
  Alcotest.(check int) "unsubscribed source ignored" 0 (shares ());
  ignore (Db.send db ibm "set_price" [ Value.Float 75. ]);
  Alcotest.(check int) "conjunction completed, condition true" 1 (shares ());
  (* condition false: dow change too high *)
  ignore (Db.send db dow "set_value" [ Value.Float 3000.; Value.Float 5.0 ]);
  Alcotest.(check int) "condition filters" 1 (shares ())

(* --- Figure 9: Marriage (class-level, abort) ----------------------------------- *)

let test_marriage_rule () =
  let db = Db.create () in
  let sys = System.create db in
  Db.define_class db
    (Schema.define "person"
       ~attrs:[ ("name", Value.Str ""); ("sex", Value.Str ""); ("spouse", Value.Null) ]
       ~methods:
         [
           ( "marry",
             fun db self args ->
               match args with
               | [ (Value.Obj other as spouse) ] ->
                 Db.set db self "spouse" spouse;
                 Db.set db other "spouse" (Value.Obj self);
                 Value.Null
               | _ -> Errors.type_error "marry expects a person" );
         ]
       ~events:[ ("marry", Schema.On_begin) ]);
  System.register_condition sys "same-sex" (fun db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] -> (
        match occ.params with
        | [ Value.Obj spouse ] ->
          Value.to_str (Db.get db occ.source "sex")
          = Value.to_str (Db.get db spouse "sex")
        | _ -> false)
      | _ -> false);
  ignore
    (System.create_rule sys ~name:"Marriage" ~coupling:Coupling.Immediate
       ~monitor_classes:[ "person" ]
       ~event:(Expr.bom ~cls:"person" "marry")
       ~condition:"same-sex" ~action:"abort" ());
  let mk name sex =
    Db.new_object db "person" ~attrs:[ ("name", Value.Str name); ("sex", Value.Str sex) ]
  in
  let alice = mk "alice" "f" and bob = mk "bob" "m" and carol = mk "carol" "f" in
  (match
     Transaction.atomically db (fun () ->
         ignore (Db.send db alice "marry" [ Value.Obj bob ]))
   with
  | Ok () -> ()
  | Error e -> raise e);
  Alcotest.check value "married" (Value.Obj bob) (Db.get db alice "spouse");
  (match
     Transaction.atomically db (fun () ->
         ignore (Db.send db carol "marry" [ Value.Obj alice ]))
   with
  | Ok () -> Alcotest.fail "rule should abort"
  | Error (Errors.Rule_abort _) -> ()
  | Error e -> raise e);
  (* bom means the abort happened before the method body could mutate *)
  Alcotest.check value "carol unmarried" Value.Null (Db.get db carol "spouse");
  Alcotest.check value "alice untouched" (Value.Obj bob) (Db.get db alice "spouse")

(* --- Figure 10: IncomeLevel ------------------------------------------------------ *)

let test_income_level_rule () =
  let db = employee_db () in
  let sys = System.create db in
  let fred = new_employee db ~name:"fred" in
  let mike = new_employee db ~cls:"manager" ~name:"mike" in
  System.register_condition sys "unequal" (fun db _ ->
      not
        (Value.equal (Db.get db fred "income") (Db.get db mike "income")));
  System.register_action sys "equalize" (fun db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] ->
        let target = if Oid.equal occ.source fred then mike else fred in
        Db.set db target "income" (Db.get db occ.source "income")
      | _ -> ());
  ignore
    (System.create_rule sys ~name:"IncomeLevel" ~monitor:[ fred; mike ]
       ~event:
         (Expr.disj
            (Expr.eom ~cls:"employee" "change_income")
            (Expr.eom ~cls:"manager" "change_income"))
       ~condition:"unequal" ~action:"equalize" ());
  ignore (Db.send db fred "change_income" [ Value.Float 4000. ]);
  Alcotest.check value "mike follows fred" (Value.Float 4000.)
    (Db.get db mike "income");
  ignore (Db.send db mike "change_income" [ Value.Float 5000. ]);
  Alcotest.check value "fred follows mike" (Value.Float 5000.)
    (Db.get db fred "income");
  (* a third employee's income changes are invisible to the rule *)
  let eve = new_employee db in
  ignore (Db.send db eve "change_income" [ Value.Float 1. ]);
  Alcotest.check value "rule scoped to its instances" (Value.Float 5000.)
    (Db.get db fred "income")

(* --- §4.6 Deposit;Withdraw --------------------------------------------------------- *)

let test_depwit_sequence () =
  let db = Db.create () in
  let sys = System.create db in
  Workloads.Banking.install db;
  let rng = Workloads.Prng.create 1 in
  let accounts = Workloads.Banking.populate db rng ~accounts:1 in
  let acct = accounts.(0) in
  let detections = ref [] in
  System.register_action sys "record" (fun _db inst ->
      detections := shape inst :: !detections);
  ignore
    (System.create_rule sys ~name:"DepWit" ~monitor:[ acct ]
       ~event:
         (Expr.seq
            (Expr.of_signature "end account::deposit(float x)")
            (Expr.of_signature "before account::withdraw(float x)"))
       ~condition:"true" ~action:"record" ());
  (* withdraw before any deposit: no detection *)
  ignore (Db.send db acct "withdraw" [ Value.Float 5. ]);
  Alcotest.(check int) "no premature detection" 0 (List.length !detections);
  ignore (Db.send db acct "deposit" [ Value.Float 10. ]);
  ignore (Db.send db acct "withdraw" [ Value.Float 5. ]);
  Alcotest.(check int) "detected" 1 (List.length !detections);
  match !detections with
  | [ [ ("deposit", _); ("withdraw", _) ] ] -> ()
  | _ -> Alcotest.fail "wrong constituents"

(* --- §5.1 Salary-check across all three engines -------------------------------------- *)

(* Run the same violation scenario against each engine and observe that all
   three reject it, while all three accept the legal update. *)
let salary_check_parity () =
  let prepare () =
    let db = employee_db () in
    let mgr = new_employee db ~cls:"manager" ~name:"mgr" ~salary:5000. in
    let emp = new_employee db ~name:"emp" ~salary:1000. in
    Db.set db emp "mgr" (Value.Obj mgr);
    (db, emp)
  in
  let employee_ok db emp =
    match Db.get db emp "mgr" with
    | Value.Obj m ->
      Value.to_float (Db.get db emp "salary")
      < Value.to_float (Db.get db m "salary")
    | _ -> true
  in
  let results = ref [] in
  (* Sentinel *)
  (let db, emp = prepare () in
   let sys = System.create db in
   System.register_condition sys "viol" (fun db inst ->
       match inst.Events.Detector.constituents with
       | [ occ ] -> not (employee_ok db occ.source)
       | _ -> false);
   ignore
     (System.create_rule sys ~name:"salary-check" ~monitor_classes:[ "employee" ]
        ~event:(Expr.eom ~cls:"employee" "set_salary")
        ~condition:"viol" ~action:"abort" ());
   let attempt v =
     match
       Transaction.atomically db (fun () ->
           ignore (Db.send db emp "set_salary" [ Value.Float v ]))
     with
     | Ok () -> `Accepted
     | Error (Errors.Rule_abort _) -> `Rejected
     | Error e -> raise e
   in
   results := ("sentinel", attempt 2000., attempt 9999.) :: !results);
  (* Ode *)
  (let db = employee_db () in
   let ode = Baselines.Ode.create db in
   Baselines.Ode.declare_constraint ode ~cls:"employee" ~name:"lt-mgr" employee_ok;
   let mgr = new_employee db ~cls:"manager" ~salary:5000. in
   let emp = new_employee db ~salary:1000. in
   Db.set db emp "mgr" (Value.Obj mgr);
   let attempt v =
     match
       Transaction.atomically db (fun () ->
           ignore (Baselines.Ode.send ode emp "set_salary" [ Value.Float v ]))
     with
     | Ok () -> `Accepted
     | Error (Errors.Rule_abort _) -> `Rejected
     | Error e -> raise e
   in
   results := ("ode", attempt 2000., attempt 9999.) :: !results);
  (* ADAM *)
  (let db, emp = prepare () in
   let adam = Baselines.Adam.create db in
   ignore
     (Baselines.Adam.add_rule adam ~name:"salary-check" ~active_class:"employee"
        ~meth:"set_salary"
        ~condition:(fun db occ -> not (employee_ok db occ.Oodb.Types.source))
        ~action:(fun _ _ -> raise (Errors.Rule_abort "Invalid Salary"))
        ());
   let attempt v =
     match
       Transaction.atomically db (fun () ->
           ignore (Db.send db emp "set_salary" [ Value.Float v ]))
     with
     | Ok () -> `Accepted
     | Error (Errors.Rule_abort _) -> `Rejected
     | Error e -> raise e
   in
   results := ("adam", attempt 2000., attempt 9999.) :: !results);
  List.rev !results

let test_salary_check_parity () =
  List.iter
    (fun (engine, legal, violation) ->
      Alcotest.(check bool) (engine ^ " accepts legal") true (legal = `Accepted);
      Alcotest.(check bool)
        (engine ^ " rejects violation")
        true
        (violation = `Rejected))
    (salary_check_parity ())

let suite =
  [
    test "purchase rule (§2.1)" test_purchase_rule;
    test "marriage rule (Figure 9)" test_marriage_rule;
    test "income-level rule (Figure 10)" test_income_level_rule;
    test "deposit;withdraw sequence (§4.6)" test_depwit_sequence;
    test "salary-check parity across engines (§5.1)" test_salary_check_parity;
  ]
