open Helpers
module Codec = Events.Codec
module Parser = Events.Parser

let gt0 v = { Expr.pf_index = 0; pf_cmp = Expr.Cgt; pf_value = Value.Float v }
let eq1 s = { Expr.pf_index = 1; pf_cmp = Expr.Ceq; pf_value = Value.Str s }

let test_filter_matches () =
  let f = gt0 100. in
  Alcotest.(check bool) "above" true (Expr.filter_matches f [ Value.Float 150. ]);
  Alcotest.(check bool) "below" false (Expr.filter_matches f [ Value.Float 50. ]);
  Alcotest.(check bool) "numeric cross-tag" true
    (Expr.filter_matches f [ Value.Int 200 ]);
  Alcotest.(check bool) "missing param" false (Expr.filter_matches f []);
  let ops =
    [
      (Expr.Ceq, [ true; false; false ]);
      (Expr.Cne, [ false; true; true ]);
      (Expr.Clt, [ false; true; false ]);
      (Expr.Cle, [ true; true; false ]);
      (Expr.Cgt, [ false; false; true ]);
      (Expr.Cge, [ true; false; true ]);
    ]
  in
  (* against values equal / below / above the constant 5 *)
  List.iter
    (fun (cmp, expected) ->
      let f = { Expr.pf_index = 0; pf_cmp = cmp; pf_value = Value.Int 5 } in
      List.iter2
        (fun v exp ->
          Alcotest.(check bool)
            (Printf.sprintf "%s vs %s" (Expr.cmp_to_string cmp) (Value.to_string v))
            exp
            (Expr.filter_matches f [ v ]))
        [ Value.Int 5; Value.Int 4; Value.Int 6 ]
        expected)
    ops

let test_detector_applies_filters () =
  let e = Expr.prim ~filters:[ gt0 100. ] Oodb.Types.After "set_price" in
  let _, signals =
    detect e
      [
        mk_occ ~at:1 ~params:[ Value.Float 50. ] "set_price" Oodb.Types.After;
        mk_occ ~at:2 ~params:[ Value.Float 150. ] "set_price" Oodb.Types.After;
        mk_occ ~at:3 ~params:[] "set_price" Oodb.Types.After;
      ]
  in
  Alcotest.(check int) "only the passing occurrence" 1 (List.length signals)

let test_codec_roundtrip () =
  let cases =
    [
      Expr.prim ~filters:[ gt0 100. ] Oodb.Types.After "m";
      Expr.prim ~cls:"stock"
        ~filters:[ gt0 1.5; eq1 "weird, (value)!" ]
        ~sources:[ Oid.of_int 3 ] Oodb.Types.Before "m2";
      Expr.conj
        (Expr.prim ~filters:[ eq1 "x" ] Oodb.Types.After "a")
        (Expr.eom "b");
    ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Expr.to_string e)
        true
        (Expr.equal e (Codec.decode (Codec.encode e))))
    cases;
  (* filters participate in structural equality *)
  Alcotest.(check bool) "filters distinguish" false
    (Expr.equal
       (Expr.prim ~filters:[ gt0 1. ] Oodb.Types.After "m")
       (Expr.prim Oodb.Types.After "m"))

let test_parser_where () =
  let parses s e =
    Alcotest.(check bool) s true (Expr.equal (Parser.parse s) e)
  in
  parses "end account::withdraw where $0 > 1000"
    (Expr.prim ~cls:"account"
       ~filters:[ { Expr.pf_index = 0; pf_cmp = Expr.Cgt; pf_value = Value.Int 1000 } ]
       Oodb.Types.After "withdraw");
  parses "end m where $0 >= 1.5 and $1 = 'abc'"
    (Expr.prim
       ~filters:
         [
           { Expr.pf_index = 0; pf_cmp = Expr.Cge; pf_value = Value.Float 1.5 };
           { Expr.pf_index = 1; pf_cmp = Expr.Ceq; pf_value = Value.Str "abc" };
         ]
       Oodb.Types.After "m");
  (* 'and' after a mask resumes event conjunction when not followed by $ *)
  parses "end a where $0 = true and end b"
    (Expr.conj
       (Expr.prim
          ~filters:[ { Expr.pf_index = 0; pf_cmp = Expr.Ceq; pf_value = Value.Bool true } ]
          Oodb.Types.After "a")
       (Expr.eom "b"));
  parses "end a where $0 != null ; end b"
    (Expr.seq
       (Expr.prim
          ~filters:[ { Expr.pf_index = 0; pf_cmp = Expr.Cne; pf_value = Value.Null } ]
          Oodb.Types.After "a")
       (Expr.eom "b"));
  let bad s =
    match Parser.parse s with
    | _ -> Alcotest.failf "%S should not parse" s
    | exception Errors.Parse_error _ -> ()
  in
  bad "end m where";
  bad "end m where 0 > 1";
  bad "end m where $0";
  bad "end m where $0 > ";
  bad "(end a and end b) where $0 > 1"

let test_parser_roundtrip () =
  let cases =
    [
      Expr.prim ~cls:"c" ~filters:[ gt0 10.5 ] Oodb.Types.After "m";
      Expr.prim ~filters:[ eq1 "hello world" ] Oodb.Types.Before "m";
      Expr.seq
        (Expr.prim ~filters:[ gt0 1. ] Oodb.Types.After "a")
        (Expr.prim
           ~filters:[ { Expr.pf_index = 2; pf_cmp = Expr.Cle; pf_value = Value.Int 7 } ]
           Oodb.Types.After "b");
    ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Parser.to_syntax e)
        true
        (Expr.equal e (Parser.parse (Parser.to_syntax e))))
    cases

let test_end_to_end_rule () =
  (* large-withdrawal watch: the filter keeps small withdrawals out of the
     detector entirely *)
  let db = Db.create () in
  let sys = System.create db in
  Workloads.Banking.install db;
  let acct = Workloads.Banking.populate db (Workloads.Prng.create 1) ~accounts:1 in
  let acct = acct.(0) in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  let rule =
    System.create_rule sys ~name:"large-withdrawal" ~monitor:[ acct ]
      ~event:(Events.Parser.parse "begin account::withdraw where $0 >= 500")
      ~condition:"true" ~action:"count" ()
  in
  ignore (Db.send db acct "withdraw" [ Value.Float 100. ]);
  ignore (Db.send db acct "withdraw" [ Value.Float 900. ]);
  Alcotest.(check int) "only the large one" 1 !fired;
  (* the filtered expression persists and rehydrates *)
  let text = Oodb.Persist.to_string db in
  let db2 = Db.create () in
  Workloads.Banking.install db2;
  let sys2 = System.create db2 in
  System.register_action sys2 "count" (fun _ _ -> incr fired);
  Oodb.Persist.of_string db2 text;
  System.rehydrate sys2;
  ignore (Db.send db2 acct "withdraw" [ Value.Float 50. ]);
  ignore (Db.send db2 acct "withdraw" [ Value.Float 5000. ]);
  Alcotest.(check int) "filter survived reload" 2 !fired;
  ignore rule

let suite =
  [
    test "filter matching" test_filter_matches;
    test "detector applies filters" test_detector_applies_filters;
    test "codec roundtrip with filters" test_codec_roundtrip;
    test "parser where clauses" test_parser_where;
    test "parser roundtrip with filters" test_parser_roundtrip;
    test "end-to-end filtered rule" test_end_to_end_rule;
  ]
