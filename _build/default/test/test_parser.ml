open Helpers
module Parser = Events.Parser

let parses s e =
  Alcotest.(check bool)
    (Printf.sprintf "%S" s)
    true
    (Expr.equal (Parser.parse s) e)

let ea = Expr.eom ~cls:"a" "m"
let eb = Expr.bom ~cls:"b" "n"
let ec = Expr.eom "k"

let test_primitives () =
  parses "end a::m" ea;
  parses "begin b::n" eb;
  parses "before b::n" eb;
  parses "after a::m" ea;
  parses "end k" ec;
  parses "END A::M" (Expr.eom ~cls:"A" "M") (* keywords fold, names don't *)

let test_operators () =
  parses "end a::m and begin b::n" (Expr.conj ea eb);
  parses "end a::m or begin b::n" (Expr.disj ea eb);
  parses "end a::m ; begin b::n" (Expr.seq ea eb);
  parses "any(2, end a::m, begin b::n, end k)" (Expr.any 2 [ ea; eb; ec ]);
  parses "not(end a::m, begin b::n, end k)" (Expr.not_between ea eb ec);
  parses "aperiodic(end a::m, begin b::n, end k)" (Expr.aperiodic ea eb ec);
  parses "aperiodic*(end a::m, begin b::n, end k)" (Expr.aperiodic_star ea eb ec);
  parses "periodic(end a::m, 10, end k)" (Expr.periodic ea 10 ec);
  parses "periodic(end a::m, 10/3, end k)" (Expr.periodic ~limit:3 ea 10 ec);
  parses "plus(end a::m, 5)" (Expr.plus ea 5)

let test_precedence () =
  (* and > ; > or *)
  parses "end a::m and begin b::n or end k" (Expr.disj (Expr.conj ea eb) ec);
  parses "end a::m or begin b::n and end k" (Expr.disj ea (Expr.conj eb ec));
  parses "end a::m ; begin b::n and end k" (Expr.seq ea (Expr.conj eb ec));
  parses "end a::m and begin b::n ; end k" (Expr.seq (Expr.conj ea eb) ec);
  parses "end a::m ; begin b::n or end k" (Expr.disj (Expr.seq ea eb) ec);
  (* parentheses override *)
  parses "end a::m and (begin b::n or end k)" (Expr.conj ea (Expr.disj eb ec));
  parses "(end a::m or begin b::n) ; end k" (Expr.seq (Expr.disj ea eb) ec)

let test_paper_expressions () =
  parses "end Employee::Change-Income or end Manager::Change-Income"
    (Expr.disj
       (Expr.eom ~cls:"Employee" "Change-Income")
       (Expr.eom ~cls:"Manager" "Change-Income"));
  parses "end Account::Deposit ; begin Account::Withdraw"
    (Expr.seq
       (Expr.eom ~cls:"Account" "Deposit")
       (Expr.bom ~cls:"Account" "Withdraw"))

let test_errors () =
  let bad s =
    match Parser.parse s with
    | _ -> Alcotest.failf "%S should not parse" s
    | exception (Errors.Parse_error _ | Errors.Type_error _) -> ()
  in
  bad "";
  bad "end";
  bad "wiggle a::m";
  bad "end a::m and";
  bad "end a::m)";
  bad "(end a::m";
  bad "end a::m end b::n";
  bad "any(0)";
  bad "any(5, end a::m)";
  bad "periodic(end a::m, x, end k)";
  bad "end a:::m";
  bad "end a::m trailing"

let test_roundtrip () =
  let cases =
    [
      ea;
      Expr.conj ea (Expr.seq eb ec);
      Expr.disj (Expr.conj ea eb) ec;
      Expr.any 2 [ ea; eb; ec ];
      Expr.not_between ea eb ec;
      Expr.aperiodic_star ea eb ec;
      Expr.periodic ~limit:2 ea 7 ec;
      Expr.plus (Expr.seq ea eb) 3;
    ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Parser.to_syntax e)
        true
        (Expr.equal e (Parser.parse (Parser.to_syntax e))))
    cases

let prop_roundtrip =
  (* reuse the expression generator but strip instance filters, which have
     no concrete syntax *)
  let rec strip (e : Expr.t) : Expr.t =
    match e with
    | Prim p -> Expr.Prim { p with p_sources = Oid.Set.empty }
    | And (a, b) -> And (strip a, strip b)
    | Or (a, b) -> Or (strip a, strip b)
    | Seq (a, b) -> Seq (strip a, strip b)
    | Any (m, es) -> Any (m, List.map strip es)
    | Not (a, b, c) -> Not (strip a, strip b, strip c)
    | Aperiodic (a, b, c) -> Aperiodic (strip a, strip b, strip c)
    | Aperiodic_star (a, b, c) -> Aperiodic_star (strip a, strip b, strip c)
    | Periodic (a, dt, l, b) -> Periodic (strip a, dt, l, strip b)
    | Plus (a, dt) -> Plus (strip a, dt)
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"syntax roundtrip" ~count:200 Test_expr.expr_gen
       (fun e ->
         let e = strip e in
         Expr.equal e (Parser.parse (Parser.to_syntax e))))

let suite =
  [
    test "primitives" test_primitives;
    test "operators" test_operators;
    test "precedence" test_precedence;
    test "paper expressions" test_paper_expressions;
    test "rejects malformed input" test_errors;
    test "roundtrip" test_roundtrip;
    prop_roundtrip;
  ]
