open Helpers
module Query = Oodb.Query
module QP = Oodb.Query_parser

let rec pred_equal a b =
  match (a, b) with
  | Query.True, Query.True -> true
  | Query.Eq (x, v), Query.Eq (y, w)
  | Query.Ne (x, v), Query.Ne (y, w)
  | Query.Lt (x, v), Query.Lt (y, w)
  | Query.Le (x, v), Query.Le (y, w)
  | Query.Gt (x, v), Query.Gt (y, w)
  | Query.Ge (x, v), Query.Ge (y, w) ->
    String.equal x y && Value.equal v w
  | Query.Has x, Query.Has y -> String.equal x y
  | Query.And (p, q), Query.And (r, s) | Query.Or (p, q), Query.Or (r, s) ->
    pred_equal p r && pred_equal q s
  | Query.Not p, Query.Not q -> pred_equal p q
  | _ -> false

let parses s p =
  Alcotest.(check bool) (Printf.sprintf "%S" s) true (pred_equal (QP.parse s) p)

let test_atoms () =
  parses "true" Query.True;
  parses "salary = 100" (Query.Eq ("salary", Value.Int 100));
  parses "salary = 100.5" (Query.Eq ("salary", Value.Float 100.5));
  parses "salary != 1" (Query.Ne ("salary", Value.Int 1));
  parses "salary <> 1" (Query.Ne ("salary", Value.Int 1));
  parses "salary < -3" (Query.Lt ("salary", Value.Int (-3)));
  parses "salary <= 0" (Query.Le ("salary", Value.Int 0));
  parses "salary > 7" (Query.Gt ("salary", Value.Int 7));
  parses "salary >= 7" (Query.Ge ("salary", Value.Int 7));
  parses "name = 'bob'" (Query.Eq ("name", Value.Str "bob"));
  parses "name = \"with space\"" (Query.Eq ("name", Value.Str "with space"));
  parses "active = true" (Query.Eq ("active", Value.Bool true));
  parses "active = FALSE" (Query.Eq ("active", Value.Bool false));
  parses "mgr = null" (Query.Eq ("mgr", Value.Null));
  parses "mgr = @42" (Query.Eq ("mgr", Value.Obj (Oid.of_int 42)));
  parses "has mgr" (Query.Has "mgr")

let test_boolean_structure () =
  parses "a = 1 and b = 2"
    (Query.And (Query.Eq ("a", Value.Int 1), Query.Eq ("b", Value.Int 2)));
  parses "a = 1 or b = 2 and c = 3"
    (Query.Or
       ( Query.Eq ("a", Value.Int 1),
         Query.And (Query.Eq ("b", Value.Int 2), Query.Eq ("c", Value.Int 3)) ));
  parses "(a = 1 or b = 2) and c = 3"
    (Query.And
       ( Query.Or (Query.Eq ("a", Value.Int 1), Query.Eq ("b", Value.Int 2)),
         Query.Eq ("c", Value.Int 3) ));
  parses "not a = 1" (Query.Not (Query.Eq ("a", Value.Int 1)));
  parses "not (a = 1 and b = 2)"
    (Query.Not (Query.And (Query.Eq ("a", Value.Int 1), Query.Eq ("b", Value.Int 2))))

let test_errors () =
  let bad s =
    match QP.parse s with
    | _ -> Alcotest.failf "%S should not parse" s
    | exception Errors.Parse_error _ -> ()
  in
  bad "";
  bad "salary";
  bad "salary =";
  bad "salary = 'unterminated";
  bad "= 3";
  bad "salary = 3 and";
  bad "(salary = 3";
  bad "salary ~ 3";
  bad "salary = 3 trailing = 4";
  bad "mgr = @"

let test_end_to_end () =
  let db = employee_db () in
  let e1 = new_employee db ~name:"ann" ~salary:1000. in
  let _e2 = new_employee db ~name:"bob" ~salary:2000. in
  let m = new_employee db ~cls:"manager" ~name:"mia" ~salary:9000. in
  Db.set db e1 "mgr" (Value.Obj m);
  let q s = Query.select db "employee" (QP.parse s) in
  Alcotest.(check (list oid)) "comparison" [ e1 ] (q "salary < 1500.0");
  Alcotest.(check (list oid)) "string and ref" [ e1 ] (q "name = 'ann' and mgr = @3");
  Alcotest.(check int) "or" 2 (List.length (q "name = 'bob' or name = 'mia'"));
  Alcotest.(check int) "not" 2 (List.length (q "not (name = 'ann')"))

let test_roundtrip () =
  let cases =
    [
      Query.True;
      Query.Eq ("a", Value.Str "x y");
      Query.And (Query.Ge ("s", Value.Float 1.5), Query.Lt ("s", Value.Int 9));
      Query.Or (Query.Has "mgr", Query.Not (Query.Eq ("b", Value.Bool true)));
      Query.Eq ("mgr", Value.Obj (Oid.of_int 12));
      Query.Ne ("x", Value.Null);
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (QP.to_syntax p)
        true
        (pred_equal p (QP.parse (QP.to_syntax p))))
    cases

let suite =
  [
    test "atoms" test_atoms;
    test "boolean structure" test_boolean_structure;
    test "rejects malformed input" test_errors;
    test "end to end with select" test_end_to_end;
    test "roundtrip" test_roundtrip;
  ]
