open Helpers
module Coupling = Sentinel.Coupling
module Rule = Sentinel.Rule
module Persist = Oodb.Persist

(* Build a store with a rule and an event object, persist it, reload into a
   fresh database+system, rehydrate, and return the pieces. *)
let saved_world () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let e = new_employee db ~name:"ann" ~salary:10. in
  let event_obj =
    System.create_event sys ~name:"salary-change"
      (Expr.eom ~cls:"employee" "set_salary")
  in
  let rule =
    System.create_rule_on sys ~name:"persisted-rule" ~priority:7
      ~coupling:Coupling.Deferred ~context:Events.Context.Chronicle
      ~monitor:[ e ] ~event_obj ~condition:"true" ~action:"noop" ()
  in
  (* accumulate some history so the fired counter persists non-zero *)
  ignore (Db.send db e "set_salary" [ Value.Float 20. ]);
  (Persist.to_string db, e, event_obj, rule)

let reload text =
  let db = Db.create () in
  Workloads.Payroll.install db;
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  Persist.of_string db text;
  System.rehydrate sys;
  (db, sys)

let test_rule_object_persists () =
  let text, _e, event_obj, rule = saved_world () in
  let db, sys = reload text in
  Alcotest.(check (list oid)) "rule restored" [ rule ] (System.rules sys);
  let info = System.rule_info sys rule in
  Alcotest.(check string) "name" "persisted-rule" info.Rule.name;
  Alcotest.(check int) "priority" 7 info.Rule.priority;
  Alcotest.(check bool) "coupling" true (info.Rule.coupling = Coupling.Deferred);
  Alcotest.(check bool) "context" true
    (Rule.context info = Events.Context.Chronicle);
  Alcotest.(check int) "fired counter restored" 1 info.Rule.fired;
  (* the event object survived and the rule's reference points at it *)
  Alcotest.check value "event_ref" (Value.Obj event_obj)
    (Db.get db rule "event_ref");
  Alcotest.(check bool) "event object expr" true
    (Expr.equal
       (System.event_expr sys event_obj)
       (Expr.eom ~cls:"employee" "set_salary"))

let test_rule_fires_after_reload () =
  let text, e, _event_obj, rule = saved_world () in
  let db, sys = reload text in
  (* subscriptions were persisted with the objects; just send *)
  ignore (Db.send db e "set_salary" [ Value.Float 30. ]);
  Alcotest.(check int) "fires on reloaded store" 2
    (System.rule_info sys rule).Rule.fired

let test_disabled_state_persists () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let e = new_employee db in
  let rule =
    System.create_rule sys ~name:"r" ~monitor:[ e ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"true" ~action:"noop" ()
  in
  System.disable sys rule;
  let db2, sys2 = reload (Persist.to_string db) in
  Alcotest.(check bool) "still disabled" false
    (System.rule_info sys2 rule).Rule.enabled;
  ignore (Db.send db2 e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "does not fire" 0 (System.rule_info sys2 rule).Rule.fired;
  System.enable sys2 rule;
  ignore (Db.send db2 e "set_salary" [ Value.Float 2. ]);
  Alcotest.(check int) "fires after enable" 1
    (System.rule_info sys2 rule).Rule.fired

let test_rehydrate_missing_function_fails () =
  let text, _, _, _ = saved_world () in
  let db = Db.create () in
  Workloads.Payroll.install db;
  let sys = System.create db in
  (* "noop" deliberately not registered *)
  Persist.of_string db text;
  check_raises_any "unregistered action" (fun () -> System.rehydrate sys)

let test_rehydrate_idempotent () =
  let text, _, _, rule = saved_world () in
  let _db, sys = reload text in
  System.rehydrate sys; (* second call must not duplicate runtimes *)
  Alcotest.(check (list oid)) "single runtime" [ rule ] (System.rules sys)

let test_class_level_rule_survives () =
  let db = employee_db () in
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let rule =
    System.create_rule sys ~name:"class-rule" ~monitor_classes:[ "employee" ]
      ~event:(Expr.eom ~cls:"employee" "set_salary")
      ~condition:"true" ~action:"noop" ()
  in
  let e = new_employee db in
  let db2, sys2 = reload (Persist.to_string db) in
  ignore (Db.send db2 e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "class subscription survived" 1
    (System.rule_info sys2 rule).Rule.fired

let suite =
  [
    test "rule object persists with attributes" test_rule_object_persists;
    test "rule fires after reload" test_rule_fires_after_reload;
    test "disabled state persists" test_disabled_state_persists;
    test "missing function fails rehydration" test_rehydrate_missing_function_fails;
    test "rehydrate is idempotent" test_rehydrate_idempotent;
    test "class-level rule survives" test_class_level_rule_survives;
  ]
