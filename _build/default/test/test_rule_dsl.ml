open Helpers
module Rule_dsl = Sentinel.Rule_dsl
module Rule = Sentinel.Rule
module Coupling = Sentinel.Coupling

let fixture () =
  let db = employee_db () in
  let sys = System.create db in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  System.register_condition sys "never" (fun _ _ -> false);
  (db, sys, fired)

let test_basic_block () =
  let db, sys, fired = fixture () in
  let e = new_employee db in
  let text =
    Printf.sprintf
      {|# watch one employee
        rule watcher
        on end employee::set_salary
        then count
        monitor object %d
        end|}
      (Oid.to_int e)
  in
  (match Rule_dsl.load_string sys text with
  | [ r ] ->
    Alcotest.(check string) "name" "watcher" (System.rule_info sys r).Rule.name
  | _ -> Alcotest.fail "expected one rule");
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "fires" 1 !fired

let test_all_directives () =
  let _db, sys, _ = fixture () in
  let text =
    {|rule fancy
      on (end employee::set_salary and end manager::set_salary) or end employee::change_income
      if never
      then count
      mode deferred
      context chronicle
      priority 9
      disabled
      monitor class employee
      end|}
  in
  match Rule_dsl.load_string sys text with
  | [ r ] ->
    let info = System.rule_info sys r in
    Alcotest.(check bool) "coupling" true (info.Rule.coupling = Coupling.Deferred);
    Alcotest.(check bool) "context" true
      (Rule.context info = Events.Context.Chronicle);
    Alcotest.(check int) "priority" 9 info.Rule.priority;
    Alcotest.(check bool) "disabled" false info.Rule.enabled;
    Alcotest.(check string) "condition" "never" info.Rule.condition_name;
    Alcotest.(check bool) "class subscription" true
      (List.exists (Oid.equal r) (Db.class_consumers_of (System.db sys) "employee"))
  | _ -> Alcotest.fail "expected one rule"

let test_multiple_blocks () =
  let _db, sys, _ = fixture () in
  let text =
    {|rule one
      on end employee::set_salary
      then count
      end

      rule two
      on begin employee::get_age
      then count
      end|}
  in
  Alcotest.(check int) "two rules" 2 (List.length (Rule_dsl.load_string sys text));
  Alcotest.(check bool) "both findable" true
    (System.find_rule sys "one" <> None && System.find_rule sys "two" <> None)

let test_errors_and_atomicity () =
  let _db, sys, _ = fixture () in
  let bad text expect =
    match Rule_dsl.load_string sys text with
    | _ -> Alcotest.failf "%s: should fail" expect
    | exception (Errors.Parse_error _ | Errors.Type_error _) -> ()
  in
  bad "on end a::m" "directive outside block";
  bad "rule x\nthen count\nend" "missing on";
  bad "rule x\non end employee::set_salary\nend" "missing then";
  bad "rule x\non end employee::set_salary\nthen count" "missing end";
  bad "rule x\non bogus syntax here\nthen count\nend" "bad event";
  bad "rule x\non end employee::set_salary\nthen no-such-action\nend"
    "unknown action";
  bad "rule x\non end employee::set_salary\nthen count\nmode sometimes\nend"
    "bad mode";
  bad "rule x\non end employee::set_salary\nthen count\nmonitor robot y\nend"
    "bad monitor kind";
  (* atomicity: a file with one good and one bad block creates nothing *)
  let mixed =
    {|rule good
      on end employee::set_salary
      then count
      end
      rule bad
      on end employee::set_salary
      then missing-action
      end|}
  in
  (match Rule_dsl.load_string sys mixed with
  | _ -> Alcotest.fail "mixed file should fail"
  | exception _ -> ());
  Alcotest.(check (list oid)) "nothing created" [] (System.rules sys)

let test_render_roundtrip () =
  let db, sys, _ = fixture () in
  let e = new_employee db in
  let text =
    Printf.sprintf
      {|rule roundtrip
        on end employee::set_salary ; begin employee::get_age
        if never
        then count
        mode detached
        context cumulative
        priority 4
        monitor class manager
        monitor object %d
        end|}
      (Oid.to_int e)
  in
  let r =
    match Rule_dsl.load_string sys text with [ r ] -> r | _ -> assert false
  in
  let rendered = Rule_dsl.render sys r in
  (* rendering parses back into an equivalent rule *)
  let sys2 = System.create (let db2 = employee_db () in db2) in
  System.register_action sys2 "count" (fun _ _ -> ());
  System.register_condition sys2 "never" (fun _ _ -> false);
  (* monitor object lines reference OIDs of the original store; strip them *)
  let stripped =
    String.split_on_char '\n' rendered
    |> List.filter (fun l ->
           not (String.length (String.trim l) > 14
                && String.sub (String.trim l) 0 14 = "monitor object"))
    |> String.concat "\n"
  in
  match Rule_dsl.load_string sys2 stripped with
  | [ r2 ] ->
    let i1 = System.rule_info sys r and i2 = System.rule_info sys2 r2 in
    Alcotest.(check bool) "event" true (Expr.equal i1.Rule.event i2.Rule.event);
    Alcotest.(check bool) "coupling" true (i1.Rule.coupling = i2.Rule.coupling);
    Alcotest.(check int) "priority" i1.Rule.priority i2.Rule.priority
  | _ -> Alcotest.fail "render did not parse back"

let test_load_file () =
  let db, sys, fired = fixture () in
  let e = new_employee db in
  let path = Filename.temp_file "sentinel_rules" ".rules" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Printf.fprintf oc
            "rule from-file\non end employee::set_salary\nthen count\nmonitor \
             object %d\nend\n"
            (Oid.to_int e));
      ignore (Rule_dsl.load_file sys path);
      ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
      Alcotest.(check int) "fires" 1 !fired)

let suite =
  [
    test "basic block" test_basic_block;
    test "all directives" test_all_directives;
    test "multiple blocks" test_multiple_blocks;
    test "errors and atomicity" test_errors_and_atomicity;
    test "render roundtrip" test_render_roundtrip;
    test "load from file" test_load_file;
  ]
