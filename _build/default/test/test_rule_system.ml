open Helpers
module Coupling = Sentinel.Coupling
module Rule = Sentinel.Rule
module Scheduler = Sentinel.Scheduler

(* A system over the payroll schema with a counting action registered. *)
let fixture () =
  let db = employee_db () in
  let sys = System.create db in
  let fired = ref [] in
  System.register_action sys "trace" (fun _db inst ->
      fired := inst :: !fired);
  (db, sys, fun () -> List.length !fired)

let set_salary db e v = ignore (Db.send db e "set_salary" [ Value.Float v ])

let watch_rule ?name ?coupling ?priority ?monitor ?monitor_classes sys =
  System.create_rule sys ?name ?coupling ?priority ?monitor ?monitor_classes
    ~event:(Expr.eom ~cls:"employee" "set_salary")
    ~condition:"true" ~action:"trace" ()

(* --- lifecycle ------------------------------------------------------------ *)

let test_rule_is_first_class_object () =
  let db, sys, _ = fixture () in
  let r = watch_rule sys ~name:"watcher" in
  Alcotest.(check bool) "stored object" true (Db.exists db r);
  Alcotest.(check string) "of rule class" "__rule" (Db.class_of db r);
  Alcotest.check value "name attr" (Value.Str "watcher") (Db.get db r "name");
  Alcotest.(check bool) "notifiable by inheritance" true
    (Db.is_instance_of db r "__notifiable");
  Alcotest.(check (list oid)) "listed" [ r ] (System.rules sys);
  Alcotest.(check (option oid)) "findable" (Some r) (System.find_rule sys "watcher");
  (* event expression is stored, decodable *)
  let stored = Events.Codec.decode (Value.to_str (Db.get db r "event")) in
  Alcotest.(check bool) "event attr decodes" true
    (Expr.equal stored (Expr.eom ~cls:"employee" "set_salary"))

let test_unknown_condition_action_rejected () =
  let _db, sys, _ = fixture () in
  check_raises_any "unknown condition" (fun () ->
      ignore
        (System.create_rule sys ~event:(Expr.eom "m") ~condition:"nope"
           ~action:"trace" ()));
  check_raises_any "unknown action" (fun () ->
      ignore
        (System.create_rule sys ~event:(Expr.eom "m") ~condition:"true"
           ~action:"nope" ()));
  Alcotest.(check int) "no half-created rules" 0 (List.length (System.rules sys))

let test_instance_level_rule () =
  let db, sys, fired = fixture () in
  let e1 = new_employee db and e2 = new_employee db in
  ignore (watch_rule sys ~monitor:[ e1 ]);
  set_salary db e1 10.;
  set_salary db e2 20.;
  Alcotest.(check int) "only monitored instance triggers" 1 (fired ())

let test_class_level_rule () =
  let db, sys, fired = fixture () in
  let e = new_employee db in
  let m = new_employee db ~cls:"manager" in
  ignore (watch_rule sys ~monitor_classes:[ "employee" ]);
  set_salary db e 1.;
  set_salary db m 2.; (* subclass instances are covered *)
  (* objects created after the rule are covered too *)
  set_salary db (new_employee db) 3.;
  Alcotest.(check int) "all instances" 3 (fired ())

let test_enable_disable () =
  let db, sys, fired = fixture () in
  let e = new_employee db in
  let r = watch_rule sys ~monitor:[ e ] in
  set_salary db e 1.;
  System.disable sys r;
  Alcotest.check value "enabled attr synced" (Value.Bool false)
    (Db.get db r "enabled");
  set_salary db e 2.;
  System.enable sys r;
  set_salary db e 3.;
  Alcotest.(check int) "disabled period silent" 2 (fired ())

let test_delete_rule () =
  let db, sys, fired = fixture () in
  let e = new_employee db in
  let r = watch_rule sys ~monitor:[ e ] in
  System.delete_rule sys r;
  Alcotest.(check bool) "object gone" false (Db.exists db r);
  Alcotest.(check int) "no runtimes" 0 (List.length (System.rules sys));
  (* the stale subscription on e is ignored at delivery time *)
  set_salary db e 1.;
  Alcotest.(check int) "stale subscription harmless" 0 (fired ())

let test_subscribe_api () =
  let db, sys, fired = fixture () in
  let e = new_employee db in
  let r = watch_rule sys in
  set_salary db e 1.;
  Alcotest.(check int) "not subscribed yet" 0 (fired ());
  System.subscribe sys ~rule:r ~to_:e;
  set_salary db e 2.;
  System.unsubscribe sys ~rule:r ~from:e;
  set_salary db e 3.;
  System.subscribe_class sys ~rule:r ~cls:"employee";
  set_salary db e 4.;
  System.unsubscribe_class sys ~rule:r ~cls:"employee";
  set_salary db e 5.;
  Alcotest.(check int) "two subscribed periods" 2 (fired ())

(* --- conditions see event parameters ---------------------------------------- *)

let test_condition_sees_parameters () =
  let db = employee_db () in
  let sys = System.create db in
  let seen = ref [] in
  System.register_condition sys "param>100" (fun _db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] -> Value.to_float (List.hd occ.params) > 100.
      | _ -> false);
  System.register_action sys "record-param" (fun _db inst ->
      match inst.Events.Detector.constituents with
      | [ occ ] -> seen := List.hd occ.params :: !seen
      | _ -> ());
  let e = new_employee db in
  ignore
    (System.create_rule sys ~monitor:[ e ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"param>100" ~action:"record-param" ());
  set_salary db e 50.;
  set_salary db e 150.;
  Alcotest.(check (list value)) "only the matching parameter" [ Value.Float 150. ]
    !seen

(* --- coupling modes ----------------------------------------------------------- *)

let test_immediate_runs_inline () =
  let db = employee_db () in
  let sys = System.create db in
  let during = ref None in
  System.register_action sys "probe" (fun db _ ->
      during := Some (Transaction.depth db));
  let e = new_employee db in
  ignore
    (System.create_rule sys ~monitor:[ e ] ~coupling:Coupling.Immediate
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"probe" ());
  Transaction.begin_ db;
  set_salary db e 1.;
  Alcotest.(check (option int)) "ran inside txn" (Some 1) !during;
  Transaction.abort db

let test_deferred_runs_at_commit () =
  let db = employee_db () in
  let sys = System.create db in
  let ran = ref false in
  System.register_action sys "mark" (fun _ _ -> ran := true);
  let e = new_employee db in
  ignore
    (System.create_rule sys ~monitor:[ e ] ~coupling:Coupling.Deferred
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"mark" ());
  Transaction.begin_ db;
  set_salary db e 1.;
  Alcotest.(check bool) "not yet" false !ran;
  Transaction.commit db;
  Alcotest.(check bool) "at commit" true !ran

let test_deferred_condition_sees_final_state () =
  let db = employee_db () in
  let sys = System.create db in
  let observed = ref None in
  let e = new_employee db in
  System.register_action sys "observe" (fun db _ ->
      observed := Some (Db.get db e "salary"));
  ignore
    (System.create_rule sys ~monitor:[ e ] ~coupling:Coupling.Deferred
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"observe" ());
  Transaction.begin_ db;
  set_salary db e 1.;
  set_salary db e 99.; (* queued twice; both run at commit seeing 99 *)
  Transaction.commit db;
  Alcotest.(check (option value)) "final state" (Some (Value.Float 99.)) !observed

let test_deferred_dies_with_abort () =
  let db = employee_db () in
  let sys = System.create db in
  let ran = ref 0 in
  System.register_action sys "mark" (fun _ _ -> incr ran);
  let e = new_employee db in
  ignore
    (System.create_rule sys ~monitor:[ e ] ~coupling:Coupling.Deferred
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"mark" ());
  Transaction.begin_ db;
  set_salary db e 1.;
  Transaction.abort db;
  (* a later transaction must not replay the dead firing *)
  Transaction.begin_ db;
  Transaction.commit db;
  Alcotest.(check int) "never ran" 0 !ran;
  (* outside any transaction, deferred degenerates to immediate *)
  set_salary db e 2.;
  Alcotest.(check int) "autocommit runs immediately" 1 !ran

let test_rule_abort_rolls_back () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db ~salary:10. in
  ignore
    (System.create_rule sys ~monitor:[ e ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"abort" ());
  (match
     Transaction.atomically db (fun () -> set_salary db e 999.)
   with
  | Ok () -> Alcotest.fail "expected abort"
  | Error (Errors.Rule_abort _) -> ()
  | Error e -> raise e);
  Alcotest.check value "rolled back" (Value.Float 10.) (Db.get db e "salary")

let test_detached_runs_after_commit_in_own_txn () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db ~salary:0. in
  System.register_action sys "bump-after" (fun db _ ->
      (* runs in its own transaction, after the trigger committed *)
      Alcotest.(check int) "own txn" 1 (Transaction.depth db);
      let v = Value.to_float (Db.get db e "salary") in
      Db.set db e "salary" (Value.Float (v +. 1.)));
  ignore
    (System.create_rule sys ~monitor:[ e ] ~coupling:Coupling.Detached
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"bump-after" ());
  Transaction.begin_ db;
  set_salary db e 10.;
  Alcotest.check value "not yet" (Value.Float 10.) (Db.get db e "salary");
  Transaction.commit db;
  Alcotest.check value "ran after commit" (Value.Float 11.) (Db.get db e "salary")

let test_detached_failure_is_isolated () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db ~salary:0. in
  System.register_action sys "explode" (fun _ _ -> failwith "boom");
  ignore
    (System.create_rule sys ~name:"bomb" ~monitor:[ e ] ~coupling:Coupling.Detached
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"explode" ());
  (match Transaction.atomically db (fun () -> set_salary db e 5.) with
  | Ok () -> ()
  | Error e -> raise e);
  Alcotest.check value "trigger committed" (Value.Float 5.) (Db.get db e "salary");
  match System.detached_failures sys with
  | [ (name, Failure _) ] -> Alcotest.(check string) "recorded" "bomb" name
  | _ -> Alcotest.fail "failure not recorded"

let test_detached_dies_with_abort () =
  let db = employee_db () in
  let sys = System.create db in
  let ran = ref false in
  System.register_action sys "mark" (fun _ _ -> ran := true);
  let e = new_employee db in
  ignore
    (System.create_rule sys ~monitor:[ e ] ~coupling:Coupling.Detached
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"mark" ());
  Transaction.begin_ db;
  set_salary db e 1.;
  Transaction.abort db;
  Alcotest.(check bool) "discarded" false !ran

(* --- priorities and strategies -------------------------------------------------- *)

let ordering_fixture strategy =
  let db = employee_db () in
  let sys = System.create ~strategy db in
  let order = ref [] in
  List.iter
    (fun tag ->
      System.register_action sys tag (fun _ _ -> order := tag :: !order))
    [ "low"; "mid"; "high" ];
  let e = new_employee db in
  let rule tag priority =
    ignore
      (System.create_rule sys ~name:tag ~priority ~coupling:Coupling.Deferred
         ~monitor:[ e ]
         ~event:(Expr.eom ~cls:"employee" "set_salary")
         ~condition:"true" ~action:tag ())
  in
  rule "low" 1;
  rule "mid" 5;
  rule "high" 9;
  Transaction.begin_ db;
  set_salary db e 1.;
  Transaction.commit db;
  List.rev !order

let test_priority_ordering () =
  Alcotest.(check (list string))
    "priority-fifo" [ "high"; "mid"; "low" ]
    (ordering_fixture Scheduler.Priority_fifo);
  Alcotest.(check (list string))
    "fifo keeps detection order" [ "low"; "mid"; "high" ]
    (ordering_fixture Scheduler.Fifo);
  Alcotest.(check (list string))
    "lifo reverses" [ "high"; "mid"; "low" ]
    (ordering_fixture Scheduler.Lifo)

let test_scheduler_order_function () =
  let entries = [ (1, 1, "a"); (9, 2, "b"); (9, 3, "c"); (5, 4, "d") ] in
  Alcotest.(check (list string)) "priority-fifo" [ "b"; "c"; "d"; "a" ]
    (Scheduler.order Scheduler.Priority_fifo entries);
  Alcotest.(check (list string)) "priority-lifo" [ "c"; "b"; "d"; "a" ]
    (Scheduler.order Scheduler.Priority_lifo entries);
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c"; "d" ]
    (Scheduler.order Scheduler.Fifo entries);
  Alcotest.(check (list string)) "lifo" [ "d"; "c"; "b"; "a" ]
    (Scheduler.order Scheduler.Lifo entries)

(* --- cascading -------------------------------------------------------------------- *)

let test_cascading_rules () =
  let db = employee_db () in
  let sys = System.create db in
  let e = new_employee db ~salary:0. in
  (* the action sends another message, triggering a second rule *)
  System.register_action sys "bump-income" (fun db _ ->
      ignore (Db.send db e "change_income" [ Value.Float 7. ]));
  let counted = ref 0 in
  System.register_action sys "count-income" (fun _ _ -> incr counted);
  ignore
    (System.create_rule sys ~monitor:[ e ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"bump-income" ());
  ignore
    (System.create_rule sys ~monitor:[ e ]
       ~event:(Expr.eom ~cls:"employee" "change_income")
       ~condition:"true" ~action:"count-income" ());
  set_salary db e 1.;
  Alcotest.(check int) "cascade reached second rule" 1 !counted

let test_cascade_limit () =
  let db = employee_db () in
  let sys = System.create ~cascade_limit:8 db in
  let e = new_employee db in
  (* self-triggering rule: set_salary action sends set_salary *)
  System.register_action sys "recurse" (fun db _ ->
      ignore (Db.send db e "set_salary" [ Value.Float 1. ]));
  ignore
    (System.create_rule sys ~monitor:[ e ]
       ~event:(Expr.eom ~cls:"employee" "set_salary")
       ~condition:"true" ~action:"recurse" ());
  match set_salary db e 0. with
  | () -> Alcotest.fail "expected cascade abort"
  | exception Errors.Rule_abort msg ->
    Alcotest.(check bool) "mentions cascade" true
      (contains_substring ~sub:"cascade" msg)

(* --- rules on rules ------------------------------------------------------------------ *)

let test_rules_on_rules () =
  let db, sys, fired = fixture () in
  let e = new_employee db in
  let worker = watch_rule sys ~name:"worker" ~monitor:[ e ] in
  (* a meta-rule that watches the worker rule's own disable events *)
  let disables = ref 0 in
  System.register_action sys "count-disable" (fun _ _ -> incr disables);
  ignore
    (System.create_rule sys ~name:"meta" ~monitor:[ worker ]
       ~event:(Expr.eom ~cls:"__rule" "disable")
       ~condition:"true" ~action:"count-disable" ());
  System.disable sys worker;
  System.enable sys worker;
  System.disable sys worker;
  Alcotest.(check int) "meta-rule saw both disables" 2 !disables;
  ignore (fired ())

(* --- statistics ------------------------------------------------------------------------ *)

let test_stats_and_counters () =
  let db, sys, _ = fixture () in
  let e = new_employee db in
  let r = watch_rule sys ~monitor:[ e ] in
  set_salary db e 1.;
  set_salary db e 2.;
  let info = System.rule_info sys r in
  Alcotest.(check int) "triggered" 2 info.Rule.triggered;
  Alcotest.(check int) "fired" 2 info.Rule.fired;
  Alcotest.check value "persistent fired counter" (Value.Int 2)
    (Db.get db r "fired");
  let s = System.stats sys in
  Alcotest.(check int) "conditions" 2 s.conditions_checked;
  Alcotest.(check int) "actions" 2 s.actions_executed;
  Alcotest.(check bool) "dispatched" true (s.dispatched >= 2);
  (* recorder holds the delivered occurrences *)
  Alcotest.(check int) "recorder" 2
    (List.length (Sentinel.Notifiable.all info.Rule.recorder));
  System.reset_stats sys;
  Alcotest.(check int) "reset" 0 (System.stats sys).dispatched

let suite =
  [
    test "rule is a first-class object" test_rule_is_first_class_object;
    test "unknown condition/action rejected" test_unknown_condition_action_rejected;
    test "instance-level rule" test_instance_level_rule;
    test "class-level rule" test_class_level_rule;
    test "enable/disable" test_enable_disable;
    test "delete rule" test_delete_rule;
    test "subscribe API" test_subscribe_api;
    test "condition sees event parameters" test_condition_sees_parameters;
    test "immediate runs inline" test_immediate_runs_inline;
    test "deferred runs at commit" test_deferred_runs_at_commit;
    test "deferred sees final state" test_deferred_condition_sees_final_state;
    test "deferred dies with abort" test_deferred_dies_with_abort;
    test "rule abort rolls back" test_rule_abort_rolls_back;
    test "detached runs after commit" test_detached_runs_after_commit_in_own_txn;
    test "detached failure isolated" test_detached_failure_is_isolated;
    test "detached dies with abort" test_detached_dies_with_abort;
    test "priority ordering" test_priority_ordering;
    test "scheduler order function" test_scheduler_order_function;
    test "cascading rules" test_cascading_rules;
    test "cascade limit" test_cascade_limit;
    test "rules on rules" test_rules_on_rules;
    test "statistics and counters" test_stats_and_counters;
  ]
