open Helpers

let base_db () =
  let db = Db.create () in
  Db.define_class db
    (Schema.define "person"
       ~attrs:[ ("name", Value.Str ""); ("age", Value.Int 0) ]
       ~methods:
         [ ("get_name", Workloads.Dsl.getter "name"); ("set_age", Workloads.Dsl.setter "age") ]
       ~events:[ ("set_age", Schema.On_end) ]);
  Db.define_class db
    (Schema.define "student" ~super:"person"
       ~attrs:[ ("school", Value.Str ""); ("age", Value.Int 18) ]
       ~methods:[ ("get_school", Workloads.Dsl.getter "school") ]);
  Db.define_class db (Schema.define "grad_student" ~super:"student");
  db

let test_define_and_find () =
  let db = base_db () in
  Alcotest.(check bool) "has person" true (Db.has_class db "person");
  Alcotest.(check bool) "has student" true (Db.has_class db "student");
  Alcotest.(check bool) "no teacher" false (Db.has_class db "teacher");
  Alcotest.(check (list string))
    "ancestry" [ "grad_student"; "student"; "person" ]
    (Schema.ancestry db "grad_student")

let test_duplicate_class () =
  let db = base_db () in
  Alcotest.check_raises "duplicate" (Errors.Duplicate_class "person") (fun () ->
      Db.define_class db (Schema.define "person"))

let test_missing_super () =
  let db = base_db () in
  Alcotest.check_raises "missing super" (Errors.No_such_class "ghost") (fun () ->
      Db.define_class db (Schema.define "orphan" ~super:"ghost"))

let test_event_interface_checks () =
  let db = base_db () in
  (* event interface naming an unresolvable method is rejected *)
  Alcotest.check_raises "unknown event method"
    (Errors.No_such_method ("broken", "no_such"))
    (fun () ->
      Db.define_class db
        (Schema.define "broken" ~events:[ ("no_such", Schema.On_end) ]));
  (* ... and the failed class is not half-registered *)
  Alcotest.(check bool) "rolled back" false (Db.has_class db "broken");
  (* an inherited method may appear in a subclass's event interface *)
  Db.define_class db
    (Schema.define "monitored_student" ~super:"student"
       ~events:[ ("get_name", Schema.On_both) ]);
  Alcotest.(check bool) "registered" true (Db.has_class db "monitored_student")

let test_reactive_inference () =
  let db = base_db () in
  (* events imply reactive by default *)
  Alcotest.(check bool) "person reactive" true (Schema.is_reactive db "person");
  (* subclasses inherit reactivity *)
  Alcotest.(check bool) "student reactive" true (Schema.is_reactive db "student");
  Db.define_class db (Schema.define "rock");
  Alcotest.(check bool) "rock passive" false (Schema.is_reactive db "rock");
  (* explicitly passive + events is a contradiction *)
  check_raises_any "passive with events" (fun () ->
      Db.define_class db
        (Schema.define "contradiction" ~reactive:false
           ~methods:[ ("m", fun _ _ _ -> Value.Null) ]
           ~events:[ ("m", Schema.On_end) ]))

let test_method_resolution () =
  let db = base_db () in
  let m = Schema.lookup_method db "grad_student" "get_name" in
  Alcotest.(check string) "inherited method" "get_name" m.Oodb.Types.mname;
  Alcotest.check_raises "unknown method"
    (Errors.No_such_method ("grad_student", "fly"))
    (fun () -> ignore (Schema.lookup_method db "grad_student" "fly"));
  Alcotest.(check bool) "methods_of includes both" true
    (let ms = Schema.methods_of db "student" in
     List.mem "get_name" ms && List.mem "get_school" ms)

let test_interface_resolution () =
  let db = base_db () in
  (match Schema.lookup_interface db "grad_student" "set_age" with
  | Some e ->
    Alcotest.(check bool) "eom" true e.Oodb.Types.on_end;
    Alcotest.(check bool) "not bom" false e.Oodb.Types.on_begin
  | None -> Alcotest.fail "interface entry not inherited");
  Alcotest.(check bool) "get_name not an event" true
    (Schema.lookup_interface db "person" "get_name" = None)

let test_attr_merging () =
  let db = base_db () in
  let attrs = Schema.all_attrs db "grad_student" in
  (* subclass default for age overrides person's *)
  Alcotest.check value "age overridden" (Value.Int 18) (List.assoc "age" attrs);
  Alcotest.(check bool) "has school" true (List.mem_assoc "school" attrs);
  Alcotest.(check bool) "has name" true (List.mem_assoc "name" attrs)

let test_subclass_relation () =
  let db = base_db () in
  Alcotest.(check bool) "reflexive" true
    (Schema.is_subclass db ~sub:"person" ~super:"person");
  Alcotest.(check bool) "deep" true
    (Schema.is_subclass db ~sub:"grad_student" ~super:"person");
  Alcotest.(check bool) "not inverse" false
    (Schema.is_subclass db ~sub:"person" ~super:"student")

let test_all_events () =
  let db = base_db () in
  Db.define_class db
    (Schema.define "chatty" ~all_events:true
       ~methods:
         [
           ("m1", fun _ _ _ -> Value.Null);
           ("m2", fun _ _ _ -> Value.Null);
         ]
       (* explicit entry overrides the blanket both-events default *)
       ~events:[ ("m2", Schema.On_end) ]);
  Alcotest.(check bool) "reactive inferred" true (Schema.is_reactive db "chatty");
  let o = Db.new_object db "chatty" in
  Db.reset_stats db;
  ignore (Db.send db o "m1" []); (* bom + eom *)
  ignore (Db.send db o "m2" []); (* eom only, overridden *)
  Alcotest.(check int) "event counts" 3 (Db.stats db).events_generated

let test_duplicate_members_rejected () =
  check_raises_any "duplicate method" (fun () ->
      Schema.define "bad"
        ~methods:[ ("m", fun _ _ _ -> Value.Null); ("m", fun _ _ _ -> Value.Null) ]);
  check_raises_any "duplicate event" (fun () ->
      Schema.define "bad2"
        ~methods:[ ("m", fun _ _ _ -> Value.Null) ]
        ~events:[ ("m", Schema.On_end); ("m", Schema.On_begin) ])

let suite =
  [
    test "define and find" test_define_and_find;
    test "duplicate class rejected" test_duplicate_class;
    test "missing superclass rejected" test_missing_super;
    test "event interface validation" test_event_interface_checks;
    test "reactive inference" test_reactive_inference;
    test "method resolution" test_method_resolution;
    test "interface resolution" test_interface_resolution;
    test "attribute merging" test_attr_merging;
    test "subclass relation" test_subclass_relation;
    test "all_events (footnote 7)" test_all_events;
    test "duplicate members rejected" test_duplicate_members_rejected;
  ]
