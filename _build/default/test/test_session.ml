open Helpers
module Session = Oodb.Session

let fixture () =
  let db = employee_db () in
  let m = Session.manager db in
  let alice = Session.session ~name:"alice" m in
  let bob = Session.session ~name:"bob" m in
  let e = new_employee db ~salary:100. in
  (db, m, alice, bob, e)

let expect_conflict label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Lock_conflict" label
  | exception Errors.Lock_conflict _ -> ()

let test_basic_commit () =
  let db, _m, alice, _bob, e = fixture () in
  Session.begin_ alice;
  Alcotest.check value "read" (Value.Float 100.) (Session.get alice e "salary");
  Session.set alice e "salary" (Value.Float 200.);
  Session.commit alice;
  Alcotest.check value "committed" (Value.Float 200.) (Db.get db e "salary");
  Alcotest.(check bool) "inactive" false (Session.active alice);
  Alcotest.(check int) "locks released" 0 (List.length (Session.locks_held alice))

let test_abort_undoes_in_reverse () =
  let db, _m, alice, _bob, e = fixture () in
  let e2 = new_employee db ~salary:5. in
  Session.begin_ alice;
  Session.set alice e "salary" (Value.Float 1.);
  Session.set alice e2 "salary" (Value.Float 2.);
  Session.set alice e "salary" (Value.Float 3.);
  Session.abort alice;
  Alcotest.check value "first restored" (Value.Float 100.) (Db.get db e "salary");
  Alcotest.check value "second restored" (Value.Float 5.) (Db.get db e2 "salary")

let test_shared_readers_coexist () =
  let _db, _m, alice, bob, e = fixture () in
  Session.begin_ alice;
  Session.begin_ bob;
  ignore (Session.get alice e "salary");
  ignore (Session.get bob e "salary"); (* no conflict *)
  Alcotest.(check (list (pair oid (Alcotest.testable (fun ppf -> function
    | `Shared -> Format.pp_print_string ppf "S"
    | `Exclusive -> Format.pp_print_string ppf "X") ( = )))))
    "alice holds S" [ (e, `Shared) ] (Session.locks_held alice);
  Session.commit alice;
  Session.commit bob

let test_write_conflicts () =
  let _db, m, alice, bob, e = fixture () in
  Session.begin_ alice;
  Session.begin_ bob;
  Session.set alice e "salary" (Value.Float 1.);
  (* bob cannot read or write it *)
  expect_conflict "read vs X" (fun () -> Session.get bob e "salary");
  expect_conflict "write vs X" (fun () -> Session.set bob e "salary" (Value.Float 2.));
  Alcotest.(check int) "conflicts counted" 2 (Session.conflicts m);
  (* after alice commits, bob proceeds *)
  Session.commit alice;
  Session.set bob e "salary" (Value.Float 3.);
  Session.commit bob

let test_reader_blocks_writer () =
  let _db, _m, alice, bob, e = fixture () in
  Session.begin_ alice;
  Session.begin_ bob;
  ignore (Session.get alice e "salary");
  expect_conflict "write vs S" (fun () -> Session.set bob e "salary" (Value.Float 1.));
  (* shared read still fine *)
  ignore (Session.get bob e "salary");
  Session.abort alice;
  Session.abort bob

let test_lock_upgrade () =
  let db, _m, alice, bob, e = fixture () in
  Session.begin_ alice;
  ignore (Session.get alice e "salary");
  (* sole holder upgrades S -> X *)
  Session.set alice e "salary" (Value.Float 7.);
  Alcotest.(check bool) "upgraded" true
    (List.mem (e, `Exclusive) (Session.locks_held alice));
  Session.commit alice;
  Alcotest.check value "write took" (Value.Float 7.) (Db.get db e "salary");
  (* upgrade blocked when another reader exists *)
  Session.begin_ alice;
  Session.begin_ bob;
  ignore (Session.get alice e "salary");
  ignore (Session.get bob e "salary");
  expect_conflict "upgrade vs reader" (fun () ->
      Session.set alice e "salary" (Value.Float 8.));
  Session.abort alice;
  Session.abort bob

let test_create_delete () =
  let db, _m, alice, bob, _e = fixture () in
  Session.begin_ alice;
  Session.begin_ bob;
  let fresh = Session.new_object alice "employee" in
  (* born locked: bob can't touch it *)
  expect_conflict "fresh object locked" (fun () -> Session.get bob fresh "salary");
  Session.abort alice;
  Alcotest.(check bool) "creation undone" false (Db.exists db fresh);
  (* delete + abort resurrects with identity and state *)
  let victim = new_employee db ~salary:42. ~name:"victim" in
  Session.begin_ alice;
  Session.delete_object alice victim;
  Alcotest.(check bool) "gone inside" false (Db.exists db victim);
  Session.abort alice;
  Alcotest.(check bool) "resurrected" true (Db.exists db victim);
  Alcotest.check value "state restored" (Value.Float 42.) (Db.get db victim "salary");
  Session.commit bob;
  (* committed delete sticks *)
  Session.begin_ alice;
  Session.delete_object alice victim;
  Session.commit alice;
  Alcotest.(check bool) "deleted for real" false (Db.exists db victim)

let test_send_with_rollback () =
  let db, _m, alice, _bob, e = fixture () in
  Session.begin_ alice;
  ignore (Session.send alice e "set_salary" [ Value.Float 900. ]);
  Alcotest.check value "visible inside" (Value.Float 900.) (Db.get db e "salary");
  Session.abort alice;
  Alcotest.check value "receiver state restored" (Value.Float 100.)
    (Db.get db e "salary")

let test_misuse () =
  let db, _m, alice, _bob, e = fixture () in
  check_raises_any "get outside txn" (fun () -> Session.get alice e "salary");
  check_raises_any "commit outside txn" (fun () -> Session.commit alice);
  Session.begin_ alice;
  check_raises_any "double begin" (fun () -> Session.begin_ alice);
  Session.abort alice;
  (* sessions and the global transaction stack must not mix *)
  Transaction.begin_ db;
  check_raises_any "global txn open" (fun () -> Session.begin_ alice);
  Transaction.abort db

let test_interleaved_serializable () =
  (* classic interleaving: both transfer between disjoint object pairs;
     both commit; the result equals some serial order *)
  let db, _m, alice, bob, _ = fixture () in
  let a1 = new_employee db ~salary:10. and a2 = new_employee db ~salary:0. in
  let b1 = new_employee db ~salary:20. and b2 = new_employee db ~salary:0. in
  Session.begin_ alice;
  Session.begin_ bob;
  (* interleaved steps on disjoint data *)
  Session.set alice a1 "salary" (Value.Float 0.);
  Session.set bob b1 "salary" (Value.Float 0.);
  Session.set alice a2 "salary" (Value.Float 10.);
  Session.set bob b2 "salary" (Value.Float 20.);
  Session.commit bob;
  Session.commit alice;
  let v o = Value.to_float (Db.get db o "salary") in
  Alcotest.(check (float 0.)) "alice transfer" 10. (v a2);
  Alcotest.(check (float 0.)) "bob transfer" 20. (v b2);
  Alcotest.(check (float 0.)) "conserved" 30. (v a1 +. v a2 +. v b1 +. v b2)

let suite =
  [
    test "basic commit" test_basic_commit;
    test "abort undoes in reverse" test_abort_undoes_in_reverse;
    test "shared readers coexist" test_shared_readers_coexist;
    test "write conflicts" test_write_conflicts;
    test "reader blocks writer" test_reader_blocks_writer;
    test "lock upgrade" test_lock_upgrade;
    test "create and delete" test_create_delete;
    test "send with rollback" test_send_with_rollback;
    test "misuse" test_misuse;
    test "interleaved serializable" test_interleaved_serializable;
  ]
