open Helpers
module Signature = Events.Signature

let parse = Signature.parse

let test_paper_signatures () =
  (* The exact strings the paper constructs Primitive events from. *)
  let s = parse "end Employee::Set-Salary(float x)" in
  Alcotest.(check bool) "modifier" true (s.s_modifier = Oodb.Types.After);
  Alcotest.(check (option string)) "class" (Some "Employee") s.s_class;
  Alcotest.(check string) "method" "Set-Salary" s.s_meth;
  let s = parse "begin Person::Marry (Person* spouse)" in
  Alcotest.(check bool) "bom" true (s.s_modifier = Oodb.Types.Before);
  Alcotest.(check string) "marry" "Marry" s.s_meth;
  let s = parse "before Account::Withdraw(float x)" in
  Alcotest.(check bool) "before = begin" true (s.s_modifier = Oodb.Types.Before);
  let s = parse "after Account::Deposit(float x)" in
  Alcotest.(check bool) "after = end" true (s.s_modifier = Oodb.Types.After)

let test_optional_parts () =
  let s = parse "end set_price" in
  Alcotest.(check (option string)) "no class" None s.s_class;
  Alcotest.(check string) "method only" "set_price" s.s_meth;
  let s = parse "  begin   stock::set_price  " in
  Alcotest.(check (option string)) "whitespace tolerated" (Some "stock") s.s_class

let test_to_string_roundtrip () =
  let cases = [ "end Employee::Set-Salary"; "begin Marry"; "end account::deposit" ] in
  List.iter
    (fun c ->
      let s = parse c in
      Alcotest.(check bool)
        (c ^ " roundtrip")
        true
        (Signature.equal s (parse (Signature.to_string s))))
    cases

let test_errors () =
  let bad s =
    match parse s with
    | _ -> Alcotest.failf "%S should not parse" s
    | exception Errors.Parse_error _ -> ()
  in
  bad "";
  bad "set_price"; (* missing modifier *)
  bad "during stock::set_price"; (* unknown modifier *)
  bad "end stock::set_price(unterminated";
  bad "end stock:set_price"; (* single colon *)
  bad "end ::set_price";
  bad "end stock::";
  bad "end sto ck::m"

let suite =
  [
    test "paper signatures" test_paper_signatures;
    test "optional parts" test_optional_parts;
    test "to_string roundtrip" test_to_string_roundtrip;
    test "rejects malformed input" test_errors;
  ]
