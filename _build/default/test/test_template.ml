open Helpers
module Template = Sentinel.Template

let fixture () =
  let db = employee_db () in
  let sys = System.create db in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  (db, sys, fired)

let declare sys =
  Template.declare sys ~name:"salary-watch"
    ~event:(Expr.eom ~cls:"employee" "set_salary")
    ~condition:"true" ~action:"count" ()

let test_declare_and_find () =
  let db, sys, _ = fixture () in
  let tpl = declare sys in
  Alcotest.(check bool) "stored object" true (Db.exists db tpl);
  Alcotest.(check string) "class" "__template" (Db.class_of db tpl);
  Alcotest.(check (option oid)) "findable" (Some tpl)
    (Template.find sys "salary-watch");
  Alcotest.(check (list oid)) "listed" [ tpl ] (Template.templates sys);
  Alcotest.(check (list oid)) "no bindings yet" [] (Template.bindings sys tpl);
  check_raises_any "duplicate name" (fun () -> ignore (declare sys));
  check_raises_any "unknown action" (fun () ->
      ignore
        (Template.declare sys ~name:"x" ~event:(Expr.eom "m") ~condition:"true"
           ~action:"nope" ()))

let test_bind_scopes_to_instance () =
  let db, sys, fired = fixture () in
  let tpl = declare sys in
  let e1 = new_employee db and e2 = new_employee db in
  let rule = Template.bind sys tpl [ e1 ] in
  ignore (Db.send db e1 "set_salary" [ Value.Float 1. ]);
  ignore (Db.send db e2 "set_salary" [ Value.Float 2. ]);
  Alcotest.(check int) "only bound instance" 1 !fired;
  Alcotest.(check (list oid)) "binding listed" [ rule ] (Template.bindings sys tpl);
  (* a second binding is independent *)
  ignore (Template.bind sys tpl [ e2 ]);
  ignore (Db.send db e2 "set_salary" [ Value.Float 3. ]);
  Alcotest.(check int) "second binding fires" 2 !fired;
  Alcotest.(check int) "two bindings" 2 (List.length (Template.bindings sys tpl))

let test_unbind () =
  let db, sys, fired = fixture () in
  let tpl = declare sys in
  let e = new_employee db in
  ignore (Template.bind sys tpl [ e ]);
  Template.unbind sys tpl [ e ];
  Template.unbind sys tpl [ e ]; (* idempotent *)
  ignore (Db.send db e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "deactivated" 0 !fired;
  Alcotest.(check (list oid)) "no bindings" [] (Template.bindings sys tpl)

let test_multi_object_binding () =
  let db, sys, fired = fixture () in
  (* an IncomeLevel-style template over a pair of objects *)
  let tpl =
    Template.declare sys ~name:"pairwise"
      ~event:
        (Expr.conj
           (Expr.eom ~cls:"employee" "set_salary")
           (Expr.eom ~cls:"employee" "change_income"))
      ~condition:"true" ~action:"count" ()
  in
  let e1 = new_employee db and e2 = new_employee db and e3 = new_employee db in
  ignore (Template.bind sys tpl [ e1; e2 ]);
  ignore (Db.send db e1 "set_salary" [ Value.Float 1. ]);
  ignore (Db.send db e2 "change_income" [ Value.Float 2. ]);
  Alcotest.(check int) "pair completes" 1 !fired;
  (* a fresh e1 event re-pairs with the retained e2 instance (recent
     context) ... *)
  ignore (Db.send db e1 "set_salary" [ Value.Float 3. ]);
  Alcotest.(check int) "recent re-pairing" 2 !fired;
  (* ... but the unbound third object cannot contribute at all *)
  ignore (Db.send db e3 "change_income" [ Value.Float 4. ]);
  Alcotest.(check int) "outsider ignored" 2 !fired

let test_templates_persist () =
  let db, sys, _ = fixture () in
  let tpl = declare sys in
  let e = new_employee db in
  let text = Oodb.Persist.to_string db in
  let db2 = Db.create () in
  Workloads.Payroll.install db2;
  let sys2 = System.create db2 in
  let fired2 = ref 0 in
  System.register_action sys2 "count" (fun _ _ -> incr fired2);
  Oodb.Persist.of_string db2 text;
  System.rehydrate sys2;
  (* Template.templates needs the class; ensure it's registered on reload
     by declaring-table access *)
  Alcotest.(check (list oid)) "template survived" [ tpl ] (Template.templates sys2);
  ignore (Template.bind sys2 tpl [ e ]);
  ignore (Db.send db2 e "set_salary" [ Value.Float 1. ]);
  Alcotest.(check int) "bindable after reload" 1 !fired2

let test_bind_misuse () =
  let db, sys, _ = fixture () in
  let tpl = declare sys in
  check_raises_any "empty binding" (fun () -> ignore (Template.bind sys tpl []));
  let not_a_template = new_employee db in
  check_raises_any "not a template" (fun () ->
      ignore (Template.bind sys not_a_template [ not_a_template ]))

let suite =
  [
    test "declare and find" test_declare_and_find;
    test "bind scopes to instance" test_bind_scopes_to_instance;
    test "unbind" test_unbind;
    test "multi-object binding" test_multi_object_binding;
    test "templates persist" test_templates_persist;
    test "bind misuse" test_bind_misuse;
  ]
