open Helpers

let v = Alcotest.check value

let test_constructors () =
  v "null" Value.Null Value.null;
  v "bool" (Value.Bool true) (Value.bool true);
  v "int" (Value.Int 42) (Value.int 42);
  v "float" (Value.Float 1.5) (Value.float 1.5);
  v "str" (Value.Str "x") (Value.str "x");
  v "obj" (Value.Obj (Oid.of_int 7)) (Value.obj (Oid.of_int 7));
  v "list"
    (Value.List [ Value.Int 1; Value.Str "a" ])
    (Value.list [ Value.int 1; Value.str "a" ])

let test_accessors () =
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.bool true));
  Alcotest.(check int) "to_int" 5 (Value.to_int (Value.int 5));
  Alcotest.(check (float 0.)) "to_float" 2.5 (Value.to_float (Value.float 2.5));
  Alcotest.(check (float 0.)) "int widens" 3. (Value.to_float (Value.int 3));
  Alcotest.(check string) "to_str" "hi" (Value.to_str (Value.str "hi"));
  Alcotest.check oid "to_oid" (Oid.of_int 9) (Value.to_oid (Value.obj (Oid.of_int 9)));
  Alcotest.(check int) "to_list" 2
    (List.length (Value.to_list (Value.list [ Value.null; Value.null ])));
  Alcotest.(check bool) "is_null yes" true (Value.is_null Value.null);
  Alcotest.(check bool) "is_null no" false (Value.is_null (Value.int 0))

let test_accessor_errors () =
  let expect_type_error name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Type_error" name
    | exception Errors.Type_error _ -> ()
  in
  expect_type_error "bool of int" (fun () -> Value.to_bool (Value.int 1));
  expect_type_error "int of str" (fun () -> Value.to_int (Value.str "1"));
  expect_type_error "float of str" (fun () -> Value.to_float (Value.str "1."));
  expect_type_error "str of null" (fun () -> Value.to_str Value.null);
  expect_type_error "oid of int" (fun () -> Value.to_oid (Value.int 1));
  expect_type_error "list of str" (fun () -> Value.to_list (Value.str ""))

let test_compare_numeric () =
  Alcotest.(check int) "int = float" 0 (Value.compare (Value.int 2) (Value.float 2.));
  Alcotest.(check bool) "int < float" true
    (Value.compare (Value.int 2) (Value.float 2.5) < 0);
  Alcotest.(check bool) "float > int" true
    (Value.compare (Value.float 3.5) (Value.int 3) > 0);
  Alcotest.(check bool) "equal across tags" true
    (Value.equal (Value.int 4) (Value.float 4.))

let test_compare_structural () =
  Alcotest.(check bool) "str order" true
    (Value.compare (Value.str "a") (Value.str "b") < 0);
  Alcotest.(check bool) "list lexicographic" true
    (Value.compare
       (Value.list [ Value.int 1; Value.int 2 ])
       (Value.list [ Value.int 1; Value.int 3 ])
    < 0);
  Alcotest.(check bool) "tag ordering stable" true
    (Value.compare Value.null (Value.bool false) < 0);
  Alcotest.(check bool) "nested equal" true
    (Value.equal
       (Value.list [ Value.list [ Value.str "x" ] ])
       (Value.list [ Value.list [ Value.str "x" ] ]))

let test_printing () =
  Alcotest.(check string) "null" "null" (Value.to_string Value.null);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "str quoted" "\"hi\"" (Value.to_string (Value.str "hi"));
  Alcotest.(check string) "list" "[1; 2]"
    (Value.to_string (Value.list [ Value.int 1; Value.int 2 ]));
  Alcotest.(check string) "oid" "@3" (Value.to_string (Value.obj (Oid.of_int 3)));
  Alcotest.(check string) "type names" "list"
    (Value.type_name (Value.list []))

let test_oid_module () =
  let a = Oid.of_int 1 and b = Oid.of_int 2 in
  Alcotest.(check bool) "equal" true (Oid.equal a (Oid.of_int 1));
  Alcotest.(check bool) "not equal" false (Oid.equal a b);
  Alcotest.(check bool) "compare" true (Oid.compare a b < 0);
  Alcotest.(check int) "roundtrip" 5 (Oid.to_int (Oid.of_int 5));
  Alcotest.(check string) "to_string" "@8" (Oid.to_string (Oid.of_int 8));
  let tbl = Oid.Table.create 4 in
  Oid.Table.replace tbl a ();
  Alcotest.(check bool) "table" true (Oid.Table.mem tbl (Oid.of_int 1));
  let s = Oid.Set.of_list [ a; b; a ] in
  Alcotest.(check int) "set dedupes" 2 (Oid.Set.cardinal s)

(* Property: Value.compare is a total order consistent with equal. *)
let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let base =
        oneof
          [
            return Value.Null;
            map Value.bool bool;
            map Value.int small_signed_int;
            map (fun f -> Value.Float f) (float_bound_inclusive 1000.);
            map Value.str (string_size (int_bound 8));
            map (fun i -> Value.Obj (Oodb.Oid.of_int (abs i))) small_signed_int;
          ]
      in
      if n <= 1 then base
      else oneof [ base; map Value.list (list_size (int_bound 4) (self (n / 2))) ])

let prop_compare_reflexive =
  QCheck2.Test.make ~name:"Value.compare reflexive" ~count:200 value_gen
    (fun a -> Value.compare a a = 0)

let prop_compare_antisymmetric =
  QCheck2.Test.make ~name:"Value.compare antisymmetric" ~count:200
    (QCheck2.Gen.pair value_gen value_gen) (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_equal_matches_compare =
  QCheck2.Test.make ~name:"Value.equal consistent with compare" ~count:200
    (QCheck2.Gen.pair value_gen value_gen) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let suite =
  [
    test "constructors" test_constructors;
    test "accessors" test_accessors;
    test "accessor errors" test_accessor_errors;
    test "numeric comparison" test_compare_numeric;
    test "structural comparison" test_compare_structural;
    test "printing" test_printing;
    test "oid module" test_oid_module;
    QCheck_alcotest.to_alcotest prop_compare_reflexive;
    QCheck_alcotest.to_alcotest prop_compare_antisymmetric;
    QCheck_alcotest.to_alcotest prop_equal_matches_compare;
  ]
