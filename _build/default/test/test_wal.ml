open Helpers
module Wal = Oodb.Wal
module Persist = Oodb.Persist

let with_tmp f =
  let path = Filename.temp_file "sentinel_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let fresh_db () =
  let db = employee_db () in
  let _sys = System.create db in
  db

let snapshot db =
  List.concat_map
    (fun cls ->
      List.map
        (fun o -> (Oid.to_int o, cls, Db.attrs db o, Db.consumers_of db o))
        (Db.extent db ~deep:false cls))
    (List.sort compare (Db.classes db))

let recover path =
  let db = fresh_db () in
  let applied = Wal.replay db path in
  (db, applied)

let test_autocommit_logging () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~name:"ann" ~salary:5. in
      Db.set db e "salary" (Value.Float 10.);
      let e2 = new_employee db in
      Db.delete_object db e2;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "four autocommit batches" 4 applied;
      Alcotest.(check bool) "object restored" true (Db.exists db2 e);
      Alcotest.check value "attr restored" (Value.Float 10.) (Db.get db2 e "salary");
      Alcotest.(check bool) "deleted stays deleted" false (Db.exists db2 e2);
      Alcotest.(check bool) "full state equal" true (snapshot db = snapshot db2))

let test_committed_txn_replayed () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      Transaction.begin_ db;
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Transaction.commit db;
      Wal.detach wal;
      let db2, applied = recover path in
      Alcotest.(check int) "one batch" 1 applied;
      Alcotest.check value "committed state" (Value.Float 2.) (Db.get db2 e "salary"))

let test_aborted_txn_not_logged () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let keeper = new_employee db ~salary:1. in
      Transaction.begin_ db;
      ignore (new_employee db);
      Db.set db keeper "salary" (Value.Float 99.);
      Transaction.abort db;
      (* OIDs burned by the abort must not break later replay *)
      let after = new_employee db ~salary:7. in
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.check value "abort invisible" (Value.Float 1.)
        (Db.get db2 keeper "salary");
      Alcotest.(check bool) "post-abort object restored with same oid" true
        (Db.exists db2 after);
      Alcotest.check value "its attr" (Value.Float 7.) (Db.get db2 after "salary");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_inner_abort_partial () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 2.);
      Transaction.begin_ db;
      Db.set db e "salary" (Value.Float 3.);
      Transaction.abort db; (* inner only *)
      Transaction.begin_ db;
      Db.set db e "income" (Value.Float 4.);
      Transaction.commit db; (* inner commit *)
      Transaction.commit db;
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.check value "outer write survived" (Value.Float 2.)
        (Db.get db2 e "salary");
      Alcotest.check value "inner-committed write survived" (Value.Float 4.)
        (Db.get db2 e "income");
      Alcotest.(check bool) "states equal" true (snapshot db = snapshot db2))

let test_subscriptions_and_indexes_replayed () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let sys = System.create (Db.create ()) in
      ignore sys;
      let wal = Wal.attach db path in
      let e = new_employee db in
      let consumer = new_employee db in
      Db.subscribe db ~reactive:e ~consumer;
      Db.subscribe_class db ~cls:"manager" ~consumer;
      Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"salary" ();
      Wal.detach wal;
      let db2, _ = recover path in
      Alcotest.(check (list oid)) "instance sub" [ consumer ]
        (Db.consumers_of db2 e);
      Alcotest.(check (list oid)) "class sub" [ consumer ]
        (Db.class_consumers_of db2 "manager");
      Alcotest.(check bool) "ordered index back" true
        (Db.index_kind db2 ~cls:"employee" ~attr:"salary" = Some `Ordered))

let test_torn_tail_ignored () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      let e = new_employee db ~salary:1. in
      Db.set db e "salary" (Value.Float 2.);
      Wal.detach wal;
      (* simulate a crash mid-batch: append an unterminated batch *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "B\ns 1 salary f:0x1.8p1\n"; (* no E *)
      close_out oc;
      let db2, applied = recover path in
      Alcotest.(check int) "only complete batches" 2 applied;
      Alcotest.check value "torn write discarded" (Value.Float 2.)
        (Db.get db2 e "salary"))

let test_checkpoint_truncates () =
  with_tmp (fun wal_path ->
      with_tmp (fun snap_path ->
          let db = fresh_db () in
          let wal = Wal.attach db wal_path in
          let e = new_employee db ~salary:1. in
          Wal.checkpoint wal ~snapshot:snap_path;
          (* post-checkpoint activity lands in the fresh log *)
          Db.set db e "salary" (Value.Float 5.);
          Wal.detach wal;
          (* recovery: snapshot + log *)
          let db2 = fresh_db () in
          Oodb.Persist.load db2 snap_path;
          let applied = Wal.replay db2 wal_path in
          Alcotest.(check int) "only the post-checkpoint batch" 1 applied;
          Alcotest.check value "final state" (Value.Float 5.)
            (Db.get db2 e "salary")))

let test_rule_abort_keeps_log_clean () =
  with_tmp (fun path ->
      (* a rule that aborts the transaction: the WAL must contain nothing
         from the aborted attempt *)
      let db = employee_db () in
      let sys = System.create db in
      let e = new_employee db ~salary:10. in
      ignore
        (System.create_rule sys ~monitor:[ e ]
           ~event:(Expr.eom ~cls:"employee" "set_salary")
           ~condition:"true" ~action:"abort" ());
      let wal = Wal.attach db path in
      (match
         Transaction.atomically db (fun () ->
             ignore (Db.send db e "set_salary" [ Value.Float 999. ]))
       with
      | Ok () -> Alcotest.fail "expected abort"
      | Error (Errors.Rule_abort _) -> ()
      | Error exn -> raise exn);
      Alcotest.(check int) "nothing written" 0 (Wal.batches_written wal);
      Wal.detach wal)

let test_attach_misuse () =
  with_tmp (fun path ->
      let db = fresh_db () in
      let wal = Wal.attach db path in
      check_raises_any "double attach" (fun () -> ignore (Wal.attach db path));
      Wal.detach wal;
      Wal.detach wal; (* idempotent *)
      Transaction.begin_ db;
      check_raises_any "attach mid-txn" (fun () -> ignore (Wal.attach db path));
      Transaction.abort db)

let test_missing_log_is_empty () =
  let db = fresh_db () in
  Alcotest.(check int) "no file, no batches" 0
    (Wal.replay db "/nonexistent/definitely_missing.wal")

(* Property: for random committed workloads, replaying the WAL into a fresh
   database reproduces the exact observable state. *)
let prop_replay_equals_original =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wal replay reproduces state" ~count:60
       QCheck2.Gen.(
         list_size (int_bound 40)
           (oneof
              [
                map (fun (i, v) -> `Set (i, v)) (pair (int_bound 6) small_signed_int);
                return `Create;
                map (fun i -> `Delete i) (int_bound 6);
                map (fun b -> `Txn b) bool; (* true = commit, false = abort *)
              ]))
       (fun ops ->
         with_tmp (fun path ->
             let db = fresh_db () in
             let wal = Wal.attach db path in
             let created = ref [] in
             let base = Array.init 7 (fun _ -> new_employee db) in
             Array.iter (fun o -> created := o :: !created) base;
             let apply op =
               try
                 match op with
                 | `Set (i, v) ->
                   Db.set db base.(i) "salary" (Value.Float (float_of_int v))
                 | `Create -> created := new_employee db :: !created
                 | `Delete i -> Db.delete_object db base.(i)
                 | `Txn _ -> ()
               with Errors.No_such_object _ | Errors.Dead_object _ -> ()
             in
             (* interleave flat ops and short transactions *)
             List.iter
               (fun op ->
                 match op with
                 | `Txn commit ->
                   Transaction.begin_ db;
                   apply `Create;
                   if commit then Transaction.commit db else Transaction.abort db
                 | other -> apply other)
               ops;
             Wal.detach wal;
             let db2, _ = recover path in
             snapshot db = snapshot db2)))

let suite =
  [
    test "autocommit logging" test_autocommit_logging;
    test "committed transaction replayed" test_committed_txn_replayed;
    test "aborted transaction not logged" test_aborted_txn_not_logged;
    test "inner abort, outer commit" test_inner_abort_partial;
    test "subscriptions and indexes replayed" test_subscriptions_and_indexes_replayed;
    test "torn tail ignored" test_torn_tail_ignored;
    test "checkpoint truncates" test_checkpoint_truncates;
    test "rule abort keeps log clean" test_rule_abort_keeps_log_clean;
    test "attach misuse" test_attach_misuse;
    test "missing log is empty" test_missing_log_is_empty;
    prop_replay_equals_original;
  ]
