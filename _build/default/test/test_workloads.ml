open Helpers
module Prng = Workloads.Prng

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let seq g = List.init 20 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b);
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (seq (Prng.create 42) <> seq c)

let test_prng_bounds () =
  let g = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v;
    let f = Prng.float g 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done;
  check_raises_any "non-positive bound" (fun () -> ignore (Prng.int g 0))

let test_prng_choice_shuffle () =
  let g = Prng.create 5 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    let v = Prng.choice g arr in
    if not (Array.exists (Int.equal v) arr) then Alcotest.fail "choice not member"
  done;
  let arr2 = Array.init 20 (fun i -> i) in
  Prng.shuffle g arr2;
  Alcotest.(check (list int)) "shuffle is a permutation"
    (List.init 20 (fun i -> i))
    (List.sort compare (Array.to_list arr2))

let test_payroll_population () =
  let db = employee_db () in
  let rng = Prng.create 9 in
  let pop = Workloads.Payroll.populate db rng ~managers:4 ~employees:20 in
  Alcotest.(check int) "managers" 4 (List.length (Db.extent db "manager"));
  Alcotest.(check int) "employees deep" 24
    (List.length (Db.extent db ~deep:true "employee"));
  (* every employee is wired to a manager of the manager class *)
  Array.iter
    (fun e ->
      match Db.get db e "mgr" with
      | Value.Obj m ->
        Alcotest.(check bool) "mgr is a manager" true (Db.is_instance_of db m "manager")
      | _ -> Alcotest.fail "employee without manager")
    pop.employees;
  (* streams apply cleanly *)
  Workloads.Dsl.apply_ops db (Workloads.Payroll.salary_updates rng pop ~n:100);
  Workloads.Dsl.apply_ops db (Workloads.Payroll.income_updates rng pop ~n:100)

let test_market_population () =
  let db = Db.create () in
  Workloads.Stock_market.install db;
  let rng = Prng.create 9 in
  let market =
    Workloads.Stock_market.populate db rng ~stocks:10 ~indexes:2 ~portfolios:3
  in
  Alcotest.(check int) "stocks" 10 (List.length (Db.extent db "stock"));
  let ops = Workloads.Stock_market.ticks rng market ~n:500 in
  Alcotest.(check int) "ops count" 500 (List.length ops);
  Workloads.Dsl.apply_ops db ops;
  (* a portfolio can purchase *)
  let p = market.portfolios.(0) and s = market.stocks.(0) in
  ignore (Db.send db p "purchase" [ Value.Obj s; Value.Int 5 ]);
  Alcotest.check value "shares" (Value.Int 5) (Db.get db p "shares")

let test_hospital_stream_rates () =
  let db = Db.create () in
  Workloads.Hospital.install db;
  let rng = Prng.create 13 in
  let ward = Workloads.Hospital.populate db rng ~patients:5 ~physicians:2 in
  let ops = Workloads.Hospital.vitals_stream rng ward ~n:2000 ~fever_rate:0.2 () in
  let fevers =
    List.length
      (List.filter
         (fun (_, _, args) ->
           match args with t :: _ -> Value.to_float t >= 39.0 | [] -> false)
         ops)
  in
  (* 2000 draws at 20%: expect ~400, allow generous slack *)
  Alcotest.(check bool) "fever rate ballpark" true (fevers > 300 && fevers < 500);
  Workloads.Dsl.apply_ops db ops

let test_banking_stream () =
  let db = Db.create () in
  Workloads.Banking.install db;
  let rng = Prng.create 17 in
  let accounts = Workloads.Banking.populate db rng ~accounts:5 in
  let ops = Workloads.Banking.transactions rng accounts ~n:1000 () in
  let withdraws =
    List.length (List.filter (fun (_, m, _) -> m = "withdraw") ops)
  in
  Alcotest.(check bool) "withdraw rate ballpark" true
    (withdraws > 300 && withdraws < 500);
  Workloads.Dsl.apply_ops db ops

let suite =
  [
    test "prng deterministic" test_prng_deterministic;
    test "prng bounds" test_prng_bounds;
    test "prng choice and shuffle" test_prng_choice_shuffle;
    test "payroll population" test_payroll_population;
    test "market population" test_market_population;
    test "hospital stream rates" test_hospital_stream_rates;
    test "banking stream" test_banking_stream;
  ]
