(* The full benchmark harness: one experiment per entry of DESIGN.md §4.
   Each experiment prints the rows EXPERIMENTS.md records; shapes (who wins,
   how things scale) are the reproduction target, not absolute numbers.

   Run with: dune exec bench/main.exe            (all experiments)
             dune exec bench/main.exe -- e2 e6   (a subset) *)

module Db = Oodb.Db
module Value = Oodb.Value
module Oid = Oodb.Oid
module Schema = Oodb.Schema
module Transaction = Oodb.Transaction
module Expr = Events.Expr
module Detector = Events.Detector
module Context = Events.Context
module System = Sentinel.System
module Error_policy = Sentinel.Error_policy
module Prng = Workloads.Prng
open Bench_util

(* ------------------------------------------------------------------------- *)
(* E1: reactivity overhead (paper §3.2: "No overhead is incurred in the
   definition and use of [passive] objects")                                  *)
(* ------------------------------------------------------------------------- *)

let e1 () =
  header "E1: method dispatch overhead by object category (§3.2)";
  let mk_db ~reactive ~in_interface =
    let db = Db.create () in
    let events = if in_interface then [ ("poke", Schema.On_end) ] else [] in
    Db.define_class db
      (Schema.define "thing" ~reactive
         ~attrs:[ ("x", Value.Int 0) ]
         ~methods:[ ("poke", fun _ _ _ -> Value.Null) ]
         ~events);
    (db, Db.new_object db "thing")
  in
  let bench name (db, o) =
    row "  %-42s %10s\n" name
      (fmt_ns (ns_per_run name (fun () -> ignore (Db.send db o "poke" []))))
  in
  bench "passive object" (mk_db ~reactive:false ~in_interface:false);
  bench "reactive, method not in event interface"
    (mk_db ~reactive:true ~in_interface:false);
  bench "reactive, event generated, no consumers"
    (mk_db ~reactive:true ~in_interface:true);
  let subscribed enabled =
    let db, o = mk_db ~reactive:true ~in_interface:true in
    let sys = System.create db in
    System.register_action sys "noop" (fun _ _ -> ());
    let r =
      System.create_rule sys ~monitor:[ o ] ~event:(Expr.eom ~cls:"thing" "poke")
        ~condition:"true" ~action:"noop" ()
    in
    if not enabled then System.disable sys r;
    (db, o)
  in
  bench "reactive, one subscribed rule (disabled)" (subscribed false);
  bench "reactive, one subscribed rule (firing)" (subscribed true)

(* ------------------------------------------------------------------------- *)
(* E2: subscription vs centralized rule checking (§3.5 advantage 1)           *)
(* ------------------------------------------------------------------------- *)

let e2 () =
  header "E2: subscription (Sentinel) vs centralized scan (ADAM), 10k events";
  row "  %6s  %12s  %12s  %14s  %14s\n" "#rules" "sentinel" "adam"
    "adam scans" "deliveries";
  let n_objects = 1000 and n_updates = 10_000 in
  let updates rng objs =
    List.init n_updates (fun _ ->
        (Prng.choice rng objs, "set_salary", [ Value.Float 1. ]))
  in
  let run_sentinel n_rules =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let sys = System.create db in
    System.register_action sys "noop" (fun _ _ -> ());
    let rng = Prng.create 1 in
    let objs =
      Array.init n_objects (fun i ->
          Db.new_object db "employee"
            ~attrs:[ ("name", Value.Str (string_of_int i)) ])
    in
    (* each rule monitors one distinct object *)
    for i = 0 to n_rules - 1 do
      ignore
        (System.create_rule sys
           ~monitor:[ objs.(i mod n_objects) ]
           ~event:(Expr.eom ~cls:"employee" "set_salary")
           ~condition:"true" ~action:"noop" ())
    done;
    let ops = updates rng objs in
    Db.reset_stats db;
    let (), ms = time_ms (fun () -> Workloads.Dsl.apply_ops db ops) in
    (ms, (Db.stats db).notifications)
  in
  let run_adam n_rules =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let adam = Baselines.Adam.create db in
    let rng = Prng.create 1 in
    let objs =
      Array.init n_objects (fun i ->
          Db.new_object db "employee"
            ~attrs:[ ("name", Value.Str (string_of_int i)) ])
    in
    for i = 0 to n_rules - 1 do
      let target = objs.(i mod n_objects) in
      ignore
        (Baselines.Adam.add_rule adam
           ~name:(string_of_int i)
           ~active_class:"employee" ~meth:"set_salary"
           ~condition:(fun _ occ -> Oid.equal occ.Oodb.Types.source target)
           ~action:(fun _ _ -> ())
           ())
    done;
    let ops = updates rng objs in
    let before = Baselines.Adam.scans adam in
    let (), ms = time_ms (fun () -> Workloads.Dsl.apply_ops db ops) in
    (ms, Baselines.Adam.scans adam - before)
  in
  List.iter
    (fun n ->
      let s_ms, deliveries = run_sentinel n in
      let a_ms, scans = run_adam n in
      row "  %6d  %12s  %12s  %14d  %14d\n" n (fmt_ms s_ms) (fmt_ms a_ms) scans
        deliveries)
    [ 10; 100; 1000 ]

(* ------------------------------------------------------------------------- *)
(* E3: rule sharing across classes (§3.5 advantage 2)                          *)
(* ------------------------------------------------------------------------- *)

let e3 () =
  header "E3: one shared rule over k classes vs k per-class Ode constraints";
  row "  %4s  %14s  %14s  %12s  %12s\n" "k" "defs(sentinel)" "defs(ode)"
    "sentinel" "ode";
  let instances_per_class = 50 and updates_per_class = 2_000 in
  let define_classes db k =
    List.init k (fun i ->
        let cls = Printf.sprintf "cls%d" i in
        Db.define_class db
          (Schema.define cls
             ~attrs:[ ("v", Value.Float 0.) ]
             ~methods:[ ("set_v", Workloads.Dsl.setter "v") ]
             ~events:[ ("set_v", Schema.On_end) ]);
        cls)
  in
  let populate db classes =
    List.concat_map
      (fun cls -> List.init instances_per_class (fun _ -> Db.new_object db cls))
      classes
  in
  let stream rng objs =
    List.init (updates_per_class * List.length objs / instances_per_class)
      (fun _ ->
        (Prng.choice rng (Array.of_list objs), "set_v", [ Value.Float 5. ]))
  in
  List.iter
    (fun k ->
      (* Sentinel: ONE rule object, subscribed to every class *)
      let db = Db.create () in
      let sys = System.create db in
      let classes = define_classes db k in
      let objs = populate db classes in
      System.register_condition sys "neg" (fun db inst ->
          match inst.Detector.constituents with
          | [ occ ] -> Value.to_float (Db.get db occ.source "v") < 0.
          | _ -> false);
      System.register_action sys "noop" (fun _ _ -> ());
      ignore
        (System.create_rule sys ~name:"shared" ~monitor_classes:classes
           ~event:(Expr.eom "set_v")
           ~condition:"neg" ~action:"noop" ());
      let ops = stream (Prng.create 2) objs in
      let (), s_ms = time_ms (fun () -> Workloads.Dsl.apply_ops db ops) in
      (* Ode: k duplicated constraint definitions, one per class *)
      let db2 = Db.create () in
      let ode = Baselines.Ode.create db2 in
      let classes2 = define_classes db2 k in
      List.iter
        (fun cls ->
          Baselines.Ode.declare_constraint ode ~cls ~name:("nonneg-" ^ cls)
            (fun db o -> Value.to_float (Db.get db o "v") >= 0.))
        classes2;
      let objs2 = populate db2 classes2 in
      let ops2 = stream (Prng.create 2) objs2 in
      let (), o_ms =
        time_ms (fun () ->
            List.iter
              (fun (o, m, args) -> ignore (Baselines.Ode.send ode o m args))
              ops2)
      in
      row "  %4d  %14d  %14d  %12s  %12s\n" k 1 k (fmt_ms s_ms) (fmt_ms o_ms))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------------- *)
(* E4: composite-event detection cost vs expression depth (§1 issue 3)        *)
(* ------------------------------------------------------------------------- *)

let occ_stream n =
  List.init n (fun i ->
      Oodb.Occurrence.make
        ~source:(Oid.of_int (1 + (i mod 3)))
        ~source_class:"c"
        ~meth:(Printf.sprintf "m%d" (i mod 3))
        ~modifier:Oodb.Types.After ~params:[] ~at:(i + 1))

let e4 () =
  header "E4: detection cost vs expression depth (10k occurrences)";
  row "  %6s  %12s  %12s  %12s\n" "depth" "or-chain" "and-chain" "seq-chain";
  let prim i = Expr.eom (Printf.sprintf "m%d" (i mod 3)) in
  let chain op depth =
    let rec build i = if i = 0 then prim 0 else op (build (i - 1)) (prim i) in
    build depth
  in
  let stream = occ_stream 10_000 in
  let measure e =
    let d = Detector.create ~on_signal:(fun _ -> ()) e in
    let (), ms = time_ms (fun () -> List.iter (Detector.feed d) stream) in
    ms
  in
  List.iter
    (fun depth ->
      row "  %6d  %12s  %12s  %12s\n" depth
        (fmt_ms (measure (chain Expr.disj depth)))
        (fmt_ms (measure (chain Expr.conj depth)))
        (fmt_ms (measure (chain Expr.seq depth))))
    [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------------- *)
(* E5: parameter contexts (§3.3)                                              *)
(* ------------------------------------------------------------------------- *)

let e5 () =
  header "E5: conjunction detection by parameter context (10k occurrences)";
  row "  %-12s  %12s  %12s\n" "context" "time" "signals";
  let stream = occ_stream 10_000 in
  let e = Expr.conj (Expr.eom "m0") (Expr.eom "m1") in
  List.iter
    (fun ctx ->
      let d = Detector.create ~context:ctx ~on_signal:(fun _ -> ()) e in
      let (), ms = time_ms (fun () -> List.iter (Detector.feed d) stream) in
      row "  %-12s  %12s  %12d\n" (Context.to_string ctx) (fmt_ms ms)
        (Detector.signalled d))
    Context.all

(* ------------------------------------------------------------------------- *)
(* E6: the Salary-check workload on all three engines (§5.1)                  *)
(* ------------------------------------------------------------------------- *)

let e6 () =
  header "E6: Salary-check end-to-end (500 employees, 50 managers, 5k updates)";
  row "  %-10s  %12s  %12s  %12s\n" "engine" "time" "rejected" "defs";
  let managers = 50 and employees = 500 and n_updates = 5_000 in
  let employee_ok db emp =
    match Db.get db emp "mgr" with
    | Value.Obj m ->
      Value.to_float (Db.get db emp "salary")
      < Value.to_float (Db.get db m "salary")
    | _ -> true
  in
  (* ~10% of updates try to push an employee above every manager *)
  let updates rng (pop : Workloads.Payroll.population) =
    List.init n_updates (fun _ ->
        let violate = Prng.bool rng 0.1 in
        let nm = Array.length pop.managers
        and ne = Array.length pop.employees in
        let k = Prng.int rng (nm + ne) in
        let target, is_mgr =
          if k < nm then (pop.managers.(k), true)
          else (pop.employees.(k - nm), false)
        in
        let salary =
          if violate && not is_mgr then 50_000.
          else if is_mgr then 5000. +. Prng.float rng 5000.
          else 1000. +. Prng.float rng 3000.
        in
        (target, salary))
  in
  let run_with send db pop =
    let ops = updates (Prng.create 4) pop in
    let rejected = ref 0 in
    let (), ms =
      time_ms (fun () ->
          List.iter
            (fun (target, salary) ->
              match
                Transaction.atomically db (fun () ->
                    ignore (send target "set_salary" [ Value.Float salary ]))
              with
              | Ok () -> ()
              | Error (Oodb.Errors.Rule_abort _) -> incr rejected
              | Error e -> raise e)
            ops)
    in
    (ms, !rejected)
  in
  (* Sentinel: one rule, class-level subscription *)
  (let db = Db.create () in
   Workloads.Payroll.install db;
   let sys = System.create db in
   System.register_condition sys "viol" (fun db inst ->
       match inst.Detector.constituents with
       | [ occ ] ->
         (not (Db.is_instance_of db occ.source "manager"))
         && not (employee_ok db occ.source)
       | _ -> false);
   ignore
     (System.create_rule sys ~name:"salary-check" ~monitor_classes:[ "employee" ]
        ~event:(Expr.eom ~cls:"employee" "set_salary")
        ~condition:"viol" ~action:"abort" ());
   let pop = Workloads.Payroll.populate db (Prng.create 3) ~managers ~employees in
   let ms, rejected = run_with (Db.send db) db pop in
   row "  %-10s  %12s  %12d  %12d\n" "sentinel" (fmt_ms ms) rejected 1);
  (* Ode: one constraint per class (employee side only is enough to catch
     the injected violations, but we declare both as Figure 11 does) *)
  (let db = Db.create () in
   Workloads.Payroll.install db;
   let ode = Baselines.Ode.create db in
   Baselines.Ode.declare_constraint ode ~cls:"employee" ~name:"lt-mgr"
     (fun db o ->
       Db.is_instance_of db o "manager" || employee_ok db o);
   Baselines.Ode.declare_constraint ode ~cls:"manager" ~name:"gt-emps"
     (fun _ _ -> true);
   let pop = Workloads.Payroll.populate db (Prng.create 3) ~managers ~employees in
   let ms, rejected = run_with (Baselines.Ode.send ode) db pop in
   row "  %-10s  %12s  %12d  %12d\n" "ode" (fmt_ms ms) rejected 2);
  (* ADAM: two rule objects, centralized dispatch *)
  let db = Db.create () in
  Workloads.Payroll.install db;
  let adam = Baselines.Adam.create db in
  ignore
    (Baselines.Adam.add_rule adam ~name:"emp-rule" ~active_class:"employee"
       ~meth:"set_salary"
       ~condition:(fun db occ ->
         (not (Db.is_instance_of db occ.Oodb.Types.source "manager"))
         && not (employee_ok db occ.Oodb.Types.source))
       ~action:(fun _ _ -> raise (Oodb.Errors.Rule_abort "Invalid Salary"))
       ());
  ignore
    (Baselines.Adam.add_rule adam ~name:"mgr-rule" ~active_class:"manager"
       ~meth:"set_salary"
       ~condition:(fun _ _ -> false)
       ~action:(fun _ _ -> ())
       ());
  let pop = Workloads.Payroll.populate db (Prng.create 3) ~managers ~employees in
  let ms, rejected = run_with (Db.send db) db pop in
  row "  %-10s  %12s  %12d  %12d\n" "adam" (fmt_ms ms) rejected 2

(* ------------------------------------------------------------------------- *)
(* E7: runtime rule churn vs schema rebuild (§1 issue 1, §3.4)                *)
(* ------------------------------------------------------------------------- *)

let e7 () =
  header "E7: adding/removing 100 rules against a live store of 10k objects";
  let n_objects = 10_000 and n_rules = 100 in
  let fresh () =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let objs =
      Array.init n_objects (fun i ->
          Db.new_object db "employee"
            ~attrs:[ ("name", Value.Str (string_of_int i)) ])
    in
    (db, objs)
  in
  (* Sentinel: create + delete rule objects online *)
  (let db, objs = fresh () in
   let sys = System.create db in
   System.register_action sys "noop" (fun _ _ -> ());
   let (), add_ms =
     time_ms (fun () ->
         for i = 0 to n_rules - 1 do
           ignore
             (System.create_rule sys
                ~name:(string_of_int i)
                ~monitor:[ objs.(i) ]
                ~event:(Expr.eom ~cls:"employee" "set_salary")
                ~condition:"true" ~action:"noop" ())
         done)
   in
   let rules = System.rules sys in
   let (), del_ms =
     time_ms (fun () -> List.iter (System.delete_rule sys) rules)
   in
   row "  %-22s  add %10s   remove %10s\n" "sentinel (online)" (fmt_ms add_ms)
     (fmt_ms del_ms));
  (* ADAM: also online *)
  (let db, _objs = fresh () in
   let adam = Baselines.Adam.create db in
   let added = ref [] in
   let (), add_ms =
     time_ms (fun () ->
         for i = 0 to n_rules - 1 do
           added :=
             Baselines.Adam.add_rule adam ~name:(string_of_int i)
               ~active_class:"employee" ~meth:"set_salary"
               ~condition:(fun _ _ -> false)
               ~action:(fun _ _ -> ())
               ()
             :: !added
         done)
   in
   let (), del_ms =
     time_ms (fun () -> List.iter (Baselines.Adam.remove_rule adam) !added)
   in
   row "  %-22s  add %10s   remove %10s\n" "adam (online)" (fmt_ms add_ms)
     (fmt_ms del_ms));
  (* Ode: each addition is a schema rebuild revisiting every instance *)
  let db, _objs = fresh () in
  let ode = Baselines.Ode.create db in
  let (), add_ms =
    time_ms (fun () ->
        for i = 0 to n_rules - 1 do
          ignore
            (Baselines.Ode.add_constraint_with_rebuild ode ~cls:"employee"
               ~name:(string_of_int i)
               (fun _ _ -> true))
        done)
  in
  row "  %-22s  add %10s   (each add revisits all %d instances)\n"
    "ode (rebuild)" (fmt_ms add_ms) n_objects

(* ------------------------------------------------------------------------- *)
(* E8: class-level vs instance-level rules (§4.7)                             *)
(* ------------------------------------------------------------------------- *)

let e8 () =
  header "E8: class-level vs instance-level rule, 10k updates over N objects";
  row "  %8s  %16s  %16s  %16s\n" "N" "class rule" "instance(10%)" "firings c/i";
  let n_updates = 10_000 in
  List.iter
    (fun n ->
      let build instance_fraction =
        let db = Db.create () in
        Workloads.Payroll.install db;
        let sys = System.create db in
        System.register_action sys "noop" (fun _ _ -> ());
        let objs =
          Array.init n (fun i ->
              Db.new_object db "employee"
                ~attrs:[ ("name", Value.Str (string_of_int i)) ])
        in
        (match instance_fraction with
        | None ->
          ignore
            (System.create_rule sys ~monitor_classes:[ "employee" ]
               ~event:(Expr.eom ~cls:"employee" "set_salary")
               ~condition:"true" ~action:"noop" ())
        | Some frac ->
          let k = max 1 (n / frac) in
          ignore
            (System.create_rule sys
               ~monitor:(Array.to_list (Array.sub objs 0 k))
               ~event:(Expr.eom ~cls:"employee" "set_salary")
               ~condition:"true" ~action:"noop" ()));
        let rng = Prng.create 5 in
        let ops =
          List.init n_updates (fun _ ->
              (Prng.choice rng objs, "set_salary", [ Value.Float 1. ]))
        in
        Db.reset_stats db;
        let (), ms = time_ms (fun () -> Workloads.Dsl.apply_ops db ops) in
        (ms, (System.stats sys).actions_executed)
      in
      let c_ms, c_fired = build None in
      let i_ms, i_fired = build (Some 10) in
      row "  %8d  %16s  %16s  %9d/%d\n" n (fmt_ms c_ms) (fmt_ms i_ms) c_fired
        i_fired)
    [ 100; 1000; 10_000 ]

(* ------------------------------------------------------------------------- *)
(* E9: persistence of rules and events as first-class objects (§3.4, §4)      *)
(* ------------------------------------------------------------------------- *)

let e9 () =
  header "E9: save / load / rehydrate a store with first-class rule objects";
  let n_objects = 10_000 and n_rules = 50 in
  let db = Db.create () in
  Workloads.Payroll.install db;
  let sys = System.create db in
  System.register_action sys "noop" (fun _ _ -> ());
  let objs =
    Array.init n_objects (fun i ->
        Db.new_object db "employee"
          ~attrs:[ ("name", Value.Str (string_of_int i)); ("salary", Value.Float 1.) ])
  in
  for i = 0 to n_rules - 1 do
    ignore
      (System.create_rule sys
         ~name:(string_of_int i)
         ~monitor:[ objs.(i) ]
         ~event:
           (Expr.conj
              (Expr.eom ~cls:"employee" "set_salary")
              (Expr.eom ~cls:"employee" "change_income"))
         ~condition:"true" ~action:"noop" ())
  done;
  let text, save_ms = time_ms (fun () -> Oodb.Persist.to_string db) in
  let (db2, sys2), load_ms =
    time_ms (fun () ->
        let db2 = Db.create () in
        Workloads.Payroll.install db2;
        let sys2 = System.create db2 in
        System.register_action sys2 "noop" (fun _ _ -> ());
        Oodb.Persist.of_string db2 text;
        (db2, sys2))
  in
  let (), rehydrate_ms = time_ms (fun () -> System.rehydrate sys2) in
  (* prove the reloaded rules still detect composite events *)
  ignore (Db.send db2 objs.(0) "set_salary" [ Value.Float 2. ]);
  ignore (Db.send db2 objs.(0) "change_income" [ Value.Float 3. ]);
  let fired =
    (System.rule_info sys2 (Option.get (System.find_rule sys2 "0")))
      .Sentinel.Rule.fired
  in
  row "  store: %d objects + %d composite-event rules, %d KiB serialized\n"
    n_objects n_rules
    (String.length text / 1024);
  row "  save %-12s load %-12s rehydrate %-12s\n" (fmt_ms save_ms)
    (fmt_ms load_ms) (fmt_ms rehydrate_ms);
  row "  reloaded rule fires on conjunction: %s\n"
    (if fired = 1 then "yes" else Printf.sprintf "NO (fired=%d)" fired)

(* ------------------------------------------------------------------------- *)
(* E10: inter-object, inter-class rule end-to-end (§2.1 Purchase)             *)
(* ------------------------------------------------------------------------- *)

let e10 () =
  header "E10: Purchase rule (conjunction spanning two classes), 50k ticks";
  let db = Db.create () in
  Workloads.Stock_market.install db;
  let sys = System.create db in
  let rng = Prng.create 6 in
  let market =
    Workloads.Stock_market.populate db rng ~stocks:100 ~indexes:5 ~portfolios:10
  in
  let ibm = market.stocks.(0) and dow = market.indexes.(0) in
  let parker = market.portfolios.(0) in
  System.register_condition sys "cheap-and-calm" (fun db _ ->
      Value.to_float (Db.get db ibm "price") < 80.
      && Value.to_float (Db.get db dow "change") < 3.4);
  System.register_action sys "buy" (fun db _ ->
      ignore (Db.send db parker "purchase" [ Value.Obj ibm; Value.Int 1 ]));
  ignore
    (System.create_rule sys ~name:"Purchase" ~monitor:[ ibm; dow ]
       ~event:
         (Expr.conj
            (Expr.eom ~cls:"stock" ~sources:[ ibm ] "set_price")
            (Expr.eom ~cls:"financial_info" ~sources:[ dow ] "set_value"))
       ~condition:"cheap-and-calm" ~action:"buy" ());
  let ops = Workloads.Stock_market.ticks rng market ~n:50_000 in
  Db.reset_stats db;
  let (), ms = time_ms (fun () -> Workloads.Dsl.apply_ops db ops) in
  let info = System.rule_info sys (Option.get (System.find_rule sys "Purchase")) in
  row "  50k market ticks in %s (%d events generated, %d deliveries)\n"
    (fmt_ms ms) (Db.stats db).events_generated (Db.stats db).notifications;
  row "  conjunction detected %d times, condition passed %d times\n"
    info.Sentinel.Rule.triggered info.Sentinel.Rule.fired;
  row "  Parker's holdings: %s shares\n"
    (Value.to_string (Db.get db parker "shares"))

(* ------------------------------------------------------------------------- *)
(* E11: shared event graph vs naive per-detector dispatch (§1 issue 3)        *)
(* ------------------------------------------------------------------------- *)

let e11 () =
  header "E11: event-graph routing vs feeding every detector (10k occurrences)";
  row "  %8s  %12s  %12s  %14s\n" "#rules" "naive" "graph" "leaf offers";
  let n_occurrences = 10_000 in
  List.iter
    (fun m ->
      let exprs =
        List.init m (fun i ->
            Expr.seq
              (Expr.eom (Printf.sprintf "open%d" (i mod m)))
              (Expr.eom (Printf.sprintf "close%d" (i mod m))))
      in
      let stream =
        List.init n_occurrences (fun i ->
            Oodb.Occurrence.make ~source:(Oid.of_int 1) ~source_class:"c"
              ~meth:(Printf.sprintf "open%d" (i mod m))
              ~modifier:Oodb.Types.After ~params:[] ~at:(i + 1))
      in
      (* naive: every occurrence offered to every detector *)
      let detectors =
        List.map (fun e -> Detector.create ~on_signal:(fun _ -> ()) e) exprs
      in
      let (), naive_ms =
        time_ms (fun () ->
            List.iter
              (fun occ -> List.iter (fun d -> Detector.feed d occ) detectors)
              stream)
      in
      (* graph: indexed by (method, modifier) *)
      let g = Events.Event_graph.create () in
      List.iter
        (fun e -> ignore (Events.Event_graph.subscribe g ~on_signal:(fun _ -> ()) e))
        exprs;
      let (), graph_ms =
        time_ms (fun () -> List.iter (Events.Event_graph.feed g) stream)
      in
      row "  %8d  %12s  %12s  %14d\n" m (fmt_ms naive_ms) (fmt_ms graph_ms)
        (Events.Event_graph.routed g))
    [ 10; 100; 1000 ]

(* ------------------------------------------------------------------------- *)
(* E12: secondary-index ablation (substrate completeness)                     *)
(* ------------------------------------------------------------------------- *)

let e12 () =
  header "E12: query cost -- scan vs hash index vs ordered index (50k objects)";
  let n = 50_000 in
  let build () =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let rng = Prng.create 8 in
    for i = 0 to n - 1 do
      ignore
        (Db.new_object db "employee"
           ~attrs:
             [
               ("name", Value.Str (string_of_int i));
               ("salary", Value.Float (Prng.float rng 10_000.));
             ])
    done;
    db
  in
  let eq_pred = Oodb.Query.Eq ("name", Value.Str "123") in
  let range_pred =
    Oodb.Query.And
      ( Oodb.Query.Ge ("salary", Value.Float 5000.),
        Oodb.Query.Lt ("salary", Value.Float 5050.) )
  in
  let measure db pred =
    let result = ref [] in
    let (), ms = time_ms (fun () -> result := Oodb.Query.select db "employee" pred) in
    (ms, List.length !result)
  in
  let db = build () in
  let scan_eq, hits_eq = measure db eq_pred in
  let scan_rg, hits_rg = measure db range_pred in
  Db.create_index db ~cls:"employee" ~attr:"name" ();
  Db.create_index db ~kind:`Ordered ~cls:"employee" ~attr:"salary" ();
  let ix_eq, hits_eq' = measure db eq_pred in
  let ix_rg, hits_rg' = measure db range_pred in
  assert (hits_eq = hits_eq' && hits_rg = hits_rg');
  row "  equality probe   scan %10s   hash index    %10s  (%d hit)\n"
    (fmt_ms scan_eq) (fmt_ms ix_eq) hits_eq;
  row "  range probe      scan %10s   ordered index %10s  (%d hits)\n"
    (fmt_ms scan_rg) (fmt_ms ix_rg) hits_rg

(* ------------------------------------------------------------------------- *)
(* E13: write-ahead-log overhead and recovery                                 *)
(* ------------------------------------------------------------------------- *)

let e13 () =
  header "E13: WAL overhead and recovery (10k transactional updates)";
  let n_updates = 10_000 in
  let build () =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let objs =
      Array.init 500 (fun i ->
          Db.new_object db "employee"
            ~attrs:[ ("name", Value.Str (string_of_int i)) ])
    in
    (db, objs)
  in
  let run db objs =
    let rng = Prng.create 9 in
    for _ = 1 to n_updates do
      match
        Transaction.atomically db (fun () ->
            Db.set db (Prng.choice rng objs) "salary"
              (Value.Float (Prng.float rng 100.)))
      with
      | Ok () -> ()
      | Error e -> raise e
    done
  in
  (let db, objs = build () in
   let (), ms = time_ms (fun () -> run db objs) in
   row "  no journal            %10s\n" (fmt_ms ms));
  let wal_path = Filename.temp_file "sentinel_bench" ".wal" in
  let snap_path = Filename.temp_file "sentinel_bench" ".db" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ wal_path; snap_path ])
    (fun () ->
      (* attach before populating so creations are in the log too; recovery
         below replays from an empty store (no snapshot needed) *)
      let db = Db.create () in
      Workloads.Payroll.install db;
      (* [~sync:false]: E13 measures journaling overhead (encoding + the
         write path), not the disk's fsync latency — E-recovery prices the
         durable path separately *)
      let wal = Oodb.Wal.attach ~sync:false db wal_path in
      let objs =
        Array.init 500 (fun i ->
            Db.new_object db "employee"
              ~attrs:[ ("name", Value.Str (string_of_int i)) ])
      in
      let (), ms = time_ms (fun () -> run db objs) in
      row "  WAL attached          %10s  (%d batches, %d entries)\n" (fmt_ms ms)
        (Oodb.Wal.batches_written wal)
        (Oodb.Wal.entries_written wal);
      Oodb.Wal.detach wal;
      let (db2, applied), rec_ms =
        time_ms (fun () ->
            let db2 = Db.create () in
            Workloads.Payroll.install db2;
            let applied = Oodb.Wal.replay db2 wal_path in
            (db2, applied))
      in
      ignore db2;
      row "  crash recovery        %10s  (%d batches replayed)\n" (fmt_ms rec_ms)
        applied)

(* ------------------------------------------------------------------------- *)
(* E14: coupling-mode ablation (§4.4 rule attribute `mode`)                   *)
(* ------------------------------------------------------------------------- *)

let e14 () =
  header "E14: coupling modes -- same rule, 5k transactional updates";
  row "  %-10s  %12s  %12s\n" "mode" "time" "actions run";
  let n_updates = 5_000 in
  List.iter
    (fun coupling ->
      let db = Db.create () in
      Workloads.Payroll.install db;
      let sys = System.create db in
      System.register_action sys "noop" (fun _ _ -> ());
      let objs =
        Array.init 100 (fun i ->
            Db.new_object db "employee"
              ~attrs:[ ("name", Value.Str (string_of_int i)) ])
      in
      ignore
        (System.create_rule sys ~coupling ~monitor_classes:[ "employee" ]
           ~event:(Expr.eom ~cls:"employee" "set_salary")
           ~condition:"true" ~action:"noop" ());
      let rng = Prng.create 10 in
      let (), ms =
        time_ms (fun () ->
            for _ = 1 to n_updates do
              match
                Transaction.atomically db (fun () ->
                    ignore
                      (Db.send db (Prng.choice rng objs) "set_salary"
                         [ Value.Float 1. ]))
              with
              | Ok () -> ()
              | Error e -> raise e
            done)
      in
      row "  %-10s  %12s  %12d\n"
        (Sentinel.Coupling.to_string coupling)
        (fmt_ms ms) (System.stats sys).actions_executed)
    Sentinel.Coupling.all

(* ------------------------------------------------------------------------- *)
(* E15: session isolation overhead (substrate ablation)                       *)
(* ------------------------------------------------------------------------- *)

let e15 () =
  header "E15: strict-2PL session overhead, 20k single-write transactions";
  let n = 20_000 in
  let fresh () =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let objs =
      Array.init 100 (fun i ->
          Db.new_object db "employee"
            ~attrs:[ ("name", Value.Str (string_of_int i)) ])
    in
    (db, objs)
  in
  (let db, objs = fresh () in
   let rng = Prng.create 11 in
   let (), ms =
     time_ms (fun () ->
         for _ = 1 to n do
           Db.set db (Prng.choice rng objs) "salary" (Value.Float 1.)
         done)
   in
   row "  raw Db.set (no isolation)        %10s\n" (fmt_ms ms));
  (let db, objs = fresh () in
   let rng = Prng.create 11 in
   let (), ms =
     time_ms (fun () ->
         for _ = 1 to n do
           match
             Transaction.atomically db (fun () ->
                 Db.set db (Prng.choice rng objs) "salary" (Value.Float 1.))
           with
           | Ok () -> ()
           | Error e -> raise e
         done)
   in
   row "  global transaction per write     %10s\n" (fmt_ms ms));
  let db, objs = fresh () in
  let m = Oodb.Session.manager db in
  let alice = Oodb.Session.session m and bob = Oodb.Session.session m in
  let rng = Prng.create 11 in
  let conflicts_before = Oodb.Session.conflicts m in
  let (), ms =
    time_ms (fun () ->
        for i = 1 to n do
          let s = if i mod 2 = 0 then alice else bob in
          Oodb.Session.begin_ s;
          (match
             Oodb.Session.set s (Prng.choice rng objs) "salary" (Value.Float 1.)
           with
          | () -> Oodb.Session.commit s
          | exception Oodb.Errors.Lock_conflict _ -> Oodb.Session.abort s)
        done)
  in
  row "  2PL session per write (2 clients)%10s  (%d conflicts)\n" (fmt_ms ms)
    (Oodb.Session.conflicts m - conflicts_before)

(* ------------------------------------------------------------------------- *)
(* E-routing: discrimination-indexed delivery vs per-rule broadcast           *)
(* ------------------------------------------------------------------------- *)

(* One rule matches the workload's method; the rest are class-level rules on
   a method the workload never calls.  Broadcast pays every rule's detector
   on every event; the index probes only the (method, modifier) bucket, so
   throughput should be flat in the number of non-matching rules. *)
let e_routing () =
  header "E-routing: indexed vs broadcast delivery, 10k payroll updates";
  let n_updates = 10_000 in
  let sweep = [ 1; 10; 100; 1000 ] in
  let run routing n_rules =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let sys = System.create ~routing db in
    System.register_action sys "noop" (fun _ _ -> ());
    ignore
      (System.create_rule sys ~name:"match"
         ~monitor_classes:[ "employee" ]
         ~event:(Expr.eom ~cls:"employee" "set_salary")
         ~condition:"true" ~action:"noop" ());
    for i = 2 to n_rules do
      ignore
        (System.create_rule sys
           ~name:(Printf.sprintf "miss-%d" i)
           ~monitor_classes:[ "employee" ]
           ~event:(Expr.eom ~cls:"employee" "change_income")
           ~condition:"true" ~action:"noop" ())
    done;
    let rng = Prng.create 42 in
    let pop = Workloads.Payroll.populate db rng ~managers:10 ~employees:90 in
    let objs = Array.append pop.managers pop.employees in
    System.reset_stats sys;
    let (), ms =
      time_ms (fun () ->
          for _ = 1 to n_updates do
            ignore
              (Db.send db (Prng.choice rng objs) "set_salary"
                 [ Value.Float 1. ])
          done)
    in
    let s = System.stats sys in
    ( float_of_int n_updates /. (ms /. 1000.),
      s.System.actions_executed,
      s.System.candidates_probed,
      s.System.leaves_offered,
      s.System.index_hits )
  in
  row "  %6s  %14s  %14s  %8s  %10s  %8s\n" "rules" "broadcast ev/s"
    "indexed ev/s" "speedup" "probed" "offered";
  let rows =
    List.map
      (fun n_rules ->
        let b_eps, b_fired, _, _, _ = run System.Broadcast n_rules in
        let i_eps, i_fired, probed, offered, hits = run System.Indexed n_rules in
        assert (b_fired = i_fired);
        let speedup = i_eps /. b_eps in
        row "  %6d  %14.0f  %14.0f  %7.1fx  %10d  %8d\n" n_rules b_eps i_eps
          speedup probed offered;
        (n_rules, b_eps, i_eps, speedup, probed, offered, hits))
      sweep
  in
  let oc = open_out "BENCH_routing.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-routing\",\n  \"updates\": %d,\n  \"population\": 100,\n  \"workload\": \"payroll set_salary; 1 matching rule + (n-1) non-matching class-level rules\",\n  \"rows\": [\n"
    n_updates;
  List.iteri
    (fun i (n_rules, b_eps, i_eps, speedup, probed, offered, hits) ->
      Printf.fprintf oc
        "    {\"rules\": %d, \"broadcast_events_per_sec\": %.0f, \
         \"indexed_events_per_sec\": %.0f, \"speedup\": %.2f, \
         \"candidates_probed\": %d, \"leaves_offered\": %d, \"index_hits\": \
         %d}%s\n"
        n_rules b_eps i_eps speedup probed offered hits
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  row "  wrote BENCH_routing.json\n"

(* ------------------------------------------------------------------------- *)
(* E-recovery: WAL replay throughput and the price of durability              *)
(* ------------------------------------------------------------------------- *)

let e_recovery () =
  header "E-recovery: WAL replay throughput (banking workload)";
  let module Mem = Oodb.Storage.Mem in
  let module Banking = Workloads.Banking in
  let log_path = "bank.wal" in
  let run_txns db txns =
    List.iter
      (fun (acct, meth, args) ->
        match
          Transaction.atomically db (fun () -> ignore (Db.send db acct meth args))
        with
        | Ok () -> ()
        | Error e -> raise e)
      txns
  in
  (* replay throughput over in-memory logs of increasing size *)
  let build n =
    let fs = Mem.create () in
    let storage = Mem.storage fs in
    let db = Db.create () in
    Banking.install db;
    let wal = Oodb.Wal.attach ~storage ~sync:false db log_path in
    let rng = Prng.create 11 in
    let accts = Banking.populate db rng ~accounts:100 in
    run_txns db (Banking.transactions rng accts ~n ());
    Oodb.Wal.detach wal;
    (fs, storage)
  in
  row "  %12s  %10s  %10s  %10s  %14s\n" "transactions" "log bytes" "batches"
    "replay" "batches/s";
  let rows =
    List.map
      (fun n ->
        let fs, storage = build n in
        let bytes = String.length (Mem.durable fs log_path) in
        let (applied, discarded), ms =
          time_ms (fun () ->
              let db2 = Db.create () in
              Banking.install db2;
              let applied = Oodb.Wal.replay ~storage db2 log_path in
              (applied, (Db.stats db2).Oodb.Types.wal_batches_discarded))
        in
        assert (discarded = 0);
        let bps = float_of_int applied /. (ms /. 1000.) in
        row "  %12d  %10d  %10d  %10s  %14.0f\n" n bytes applied (fmt_ms ms) bps;
        (n, bytes, applied, ms, bps))
      (if Sys.getenv_opt "BENCH_SMOKE" <> None then [ 500; 2_000 ]
       else [ 1_000; 5_000; 20_000 ])
  in
  (* the price of the fsync-per-commit durability contract, on the real fs *)
  let durability_n = 1_000 in
  let durable_run sync =
    let path = Filename.temp_file "sentinel_bench" ".wal" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        let db = Db.create () in
        Banking.install db;
        let wal = Oodb.Wal.attach ~sync db path in
        let rng = Prng.create 3 in
        let accts = Banking.populate db rng ~accounts:50 in
        let txns = Banking.transactions rng accts ~n:durability_n () in
        let (), ms = time_ms (fun () -> run_txns db txns) in
        let fsyncs = (Db.stats db).Oodb.Types.wal_fsyncs in
        Oodb.Wal.detach wal;
        (ms, fsyncs))
  in
  let sync_ms, sync_fsyncs = durable_run true in
  let nosync_ms, _ = durable_run false in
  row "  durability: %d txns   fsync-per-commit %10s (%d fsyncs)   buffered %10s\n"
    durability_n (fmt_ms sync_ms) sync_fsyncs (fmt_ms nosync_ms);
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  (* group commit: durable (sync:true) commits/sec on the real fs, with the
     coordinator coalescing 1 / 8 / 64 commits per WAL batch + fsync *)
  let group_n = if smoke then 300 else durability_n in
  let grouped_run g =
    let path = Filename.temp_file "sentinel_bench" ".wal" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        let db = Db.create () in
        Banking.install db;
        let wal =
          Oodb.Wal.attach ~sync:true
            ~group_commit:{ Oodb.Wal.max_batch = g; max_wait_us = max_int }
            db path
        in
        let rng = Prng.create 3 in
        let accts = Banking.populate db rng ~accounts:50 in
        Oodb.Wal.sync wal;
        let before_fsyncs = (Db.stats db).Oodb.Types.wal_fsyncs in
        let txns = Banking.transactions rng accts ~n:group_n () in
        let (), ms =
          time_ms (fun () ->
              run_txns db txns;
              Oodb.Wal.sync wal)
        in
        let fsyncs = (Db.stats db).Oodb.Types.wal_fsyncs - before_fsyncs in
        Oodb.Wal.detach wal;
        (float_of_int group_n /. (ms /. 1000.), ms, fsyncs))
  in
  row "  %12s  %12s  %10s  %8s\n" "group size" "commits/s" "time" "fsyncs";
  let group_rows =
    List.map
      (fun g ->
        let cps, ms, fsyncs = grouped_run g in
        row "  %12d  %12.0f  %10s  %8d\n" g cps (fmt_ms ms) fsyncs;
        (g, cps, ms, fsyncs))
      [ 1; 8; 64 ]
  in
  (* compaction: recovery time against the same log before and after
     [Wal.compact] folds it into a base snapshot *)
  let snap_path = "bank.db" in
  let recover_ms storage =
    let _, ms =
      time_ms (fun () ->
          let db2 = Db.create () in
          Banking.install db2;
          Oodb.Wal.recover ~storage db2 ~snapshot:snap_path ~wal:log_path)
    in
    ms
  in
  row "  %12s  %10s  %10s  %14s  %12s\n" "transactions" "wal bytes"
    "recover" "compacted wal" "recover(c)";
  let compact_rows =
    List.map
      (fun n ->
        let fs = Mem.create () in
        let storage = Mem.storage fs in
        let db = Db.create () in
        Banking.install db;
        let wal = Oodb.Wal.attach ~storage ~sync:false db log_path in
        let rng = Prng.create 11 in
        let accts = Banking.populate db rng ~accounts:100 in
        run_txns db (Banking.transactions rng accts ~n ());
        let bytes = String.length (Mem.durable fs log_path) in
        let ms_before = recover_ms storage in
        Oodb.Wal.compact wal ~snapshot:snap_path;
        Oodb.Wal.detach wal;
        let bytes_after = String.length (Mem.durable fs log_path) in
        let ms_after = recover_ms storage in
        row "  %12d  %10d  %10s  %14d  %12s\n" n bytes (fmt_ms ms_before)
          bytes_after (fmt_ms ms_after);
        (n, bytes, ms_before, bytes_after, ms_after))
      (if smoke then [ 500; 2_000 ] else [ 1_000; 5_000; 20_000 ])
  in
  (* incremental checkpoints: at 10% dirty, the delta's cost must track the
     dirty set, not the store *)
  row "  %12s  %8s  %12s  %10s  %12s  %10s\n" "objects" "dirty" "full bytes"
    "full ckpt" "delta bytes" "delta ckpt";
  let scaling_rows =
    List.map
      (fun n ->
        let fs = Mem.create () in
        let storage = Mem.storage fs in
        let db = Db.create () in
        Banking.install db;
        let wal = Oodb.Wal.attach ~storage ~sync:false db log_path in
        let rng = Prng.create 17 in
        let accts = Banking.populate db rng ~accounts:n in
        let (), full_ms =
          time_ms (fun () -> Oodb.Wal.checkpoint wal ~snapshot:snap_path)
        in
        let full_bytes = String.length (Mem.durable fs snap_path) in
        let dirty = max 1 (n / 10) in
        for i = 0 to dirty - 1 do
          Db.set db accts.(i) "balance" (Value.Float (float_of_int i))
        done;
        let (), delta_ms =
          time_ms (fun () ->
              Oodb.Wal.checkpoint ~mode:`Delta wal ~snapshot:snap_path)
        in
        let delta_bytes =
          String.length (Mem.durable fs (snap_path ^ ".delta-1"))
        in
        Oodb.Wal.detach wal;
        row "  %12d  %8d  %12d  %10s  %12d  %10s\n" n dirty full_bytes
          (fmt_ms full_ms) delta_bytes (fmt_ms delta_ms);
        (n, dirty, full_bytes, full_ms, delta_bytes, delta_ms))
      (if smoke then [ 500; 2_000 ] else [ 1_000; 5_000; 20_000 ])
  in
  let oc = open_out "BENCH_recovery.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-recovery\",\n  \"workload\": \"banking \
     deposits/withdrawals, one transaction per batch, 100 accounts\",\n\
    \  \"durability\": {\"transactions\": %d, \"fsync_per_commit_ms\": %.2f, \
     \"fsyncs\": %d, \"buffered_ms\": %.2f},\n  \"group_commit\": [\n"
    durability_n sync_ms sync_fsyncs nosync_ms;
  List.iteri
    (fun i (g, cps, ms, fsyncs) ->
      Printf.fprintf oc
        "    {\"group\": %d, \"commits_per_sec\": %.0f, \"ms\": %.2f, \
         \"fsyncs\": %d}%s\n"
        g cps ms fsyncs
        (if i = List.length group_rows - 1 then "" else ","))
    group_rows;
  Printf.fprintf oc "  ],\n  \"compaction\": [\n";
  List.iteri
    (fun i (n, bytes, ms_b, bytes_a, ms_a) ->
      Printf.fprintf oc
        "    {\"transactions\": %d, \"wal_bytes\": %d, \"recover_ms\": %.2f, \
         \"compacted_wal_bytes\": %d, \"recover_compacted_ms\": %.2f}%s\n"
        n bytes ms_b bytes_a ms_a
        (if i = List.length compact_rows - 1 then "" else ","))
    compact_rows;
  Printf.fprintf oc "  ],\n  \"checkpoint_scaling\": [\n";
  List.iteri
    (fun i (n, dirty, fb, fm, db_, dm) ->
      Printf.fprintf oc
        "    {\"objects\": %d, \"dirty\": %d, \"full_bytes\": %d, \
         \"full_ms\": %.2f, \"delta_bytes\": %d, \"delta_ms\": %.2f}%s\n"
        n dirty fb fm db_ dm
        (if i = List.length scaling_rows - 1 then "" else ","))
    scaling_rows;
  Printf.fprintf oc "  ],\n  \"rows\": [\n";
  List.iteri
    (fun i (n, bytes, applied, ms, bps) ->
      Printf.fprintf oc
        "    {\"transactions\": %d, \"log_bytes\": %d, \"batches_replayed\": \
         %d, \"replay_ms\": %.2f, \"batches_per_sec\": %.0f}%s\n"
        n bytes applied ms bps
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  row "  wrote BENCH_recovery.json\n";
  (* CI regression gates (smoke runs only): group commit must actually buy
     durable throughput, and the delta checkpoint must be priced by the
     dirty set, not the store. *)
  if smoke then begin
    let cps g =
      List.find_map
        (fun (g', cps, _, _) -> if g' = g then Some cps else None)
        group_rows
      |> Option.get
    in
    if cps 64 < 5. *. cps 1 then begin
      row "  FAIL: group-64 durable commits/sec below 5x group-1 (%.0f vs %.0f)\n"
        (cps 64) (cps 1);
      exit 1
    end
    else
      row "  bench-smoke gate: group-64 >= 5x group-1 durable commits/sec (ok)\n";
    let n, _, full_bytes, _, delta_bytes, _ =
      List.nth scaling_rows (List.length scaling_rows - 1)
    in
    if delta_bytes * 4 >= full_bytes then begin
      row
        "  FAIL: 10%%-dirty delta checkpoint not under 1/4 of the full \
         snapshot at %d objects (%d vs %d bytes)\n"
        n delta_bytes full_bytes;
      exit 1
    end
    else
      row
        "  bench-smoke gate: 10%%-dirty delta <= 1/4 full snapshot bytes (ok)\n"
  end

(* ------------------------------------------------------------------------- *)
(* E-containment: fault injection — throughput with 0/1/10% failing rules     *)
(* ------------------------------------------------------------------------- *)

(* 100 class-level rules share every event; a fraction of them have actions
   that always raise.  Under [Contain] every failure is absorbed and
   dead-lettered, so the failure overhead is paid on every event; under
   [Quarantine 3] the breakers trip after 3 failures each and throughput
   recovers to near the healthy baseline.  Both routings, so containment
   cost is visible relative to each delivery path. *)
let e_containment () =
  header "E-containment: fault-injected rule execution, 100 shared rules";
  (* BENCH_SMOKE: CI-sized run *)
  let n_updates =
    match Sys.getenv_opt "BENCH_SMOKE" with Some _ -> 500 | None -> 5_000
  in
  let n_rules = 100 in
  let run routing policy bad_pct =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let sys = System.create ~routing ~retry_backoff:(fun _ -> ()) db in
    System.register_action sys "noop" (fun _ _ -> ());
    System.register_action sys "explode" (fun _ _ -> failwith "boom");
    let n_bad = n_rules * bad_pct / 100 in
    for i = 1 to n_rules do
      ignore
        (System.create_rule sys
           ~name:(Printf.sprintf "r-%d" i)
           ~policy ~monitor_classes:[ "employee" ]
           ~event:(Expr.eom ~cls:"employee" "set_salary")
           ~condition:"true"
           ~action:(if i <= n_bad then "explode" else "noop")
           ())
    done;
    let rng = Prng.create 42 in
    let pop = Workloads.Payroll.populate db rng ~managers:10 ~employees:90 in
    let objs = Array.append pop.managers pop.employees in
    System.reset_stats sys;
    let (), ms =
      time_ms (fun () ->
          for _ = 1 to n_updates do
            ignore
              (Db.send db (Prng.choice rng objs) "set_salary"
                 [ Value.Float 1. ])
          done)
    in
    let s = System.stats sys in
    ( float_of_int n_updates /. (ms /. 1000.),
      s.System.contained_failures,
      s.System.quarantined_rules,
      s.System.dead_letters )
  in
  let configs =
    [
      (System.Indexed, "indexed"); (System.Broadcast, "broadcast");
    ]
  and policies =
    [
      (Error_policy.Contain, "contain");
      (Error_policy.Quarantine 3, "quarantine:3");
    ]
  and pcts = [ 0; 1; 10 ] in
  row "  %9s  %13s  %5s  %12s  %10s  %12s  %8s\n" "routing" "policy" "bad%"
    "events/s" "contained" "quarantined" "queued";
  let rows =
    List.concat_map
      (fun (routing, rname) ->
        List.concat_map
          (fun (policy, pname) ->
            List.map
              (fun pct ->
                let eps, contained, quarantined, queued =
                  run routing policy pct
                in
                row "  %9s  %13s  %4d%%  %12.0f  %10d  %12d  %8d\n" rname
                  pname pct eps contained quarantined queued;
                (rname, pname, pct, eps, contained, quarantined, queued))
              pcts)
          policies)
      configs
  in
  let oc = open_out "BENCH_containment.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-containment\",\n  \"updates\": %d,\n  \
     \"rules\": %d,\n  \"workload\": \"payroll set_salary; all rules share \
     every event; bad%% of rules have always-raising actions\",\n  \"rows\": \
     [\n"
    n_updates n_rules;
  List.iteri
    (fun i (rname, pname, pct, eps, contained, quarantined, queued) ->
      Printf.fprintf oc
        "    {\"routing\": \"%s\", \"policy\": \"%s\", \"failing_pct\": %d, \
         \"events_per_sec\": %.0f, \"contained_failures\": %d, \
         \"quarantined_rules\": %d, \"dead_letters\": %d}%s\n"
        rname pname pct eps contained quarantined queued
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  row "  wrote BENCH_containment.json\n"

(* ------------------------------------------------------------------------- *)
(* E-oltp: compiled slot layout vs per-object hashtable on get/set/send       *)
(* ------------------------------------------------------------------------- *)

(* Wide passive classes (10/100/1000 attributes), 1k instances, hot
   attribute in the middle of the layout.  Accessors go through the
   pre-resolved slot API — the path rule conditions, the DSL and the rule
   scheduler actually use — which degrades to the per-object hashtable in
   `Hashtbl mode, so the two rows compare the representations under the
   same call shape.  String-keyed access is reported alongside.  Under
   BENCH_SMOKE the run doubles as a CI regression gate: slot-mode get/set
   throughput below hashtbl-mode at 100 attributes fails the process. *)
let e_oltp () =
  header "E-oltp: slot layout vs hashtbl objects (get/set/send micro-bench)";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let rw_iters = if smoke then 100_000 else 1_000_000 in
  let send_iters = if smoke then 20_000 else 200_000 in
  let n_objects = if smoke then 200 else 1_000 in
  let sizes = [ 10; 100; 1000 ] in
  (* ops/s and heap bytes allocated per op for [iters] runs of [f] *)
  let measure iters f =
    let bytes0 = Gc.allocated_bytes () in
    let (), ms = time_ms (fun () -> for _ = 1 to iters do f () done) in
    ((float_of_int iters /. ms) *. 1000., (Gc.allocated_bytes () -. bytes0) /. float_of_int iters)
  in
  let layout_name = function `Slots -> "slots" | `Hashtbl -> "hashtbl" in
  let run layout size =
    let db = Db.create ~layout () in
    let hot = Printf.sprintf "a%d" (size / 2) in
    Db.define_class db
      (Schema.define "wide"
         ~attrs:(List.init size (fun i -> (Printf.sprintf "a%d" i, Value.Int 0)))
         ~methods:
           [ ("poke", Workloads.Dsl.setter hot); ("peek", Workloads.Dsl.getter hot) ]);
    (* object creation throughput first: it also populates the working set *)
    let objs = Array.make n_objects (Oid.of_int 0) in
    let create_ops, create_bytes =
      measure n_objects
        (let i = ref 0 in
         fun () ->
           objs.(!i) <- Db.new_object db "wide";
           incr i)
    in
    let slot = Db.resolve db "wide" hot in
    let next =
      let i = ref 0 in
      fun () ->
        let o = Array.unsafe_get objs (!i land (16 - 1)) in
        incr i;
        o
    in
    let one = Value.Int 1 in
    let get_ops, get_bytes =
      measure rw_iters (fun () -> ignore (Db.slot_get db (next ()) slot))
    in
    let set_ops, set_bytes =
      measure rw_iters (fun () -> Db.slot_set db (next ()) slot one)
    in
    let get_str_ops, _ = measure rw_iters (fun () -> ignore (Db.get db (next ()) hot)) in
    let set_str_ops, _ = measure rw_iters (fun () -> Db.set db (next ()) hot one) in
    let args = [ one ] in
    let send_ops, send_bytes =
      measure send_iters (fun () -> ignore (Db.send db (next ()) "poke" args))
    in
    row "  %7s %5d  get %11.0f/s (%3.0fB)  set %11.0f/s (%3.0fB)  send %10.0f/s (%3.0fB)\n"
      (layout_name layout) size get_ops get_bytes set_ops set_bytes send_ops
      send_bytes;
    ( layout_name layout, size, get_ops, get_bytes, set_ops, set_bytes,
      send_ops, send_bytes, get_str_ops, set_str_ops, create_ops, create_bytes )
  in
  row "  %7s %5s\n" "layout" "attrs";
  let rows =
    List.concat_map
      (fun size ->
        let h = run `Hashtbl size in
        let s = run `Slots size in
        [ h; s ])
      sizes
  in
  (* Query.matches contract: one object fetch per candidate, checked here so
     the bench fails loudly if select regresses to per-attribute fetches. *)
  let query_probes_ok =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let rng = Prng.create 7 in
    ignore (Workloads.Payroll.populate db rng ~managers:10 ~employees:90);
    Oodb.Query.reset_probes ();
    ignore
      (Oodb.Query.select db "employee"
         (Oodb.Query.And
            ( Oodb.Query.Ge ("salary", Value.Float 0.),
              Oodb.Query.Has "name" )));
    let ok = Oodb.Query.probes () = 100 in
    row "  query probes: %d object fetches for 100 candidates %s\n"
      (Oodb.Query.probes ())
      (if ok then "(ok)" else "(REGRESSION: expected 100)");
    ok
  in
  (* The E-routing heavy row (1000 rules) re-run on the slot layout, both
     routing modes, so the discrimination-index numbers are refreshed
     against interned occurrence keys. *)
  let routing_updates = if smoke then 1_000 else 10_000 in
  let routed routing =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let sys = System.create ~routing db in
    System.register_action sys "noop" (fun _ _ -> ());
    ignore
      (System.create_rule sys ~name:"match" ~monitor_classes:[ "employee" ]
         ~event:(Expr.eom ~cls:"employee" "set_salary")
         ~condition:"true" ~action:"noop" ());
    for i = 2 to 1000 do
      ignore
        (System.create_rule sys
           ~name:(Printf.sprintf "miss-%d" i)
           ~monitor_classes:[ "employee" ]
           ~event:(Expr.eom ~cls:"employee" "change_income")
           ~condition:"true" ~action:"noop" ())
    done;
    let rng = Prng.create 42 in
    let pop = Workloads.Payroll.populate db rng ~managers:10 ~employees:90 in
    let objs = Array.append pop.managers pop.employees in
    let (), ms =
      time_ms (fun () ->
          for _ = 1 to routing_updates do
            ignore (Db.send db (Prng.choice rng objs) "set_salary" [ Value.Float 1. ])
          done)
    in
    float_of_int routing_updates /. (ms /. 1000.)
  in
  let b_eps = routed System.Broadcast in
  let i_eps = routed System.Indexed in
  row "  1000-rule routing: broadcast %.0f ev/s, indexed %.0f ev/s (%.1fx)\n"
    b_eps i_eps (i_eps /. b_eps);
  (* Domain-parallel send throughput: one reactive rule per shard, sends
     routed by OID hash through a Shard_pool at shards={1,2,4}.  A 1-shard
     pool executes directly on the caller (no domain, no queue), so its row
     is the single-threaded engine plus the post wrapper — gated within 5%
     of the raw Db.send path measured in the same run.  The scaling gate
     only applies when the machine has cores to scale onto. *)
  let shard_send_iters = if smoke then 40_000 else 200_000 in
  let cores = Domain.recommended_domain_count () in
  let shard_init _pool _i =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let sys = System.create db in
    System.register_action sys "noop" (fun _ _ -> ());
    ignore
      (System.create_rule sys ~name:"watch" ~monitor_classes:[ "employee" ]
         ~event:(Expr.eom ~cls:"employee" "set_salary")
         ~condition:"true" ~action:"noop" ());
    sys
  in
  let shard_eps ?(supervised = false) n_shards =
    let supervision =
      if supervised then Some Sentinel.Shard_pool.default_supervision
      else None
    in
    let pool =
      Sentinel.Shard_pool.create ~shards:n_shards ?supervision
        ~init:shard_init ()
    in
    let per_shard = 256 / n_shards in
    let objs =
      Array.concat
        (List.init n_shards (fun i ->
             match
               Sentinel.Shard_pool.run_on pool i (fun sys ->
                   Array.init per_shard (fun _ ->
                       Db.new_object (System.db sys) "employee"))
             with
             | Ok a -> a
             | Error e -> raise e))
    in
    let args = [ Value.Float 1. ] in
    let mask = Array.length objs - 1 in
    let (), ms =
      time_ms (fun () ->
          for k = 0 to shard_send_iters - 1 do
            ignore
              (Sentinel.Shard_pool.post pool objs.(k land mask) "set_salary"
                 args)
          done;
          Sentinel.Shard_pool.drain pool)
    in
    Sentinel.Shard_pool.stop pool;
    float_of_int shard_send_iters /. (ms /. 1000.)
  in
  let direct_eps =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let sys = System.create db in
    System.register_action sys "noop" (fun _ _ -> ());
    ignore
      (System.create_rule sys ~name:"watch" ~monitor_classes:[ "employee" ]
         ~event:(Expr.eom ~cls:"employee" "set_salary")
         ~condition:"true" ~action:"noop" ());
    let objs = Array.init 256 (fun _ -> Db.new_object db "employee") in
    let args = [ Value.Float 1. ] in
    let (), ms =
      time_ms (fun () ->
          for k = 0 to shard_send_iters - 1 do
            ignore (Db.send db objs.(k land 255) "set_salary" args)
          done)
    in
    float_of_int shard_send_iters /. (ms /. 1000.)
  in
  let shard_rows = List.map (fun n -> (n, shard_eps n)) [ 1; 2; 4 ] in
  let shards1 = List.assoc 1 shard_rows in
  (* the supervised row prices the watchdog: same workload, same stride,
     plus a heartbeat-sweeping supervisor domain and the bounded-inbox
     accounting on every post *)
  let supervised2 = shard_eps ~supervised:true 2 in
  row "  direct (no pool) send %10.0f ev/s on %d core%s\n" direct_eps cores
    (if cores = 1 then "" else "s");
  List.iter
    (fun (n, eps) ->
      row "  shards=%d  send %10.0f ev/s  (%.2fx vs shards=1)\n" n eps
        (eps /. shards1))
    shard_rows;
  row "  shards=2 supervised %8.0f ev/s  (%.2fx vs unsupervised)\n"
    supervised2
    (supervised2 /. List.assoc 2 shard_rows);
  let oc = open_out "BENCH_oltp.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-oltp\",\n  \"rw_iters\": %d,\n  \"send_iters\": \
     %d,\n  \"objects\": %d,\n  \"workload\": \"wide passive class, hot \
     middle attribute via pre-resolved slot handles; bytes are heap bytes \
     allocated per op\",\n  \"query_probe_per_candidate\": %b,\n  \
     \"routing_1000_rules\": {\"broadcast_events_per_sec\": %.0f, \
     \"indexed_events_per_sec\": %.0f, \"speedup\": %.2f},\n  \
     \"cores\": %d,\n  \"shards\": {\"send_iters\": %d, \
     \"direct_send_events_per_sec\": %.0f, \"rows\": [%s], \
     \"supervised\": {\"shards\": 2, \"send_events_per_sec\": %.0f, \
     \"ratio_vs_unsupervised\": %.3f}},\n  \"rows\": [\n"
    rw_iters send_iters n_objects query_probes_ok b_eps i_eps (i_eps /. b_eps)
    cores shard_send_iters direct_eps
    (String.concat ", "
       (List.map
          (fun (n, eps) ->
            Printf.sprintf
              "{\"shards\": %d, \"send_events_per_sec\": %.0f, \
               \"speedup_vs_1\": %.2f}"
              n eps (eps /. shards1))
          shard_rows))
    supervised2
    (supervised2 /. List.assoc 2 shard_rows);
  List.iteri
    (fun i (lname, size, g, gb, s, sb, snd_, sndb, gs, ss, c, cb) ->
      Printf.fprintf oc
        "    {\"layout\": \"%s\", \"attrs\": %d, \"get_ops_per_sec\": %.0f, \
         \"get_bytes_per_op\": %.1f, \"set_ops_per_sec\": %.0f, \
         \"set_bytes_per_op\": %.1f, \"send_ops_per_sec\": %.0f, \
         \"send_bytes_per_op\": %.1f, \"get_string_ops_per_sec\": %.0f, \
         \"set_string_ops_per_sec\": %.0f, \"create_ops_per_sec\": %.0f, \
         \"create_bytes_per_obj\": %.0f}%s\n"
        lname size g gb s sb snd_ sndb gs ss c cb
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  row "  wrote BENCH_oltp.json\n";
  (* CI regression gate (smoke runs only): the compiled layout must not be
     slower than the representation it replaced. *)
  if smoke then begin
    let find lname size =
      List.find_map
        (fun (l, n, g, _, s, _, _, _, _, _, _, _) ->
          if l = lname && n = size then Some (g, s) else None)
        rows
      |> Option.get
    in
    let sg, ss = find "slots" 100 and hg, hs = find "hashtbl" 100 in
    if sg < hg || ss < hs then begin
      row "  FAIL: slot-mode throughput below hashtbl-mode at 100 attrs \
           (get %.0f vs %.0f, set %.0f vs %.0f)\n"
        sg hg ss hs;
      exit 1
    end
    else row "  bench-smoke gate: slots >= hashtbl at 100 attrs (ok)\n";
    (* shards axis gates: the 1-shard pool must not tax the single-threaded
       path, and adding a shard must actually scale where cores exist. *)
    if shards1 < 0.95 *. direct_eps then begin
      row "  FAIL: shards=1 pool send %.0f ev/s below 95%% of the direct \
           path %.0f ev/s\n"
        shards1 direct_eps;
      exit 1
    end
    else row "  bench-smoke gate: shards=1 within 5%% of direct sends (ok)\n";
    let shards2 = List.assoc 2 shard_rows in
    if cores >= 2 then begin
      if shards2 < 1.6 *. shards1 then begin
        row "  FAIL: shards=2 send %.0f ev/s below 1.6x shards=1 %.0f ev/s\n"
          shards2 shards1;
        exit 1
      end
      else row "  bench-smoke gate: shards=2 >= 1.6x shards=1 (ok)\n";
      (* supervision must be close to free on the happy path: the watchdog
         sweeps and the bounded-inbox bookkeeping ride on every send *)
      if supervised2 < 0.95 *. shards2 then begin
        row "  FAIL: supervised shards=2 send %.0f ev/s below 95%% of \
             unsupervised %.0f ev/s\n"
          supervised2 shards2;
        exit 1
      end
      else
        row "  bench-smoke gate: supervised shards=2 within 5%% of \
             unsupervised (ok)\n"
    end
    else
      row "  bench-smoke gate: shards=2 scaling not gated on %d core\n" cores
  end

(* ------------------------------------------------------------------------- *)
(* E-obs: observability overhead (metrics registry + cascade tracer)          *)
(* ------------------------------------------------------------------------- *)

(* Every instrumented call site shares one disabled-path shape: a
   [!Obs.armed] load and a branch, then a tail call of the raw
   implementation.  There is no un-instrumented binary to diff against, so
   the disabled overhead is *derived*: the measured cost of that gate
   primitive, times the gates an operation crosses, over the operation's own
   latency.  The off-vs-off spread of repeated runs is printed next to it as
   the noise floor — wall-clock diffs in the low single digits at these op
   rates are dominated by it, which is exactly why the CI gate runs on the
   derived number.  Enabled overhead (metrics, tracing) is measured
   directly. *)
let e_obs () =
  header "E-obs: observability overhead (metrics + tracing on the oltp micro-bench)";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let iters = if smoke then 200_000 else 1_000_000 in
  let send_iters = if smoke then 40_000 else 200_000 in
  let gate_iters = if smoke then 10_000_000 else 50_000_000 in
  let n_objects = 200 in
  Obs.Metrics.disable ();
  Obs.Trace.disable ();
  let db = Db.create () in
  let size = 100 in
  let hot = Printf.sprintf "a%d" (size / 2) in
  Db.define_class db
    (Schema.define "wide"
       ~attrs:(List.init size (fun i -> (Printf.sprintf "a%d" i, Value.Int 0)))
       ~methods:[ ("poke", Workloads.Dsl.setter hot) ]);
  let objs = Array.init n_objects (fun _ -> Db.new_object db "wide") in
  let slot = Db.resolve db "wide" hot in
  let next =
    let i = ref 0 in
    fun () ->
      let o = Array.unsafe_get objs (!i land (16 - 1)) in
      incr i;
      o
  in
  let one = Value.Int 1 in
  (* best of 3: overhead ratios compare each mode's attainable rate, not its
     scheduling jitter *)
  let ops iters f =
    let best = ref 0. in
    for _ = 1 to 3 do
      let (), ms = time_ms (fun () -> for _ = 1 to iters do f () done) in
      best := Float.max !best (float_of_int iters /. ms *. 1000.)
    done;
    !best
  in
  let get () = ignore (Db.slot_get db (next ()) slot) in
  let set () = Db.slot_set db (next ()) slot one in
  let args = [ one ] in
  let send () = ignore (Db.send db (next ()) "poke" args) in
  let mode name =
    let g = ops iters get and s = ops iters set and d = ops send_iters send in
    row "  %-12s get %11.0f/s  set %11.0f/s  send %10.0f/s\n" name g s d;
    (g, s, d)
  in
  let g0, s0, d0 = mode "off" in
  let g1, s1, d1 = mode "off-again" in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let gm, sm, dm = mode "metrics-on" in
  Obs.Metrics.disable ();
  Obs.Trace.enable ();
  Obs.Trace.clear ();
  let gt, st, dt = mode "trace-on" in
  Obs.Trace.disable ();
  (* The gate primitive (one ref load + branch), isolated from its
     measurement loop by subtracting an empty loop of the same trip count;
     best of 3 for both, and floored at a conservative 0.1 ns so a noisy
     subtraction cannot flatter the estimate to zero. *)
  let sink = ref 0 in
  let loop_ns body =
    let best = ref Float.infinity in
    for _ = 1 to 3 do
      let (), ms = time_ms (fun () -> for _ = 1 to gate_iters do body () done) in
      best := Float.min !best (ms *. 1e6 /. float_of_int gate_iters)
    done;
    !best
  in
  let empty_ns = loop_ns (fun () -> ()) in
  let gated_ns = loop_ns (fun () -> if !Obs.armed then incr sink) in
  let gate_ns = Float.max 0.1 (gated_ns -. empty_ns) in
  (* Gates crossed per operation: slot_get/slot_set are one wrapper each; a
     send crosses its own wrapper plus the slot write inside the method, with
     one spare for the occurrence path of reactive receivers. *)
  let derived base gates = gate_ns *. float_of_int gates /. (1e9 /. base) *. 100. in
  let dg = derived g0 1 and ds = derived s0 1 and dd = derived d0 3 in
  let noise base v = Float.abs (v -. base) /. base *. 100. in
  let enabled base v = (base /. v -. 1.) *. 100. in
  row "  gate primitive: %.2f ns/check\n" gate_ns;
  row "  disabled overhead (derived): get %.3f%%  set %.3f%%  send %.3f%%\n" dg ds dd;
  row "  off-vs-off noise floor:      get %.1f%%  set %.1f%%  send %.1f%%\n"
    (noise g0 g1) (noise s0 s1) (noise d0 d1);
  row "  metrics-on overhead:         get %.1f%%  set %.1f%%  send %.1f%%\n"
    (enabled g0 gm) (enabled s0 sm) (enabled d0 dm);
  row "  trace-on overhead:           get %.1f%%  set %.1f%%  send %.1f%%\n"
    (enabled g0 gt) (enabled s0 st) (enabled d0 dt);
  (* A representative cascade for the CI artifact: banking deposit->withdraw
     in deferred coupling inside one explicit transaction, so the trace
     spans send, routing, detection, scheduling and firing. *)
  let sample_db = Db.create () in
  let sys = System.create sample_db in
  Workloads.Banking.install sample_db;
  let rng = Prng.create 7 in
  let accounts = Workloads.Banking.populate sample_db rng ~accounts:4 in
  System.register_action sys "noop" (fun _ _ -> ());
  ignore
    (System.create_rule sys ~name:"depwit" ~coupling:Sentinel.Coupling.Deferred
       ~monitor_classes:[ Workloads.Banking.account_class ]
       ~event:
         (Expr.seq
            (Expr.eom ~cls:Workloads.Banking.account_class "deposit")
            (Expr.bom ~cls:Workloads.Banking.account_class "withdraw"))
       ~condition:"true" ~action:"noop" ());
  Obs.Trace.enable ();
  Obs.Trace.clear ();
  (match
     Transaction.atomically sample_db (fun () ->
         ignore (Db.send sample_db accounts.(0) "deposit" [ Value.Float 10. ]);
         ignore (Db.send sample_db accounts.(0) "withdraw" [ Value.Float 5. ]))
   with
  | Ok () -> ()
  | Error e -> raise e);
  Obs.Trace.disable ();
  let sample = Obs.Trace.to_chrome_json () in
  let oc = open_out "TRACE_sample.json" in
  output_string oc sample;
  close_out oc;
  row "  wrote TRACE_sample.json (%d spans)\n" (List.length (Obs.Trace.spans ()));
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-obs\",\n  \"rw_iters\": %d,\n  \"send_iters\": \
     %d,\n  \"workload\": \"E-oltp wide class (100 attrs, slot layout); \
     disabled overhead derived as gate_ns x gates / op_ns; enabled overhead \
     measured best-of-3\",\n  \"gate_ns\": %.3f,\n  \
     \"disabled_overhead_pct\": {\"get\": %.4f, \"set\": %.4f, \"send\": \
     %.4f},\n  \"noise_floor_pct\": {\"get\": %.2f, \"set\": %.2f, \"send\": \
     %.2f},\n  \"metrics_on_overhead_pct\": {\"get\": %.2f, \"set\": %.2f, \
     \"send\": %.2f},\n  \"trace_on_overhead_pct\": {\"get\": %.2f, \"set\": \
     %.2f, \"send\": %.2f},\n  \"rows\": [\n\
    \    {\"mode\": \"off\", \"get_ops_per_sec\": %.0f, \"set_ops_per_sec\": \
     %.0f, \"send_ops_per_sec\": %.0f},\n\
    \    {\"mode\": \"metrics\", \"get_ops_per_sec\": %.0f, \
     \"set_ops_per_sec\": %.0f, \"send_ops_per_sec\": %.0f},\n\
    \    {\"mode\": \"trace\", \"get_ops_per_sec\": %.0f, \
     \"set_ops_per_sec\": %.0f, \"send_ops_per_sec\": %.0f}\n  ]\n}\n"
    iters send_iters gate_ns dg ds dd (noise g0 g1) (noise s0 s1) (noise d0 d1)
    (enabled g0 gm) (enabled s0 sm) (enabled d0 dm) (enabled g0 gt)
    (enabled s0 st) (enabled d0 dt) g0 s0 d0 gm sm dm gt st dt;
  close_out oc;
  row "  wrote BENCH_obs.json\n";
  (* CI regression gate (smoke runs only): the disabled instrumentation must
     stay within the 2%% budget on every hot operation. *)
  if smoke then begin
    if dg > 2. || ds > 2. || dd > 2. then begin
      row "  FAIL: derived disabled overhead exceeds 2%% \
           (get %.3f%%, set %.3f%%, send %.3f%%)\n" dg ds dd;
      exit 1
    end
    else row "  bench-smoke gate: disabled overhead <= 2%% on get/set/send (ok)\n"
  end

(* ------------------------------------------------------------------------- *)
(* E-chaos: the price of supervision, restart latency, flood accounting      *)
(* ------------------------------------------------------------------------- *)

(* Three questions about the supervised shard pool: what the watchdog and
   the bounded-inbox accounting cost on the happy path (supervised vs plain
   throughput, best-of-3 to shave scheduler noise), how fast a killed shard
   is back (detection + teardown + fresh init, median of repeated kills),
   and whether the flood counters stay honest under overload (every post is
   accepted, shed, or parked — none unaccounted). *)
let e_chaos () =
  header "E-chaos: shard supervision overhead, restart latency, flood accounting";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let iters = if smoke then 20_000 else 100_000 in
  let cores = Domain.recommended_domain_count () in
  let init _pool _i =
    let db = Db.create () in
    Workloads.Payroll.install db;
    let sys = System.create db in
    System.register_action sys "noop" (fun _ _ -> ());
    ignore
      (System.create_rule sys ~name:"watch" ~monitor_classes:[ "employee" ]
         ~event:(Expr.eom ~cls:"employee" "set_salary")
         ~condition:"true" ~action:"noop" ());
    sys
  in
  let eps ~supervised =
    let supervision =
      if supervised then Some Sentinel.Shard_pool.default_supervision
      else None
    in
    let pool = Sentinel.Shard_pool.create ~shards:2 ?supervision ~init () in
    let objs =
      Array.concat
        (List.init 2 (fun i ->
             match
               Sentinel.Shard_pool.run_on pool i (fun sys ->
                   Array.init 128 (fun _ ->
                       Db.new_object (System.db sys) "employee"))
             with
             | Ok a -> a
             | Error e -> raise e))
    in
    let args = [ Value.Float 1. ] in
    let (), ms =
      time_ms (fun () ->
          for k = 0 to iters - 1 do
            ignore
              (Sentinel.Shard_pool.post pool objs.(k land 255) "set_salary"
                 args)
          done;
          Sentinel.Shard_pool.drain pool)
    in
    Sentinel.Shard_pool.stop pool;
    float_of_int iters /. (ms /. 1000.)
  in
  let best f = max (f ()) (max (f ()) (f ())) in
  let plain = best (fun () -> eps ~supervised:false) in
  let supervised = best (fun () -> eps ~supervised:true) in
  let ratio = supervised /. plain in
  row "  shards=2 plain      %10.0f ev/s (best of 3)\n" plain;
  row "  shards=2 supervised %10.0f ev/s (best of 3, %.2fx)\n" supervised
    ratio;
  (* restart latency: kill -> heartbeat detects the dead worker -> teardown
     -> fresh init -> ready.  Median of 5 kills. *)
  let restart_ms =
    let pool =
      Sentinel.Shard_pool.create ~shards:2
        ~supervision:
          {
            Sentinel.Shard_pool.default_supervision with
            heartbeat_interval_ms = 2;
            (* repeated deliberate kills must not exhaust the budget and
               degrade the shard mid-measurement *)
            max_restarts = 100;
          }
        ~init ()
    in
    let kills = 5 in
    let samples =
      Array.init kills (fun k ->
          let t0 = Obs.Clock.now_ns () in
          (match Sentinel.Shard_pool.kill pool 0 with
          | Ok () -> ()
          | Error e ->
            failwith (Sentinel.Shard_pool.error_to_string e));
          let rec wait () =
            let st = Sentinel.Shard_pool.stats pool in
            if
              st.Sentinel.Shard_pool.shard_restarts.(0) >= k + 1
              && Sentinel.Shard_pool.shard_state pool 0 = `Ready
            then ()
            else begin
              Unix.sleepf 0.0005;
              wait ()
            end
          in
          wait ();
          (Obs.Clock.now_ns () -. t0) /. 1e6)
    in
    Sentinel.Shard_pool.drain pool;
    Sentinel.Shard_pool.stop pool;
    Array.sort compare samples;
    samples.(kills / 2)
  in
  row "  restart latency (kill -> ready, median of 5): %.1f ms\n" restart_ms;
  (* flood accounting: hold the worker, overflow a bounded inbox, and check
     the books — posted = accepted + shed, and every accepted job runs *)
  let flood_posted = 10_000 in
  let accepted, shed_count, ran =
    let pool =
      Sentinel.Shard_pool.create ~shards:2 ~inbox_capacity:256
        ~backpressure:Sentinel.Shard_pool.Shed_newest ~init ()
    in
    let gate = Atomic.make false in
    (match
       Sentinel.Shard_pool.post_on pool 0 (fun _ ->
           while not (Atomic.get gate) do
             Domain.cpu_relax ()
           done)
     with
    | Ok () -> ()
    | Error e -> failwith (Sentinel.Shard_pool.error_to_string e));
    let ran = Atomic.make 0 in
    let accepted = ref 0 and shed = ref 0 in
    for _ = 1 to flood_posted do
      match Sentinel.Shard_pool.post_on pool 0 (fun _ -> Atomic.incr ran) with
      | Ok () -> incr accepted
      | Error _ -> incr shed
    done;
    Atomic.set gate true;
    Sentinel.Shard_pool.drain pool;
    let st = Sentinel.Shard_pool.stats pool in
    Sentinel.Shard_pool.stop pool;
    ignore st;
    (!accepted, !shed, Atomic.get ran)
  in
  row "  flood: %d posted = %d accepted + %d shed; %d accepted jobs ran\n"
    flood_posted accepted shed_count ran;
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-chaos\",\n  \"cores\": %d,\n  \"send_iters\": \
     %d,\n  \"plain_events_per_sec\": %.0f,\n  \
     \"supervised_events_per_sec\": %.0f,\n  \
     \"supervision_overhead_ratio\": %.3f,\n  \"restart_ms\": %.1f,\n  \
     \"flood\": {\"posted\": %d, \"accepted\": %d, \"shed\": %d, \"ran\": \
     %d}\n}\n"
    cores iters plain supervised ratio restart_ms flood_posted accepted
    shed_count ran;
  close_out oc;
  row "  wrote BENCH_chaos.json\n";
  if smoke then begin
    if accepted + shed_count <> flood_posted || ran <> accepted then begin
      row "  FAIL: flood accounting leaked jobs (%d posted, %d accepted, \
           %d shed, %d ran)\n"
        flood_posted accepted shed_count ran;
      exit 1
    end
    else row "  bench-smoke gate: flood accounting exact (ok)\n";
    if restart_ms > 1_000. then begin
      row "  FAIL: restart latency %.1f ms exceeds 1000 ms\n" restart_ms;
      exit 1
    end
    else row "  bench-smoke gate: restart under a second (ok)\n";
    if cores >= 2 then begin
      if ratio < 0.90 then begin
        row "  FAIL: supervised throughput %.2fx of plain (floor 0.90)\n"
          ratio;
        exit 1
      end
      else
        row "  bench-smoke gate: supervision overhead within 10%% (ok)\n"
    end
    else
      row "  bench-smoke gate: supervision overhead not gated on %d core\n"
        cores
  end

(* ------------------------------------------------------------------------- *)
(* E-ingest: batched ingestion pipeline                                       *)
(* ------------------------------------------------------------------------- *)

(* The batching claim: one transaction scope, one observability envelope,
   one WAL commit (+fsync), one route-key probe per distinct key and — across
   shards — one mailbox push per destination, amortized over the whole
   batch; the differential suite (test/test_ingest.ml) proves the semantics
   are untouched.  Cells are batch={1,8,64,256} x shards={1,2,4} over the
   seeded stock_market tick feed, every shard journaling fsync-per-commit
   like a durable streaming ingester.  Under BENCH_SMOKE the batch=64
   amortization and the cross-shard push coalescing are regression gates. *)
let e_ingest () =
  header
    "E-ingest: batched ingestion (vectorized send, route coalescing, \
     cross-shard flush)";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let events = if smoke then 2_048 else 16_384 in
  let tickers = 64 in
  let run ~shards ~batch =
    let paths =
      Array.init shards (fun _ -> Filename.temp_file "sentinel_ingest" ".wal")
    in
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths)
      (fun () ->
        let fired = Array.init shards (fun _ -> Atomic.make 0) in
        let pool =
          (* fsync-per-commit consumers drain slowly at batch=1: block on a
             full inbox for as long as it takes rather than shedding the
             measured workload *)
          Sentinel.Shard_pool.create ~shards
            ~backpressure:(Block { max_wait_ms = 600_000 })
            ~init:(fun _ i ->
              let db = Db.create () in
              Workloads.Stock_market.install db;
              let sys = System.create db in
              ignore (System.attach_wal ~sync:true sys paths.(i));
              System.register_action sys "count" (fun _ _ ->
                  Atomic.incr fired.(i));
              ignore
                (System.create_rule sys ~name:"price-watch"
                   ~monitor_classes:[ Workloads.Stock_market.stock_class ]
                   ~event:
                     (Expr.eom ~cls:Workloads.Stock_market.stock_class
                        "set_price")
                   ~condition:"true" ~action:"count" ());
              sys)
            ()
        in
        let per = max 1 (tickers / shards) in
        let markets =
          List.init shards (fun i ->
              match
                Sentinel.Shard_pool.run_on pool i (fun sys ->
                    Workloads.Stock_market.populate (System.db sys)
                      (Prng.create (11 + i))
                      ~stocks:per ~indexes:0 ~portfolios:0)
              with
              | Ok m -> m
              | Error e -> raise e)
        in
        let market =
          {
            Workloads.Stock_market.stocks =
              Array.concat
                (List.map
                   (fun m -> m.Workloads.Stock_market.stocks)
                   markets);
            indexes = [||];
            portfolios = [||];
          }
        in
        let n_tickers = Array.length market.Workloads.Stock_market.stocks in
        let n_batches = max 1 (events / batch) in
        let feed =
          Workloads.Stock_market.tick_batches (Prng.create 17) market
            ~tickers:n_tickers ~rate:batch ~batches:n_batches
        in
        let total = n_batches * batch in
        let (), ms =
          time_ms (fun () ->
              List.iter
                (fun evs ->
                  match Sentinel.Shard_pool.ingest pool evs with
                  | Ok () -> ()
                  | Error e ->
                    failwith (Sentinel.Shard_pool.error_to_string e))
                feed;
              Sentinel.Shard_pool.drain pool)
        in
        let st = Sentinel.Shard_pool.stats pool in
        let coalesced = ref 0 and fsyncs = ref 0 in
        for i = 0 to shards - 1 do
          let s = System.stats (Sentinel.Shard_pool.system pool i) in
          coalesced := !coalesced + s.System.coalesced_probes;
          fsyncs := !fsyncs + s.System.wal_fsyncs;
          match
            Sentinel.Shard_pool.run_on pool i (fun sys ->
                System.detach_wal sys)
          with
          | Ok () -> ()
          | Error e -> raise e
        done;
        let failed =
          Array.fold_left ( + ) 0 st.Sentinel.Shard_pool.shard_failed
        in
        Sentinel.Shard_pool.stop pool;
        (* in-bench parity smoke: exactly one firing per event, no contained
           failures — the cheap shadow of the differential suite *)
        let total_fired =
          Array.fold_left (fun a c -> a + Atomic.get c) 0 fired
        in
        if failed <> 0 || total_fired <> total then
          failwith
            (Printf.sprintf
               "E-ingest parity: %d fired / %d failed for %d events"
               total_fired failed total);
        ( float_of_int total /. (ms /. 1000.),
          !coalesced,
          st.Sentinel.Shard_pool.mpsc_pushes,
          !fsyncs,
          total ))
  in
  row "  %6s %6s  %12s  %10s  %10s  %8s  %8s\n" "shards" "batch" "ev/s"
    "vs batch=1" "coalesced" "pushes" "fsyncs";
  let cells =
    List.concat_map
      (fun shards ->
        let rows =
          List.map
            (fun batch ->
              let eps, coalesced, pushes, fsyncs, total =
                run ~shards ~batch
              in
              (shards, batch, eps, coalesced, pushes, fsyncs, total))
            [ 1; 8; 64; 256 ]
        in
        let base =
          match rows with (_, _, eps, _, _, _, _) :: _ -> eps | [] -> 1.
        in
        List.iter
          (fun (_, batch, eps, coalesced, pushes, fsyncs, _) ->
            row "  %6d %6d  %12.0f  %9.2fx  %10d  %8d  %8d\n" shards batch
              eps (eps /. base) coalesced pushes fsyncs)
          rows;
        rows)
      [ 1; 2; 4 ]
  in
  let eps_of shards batch =
    List.find_map
      (fun (s, b, eps, _, _, _, _) ->
        if s = shards && b = batch then Some eps else None)
      cells
    |> Option.get
  in
  let pushes_of shards batch =
    List.find_map
      (fun (s, b, _, _, pushes, _, _) ->
        if s = shards && b = batch then Some pushes else None)
      cells
    |> Option.get
  in
  let oc = open_out "BENCH_ingest.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-ingest\",\n  \"events\": %d,\n  \"tickers\": \
     %d,\n  \"workload\": \"stock_market tick batches (seeded PRNG), one \
     reactive set_price rule per shard, per-shard WAL attached \
     fsync-per-commit; Shard_pool.ingest = one transaction + one trace + \
     one route-coalescing scope per shard sub-batch, flushed as one \
     mailbox message per destination\",\n  \"rows\": [\n"
    events tickers;
  List.iteri
    (fun i (shards, batch, eps, coalesced, pushes, fsyncs, total) ->
      Printf.fprintf oc
        "    {\"shards\": %d, \"batch\": %d, \"events\": %d, \
         \"events_per_sec\": %.0f, \"speedup_vs_batch1\": %.2f, \
         \"coalesced_probes\": %d, \"mpsc_pushes\": %d, \"fsyncs\": %d}%s\n"
        shards batch total eps
        (eps /. eps_of shards 1)
        coalesced pushes fsyncs
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  row "  wrote BENCH_ingest.json\n";
  if smoke then begin
    (* the tentpole acceptance gate: batching must amortize the per-event
       fixed costs at least 3x on one shard *)
    let b1 = eps_of 1 1 and b64 = eps_of 1 64 in
    if b64 < 3. *. b1 then begin
      row "  FAIL: batch=64 ingest %.0f ev/s below 3x batch=1 %.0f ev/s\n"
        b64 b1;
      exit 1
    end
    else
      row "  bench-smoke gate: batch=64 >= 3x batch=1 on one shard (%.1fx, \
           ok)\n"
        (b64 /. b1);
    (* and the cross-shard flush must coalesce mailbox traffic >= 8x *)
    let p1 = pushes_of 4 1 and p64 = pushes_of 4 64 in
    if p1 < 8 * p64 then begin
      row "  FAIL: batch=64 mailbox pushes %d not >= 8x fewer than batch=1 \
           %d\n"
        p64 p1;
      exit 1
    end
    else
      row "  bench-smoke gate: cross-shard pushes coalesced %dx at batch=64 \
           (ok)\n"
        (p1 / max 1 p64)
  end

(* ------------------------------------------------------------------------- *)
(* E-net: streaming ingestion over the wire protocol — a TCP server fronting
   the pool, a fleet of protocol clients, and the slow-consumer books        *)
(* ------------------------------------------------------------------------- *)

let e_net () =
  header "E-net: wire-protocol streaming ingestion (clients x batch x shards)";
  let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None in
  let events = if smoke then 2_048 else 12_288 in
  let tickers = 64 in
  let run ~shards ~clients ~batch =
    let paths =
      Array.init shards (fun _ -> Filename.temp_file "sentinel_net" ".wal")
    in
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths)
      (fun () ->
        let fired = Array.init shards (fun _ -> Atomic.make 0) in
        let pool =
          (* group-commit journal + the pool's durability hook: a shard
             seals (and fsyncs) whenever its mailbox drains, so a lone
             serial client pays one fsync per flush while a concurrent
             fleet shares one fsync per drained backlog — the axis the
             16-client gate measures *)
          Sentinel.Shard_pool.create ~shards
            ~backpressure:(Block { max_wait_ms = 600_000 })
            ~on_idle:(fun _ sys ->
              match System.wal sys with
              | Some _ ->
                (* commit delay: linger before sealing so a concurrent
                   fleet's staggered arrivals pile up behind one fsync;
                   a lone serial client just pays the window *)
                (try Unix.sleepf 0.0003 with Unix.Unix_error _ -> ());
                System.sync_wal sys
              | None -> ())
            ~init:(fun _ i ->
              let db = Db.create () in
              Workloads.Stock_market.install db;
              let sys = System.create db in
              ignore
                (System.attach_wal ~sync:true
                   ~group_commit:
                     { Oodb.Wal.max_batch = 256; max_wait_us = 50_000 }
                   sys paths.(i));
              System.register_action sys "count" (fun _ _ ->
                  Atomic.incr fired.(i));
              ignore
                (System.create_rule sys ~name:"price-watch"
                   ~monitor_classes:[ Workloads.Stock_market.stock_class ]
                   ~event:
                     (Expr.eom ~cls:Workloads.Stock_market.stock_class
                        "set_price")
                   ~condition:"true" ~action:"count" ());
              sys)
            ()
        in
        let per = max 1 (tickers / shards) in
        let markets =
          List.init shards (fun i ->
              match
                Sentinel.Shard_pool.run_on pool i (fun sys ->
                    Workloads.Stock_market.populate (System.db sys)
                      (Prng.create (31 + i))
                      ~stocks:per ~indexes:0 ~portfolios:0)
              with
              | Ok m -> m
              | Error e -> raise e)
        in
        let market =
          {
            Workloads.Stock_market.stocks =
              Array.concat
                (List.map
                   (fun m -> m.Workloads.Stock_market.stocks)
                   markets);
            indexes = [||];
            portfolios = [||];
          }
        in
        let n_tickers = Array.length market.Workloads.Stock_market.stocks in
        let server = Net.Server.create ~pool () in
        let port = Net.Server.port server in
        let per_client = max 1 (events / clients) in
        let n_batches = max 1 (per_client / batch) in
        let total = clients * n_batches * batch in
        let rtt_sum = Array.make clients 0. in
        let rtt_n = Array.make clients 0 in
        let worker k () =
          let client =
            Net.Sentinel_client.connect
              ~client_name:(Printf.sprintf "bench-%d" k)
              ~buffer_max:(batch + 1) ~host:"127.0.0.1" ~port ()
          in
          Fun.protect
            ~finally:(fun () -> Net.Sentinel_client.close client)
            (fun () ->
              let feed =
                Workloads.Stock_market.tick_batches
                  (Prng.create (101 + k))
                  market ~tickers:n_tickers ~rate:batch ~batches:n_batches
              in
              List.iter
                (fun evs ->
                  List.iter (Net.Sentinel_client.send client) evs;
                  let t0 = Unix.gettimeofday () in
                  ignore (Net.Sentinel_client.flush client);
                  rtt_sum.(k) <- rtt_sum.(k) +. (Unix.gettimeofday () -. t0);
                  rtt_n.(k) <- rtt_n.(k) + 1)
                feed)
        in
        let (), ms =
          time_ms (fun () ->
              let threads =
                List.init clients (fun k -> Thread.create (worker k) ())
              in
              List.iter Thread.join threads;
              Sentinel.Shard_pool.drain pool)
        in
        let st = Net.Server.stats server in
        Net.Server.stop server;
        for i = 0 to shards - 1 do
          match
            Sentinel.Shard_pool.run_on pool i (fun sys ->
                System.detach_wal sys)
          with
          | Ok () -> ()
          | Error e -> raise e
        done;
        Sentinel.Shard_pool.stop pool;
        (* wire parity: every event sent was acked, ingested and fired its
           rule exactly once — the cheap shadow of the differential suite *)
        let total_fired =
          Array.fold_left (fun a c -> a + Atomic.get c) 0 fired
        in
        if total_fired <> total || st.Net.Server.events_ingested <> total then
          failwith
            (Printf.sprintf
               "E-net parity: %d fired / %d ingested for %d events sent"
               total_fired st.Net.Server.events_ingested total);
        let rtt_ms =
          let s = Array.fold_left ( +. ) 0. rtt_sum in
          let n = Array.fold_left ( + ) 0 rtt_n in
          1000. *. s /. float_of_int (max 1 n)
        in
        (float_of_int total /. (ms /. 1000.), rtt_ms, total))
  in
  row "  %6s %7s %6s  %12s  %11s  %10s\n" "shards" "clients" "batch" "ev/s"
    "vs 1-client" "flush-rtt";
  let cells =
    List.concat_map
      (fun shards ->
        List.concat_map
          (fun batch ->
            let rows =
              List.map
                (fun clients ->
                  let eps, rtt, total = run ~shards ~clients ~batch in
                  (shards, clients, batch, eps, rtt, total))
                [ 1; 4; 16 ]
            in
            let base =
              match rows with (_, _, _, eps, _, _) :: _ -> eps | [] -> 1.
            in
            List.iter
              (fun (shards, clients, batch, eps, rtt, _) ->
                row "  %6d %7d %6d  %12.0f  %10.2fx  %10s\n" shards clients
                  batch eps (eps /. base) (fmt_ms rtt))
              rows;
            rows)
          [ 1; 64 ])
      [ 1; 4 ]
  in
  (* slow-consumer mini-run: a raw subscriber that never reads its socket
     against a tiny outlet — the shed books must balance exactly *)
  let shed_run () =
    let pool =
      Sentinel.Shard_pool.create ~shards:2
        ~init:(fun _ _ ->
          let db = Db.create () in
          Workloads.Stock_market.install db;
          System.create db)
        ()
    in
    Fun.protect
      ~finally:(fun () -> Sentinel.Shard_pool.stop pool)
      (fun () ->
        let markets =
          List.init 2 (fun i ->
              match
                Sentinel.Shard_pool.run_on pool i (fun sys ->
                    Workloads.Stock_market.populate (System.db sys)
                      (Prng.create (41 + i))
                      ~stocks:8 ~indexes:0 ~portfolios:0)
              with
              | Ok m -> m
              | Error e -> raise e)
        in
        let market =
          {
            Workloads.Stock_market.stocks =
              Array.concat
                (List.map
                   (fun m -> m.Workloads.Stock_market.stocks)
                   markets);
            indexes = [||];
            portfolios = [||];
          }
        in
        let server =
          Net.Server.create ~outlet_capacity:4
            ~outlet_policy:Sentinel.Shard_pool.Shed_newest ~so_sndbuf:4096
            ~pool ()
        in
        Fun.protect
          ~finally:(fun () -> Net.Server.stop server)
          (fun () ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.setsockopt_int fd Unix.SO_RCVBUF 4096;
                Unix.connect fd
                  (Unix.ADDR_INET
                     ( Unix.inet_addr_of_string "127.0.0.1",
                       Net.Server.port server ));
                ignore
                  (Net.Frame.write_fd fd
                     (Net.Frame.Hello
                        {
                          version = Net.Frame.version;
                          client = "bench-lazy";
                        }));
                (match Net.Frame.read_fd fd with
                | Net.Frame.Hello_ack _, _ -> ()
                | _ -> failwith "E-net shed: expected Hello_ack");
                ignore
                  (Net.Frame.write_fd fd
                     (Net.Frame.Subscribe
                        {
                          name = "bench-lazy";
                          classes = [ Workloads.Stock_market.stock_class ];
                          expr =
                            Events.Codec.encode
                              (Expr.eom
                                 ~cls:Workloads.Stock_market.stock_class
                                 "set_price");
                        }));
                (match Net.Frame.read_fd fd with
                | Net.Frame.Sub_ack _, _ -> ()
                | _ -> failwith "E-net shed: expected Sub_ack");
                (* bury the non-reading subscriber in notifications *)
                let feed =
                  Workloads.Stock_market.tick_batches (Prng.create 5) market
                    ~tickers:16 ~rate:100 ~batches:40
                in
                List.iter
                  (fun evs ->
                    match Sentinel.Shard_pool.ingest pool evs with
                    | Ok () -> ()
                    | Error e ->
                      failwith (Sentinel.Shard_pool.error_to_string e))
                  feed;
                Sentinel.Shard_pool.drain pool;
                let deadline = Unix.gettimeofday () +. 5. in
                let rec wait () =
                  let s = Net.Server.stats server in
                  if
                    s.Net.Server.notifications_produced
                    = s.Net.Server.notifications_enqueued
                      + s.Net.Server.notifications_shed
                      + s.Net.Server.notifications_parked
                    && s.Net.Server.notifications_produced = 4_000
                  then s
                  else if Unix.gettimeofday () > deadline then s
                  else begin
                    Thread.delay 0.01;
                    wait ()
                  end
                in
                let s = wait () in
                ( s.Net.Server.notifications_produced,
                  s.Net.Server.notifications_enqueued,
                  s.Net.Server.notifications_shed,
                  s.Net.Server.notifications_parked ))))
  in
  let produced, enqueued, shed, parked = shed_run () in
  let exact = produced = enqueued + shed + parked in
  row "  slow consumer: produced %d = enqueued %d + shed %d + parked %d (%s)\n"
    produced enqueued shed parked
    (if exact then "exact" else "LEAK");
  let eps_of shards clients batch =
    List.find_map
      (fun (s, c, b, eps, _, _) ->
        if s = shards && c = clients && b = batch then Some eps else None)
      cells
    |> Option.get
  in
  let oc = open_out "BENCH_net.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E-net\",\n  \"events\": %d,\n  \"tickers\": %d,\n\
    \  \"workload\": \"stock_market tick batches (seeded PRNG) sent by N \
     concurrent protocol clients over TCP to one server fronting an \
     N-shard pool, per-shard WAL attached fsync-per-commit, one reactive \
     set_price rule per shard; each client flush = one Send_many frame = \
     one partitioned cross-shard ingest, RTT measured per flush\",\n\
    \  \"rows\": [\n"
    events tickers;
  List.iteri
    (fun i (shards, clients, batch, eps, rtt, total) ->
      Printf.fprintf oc
        "    {\"shards\": %d, \"clients\": %d, \"batch\": %d, \"events\": \
         %d, \"events_per_sec\": %.0f, \"flush_rtt_ms\": %.3f, \
         \"speedup_vs_1client\": %.2f}%s\n"
        shards clients batch total eps rtt
        (eps /. eps_of shards 1 batch)
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc
    "  ],\n\
    \  \"shed_accounting\": {\"produced\": %d, \"enqueued\": %d, \"shed\": \
     %d, \"parked\": %d, \"exact\": %b}\n\
     }\n"
    produced enqueued shed parked exact;
  close_out oc;
  row "  wrote BENCH_net.json\n";
  if smoke then begin
    (* gate 1: a client fleet must actually pipeline — 16 clients at
       batch=1 on the 4-shard pool >= 2x one RTT-bound client *)
    let c1 = eps_of 4 1 1 and c16 = eps_of 4 16 1 in
    if c16 < 2. *. c1 then begin
      row "  FAIL: 16 clients %.0f ev/s below 2x 1 client %.0f ev/s\n" c16 c1;
      exit 1
    end
    else
      row "  bench-smoke gate: 16 clients >= 2x 1 client at batch=1, 4 \
           shards (%.1fx, ok)\n"
        (c16 /. c1);
    (* gate 2: the slow-consumer books must balance to the notification *)
    if (not exact) || shed = 0 then begin
      row "  FAIL: shed accounting produced %d <> enqueued %d + shed %d + \
           parked %d (or nothing shed)\n"
        produced enqueued shed parked;
      exit 1
    end
    else
      row "  bench-smoke gate: slow-consumer shed accounting exact (%d shed, \
           ok)\n"
        shed
  end

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("routing", e_routing);
    ("oltp", e_oltp);
    ("recovery", e_recovery);
    ("containment", e_containment);
    ("obs", e_obs);
    ("chaos", e_chaos);
    ("ingest", e_ingest);
    ("net", e_net);
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) ->
      List.filter (fun (name, _) -> List.mem name names) experiments
    | _ -> experiments
  in
  if selected = [] then begin
    prerr_endline "unknown experiment; available:";
    List.iter (fun (name, _) -> prerr_endline ("  " ^ name)) experiments;
    exit 1
  end;
  print_endline "Sentinel reproduction benchmarks (see EXPERIMENTS.md)";
  List.iter (fun (_, f) -> f ()) selected;
  print_newline ()
