(* sentinel-cli: drive the Sentinel active-OODB from the command line.

     sentinel-cli generate out.db --scenario market --objects 100 --ops 10000
     sentinel-cli inspect out.db
     sentinel-cli demo purchase
     sentinel-cli scenarios *)

module Db = Oodb.Db
module Value = Oodb.Value
module System = Sentinel.System
module Expr = Events.Expr

let install_all db =
  Workloads.Payroll.install db;
  Workloads.Stock_market.install db;
  Workloads.Hospital.install db;
  Workloads.Banking.install db

let scenario_names = [ "market"; "payroll"; "hospital"; "banking" ]

(* Build a database for a scenario, attach a representative rule, run the
   workload, and return (db, sys). *)
let run_scenario name ~seed ~objects ~ops =
  let db = Db.create () in
  let sys = System.create db in
  install_all db;
  let rng = Workloads.Prng.create seed in
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  (match name with
  | "market" ->
    let market =
      Workloads.Stock_market.populate db rng ~stocks:objects ~indexes:3
        ~portfolios:5
    in
    ignore
      (System.create_rule sys ~name:"price-watch"
         ~monitor_classes:[ Workloads.Stock_market.stock_class ]
         ~event:(Expr.eom ~cls:Workloads.Stock_market.stock_class "set_price")
         ~condition:"true" ~action:"count" ());
    Workloads.Dsl.apply_ops db (Workloads.Stock_market.ticks rng market ~n:ops)
  | "payroll" ->
    let pop =
      Workloads.Payroll.populate db rng ~managers:(max 1 (objects / 10))
        ~employees:objects
    in
    ignore
      (System.create_rule sys ~name:"salary-watch"
         ~monitor_classes:[ Workloads.Payroll.employee_class ]
         ~event:(Expr.eom ~cls:Workloads.Payroll.employee_class "set_salary")
         ~condition:"true" ~action:"count" ());
    Workloads.Dsl.apply_ops db (Workloads.Payroll.salary_updates rng pop ~n:ops)
  | "hospital" ->
    let ward =
      Workloads.Hospital.populate db rng ~patients:objects ~physicians:3
    in
    ignore
      (System.create_rule sys ~name:"vitals-watch"
         ~monitor_classes:[ Workloads.Hospital.patient_class ]
         ~event:(Expr.eom ~cls:Workloads.Hospital.patient_class "record_vitals")
         ~condition:"true" ~action:"count" ());
    Workloads.Dsl.apply_ops db (Workloads.Hospital.vitals_stream rng ward ~n:ops ())
  | "banking" ->
    let accounts = Workloads.Banking.populate db rng ~accounts:objects in
    ignore
      (System.create_rule sys ~name:"depwit-watch"
         ~monitor_classes:[ Workloads.Banking.account_class ]
         ~event:
           (Expr.seq
              (Expr.eom ~cls:Workloads.Banking.account_class "deposit")
              (Expr.bom ~cls:Workloads.Banking.account_class "withdraw"))
         ~condition:"true" ~action:"count" ());
    Workloads.Dsl.apply_ops db
      (Workloads.Banking.transactions rng accounts ~n:ops ())
  | other -> failwith (Printf.sprintf "unknown scenario %S" other));
  (db, sys, !fired)

let cmd_generate path scenario seed objects ops =
  let db, sys, fired = run_scenario scenario ~seed ~objects ~ops in
  Oodb.Persist.save db path;
  let s = Db.stats db in
  Printf.printf
    "scenario %s: %d sends, %d events, %d notifications, rule fired %d times\n"
    scenario s.sends s.events_generated s.notifications fired;
  Printf.printf "saved %s (%d rules, %d objects)\n" path
    (List.length (System.rules sys))
    (List.length
       (List.concat_map (fun c -> Db.extent db ~deep:false c) (Db.classes db)))

let cmd_inspect path =
  let db = Db.create () in
  let sys = System.create db in
  install_all db;
  (* Re-register the function names generate's rules refer to, so
     rehydration can re-link them (inert here). *)
  System.register_action sys "count" (fun _ _ -> ());
  Oodb.Persist.load db path;
  System.rehydrate sys;
  Printf.printf "database %s\n" path;
  Format.printf "%a" Oodb.Introspect.pp_summary db;
  let show_class cls =
    let n = List.length (Db.extent db ~deep:false cls) in
    if n > 0 then Printf.printf "  %-16s %6d instance(s)\n" cls n
  in
  List.iter show_class (List.sort compare (Db.classes db));
  List.iter
    (fun oid ->
      let r = System.rule_info sys oid in
      Printf.printf
        "  rule %-20s %s  coupling=%s context=%s priority=%d enabled=%b \
         fired=%d policy=%s%s\n"
        r.Sentinel.Rule.name
        (Events.Expr.to_string r.Sentinel.Rule.event)
        (Sentinel.Coupling.to_string r.Sentinel.Rule.coupling)
        (Events.Context.to_string (Sentinel.Rule.context r))
        r.Sentinel.Rule.priority r.Sentinel.Rule.enabled r.Sentinel.Rule.fired
        (Sentinel.Error_policy.to_string r.Sentinel.Rule.policy)
        (if r.Sentinel.Rule.quarantined then " QUARANTINED" else ""))
    (System.rules sys);
  let dls = System.dead_letters sys in
  if dls <> [] then Printf.printf "  %d dead letter(s) queued\n" (List.length dls)

let cmd_demo scenario =
  let _db, _sys, fired = run_scenario scenario ~seed:42 ~objects:50 ~ops:2000 in
  Printf.printf "demo %s: rule fired %d time(s) over 2000 operations\n" scenario
    fired

let cmd_scenarios () =
  List.iter print_endline scenario_names

(* Load declarative rules (Rule_dsl syntax) into a persisted store, run an
   optional workload against it, and save the result. *)
let cmd_rules db_path rules_path ops =
  let db = Db.create () in
  let sys = System.create db in
  install_all db;
  let fired = ref 0 in
  System.register_action sys "count" (fun _ _ -> incr fired);
  System.register_action sys "report" (fun _db inst ->
      Printf.printf "  rule fired: %s\n"
        (Format.asprintf "%a" Events.Detector.pp_instance inst));
  if Sys.file_exists db_path then begin
    Oodb.Persist.load db db_path;
    System.rehydrate sys
  end;
  let created = Sentinel.Rule_dsl.load_file sys rules_path in
  Printf.printf "loaded %d rule(s) from %s:\n" (List.length created) rules_path;
  List.iter
    (fun oid -> print_string (Sentinel.Rule_dsl.render sys oid))
    created;
  if ops > 0 then begin
    (* drive whichever workload classes have instances *)
    let rng = Workloads.Prng.create 42 in
    let send_random cls meth args_of =
      match Db.extent db ~deep:true cls with
      | [] -> false
      | objs ->
        let arr = Array.of_list objs in
        for _ = 1 to ops do
          ignore (Db.send db (Workloads.Prng.choice rng arr) meth (args_of rng))
        done;
        true
    in
    let drove =
      send_random "employee" "set_salary" (fun rng ->
          [ Value.Float (Workloads.Prng.float rng 10_000.) ])
      || send_random "stock" "set_price" (fun rng ->
             [ Value.Float (Workloads.Prng.float rng 200.) ])
      || send_random "account" "deposit" (fun rng ->
             [ Value.Float (Workloads.Prng.float rng 500.) ])
    in
    if drove then Printf.printf "workload done; 'count' actions ran %d time(s)\n" !fired
  end;
  Oodb.Persist.save db db_path;
  Printf.printf "saved %s\n" db_path

let cmd_query db_path cls pred_text =
  let db = Db.create () in
  let sys = System.create db in
  install_all db;
  System.register_action sys "count" (fun _ _ -> ());
  Oodb.Persist.load db db_path;
  System.rehydrate sys;
  let pred = Oodb.Query_parser.parse pred_text in
  let hits = Oodb.Query.select db cls pred in
  Printf.printf "%d object(s) match %s\n" (List.length hits)
    (Oodb.Query_parser.to_syntax pred);
  List.iter
    (fun oid ->
      Printf.printf "  %s %s:" (Oodb.Oid.to_string oid) (Db.class_of db oid);
      List.iter
        (fun (name, v) -> Printf.printf " %s=%s" name (Value.to_string v))
        (Db.attrs db oid);
      print_newline ())
    hits

let load_store path =
  let db = Db.create () in
  let sys = System.create db in
  install_all db;
  System.register_action sys "count" (fun _ _ -> ());
  System.register_action sys "report" (fun _ _ -> ());
  Oodb.Persist.load db path;
  System.rehydrate sys;
  (db, sys)

let cmd_verify path =
  let db, _sys = load_store path in
  match Oodb.Verify.check ~quiescent:true db with
  | Ok () ->
    Printf.printf "%s: integrity OK\n" path
  | Error problems ->
    Printf.printf "%s: %d problem(s)\n" path (List.length problems);
    List.iter (fun p -> print_endline ("  " ^ p)) problems;
    exit 1

(* Dead-letter queue maintenance: failed firings contained by a rule's
   error policy wait in the store as __dead_letter objects until an
   operator lists, replays, or purges them. *)
let cmd_dlq path action =
  let db, sys = load_store path in
  match action with
  | "list" ->
    let dls = System.dead_letters sys in
    Printf.printf "%s: %d dead letter(s)\n" path (List.length dls);
    List.iter
      (fun dl ->
        let get a = Db.get db dl a in
        Printf.printf "  %s rule=%s attempts=%d at=%d error=%s\n"
          (Oodb.Oid.to_string dl)
          (Value.to_str (get Sentinel.Sentinel_classes.a_name))
          (Value.to_int (get Sentinel.Sentinel_classes.a_attempts))
          (Value.to_int (get Sentinel.Sentinel_classes.a_at))
          (Value.to_str (get Sentinel.Sentinel_classes.a_error));
        Printf.printf "    instance %s\n"
          (Value.to_str (get Sentinel.Sentinel_classes.a_instance)))
      dls
  | "replay" ->
    let dls = System.dead_letters sys in
    let ok = ref 0 and failed = ref 0 in
    List.iter
      (fun dl ->
        match System.replay_dead_letter sys dl with
        | Ok () -> incr ok
        | Error e ->
          incr failed;
          Printf.printf "  %s still failing: %s\n" (Oodb.Oid.to_string dl)
            (Printexc.to_string e))
      dls;
    Printf.printf "replayed %d dead letter(s): %d succeeded, %d still failing\n"
      (List.length dls) !ok !failed;
    Oodb.Persist.save db path;
    Printf.printf "saved %s\n" path;
    if !failed > 0 then exit 1
  | "purge" ->
    let n = System.purge_dead_letters sys in
    Oodb.Persist.save db path;
    Printf.printf "purged %d dead letter(s); saved %s\n" n path
  | other ->
    Printf.eprintf "dlq action %S? (list|replay|purge)\n" other;
    exit 2

let cmd_reinstate path rule_name =
  let db, sys = load_store path in
  match System.find_rule sys rule_name with
  | None ->
    Printf.eprintf "%s: no rule named %S\n" path rule_name;
    exit 1
  | Some oid ->
    System.reinstate sys oid;
    Oodb.Persist.save db path;
    Printf.printf "rule %s reinstated; saved %s\n" rule_name path

let cmd_analyze path dot =
  let _db, sys = load_store path in
  Format.printf "%a" Sentinel.Analysis.pp_report sys;
  match dot with
  | Some out ->
    Out_channel.with_open_text out (fun oc ->
        output_string oc (Sentinel.Analysis.to_dot sys));
    Printf.printf "triggering graph written to %s\n" out
  | None -> ()

(* The paper's §7 back-of-the-envelope comparison, as a feature matrix. *)
let cmd_compare () =
  let rows =
    [
      ("", "Ode", "ADAM", "Sentinel");
      ("rule specification time", "class definition", "runtime", "both");
      ("rules as first-class objects", "no", "yes", "yes");
      ("events as first-class objects", "no (expressions)", "partial", "yes");
      ("composite events (and/or/seq)", "yes", "no", "yes (+ any/not/A/P/plus)");
      ("events spanning classes", "no", "no", "yes");
      ("events spanning instances", "no", "no", "yes");
      ("instance-level rules", "bind/activate", "disabled-for list", "subscription");
      ("class-level rules", "yes", "active-class", "class subscription");
      ("rule checking dispatch", "inlined per class", "central scan", "subscription");
      ("add rule to live class", "recompile", "cheap", "cheap");
      ("monitored object unaware of rules", "no", "no", "yes (event interface)");
      ("parameter contexts", "no", "no", "recent/chronicle/continuous/cumulative");
      ("coupling modes", "immediate", "immediate", "immediate/deferred/detached");
      ("rules on rules", "no", "no", "yes");
    ]
  in
  List.iteri
    (fun i (a, b, c, d) ->
      Printf.printf "%-32s | %-18s | %-18s | %s\n" a b c d;
      if i = 0 then print_endline (String.make 110 '-'))
    rows

(* Run a scenario with the metrics registry enabled and print the per-stage
   counter/latency table next to the system counters. *)
let cmd_metrics scenario seed objects ops =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Obs.Trace.enable ();
  Obs.Trace.clear ();
  let _db, sys, fired = run_scenario scenario ~seed ~objects ~ops in
  let s = System.stats sys in
  Printf.printf "scenario %s: %d ops, rule fired %d time(s)\n" scenario ops fired;
  Printf.printf "dispatched=%d conditions_checked=%d actions_executed=%d\n"
    s.System.dispatched s.System.conditions_checked s.System.actions_executed;
  (* spans_dropped is the ring's own eviction count; deriving drops as
     recorded minus retained over-reports once the ring has been cleared *)
  Printf.printf "cascades traced=%d spans recorded=%d dropped=%d\n\n"
    (Obs.Trace.traces_started ())
    (Obs.Trace.spans_recorded ())
    (Obs.Trace.spans_dropped ());
  print_string (Obs.Metrics.report ());
  Obs.Trace.disable ();
  Obs.Metrics.disable ()

(* Trace N banking transactions.  The rule is the deposit->withdraw sequence
   in *deferred* coupling and each transaction is explicit, so one cascade
   crosses every stage: the triggering send, indexed routing, composite
   detection, the deferred enqueue, the scheduler batch at commit, and the
   firing — all under one trace id. *)
let cmd_trace txns out =
  let db = Db.create () in
  let sys = System.create db in
  install_all db;
  let rng = Workloads.Prng.create 42 in
  let accounts = Workloads.Banking.populate db rng ~accounts:8 in
  System.register_action sys "count" (fun _ _ -> ());
  ignore
    (System.create_rule sys ~name:"depwit-watch"
       ~coupling:Sentinel.Coupling.Deferred
       ~monitor_classes:[ Workloads.Banking.account_class ]
       ~event:
         (Expr.seq
            (Expr.eom ~cls:Workloads.Banking.account_class "deposit")
            (Expr.bom ~cls:Workloads.Banking.account_class "withdraw"))
       ~condition:"true" ~action:"count" ());
  Obs.Trace.enable ();
  Obs.Trace.clear ();
  for _ = 1 to max 1 txns do
    let acct = Workloads.Prng.choice rng accounts in
    match
      Oodb.Transaction.atomically db (fun () ->
          ignore (Db.send db acct "deposit" [ Value.Float 100. ]);
          ignore (Db.send db acct "withdraw" [ Value.Float 50. ]))
    with
    | Ok () -> ()
    | Error e -> raise e
  done;
  Obs.Trace.disable ();
  let spans = Obs.Trace.spans () in
  (* Export the last cascade that reached a firing; fall back to everything
     if none did. *)
  let chosen =
    match
      List.rev
        (List.filter (fun s -> String.equal s.Obs.Trace.sp_name "fire") spans)
    with
    | f :: _ -> Obs.Trace.find_trace f.Obs.Trace.sp_trace
    | [] -> spans
  in
  let json = Obs.Trace.to_chrome_json ~spans:chosen () in
  match out with
  | Some path ->
    Out_channel.with_open_text path (fun oc -> output_string oc json);
    Printf.printf
      "%d span(s) across %d trace(s), %d dropped; one trace (%d span(s)) \
       written to %s\n"
      (List.length spans)
      (Obs.Trace.traces_started ())
      (Obs.Trace.spans_dropped ())
      (List.length chosen) path
  | None -> print_endline json

(* Domain-parallel execution: run the payroll send workload through an
   OID-sharded pool and report per-shard activity.  --shards 1 degenerates
   to inline execution on the calling domain, the baseline the bench's
   scaling gate compares against.  Multi-shard pools run supervised:
   --kill demonstrates a mid-batch crash being detected and restarted, and
   --status renders the per-shard supervision table. *)
let cmd_shards shards objects ops status kill =
  if shards < 1 then failwith "need at least one shard";
  let fired = Array.init shards (fun _ -> Atomic.make 0) in
  let supervision =
    if shards > 1 then
      Some
        {
          Sentinel.Shard_pool.default_supervision with
          heartbeat_interval_ms = 2;
        }
    else None
  in
  let pool =
    Sentinel.Shard_pool.create ~shards ?supervision
      ~init:(fun _pool i ->
        let db = Db.create () in
        Workloads.Payroll.install db;
        let sys = System.create db in
        System.register_action sys "count" (fun _ _ -> Atomic.incr fired.(i));
        ignore
          (System.create_rule sys ~name:"salary-watch"
             ~monitor_classes:[ Workloads.Payroll.employee_class ]
             ~event:(Expr.eom ~cls:Workloads.Payroll.employee_class "set_salary")
             ~condition:"true" ~action:"count" ());
        sys)
      ()
  in
  let per = max 1 (objects / shards) in
  let oids =
    Array.concat
      (List.init shards (fun i ->
           match
             Sentinel.Shard_pool.run_on pool i (fun sys ->
                 Array.init per (fun _ ->
                     Db.new_object (System.db sys)
                       Workloads.Payroll.employee_class))
           with
           | Ok os -> os
           | Error e -> raise e))
  in
  let n = Array.length oids in
  let t0 = Obs.Clock.now_ns () in
  let post_one k =
    match
      Sentinel.Shard_pool.post pool oids.(k mod n) "set_salary"
        [ Value.Float (float_of_int k) ]
    with
    | Ok () -> ()
    | Error e -> failwith (Sentinel.Shard_pool.error_to_string e)
  in
  let half = ops / 2 in
  for k = 0 to half - 1 do
    post_one k
  done;
  (match kill with
  | Some victim ->
    if shards < 2 then failwith "--kill needs --shards > 1";
    if victim < 0 || victim >= shards then failwith "--kill: no such shard";
    (match Sentinel.Shard_pool.kill pool victim with
    | Ok () -> ()
    | Error e -> failwith (Sentinel.Shard_pool.error_to_string e));
    let deadline = Unix.gettimeofday () +. 5. in
    let rec wait () =
      let st = Sentinel.Shard_pool.stats pool in
      if
        st.Sentinel.Shard_pool.shard_restarts.(victim) >= 1
        && Sentinel.Shard_pool.shard_state pool victim = `Ready
      then ()
      else if Unix.gettimeofday () > deadline then
        failwith "killed shard was not restarted in time"
      else begin
        Unix.sleepf 0.002;
        wait ()
      end
    in
    wait ();
    Printf.printf "killed shard %d mid-batch; supervisor restarted it\n"
      victim
  | None -> ());
  for k = half to ops - 1 do
    post_one k
  done;
  Sentinel.Shard_pool.drain pool;
  let dt = (Obs.Clock.now_ns () -. t0) /. 1e9 in
  let st = Sentinel.Shard_pool.stats pool in
  let parked = Sentinel.Shard_pool.dead_letter_count pool in
  Sentinel.Shard_pool.stop pool;
  Printf.printf
    "%d send(s) over %d object(s) across %d shard(s): %.0f ev/s, %d \
     forwarded cross-shard\n"
    ops n shards
    (float_of_int ops /. dt)
    st.Sentinel.Shard_pool.forwarded;
  Array.iteri
    (fun i c ->
      Printf.printf "  shard %d: processed=%d failed=%d fired=%d\n" i
        st.Sentinel.Shard_pool.shard_processed.(i)
        st.Sentinel.Shard_pool.shard_failed.(i)
        (Atomic.get c))
    fired;
  if status then begin
    Printf.printf "supervision status%s:\n"
      (if shards = 1 then " (inline pool: no supervisor)" else "");
    Printf.printf "  %-5s  %-10s  %9s  %6s  %8s  %5s\n" "shard" "state"
      "processed" "failed" "restarts" "inbox";
    Array.iteri
      (fun i state ->
        Printf.printf "  %-5d  %-10s  %9d  %6d  %8d  %5d\n" i
          (Sentinel.Shard_pool.state_to_string state)
          st.Sentinel.Shard_pool.shard_processed.(i)
          st.Sentinel.Shard_pool.shard_failed.(i)
          st.Sentinel.Shard_pool.shard_restarts.(i)
          st.Sentinel.Shard_pool.inbox_depth.(i))
      st.Sentinel.Shard_pool.shard_state;
    Printf.printf
      "  pool: enqueued=%d completed=%d discarded=%d shed=%d \
       dead-lettered=%d (parked %d) timeouts=%d\n"
      st.Sentinel.Shard_pool.enqueued st.Sentinel.Shard_pool.completed
      st.Sentinel.Shard_pool.discarded st.Sentinel.Shard_pool.shed
      st.Sentinel.Shard_pool.dead_lettered parked
      st.Sentinel.Shard_pool.timeouts
  end

(* Batched ingestion: drive the stock-market tick feed through the
   vectorized ingest pipeline — one transaction, one cascade trace and one
   route-coalescing scope per batch, cross-shard sub-batches shipped as at
   most one message per destination — and report per-event throughput plus
   the coalescing evidence. *)
let cmd_ingest shards batch objects ops seed =
  if shards < 1 then failwith "need at least one shard";
  if batch < 1 then failwith "--batch must be >= 1";
  let fired = Array.init shards (fun _ -> Atomic.make 0) in
  let pool =
    Sentinel.Shard_pool.create ~shards
      ~init:(fun _pool i ->
        let db = Db.create () in
        Workloads.Stock_market.install db;
        let sys = System.create db in
        System.register_action sys "count" (fun _ _ -> Atomic.incr fired.(i));
        ignore
          (System.create_rule sys ~name:"price-watch"
             ~monitor_classes:[ Workloads.Stock_market.stock_class ]
             ~event:
               (Expr.eom ~cls:Workloads.Stock_market.stock_class "set_price")
             ~condition:"true" ~action:"count" ());
        sys)
      ()
  in
  let per = max 1 (objects / shards) in
  let markets =
    List.init shards (fun i ->
        match
          Sentinel.Shard_pool.run_on pool i (fun sys ->
              Workloads.Stock_market.populate (System.db sys)
                (Workloads.Prng.create (seed + i))
                ~stocks:per ~indexes:0 ~portfolios:0)
        with
        | Ok m -> m
        | Error e -> raise e)
  in
  (* one pool-wide market: the feed draws from every shard's stocks, so a
     multi-shard batch genuinely fans out *)
  let market =
    {
      Workloads.Stock_market.stocks =
        Array.concat
          (List.map (fun m -> m.Workloads.Stock_market.stocks) markets);
      indexes = [||];
      portfolios = [||];
    }
  in
  let rng = Workloads.Prng.create seed in
  let n_batches = max 1 (ops / batch) in
  let feed =
    Workloads.Stock_market.tick_batches rng market
      ~tickers:(Array.length market.Workloads.Stock_market.stocks)
      ~rate:batch ~batches:n_batches
  in
  let total = n_batches * batch in
  let t0 = Obs.Clock.now_ns () in
  List.iter
    (fun evs ->
      match Sentinel.Shard_pool.ingest pool evs with
      | Ok () -> ()
      | Error e -> failwith (Sentinel.Shard_pool.error_to_string e))
    feed;
  Sentinel.Shard_pool.drain pool;
  let dt = (Obs.Clock.now_ns () -. t0) /. 1e9 in
  let st = Sentinel.Shard_pool.stats pool in
  let batch_events = ref 0 and coalesced = ref 0 in
  for i = 0 to shards - 1 do
    let s = System.stats (Sentinel.Shard_pool.system pool i) in
    batch_events := !batch_events + s.System.batch_events;
    coalesced := !coalesced + s.System.coalesced_probes
  done;
  Sentinel.Shard_pool.stop pool;
  Printf.printf
    "%d event(s) in %d batch(es) of %d across %d shard(s): %.0f ev/s\n" total
    n_batches batch shards
    (float_of_int total /. dt);
  Printf.printf
    "coalescing: %d event(s) delivered in batch scope, %d route probe(s) \
     saved, %d mailbox push(es)\n"
    !batch_events !coalesced st.Sentinel.Shard_pool.mpsc_pushes;
  Array.iteri
    (fun i c -> Printf.printf "  shard %d: fired=%d\n" i (Atomic.get c))
    fired

(* Network server: front a shard pool with the wire protocol.  Each shard
   gets the full workload schema plus a populated scenario so remote
   clients have objects to drive and classes to subscribe to. *)
let cmd_serve port shards scenario objects seed =
  if shards < 1 then failwith "need at least one shard";
  let pool =
    Sentinel.Shard_pool.create ~shards
      ~init:(fun _pool i ->
        let db = Db.create () in
        install_all db;
        let sys = System.create db in
        let rng = Workloads.Prng.create (seed + i) in
        let per = max 1 (objects / shards) in
        (match scenario with
        | "market" ->
          ignore
            (Workloads.Stock_market.populate db rng ~stocks:per ~indexes:0
               ~portfolios:0)
        | "payroll" ->
          ignore
            (Workloads.Payroll.populate db rng
               ~managers:(max 1 (per / 10))
               ~employees:per)
        | "hospital" ->
          ignore (Workloads.Hospital.populate db rng ~patients:per ~physicians:3)
        | "banking" -> ignore (Workloads.Banking.populate db rng ~accounts:per)
        | other -> failwith (Printf.sprintf "unknown scenario %S" other));
        sys)
      ()
  in
  let server = Net.Server.create ~port ~pool () in
  Printf.printf
    "sentinel-cli serve: protocol v%d on port %d, %d shard(s), scenario %s \
     (%d objects)\n\
     press Ctrl-C to stop\n\
     %!"
    Net.Frame.version (Net.Server.port server) shards scenario objects;
  (* serve until interrupted *)
  let rec forever () =
    Thread.delay 3600.;
    forever ()
  in
  forever ()

(* Exit codes for scripting: 10 connection refused / unreachable,
   11 protocol version mismatch, 12 server-side degraded shard. *)
let exit_refused = 10
let exit_version = 11
let exit_degraded = 12

let cmd_connect host port status watch drive ops batch duration =
  let split_target what s =
    match String.index_opt s '.' with
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> failwith (Printf.sprintf "%s expects CLASS.METHOD, got %S" what s)
  in
  try
    let client =
      Net.Sentinel_client.connect ~client_name:"sentinel-cli" ~max_attempts:3
        ~host ~port ()
    in
    Printf.printf "connected to %s:%d (protocol v%d, %d shard(s))\n%!" host
      port Net.Frame.version
      (Net.Sentinel_client.shards client);
    if status then begin
      print_endline (Net.Sentinel_client.server_stats client)
    end;
    (match watch with
    | Some target ->
      let cls, meth = split_target "--watch" target in
      let seen = Atomic.make 0 in
      let _sub =
        Net.Sentinel_client.subscribe client ~name:"cli-watch" ~classes:[ cls ]
          (Expr.eom ~cls meth)
          (fun instances ->
            List.iter
              (fun inst ->
                Atomic.incr seen;
                Printf.printf "firing %d: %s\n%!" (Atomic.get seen)
                  (Events.Codec.encode_instance inst))
              instances)
      in
      Printf.printf "watching %s.%s for %.1fs...\n%!" cls meth duration;
      Thread.delay duration;
      Printf.printf "watched %d firing(s)\n%!" (Atomic.get seen)
    | None -> ());
    (match drive with
    | Some target ->
      let cls, meth = split_target "--drive" target in
      let rows = Net.Sentinel_client.query client ~cls ~pred:"true" in
      if rows = [] then failwith (Printf.sprintf "no %s objects to drive" cls);
      let oids = Array.of_list (List.map (fun (oid, _, _) -> oid) rows) in
      let rng = Workloads.Prng.create 42 in
      let t0 = Unix.gettimeofday () in
      for i = 0 to ops - 1 do
        let oid = Oodb.Oid.of_int oids.(i mod Array.length oids) in
        Net.Sentinel_client.send client
          (oid, meth, [ Value.Float (20. +. Workloads.Prng.float rng 160.) ]);
        if (i + 1) mod batch = 0 then ignore (Net.Sentinel_client.flush client)
      done;
      ignore (Net.Sentinel_client.flush client);
      Net.Sentinel_client.drain client;
      let dt = Unix.gettimeofday () -. t0 in
      let s = Net.Sentinel_client.stats client in
      Printf.printf
        "drove %d %s.%s event(s) in %d-event batches: %.0f ev/s (%d flushes)\n"
        s.Net.Sentinel_client.events_sent cls meth batch
        (float_of_int s.Net.Sentinel_client.events_sent /. dt)
        s.Net.Sentinel_client.flushes
    | None -> ());
    if (not status) && watch = None && drive = None then
      Printf.printf "ping: %.3f ms\n" (Net.Sentinel_client.ping client *. 1e3);
    Net.Sentinel_client.close client
  with
  | Net.Sentinel_client.Connection_failed msg ->
    Printf.eprintf "connection failed: %s\n" msg;
    exit exit_refused
  | Net.Sentinel_client.Version_mismatch { server; client } ->
    Printf.eprintf "protocol version mismatch: server v%d, client v%d\n" server
      client;
    exit exit_version
  | Net.Sentinel_client.Server_error { code; msg }
    when code = Net.Frame.err_degraded ->
    Printf.eprintf "server degraded: %s\n" msg;
    exit exit_degraded

(* Durability management: recover a store through the full pipeline (base
   snapshot + delta chain + WAL tail), optionally checkpoint or compact it,
   and report the on-disk durability state. *)
let cmd_wal db_path action wal_path delta keep_bytes keep_since =
  let wal_path =
    match wal_path with Some p -> p | None -> db_path ^ ".wal"
  in
  let db = Db.create () in
  let sys = System.create db in
  install_all db;
  System.register_action sys "count" (fun _ _ -> ());
  let r = Oodb.Wal.recover db ~snapshot:db_path ~wal:wal_path in
  System.rehydrate sys;
  let _wal = System.attach_wal sys wal_path in
  (match action with
  | "stats" -> ()
  | "checkpoint" ->
    let mode = if delta then `Delta else `Full in
    System.checkpoint ~mode sys ~snapshot:db_path;
    Printf.printf "%s checkpoint taken\n" (if delta then "delta" else "full")
  | "compact" ->
    let retention =
      match (keep_bytes, keep_since) with
      | Some b, _ -> Oodb.Wal.Keep_bytes b
      | None, Some s -> Oodb.Wal.Keep_since_seq s
      | None, None -> Oodb.Wal.Keep_none
    in
    System.compact_wal ~retention sys ~snapshot:db_path;
    Printf.printf "compacted %s into %s\n" wal_path db_path
  | other ->
    failwith
      (Printf.sprintf "unknown wal action %S (stats, checkpoint, compact)"
         other));
  System.detach_wal sys;
  let s = System.stats sys in
  Printf.printf "snapshot   %s: %d bytes%s\n" db_path s.System.snapshot_bytes
    (if r.Oodb.Wal.r_snapshot_loaded || action <> "stats" then ""
     else " (none on disk)");
  let chain = Oodb.Wal.delta_files ~snapshot:db_path () in
  Printf.printf "delta chain: %d element(s), %d applied at recovery\n"
    (List.length chain) r.Oodb.Wal.r_deltas_applied;
  List.iter
    (fun (p, prev, walseq) ->
      Printf.printf "  %s  prev=%d walseq=%d\n" p prev walseq)
    chain;
  Printf.printf
    "wal        %s: %d bytes, %d batch(es) past the last snapshot artifact\n"
    wal_path s.System.wal_bytes r.Oodb.Wal.r_batches_replayed;
  Printf.printf
    "durability: %d group seal(s), %d delta checkpoint(s), %d fsync(s)\n"
    s.System.group_commit_batches s.System.delta_checkpoints s.System.wal_fsyncs

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let scenario_arg =
  let doc = "Workload scenario (see $(b,scenarios))." in
  Arg.(value & opt string "market" & info [ "scenario"; "s" ] ~docv:"NAME" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let objects_arg =
  Arg.(
    value & opt int 100
    & info [ "objects"; "n" ] ~docv:"N" ~doc:"Number of monitored objects.")

let ops_arg =
  Arg.(
    value & opt int 10_000
    & info [ "ops" ] ~docv:"N" ~doc:"Number of workload operations.")

let path_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Run a scenario and persist the database.")
    Term.(const cmd_generate $ path_arg $ scenario_arg $ seed_arg $ objects_arg $ ops_arg)

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"Summarize a persisted database (rules included).")
    Term.(const cmd_inspect $ path_arg)

let demo_cmd =
  let pos_scenario =
    Arg.(value & pos 0 string "market" & info [] ~docv:"SCENARIO")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a scenario in memory and report rule activity.")
    Term.(const cmd_demo $ pos_scenario)

let scenarios_cmd =
  Cmd.v
    (Cmd.info "scenarios" ~doc:"List available scenarios.")
    Term.(const cmd_scenarios $ const ())

let rules_cmd =
  let rules_path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RULES_FILE")
  in
  let drive_ops =
    Arg.(
      value & opt int 0
      & info [ "drive" ] ~docv:"N" ~doc:"Run N random workload messages after loading.")
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:
         "Load declarative rules (rule/on/if/then blocks) into a store; \
          creates the store when FILE does not exist.")
    Term.(const cmd_rules $ path_arg $ rules_path $ drive_ops)

let query_cmd =
  let cls_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"CLASS") in
  let pred_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"PREDICATE")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Select objects from a persisted store, e.g. 'salary > 5000 and has mgr'.")
    Term.(const cmd_query $ path_arg $ cls_arg $ pred_arg)

let compare_cmd =
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Print the Sentinel / Ode / ADAM functionality comparison (paper §7).")
    Term.(const cmd_compare $ const ())

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Check a persisted store's internal consistency.")
    Term.(const cmd_verify $ path_arg)

let analyze_cmd =
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write the graph in DOT syntax.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static triggering-graph analysis of a store's rules.")
    Term.(const cmd_analyze $ path_arg $ dot_arg)

let dlq_cmd =
  let action_arg =
    Arg.(value & pos 1 string "list" & info [] ~docv:"ACTION"
         ~doc:"$(b,list), $(b,replay) or $(b,purge).")
  in
  Cmd.v
    (Cmd.info "dlq"
       ~doc:
         "Inspect, replay or purge the dead-letter queue of contained \
          failed rule firings.")
    Term.(const cmd_dlq $ path_arg $ action_arg)

let reinstate_cmd =
  let rule_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RULE")
  in
  Cmd.v
    (Cmd.info "reinstate"
       ~doc:
         "Close a quarantined rule's circuit breaker and put it back in \
          service.")
    Term.(const cmd_reinstate $ path_arg $ rule_arg)

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a scenario with the metrics registry enabled and print \
          per-stage counters and latency percentiles.")
    Term.(const cmd_metrics $ scenario_arg $ seed_arg $ objects_arg $ ops_arg)

let trace_cmd =
  let txns_arg =
    Arg.(
      value & pos 0 int 10
      & info [] ~docv:"N" ~doc:"Number of deposit+withdraw transactions to trace.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the Chrome-trace JSON here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace banking cascades (send, routing, detection, scheduling, \
          firing under one trace id) and emit Chrome-trace-format JSON for \
          chrome://tracing or Perfetto.")
    Term.(const cmd_trace $ txns_arg $ out_arg)

let shards_cmd =
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Number of OID-sharded engine domains ($(b,1) runs inline on \
             the calling domain).")
  in
  let status_arg =
    Arg.(
      value & flag
      & info [ "status" ]
          ~doc:
            "Print the supervision status table: per-shard state \
             (ready/restarting/degraded), restarts, inbox depth, and the \
             pool's shed / dead-letter / timeout counters.")
  in
  let kill_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill" ] ~docv:"K"
          ~doc:
            "Chaos demo: kill shard K mid-batch and wait for the \
             supervisor to restart it before finishing the workload.")
  in
  Cmd.v
    (Cmd.info "shards"
       ~doc:
         "Run the payroll send workload through a supervised \
          domain-parallel OID-sharded pool and report throughput, \
          per-shard activity and supervision status.")
    Term.(
      const cmd_shards $ shards_arg $ objects_arg $ ops_arg $ status_arg
      $ kill_arg)

let ingest_cmd =
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Events per ingested batch ($(b,1) degenerates to per-event \
             ingestion — the baseline the E-ingest gate compares against).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Number of OID-sharded engine domains ($(b,1) ingests inline on \
             the calling domain).")
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Drive the stock-market tick feed through the batched ingestion \
          pipeline (one transaction, one cascade trace and one \
          route-coalescing scope per batch; cross-shard sub-batches ship as \
          one message per destination) and report throughput and coalescing \
          counters.")
    Term.(
      const cmd_ingest $ shards_arg $ batch_arg $ objects_arg $ ops_arg
      $ seed_arg)

let wal_cmd =
  let action_arg =
    Arg.(value & pos 1 string "stats" & info [] ~docv:"ACTION"
         ~doc:"$(b,stats), $(b,checkpoint) or $(b,compact).")
  in
  let wal_path_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:"Log file (default: the snapshot path plus $(b,.wal)).")
  in
  let delta_arg =
    Arg.(
      value & flag
      & info [ "delta" ]
          ~doc:
            "With $(b,checkpoint): persist only the objects dirtied since \
             the last snapshot artifact instead of a full snapshot.")
  in
  let keep_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "keep-bytes" ] ~docv:"N"
          ~doc:
            "With $(b,compact): retain the largest suffix of whole batches \
             within N bytes of log tail.")
  in
  let keep_since_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "keep-since-seq" ] ~docv:"SEQ"
          ~doc:
            "With $(b,compact): retain every batch with sequence number at \
             or above SEQ.")
  in
  Cmd.v
    (Cmd.info "wal"
       ~doc:
         "Recover a store through snapshot + delta chain + log, optionally \
          checkpoint or compact it, and report WAL/snapshot sizes, the \
          delta chain and retention state.")
    Term.(
      const cmd_wal $ path_arg $ action_arg $ wal_path_arg $ delta_arg
      $ keep_bytes_arg $ keep_since_arg)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 7070
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port to listen on ($(b,0) picks an ephemeral port).")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"Number of OID-sharded engine domains behind the server.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the Sentinel network server: a shard pool populated with a \
          workload scenario, fronted by the length-prefixed binary protocol \
          (streaming ingestion, subscriptions, queries).")
    Term.(
      const cmd_serve $ port_arg $ shards_arg $ scenario_arg $ objects_arg
      $ seed_arg)

let connect_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port_arg =
    Arg.(
      value & opt int 7070 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let status_arg =
    Arg.(
      value & flag
      & info [ "status" ] ~doc:"Print the server's stats counters and exit.")
  in
  let watch_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "watch" ] ~docv:"CLASS.METHOD"
          ~doc:
            "Subscribe to the method's primitive event and print each rule \
             firing for $(b,--duration) seconds.")
  in
  let drive_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "drive" ] ~docv:"CLASS.METHOD"
          ~doc:
            "Stream $(b,--ops) events at the class's objects in \
             $(b,--batch)-event Send_many frames and report throughput.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Events per Send_many frame.")
  in
  let duration_arg =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"How long $(b,--watch) listens before exiting.")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:
         "Connect to a running $(b,serve) instance: ping it, print its \
          stats, watch rule firings, or drive an event stream at it.  Exits \
          $(b,10) when the connection is refused, $(b,11) on a protocol \
          version mismatch, $(b,12) when the server reports a degraded \
          shard.")
    Term.(
      const cmd_connect $ host_arg $ port_arg $ status_arg $ watch_arg
      $ drive_arg $ ops_arg $ batch_arg $ duration_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "sentinel-cli" ~version:"1.0.0"
       ~doc:"Sentinel active object-oriented database, command-line driver.")
    [
      generate_cmd; inspect_cmd; demo_cmd; scenarios_cmd; rules_cmd;
      compare_cmd; query_cmd; verify_cmd; analyze_cmd; dlq_cmd; reinstate_cmd;
      metrics_cmd; trace_cmd; shards_cmd; ingest_cmd; wal_cmd; serve_cmd;
      connect_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
