open Import

type outcome = System.execution_outcome =
  | Fired
  | Condition_false
  | Aborted of string
  | Action_error of exn
  | Contained of exn
  | Quarantined of exn

type entry = {
  e_rule : Oid.t;
  e_rule_name : string;
  e_at : Oodb.Types.timestamp;
  e_outcome : outcome;
  e_instance : Detector.instance;
  e_trace : int;
}

type t = {
  a_sys : System.t;
  a_persist : bool;
  log : entry Obs.Ring.t; (* bounded; total survives eviction *)
}

let firing_class = "__firing"

let outcome_strings = function
  | Fired -> ("fired", "")
  | Condition_false -> ("condition-false", "")
  | Aborted msg -> ("aborted", msg)
  | Action_error e -> ("error", Printexc.to_string e)
  | Contained e -> ("contained", Printexc.to_string e)
  | Quarantined e -> ("quarantined", Printexc.to_string e)

let record t rule (inst : Detector.instance) outcome =
  let entry =
    {
      e_rule = rule.Rule.oid;
      e_rule_name = rule.Rule.name;
      e_at = inst.t_end;
      e_outcome = outcome;
      e_instance = inst;
      (* 0 unless a cascade trace is live at the firing. *)
      e_trace = Obs.Trace.current ();
    }
  in
  Obs.Ring.push t.log entry;
  if t.a_persist && outcome = Fired then begin
    let db = System.db t.a_sys in
    let detail = Format.asprintf "%a" Detector.pp_instance inst in
    let oname, _ = outcome_strings outcome in
    ignore
      (Db.new_object db firing_class
         ~attrs:
           [
             ("rule", Value.Obj rule.Rule.oid);
             ("name", Value.Str rule.Rule.name);
             ("at", Value.Int inst.t_end);
             ("outcome", Value.Str oname);
             ("detail", Value.Str detail);
           ])
  end

let attach ?(limit = 4096) ?(persist = false) sys =
  let t =
    { a_sys = sys; a_persist = persist; log = Obs.Ring.create (max 1 limit) }
  in
  System.set_execution_hook sys (fun rule inst outcome ->
      record t rule inst outcome);
  t

let detach t = System.clear_execution_hook t.a_sys
let entries t = Obs.Ring.to_list t.log

let entries_for t rule =
  List.filter (fun e -> Oid.equal e.e_rule rule) (entries t)

let count t = Obs.Ring.total t.log
let clear t = Obs.Ring.clear t.log

let stored_firings sys =
  let db = System.db sys in
  if Db.has_class db firing_class then Db.extent db ~deep:false firing_class
  else []
