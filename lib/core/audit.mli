open Import

(** Audit trail of rule executions.

    Everything in Sentinel is an object — including, with this module, the
    history of rule firings.  An attached audit keeps

    - an {e in-memory} chronological log of every execution attempt
      (fired / condition-false / aborted / errored / contained /
      quarantined), bounded by [limit];
    - optionally ([persist]), a stored ["__firing"] object per successful
      firing, created in the triggering transaction — so the durable audit
      reflects exactly the committed history (an aborted transaction takes
      its audit record down with it), and is queryable like any extent.

    One audit per system; attaching replaces the system's execution hook. *)

type outcome = System.execution_outcome =
  | Fired
  | Condition_false
  | Aborted of string
  | Action_error of exn
  | Contained of exn  (** failure absorbed by the rule's error policy *)
  | Quarantined of exn  (** as [Contained], and the circuit breaker tripped *)

type entry = {
  e_rule : Oid.t;
  e_rule_name : string;
  e_at : Oodb.Types.timestamp;  (** detection time of the triggering instance *)
  e_outcome : outcome;
  e_instance : Detector.instance;
  e_trace : int;
      (** cascade trace id live at the firing ({!Obs.Trace.current}); [0]
          when tracing was off — joins audit entries to trace spans *)
}

type t

val attach : ?limit:int -> ?persist:bool -> System.t -> t
(** [limit] (default 4096) bounds the in-memory log — a ring
    ({!Obs.Ring}) that evicts oldest-first; [persist] (default false) also
    stores ["__firing"] objects for [Fired] outcomes. *)

val detach : t -> unit
(** Clears the system's execution hook. *)

val entries : t -> entry list
(** Chronological (oldest first). *)

val entries_for : t -> Oid.t -> entry list
(** The log filtered to one rule. *)

val count : t -> int
(** Total attempts observed (including dropped entries). *)

val clear : t -> unit

val stored_firings : System.t -> Oid.t list
(** The persistent ["__firing"] objects, in OID (= chronological) order.
    Usable without an attached audit, e.g. after reloading a store. *)
