type t = Propagate | Contain | Quarantine of int

let to_string = function
  | Propagate -> "propagate"
  | Contain -> "contain"
  | Quarantine n -> Printf.sprintf "quarantine:%d" n

let of_string s =
  match s with
  | "propagate" -> Propagate
  | "contain" -> Contain
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "quarantine" -> (
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt arg with
      | Some n when n > 0 -> Quarantine n
      | _ ->
        raise (Oodb.Errors.Parse_error ("bad quarantine threshold: " ^ arg)))
    | _ -> raise (Oodb.Errors.Parse_error ("unknown error policy: " ^ s)))

let pp ppf p = Format.pp_print_string ppf (to_string p)

(* --- capped, jittered retry backoff ---------------------------------------- *)

(* Equal-jitter schedule: the [attempt]-th gap is drawn uniformly from
   [m/2, m] where [m = min cap (base * 2^(attempt-1))].  The deterministic
   half keeps every gap meaningful (full jitter can draw ~0 and retry in a
   tight loop); the random half de-synchronises a population of failures
   that all started retrying at the same instant, so they do not hammer the
   recovering resource in lockstep. *)
let retry_delay ?(base = 0.002) ?(cap = 0.032) ~rand attempt =
  let base = if base <= 0. then 0.000001 else base in
  let cap = max base cap in
  let exp = min (max 0 (attempt - 1)) 30 in
  let m = min cap (base *. float_of_int (1 lsl exp)) in
  let r = rand () in
  let r = if r < 0. then 0. else if r > 1. then 1. else r in
  (m /. 2.) +. ((m /. 2.) *. r)

let jittered_backoff ?base ?cap () attempt =
  let d = retry_delay ?base ?cap ~rand:(fun () -> Random.float 1.) attempt in
  try Unix.sleepf d with Unix.Unix_error _ -> ()
