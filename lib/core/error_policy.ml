type t = Propagate | Contain | Quarantine of int

let to_string = function
  | Propagate -> "propagate"
  | Contain -> "contain"
  | Quarantine n -> Printf.sprintf "quarantine:%d" n

let of_string s =
  match s with
  | "propagate" -> Propagate
  | "contain" -> Contain
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "quarantine" -> (
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt arg with
      | Some n when n > 0 -> Quarantine n
      | _ ->
        raise (Oodb.Errors.Parse_error ("bad quarantine threshold: " ^ arg)))
    | _ -> raise (Oodb.Errors.Parse_error ("unknown error policy: " ^ s)))

let pp ppf p = Format.pp_print_string ppf (to_string p)
