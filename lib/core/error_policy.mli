(** Per-rule error policy: what a failing condition or action does to the
    rest of the system.

    The policy is a persistent attribute of the rule object (it survives
    save/load/rehydrate) and governs {e unexpected} exceptions only — an
    action raising {!Oodb.Errors.Rule_abort} is an intentional abort of the
    triggering transaction and always propagates, whatever the policy.

    - {!Propagate} — the historical behaviour and the default: the
      exception escapes the rule layer.  Under immediate coupling it aborts
      the user's method call; under deferred coupling it aborts the
      committing transaction (discarding the rest of the deferred batch);
      under detached coupling it is recorded in the system failure log.
    - {!Contain} — the exception is caught at the firing boundary, recorded
      in the failure log and the persistent dead-letter queue, and
      execution continues: the host transaction, the remaining firings of a
      deferred batch, and the other rules sharing the triggering event are
      unaffected.
    - [Quarantine n] — {!Contain} plus a circuit breaker: after [n]
      {e consecutive} failed firings the rule is automatically taken out of
      service (it no longer receives events) until an operator closes the
      breaker with {!System.reinstate}.  A successful firing resets the
      streak. *)

type t = Propagate | Contain | Quarantine of int

val to_string : t -> string
(** ["propagate"], ["contain"], ["quarantine:<n>"] — the persistent
    encoding stored on rule objects. *)

val of_string : string -> t
(** @raise Oodb.Errors.Parse_error on unknown policies or a non-positive
    quarantine threshold. *)

val pp : Format.formatter -> t -> unit

(** {1 Retry backoff}

    The shared backoff schedule behind every retry loop in the engine: the
    detached-firing retries in {!System}, the bounded-inbox block/retry path
    and the supervisor restart pacing in {!Shard_pool}. *)

val retry_delay :
  ?base:float -> ?cap:float -> rand:(unit -> float) -> int -> float
(** [retry_delay ~rand attempt] is the gap (seconds) before retry
    [attempt] (1-based): drawn uniformly from [[m/2, m]] where
    [m = min cap (base * 2^(attempt-1))] — capped exponential growth with
    {e equal jitter}, so a population of simultaneous failures spreads out
    instead of retrying in lockstep.  [rand] supplies the uniform sample in
    [[0, 1)] (injected so the bounds are unit-testable); out-of-range
    samples are clamped.  Defaults: [base = 0.002] (the old deterministic
    first gap), [cap = 0.032] (the old 32ms ceiling). *)

val jittered_backoff : ?base:float -> ?cap:float -> unit -> int -> unit
(** [jittered_backoff () attempt] sleeps for [retry_delay] seconds using the
    domain-local PRNG — the default [retry_backoff] of {!System.create}. *)
