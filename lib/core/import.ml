(* Aliases for the substrate and event-algebra modules; opened by the other
   modules of this library. *)

module Oid = Oodb.Oid
module Value = Oodb.Value
module Occurrence = Oodb.Occurrence
module Errors = Oodb.Errors
module Db = Oodb.Db
module Transaction = Oodb.Transaction
module Wal = Oodb.Wal
module Expr = Events.Expr
module Detector = Events.Detector
module Route = Events.Route
module Context = Events.Context
module Codec = Events.Codec
