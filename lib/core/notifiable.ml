open Import

(* One bounded ring (Obs.Ring) behind the Record behaviour: the same
   eviction policy as the failure log and the audit trail, and O(1) per
   record on the delivery hot path. *)
type t = Occurrence.t Obs.Ring.t

let create ?(limit = 1024) () = Obs.Ring.create limit
let record t o = Obs.Ring.push t o
let all t = Obs.Ring.to_list t
let recent t n = Obs.Ring.recent t n
let count t = Obs.Ring.total t
let clear t = Obs.Ring.clear t
