open Import

type t = {
  oid : Oid.t;
  name : string;
  event : Expr.t;
  detector : Detector.t;
  condition_name : string;
  action_name : string;
  condition : Function_registry.condition;
  action : Function_registry.action;
  mutable coupling : Coupling.t;
  mutable priority : int;
  mutable enabled : bool;
  mutable policy : Error_policy.t;
  mutable max_retries : int;
  mutable failure_streak : int;
  mutable quarantined : bool;
  mutable fired : int;
  mutable triggered : int;
  recorder : Notifiable.t;
}

let make ~oid ~name ~event ~context ~subsumes ~coupling ~priority ~enabled
    ~policy ~max_retries ~condition_name ~condition ~action_name ~action ~fire =
  (* The detector's signal callback must reach the rule record that owns the
     detector; tie the knot through a cell. *)
  let cell = ref None in
  let on_signal inst =
    match !cell with
    | Some rule ->
      rule.triggered <- rule.triggered + 1;
      fire rule inst
    | None -> ()
  in
  let detector = Detector.create ~context ~subsumes ~on_signal event in
  (* "detect" trace spans carry the owning rule's name *)
  Detector.set_label detector name;
  let rule =
    {
      oid;
      name;
      event;
      detector;
      condition_name;
      action_name;
      condition;
      action;
      coupling;
      priority;
      enabled;
      policy;
      max_retries;
      failure_streak = 0;
      quarantined = false;
      fired = 0;
      triggered = 0;
      recorder = Notifiable.create ();
    }
  in
  cell := Some rule;
  rule

let deliver rule occ =
  if rule.enabled && not rule.quarantined then begin
    Notifiable.record rule.recorder occ;
    Detector.feed rule.detector occ
  end

let context rule = Detector.context rule.detector
