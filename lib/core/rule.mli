open Import

(** The runtime half of a rule object.

    A rule is a first-class object: its durable state (name, event
    expression, condition/action names, coupling mode, context, priority,
    enabled flag, firing count) lives as attributes of an ordinary database
    object of class {!Sentinel_classes.rule_class}, created and mutated
    under the usual transaction semantics.  This module holds the
    non-persistable runtime half — the compiled detector, the bound
    condition/action closures, and the occurrence recorder — and is rebuilt
    from the durable half on {!System.rehydrate}. *)

type t = {
  oid : Oid.t;  (** the persistent rule object *)
  name : string;
  event : Expr.t;
  detector : Detector.t;
  condition_name : string;
  action_name : string;
  condition : Function_registry.condition;
  action : Function_registry.action;
  mutable coupling : Coupling.t;
  mutable priority : int;
  mutable enabled : bool;
  mutable policy : Error_policy.t;
      (** what a failing condition/action does; see {!Error_policy} *)
  mutable max_retries : int;
      (** detached coupling only: re-attempts after a failed firing *)
  mutable failure_streak : int;
      (** consecutive failed firings; feeds the [Quarantine] breaker *)
  mutable quarantined : bool;
      (** breaker open: the rule receives no events until
          {!System.reinstate} *)
  mutable fired : int;  (** times the action ran *)
  mutable triggered : int;  (** times the event was detected *)
  recorder : Notifiable.t;
}

val make :
  oid:Oid.t ->
  name:string ->
  event:Expr.t ->
  context:Context.t ->
  subsumes:(sub:string -> super:string -> bool) ->
  coupling:Coupling.t ->
  priority:int ->
  enabled:bool ->
  policy:Error_policy.t ->
  max_retries:int ->
  condition_name:string ->
  condition:Function_registry.condition ->
  action_name:string ->
  action:Function_registry.action ->
  fire:(t -> Detector.instance -> unit) ->
  t
(** Compile the event expression into a detector whose signals invoke
    [fire] on this rule.  [fire] is the scheduler entry point. *)

val deliver : t -> Occurrence.t -> unit
(** Offer one primitive occurrence: recorded and fed to the detector when
    the rule is enabled and not quarantined; ignored otherwise (a disabled
    rule neither records nor detects — paper §4.4 — and a quarantined rule
    behaves the same until reinstated). *)

val context : t -> Context.t
