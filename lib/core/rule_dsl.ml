open Import

let fail lineno fmt =
  Printf.ksprintf
    (fun m -> raise (Errors.Parse_error (Printf.sprintf "line %d: %s" lineno m)))
    fmt

type block = {
  b_name : string;
  b_event : Expr.t;
  b_condition : string;
  b_action : string;
  b_coupling : Coupling.t;
  b_context : Context.t;
  b_priority : int;
  b_enabled : bool;
  b_policy : Error_policy.t;
  b_max_retries : int;
  b_monitor_classes : string list;
  b_monitor_objects : Oid.t list;
}

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let split_head line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (String.lowercase_ascii line, "")
  | Some i ->
    ( String.lowercase_ascii (String.sub line 0 i),
      String.trim (String.sub line i (String.length line - i)) )

let parse_blocks text =
  let lines = String.split_on_char '\n' text in
  let blocks = ref [] in
  let current = ref None in
  let start lineno name =
    if name = "" then fail lineno "rule needs a name";
    match !current with
    | Some _ -> fail lineno "nested 'rule' (missing 'end'?)"
    | None ->
      current :=
        Some
          ( lineno,
            {
              b_name = name;
              b_event = Expr.eom "__unset__";
              b_condition = "true";
              b_action = "";
              b_coupling = Coupling.Immediate;
              b_context = Context.Recent;
              b_priority = 0;
              b_enabled = true;
              b_policy = Error_policy.Propagate;
              b_max_retries = 0;
              b_monitor_classes = [];
              b_monitor_objects = [];
            },
            false (* saw an 'on' line *) )
  in
  let update lineno f =
    match !current with
    | None -> fail lineno "directive outside a rule block"
    | Some (start_line, b, saw_on) -> current := Some (start_line, f b, saw_on)
  in
  let mark_on lineno e =
    match !current with
    | None -> fail lineno "'on' outside a rule block"
    | Some (start_line, b, _) ->
      current := Some (start_line, { b with b_event = e }, true)
  in
  let finish lineno =
    match !current with
    | None -> fail lineno "'end' without 'rule'"
    | Some (start_line, b, saw_on) ->
      if not saw_on then fail start_line "rule %s has no 'on' line" b.b_name;
      if b.b_action = "" then fail start_line "rule %s has no 'then' line" b.b_name;
      blocks := b :: !blocks;
      current := None
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        let head, rest = split_head line in
        match head with
        | "rule" -> start lineno rest
        | "on" -> mark_on lineno (Events.Parser.parse rest)
        | "if" -> update lineno (fun b -> { b with b_condition = rest })
        | "then" -> update lineno (fun b -> { b with b_action = rest })
        | "mode" ->
          let coupling = Coupling.of_string (String.lowercase_ascii rest) in
          update lineno (fun b -> { b with b_coupling = coupling })
        | "context" ->
          let context = Context.of_string (String.lowercase_ascii rest) in
          update lineno (fun b -> { b with b_context = context })
        | "priority" -> (
          match int_of_string_opt rest with
          | Some p -> update lineno (fun b -> { b with b_priority = p })
          | None -> fail lineno "bad priority %S" rest)
        | "disabled" -> update lineno (fun b -> { b with b_enabled = false })
        | "on-error" -> (
          let kind, arg = split_head rest in
          match (kind, arg) with
          | "propagate", "" ->
            update lineno (fun b -> { b with b_policy = Error_policy.Propagate })
          | "contain", "" ->
            update lineno (fun b -> { b with b_policy = Error_policy.Contain })
          | "quarantine", n -> (
            match int_of_string_opt n with
            | Some n when n > 0 ->
              update lineno (fun b ->
                  { b with b_policy = Error_policy.Quarantine n })
            | _ -> fail lineno "bad quarantine threshold %S" n)
          | _ ->
            fail lineno
              "on-error what? %S (propagate|contain|quarantine N)" rest)
        | "retries" -> (
          match int_of_string_opt rest with
          | Some n when n >= 0 ->
            update lineno (fun b -> { b with b_max_retries = n })
          | _ -> fail lineno "bad retries %S" rest)
        | "monitor" -> (
          let kind, target = split_head rest in
          match kind with
          | "class" ->
            update lineno (fun b ->
                { b with b_monitor_classes = b.b_monitor_classes @ [ target ] })
          | "object" -> (
            match int_of_string_opt target with
            | Some n ->
              update lineno (fun b ->
                  {
                    b with
                    b_monitor_objects = b.b_monitor_objects @ [ Oid.of_int n ];
                  })
            | None -> fail lineno "bad object id %S" target)
          | other -> fail lineno "monitor what? %S (class|object)" other)
        | "end" -> finish lineno
        | other -> fail lineno "unknown directive %S" other
      end)
    lines;
  (match !current with
  | Some (start_line, b, _) -> fail start_line "rule %s not closed by 'end'" b.b_name
  | None -> ());
  List.rev !blocks

let create_block sys b =
  System.create_rule sys ~name:b.b_name ~coupling:b.b_coupling
    ~context:b.b_context ~priority:b.b_priority ~enabled:b.b_enabled
    ~policy:b.b_policy ~max_retries:b.b_max_retries
    ~monitor:b.b_monitor_objects ~monitor_classes:b.b_monitor_classes
    ~event:b.b_event ~condition:b.b_condition ~action:b.b_action ()

let load_string sys text =
  let blocks = parse_blocks text in
  let db = System.db sys in
  match
    Transaction.atomically db (fun () -> List.map (create_block sys) blocks)
  with
  | Ok oids -> oids
  | Error e ->
    (* runtimes for rolled-back rule objects must not linger *)
    System.prune_runtimes sys;
    raise e

let load_file sys path =
  load_string sys (In_channel.with_open_text path In_channel.input_all)

let render sys oid =
  let db = System.db sys in
  let info = System.rule_info sys oid in
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "rule %s" info.Rule.name;
  line "on %s" (Events.Parser.to_syntax info.Rule.event);
  line "if %s" info.Rule.condition_name;
  line "then %s" info.Rule.action_name;
  line "mode %s" (Coupling.to_string info.Rule.coupling);
  line "context %s" (Context.to_string (Rule.context info));
  if info.Rule.priority <> 0 then line "priority %d" info.Rule.priority;
  if not info.Rule.enabled then line "disabled";
  (match info.Rule.policy with
  | Error_policy.Propagate -> ()
  | Error_policy.Contain -> line "on-error contain"
  | Error_policy.Quarantine n -> line "on-error quarantine %d" n);
  if info.Rule.max_retries <> 0 then line "retries %d" info.Rule.max_retries;
  List.iter
    (fun cls ->
      if List.exists (Oid.equal oid) (Db.class_consumers_of db cls) then
        line "monitor class %s" cls)
    (List.sort compare (Db.classes db));
  List.iter
    (fun target ->
      if Db.exists db target
         && List.exists (Oid.equal oid) (Db.consumers_of db target)
      then line "monitor object %d" (Oid.to_int target))
    (List.concat_map
       (fun cls -> Db.extent db ~deep:false cls)
       (List.sort compare (Db.classes db)));
  line "end";
  Buffer.contents buf
