open Import

(** A declarative surface syntax for rules, mirroring the paper's rule
    sections (Figure 9's R/E/C/A/M structure):

    {v # the Figure 10 rule, declaratively
       rule IncomeLevel
       on   end employee::change_income or end manager::change_income
       if   incomes-differ
       then make-equal
       mode immediate
       context recent
       priority 3
       monitor object 4
       monitor object 7
       end

       rule Marriage
       on   begin person::marry
       then abort
       monitor class person
       end v}

    One [rule]…[end] block per rule; [#] starts a comment; blank lines are
    ignored.  [if] defaults to the built-in ["true"] condition; [mode],
    [context] and [priority] default like {!System.create_rule}; a
    [disabled] line creates the rule disabled.  [on] uses the
    {!Events.Parser} expression syntax.  Condition and action names must be
    registered with the system before loading.

    Error containment (see {!Error_policy}): an
    [on-error propagate|contain|quarantine N] line sets the rule's error
    policy (default [propagate]), and [retries N] bounds re-attempts of
    failed detached firings (default 0). *)

val load_string : System.t -> string -> Oid.t list
(** Parse and create every rule block; returns the new rule objects in
    declaration order.  Creation is transactional per call: if any block is
    invalid, no rule is created.
    @raise Errors.Parse_error on syntax errors (with line numbers)
    @raise Errors.Type_error on unknown condition/action names
    @raise Errors.No_such_class / {!Errors.No_such_object} on bad monitor
    targets *)

val load_file : System.t -> string -> Oid.t list

val render : System.t -> Oid.t -> string
(** Render an existing rule back to the declarative syntax (monitor lines
    are reconstructed from the current subscription state). *)
