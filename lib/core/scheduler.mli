(** Conflict resolution for simultaneously triggered rules.

    The paper's design rationale (§3) calls for new conflict-resolution
    strategies to be pluggable "without modifications to application code";
    a strategy here is a pure ordering over the set of rule firings queued
    for the same execution point (the deferred queue at commit, and the
    detached queue after commit).

    An ordered batch runs front to back; whether a failing firing takes the
    rest of the batch down depends on the failing rule's {!Error_policy}: a
    [Propagate] failure aborts the surrounding transaction (later firings
    die with it), while [Contain]/[Quarantine] failures are absorbed by
    {!System} and the batch continues in order. *)

type strategy =
  | Fifo  (** detection order *)
  | Lifo  (** most recently detected first *)
  | Priority_fifo  (** highest priority first, detection order within *)
  | Priority_lifo  (** highest priority first, reverse detection within *)

val default : strategy
(** [Priority_fifo]. *)

val to_string : strategy -> string

val of_string : string -> strategy
(** @raise Oodb.Errors.Parse_error *)

val order : strategy -> (int * int * 'a) list -> 'a list
(** [order s entries] sorts [(priority, detection_seq, x)] triples according
    to [s] and returns the payloads.  Higher priority wins; [detection_seq]
    is a monotonically increasing arrival stamp. *)
