(** Sentinel: ECA rules over the object substrate.

    {!System} is the facade: create it over a database, register named
    conditions/actions ({!Function_registry}), create first-class rule and
    event objects, and subscribe them to instances or classes.  Supporting
    modules: {!Coupling} (when rules run relative to the transaction),
    {!Scheduler} (conflict resolution), {!Rule} (the runtime half of a rule
    object), {!Notifiable} (the Record behaviour), {!Rule_dsl} (declarative
    blocks), {!Template} (declare-once / bind-per-instance rules),
    {!Analysis} (static triggering-graph checks), {!Audit} (execution
    history), {!Sentinel_classes} (the stored class hierarchy from the
    paper's Figure 3) and {!Shard_pool} (domain-parallel execution over
    OID-hash-sharded databases). *)

module Coupling = Coupling
module Error_policy = Error_policy
module Function_registry = Function_registry
module Notifiable = Notifiable
module Scheduler = Scheduler
module Sentinel_classes = Sentinel_classes
module Rule = Rule
module System = System
module Rule_dsl = Rule_dsl
module Template = Template
module Analysis = Analysis
module Audit = Audit
module Shard_pool = Shard_pool
