open Import

let notifiable_class = "__notifiable"
let event_class = "__event"
let rule_class = "__rule"
let dead_letter_class = "__dead_letter"
let a_name = "name"
let a_event = "event"
let a_event_ref = "event_ref"
let a_condition = "condition"
let a_action = "action"
let a_coupling = "coupling"
let a_context = "context"
let a_priority = "priority"
let a_enabled = "enabled"
let a_fired = "fired"
let a_policy = "error_policy"
let a_max_retries = "max_retries"
let a_failure_streak = "failure_streak"
let a_quarantined = "quarantined"
let a_rule = "rule"
let a_instance = "instance"
let a_error = "error"
let a_attempts = "attempts"
let a_at = "at"

let install db =
  if not (Db.has_class db notifiable_class) then begin
    Db.define_class db
      (Oodb.Schema.define notifiable_class ~attrs:[ (a_name, Value.Str "") ]);
    Db.define_class db
      (Oodb.Schema.define event_class ~super:notifiable_class
         ~attrs:[ (a_event, Value.Str "") ]);
    (* Rule objects are themselves reactive: Enable/Disable are methods in
       the event interface, so rules can monitor other rules (the paper's
       "specification of rules on any set of objects, including rules
       themselves"). *)
    let set_enabled flag db self _args =
      Db.set db self a_enabled (Value.Bool flag);
      Value.Null
    in
    Db.define_class db
      (Oodb.Schema.define rule_class ~super:notifiable_class
         ~attrs:
           [
             (a_event, Value.Str "");
             (a_event_ref, Value.Null);
             (a_condition, Value.Str "true");
             (a_action, Value.Str "abort");
             (a_coupling, Value.Str (Coupling.to_string Coupling.Immediate));
             (a_context, Value.Str (Context.to_string Context.Recent));
             (a_priority, Value.Int 0);
             (a_enabled, Value.Bool true);
             (a_fired, Value.Int 0);
             (a_policy, Value.Str (Error_policy.to_string Error_policy.Propagate));
             (a_max_retries, Value.Int 0);
             (a_failure_streak, Value.Int 0);
             (a_quarantined, Value.Bool false);
           ]
         ~methods:
           [ ("enable", set_enabled true); ("disable", set_enabled false) ]
         ~events:[ ("enable", Oodb.Schema.On_end); ("disable", Oodb.Schema.On_end) ]);
    (* Failed firings contained by a rule's error policy (see System). *)
    Db.define_class db
      (Oodb.Schema.define dead_letter_class
         ~attrs:
           [
             (a_rule, Value.Null);
             (a_name, Value.Str "");
             (a_instance, Value.Str "");
             (a_error, Value.Str "");
             (a_attempts, Value.Int 0);
             (a_at, Value.Int 0);
           ]);
    (* Committed rule-firing audit records (see Audit). *)
    Db.define_class db
      (Oodb.Schema.define "__firing"
         ~attrs:
           [
             ("rule", Value.Null);
             (a_name, Value.Str "");
             ("at", Value.Int 0);
             ("outcome", Value.Str "");
             ("detail", Value.Str "");
           ]);
    (* Parameterized rule templates (see Template). *)
    Db.define_class db
      (Oodb.Schema.define "__template" ~super:notifiable_class
         ~attrs:
           [
             (a_event, Value.Str "");
             (a_condition, Value.Str "true");
             (a_action, Value.Str "abort");
             (a_coupling, Value.Str (Coupling.to_string Coupling.Immediate));
             (a_context, Value.Str (Context.to_string Context.Recent));
             (a_priority, Value.Int 0);
           ])
  end
