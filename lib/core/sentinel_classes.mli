open Import

(** The class hierarchy the paper adds to Zeitgeist (Figure 3):
    zg-pos → Notifiable → {Event, Rule}.

    In this reproduction persistence is ambient (every stored object
    persists), so the zg-pos root is implicit; [Notifiable] and its [Event]
    and [Rule] subclasses are ordinary registered classes whose instances
    hold the durable half of events and rules.  The [Reactive] side of the
    paper's hierarchy is realised as the [reactive] class flag plus the
    event interface in {!Oodb.Schema}. *)

val notifiable_class : string
(** ["__notifiable"] *)

val event_class : string
(** ["__event"], subclass of notifiable *)

val rule_class : string
(** ["__rule"], subclass of notifiable *)

val dead_letter_class : string
(** ["__dead_letter"]: a failed firing contained by a rule's error policy
    (see {!System}).  Not notifiable — dead letters are inert records. *)

val install : Db.t -> unit
(** Register the classes; idempotent. *)

(** {1 Attribute names of rule objects} *)

val a_name : string

val a_event : string
(** encoded {!Events.Codec} expression *)

val a_event_ref : string
(** OID of a named event object, or [Null] *)

val a_condition : string
val a_action : string
val a_coupling : string
val a_context : string
val a_priority : string
val a_enabled : string
val a_fired : string

val a_policy : string
(** encoded {!Error_policy} ({!Error_policy.to_string}) *)

val a_max_retries : string
(** bounded re-attempts for failing detached firings *)

val a_failure_streak : string
(** consecutive failed firings — the circuit-breaker state *)

val a_quarantined : string
(** breaker open: set when a [Quarantine n] rule trips *)

(** {1 Attribute names of dead-letter objects} *)

val a_rule : string
(** OID of the failing rule *)

val a_instance : string
(** the triggering composite-event instance, {!Events.Codec.encode_instance} *)

val a_error : string
(** printed exception *)

val a_attempts : string
(** execution attempts so far (initial firing + retries + replays) *)

val a_at : string
(** logical detection time of the failed firing *)
