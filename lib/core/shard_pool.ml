open Import

(* Domain-parallel execution: N shards, each a full {!System} (database,
   WAL, detectors, scheduler) owned by one domain.  The only process-wide
   state a shard touches is the symbol table and the Obs layer, both
   domain-safe; everything stateful about objects and rules lives inside
   exactly one shard, so shards never contend on data — they exchange
   messages.

   Routing invariant: shard [i] of [n] allocates OIDs congruent to
   [i mod n] (Db.configure_shard), so [Oid.to_int oid mod n] names the
   owner and a send can always be routed without a directory.

   Failure discipline (see DESIGN.md "failure model"): inboxes are bounded
   and overflow is governed by a per-pool backpressure policy; a supervisor
   domain watches per-shard liveness (an [alive] flag written by the worker)
   and progress (a [busy_since] heartbeat timestamp refreshed at every job
   boundary), tears down a dead or wedged shard, and restarts a fresh engine
   on the same OID stride — the user-supplied [init] re-runs, which is where
   per-shard [Wal.recover] lives, so acknowledged commits survive the
   restart.  The message being executed when a shard died is dead-lettered
   (re-running it would kill the successor too); claimed-but-unstarted
   messages are replayed.  Restarts are budgeted: too many inside a window
   and the shard is degraded — sends to it fail fast with a typed error
   until an operator calls [reinstate]. *)

(* --- observability -------------------------------------------------------- *)

let st_restart =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "shard.restart") "shard.restart"

let st_degraded =
  Obs.Metrics.register
    ~id:(Oodb.Symbol.intern "shard.degraded")
    "shard.degraded"

let st_wedge =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "shard.wedge") "shard.wedge"

let st_shed =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "shard.shed") "shard.shed"

let st_dead_letter =
  Obs.Metrics.register
    ~id:(Oodb.Symbol.intern "shard.dead_letter")
    "shard.dead_letter"

let st_timeout =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "shard.timeout") "shard.timeout"

(* duration histogram of one supervisor sweep over every shard *)
let st_supervise =
  Obs.Metrics.register
    ~id:(Oodb.Symbol.intern "shard.supervise")
    "shard.supervise"

(* value histogram: inbox depth observed at each supervisor sweep *)
let st_inbox_depth =
  Obs.Metrics.register
    ~id:(Oodb.Symbol.intern "shard.inbox_depth")
    "shard.inbox_depth"

(* --- typed errors ---------------------------------------------------------- *)

type error =
  | Stopped
  | Degraded of int
  | Overloaded of int
  | Dead_lettered of int
  | Timed_out of int

exception Shard_error of error

(* Raised by the payload [kill] posts: simulated domain death.  Deliberately
   NOT contained at the job boundary — it unwinds the worker loop exactly
   like a crash would, leaving the in-flight message claimed for the
   supervisor to dead-letter. *)
exception Shard_kill

let error_to_string = function
  | Stopped -> "pool stopped"
  | Degraded i -> Printf.sprintf "shard %d degraded" i
  | Overloaded i -> Printf.sprintf "shard %d overloaded" i
  | Dead_lettered i -> Printf.sprintf "dead-lettered for shard %d" i
  | Timed_out i -> Printf.sprintf "timed out waiting on shard %d" i

let () =
  Printexc.register_printer (function
    | Shard_error e -> Some ("Shard_pool.Shard_error: " ^ error_to_string e)
    | Shard_kill -> Some "Shard_pool.Shard_kill"
    | _ -> None)

type backpressure = Block of { max_wait_ms : int } | Shed_newest | Dead_letter

type supervision = {
  heartbeat_interval_ms : int;
  wedge_timeout_ms : int;
  max_restarts : int;
  restart_window_ms : int;
}

let default_supervision =
  {
    heartbeat_interval_ms = 10;
    wedge_timeout_ms = 500;
    max_restarts = 3;
    restart_window_ms = 10_000;
  }

type shard_state = [ `Ready | `Restarting | `Degraded ]

let state_to_string = function
  | `Ready -> "ready"
  | `Restarting -> "restarting"
  | `Degraded -> "degraded"

(* --- one-shot synchronisation cell --------------------------------------- *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  (* first fill wins: a job that completes after its abort callback already
     reported a typed error must not overwrite what the caller saw *)
  let fill t x =
    Mutex.lock t.m;
    (match t.v with
    | None ->
      t.v <- Some x;
      Condition.broadcast t.c
    | Some _ -> ());
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let x = match t.v with Some x -> x | None -> assert false in
    Mutex.unlock t.m;
    x

  (* [Condition] has no timed wait, so the deadline variant polls: peek
     under the mutex, then sleep a capped-jittered gap (50µs doubling to
     1ms).  Used only on the explicit-timeout path, where the granularity
     is noise against the timeout itself. *)
  let read_until t ~deadline_ns =
    let rec go attempt =
      Mutex.lock t.m;
      let v = t.v in
      Mutex.unlock t.m;
      match v with
      | Some x -> Some x
      | None ->
        if Obs.Clock.now_ns () >= deadline_ns then None
        else begin
          (try
             Unix.sleepf
               (Error_policy.retry_delay ~base:0.00005 ~cap:0.001
                  ~rand:(fun () -> Random.float 1.)
                  attempt)
           with Unix.Unix_error _ -> ());
          go (attempt + 1)
        end
    in
    go 1
end

(* --- bounded MPSC mailbox -------------------------------------------------- *)

(* Treiber stack with batch consume: producers push with one CAS (lock-free,
   any domain), the consumer exchanges the whole stack and reverses it, which
   restores per-producer FIFO order.  Parking uses the Dekker store-load
   pattern — the consumer publishes [sleeping] before its final emptiness
   check, producers re-read it after their push, and seqcst atomics make it
   impossible for both to miss each other.

   Bounding: [size] is reserved with a fetch-and-add before the push CAS, so
   the capacity is a hard bound on queued messages.  [push] (unbounded)
   exists for control messages and supervisor replays, which must never be
   shed.  [take ~cancelled] lets a superseded consumer — a worker whose
   generation the supervisor bumped while it was parked — wake and leave
   without stealing from its successor. *)
module Mpsc = struct
  type 'a t = {
    head : 'a list Atomic.t; (* newest first *)
    size : int Atomic.t; (* total weight of queued messages *)
    (* weight of one message: a job vector counts as its length, so the
       bounded capacity and depth gauges stay in *jobs* even when many jobs
       travel in one message *)
    weigh : 'a -> int;
    pushes : int Atomic.t; (* successful CAS publications, monotone *)
    lock : Mutex.t;
    cond : Condition.t;
    sleeping : bool Atomic.t;
  }

  let create ?(weigh = fun _ -> 1) () =
    {
      head = Atomic.make [];
      size = Atomic.make 0;
      weigh;
      pushes = Atomic.make 0;
      lock = Mutex.create ();
      cond = Condition.create ();
      sleeping = Atomic.make false;
    }

  let rec push_raw t x =
    let old = Atomic.get t.head in
    if not (Atomic.compare_and_set t.head old (x :: old)) then push_raw t x
    else ignore (Atomic.fetch_and_add t.pushes 1)

  let pushes t = Atomic.get t.pushes

  let signal t =
    if Atomic.get t.sleeping then begin
      Mutex.lock t.lock;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock
    end

  let push t x =
    ignore (Atomic.fetch_and_add t.size (t.weigh x));
    push_raw t x;
    signal t

  let try_push t ~capacity x =
    let w = t.weigh x in
    if Atomic.fetch_and_add t.size w > capacity - w then begin
      ignore (Atomic.fetch_and_add t.size (-w));
      false
    end
    else begin
      push_raw t x;
      signal t;
      true
    end

  let depth t = max 0 (Atomic.get t.size)

  let weight_of t xs = List.fold_left (fun acc x -> acc + t.weigh x) 0 xs

  (* consumer or supervisor: everything queued right now, without blocking *)
  let take_now t =
    match Atomic.exchange t.head [] with
    | [] -> []
    | xs ->
      ignore (Atomic.fetch_and_add t.size (-weight_of t xs));
      List.rev xs

  (* consumer only; blocks until a message is available or [cancelled ()]
     observes true at a wake-up (then returns []) *)
  let rec take t ~cancelled =
    match Atomic.exchange t.head [] with
    | [] ->
      if cancelled () then []
      else begin
        Mutex.lock t.lock;
        Atomic.set t.sleeping true;
        (match Atomic.get t.head with
        | [] -> if not (cancelled ()) then Condition.wait t.cond t.lock
        | _ -> ());
        Atomic.set t.sleeping false;
        Mutex.unlock t.lock;
        take t ~cancelled
      end
    | xs ->
      ignore (Atomic.fetch_and_add t.size (-weight_of t xs));
      List.rev xs

  (* unconditional wake for cancellation — bypasses the sleeping-flag
     fast-path check because the target may be mid-park *)
  let wake t =
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
end

(* --- pool ----------------------------------------------------------------- *)

type job = {
  run : System.t -> unit;
  trace : int;
  abort : (error -> unit) option; (* invoked when the job is discarded *)
}

(* [Jobs] is a cross-shard flush: a vector of jobs (in submission order)
   published as one MPSC message — one CAS, one wakeup — instead of one per
   job.  Capacity, depth and every job-granular counter still account the
   vector's length (the inbox weighs messages in jobs). *)
type msg = Stop | Job of job | Jobs of job list

let weigh_msg = function
  | Stop | Job _ -> 1
  | Jobs js -> List.length js

(* encoded shard_state for lock-free cross-domain reads *)
let s_ready = 0

and s_restarting = 1

and s_degraded = 2

type shard = {
  idx : int;
  inbox : msg Mpsc.t; (* owned by the shard slot; survives restarts *)
  mutable system : System.t option; (* written by the shard before ready *)
  mutable domain : (unit Domain.t * bool Atomic.t) option;
      (* (domain, finished); supervisor/create/stop only *)
  processed : int Atomic.t;
  failed : int Atomic.t;
  state : int Atomic.t;
  alive : bool Atomic.t; (* current-generation worker loop is running *)
  init_failed : bool Atomic.t; (* a restart's [init] raised *)
  generation : int Atomic.t; (* bumped by every teardown *)
  hand : Mutex.t; (* guards the worker<->supervisor job handoff *)
  mutable pending : msg list; (* claimed batch not yet started; under [hand] *)
  mutable current : msg option; (* message being executed; under [hand] *)
  mutable deferred : (unit -> unit) list;
      (* completions parked until the next durability point (the idle
         hook); newest first, under [hand] *)
  heartbeat : int Atomic.t; (* batches + jobs, monotone *)
  busy_since : float Atomic.t; (* Clock ns; 0. when idle *)
  restarts : int Atomic.t;
  mutable restart_times : float list; (* supervisor domain only *)
  reinstate_requested : bool Atomic.t;
}

type t = {
  n : int;
  shards : shard array;
  capacity : int;
  policy : backpressure;
  supervision : supervision option;
  init : t -> int -> System.t; (* kept so the supervisor can restart *)
  enqueued : int Atomic.t; (* jobs accepted, pool-wide *)
  completed : int Atomic.t; (* jobs fully executed (posts they made count
                               into [enqueued] before this increments) *)
  discarded : int Atomic.t; (* accepted jobs that will never execute:
                               aborted at teardown, degrade or stop *)
  forwarded : int Atomic.t; (* jobs that hopped shards *)
  shed : int Atomic.t; (* submissions rejected by backpressure *)
  timeouts : int Atomic.t; (* run_on deadline expiries *)
  failures : (int * exn) Obs.Ring.t; (* guarded by failures_lock *)
  failures_lock : Mutex.t;
  on_idle : (int -> System.t -> unit) option;
      (* runs on the shard domain whenever its mailbox goes empty — the
         durability hook: sealing a group-commit WAL here means a quiescent
         shard never holds unsynced commits, while a busy shard coalesces
         an entire drain run into one fsync *)
  dead_letters : (int * job) Obs.Ring.t; (* guarded by dead_letters_lock *)
  dead_letters_lock : Mutex.t;
  on_failure : (shard:int -> exn -> unit) option;
  stopped : bool Atomic.t;
  mutable supervisor : unit Domain.t option;
  supervisor_stop : bool Atomic.t;
  mutable zombies : (unit Domain.t * bool Atomic.t) list;
      (* abandoned wedged domains; guarded by zombies_lock *)
  zombies_lock : Mutex.t;
}

type stats = {
  shard_processed : int array;
  shard_failed : int array;
  shard_state : shard_state array;
  shard_restarts : int array;
  inbox_depth : int array;
  forwarded : int;
  enqueued : int;
  completed : int;
  discarded : int;
  shed : int;
  dead_lettered : int;
  timeouts : int;
  mpsc_pushes : int; (* successful inbox CASes, pool-wide: a flushed job
                        vector counts once, so batching shows up here *)
}

(* Which shard (of which pool) the current domain is executing for: lets a
   same-shard post run inline, preserving cascade depth, and identifies
   cross-shard posts for the forwarded counter. *)
type ctx = { c_pool : t; c_idx : int; c_sys : System.t }

let current_ctx : ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let shard_count t = t.n
let shard_of t oid = Oid.to_int oid mod t.n

let get_state sh : shard_state =
  let s = Atomic.get sh.state in
  if s = s_ready then `Ready else if s = s_restarting then `Restarting
  else `Degraded

let shard_state t idx =
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  get_state t.shards.(idx)

let system_exn sh =
  match sh.system with
  | Some sys -> sys
  | None -> invalid_arg "Shard_pool: shard not initialised"

let note_failure t sh e =
  ignore (Atomic.fetch_and_add sh.failed 1);
  Mutex.protect t.failures_lock (fun () ->
      Obs.Ring.push t.failures (sh.idx, e));
  match t.on_failure with Some f -> f ~shard:sh.idx e | None -> ()

let record_dead_letter t idx j =
  Mutex.protect t.dead_letters_lock (fun () ->
      Obs.Ring.push t.dead_letters (idx, j));
  Obs.Metrics.hit st_dead_letter;
  if !Obs.Trace.on then Obs.Trace.instant "shard.dead_letter" (string_of_int idx)

let abort_job j err =
  match j.abort with
  | Some f -> ( try f err with _ -> ())
  | None -> ()

(* An accepted message that will never run: dead-letter it (so an operator
   can replay after the cause clears) and surface the typed error to any
   synchronous waiter.  A job vector is unbundled — each job is discarded,
   dead-lettered and aborted individually, so accounting and replay stay
   job-granular. *)
let reject_job (t : t) idx err j =
  ignore (Atomic.fetch_and_add t.discarded 1);
  record_dead_letter t idx j;
  abort_job j err

let reject (t : t) idx err = function
  | Stop -> ()
  | Job j -> reject_job t idx err j
  | Jobs js -> List.iter (reject_job t idx err) js

(* Stop is final — no replay possible — so shutdown leftovers are discarded
   without parking them in the dead-letter ring. *)
let discard_job_at_stop (t : t) j =
  ignore (Atomic.fetch_and_add t.discarded 1);
  abort_job j Stopped

let discard_at_stop (t : t) = function
  | Stop -> ()
  | Job j -> discard_job_at_stop t j
  | Jobs js -> List.iter (discard_job_at_stop t) js

(* --- durability-deferred completions ----------------------------------------
   A job that wants its waiter released only once its commits are sealed
   parks the release here; the worker runs the parked list right after the
   idle hook (the seal), and on its way out of the loop so no waiter can
   hang across a stop or a crash-restart. *)

let defer_on sh f =
  Mutex.protect sh.hand (fun () -> sh.deferred <- f :: sh.deferred)

let take_deferred sh =
  Mutex.protect sh.hand (fun () ->
      match sh.deferred with
      | [] -> []
      | l ->
        sh.deferred <- [];
        List.rev l)

let run_deferred fs = List.iter (fun f -> try f () with _ -> ()) fs

(* Park [f] until the owning shard's next durability point; [false] means
   the pool has no idle hook (or runs inline), so the caller completes
   immediately — deferral only makes sense when something seals on idle. *)
let defer_durable t idx f =
  if t.on_idle = None || t.n = 1 then false
  else begin
    defer_on t.shards.(idx) f;
    true
  end

(* Shard-level containment backstop: a rule failure that escapes the
   rule-layer policies (Propagate, or an error outside any firing) is caught
   at the job boundary, logged, and the shard moves to the next message —
   it never unwinds the worker loop, so one shard's poison job cannot take
   down a sibling or the pool.  [Shard_kill] is the one exception that does
   unwind: it simulates the domain dying mid-job. *)
let run_job t sh sys ~trace run =
  (try
     if trace = 0 then run sys
     else Obs.Trace.with_trace trace (fun () -> run sys)
   with
  | Shard_kill -> raise Shard_kill
  | e -> note_failure t sh e);
  ignore (Atomic.fetch_and_add sh.processed 1);
  ignore (Atomic.fetch_and_add t.completed 1)

(* --- submission and backpressure ------------------------------------------ *)

let accept t sh j =
  if Mpsc.try_push sh.inbox ~capacity:t.capacity (Job j) then begin
    ignore (Atomic.fetch_and_add t.enqueued 1);
    Ok ()
  end
  else
    match t.policy with
    | Shed_newest ->
      ignore (Atomic.fetch_and_add t.shed 1);
      Obs.Metrics.hit st_shed;
      Error (Overloaded sh.idx)
    | Dead_letter ->
      (* parked, not lost: [replay_dead_letters] resubmits it *)
      ignore (Atomic.fetch_and_add t.shed 1);
      record_dead_letter t sh.idx j;
      Error (Dead_lettered sh.idx)
    | Block { max_wait_ms } ->
      let deadline =
        Obs.Clock.now_ns () +. (float_of_int max_wait_ms *. 1e6)
      in
      let rec wait attempt =
        (* a shard blocked on a full sibling is exerting backpressure, not
           wedged: refresh its own heartbeat so the supervisor stays calm *)
        (match Domain.DLS.get current_ctx with
        | Some c when c.c_pool == t ->
          Atomic.set t.shards.(c.c_idx).busy_since (Obs.Clock.now_ns ())
        | _ -> ());
        if Atomic.get t.stopped then Error Stopped
        else if get_state sh = `Degraded then Error (Degraded sh.idx)
        else if Mpsc.try_push sh.inbox ~capacity:t.capacity (Job j) then begin
          ignore (Atomic.fetch_and_add t.enqueued 1);
          Ok ()
        end
        else if Obs.Clock.now_ns () >= deadline then begin
          ignore (Atomic.fetch_and_add t.shed 1);
          Obs.Metrics.hit st_shed;
          Error (Overloaded sh.idx)
        end
        else begin
          (try
             Unix.sleepf
               (Error_policy.retry_delay ~base:0.0001 ~cap:0.002
                  ~rand:(fun () -> Random.float 1.)
                  attempt)
           with Unix.Unix_error _ -> ());
          wait (attempt + 1)
        end
      in
      wait 1

(* [accept] for a flushed job vector: the whole flush is admitted or
   rejected atomically as one message (one CAS, one wakeup), and the
   backpressure policies account all [k] jobs — capacity is charged in
   jobs (the inbox weighs a vector as its length), a shed flush bumps the
   shed counter by [k], and a dead-lettered flush parks each job
   individually so replay stays job-granular. *)
let accept_many t sh js =
  let k = List.length js in
  let msg = Jobs js in
  if Mpsc.try_push sh.inbox ~capacity:t.capacity msg then begin
    ignore (Atomic.fetch_and_add t.enqueued k);
    Ok ()
  end
  else
    match t.policy with
    | Shed_newest ->
      ignore (Atomic.fetch_and_add t.shed k);
      Obs.Metrics.add st_shed k;
      Error (Overloaded sh.idx)
    | Dead_letter ->
      ignore (Atomic.fetch_and_add t.shed k);
      List.iter (record_dead_letter t sh.idx) js;
      Error (Dead_lettered sh.idx)
    | Block { max_wait_ms } ->
      let deadline =
        Obs.Clock.now_ns () +. (float_of_int max_wait_ms *. 1e6)
      in
      let rec wait attempt =
        (match Domain.DLS.get current_ctx with
        | Some c when c.c_pool == t ->
          Atomic.set t.shards.(c.c_idx).busy_since (Obs.Clock.now_ns ())
        | _ -> ());
        if Atomic.get t.stopped then Error Stopped
        else if get_state sh = `Degraded then Error (Degraded sh.idx)
        else if Mpsc.try_push sh.inbox ~capacity:t.capacity msg then begin
          ignore (Atomic.fetch_and_add t.enqueued k);
          Ok ()
        end
        else if Obs.Clock.now_ns () >= deadline then begin
          ignore (Atomic.fetch_and_add t.shed k);
          Obs.Metrics.add st_shed k;
          Error (Overloaded sh.idx)
        end
        else begin
          (try
             Unix.sleepf
               (Error_policy.retry_delay ~base:0.0001 ~cap:0.002
                  ~rand:(fun () -> Random.float 1.)
                  attempt)
           with Unix.Unix_error _ -> ());
          wait (attempt + 1)
        end
      in
      wait 1

let submit t idx ~run ~abort =
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  if Atomic.get t.stopped then Error Stopped
  else if t.n = 1 then begin
    (* a 1-shard pool degenerates to direct execution on the caller: no
       domain, no queue, no DLS lookup, and none of the queue accounting a
       drain would reconcile — jobs run synchronously, so the pool is
       always quiescent.  This keeps the inline path at the seed's cost:
       one containment frame and one counter bump over a raw call. *)
    let sh = t.shards.(0) in
    (try run (system_exn sh) with e -> note_failure t sh e);
    ignore (Atomic.fetch_and_add sh.processed 1);
    Ok ()
  end
  else begin
    let sh = t.shards.(idx) in
    match Domain.DLS.get current_ctx with
    | Some c when c.c_pool == t && c.c_idx = idx ->
      (* already on the owning shard: run inline under the ambient trace *)
      ignore (Atomic.fetch_and_add t.enqueued 1);
      run_job t sh c.c_sys ~trace:0 run;
      Ok ()
    | Some c when c.c_pool == t ->
      if get_state sh = `Degraded then Error (Degraded idx)
      else begin
        ignore (Atomic.fetch_and_add t.forwarded 1);
        accept t sh { run; trace = Obs.Trace.current (); abort }
      end
    | _ ->
      if get_state sh = `Degraded then Error (Degraded idx)
      else accept t sh { run; trace = Obs.Trace.current (); abort }
  end

let post_on t idx run = submit t idx ~run ~abort:None

let run_on ?timeout_ms t idx f =
  let iv = Ivar.create () in
  let run sys = Ivar.fill iv (try Ok (f sys) with e -> Error e) in
  let abort = Some (fun err -> Ivar.fill iv (Error (Shard_error err))) in
  match submit t idx ~run ~abort with
  | Error err -> Error (Shard_error err)
  | Ok () -> (
    match timeout_ms with
    | None -> Ivar.read iv
    | Some ms -> (
      let deadline_ns = Obs.Clock.now_ns () +. (float_of_int ms *. 1e6) in
      match Ivar.read_until iv ~deadline_ns with
      | Some r -> r
      | None ->
        (* the job may still execute later — a timeout only abandons the
           wait, it cannot retract a message already accepted *)
        ignore (Atomic.fetch_and_add t.timeouts 1);
        Obs.Metrics.hit st_timeout;
        Error (Shard_error (Timed_out idx))))

let post t oid meth args =
  post_on t (shard_of t oid) (fun sys ->
      ignore (Db.send (System.db sys) oid meth args))

let call ?timeout_ms t oid meth args =
  run_on ?timeout_ms t (shard_of t oid) (fun sys ->
      Db.send (System.db sys) oid meth args)

let each ?timeout_ms t f =
  let rec go i acc =
    if i >= t.n then Ok (List.rev acc)
    else
      match run_on ?timeout_ms t i (fun sys -> f i sys) with
      | Ok v -> go (i + 1) (v :: acc)
      | Error e -> Error e
  in
  go 0 []

(* --- cross-shard message batching ------------------------------------------ *)

(* A posting-side buffer: cross-shard submissions accumulate per destination
   shard and each destination's run is flushed as one [Jobs] vector — one
   CAS and one wakeup instead of one per job.  Not thread-safe: one batch
   belongs to one posting thread (make one per producer). *)
type batch = {
  b_pool : t;
  b_cap : int; (* per-destination flush threshold, in jobs *)
  b_jobs : job list array; (* newest first, one buffer per destination *)
  b_len : int array;
}

let batch ?(flush_max = 64) t =
  if flush_max < 1 then invalid_arg "Shard_pool.batch: flush_max must be >= 1";
  {
    b_pool = t;
    (* a flush must fit the bounded inbox or Block would spin forever *)
    b_cap = min flush_max t.capacity;
    b_jobs = Array.make t.n [];
    b_len = Array.make t.n 0;
  }

let flush_shard b idx =
  match b.b_jobs.(idx) with
  | [] -> Ok ()
  | rev ->
    b.b_jobs.(idx) <- [];
    b.b_len.(idx) <- 0;
    let t = b.b_pool in
    let sh = t.shards.(idx) in
    let js = List.rev rev in
    if Atomic.get t.stopped then begin
      List.iter (fun j -> abort_job j Stopped) js;
      Error Stopped
    end
    else if get_state sh = `Degraded then begin
      (* the shard degraded after these jobs were buffered: they were never
         accepted, so only their waiters need the typed error *)
      List.iter (fun j -> abort_job j (Degraded idx)) js;
      Error (Degraded idx)
    end
    else begin
      match js with [ j ] -> accept t sh j | js -> accept_many t sh js
    end

let flush b =
  let err = ref None in
  for idx = 0 to b.b_pool.n - 1 do
    match flush_shard b idx with
    | Ok () -> ()
    | Error e -> if !err = None then err := Some e
  done;
  match !err with None -> Ok () | Some e -> Error e

let batch_submit b idx ~run ~abort =
  let t = b.b_pool in
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  if Atomic.get t.stopped then Error Stopped
  else if t.n = 1 then submit t idx ~run ~abort
  else
    match Domain.DLS.get current_ctx with
    | Some c when c.c_pool == t && c.c_idx = idx ->
      (* on the owning shard already: inline, never buffered — buffering
         behind the running job would deadlock a synchronous waiter *)
      submit t idx ~run ~abort
    | ctx ->
      (match ctx with
      | Some c when c.c_pool == t ->
        ignore (Atomic.fetch_and_add t.forwarded 1)
      | _ -> ());
      b.b_jobs.(idx) <-
        { run; trace = Obs.Trace.current (); abort } :: b.b_jobs.(idx);
      b.b_len.(idx) <- b.b_len.(idx) + 1;
      if b.b_len.(idx) >= b.b_cap then flush_shard b idx else Ok ()

let batch_post_on b idx run = batch_submit b idx ~run ~abort:None

let batch_post b oid meth args =
  batch_post_on b
    (shard_of b.b_pool oid)
    (fun sys -> ignore (Db.send (System.db sys) oid meth args))

(* --- batched ingestion ------------------------------------------------------ *)

let ingest ?flush_max ?(wait = false) t events =
  match events with
  | [] -> Ok ()
  | _ ->
    if Atomic.get t.stopped then Error Stopped
    else if t.n = 1 then begin
      (* inline engine: the single shard's system ingests the whole batch
         synchronously, under the same containment frame as [submit] *)
      let sh = t.shards.(0) in
      (match System.ingest (system_exn sh) events with
      | Ok _ -> ()
      | Error e -> note_failure t sh e);
      ignore (Atomic.fetch_and_add sh.processed 1);
      Ok ()
    end
    else begin
      (* partition by owning shard, preserving per-shard event order, then
         hand each destination ONE job that ingests its whole sub-batch: the
         shard side amortizes the transaction + route-coalescing scope, and
         the posting side ships at most one message per destination *)
      let groups = Array.make t.n [] in
      List.iter
        (fun ((oid, _, _) as ev) ->
          let idx = shard_of t oid in
          groups.(idx) <- ev :: groups.(idx))
        events;
      let b = batch ?flush_max t in
      let err = ref None in
      let note e = if !err = None then err := Some e in
      let ivs = ref [] in
      Array.iteri
        (fun idx rev ->
          match rev with
          | [] -> ()
          | rev ->
            let sub = List.rev rev in
            let res =
              if not wait then
                batch_post_on b idx (fun sys ->
                    match System.ingest sys sub with
                    | Ok _ -> ()
                    (* re-raise so the job boundary records the shard
                       failure: the sub-batch transaction already rolled
                       back *)
                    | Error e -> raise e)
              else begin
                (* synchronous sub-batch: the waiter is released from the
                   shard's next durability point when the pool seals on
                   idle, from the job itself otherwise.  The ivar is
                   first-fill-wins, so filling again on a submit error or
                   an abort is safe. *)
                let iv = Ivar.create () in
                ivs := iv :: !ivs;
                let r =
                  batch_submit b idx
                    ~run:(fun sys ->
                      let r = System.ingest sys sub in
                      let fin () =
                        Ivar.fill iv
                          (match r with
                          | Ok _ -> Ok ()
                          | Error _ -> Error (Degraded idx))
                      in
                      if not (defer_durable t idx fin) then fin ();
                      match r with Ok _ -> () | Error e -> raise e)
                    ~abort:(Some (fun e -> Ivar.fill iv (Error e)))
                in
                (* a rejected submit may drop the job without running its
                   abort (backpressure shed): release this waiter here *)
                (match r with Error e -> Ivar.fill iv (Error e) | Ok () -> ());
                r
              end
            in
            (match res with Ok () -> () | Error e -> note e))
        groups;
      (match flush b with
      | Ok () -> ()
      | Error e ->
        (* a flush rejection may have dropped buffered jobs without their
           abort callbacks: make sure no waiter is left parked *)
        List.iter (fun iv -> Ivar.fill iv (Error e)) !ivs;
        note e);
      List.iter
        (fun iv -> match Ivar.read iv with Ok () -> () | Error e -> note e)
        !ivs;
      match !err with None -> Ok () | Some e -> Error e
    end

let kill t idx =
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  if t.n = 1 then
    invalid_arg "Shard_pool.kill: a 1-shard pool runs inline on the caller";
  post_on t idx (fun _ -> raise Shard_kill)

(* --- quiescence ------------------------------------------------------------ *)

(* Quiescence barrier: a round posts a no-op through every live shard's inbox
   (per-producer FIFO means it drains everything enqueued before it), then
   checks that no accepted job is still in flight — jobs spawned *by* jobs
   (cross-shard cascades) bump [enqueued] before their parent completes, and
   jobs the supervisor discarded count into [discarded], so
   completed + discarded >= enqueued really means quiet.  Degraded shards are
   skipped (their backlog was discarded when they degraded); a barrier
   rejected by backpressure just retries next round. *)
let drain (t : t) =
  let quiet () =
    Atomic.get t.completed + Atomic.get t.discarded >= Atomic.get t.enqueued
  in
  (* the barrier bypasses the bounded-inbox capacity: it is pool-internal
     bookkeeping and must neither shed user work nor count against the
     backpressure policy's counters *)
  let barrier i =
    let sh = t.shards.(i) in
    let iv = Ivar.create () in
    let j =
      {
        run = (fun _ -> Ivar.fill iv (Ok ()));
        trace = 0;
        abort = Some (fun err -> Ivar.fill iv (Error (Shard_error err)));
      }
    in
    Mpsc.push sh.inbox (Job j);
    ignore (Atomic.fetch_and_add t.enqueued 1);
    ignore (Ivar.read iv)
  in
  (* a shard draining the pool must not post a barrier to itself: its own
     worker is busy running this very job *)
  let self =
    match Domain.DLS.get current_ctx with
    | Some c when c.c_pool == t -> c.c_idx
    | _ -> -1
  in
  let rec go () =
    if t.n > 1 then
      for i = 0 to t.n - 1 do
        if i <> self && get_state t.shards.(i) <> `Degraded then barrier i
      done;
    if not (quiet ()) then begin
      (try Unix.sleepf 0.0002 with Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

(* --- introspection --------------------------------------------------------- *)

let stats t =
  {
    shard_processed = Array.map (fun sh -> Atomic.get sh.processed) t.shards;
    shard_failed = Array.map (fun sh -> Atomic.get sh.failed) t.shards;
    shard_state = Array.map get_state t.shards;
    shard_restarts = Array.map (fun sh -> Atomic.get sh.restarts) t.shards;
    inbox_depth = Array.map (fun sh -> Mpsc.depth sh.inbox) t.shards;
    forwarded = Atomic.get t.forwarded;
    enqueued = Atomic.get t.enqueued;
    completed = Atomic.get t.completed;
    discarded = Atomic.get t.discarded;
    shed = Atomic.get t.shed;
    dead_lettered =
      Mutex.protect t.dead_letters_lock (fun () ->
          Obs.Ring.total t.dead_letters);
    timeouts = Atomic.get t.timeouts;
    mpsc_pushes =
      Array.fold_left (fun acc sh -> acc + Mpsc.pushes sh.inbox) 0 t.shards;
  }

let recent_failures t =
  Mutex.protect t.failures_lock (fun () -> Obs.Ring.to_list_rev t.failures)

let dead_letter_count t =
  Mutex.protect t.dead_letters_lock (fun () -> Obs.Ring.length t.dead_letters)

let purge_dead_letters t =
  Mutex.protect t.dead_letters_lock (fun () ->
      let n = Obs.Ring.length t.dead_letters in
      Obs.Ring.clear t.dead_letters;
      n)

let replay_dead_letters t =
  if Atomic.get t.stopped then 0
  else begin
    let entries =
      Mutex.protect t.dead_letters_lock (fun () ->
          let l = Obs.Ring.to_list t.dead_letters in
          Obs.Ring.clear t.dead_letters;
          l)
    in
    let replayed = ref 0 in
    List.iter
      (fun (idx, j) ->
        let sh = t.shards.(idx) in
        let back () =
          Mutex.protect t.dead_letters_lock (fun () ->
              Obs.Ring.push t.dead_letters (idx, j))
        in
        (* bypass the backpressure policy: a replayed job was already
           counted (shed or discarded) when it was parked, and the
           Dead_letter policy would park a rejected replay a second time —
           plain bounded push, back to the ring exactly once on overflow *)
        if get_state sh = `Degraded then back ()
        else if Mpsc.try_push sh.inbox ~capacity:t.capacity (Job j) then begin
          ignore (Atomic.fetch_and_add t.enqueued 1);
          incr replayed
        end
        else back ())
      entries;
    !replayed
  end

(* --- worker ---------------------------------------------------------------- *)

(* The worker<->supervisor handoff protocol: the worker moves messages
   inbox -> [pending] -> [current] -> executed, with the pending/current
   transitions made under [hand] and gated on the worker's generation.  A
   teardown bumps the generation and claims pending + current atomically
   under the same lock, so exactly one side owns every message: a superseded
   worker that wakes mid-transition sees itself stale and hands anything it
   holds back to the inbox for its successor. *)

let claim sh ~gen =
  Mutex.protect sh.hand (fun () ->
      if Atomic.get sh.generation <> gen then `Stale
      else
        match sh.pending with
        | m :: rest ->
          sh.pending <- rest;
          sh.current <- Some m;
          `Run m
        | [] -> `Empty)

let finish sh ~gen =
  Mutex.protect sh.hand (fun () ->
      if Atomic.get sh.generation = gen then sh.current <- None)

let worker t sh ~gen ready =
  let stale () = Atomic.get sh.generation <> gen in
  match t.init t sh.idx with
  | exception e ->
    note_failure t sh e;
    Atomic.set sh.init_failed true;
    (match ready with Some iv -> Ivar.fill iv (Error e) | None -> ());
    Mutex.protect sh.hand (fun () ->
        if not (stale ()) then Atomic.set sh.alive false)
  | sys ->
    Db.configure_shard (System.db sys) ~index:sh.idx ~of_:t.n;
    Domain.DLS.set current_ctx
      (Some { c_pool = t; c_idx = sh.idx; c_sys = sys });
    Mutex.protect sh.hand (fun () ->
        if not (stale ()) then begin
          sh.system <- Some sys;
          Atomic.set sh.alive true;
          Atomic.set sh.state s_ready
        end);
    (match ready with Some iv -> Ivar.fill iv (Ok ()) | None -> ());
    let outcome = ref `Abandoned in
    (try
       let rec loop () =
         match claim sh ~gen with
         | `Stale -> outcome := `Abandoned
         | `Run Stop -> outcome := `Stopped
         | `Run (Job j) ->
           Atomic.set sh.busy_since (Obs.Clock.now_ns ());
           ignore (Atomic.fetch_and_add sh.heartbeat 1);
           run_job t sh sys ~trace:j.trace j.run;
           Atomic.set sh.busy_since 0.;
           finish sh ~gen;
           loop ()
         | `Run (Jobs js) ->
           (* a flushed vector: per-job heartbeat/busy refresh so the
              wedge watchdog sees progress inside a long vector, and
              per-job containment exactly as if each had arrived alone *)
           List.iter
             (fun j ->
               Atomic.set sh.busy_since (Obs.Clock.now_ns ());
               ignore (Atomic.fetch_and_add sh.heartbeat 1);
               run_job t sh sys ~trace:j.trace j.run)
             js;
           Atomic.set sh.busy_since 0.;
           finish sh ~gen;
           loop ()
         | `Empty ->
           let batch =
             (* grab anything that raced in without blocking first: the
                idle hook must only fire on a truly quiet mailbox, and a
                loaded shard must not pay a durability point mid-run *)
             match Mpsc.take_now sh.inbox with
             | [] ->
               (match t.on_idle with
               | Some f -> ( try f sh.idx sys with e -> note_failure t sh e)
               | None -> ());
               (* the seal above made everything committed so far durable:
                  release the waiters parked on this durability point *)
               run_deferred (take_deferred sh);
               Mpsc.take sh.inbox ~cancelled:stale
             | b -> b
           in
           ignore (Atomic.fetch_and_add sh.heartbeat 1);
           let keep =
             Mutex.protect sh.hand (fun () ->
                 if stale () then false
                 else begin
                   sh.pending <- batch;
                   true
                 end)
           in
           if keep then loop ()
           else begin
             (* raced a teardown: hand the batch to the successor *)
             List.iter (Mpsc.push sh.inbox) batch;
             outcome := `Abandoned
           end
       in
       loop ()
     with
    | Shard_kill ->
      (* simulated domain death: [current] stays claimed — the supervisor
         dead-letters it and replays the rest of [pending] *)
      Atomic.set sh.busy_since 0.;
      outcome := `Died
    | e ->
      (* a worker-loop failure outside any job: record it and die; the
         supervisor treats it like a crash *)
      note_failure t sh e;
      Atomic.set sh.busy_since 0.;
      outcome := `Died);
    (match !outcome with
    | `Stopped ->
      (* shutdown: discard anything behind the stop marker so synchronous
         waiters get [Stopped] instead of blocking forever *)
      let leftovers =
        Mutex.protect sh.hand (fun () ->
            if stale () then []
            else begin
              let p = sh.pending in
              sh.pending <- [];
              sh.current <- None;
              p
            end)
      in
      List.iter (discard_at_stop t) leftovers;
      List.iter (discard_at_stop t) (Mpsc.take_now sh.inbox);
      (* no seal is coming: release parked waiters rather than hang them *)
      run_deferred (take_deferred sh);
      Mutex.protect sh.hand (fun () ->
          if not (stale ()) then Atomic.set sh.alive false)
    | `Died ->
      run_deferred (take_deferred sh);
      Mutex.protect sh.hand (fun () ->
          if not (stale ()) then Atomic.set sh.alive false)
    | `Abandoned -> ())

let spawn_worker t sh ready =
  let gen = Atomic.get sh.generation in
  let fin = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> Atomic.set fin true)
          (fun () -> worker t sh ~gen ready))
  in
  sh.domain <- Some (d, fin)

(* --- supervisor ------------------------------------------------------------ *)

(* Invalidate the current worker generation and claim whatever it held.
   After this returns the old worker (if still running) sees itself stale at
   its next transition and exits without touching the inbox. *)
let teardown sh =
  Mutex.protect sh.hand (fun () ->
      ignore (Atomic.fetch_and_add sh.generation 1);
      Atomic.set sh.alive false;
      Atomic.set sh.busy_since 0.;
      Atomic.set sh.init_failed false;
      let cur = sh.current and rest = sh.pending in
      sh.current <- None;
      sh.pending <- [];
      (cur, rest))

let reap_domain t sh ~wedged =
  match sh.domain with
  | None -> ()
  | Some (d, fin) ->
    sh.domain <- None;
    if Atomic.get fin || not wedged then Domain.join d
    else
      (* a wedged domain cannot be joined (OCaml domains are not killable);
         abandon it — its job, when and if it returns, finds itself stale
         and exits without side effects on the pool *)
      Mutex.protect t.zombies_lock (fun () ->
          t.zombies <- (d, fin) :: t.zombies)

let degrade t sh cur rest =
  Atomic.set sh.state s_degraded;
  Obs.Metrics.hit st_degraded;
  if !Obs.Trace.on then Obs.Trace.instant "shard.degraded" (string_of_int sh.idx);
  let err = Degraded sh.idx in
  (match cur with Some m -> reject t sh.idx err m | None -> ());
  List.iter (reject t sh.idx err) rest;
  List.iter (reject t sh.idx err) (Mpsc.take_now sh.inbox)

let restart t sup sh ~wedged =
  let now = Obs.Clock.now_ns () in
  let window = float_of_int sup.restart_window_ms *. 1e6 in
  sh.restart_times <-
    List.filter (fun ts -> now -. ts <= window) sh.restart_times;
  let cur, rest = teardown sh in
  Mpsc.wake sh.inbox;
  reap_domain t sh ~wedged;
  if List.length sh.restart_times >= sup.max_restarts then degrade t sh cur rest
  else begin
    sh.restart_times <- now :: sh.restart_times;
    ignore (Atomic.fetch_and_add sh.restarts 1);
    Obs.Metrics.hit st_restart;
    if !Obs.Trace.on then
      Obs.Trace.instant "shard.restart" (string_of_int sh.idx);
    Atomic.set sh.state s_restarting;
    (* preserve arrival order: claimed-but-unstarted messages go back ahead
       of what queued behind them while the shard was down *)
    let queued = Mpsc.take_now sh.inbox in
    List.iter (Mpsc.push sh.inbox) (rest @ queued);
    (* the in-flight message crashed or wedged this shard: dead-letter it
       rather than replay it into the fresh engine.  For a job vector that
       is the whole vector — job-granular replay after a mid-vector crash
       would need per-job completion tracking; the operator replaying a
       vector's dead letters may re-run its completed prefix. *)
    (match cur with
    | Some ((Job _ | Jobs _) as m) -> reject t sh.idx (Dead_lettered sh.idx) m
    | Some Stop -> Mpsc.push sh.inbox Stop
    | None -> ());
    spawn_worker t sh None
  end

let check_shard t sup sh now =
  match get_state sh with
  | `Degraded ->
    (* keep the mailbox honest: reject anything that raced past the
       degraded check in [submit] *)
    (match Mpsc.take_now sh.inbox with
    | [] -> ()
    | msgs -> List.iter (reject t sh.idx (Degraded sh.idx)) msgs);
    if Atomic.get sh.reinstate_requested then begin
      Atomic.set sh.reinstate_requested false;
      sh.restart_times <- [];
      restart t sup sh ~wedged:false
    end
  | `Restarting ->
    (* a restart is in flight: wait for its init unless it already failed *)
    if Atomic.get sh.init_failed then restart t sup sh ~wedged:false
  | `Ready ->
    if not (Atomic.get sh.alive) then restart t sup sh ~wedged:false
    else begin
      let busy = Atomic.get sh.busy_since in
      if
        busy > 0.
        && now -. busy > float_of_int sup.wedge_timeout_ms *. 1e6
      then begin
        Obs.Metrics.hit st_wedge;
        if !Obs.Trace.on then
          Obs.Trace.instant "shard.wedge" (string_of_int sh.idx);
        restart t sup sh ~wedged:true
      end
    end

let supervise t sup =
  let interval = float_of_int sup.heartbeat_interval_ms /. 1000. in
  while not (Atomic.get t.supervisor_stop) do
    (try Unix.sleepf interval with Unix.Unix_error _ -> ());
    if not (Atomic.get t.supervisor_stop) then begin
      let tok =
        if !Obs.Trace.on then Some (Obs.Trace.enter "supervise" "") else None
      in
      let t0 = Obs.Clock.now_ns () in
      Array.iter
        (fun sh ->
          check_shard t sup sh t0;
          if !Obs.Metrics.on then
            Obs.Metrics.observe_ns st_inbox_depth
              (float_of_int (Mpsc.depth sh.inbox)))
        t.shards;
      if !Obs.Metrics.on then
        Obs.Metrics.observe_ns st_supervise (Obs.Clock.now_ns () -. t0);
      match tok with Some tok -> Obs.Trace.exit tok | None -> ()
    end
  done

let reinstate t idx =
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  if t.supervision = None then
    invalid_arg "Shard_pool.reinstate: pool has no supervisor";
  (* only meaningful on a degraded shard — a request recorded against a
     healthy one would silently cancel a future degrade *)
  if get_state t.shards.(idx) = `Degraded then
    Atomic.set t.shards.(idx).reinstate_requested true

(* --- lifecycle ------------------------------------------------------------- *)

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (match t.supervisor with
    | Some d ->
      Atomic.set t.supervisor_stop true;
      Domain.join d;
      t.supervisor <- None
    | None -> ());
    Array.iter
      (fun sh ->
        match sh.domain with
        | Some _ -> Mpsc.push sh.inbox Stop
        | None -> ())
      t.shards;
    Array.iter
      (fun sh ->
        match sh.domain with
        | Some (d, _) ->
          Domain.join d;
          sh.domain <- None
        | None -> ())
      t.shards;
    (* degraded shards have no worker; make their typed errors visible to
       any waiter that raced the degrade *)
    Array.iter
      (fun sh -> List.iter (discard_at_stop t) (Mpsc.take_now sh.inbox))
      t.shards;
    (* abandoned wedged domains: join the ones whose poisoned job has since
       returned; a genuinely infinite job leaks its domain (documented) *)
    let zs =
      Mutex.protect t.zombies_lock (fun () ->
          let z = t.zombies in
          t.zombies <- [];
          z)
    in
    List.iter (fun (d, fin) -> if Atomic.get fin then Domain.join d) zs
  end

let create ?on_failure ?on_idle ?(failure_log_limit = 128)
    ?(dead_letter_limit = 256) ?(inbox_capacity = 4096)
    ?(backpressure = Block { max_wait_ms = 1_000 }) ?supervision ~shards:n
    ~init () =
  if n <= 0 then invalid_arg "Shard_pool.create: shards must be >= 1";
  if inbox_capacity < 1 then
    invalid_arg "Shard_pool.create: inbox_capacity must be >= 1";
  (match backpressure with
  | Block { max_wait_ms } when max_wait_ms < 0 ->
    invalid_arg "Shard_pool.create: Block max_wait_ms must be >= 0"
  | _ -> ());
  let t =
    {
      n;
      shards =
        Array.init n (fun idx ->
            {
              idx;
              inbox = Mpsc.create ~weigh:weigh_msg ();
              system = None;
              domain = None;
              processed = Atomic.make 0;
              failed = Atomic.make 0;
              state = Atomic.make s_ready;
              alive = Atomic.make false;
              init_failed = Atomic.make false;
              generation = Atomic.make 0;
              hand = Mutex.create ();
              pending = [];
              current = None;
              deferred = [];
              heartbeat = Atomic.make 0;
              busy_since = Atomic.make 0.;
              restarts = Atomic.make 0;
              restart_times = [];
              reinstate_requested = Atomic.make false;
            });
      capacity = inbox_capacity;
      policy = backpressure;
      supervision;
      init;
      enqueued = Atomic.make 0;
      completed = Atomic.make 0;
      discarded = Atomic.make 0;
      forwarded = Atomic.make 0;
      shed = Atomic.make 0;
      timeouts = Atomic.make 0;
      failures = Obs.Ring.create (max 1 failure_log_limit);
      failures_lock = Mutex.create ();
      on_idle;
      dead_letters = Obs.Ring.create (max 1 dead_letter_limit);
      dead_letters_lock = Mutex.create ();
      on_failure;
      stopped = Atomic.make false;
      supervisor = None;
      supervisor_stop = Atomic.make false;
      zombies = [];
      zombies_lock = Mutex.create ();
    }
  in
  if n = 1 then begin
    let sys = init t 0 in
    Db.configure_shard (System.db sys) ~index:0 ~of_:1;
    t.shards.(0).system <- Some sys;
    Atomic.set t.shards.(0).alive true
  end
  else begin
    let readies = Array.init n (fun _ -> Ivar.create ()) in
    Array.iteri (fun idx sh -> spawn_worker t sh (Some readies.(idx))) t.shards;
    let first_error =
      Array.fold_left
        (fun acc iv ->
          match (acc, Ivar.read iv) with
          | None, Error e -> Some e
          | acc, _ -> acc)
        None readies
    in
    (match first_error with
    | None -> ()
    | Some e ->
      (* tear down whatever did start, then surface the init failure *)
      stop t;
      raise e);
    match supervision with
    | Some sup -> t.supervisor <- Some (Domain.spawn (fun () -> supervise t sup))
    | None -> ()
  end;
  t

let system t idx =
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  system_exn t.shards.(idx)
