open Import

(* Domain-parallel execution: N shards, each a full {!System} (database,
   WAL, detectors, scheduler) owned by one domain.  The only process-wide
   state a shard touches is the symbol table and the Obs layer, both
   domain-safe; everything stateful about objects and rules lives inside
   exactly one shard, so shards never contend on data — they exchange
   messages.

   Routing invariant: shard [i] of [n] allocates OIDs congruent to
   [i mod n] (Db.configure_shard), so [Oid.to_int oid mod n] names the
   owner and a send can always be routed without a directory. *)

(* --- one-shot synchronisation cell --------------------------------------- *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t x =
    Mutex.lock t.m;
    t.v <- Some x;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let x = match t.v with Some x -> x | None -> assert false in
    Mutex.unlock t.m;
    x
end

(* --- MPSC mailbox --------------------------------------------------------- *)

(* Treiber stack with batch consume: producers push with one CAS (lock-free,
   any domain), the consumer exchanges the whole stack and reverses it, which
   restores per-producer FIFO order.  Parking uses the Dekker store-load
   pattern — the consumer publishes [sleeping] before its final emptiness
   check, producers re-read it after their push, and seqcst atomics make it
   impossible for both to miss each other. *)
module Mpsc = struct
  type 'a t = {
    head : 'a list Atomic.t; (* newest first *)
    lock : Mutex.t;
    cond : Condition.t;
    sleeping : bool Atomic.t;
  }

  let create () =
    {
      head = Atomic.make [];
      lock = Mutex.create ();
      cond = Condition.create ();
      sleeping = Atomic.make false;
    }

  let rec push t x =
    let old = Atomic.get t.head in
    if not (Atomic.compare_and_set t.head old (x :: old)) then push t x
    else if Atomic.get t.sleeping then begin
      Mutex.lock t.lock;
      Condition.signal t.cond;
      Mutex.unlock t.lock
    end

  (* consumer only; blocks until at least one message is available *)
  let rec take_batch t =
    match Atomic.exchange t.head [] with
    | [] ->
      Mutex.lock t.lock;
      Atomic.set t.sleeping true;
      (match Atomic.get t.head with
      | [] -> Condition.wait t.cond t.lock
      | _ -> ());
      Atomic.set t.sleeping false;
      Mutex.unlock t.lock;
      take_batch t
    | xs -> List.rev xs
end

(* --- pool ----------------------------------------------------------------- *)

type msg = Stop | Job of { run : System.t -> unit; trace : int }

type shard = {
  idx : int;
  inbox : msg Mpsc.t;
  mutable system : System.t option; (* written by the shard before ready *)
  mutable domain : unit Domain.t option;
  processed : int Atomic.t;
  failed : int Atomic.t;
}

type t = {
  n : int;
  shards : shard array;
  enqueued : int Atomic.t; (* jobs ever submitted, pool-wide *)
  completed : int Atomic.t; (* jobs fully executed (posts they made count
                               into [enqueued] before this increments) *)
  forwarded : int Atomic.t; (* jobs that hopped shards *)
  failures : (int * exn) Obs.Ring.t; (* guarded by failures_lock *)
  failures_lock : Mutex.t;
  on_failure : (shard:int -> exn -> unit) option;
  mutable stopped : bool;
}

type stats = {
  shard_processed : int array;
  shard_failed : int array;
  forwarded : int;
  enqueued : int;
  completed : int;
}

(* Which shard (of which pool) the current domain is executing for: lets a
   same-shard post run inline, preserving cascade depth, and identifies
   cross-shard posts for the forwarded counter. *)
type ctx = { c_pool : t; c_idx : int; c_sys : System.t }

let current_ctx : ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let shard_count t = t.n
let shard_of t oid = Oid.to_int oid mod t.n

let system_exn sh =
  match sh.system with
  | Some sys -> sys
  | None -> invalid_arg "Shard_pool: shard not initialised"

let note_failure t sh e =
  ignore (Atomic.fetch_and_add sh.failed 1);
  Mutex.protect t.failures_lock (fun () ->
      Obs.Ring.push t.failures (sh.idx, e));
  match t.on_failure with Some f -> f ~shard:sh.idx e | None -> ()

(* Shard-level containment backstop: a rule failure that escapes the
   rule-layer policies (Propagate, or an error outside any firing) is caught
   at the job boundary, logged, and the shard moves to the next message —
   it never unwinds the worker loop, so one shard's poison job cannot take
   down a sibling or the pool. *)
let run_job t sh sys ~trace run =
  (try
     if trace = 0 then run sys
     else Obs.Trace.with_trace trace (fun () -> run sys)
   with e -> note_failure t sh e);
  ignore (Atomic.fetch_and_add sh.processed 1);
  ignore (Atomic.fetch_and_add t.completed 1)

let post_on t idx run =
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  if t.stopped then invalid_arg "Shard_pool: pool is stopped";
  ignore (Atomic.fetch_and_add t.enqueued 1);
  let sh = t.shards.(idx) in
  match Domain.DLS.get current_ctx with
  | Some c when c.c_pool == t && c.c_idx = idx ->
    (* already on the owning shard: run inline under the ambient trace *)
    run_job t sh c.c_sys ~trace:0 run
  | Some c when c.c_pool == t ->
    ignore (Atomic.fetch_and_add t.forwarded 1);
    Mpsc.push sh.inbox (Job { run; trace = Obs.Trace.current () })
  | _ ->
    if t.n = 1 then
      (* a 1-shard pool degenerates to direct execution on the caller: no
         domain, no queue, no synchronisation — the single-threaded path *)
      run_job t sh (system_exn sh) ~trace:0 run
    else Mpsc.push sh.inbox (Job { run; trace = Obs.Trace.current () })

let run_on t idx f =
  let iv = Ivar.create () in
  post_on t idx (fun sys ->
      Ivar.fill iv (try Ok (f sys) with e -> Error e));
  Ivar.read iv

let post t oid meth args =
  post_on t (shard_of t oid) (fun sys ->
      ignore (Db.send (System.db sys) oid meth args))

let call t oid meth args =
  run_on t (shard_of t oid) (fun sys -> Db.send (System.db sys) oid meth args)

(* Quiescence barrier: a round posts a no-op through every inbox (per-producer
   FIFO means it drains everything enqueued before it), then checks that no
   job is still in flight — jobs spawned *by* jobs (cross-shard cascades)
   bump [enqueued] before their parent completes, so completed = enqueued
   really means quiet, and another round runs otherwise. *)
let drain t =
  let rec go () =
    for i = 0 to t.n - 1 do
      match run_on t i (fun _ -> ()) with Ok () | Error _ -> ()
    done;
    let c = Atomic.get t.completed in
    if c < Atomic.get t.enqueued then go ()
  in
  go ()

let stats t =
  {
    shard_processed = Array.map (fun sh -> Atomic.get sh.processed) t.shards;
    shard_failed = Array.map (fun sh -> Atomic.get sh.failed) t.shards;
    forwarded = Atomic.get t.forwarded;
    enqueued = Atomic.get t.enqueued;
    completed = Atomic.get t.completed;
  }

let recent_failures t =
  Mutex.protect t.failures_lock (fun () -> Obs.Ring.to_list_rev t.failures)

let worker t sh init ready =
  match init t sh.idx with
  | exception e -> Ivar.fill ready (Error e)
  | sys ->
    Db.configure_shard (System.db sys) ~index:sh.idx ~of_:t.n;
    sh.system <- Some sys;
    Domain.DLS.set current_ctx (Some { c_pool = t; c_idx = sh.idx; c_sys = sys });
    Ivar.fill ready (Ok ());
    let rec loop () =
      let batch = Mpsc.take_batch sh.inbox in
      let stop =
        List.fold_left
          (fun stop msg ->
            match msg with
            | Stop -> true
            | Job { run; trace } ->
              run_job t sh sys ~trace run;
              stop)
          false batch
      in
      if not stop then loop ()
    in
    loop ()

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun sh ->
        match sh.domain with
        | Some _ -> Mpsc.push sh.inbox Stop
        | None -> ())
      t.shards;
    Array.iter
      (fun sh ->
        match sh.domain with
        | Some d ->
          Domain.join d;
          sh.domain <- None
        | None -> ())
      t.shards
  end

let create ?on_failure ?(failure_log_limit = 128) ~shards:n ~init () =
  if n <= 0 then invalid_arg "Shard_pool.create: shards must be >= 1";
  let t =
    {
      n;
      shards =
        Array.init n (fun idx ->
            {
              idx;
              inbox = Mpsc.create ();
              system = None;
              domain = None;
              processed = Atomic.make 0;
              failed = Atomic.make 0;
            });
      enqueued = Atomic.make 0;
      completed = Atomic.make 0;
      forwarded = Atomic.make 0;
      failures = Obs.Ring.create (max 1 failure_log_limit);
      failures_lock = Mutex.create ();
      on_failure;
      stopped = false;
    }
  in
  if n = 1 then begin
    let sys = init t 0 in
    Db.configure_shard (System.db sys) ~index:0 ~of_:1;
    t.shards.(0).system <- Some sys
  end
  else begin
    let readies = Array.init n (fun _ -> Ivar.create ()) in
    Array.iteri
      (fun idx sh ->
        sh.domain <-
          Some (Domain.spawn (fun () -> worker t sh init readies.(idx))))
      t.shards;
    let first_error =
      Array.fold_left
        (fun acc iv ->
          match (acc, Ivar.read iv) with
          | None, Error e -> Some e
          | acc, _ -> acc)
        None readies
    in
    match first_error with
    | None -> ()
    | Some e ->
      (* tear down whatever did start, then surface the init failure *)
      stop t;
      raise e
  end;
  t

let system t idx =
  if idx < 0 || idx >= t.n then invalid_arg "Shard_pool: bad shard index";
  system_exn t.shards.(idx)
