(** Domain-parallel execution over OID-hash-sharded databases, with
    supervision and bounded backpressure.

    A pool of [N] {e shards}, each a full {!System} — its own database,
    extents, WAL, detector state and scheduler — owned by one OCaml 5
    domain.  Shards share nothing stateful except the (domain-safe) symbol
    table and Obs layer; they cooperate by exchanging jobs over per-shard
    bounded MPSC mailboxes.

    {2 The routing invariant}

    Shard [i] allocates OIDs congruent to [i mod N]
    ({!Oodb.Db.configure_shard}, applied by the pool right after [init]
    returns), so the owner of any object is [Oid.to_int oid mod N] — sends
    route by arithmetic, no directory.  Symbol ids stay process-wide
    (see {!Oodb.Symbol}): routing keys and slot layouts derived from them
    must mean the same thing on every shard a forwarded occurrence lands on.

    {2 Execution model}

    Jobs posted from outside run on the owning shard's domain in mailbox
    order.  A job posted from {e inside} a shard to itself runs inline
    (normal nested-send cascade semantics); to a sibling it is forwarded as
    a message carrying the current trace id, so a cascade keeps one trace
    across the hop ({!Obs.Trace.with_trace} on the receiving side).  A job
    that raises is contained at the job boundary — counted, logged to a
    bounded failure ring, reported to [on_failure] — and the shard keeps
    consuming; one shard's poison rule cannot poison a sibling.  (Failures
    {e inside} a firing are still governed by each rule's
    {!Error_policy} exactly as in the single-domain engine.)

    A pool created with [shards:1] spawns no domain, no queue and no
    supervisor: jobs execute directly on the caller, making it semantically
    and performance-wise the single-threaded engine.

    {2 Lifecycle and typed errors}

    A pool is {e live} from {!create} until {!stop}.  Every submission
    ({!post}, {!post_on}, {!run_on}, {!call}) returns a typed
    {!type:error} instead of raising or silently queueing when it cannot be
    accepted:

    - {!Stopped} — the pool is stopped or stopping.  Jobs already queued
      ahead of the internal stop marker still run; jobs behind it are
      discarded with their waiters woken ([Error (Shard_error Stopped)]).
    - [Degraded i] — shard [i] exhausted its restart budget; sends to it
      fail fast until {!reinstate}.
    - [Overloaded i] — the bounded inbox was full and the policy shed the
      job ([Shed_newest], or [Block] whose deadline expired).
    - [Dead_lettered i] — the job was parked in the pool's dead-letter
      ring (the [Dead_letter] policy, or an in-flight job displaced by a
      restart); {!replay_dead_letters} resubmits it.
    - [Timed_out i] — a {!run_on} [?timeout_ms] expired.  The job may
      still execute later: a timeout abandons the wait, it cannot retract
      an accepted message.

    [invalid_arg] is reserved for programming errors (bad shard index,
    invalid configuration).

    {2 Supervision}

    Pass [?supervision] to spawn a watchdog domain that sweeps every
    [heartbeat_interval_ms]: a shard whose worker died (its [init] raised
    on restart, its loop failed, or it was {!kill}ed) is restarted; a shard
    {e wedged} — executing one job for longer than [wedge_timeout_ms] — is
    abandoned (OCaml domains cannot be killed; the old domain exits
    harmlessly if its job ever returns) and replaced.  A restart re-runs
    the pool's [init] on a fresh domain with the same index and stride —
    [init] is where per-shard {!Oodb.Wal.recover} belongs, so every
    acknowledged commit survives.  The message that was executing when the
    shard went down is dead-lettered (replaying it would take down the
    successor); claimed-but-unstarted messages are replayed in order ahead
    of the queue.  More than [max_restarts] restarts inside
    [restart_window_ms] degrade the shard: its backlog is dead-lettered
    with waiters woken, and sends fail fast with [Degraded] until
    {!reinstate}.

    Terminal states, per shard: [`Ready] (worker consuming), [`Restarting]
    (teardown done, replacement [init] in flight or being retried) and
    [`Degraded] (budget exhausted; operator action required).  Without
    supervision the seed behaviour remains: a dead shard stays dead.

    {2 Backpressure}

    Inboxes are bounded at [inbox_capacity] messages; an overflowing
    submission is governed by the pool's {!backpressure} policy:
    [Block {max_wait_ms}] retries with capped-jittered backoff until space
    frees or the deadline passes (then [Overloaded]); [Shed_newest] rejects
    the incoming job immediately; [Dead_letter] parks it in the bounded
    dead-letter ring for later {!replay_dead_letters}.  A shard blocked
    forwarding to a full sibling refreshes its own heartbeat, so exerting
    backpressure is not mistaken for being wedged; mutual pressure between
    two full shards resolves at the deadline.

    Everything above is observable: [shard.restart] / [shard.degraded] /
    [shard.wedge] / [shard.shed] / [shard.dead_letter] / [shard.timeout]
    counters, [shard.inbox_depth] (depth observed per supervisor sweep) and
    [shard.supervise] (sweep duration) histograms in {!Obs.Metrics}, plus
    supervisor spans and per-event instants in {!Obs.Trace}; and
    [sentinel-cli shards --status] renders the per-shard table. *)

type t

type error =
  | Stopped  (** pool stopped or stopping *)
  | Degraded of int  (** shard's restart budget exhausted *)
  | Overloaded of int  (** bounded inbox full; job shed *)
  | Dead_lettered of int  (** parked in the pool dead-letter ring *)
  | Timed_out of int  (** run_on deadline expired; job may still run *)

exception Shard_error of error
(** Carries a typed error through [('a, exn) result] waits and aborted
    waiters. *)

val error_to_string : error -> string

type backpressure =
  | Block of { max_wait_ms : int }
      (** wait (capped-jittered backoff) for space until the deadline,
          then [Overloaded] *)
  | Shed_newest  (** reject the incoming job with [Overloaded] *)
  | Dead_letter
      (** park the incoming job in the dead-letter ring with
          [Dead_lettered] *)

type supervision = {
  heartbeat_interval_ms : int;  (** supervisor sweep period *)
  wedge_timeout_ms : int;
      (** one job executing longer than this marks the shard wedged *)
  max_restarts : int;  (** restarts tolerated per window before degrading *)
  restart_window_ms : int;
}

val default_supervision : supervision
(** 10ms sweeps, 500ms wedge timeout, 3 restarts per 10s window. *)

type shard_state = [ `Ready | `Restarting | `Degraded ]

val state_to_string : shard_state -> string

type stats = {
  shard_processed : int array;  (** jobs executed, per shard *)
  shard_failed : int array;  (** jobs contained at the job boundary *)
  shard_state : shard_state array;
  shard_restarts : int array;  (** supervisor restarts, per shard *)
  inbox_depth : int array;  (** messages queued right now, per shard *)
  forwarded : int;  (** jobs that hopped shards (cross-shard sends) *)
  enqueued : int;  (** jobs accepted, pool-wide *)
  completed : int;  (** jobs fully executed *)
  discarded : int;
      (** accepted jobs that will never run: displaced by a restart,
          degrade or stop (so [completed + discarded = enqueued] at
          quiescence) *)
  shed : int;  (** submissions rejected by backpressure *)
  dead_lettered : int;  (** jobs ever parked in the dead-letter ring *)
  timeouts : int;  (** {!run_on} deadline expiries *)
  mpsc_pushes : int;
      (** successful mailbox pushes, pool-wide.  A flushed job vector
          ({!flush}) counts once however many jobs it carries, so
          [enqueued / mpsc_pushes] measures cross-shard message
          coalescing. *)
}
(** At [shards:1] jobs run synchronously on the caller and only
    [shard_processed]/[shard_failed] are maintained — the queue counters
    ([enqueued], [completed], …) stay 0, as there is no queue. *)

val create :
  ?on_failure:(shard:int -> exn -> unit) ->
  ?on_idle:(int -> System.t -> unit) ->
  ?failure_log_limit:int ->
  ?dead_letter_limit:int ->
  ?inbox_capacity:int ->
  ?backpressure:backpressure ->
  ?supervision:supervision ->
  shards:int ->
  init:(t -> int -> System.t) ->
  unit ->
  t
(** Spawn the shard domains and run [init pool i] on each.  [init] receives
    the pool so rule actions can capture it for cross-shard sends; it must
    not post jobs itself (shards are not all up yet).  If any [init]
    raises at creation, the started shards are stopped and the exception
    re-raised; if it raises during a supervised {e restart}, the failure
    counts against the restart budget and is retried on the next sweep.

    [on_idle shard sys] runs on the shard's own domain each time its
    mailbox goes empty, before the worker parks — the {e durability hook}.
    Pairing it with {!System.sync_wal} on a [~group_commit] journal gives
    shard-level group commit: a quiescent shard never holds an unsealed
    commit group, while under sustained load the whole backlog drained
    between two idle points shares one seal (and one fsync).  The hook
    must not post jobs; exceptions it raises are recorded as shard
    failures and the worker keeps running.  Ignored at [shards:1] (inline
    execution has no mailbox, so the caller owns its durability points).

    [failure_log_limit] (default 128) bounds the pool-wide failure ring;
    [dead_letter_limit] (default 256) the dead-letter ring (oldest evicted
    first); [inbox_capacity] (default 4096) each shard's mailbox;
    [backpressure] (default [Block {max_wait_ms = 1000}]) the overflow
    policy; [supervision] (default none) enables the watchdog — ignored at
    [shards:1], which runs inline. *)

val shard_count : t -> int

val shard_of : t -> Oodb.Oid.t -> int
(** The owning shard: [Oid.to_int oid mod shard_count]. *)

val post : t -> Oodb.Oid.t -> string -> Oodb.Value.t list -> (unit, error) result
(** Route a send to the owning shard and return without waiting.  [Ok ()]
    means {e accepted} (it will execute unless the shard fails first); see
    the lifecycle section for the error cases.  The send's result value is
    discarded; failures inside it are contained per shard. *)

val call :
  ?timeout_ms:int ->
  t ->
  Oodb.Oid.t ->
  string ->
  Oodb.Value.t list ->
  (Oodb.Value.t, exn) result
(** Route a send and wait for its result.  Typed lifecycle errors arrive as
    [Error (Shard_error _)]. *)

val post_on : t -> int -> (System.t -> unit) -> (unit, error) result
(** Run an arbitrary job on a shard, asynchronously. *)

val each : ?timeout_ms:int -> t -> (int -> System.t -> 'a) -> ('a list, exn) result
(** Run a job synchronously on {e every} shard in index order and collect
    the results — the registration hook for layers that must install the
    same state on each shard's engine (the network server registers a
    subscription's rule on every shard this way, and fans a streamed query
    out shard by shard).  Stops at the first shard that fails; jobs already
    run are not undone.  Built on {!run_on}, so it runs inline at
    [shards:1]. *)

val run_on : ?timeout_ms:int -> t -> int -> (System.t -> 'a) -> ('a, exn) result
(** Run a job on a shard and wait for its result (used for object creation,
    queries, checkpoints).  Runs inline when already on that shard.  With
    [?timeout_ms] the wait is abandoned after the deadline with
    [Error (Shard_error (Timed_out i))] — the job itself may still execute.
    A waiter whose job is displaced by a restart, degrade or stop is woken
    with the corresponding typed error instead of blocking forever. *)

(** {2 Cross-shard message batching}

    A {!type:batch} buffers cross-shard submissions per destination shard and
    flushes each destination's run as one job {e vector} — one mailbox CAS
    and one worker wakeup for the whole vector instead of one per job.  The
    receiving shard executes the vector's jobs in order, with per-job
    heartbeat, failure containment and accounting identical to individually
    posted jobs; backpressure treats a flush as one all-or-nothing unit of
    [length] jobs (a shed or dead-lettered flush sheds/parks every job in
    it).  A batch is single-producer: create one per posting thread. *)

type batch

val batch : ?flush_max:int -> t -> batch
(** A fresh empty batch over the pool.  A destination's buffer auto-flushes
    when it reaches [flush_max] jobs (default 64, silently capped at the
    pool's [inbox_capacity] so a vector always fits the bounded mailbox).
    [invalid_arg] when [flush_max < 1]. *)

val batch_post :
  batch -> Oodb.Oid.t -> string -> Oodb.Value.t list -> (unit, error) result
(** {!post} through the batch: buffered per destination shard rather than
    pushed immediately.  [Ok ()] means buffered (or, on auto-flush,
    accepted); errors surface at flush time through {!flush}'s result and
    each job's waiter.  Per-destination order is preserved; ordering
    {e across} destinations follows flush order, as with interleaved
    {!post}s racing distinct mailboxes.  On a 1-shard pool, or posting from
    the destination shard itself, this degrades to the inline {!post} path
    (never buffered — buffering behind the running job would deadlock a
    synchronous waiter). *)

val batch_post_on : batch -> int -> (System.t -> unit) -> (unit, error) result
(** {!post_on} through the batch; same buffering contract as
    {!batch_post}. *)

val flush : batch -> (unit, error) result
(** Push every non-empty destination buffer now (a single-job buffer goes as
    a plain message, a multi-job buffer as one vector).  Buffered jobs whose
    shard stopped or degraded since buffering have their waiters woken with
    the typed error; the first error encountered is returned after {e all}
    destinations have been attempted.  Idempotent on an empty batch, and the
    batch is reusable after a flush. *)

val ingest :
  ?flush_max:int ->
  ?wait:bool ->
  t ->
  (Oodb.Oid.t * string * Oodb.Value.t list) list ->
  (unit, error) result
(** Batched ingestion across the pool: partition the occurrence batch by
    owning shard (preserving per-shard event order) and hand each
    destination one job that runs {!System.ingest} on its sub-batch — so
    each shard pays one transaction scope, one cascade trace and one
    route-coalescing scope for its whole sub-batch, and the posting side
    ships at most one message per destination.  By default asynchronous:
    [Ok ()] means every sub-batch was accepted; {!drain} to await
    execution.  A failing sub-batch rolls back on its shard (the
    {!System.ingest} transaction) and is contained as a shard failure;
    other shards' sub-batches are unaffected.  At [shards:1] the batch is
    ingested inline on the caller.

    [~wait:true] blocks until every sub-batch has {e executed}: [Ok ()]
    then means applied, and a failed sub-batch surfaces as
    [Error (Degraded shard)] instead of a silent contained failure.  On a
    pool with an [on_idle] durability hook the wait extends through the
    owning shard's next idle seal — so with a [~group_commit] journal
    sealed from the hook, [Ok ()] means {e durable}, and concurrent
    waiting ingests that pile onto one shard share a single seal (and one
    fsync): shard-level group commit.  The network server acks [Send_many]
    through this path. *)

val drain : t -> unit
(** Block until the pool is quiescent: every accepted job has either
    executed or been discarded by the failure machinery (degraded-shard
    backlogs, restart dead-letters).  Degraded shards are skipped. *)

val kill : t -> int -> (unit, error) result
(** Chaos injection: post a job that dies mid-batch, simulating the shard
    domain crashing.  The worker loop unwinds exactly like a crash — the
    in-flight message stays claimed for the supervisor to dead-letter, the
    rest of the batch is replayed.  Without supervision the shard stays
    dead (the documented seed behaviour).  [invalid_arg] at [shards:1]. *)

val reinstate : t -> int -> unit
(** Ask the supervisor to clear a degraded shard's restart budget and
    restart it on its next sweep (asynchronous; poll {!shard_state}).
    No-op unless the shard is currently degraded.  [invalid_arg] when the
    pool has no supervisor. *)

val shard_state : t -> int -> shard_state

val stats : t -> stats

val recent_failures : t -> (int * exn) list
(** Job-boundary failures, newest first: [(shard, exn)]. *)

val dead_letter_count : t -> int
(** Jobs currently parked in the dead-letter ring. *)

val replay_dead_letters : t -> int
(** Resubmit every parked job to its shard through the normal bounded
    submission path; returns how many were accepted.  Jobs that cannot be
    accepted (degraded shard, overflow) stay parked.  Replay re-executes
    the job verbatim — a poison job will poison again; {!purge_dead_letters}
    drops instead. *)

val purge_dead_letters : t -> int
(** Drop every parked job; returns how many were dropped. *)

val system : t -> int -> System.t
(** Direct access to a shard's system, for tests and read-only
    introspection.  Touching it while the pool is active races with the
    owning domain — {!drain} (or {!stop}) first. *)

val stop : t -> unit
(** Stop the supervisor, then the workers, and join their domains.  Jobs
    already queued ahead of the stop marker still run; jobs behind it are
    discarded with waiters woken ([Stopped]) — {!drain} first for a clean
    shutdown.  Abandoned wedged domains are joined if their poisoned job
    has returned, leaked otherwise.  Idempotent.  The pool rejects new
    submissions with [Error Stopped] afterwards. *)
