(** Domain-parallel execution over OID-hash-sharded databases.

    A pool of [N] {e shards}, each a full {!System} — its own database,
    extents, WAL, detector state and scheduler — owned by one OCaml 5
    domain.  Shards share nothing stateful except the (domain-safe) symbol
    table and Obs layer; they cooperate by exchanging jobs over per-shard
    MPSC mailboxes.

    {2 The routing invariant}

    Shard [i] allocates OIDs congruent to [i mod N]
    ({!Oodb.Db.configure_shard}, applied by the pool right after [init]
    returns), so the owner of any object is [Oid.to_int oid mod N] — sends
    route by arithmetic, no directory.  Symbol ids stay process-wide
    (see {!Oodb.Symbol}): routing keys and slot layouts derived from them
    must mean the same thing on every shard a forwarded occurrence lands on.

    {2 Execution model}

    Jobs posted from outside run on the owning shard's domain in mailbox
    order.  A job posted from {e inside} a shard to itself runs inline
    (normal nested-send cascade semantics); to a sibling it is forwarded as
    a message carrying the current trace id, so a cascade keeps one trace
    across the hop ({!Obs.Trace.with_trace} on the receiving side).  A job
    that raises is contained at the job boundary — counted, logged to a
    bounded failure ring, reported to [on_failure] — and the shard keeps
    consuming; one shard's poison rule cannot poison a sibling.  (Failures
    {e inside} a firing are still governed by each rule's
    {!Error_policy} exactly as in the single-domain engine.)

    A pool created with [shards:1] spawns no domain and no queue: jobs
    execute directly on the caller, making it semantically and
    performance-wise the single-threaded engine.

    [init] runs on each shard's own domain and should build the schema,
    rules and WAL attachment; create objects via {!run_on}/{!post} after
    {!create} returns (the OID stride is configured when [init] returns).
    After {!Oodb.Wal.recover} inside [init], the stride realigns
    automatically. *)

type t

type stats = {
  shard_processed : int array;  (** jobs executed, per shard *)
  shard_failed : int array;  (** jobs contained at the job boundary *)
  forwarded : int;  (** jobs that hopped shards (cross-shard sends) *)
  enqueued : int;  (** jobs ever submitted, pool-wide *)
  completed : int;  (** jobs fully executed *)
}

val create :
  ?on_failure:(shard:int -> exn -> unit) ->
  ?failure_log_limit:int ->
  shards:int ->
  init:(t -> int -> System.t) ->
  unit ->
  t
(** Spawn the shard domains and run [init pool i] on each.  [init] receives
    the pool so rule actions can capture it for cross-shard sends; it must
    not post jobs itself (shards are not all up yet).  If any [init]
    raises, the started shards are stopped and the exception re-raised.
    [failure_log_limit] (default 128) bounds the pool-wide failure ring. *)

val shard_count : t -> int

val shard_of : t -> Oodb.Oid.t -> int
(** The owning shard: [Oid.to_int oid mod shard_count]. *)

val post : t -> Oodb.Oid.t -> string -> Oodb.Value.t list -> unit
(** Route a send to the owning shard and return without waiting.  The
    result value is discarded; failures are contained per shard. *)

val call : t -> Oodb.Oid.t -> string -> Oodb.Value.t list ->
  (Oodb.Value.t, exn) result
(** Route a send and wait for its result. *)

val post_on : t -> int -> (System.t -> unit) -> unit
(** Run an arbitrary job on a shard, asynchronously. *)

val run_on : t -> int -> (System.t -> 'a) -> ('a, exn) result
(** Run a job on a shard and wait for its result (used for object creation,
    queries, checkpoints).  Runs inline when already on that shard. *)

val drain : t -> unit
(** Block until the pool is quiescent: every job submitted so far {e and}
    every job those jobs spawned (cross-shard cascades) has executed. *)

val stats : t -> stats

val recent_failures : t -> (int * exn) list
(** Job-boundary failures, newest first: [(shard, exn)]. *)

val system : t -> int -> System.t
(** Direct access to a shard's system, for tests and read-only
    introspection.  Touching it while the pool is active races with the
    owning domain — {!drain} (or {!stop}) first. *)

val stop : t -> unit
(** Stop the workers and join their domains.  Jobs already queued ahead of
    the stop marker still run; {!drain} first for a clean shutdown.
    Idempotent.  The pool rejects new jobs afterwards. *)
