open Import
module C = Sentinel_classes

type routing = Indexed | Broadcast

type sys_stats = {
  mutable dispatched : int;
  mutable conditions_checked : int;
  mutable actions_executed : int;
  mutable rule_aborts : int;
  mutable candidates_probed : int;
  mutable leaves_offered : int;
  mutable index_hits : int;
  mutable batch_events : int;
  mutable coalesced_probes : int;
  mutable wal_batches_replayed : int;
  mutable wal_batches_discarded : int;
  mutable wal_checksum_failures : int;
  mutable wal_fsyncs : int;
  mutable wal_bytes : int;
  mutable snapshot_bytes : int;
  mutable group_commit_batches : int;
  mutable delta_checkpoints : int;
  mutable contained_failures : int;
  mutable quarantined_rules : int;
  mutable dead_letters : int;
  mutable retries : int;
  mutable traces_started : int;
  mutable spans_recorded : int;
}

type t = {
  sys_db : Db.t;
  sys_registry : Function_registry.t;
  rule_table : Rule.t Oid.Table.t;
  handlers : (Occurrence.t -> unit) Oid.Table.t;
  mutable sys_strategy : Scheduler.strategy;
  cascade_limit : int;
  mutable depth : int;
  (* Deferred firings for the current outermost transaction; the third
     component of the payload is the cascade trace id captured at enqueue
     time (0 when tracing was off), replayed at drain. *)
  mutable pending : (int * int * (Rule.t * Detector.instance * int)) list;
  mutable pending_txn : int option;
  mutable pending_hooked : bool;
  mutable seq : int;
  (* Bounded ring of execution failures (detached and contained). *)
  failures : (string * exn) Obs.Ring.t;
  (* Dead-letter OIDs, newest first; mirrors the __dead_letter extent (see
     [dead_letters] for how divergence after aborts is reconciled). *)
  mutable dlq : Oid.t list;
  dead_letter_limit : int;
  retry_backoff : int -> unit;
  mutable execution_hook :
    (Rule.t -> Detector.instance -> execution_outcome -> unit) option;
  (* The journal managed through [attach_wal]/[checkpoint]/[compact_wal];
     None when the embedder drives Wal directly (or not at all). *)
  mutable sys_wal : Wal.t option;
  sys_stats : sys_stats;
  (* [Some _] when delivery goes through the shared discrimination index
     (Events.Route); [None] is the legacy per-consumer broadcast path. *)
  sys_route : Route.t option;
  (* Rule-object bookkeeping attributes, resolved once against the __rule
     class (C.install has run by then) — firing bumps a slot instead of
     hashing an attribute name. *)
  sl_fired : Db.slot;
  sl_failure_streak : Db.slot;
  sl_quarantined : Db.slot;
}

and execution_outcome =
  | Fired
  | Condition_false
  | Aborted of string
  | Action_error of exn
  | Contained of exn
  | Quarantined of exn

let db t = t.sys_db
let registry t = t.sys_registry
let register_condition t = Function_registry.register_condition t.sys_registry

let register_action ?may_send t name f =
  Function_registry.register_action ?may_send t.sys_registry name f
let strategy t = t.sys_strategy
let set_strategy t s = t.sys_strategy <- s

(* --- observability stages -------------------------------------------------- *)

(* Execution-layer stages and outcome counters; ids are interned symbols so
   [Obs.Metrics.find] works from the symbol table.  Rule execution and
   scheduler batches are rare relative to slot ops, so they are timed on
   every call (no sampling shift). *)
let st_execute = Obs.Metrics.register ~id:(Oodb.Symbol.intern "rule.execute") "rule.execute"
let st_sched = Obs.Metrics.register ~id:(Oodb.Symbol.intern "scheduler.batch") "scheduler.batch"
let st_fired = Obs.Metrics.register ~id:(Oodb.Symbol.intern "rule.fired") "rule.fired"
let st_cond_false =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "rule.condition_false") "rule.condition_false"
let st_aborted = Obs.Metrics.register ~id:(Oodb.Symbol.intern "rule.aborted") "rule.aborted"
let st_error = Obs.Metrics.register ~id:(Oodb.Symbol.intern "rule.error") "rule.error"
let st_contained =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "rule.contained") "rule.contained"
let st_quarantined =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "rule.quarantined") "rule.quarantined"

(* --- failure ring buffer -------------------------------------------------- *)

let log_failure t name e = Obs.Ring.push t.failures (name, e)
let recent_failures t = Obs.Ring.to_list_rev t.failures
let detached_failures t = Obs.Ring.to_list t.failures
let set_execution_hook t hook = t.execution_hook <- Some hook
let clear_execution_hook t = t.execution_hook <- None

let routing t = match t.sys_route with Some _ -> Indexed | None -> Broadcast
let route_index t = t.sys_route

(* Oldest first.  The cache can briefly hold OIDs whose creating transaction
   aborted (the dead letter died with it); filtering on existence here
   reconciles the cache with the committed extent. *)
let dead_letters t =
  t.dlq <- List.filter (Db.exists t.sys_db) t.dlq;
  List.rev t.dlq

let quarantined_rules t =
  Oid.Table.fold
    (fun oid r acc -> if r.Rule.quarantined then oid :: acc else acc)
    t.rule_table []
  |> List.sort Oid.compare

let stats t =
  (match t.sys_route with
  | Some route ->
    let c = Route.counters route in
    let s = t.sys_stats in
    s.candidates_probed <- c.Route.candidates_probed;
    s.leaves_offered <- c.Route.leaves_offered;
    s.index_hits <- c.Route.index_hits;
    s.batch_events <- c.Route.batch_events;
    s.coalesced_probes <- c.Route.coalesced_probes
  | None -> ());
  (* Durability counters live on the store; mirror them like the Route
     counters so one call reports the whole system. *)
  let d = Db.stats t.sys_db in
  let s = t.sys_stats in
  s.wal_batches_replayed <- d.Oodb.Types.wal_batches_replayed;
  s.wal_batches_discarded <- d.Oodb.Types.wal_batches_discarded;
  s.wal_checksum_failures <- d.Oodb.Types.wal_checksum_failures;
  s.wal_fsyncs <- d.Oodb.Types.wal_fsyncs;
  s.wal_bytes <- d.Oodb.Types.wal_bytes;
  s.snapshot_bytes <- d.Oodb.Types.snapshot_bytes;
  s.group_commit_batches <- d.Oodb.Types.group_commit_batches;
  s.delta_checkpoints <- d.Oodb.Types.delta_checkpoints;
  (* Containment gauges are derived from live state the same way. *)
  s.quarantined_rules <- List.length (quarantined_rules t);
  s.dead_letters <- List.length (dead_letters t);
  (* Tracing gauges come from the process-wide tracer. *)
  s.traces_started <- Obs.Trace.traces_started ();
  s.spans_recorded <- Obs.Trace.spans_recorded ();
  t.sys_stats

let reset_stats t =
  let s = t.sys_stats in
  s.dispatched <- 0;
  s.conditions_checked <- 0;
  s.actions_executed <- 0;
  s.rule_aborts <- 0;
  s.candidates_probed <- 0;
  s.leaves_offered <- 0;
  s.index_hits <- 0;
  s.batch_events <- 0;
  s.coalesced_probes <- 0;
  s.wal_batches_replayed <- 0;
  s.wal_batches_discarded <- 0;
  s.wal_checksum_failures <- 0;
  s.wal_fsyncs <- 0;
  s.wal_bytes <- 0;
  s.snapshot_bytes <- 0;
  s.group_commit_batches <- 0;
  s.delta_checkpoints <- 0;
  s.contained_failures <- 0;
  s.quarantined_rules <- 0;
  s.dead_letters <- 0;
  s.retries <- 0;
  s.traces_started <- 0;
  s.spans_recorded <- 0;
  Db.reset_stats t.sys_db;
  match t.sys_route with
  | Some route -> Route.reset_counters route
  | None -> ()

(* --- durability management ------------------------------------------------- *)

let no_wal () =
  raise (Errors.Transaction_error "System: no journal attached (attach_wal)")

let attach_wal ?storage ?sync ?group_commit t path =
  let wal = Wal.attach ?storage ?sync ?group_commit t.sys_db path in
  t.sys_wal <- Some wal;
  wal

let wal t = t.sys_wal

let detach_wal t =
  match t.sys_wal with
  | None -> ()
  | Some w ->
    Wal.detach w;
    t.sys_wal <- None

let checkpoint ?mode t ~snapshot =
  match t.sys_wal with Some w -> Wal.checkpoint ?mode w ~snapshot | None -> no_wal ()

let compact_wal ?retention t ~snapshot =
  match t.sys_wal with Some w -> Wal.compact ?retention w ~snapshot | None -> no_wal ()

let sync_wal t = match t.sys_wal with Some w -> Wal.sync w | None -> no_wal ()

(* Class subsumption backed by the schema; synthetic classes (the detector's
   "<clock>") only match themselves. *)
let subsumes_of db ~sub ~super =
  String.equal sub super
  || Db.has_class db sub
     && Db.has_class db super
     && Oodb.Schema.is_subclass db ~sub ~super

(* --- delivery registration ------------------------------------------------ *)

(* Indexed mode: put the rule's detector leaves in the shared index.  The
   guard covers rules whose object vanished underneath the runtime (deleted
   mid-flight, or creation rolled back); enable/disable and the quarantine
   breaker register and unregister outright so out-of-service rules are not
   even probed. *)
let register_rule t rule =
  match t.sys_route with
  | None -> ()
  | Some route ->
    if rule.Rule.enabled && not rule.Rule.quarantined then begin
      let oid = rule.Rule.oid in
      Route.register route ~consumer:oid
        ~guard:(fun () ->
          rule.Rule.enabled && (not rule.Rule.quarantined)
          && Db.exists t.sys_db oid)
        ~on_receive:(fun occ ->
          t.sys_stats.dispatched <- t.sys_stats.dispatched + 1;
          Notifiable.record rule.Rule.recorder occ)
        rule.Rule.detector
    end

let unregister_rule t oid =
  match t.sys_route with
  | None -> ()
  | Some route -> Route.unregister route oid

(* --- fault containment ---------------------------------------------------- *)

let report t rule inst outcome =
  if !Obs.armed then begin
    (match outcome with
    | Fired -> Obs.Metrics.hit st_fired
    | Condition_false -> Obs.Metrics.hit st_cond_false
    | Aborted _ -> Obs.Metrics.hit st_aborted
    | Action_error _ -> Obs.Metrics.hit st_error
    | Contained _ ->
      Obs.Metrics.hit st_contained;
      Obs.Trace.instant "contained" rule.Rule.name
    | Quarantined _ ->
      Obs.Metrics.hit st_quarantined;
      Obs.Trace.instant "quarantined" rule.Rule.name)
  end;
  match t.execution_hook with
  | Some hook -> hook rule inst outcome
  | None -> ()

(* Every cache mutation rolls back with the transaction it ran in: the
   object creations/deletions it mirrors are undo-logged, and the
   existence filter in [dead_letters] can only drop entries, never
   resurrect evicted ones. *)
let set_dlq t dlq =
  let old = t.dlq in
  Transaction.on_abort t.sys_db (fun () -> t.dlq <- old);
  t.dlq <- dlq

(* Append to the bounded persistent dead-letter queue, evicting the oldest
   entries beyond the cap.  Inside a transaction the dead letter commits (or
   dies) with its host — the durable queue reflects committed history only,
   like the audit trail; detached failures append post-abort, outside any
   transaction, and are durable at once. *)
let append_dead_letter t rule inst e ~attempts =
  let db = t.sys_db in
  let keep = t.dead_letter_limit - 1 in
  if List.length t.dlq > keep then begin
    let doomed = List.filteri (fun i _ -> i >= keep) t.dlq in
    set_dlq t (List.filteri (fun i _ -> i < keep) t.dlq);
    List.iter
      (fun o -> if Db.exists db o then Db.delete_object db o)
      doomed
  end;
  let dl =
    Db.new_object db C.dead_letter_class
      ~attrs:
        [
          (C.a_rule, Value.Obj rule.Rule.oid);
          (C.a_name, Value.Str rule.Rule.name);
          (C.a_instance, Value.Str (Codec.encode_instance inst));
          (C.a_error, Value.Str (Printexc.to_string e));
          (C.a_attempts, Value.Int attempts);
          (C.a_at, Value.Int inst.Detector.t_end);
        ]
  in
  set_dlq t (dl :: t.dlq)

(* In-memory breaker state ([failure_streak], [quarantined], and the index
   registration gated on them) shadows the persistent a_failure_streak /
   a_quarantined attributes.  Each mutation made inside a transaction logs
   an abort hook restoring the previous runtime state, so that when the
   host transaction rolls the attributes back, the runtime follows —
   otherwise an aborted transaction would leave a rule silently
   quarantined/unregistered with no committed record of why. *)
let set_streak t rule streak =
  let old = rule.Rule.failure_streak in
  Transaction.on_abort t.sys_db (fun () -> rule.Rule.failure_streak <- old);
  rule.Rule.failure_streak <- streak;
  if Db.exists t.sys_db rule.Rule.oid then
    Db.slot_set t.sys_db rule.Rule.oid t.sl_failure_streak (Value.Int streak)

let note_success t rule =
  if rule.Rule.failure_streak <> 0 then set_streak t rule 0

let trip_breaker t rule =
  Transaction.on_abort t.sys_db (fun () ->
      rule.Rule.quarantined <- false;
      register_rule t rule);
  rule.Rule.quarantined <- true;
  unregister_rule t rule.Rule.oid;
  if Db.exists t.sys_db rule.Rule.oid then
    Db.slot_set t.sys_db rule.Rule.oid t.sl_quarantined (Value.Bool true)

(* A firing failed and the rule's policy contains it: log, dead-letter,
   advance the breaker, and report the containment decision to the hook.
   The failed firing ran in (and was rolled back with) a transaction of its
   own, taking the body's a_fired write with it; the runtime [fired]
   counter deliberately still counts the attempt (a quarantine threshold of
   n means n attempts, not n persisted firings), so re-sync the attribute
   here, next to the rest of the breaker bookkeeping. *)
let contain_failure t rule inst e ~attempts =
  log_failure t rule.Rule.name e;
  t.sys_stats.contained_failures <- t.sys_stats.contained_failures + 1;
  if Db.exists t.sys_db rule.Rule.oid then
    Db.slot_set t.sys_db rule.Rule.oid t.sl_fired (Value.Int rule.Rule.fired);
  set_streak t rule (rule.Rule.failure_streak + 1);
  append_dead_letter t rule inst e ~attempts;
  match rule.Rule.policy with
  | Error_policy.Quarantine n when rule.Rule.failure_streak >= n ->
    trip_breaker t rule;
    report t rule inst (Quarantined e)
  | _ -> report t rule inst (Contained e)

(* --- execution ----------------------------------------------------------- *)

(* Condition + action with no enabled/quarantine gates: the shared body of
   gated execution and dead-letter replay.  Reports Fired / Condition_false
   / Aborted itself; a generic exception escapes unreported — the caller's
   policy layer decides whether it is an Action_error (propagated),
   Contained or Quarantined. *)
let execute_body_raw t rule inst =
  if t.depth >= t.cascade_limit then
    raise
      (Errors.Rule_abort
         (Printf.sprintf "rule cascade exceeded limit %d (at rule %S)"
            t.cascade_limit rule.Rule.name));
  t.depth <- t.depth + 1;
  Fun.protect
    ~finally:(fun () -> t.depth <- t.depth - 1)
    (fun () ->
      t.sys_stats.conditions_checked <- t.sys_stats.conditions_checked + 1;
      if rule.Rule.condition t.sys_db inst then begin
        t.sys_stats.actions_executed <- t.sys_stats.actions_executed + 1;
        rule.Rule.fired <- rule.Rule.fired + 1;
        (* Keep the persistent firing counter in step.  The existence guard
           matters: the condition just ran arbitrary code that may have
           deleted the rule object (even the rule deleting itself). *)
        if Db.exists t.sys_db rule.Rule.oid then
          Db.slot_set t.sys_db rule.Rule.oid t.sl_fired (Value.Int rule.Rule.fired);
        match rule.Rule.action t.sys_db inst with
        | () -> report t rule inst Fired; note_success t rule
        | exception (Errors.Rule_abort msg as e) ->
          t.sys_stats.rule_aborts <- t.sys_stats.rule_aborts + 1;
          report t rule inst (Aborted msg);
          raise e
      end
      else begin
        report t rule inst Condition_false;
        note_success t rule
      end)

(* Gated wrapper: a "fire" span (labelled with the rule name) plus an
   end-to-end latency sample around condition + action, including any
   immediate cascade the action triggers. *)
let execute_body t rule inst =
  if not !Obs.armed then execute_body_raw t rule inst
  else begin
    let t0 = Obs.Metrics.enter st_execute in
    let tok = Obs.Trace.enter "fire" rule.Rule.name in
    match execute_body_raw t rule inst with
    | () ->
      Obs.Trace.exit tok;
      Obs.Metrics.exit st_execute t0
    | exception e ->
      Obs.Trace.exit tok;
      Obs.Metrics.exit st_execute t0;
      raise e
  end

(* Immediate/deferred entry point: gates, then the rule's error policy.
   Rule_abort is an intentional abort and always propagates.

   Propagate runs on the direct path: an exception aborts the host
   transaction, which rolls back the firing's partial writes along with
   everything else.  Contain/Quarantine keep the host alive, so the firing
   runs in a nested transaction of its own: a contained failure first rolls
   back whatever the half-finished condition/action wrote, and only the
   dead letter (recording a clean slate that [replay_dead_letter] can
   re-run without double-applying) survives into the host. *)
let execute t rule inst =
  if
    rule.Rule.enabled
    && (not rule.Rule.quarantined)
    && Db.exists t.sys_db rule.Rule.oid
  then
    match rule.Rule.policy with
    | Error_policy.Propagate -> (
      match execute_body t rule inst with
      | () -> ()
      | exception (Errors.Rule_abort _ as e) -> raise e
      | exception e ->
        report t rule inst (Action_error e);
        raise e)
    | Error_policy.Contain | Error_policy.Quarantine _ -> (
      match
        Transaction.atomically t.sys_db (fun () -> execute_body t rule inst)
      with
      | Ok () -> ()
      | Error (Errors.Rule_abort _ as e) -> raise e
      | Error e -> contain_failure t rule inst e ~attempts:1)

(* Detached entry point: each attempt runs in its own transaction; a failed
   attempt (the transaction aborted) is retried up to the rule's bounded
   retry budget with backoff between attempts, then handed to the error
   policy.  Detached failures never propagate to the application — there is
   no caller left to propagate to — so Propagate degenerates to logging, the
   pre-containment behaviour. *)
let run_detached t rule inst =
  if
    rule.Rule.enabled
    && (not rule.Rule.quarantined)
    && Db.exists t.sys_db rule.Rule.oid
  then begin
    let max_attempts = 1 + max 0 rule.Rule.max_retries in
    let rec go attempt =
      match
        Transaction.atomically t.sys_db (fun () -> execute_body t rule inst)
      with
      | Ok () -> ()
      | Error (Errors.Rule_abort _ as e) ->
        (* The action aborted its own detached transaction on purpose; not a
           fault, so no retry, no dead letter, no breaker. *)
        log_failure t rule.Rule.name e
      | Error e ->
        if attempt < max_attempts then begin
          t.sys_stats.retries <- t.sys_stats.retries + 1;
          t.retry_backoff attempt;
          go (attempt + 1)
        end
        else begin
          match rule.Rule.policy with
          | Error_policy.Propagate ->
            log_failure t rule.Rule.name e;
            report t rule inst (Action_error e)
          | Error_policy.Contain | Error_policy.Quarantine _ ->
            contain_failure t rule inst e ~attempts:max_attempts
        end
    in
    go 1
  end

(* An ordered deferred batch keeps going past contained failures: only a
   propagated exception (or Rule_abort) escapes [execute] and takes the
   remaining firings down with the aborting transaction. *)
let rec drain_pending t =
  match t.pending with
  | [] -> ()
  | entries ->
    t.pending <- [];
    let batch = Scheduler.order t.sys_strategy (List.rev entries) in
    if not !Obs.armed then
      List.iter (fun (rule, inst, _tr) -> execute t rule inst) batch
    else begin
      let t0 = Obs.Metrics.enter st_sched in
      (match
         List.iter
           (fun (rule, inst, tr) ->
             (* Re-enter the cascade the firing was deferred from, and mark
                the scheduling decision with its own span. *)
             Obs.Trace.with_trace tr (fun () ->
                 let tok = Obs.Trace.enter "schedule" rule.Rule.name in
                 match execute t rule inst with
                 | () -> Obs.Trace.exit tok
                 | exception e -> Obs.Trace.exit tok; raise e))
           batch
       with
      | () -> Obs.Metrics.exit st_sched t0
      | exception e -> Obs.Metrics.exit st_sched t0; raise e)
    end;
    drain_pending t

let enqueue_deferred t rule inst =
  let outer = Transaction.outermost_id t.sys_db in
  if t.pending_txn <> outer then begin
    (* A previous transaction ended without draining (it aborted); its
       queued firings die with it. *)
    t.pending <- [];
    t.pending_hooked <- false;
    t.pending_txn <- outer
  end;
  (* If the innermost transaction aborts (e.g. a contained firing rolled
     back after triggering this one), the enqueue — and, when this call
     registered it, the drain hook, which dies with that transaction —
     must roll back too, or the firing would outlive its trigger (or, for
     later enqueues in the same outer transaction, never drain at all). *)
  (let old_pending = t.pending
   and old_hooked = t.pending_hooked
   and old_txn = t.pending_txn in
   Transaction.on_abort t.sys_db (fun () ->
       t.pending <- old_pending;
       t.pending_hooked <- old_hooked;
       t.pending_txn <- old_txn));
  t.seq <- t.seq + 1;
  t.pending <-
    (rule.Rule.priority, t.seq, (rule, inst, Obs.Trace.current ())) :: t.pending;
  if !Obs.Trace.on then Obs.Trace.instant "defer" rule.Rule.name;
  if not t.pending_hooked then begin
    t.pending_hooked <- true;
    Transaction.add_deferred t.sys_db (fun () ->
        t.pending_hooked <- false;
        t.pending_txn <- None;
        drain_pending t)
  end

let fire t rule inst =
  match rule.Rule.coupling with
  | Coupling.Immediate -> execute t rule inst
  | Coupling.Deferred ->
    if Transaction.in_progress t.sys_db then enqueue_deferred t rule inst
    else execute t rule inst
  | Coupling.Detached ->
    if Transaction.in_progress t.sys_db then begin
      (* The closure runs after commit, outside the dynamic extent of the
         triggering send; carry the cascade trace id across the gap. *)
      let tr = Obs.Trace.current () in
      Transaction.add_detached t.sys_db (fun () ->
          Obs.Trace.with_trace tr (fun () -> run_detached t rule inst))
    end
    else run_detached t rule inst

(* --- delivery ------------------------------------------------------------ *)

let dispatch t _db ~consumer occ =
  t.sys_stats.dispatched <- t.sys_stats.dispatched + 1;
  match Oid.Table.find_opt t.rule_table consumer with
  | Some rule -> if Db.exists t.sys_db rule.Rule.oid then Rule.deliver rule occ
  | None -> (
    match Oid.Table.find_opt t.handlers consumer with
    | Some handler -> handler occ
    | None -> () (* stale subscription; ignore *))

(* Jittered exponential backoff between detached retry attempts: uniform in
   [1ms, 2ms], [2ms, 4ms], ... capped at 32ms (Error_policy.retry_delay), so
   a mass failure — many rules hitting the same broken dependency in one
   batch — spreads its retries instead of hammering in lockstep.  This
   *blocks the committing caller* — detached firings run synchronously right
   after the outermost commit — which is why the cap is low and the whole
   thing overridable (e.g. to a no-op) for tests, benches and
   throughput-sensitive applications. *)
let default_retry_backoff = Error_policy.jittered_backoff ()

let create ?(strategy = Scheduler.default) ?(cascade_limit = 64)
    ?(routing = Indexed) ?(failure_log_limit = 128) ?(dead_letter_limit = 256)
    ?(retry_backoff = default_retry_backoff) db =
  C.install db;
  let t =
    {
      sys_db = db;
      sys_registry = Function_registry.create ();
      rule_table = Oid.Table.create 64;
      handlers = Oid.Table.create 16;
      sys_strategy = strategy;
      cascade_limit;
      depth = 0;
      pending = [];
      pending_txn = None;
      pending_hooked = false;
      seq = 0;
      failures = Obs.Ring.create (max 0 failure_log_limit);
      dlq = [];
      dead_letter_limit = max 1 dead_letter_limit;
      retry_backoff;
      execution_hook = None;
      sys_wal = None;
      sys_stats =
        {
          dispatched = 0;
          conditions_checked = 0;
          actions_executed = 0;
          rule_aborts = 0;
          candidates_probed = 0;
          leaves_offered = 0;
          index_hits = 0;
          batch_events = 0;
          coalesced_probes = 0;
          wal_batches_replayed = 0;
          wal_batches_discarded = 0;
          wal_checksum_failures = 0;
          wal_fsyncs = 0;
          wal_bytes = 0;
          snapshot_bytes = 0;
          group_commit_batches = 0;
          delta_checkpoints = 0;
          contained_failures = 0;
          quarantined_rules = 0;
          dead_letters = 0;
          retries = 0;
          traces_started = 0;
          spans_recorded = 0;
        };
      sys_route =
        (match routing with
        | Indexed -> Some (Route.create db)
        | Broadcast -> None);
      sl_fired = Db.resolve db C.rule_class C.a_fired;
      sl_failure_streak = Db.resolve db C.rule_class C.a_failure_streak;
      sl_quarantined = Db.resolve db C.rule_class C.a_quarantined;
    }
  in
  (* On a reloaded store, adopt whatever dead letters survive from earlier
     runs (newest first, matching append order). *)
  t.dlq <- List.rev (List.sort Oid.compare (Db.extent db C.dead_letter_class));
  Db.set_notify db (dispatch t);
  (match t.sys_route with
  | Some route -> Db.set_route db (Some (fun _db o occ -> Route.deliver route o occ))
  | None -> Db.set_route db None);
  t

(* --- event objects -------------------------------------------------------- *)

let create_event t ?(name = "") expr =
  Db.new_object t.sys_db C.event_class
    ~attrs:[ (C.a_name, Value.Str name); (C.a_event, Value.Str (Codec.encode expr)) ]

let event_expr t oid =
  if not (Db.is_instance_of t.sys_db oid C.event_class) then
    Errors.type_error "%s is not an event object" (Oid.to_string oid);
  Codec.decode (Value.to_str (Db.get t.sys_db oid C.a_event))

(* --- rules ---------------------------------------------------------------- *)

let build_runtime t ~oid ~name ~event ~context ~coupling ~priority ~enabled
    ~policy ~max_retries ~condition_name ~action_name =
  let condition = Function_registry.find_condition t.sys_registry condition_name in
  let action = Function_registry.find_action t.sys_registry action_name in
  let rule =
    Rule.make ~oid ~name ~event ~context
      ~subsumes:(fun ~sub ~super -> subsumes_of t.sys_db ~sub ~super)
      ~coupling ~priority ~enabled ~policy ~max_retries ~condition_name
      ~condition ~action_name ~action ~fire:(fire t)
  in
  Oid.Table.replace t.rule_table oid rule;
  register_rule t rule;
  rule

let fresh_rule_name t = Printf.sprintf "rule-%d" (Oid.Table.length t.rule_table + 1)

let create_rule_common t ?name ?(coupling = Coupling.Immediate)
    ?(context = Context.Recent) ?(priority = 0) ?(enabled = true)
    ?(policy = Error_policy.Propagate) ?(max_retries = 0) ?(monitor = [])
    ?(monitor_classes = []) ~event ~event_ref ~condition ~action () =
  let name = match name with Some n -> n | None -> fresh_rule_name t in
  (* Fail on unknown functions before creating the object. *)
  let (_ : Function_registry.condition) =
    Function_registry.find_condition t.sys_registry condition
  and (_ : Function_registry.action) =
    Function_registry.find_action t.sys_registry action
  in
  let oid =
    Db.new_object t.sys_db C.rule_class
      ~attrs:
        [
          (C.a_name, Value.Str name);
          (C.a_event, Value.Str (Codec.encode event));
          ( C.a_event_ref,
            match event_ref with Some o -> Value.Obj o | None -> Value.Null );
          (C.a_condition, Value.Str condition);
          (C.a_action, Value.Str action);
          (C.a_coupling, Value.Str (Coupling.to_string coupling));
          (C.a_context, Value.Str (Context.to_string context));
          (C.a_priority, Value.Int priority);
          (C.a_enabled, Value.Bool enabled);
          (C.a_fired, Value.Int 0);
          (C.a_policy, Value.Str (Error_policy.to_string policy));
          (C.a_max_retries, Value.Int max_retries);
          (C.a_failure_streak, Value.Int 0);
          (C.a_quarantined, Value.Bool false);
        ]
  in
  ignore
    (build_runtime t ~oid ~name ~event ~context ~coupling ~priority ~enabled
       ~policy ~max_retries ~condition_name:condition ~action_name:action);
  List.iter (fun target -> Db.subscribe t.sys_db ~reactive:target ~consumer:oid) monitor;
  List.iter (fun cls -> Db.subscribe_class t.sys_db ~cls ~consumer:oid) monitor_classes;
  oid

let create_rule t ?name ?coupling ?context ?priority ?enabled ?policy
    ?max_retries ?monitor ?monitor_classes ~event ~condition ~action () =
  create_rule_common t ?name ?coupling ?context ?priority ?enabled ?policy
    ?max_retries ?monitor ?monitor_classes ~event ~event_ref:None ~condition
    ~action ()

let create_rule_on t ?name ?coupling ?context ?priority ?enabled ?policy
    ?max_retries ?monitor ?monitor_classes ~event_obj ~condition ~action () =
  let event = event_expr t event_obj in
  create_rule_common t ?name ?coupling ?context ?priority ?enabled ?policy
    ?max_retries ?monitor ?monitor_classes ~event ~event_ref:(Some event_obj)
    ~condition ~action ()

let rule_info t oid =
  match Oid.Table.find_opt t.rule_table oid with
  | Some r -> r
  | None -> Errors.type_error "%s has no rule runtime" (Oid.to_string oid)

let subscribe t ~rule ~to_ =
  ignore (rule_info t rule);
  Db.subscribe t.sys_db ~reactive:to_ ~consumer:rule

let unsubscribe t ~rule ~from =
  Db.unsubscribe t.sys_db ~reactive:from ~consumer:rule

let subscribe_class t ~rule ~cls =
  ignore (rule_info t rule);
  Db.subscribe_class t.sys_db ~cls ~consumer:rule

let unsubscribe_class t ~rule ~cls =
  Db.unsubscribe_class t.sys_db ~cls ~consumer:rule

(* Enable/disable go through message dispatch so that rule objects generate
   their own primitive events — rules can monitor rules. *)
let enable t oid =
  let r = rule_info t oid in
  r.Rule.enabled <- true;
  register_rule t r;
  ignore (Db.send t.sys_db oid "enable" [])

let disable t oid =
  let r = rule_info t oid in
  r.Rule.enabled <- false;
  unregister_rule t oid;
  ignore (Db.send t.sys_db oid "disable" [])

(* Close a tripped circuit breaker: the operator has (presumably) fixed the
   underlying fault.  Clears the streak so the rule gets a full [Quarantine n]
   budget again.  A no-op for rules that are not quarantined beyond resetting
   the streak. *)
let reinstate t oid =
  let r = rule_info t oid in
  let was_quarantined = r.Rule.quarantined
  and old_streak = r.Rule.failure_streak in
  (* Mirror of [trip_breaker]: if the enclosing transaction aborts, the
     attribute writes revert, so the runtime breaker must revert with
     them. *)
  Transaction.on_abort t.sys_db (fun () ->
      r.Rule.quarantined <- was_quarantined;
      r.Rule.failure_streak <- old_streak;
      if was_quarantined then unregister_rule t oid);
  r.Rule.quarantined <- false;
  r.Rule.failure_streak <- 0;
  if Db.exists t.sys_db oid then begin
    Db.set t.sys_db oid C.a_quarantined (Value.Bool false);
    Db.set t.sys_db oid C.a_failure_streak (Value.Int 0)
  end;
  register_rule t r

let set_priority t oid p =
  let r = rule_info t oid in
  r.Rule.priority <- p;
  Db.set t.sys_db oid C.a_priority (Value.Int p)

let prune_runtimes t =
  let stale =
    Oid.Table.fold
      (fun oid _ acc -> if Db.exists t.sys_db oid then acc else oid :: acc)
      t.rule_table []
  in
  List.iter
    (fun oid ->
      Oid.Table.remove t.rule_table oid;
      unregister_rule t oid)
    stale

let delete_rule t oid =
  ignore (rule_info t oid);
  Oid.Table.remove t.rule_table oid;
  unregister_rule t oid;
  Db.delete_object t.sys_db oid

let rules t =
  Oid.Table.fold (fun oid _ acc -> oid :: acc) t.rule_table []
  |> List.sort Oid.compare

let find_rule t name =
  let found =
    Oid.Table.fold
      (fun oid r acc ->
        if String.equal r.Rule.name name then oid :: acc else acc)
      t.rule_table []
  in
  match List.sort Oid.compare found with [] -> None | oid :: _ -> Some oid

(* --- dead-letter operations ------------------------------------------------ *)

(* Re-run a failed firing in its own transaction.  Deliberately bypasses the
   enabled/quarantine gates: replay is an operator action, and draining the
   queue of a quarantined rule (after fixing its action) is exactly the
   workflow the breaker exists to support. *)
let replay_dead_letter t dl =
  if not (Db.is_instance_of t.sys_db dl C.dead_letter_class) then
    Errors.type_error "%s is not a dead letter" (Oid.to_string dl);
  let rule_oid =
    match Db.get t.sys_db dl C.a_rule with
    | Value.Obj o -> o
    | _ -> Errors.type_error "dead letter %s has no rule" (Oid.to_string dl)
  in
  match Oid.Table.find_opt t.rule_table rule_oid with
  | None ->
    Error
      (Errors.Type_error
         (Printf.sprintf "rule %s of dead letter %s has no runtime (deleted?)"
            (Oid.to_string rule_oid) (Oid.to_string dl)))
  | Some rule -> (
    let inst =
      Codec.decode_instance (Value.to_str (Db.get t.sys_db dl C.a_instance))
    in
    match
      Transaction.atomically t.sys_db (fun () -> execute_body t rule inst)
    with
    | Ok () ->
      set_dlq t (List.filter (fun o -> not (Oid.equal o dl)) t.dlq);
      if Db.exists t.sys_db dl then Db.delete_object t.sys_db dl;
      Ok ()
    | Error e ->
      let attempts = Value.to_int (Db.get t.sys_db dl C.a_attempts) in
      Db.set t.sys_db dl C.a_attempts (Value.Int (attempts + 1));
      Error e)

let purge_dead_letters t =
  let all = dead_letters t in
  List.iter (Db.delete_object t.sys_db) all;
  set_dlq t [];
  List.length all

(* --- ad-hoc notifiables ---------------------------------------------------- *)

(* Handlers have no leaves to index, so in indexed mode they get a wildcard
   registration: every occurrence they are subscribed to reaches them. *)
let register_handler t oid handler =
  Oid.Table.replace t.handlers oid handler;
  match t.sys_route with
  | None -> ()
  | Some route ->
    Route.register_wildcard route ~consumer:oid (fun occ ->
        t.sys_stats.dispatched <- t.sys_stats.dispatched + 1;
        handler occ)

let create_notifiable t ?(name = "") handler =
  let oid =
    Db.new_object t.sys_db C.notifiable_class ~attrs:[ (C.a_name, Value.Str name) ]
  in
  register_handler t oid handler;
  oid

let attach_handler t oid handler =
  if not (Db.is_instance_of t.sys_db oid C.notifiable_class) then
    Errors.type_error "%s is not a notifiable object" (Oid.to_string oid);
  register_handler t oid handler

(* --- time, rehydration ------------------------------------------------------ *)

let expire_partial_state t ~max_age =
  let before = Db.now t.sys_db - max_age in
  Oid.Table.iter
    (fun _ r -> Detector.expire r.Rule.detector ~before)
    t.rule_table

let advance_time t now =
  Db.advance_clock t.sys_db now;
  Oid.Table.iter
    (fun _ r -> if r.Rule.enabled then Detector.advance r.Rule.detector now)
    t.rule_table

(* --- batched ingestion ------------------------------------------------------ *)

(* Batch-size distribution (power-of-two buckets reused as counts) and an
   events counter, so ingestion rate and typical batch size are readable
   from the metrics report without the caller keeping its own tallies. *)
let st_ingest =
  Obs.Metrics.register ~id:(Oodb.Symbol.intern "system.ingest") "system.ingest"

let st_ingest_batch_size =
  Obs.Metrics.register
    ~id:(Oodb.Symbol.intern "system.ingest.batch_size")
    "system.ingest.batch_size"

let st_ingest_events =
  Obs.Metrics.register
    ~id:(Oodb.Symbol.intern "system.ingest.events")
    "system.ingest.events"

(* One transaction, one cascade trace, one route-key-coalescing scope for
   the whole batch.  The deferred firings the batch triggers drain at this
   transaction's commit — inside the "ingest" span, so the entire cascade
   (sends, immediate firings, deferred drain) shares one trace.  Detached
   firings still run after the outermost commit, as always. *)
let ingest t batch =
  match batch with
  | [] -> Ok []
  | _ ->
    let run () =
      let send () = Db.send_many t.sys_db batch in
      match t.sys_route with
      | Some route -> Route.with_batch route send
      | None -> send ()
    in
    if not !Obs.armed then Transaction.atomically t.sys_db run
    else begin
      let n = List.length batch in
      let t0 = Obs.Metrics.enter st_ingest in
      let tok = Obs.Trace.enter "ingest" (Printf.sprintf "batch:%d" n) in
      Obs.Metrics.observe_ns st_ingest_batch_size (float_of_int n);
      Obs.Metrics.add st_ingest_events n;
      let r = Transaction.atomically t.sys_db run in
      Obs.Trace.exit tok;
      Obs.Metrics.exit st_ingest t0;
      r
    end

let rehydrate t =
  let restore oid =
    if not (Oid.Table.mem t.rule_table oid) then begin
      let get a = Db.get t.sys_db oid a in
      (* Containment attrs default when absent: stores written before the
         error-policy layer existed rehydrate as Propagate rules. *)
      let get_or a d =
        match Db.get_opt t.sys_db oid a with Some v -> v | None -> d
      in
      let quarantined =
        Value.to_bool (get_or C.a_quarantined (Value.Bool false))
      in
      let rule =
        build_runtime t ~oid
          ~name:(Value.to_str (get C.a_name))
          ~event:(Codec.decode (Value.to_str (get C.a_event)))
          ~context:(Context.of_string (Value.to_str (get C.a_context)))
          ~coupling:(Coupling.of_string (Value.to_str (get C.a_coupling)))
          ~priority:(Value.to_int (get C.a_priority))
          ~enabled:(Value.to_bool (get C.a_enabled))
          ~policy:
            (Error_policy.of_string
               (Value.to_str (get_or C.a_policy (Value.Str "propagate"))))
          ~max_retries:(Value.to_int (get_or C.a_max_retries (Value.Int 0)))
          ~condition_name:(Value.to_str (get C.a_condition))
          ~action_name:(Value.to_str (get C.a_action))
      in
      rule.Rule.fired <- Value.to_int (get C.a_fired);
      rule.Rule.failure_streak <-
        Value.to_int (get_or C.a_failure_streak (Value.Int 0));
      if quarantined then begin
        (* build_runtime registered the rule before we knew it was tripped;
           set the breaker and take it back out of the index. *)
        rule.Rule.quarantined <- true;
        unregister_rule t oid
      end
    end
  in
  List.iter restore (Db.extent t.sys_db C.rule_class);
  (* Adopt dead letters persisted by earlier runs (newest first). *)
  t.dlq <-
    List.rev (List.sort Oid.compare (Db.extent t.sys_db C.dead_letter_class))
