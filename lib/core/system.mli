open Import

(** The Sentinel rule system over one database.

    [System.create db] installs the delivery hook for subscribed consumers
    and registers the Notifiable/Event/Rule classes; thereafter:

    - rules and events are created at runtime as first-class objects
      ({!create_rule}, {!create_event}), enabled/disabled/deleted like any
      object, and persist with the database;
    - a rule monitors objects through the subscription mechanism — either
      specific instances, possibly of different classes (instance-level
      rules, paper §4.7), or whole classes (class-level rules);
    - detected events run the rule's condition and action under its coupling
      mode, ordered by the pluggable conflict-resolution {!Scheduler.strategy};
    - after {!Oodb.Persist.load}, {!rehydrate} re-links the stored rules to
      their registered condition/action functions and rebuilds detectors. *)

type t

type execution_outcome =
  | Fired  (** condition held, action completed *)
  | Condition_false
  | Aborted of string  (** the action raised [Rule_abort] *)
  | Action_error of exn
      (** the action raised and the rule's policy is [Propagate] *)
  | Contained of exn
      (** the action raised; the failure was contained (dead-lettered) and
          execution of the surrounding batch/transaction continued.  The
          firing ran in a nested transaction of its own, so any partial
          writes the failed condition/action made were rolled back before
          the dead letter was recorded *)
  | Quarantined of exn
      (** as [Contained], and this failure tripped the rule's [Quarantine]
          circuit breaker: the rule is now out of service until
          {!reinstate} *)

type routing =
  | Indexed
      (** Deliver through the shared discrimination index
          ({!Events.Route}): an occurrence's (method, modifier) maps
          straight to the candidate detector leaves across all rules.  The
          default. *)
  | Broadcast
      (** Legacy path: fan each occurrence out to every subscribed
          consumer, each rule's detector re-testing all of its leaves. *)

type sys_stats = {
  mutable dispatched : int;  (** occurrences delivered to consumers *)
  mutable conditions_checked : int;
  mutable actions_executed : int;
  mutable rule_aborts : int;  (** actions that raised [Rule_abort] *)
  mutable candidates_probed : int;
      (** indexed routing: candidate leaves examined *)
  mutable leaves_offered : int;
      (** indexed routing: candidates that passed every check *)
  mutable index_hits : int;
      (** indexed routing: deliveries whose key had candidates *)
  mutable batch_events : int;
      (** indexed routing: occurrences delivered under a batch
          (route-key-coalescing) scope *)
  mutable coalesced_probes : int;
      (** indexed routing: index probes skipped because the key's candidate
          list was already resolved earlier in the same batch *)
  mutable wal_batches_replayed : int;
      (** recovery: committed batches re-applied by {!Oodb.Wal.replay} *)
  mutable wal_batches_discarded : int;
      (** recovery: torn/corrupt batches (and their successors) dropped *)
  mutable wal_checksum_failures : int;
      (** recovery: batches rejected by the CRC-32 check *)
  mutable wal_fsyncs : int;  (** durability: fsyncs issued by WAL/snapshot *)
  mutable wal_bytes : int;  (** durability: current WAL file length (gauge) *)
  mutable snapshot_bytes : int;
      (** durability: size of the last full snapshot written or loaded *)
  mutable group_commit_batches : int;
      (** durability: groups sealed by the commit coordinator *)
  mutable delta_checkpoints : int;
      (** durability: incremental checkpoints taken *)
  mutable contained_failures : int;
      (** failed firings absorbed by a [Contain]/[Quarantine] policy *)
  mutable quarantined_rules : int;
      (** rules currently out of service with a tripped breaker (gauge) *)
  mutable dead_letters : int;  (** dead letters currently queued (gauge) *)
  mutable retries : int;  (** detached re-attempts after a failed attempt *)
  mutable traces_started : int;
      (** observability: cascade traces begun since {!Obs.Trace.clear}
          (process-wide; 0 while tracing is disabled) *)
  mutable spans_recorded : int;
      (** observability: spans pushed to the trace ring (process-wide) *)
}

val create :
  ?strategy:Scheduler.strategy ->
  ?cascade_limit:int ->
  ?routing:routing ->
  ?failure_log_limit:int ->
  ?dead_letter_limit:int ->
  ?retry_backoff:(int -> unit) ->
  Db.t ->
  t
(** [cascade_limit] (default 64) bounds immediate-rule recursion depth:
    actions that send messages can trigger further rules; exceeding the
    limit raises {!Errors.Rule_abort}.  [routing] (default {!Indexed})
    selects the event-delivery path; see {!routing} and
    [test/test_differential.ml] for the equivalence the two paths keep.
    [failure_log_limit] (default 128) caps the in-memory failure ring
    buffer behind {!recent_failures}; [dead_letter_limit] (default 256,
    minimum 1) caps the persistent dead-letter queue, evicting oldest
    first.  [retry_backoff] is called between detached retry attempts with
    the 1-based attempt number just failed; the default
    ({!Error_policy.jittered_backoff}) sleeps a jittered exponential gap —
    uniform in [m/2, m] for [m] doubling from 2ms, capped at 32ms — so mass
    failures spread their retries instead of hitting the recovering
    dependency in lockstep.  Beware that detached
    firings run synchronously at the outermost commit point, so the
    backoff {e blocks the committing caller} for the whole backoff sum of
    a persistently failing rule (e.g. ~62ms at [max_retries:5]) — pass
    [(fun _ -> ())] (as the tests and benches do) or your own
    scheduler-friendly delay where commit latency matters. *)

val routing : t -> routing

val route_index : t -> Events.Route.t option
(** The shared index when routing is {!Indexed}; exposed for tests and
    introspection. *)

val db : t -> Db.t
val registry : t -> Function_registry.t

val register_condition : t -> string -> Function_registry.condition -> unit

val register_action :
  ?may_send:(string * Oodb.Types.modifier) list ->
  t ->
  string ->
  Function_registry.action ->
  unit
(** [may_send] feeds the static triggering-graph analysis; see
    {!Function_registry.register_action}. *)

(** {1 Event objects} *)

val create_event : t -> ?name:string -> Expr.t -> Oid.t
(** Store an event expression as a first-class event object. *)

val event_expr : t -> Oid.t -> Expr.t
(** @raise Errors.Type_error when the OID is not an event object. *)

(** {1 Rules} *)

val create_rule :
  t ->
  ?name:string ->
  ?coupling:Coupling.t ->
  ?context:Context.t ->
  ?priority:int ->
  ?enabled:bool ->
  ?policy:Error_policy.t ->
  ?max_retries:int ->
  ?monitor:Oid.t list ->
  ?monitor_classes:string list ->
  event:Expr.t ->
  condition:string ->
  action:string ->
  unit ->
  Oid.t
(** Create a rule object and its runtime.  [condition]/[action] name
    registered functions (checked immediately).  [monitor] subscribes the
    rule to specific reactive instances and [monitor_classes] to whole
    classes; both can also be done later with {!subscribe} /
    {!subscribe_class}.  Higher [priority] (default 0) runs first under the
    priority strategies.  [policy] (default {!Error_policy.Propagate})
    governs what a failed firing does to its surroundings — see
    {!Error_policy}; [max_retries] (default 0) bounds re-attempts of failed
    detached firings. *)

val create_rule_on :
  t ->
  ?name:string ->
  ?coupling:Coupling.t ->
  ?context:Context.t ->
  ?priority:int ->
  ?enabled:bool ->
  ?policy:Error_policy.t ->
  ?max_retries:int ->
  ?monitor:Oid.t list ->
  ?monitor_classes:string list ->
  event_obj:Oid.t ->
  condition:string ->
  action:string ->
  unit ->
  Oid.t
(** Like {!create_rule} but the event comes from a stored event object,
    recorded as the rule's [event_ref]. *)

val subscribe : t -> rule:Oid.t -> to_:Oid.t -> unit
val unsubscribe : t -> rule:Oid.t -> from:Oid.t -> unit
val subscribe_class : t -> rule:Oid.t -> cls:string -> unit
val unsubscribe_class : t -> rule:Oid.t -> cls:string -> unit

val enable : t -> Oid.t -> unit
val disable : t -> Oid.t -> unit
(** A disabled rule neither records nor detects; partial detector state is
    kept and detection resumes on {!enable}. *)

val reinstate : t -> Oid.t -> unit
(** Close a tripped [Quarantine] circuit breaker: clear the quarantine flag
    and failure streak (in memory and on the rule object) and put the rule
    back in service.  The breaker only opens again after a fresh run of [n]
    consecutive failures.  Harmless on rules that are not quarantined.
    @raise Errors.Type_error for OIDs without a rule runtime. *)

val delete_rule : t -> Oid.t -> unit
(** Remove the rule object and its runtime.  Stale subscriptions pointing at
    the deleted OID are ignored at delivery time. *)

val set_priority : t -> Oid.t -> int -> unit

val rules : t -> Oid.t list
val find_rule : t -> string -> Oid.t option
(** Look a rule up by name (first match). *)

val rule_info : t -> Oid.t -> Rule.t
(** Runtime record (detector counters, recorder, firing counts).
    @raise Errors.Type_error for OIDs without a rule runtime. *)

(** {1 Ad-hoc notifiable objects}

    Arbitrary application objects can consume events (the paper's
    Figure 2): the handler runs for each delivered occurrence.  Handlers
    are runtime-only: after a reload the object persists but is inert until
    a handler is attached again with {!attach_handler}. *)

val create_notifiable : t -> ?name:string -> (Occurrence.t -> unit) -> Oid.t
val attach_handler : t -> Oid.t -> (Occurrence.t -> unit) -> unit

(** {1 Time, persistence, control} *)

val expire_partial_state : t -> max_age:int -> unit
(** Drop, in every rule's detector, buffered partial composite-event state
    whose newest constituent is more than [max_age] logical time units old
    (see {!Events.Detector.expire}).  Call periodically in long-running
    systems to bound memory. *)

val advance_time : t -> int -> unit
(** Advance the logical clock (see {!Db.advance_clock}) and let every
    enabled rule's detector fire due periodic/relative events. *)

val ingest :
  t -> (Oid.t * string * Oodb.Value.t list) list -> (Oodb.Value.t list, exn) result
(** Batched ingestion: run the whole occurrence batch under {e one}
    transaction scope, {e one} cascade trace and {e one} route-key-coalescing
    scope ({!Events.Route.with_batch}).  Events execute in batch order with
    exactly the per-event semantics of {!Db.send} — same firings, audit
    entries and detector states as N sequential sends inside one
    transaction; the batch amortizes the fixed costs (transaction
    bookkeeping, WAL commit, trace spans, discrimination-index probes — one
    per distinct route key instead of one per event).  Deferred firings
    drain at the batch transaction's commit; detached ones run after it.
    An uncontained mid-batch failure aborts and rolls back the whole batch
    ([Error]); failures of rules with a [Contain]/[Quarantine] policy are
    dead-lettered per rule and leave the rest of the batch intact, exactly
    as on the sequential path.  Composes with {!attach_wal}
    [~group_commit] for streaming durability. *)

val prune_runtimes : t -> unit
(** Drop runtimes whose rule object no longer exists (e.g. rule creation
    rolled back by an aborted transaction).  Stale runtimes are harmless —
    delivery checks object existence — but this reclaims them. *)

val rehydrate : t -> unit
(** Rebuild rule runtimes for every stored rule object lacking one.  Call
    after {!Oodb.Persist.load}, once all condition/action functions are
    registered.
    @raise Errors.Type_error when a stored rule names an unregistered
    condition/action. *)

val strategy : t -> Scheduler.strategy
val set_strategy : t -> Scheduler.strategy -> unit

(** {1 Failures, quarantine and the dead-letter queue} *)

val recent_failures : t -> (string * exn) list
(** The in-memory failure log — (rule name, exception) for detached
    executions whose own transaction failed and for contained failures —
    newest first.  A bounded ring buffer ([failure_log_limit]); older
    entries are overwritten. *)

val detached_failures : t -> (string * exn) list
(** {!recent_failures}, oldest first (the pre-containment accessor). *)

val quarantined_rules : t -> Oid.t list
(** Rules currently out of service with a tripped circuit breaker. *)

val dead_letters : t -> Oid.t list
(** The persistent dead-letter queue, oldest first: one [__dead_letter]
    object per contained failed firing, recording the rule, the encoded
    triggering instance ({!Events.Codec.encode_instance}), the printed
    exception, the attempt count and the detection time (see
    {!Sentinel_classes}). *)

val replay_dead_letter : t -> Oid.t -> (unit, exn) result
(** Re-run a dead letter's firing in its own transaction, bypassing the
    enabled/quarantine gates (replay is an operator action).  Replay starts
    from a clean slate: the failed firing's partial writes were rolled back
    when it was contained, so a successful replay applies the firing's
    effects exactly once.  On success the dead letter is deleted; on
    failure its attempt count is bumped and the raised exception returned.
    [Error] is also returned when the rule's runtime is gone (rule deleted,
    or not yet {!rehydrate}d).
    @raise Errors.Type_error when the OID is not a dead letter. *)

val purge_dead_letters : t -> int
(** Drop every queued dead letter; returns how many were deleted. *)

val set_execution_hook :
  t -> (Rule.t -> Events.Detector.instance -> execution_outcome -> unit) -> unit
(** Observe every rule execution attempt (used by {!Audit}).  The hook runs
    synchronously inside the execution; exceptions it raises propagate. *)

val clear_execution_hook : t -> unit

val stats : t -> sys_stats
val reset_stats : t -> unit

(** {1 Durability management}

    Thin wrappers over {!Oodb.Wal} so an embedder holding only the [System]
    can run the whole durability lifecycle: journaling (with optional group
    commit), full or incremental checkpoints, and compaction with
    retention.  All state lives in the underlying {!Oodb.Wal.t}; driving
    Wal directly remains equivalent. *)

val attach_wal :
  ?storage:Oodb.Storage.t ->
  ?sync:bool ->
  ?group_commit:Wal.group_commit ->
  t ->
  string ->
  Wal.t
(** Attach a journal to the system's database and remember it for
    {!checkpoint}/{!compact_wal}/{!sync_wal}.  See {!Oodb.Wal.attach}. *)

val wal : t -> Wal.t option

val detach_wal : t -> unit
(** Detach the managed journal, if any (seals the open commit group). *)

val checkpoint : ?mode:[ `Full | `Delta ] -> t -> snapshot:string -> unit
(** {!Oodb.Wal.checkpoint} on the managed journal.
    @raise Errors.Transaction_error when none is attached. *)

val compact_wal : ?retention:Wal.retention -> t -> snapshot:string -> unit
(** {!Oodb.Wal.compact} on the managed journal.
    @raise Errors.Transaction_error when none is attached. *)

val sync_wal : t -> unit
(** {!Oodb.Wal.sync} on the managed journal: seal the open commit group and
    force everything committed so far onto the disk.
    @raise Errors.Transaction_error when none is attached. *)
