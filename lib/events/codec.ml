open Import

(* Grammar (whitespace-free):
     e ::= prim(<mod>,<cls>,<meth>,<oid>*...)     cls may be empty
         | and(e,e) | or(e,e) | seq(e,e)
         | any(<m>,e,...)
         | not(e,e,e) | ap(e,e,e) | apstar(e,e,e)
         | per(e,<dt>,<limit-or-dash>,e) | plus(e,<dt>)
   Names are %XX-escaped so that [,()] never appear raw. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' ->
        Buffer.add_char buf c
      | _ -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let unescape t =
  let buf = Buffer.create (String.length t) in
  let i = ref 0 in
  let m = String.length t in
  while !i < m do
    if t.[!i] = '%' && !i + 2 < m then begin
      (match int_of_string_opt ("0x" ^ String.sub t (!i + 1) 2) with
      | Some code -> Buffer.add_char buf (Char.chr code)
      | None -> raise (Errors.Parse_error ("bad escape in " ^ t)));
      i := !i + 3
    end
    else begin
      Buffer.add_char buf t.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let rec encode (e : Expr.t) =
  match e with
  | Prim p ->
    let sources =
      Oid.Set.elements p.p_sources
      |> List.map (fun o -> string_of_int (Oid.to_int o))
      |> String.concat ";"
    in
    let filters =
      List.map
        (fun (f : Expr.param_filter) ->
          Printf.sprintf "%d~%s~%s" f.pf_index
            (Expr.cmp_to_string f.pf_cmp)
            (escape (Oodb.Persist.encode_value f.pf_value)))
        p.p_filters
      |> String.concat ";"
    in
    Printf.sprintf "prim(%s,%s,%s,%s,%s)"
      (Occurrence.modifier_to_string p.p_modifier)
      (match p.p_class with Some c -> escape c | None -> "")
      (escape p.p_meth) sources filters
  | And (a, b) -> Printf.sprintf "and(%s,%s)" (encode a) (encode b)
  | Or (a, b) -> Printf.sprintf "or(%s,%s)" (encode a) (encode b)
  | Seq (a, b) -> Printf.sprintf "seq(%s,%s)" (encode a) (encode b)
  | Any (m, es) ->
    Printf.sprintf "any(%d,%s)" m (String.concat "," (List.map encode es))
  | Not (a, b, c) ->
    Printf.sprintf "not(%s,%s,%s)" (encode a) (encode b) (encode c)
  | Aperiodic (a, b, c) ->
    Printf.sprintf "ap(%s,%s,%s)" (encode a) (encode b) (encode c)
  | Aperiodic_star (a, b, c) ->
    Printf.sprintf "apstar(%s,%s,%s)" (encode a) (encode b) (encode c)
  | Periodic (a, dt, limit, b) ->
    Printf.sprintf "per(%s,%d,%s,%s)" (encode a) dt
      (match limit with Some l -> string_of_int l | None -> "-")
      (encode b)
  | Plus (a, dt) -> Printf.sprintf "plus(%s,%d)" (encode a) dt

exception Bad of string

let decode input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let expect c =
    match peek () with
    | Some x when x = c -> incr pos
    | _ -> raise (Bad (Printf.sprintf "expected '%c' at %d" c !pos))
  in
  (* a bare token: up to the next ',' or ')' *)
  let token () =
    let start = !pos in
    while !pos < n && input.[!pos] <> ',' && input.[!pos] <> ')' do
      incr pos
    done;
    String.sub input start (!pos - start)
  in
  let head () =
    let start = !pos in
    while !pos < n && input.[!pos] <> '(' do
      incr pos
    done;
    String.sub input start (!pos - start)
  in
  let int_token what =
    let t = token () in
    match int_of_string_opt t with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "bad %s: %S" what t))
  in
  let rec expr () =
    let h = head () in
    expect '(';
    let e =
      match h with
      | "prim" ->
        let m = Occurrence.modifier_of_string (token ()) in
        expect ',';
        let cls = token () in
        expect ',';
        let meth = unescape (token ()) in
        expect ',';
        let sources_tok = token () in
        let sources =
          if sources_tok = "" then []
          else
            String.split_on_char ';' sources_tok
            |> List.map (fun s ->
                 match int_of_string_opt s with
                 | Some v -> Oid.of_int v
                 | None -> raise (Bad ("bad oid " ^ s)))
        in
        (* optional fifth field: parameter filters (older encodings have
           only four fields) *)
        let filters =
          match peek () with
          | Some ',' ->
            expect ',';
            let tok = token () in
            if tok = "" then []
            else
              String.split_on_char ';' tok
              |> List.map (fun part ->
                   match String.split_on_char '~' part with
                   | [ idx; op; v ] -> (
                     match int_of_string_opt idx with
                     | Some pf_index ->
                       {
                         Expr.pf_index;
                         pf_cmp = Expr.cmp_of_string op;
                         pf_value = Oodb.Persist.decode_value (unescape v);
                       }
                     | None -> raise (Bad ("bad filter index " ^ idx)))
                   | _ -> raise (Bad ("bad filter " ^ part)))
          | _ -> []
        in
        Expr.prim
          ?cls:(if cls = "" then None else Some (unescape cls))
          ~sources ~filters m meth
      | "and" | "or" | "seq" ->
        let a = expr () in
        expect ',';
        let b = expr () in
        let op = match h with
          | "and" -> Expr.conj
          | "or" -> Expr.disj
          | _ -> Expr.seq
        in
        op a b
      | "any" ->
        let m = int_token "count" in
        let items = ref [] in
        let rec more () =
          match peek () with
          | Some ',' ->
            incr pos;
            items := expr () :: !items;
            more ()
          | _ -> ()
        in
        more ();
        Expr.any m (List.rev !items)
      | "not" | "ap" | "apstar" ->
        let a = expr () in
        expect ',';
        let b = expr () in
        expect ',';
        let c = expr () in
        (match h with
        | "not" -> Expr.not_between a b c
        | "ap" -> Expr.aperiodic a b c
        | _ -> Expr.aperiodic_star a b c)
      | "per" ->
        let a = expr () in
        expect ',';
        let dt = int_token "period" in
        expect ',';
        let limit_tok = token () in
        let limit =
          if limit_tok = "-" then None
          else
            match int_of_string_opt limit_tok with
            | Some v -> Some v
            | None -> raise (Bad ("bad limit " ^ limit_tok))
        in
        expect ',';
        let b = expr () in
        Expr.periodic ?limit a dt b
      | "plus" ->
        let a = expr () in
        expect ',';
        let dt = int_token "delay" in
        Expr.plus a dt
      | other -> raise (Bad ("unknown operator " ^ other))
    in
    expect ')';
    e
  in
  try
    let e = expr () in
    if !pos <> n then raise (Bad "trailing garbage");
    e
  with Bad msg -> raise (Errors.Parse_error (Printf.sprintf "expr %S: %s" input msg))

(* --- occurrences and detected instances ----------------------------------

   Dead-letter objects persist the composite-event instance that triggered
   the failed firing so it can be replayed after a reload.  Same escaping
   discipline as expressions: every free-form field is %XX-escaped, so
   [,()|] never appear raw and the frames split on single characters.

     occ  ::= occ(<mod>,<cls>,<meth>,<oid>,<at>,<param>;<param>...)
     inst ::= inst(<t_start>,<t_end>,<occ>|<occ>...)                        *)

let encode_occurrence (o : Occurrence.t) =
  let params =
    List.map (fun v -> escape (Oodb.Persist.encode_value v)) o.params
    |> String.concat ";"
  in
  Printf.sprintf "occ(%s,%s,%s,%d,%d,%s)"
    (Occurrence.modifier_to_string o.modifier)
    (escape o.source_class) (escape o.meth)
    (Oid.to_int o.source) o.at params

let occ_error input msg =
  raise (Errors.Parse_error (Printf.sprintf "occurrence %S: %s" input msg))

let decode_occurrence input =
  let n = String.length input in
  let inner =
    if n >= 5 && String.sub input 0 4 = "occ(" && input.[n - 1] = ')' then
      String.sub input 4 (n - 5)
    else occ_error input "missing occ(...) frame"
  in
  match String.split_on_char ',' inner with
  | [ m; cls; meth; source; at; params ] ->
    let int_field what s =
      match int_of_string_opt s with
      | Some v -> v
      | None -> occ_error input (Printf.sprintf "bad %s: %S" what s)
    in
    Occurrence.make
      ~modifier:(Occurrence.modifier_of_string m)
      ~source_class:(unescape cls) ~meth:(unescape meth)
      ~source:(Oid.of_int (int_field "oid" source))
      ~at:(int_field "timestamp" at)
      ~params:
        (if params = "" then []
         else
           String.split_on_char ';' params
           |> List.map (fun p -> Oodb.Persist.decode_value (unescape p)))
  | _ -> occ_error input "expected 6 fields"

(* --- wire events -----------------------------------------------------------

   The network layer ships send requests — (target, method, params) triples,
   the input of [Db.send]/[System.ingest] — in the same escaped textual
   form, so the wire protocol's payload codec is this module rather than a
   second serializer.

     ev ::= ev(<oid>,<meth>,<param>;<param>...)                              *)

let encode_event ((oid, meth, params) : Oid.t * string * Oodb.Value.t list) =
  let params =
    List.map (fun v -> escape (Oodb.Persist.encode_value v)) params
    |> String.concat ";"
  in
  Printf.sprintf "ev(%d,%s,%s)" (Oid.to_int oid) (escape meth) params

let decode_event input =
  let fail msg =
    raise (Errors.Parse_error (Printf.sprintf "event %S: %s" input msg))
  in
  let n = String.length input in
  let inner =
    if n >= 4 && String.sub input 0 3 = "ev(" && input.[n - 1] = ')' then
      String.sub input 3 (n - 4)
    else fail "missing ev(...) frame"
  in
  match String.split_on_char ',' inner with
  | [ oid_s; meth; params ] ->
    let oid =
      match int_of_string_opt oid_s with
      | Some v -> Oid.of_int v
      | None -> fail (Printf.sprintf "bad oid: %S" oid_s)
    in
    let params =
      if params = "" then []
      else
        String.split_on_char ';' params
        |> List.map (fun p -> Oodb.Persist.decode_value (unescape p))
    in
    (oid, unescape meth, params)
  | _ -> fail "expected 3 fields"

let encode_instance (i : Detector.instance) =
  Printf.sprintf "inst(%d,%d,%s)" i.t_start i.t_end
    (String.concat "|" (List.map encode_occurrence i.constituents))

let decode_instance input =
  let fail msg =
    raise (Errors.Parse_error (Printf.sprintf "instance %S: %s" input msg))
  in
  let n = String.length input in
  let inner =
    if n >= 7 && String.sub input 0 5 = "inst(" && input.[n - 1] = ')' then
      String.sub input 5 (n - 6)
    else fail "missing inst(...) frame"
  in
  let int_field what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad %s: %S" what s)
  in
  match String.index_opt inner ',' with
  | None -> fail "missing t_start"
  | Some i1 -> (
    match String.index_from_opt inner (i1 + 1) ',' with
    | None -> fail "missing t_end"
    | Some i2 ->
      let t_start = int_field "t_start" (String.sub inner 0 i1) in
      let t_end =
        int_field "t_end" (String.sub inner (i1 + 1) (i2 - i1 - 1))
      in
      let rest = String.sub inner (i2 + 1) (String.length inner - i2 - 1) in
      let constituents =
        if rest = "" then []
        else String.split_on_char '|' rest |> List.map decode_occurrence
      in
      { Detector.constituents; t_start; t_end })
