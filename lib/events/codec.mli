(** Serialization of event expressions.

    Rule and event objects are first-class persistent objects; their event
    expressions are stored as an attribute in this compact textual form and
    decoded when the rule layer rehydrates a loaded database.

    [decode (encode e)] is structurally equal to [e] ({!Expr.equal}). *)

val encode : Expr.t -> string

val decode : string -> Expr.t
(** @raise Oodb.Errors.Parse_error on malformed input. *)

(** {1 Occurrences and detected instances}

    The rule layer's dead-letter queue persists the composite-event
    instance that triggered a failed firing, so the firing can be replayed
    after a reload.  [decode_occurrence (encode_occurrence o)] is
    {!Oodb.Occurrence.equal} to [o], and likewise for instances
    field-by-field. *)

val encode_occurrence : Oodb.Occurrence.t -> string
val decode_occurrence : string -> Oodb.Occurrence.t
(** @raise Oodb.Errors.Parse_error on malformed input. *)

val encode_instance : Detector.instance -> string
val decode_instance : string -> Detector.instance
(** @raise Oodb.Errors.Parse_error on malformed input. *)

(** {1 Wire events}

    The network layer ships send requests — the [(target, method, params)]
    triples that feed {!Oodb.Db.send} and [System.ingest] — in the same
    escaped textual form, so the binary protocol's payload encoding reuses
    this module instead of introducing a second serializer.
    [decode_event (encode_event e)] is structurally equal to [e]. *)

val encode_event : Oodb.Oid.t * string * Oodb.Value.t list -> string

val decode_event : string -> Oodb.Oid.t * string * Oodb.Value.t list
(** @raise Oodb.Errors.Parse_error on malformed input. *)
