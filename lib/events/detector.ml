open Import

type instance = {
  constituents : Occurrence.t list;
  t_start : Oodb.Types.timestamp;
  t_end : Oodb.Types.timestamp;
}

let instance_of_occurrence (o : Occurrence.t) =
  { constituents = [ o ]; t_start = o.at; t_end = o.at }

let merge a b =
  let constituents =
    List.sort Occurrence.compare (a.constituents @ b.constituents)
  in
  {
    constituents;
    t_start = min a.t_start b.t_start;
    t_end = max a.t_end b.t_end;
  }

let merge_all = function
  | [] -> invalid_arg "Detector.merge_all: empty"
  | i :: rest -> List.fold_left merge i rest

let pp_instance ppf i =
  Format.fprintf ppf "[%a]@@[%d,%d]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Occurrence.pp)
    i.constituents i.t_start i.t_end

(* Mutable two-stack FIFO for operator buffers.  The hot operation is
   appending a newly arrived constituent; the old [buf := !buf @ [i]] made
   that O(buffer) and a long-buffering conjunction quadratic overall.  Push
   is O(1) here; consuming operations normalize once and were already linear
   in the buffer they inspect. *)
type 'a fifo = {
  mutable front : 'a list; (* oldest first *)
  mutable back : 'a list; (* newest first *)
}

let fifo_create () = { front = []; back = [] }
let fifo_push q x = q.back <- x :: q.back
let fifo_is_empty q = q.front = [] && q.back = []

(* All elements oldest-first; leaves the queue normalized. *)
let fifo_all q =
  if q.back <> [] then begin
    q.front <- q.front @ List.rev q.back;
    q.back <- []
  end;
  q.front

let fifo_set q l =
  q.front <- l;
  q.back <- []

let fifo_clear q =
  q.front <- [];
  q.back <- []

let fifo_pop q =
  match q.front with
  | x :: tl ->
    q.front <- tl;
    Some x
  | [] -> (
    match List.rev q.back with
    | [] -> None
    | x :: tl ->
      q.front <- tl;
      q.back <- [];
      Some x)

(* A synthetic occurrence produced by the temporal operators. *)
let synthetic meth k at =
  Occurrence.make ~source:(Oid.of_int 0) ~source_class:"<clock>" ~meth
    ~modifier:Oodb.Types.After
    ~params:[ Value.Int k ]
    ~at

(* One compiled operator node.  [accept] offers a primitive occurrence to
   the leaves below; [advance] moves logical time forward; [reset] clears
   partial state. *)
type node = {
  accept : Occurrence.t -> unit;
  advance : int -> unit;
  reset : unit -> unit;
  (* drop buffered partial state whose latest constituent is older than the
     given instant (Detector.expire) *)
  expire : int -> unit;
}

type leaf = { leaf_prim : Expr.prim; leaf_accept : Occurrence.t -> unit }

type t = {
  d_expr : Expr.t;
  d_context : Context.t;
  root : node;
  d_leaves : leaf list;
  (* does the expression contain periodic/relative operators?  Decides
     whether the batched feed path may defer the clock walk to the batch
     boundary (non-temporal trees treat [advance] as a pure traversal). *)
  d_temporal : bool;
  mutable now : int;
  mutable n_fed : int;
  mutable n_signalled : int;
  (* owner's name for observability output; the rule layer sets it *)
  mutable d_label : string;
}

let expr t = t.d_expr
let context t = t.d_context
let fed t = t.n_fed
let signalled t = t.n_signalled
let set_label t label = t.d_label <- label
let label t = t.d_label

(* --- compilation --------------------------------------------------------- *)

(* Leaf test with the method name pre-interned ([msym] = [p.p_meth]'s
   symbol), so the per-occurrence check compares ints instead of strings. *)
let prim_matches_sym subsumes msym (p : Expr.prim) (o : Occurrence.t) =
  p.p_modifier = o.modifier
  && Symbol.equal msym o.meth_sym
  && (match p.p_class with
     | None -> true
     | Some c -> subsumes ~sub:o.source_class ~super:c)
  && (Oid.Set.is_empty p.p_sources || Oid.Set.mem o.source p.p_sources)
  && List.for_all (fun f -> Expr.filter_matches f o.params) p.p_filters

let no_op_advance (_ : int) = ()
let no_op_reset () = ()
let no_op_expire (_ : int) = ()

let keep_fresh before instances =
  List.filter (fun i -> i.t_end >= before) instances

let fresh_opt before = function
  | Some i when i.t_end < before -> None
  | keep -> keep

(* Binary conjunction under each parameter context; [ordered] adds the
   sequence constraint left.t_end < right.t_start and makes the right side
   the sole terminator (rights are never buffered). *)
let binary_node ctx ~ordered compile_child a b out =
  let buf_l : instance fifo = fifo_create ()
  and buf_r : instance fifo = fifo_create () in
  let pair l r = out (merge l r) in
  let on_left i =
    match ctx with
    | Context.Recent ->
      fifo_set buf_l [ i ];
      if not ordered then (
        match fifo_all buf_r with [ r ] -> pair i r | _ -> ())
    | Context.Chronicle ->
      if (not ordered) && not (fifo_is_empty buf_r) then (
        (* consume the oldest buffered right *)
        match fifo_pop buf_r with
        | Some r -> pair i r
        | None -> assert false)
      else fifo_push buf_l i
    | Context.Continuous ->
      if (not ordered) && not (fifo_is_empty buf_r) then begin
        let rs = fifo_all buf_r in
        fifo_clear buf_r;
        List.iter (fun r -> pair i r) rs
      end
      else fifo_push buf_l i
    | Context.Cumulative ->
      if (not ordered) && not (fifo_is_empty buf_r) then begin
        let everything = fifo_all buf_l @ [ i ] @ fifo_all buf_r in
        fifo_clear buf_l;
        fifo_clear buf_r;
        out (merge_all everything)
      end
      else fifo_push buf_l i
  in
  let compatible l r = (not ordered) || l.t_end < r.t_start in
  let on_right j =
    match ctx with
    | Context.Recent -> (
      (match fifo_all buf_l with
      | [ l ] when compatible l j -> pair l j
      | _ -> ());
      if not ordered then fifo_set buf_r [ j ])
    | Context.Chronicle -> (
      (* consume the oldest compatible left *)
      let rec take acc = function
        | [] -> None
        | l :: rest ->
          if compatible l j then Some (l, List.rev_append acc rest)
          else take (l :: acc) rest
      in
      match take [] (fifo_all buf_l) with
      | Some (l, rest) ->
        fifo_set buf_l rest;
        pair l j
      | None -> if not ordered then fifo_push buf_r j)
    | Context.Continuous ->
      let ready, keep =
        List.partition (fun l -> compatible l j) (fifo_all buf_l)
      in
      fifo_set buf_l keep;
      if ready <> [] then List.iter (fun l -> pair l j) ready
      else if not ordered then fifo_push buf_r j
    | Context.Cumulative ->
      let ready, keep =
        List.partition (fun l -> compatible l j) (fifo_all buf_l)
      in
      if ready <> [] then begin
        fifo_set buf_l keep;
        out (merge_all (ready @ [ j ] @ fifo_all buf_r));
        fifo_clear buf_r
      end
      else if not ordered then fifo_push buf_r j
  in
  let na, la = compile_child a on_left and nb, lb = compile_child b on_right in
  ( {
      accept =
        (fun o ->
          na.accept o;
          nb.accept o);
      advance =
        (fun t ->
          na.advance t;
          nb.advance t);
      reset =
        (fun () ->
          fifo_clear buf_l;
          fifo_clear buf_r;
          na.reset ();
          nb.reset ());
      expire =
        (fun before ->
          fifo_set buf_l (keep_fresh before (fifo_all buf_l));
          fifo_set buf_r (keep_fresh before (fifo_all buf_r));
          na.expire before;
          nb.expire before);
    },
    la @ lb )

(* Compilation returns the node together with its primitive leaves in the
   exact order the node's [accept] visits them.  That order is what the
   shared predicate index (Route) must preserve when it offers an occurrence
   leaf-by-leaf instead of through [root.accept]: for the three-role
   operators the accept path deliberately runs terminator before canceller
   before initiator, so leaf order is NOT source order. *)
let rec compile subsumes ctx e (out : instance -> unit) : node * leaf list =
  let compile_child c out = compile subsumes ctx c out in
  match e with
  | Expr.Prim p ->
    let msym = Symbol.intern p.Expr.p_meth in
    let accept o =
      if prim_matches_sym subsumes msym p o then out (instance_of_occurrence o)
    in
    ( {
        accept;
        advance = no_op_advance;
        reset = no_op_reset;
        expire = no_op_expire;
      },
      [ { leaf_prim = p; leaf_accept = accept } ] )
  | Expr.Or (a, b) ->
    let na, la = compile_child a out and nb, lb = compile_child b out in
    ( {
        accept =
          (fun o ->
            na.accept o;
            nb.accept o);
        advance =
          (fun t ->
            na.advance t;
            nb.advance t);
        reset =
          (fun () ->
            na.reset ();
            nb.reset ());
        expire =
          (fun before ->
            na.expire before;
            nb.expire before);
      },
      la @ lb )
  | Expr.And (a, b) -> binary_node ctx ~ordered:false compile_child a b out
  | Expr.Seq (a, b) -> binary_node ctx ~ordered:true compile_child a b out
  | Expr.Any (m, es) ->
    let n = List.length es in
    let latest : instance option array = Array.make n None in
    let distinct () =
      Array.fold_left (fun k s -> if s = None then k else k + 1) 0 latest
    in
    let on_child k i =
      latest.(k) <- Some i;
      if distinct () >= m then begin
        let parts =
          Array.to_list latest |> List.filter_map (fun x -> x)
        in
        Array.fill latest 0 n None;
        out (merge_all parts)
      end
    in
    let compiled = List.mapi (fun k c -> compile_child c (on_child k)) es in
    let children = List.map fst compiled in
    ( {
        accept = (fun o -> List.iter (fun nd -> nd.accept o) children);
        advance = (fun t -> List.iter (fun nd -> nd.advance t) children);
        reset =
          (fun () ->
            Array.fill latest 0 n None;
            List.iter (fun nd -> nd.reset ()) children);
        expire =
          (fun before ->
            Array.iteri (fun i s -> latest.(i) <- fresh_opt before s) latest;
            List.iter (fun nd -> nd.expire before) children);
      },
      List.concat_map snd compiled )
  | Expr.Not (e1, e2, e3) ->
    let init : instance option ref = ref None in
    let on_e1 i = init := Some i in
    let on_e2 _ = init := None in
    let on_e3 j =
      match !init with
      | Some i when i.t_end < j.t_start ->
        init := None;
        out (merge i j)
      | _ -> ()
    in
    let n1, l1 = compile_child e1 on_e1
    and n2, l2 = compile_child e2 on_e2
    and n3, l3 = compile_child e3 on_e3 in
    ( {
        accept =
          (fun o ->
            (* order matters when one occurrence matches several roles:
               an interposed e2 must cancel before a later e3 terminates,
               and a fresh e1 must not be cancelled by the same occurrence. *)
            n3.accept o;
            n2.accept o;
            n1.accept o);
        advance =
          (fun t ->
            n1.advance t;
            n2.advance t;
            n3.advance t);
        reset =
          (fun () ->
            init := None;
            n1.reset ();
            n2.reset ();
            n3.reset ());
        expire =
          (fun before ->
            init := fresh_opt before !init;
            n1.expire before;
            n2.expire before;
            n3.expire before);
      },
      l3 @ l2 @ l1 )
  | Expr.Aperiodic (e1, e2, e3) ->
    let window : instance option ref = ref None in
    let on_e1 i = window := Some i in
    let on_e2 m =
      match !window with Some i -> out (merge i m) | None -> ()
    in
    let on_e3 _ = window := None in
    let n1, l1 = compile_child e1 on_e1
    and n2, l2 = compile_child e2 on_e2
    and n3, l3 = compile_child e3 on_e3 in
    ( {
        accept =
          (fun o ->
            n3.accept o;
            n2.accept o;
            n1.accept o);
        advance =
          (fun t ->
            n1.advance t;
            n2.advance t;
            n3.advance t);
        reset =
          (fun () ->
            window := None;
            n1.reset ();
            n2.reset ();
            n3.reset ());
        expire =
          (fun before ->
            n1.expire before;
            n2.expire before;
            n3.expire before);
      },
      l3 @ l2 @ l1 )
  | Expr.Aperiodic_star (e1, e2, e3) ->
    let window : instance option ref = ref None in
    let acc : instance fifo = fifo_create () in
    let on_e1 i =
      window := Some i;
      fifo_clear acc
    in
    let on_e2 m = if !window <> None then fifo_push acc m in
    let on_e3 j =
      match !window with
      | Some i ->
        out (merge_all ((i :: fifo_all acc) @ [ j ]));
        window := None;
        fifo_clear acc
      | None -> ()
    in
    let n1, l1 = compile_child e1 on_e1
    and n2, l2 = compile_child e2 on_e2
    and n3, l3 = compile_child e3 on_e3 in
    ( {
        accept =
          (fun o ->
            n3.accept o;
            n2.accept o;
            n1.accept o);
        advance =
          (fun t ->
            n1.advance t;
            n2.advance t;
            n3.advance t);
        reset =
          (fun () ->
            window := None;
            fifo_clear acc;
            n1.reset ();
            n2.reset ();
            n3.reset ());
        expire =
          (fun before ->
            n1.expire before;
            n2.expire before;
            n3.expire before);
      },
      l3 @ l2 @ l1 )
  | Expr.Periodic (e1, dt, limit, e3) ->
    let next : int option ref = ref None in
    let remaining = ref limit in
    let tick_no = ref 0 in
    let on_e1 i =
      next := Some (i.t_end + dt);
      remaining := limit;
      tick_no := 0
    in
    let on_e3 _ = next := None in
    let fire_due now =
      let rec loop () =
        match !next with
        | Some due when due <= now ->
          incr tick_no;
          out (instance_of_occurrence (synthetic "<periodic>" !tick_no due));
          (match !remaining with
          | Some r when r <= 1 -> next := None
          | Some r ->
            remaining := Some (r - 1);
            next := Some (due + dt);
            loop ()
          | None ->
            next := Some (due + dt);
            loop ())
        | _ -> ()
      in
      loop ()
    in
    let n1, l1 = compile_child e1 on_e1 and n3, l3 = compile_child e3 on_e3 in
    ( {
        accept =
          (fun o ->
            n3.accept o;
            n1.accept o);
        advance =
          (fun t ->
            n1.advance t;
            n3.advance t;
            fire_due t);
        reset =
          (fun () ->
            next := None;
            tick_no := 0;
            remaining := limit;
            n1.reset ();
            n3.reset ());
        expire =
          (fun before ->
            n1.expire before;
            n3.expire before);
      },
      l3 @ l1 )
  | Expr.Plus (e, dt) ->
    let pending : (instance * int) fifo = fifo_create () in
    let on_e i = fifo_push pending (i, i.t_end + dt) in
    let fire_due now =
      let due, keep =
        List.partition (fun (_, d) -> d <= now) (fifo_all pending)
      in
      fifo_set pending keep;
      List.iter
        (fun (i, d) -> out (merge i (instance_of_occurrence (synthetic "<plus>" dt d))))
        due
    in
    let n, l = compile_child e on_e in
    ( {
        accept = n.accept;
        advance =
          (fun t ->
            n.advance t;
            fire_due t);
        reset =
          (fun () ->
            fifo_clear pending;
            n.reset ());
        (* pending (instance, due) pairs are scheduled future events, not
           stale partials; only forward *)
        expire = (fun before -> n.expire before);
      },
      l )

let rec has_temporal (e : Expr.t) =
  match e with
  | Prim _ -> false
  | And (a, b) | Or (a, b) | Seq (a, b) -> has_temporal a || has_temporal b
  | Any (_, es) -> List.exists has_temporal es
  | Not (a, b, c) | Aperiodic (a, b, c) | Aperiodic_star (a, b, c) ->
    has_temporal a || has_temporal b || has_temporal c
  | Periodic _ | Plus _ -> true

let default_subsumes ~sub ~super = String.equal sub super

let create ?(context = Context.Recent) ?(subsumes = default_subsumes) ~on_signal
    e =
  (* The record is tied into the compiled tree through a forward ref so the
     root's [out] can bump the counter. *)
  let self = ref None in
  let out i =
    (match !self with
    | Some t -> t.n_signalled <- t.n_signalled + 1
    | None -> ());
    if not !Obs.Trace.on then on_signal i
    else begin
      (* A signal hands the instance to the rule layer; the "detect" span
         makes the resulting firing (or enqueue) nest under this detector in
         the cascade trace. *)
      let lbl = match !self with Some t -> t.d_label | None -> "" in
      let tok = Obs.Trace.enter "detect" lbl in
      match on_signal i with
      | () -> Obs.Trace.exit tok
      | exception e ->
        Obs.Trace.exit tok;
        raise e
    end
  in
  let root, leaves = compile subsumes context e out in
  let t =
    {
      d_expr = e;
      d_context = context;
      root;
      d_leaves = leaves;
      d_temporal = has_temporal e;
      now = 0;
      n_fed = 0;
      n_signalled = 0;
      d_label = "";
    }
  in
  self := Some t;
  t

let advance t now =
  if now > t.now then begin
    t.now <- now;
    t.root.advance now
  end

(* One stage for both feeding paths (broadcast [feed], indexed
   [offer_leaf]): "detector advancement" latency includes any synchronous
   signal handling the advancement triggers. *)
let st_feed =
  Obs.Metrics.register
    ~id:(Symbol.intern "detector.feed")
    ~sample_shift:4 "detector.feed"

let feed_raw t (o : Occurrence.t) =
  t.n_fed <- t.n_fed + 1;
  advance t o.at;
  t.root.accept o

let feed t (o : Occurrence.t) =
  if not !Obs.armed then feed_raw t o
  else begin
    let t0 = Obs.Metrics.enter st_feed in
    match feed_raw t o with
    | () -> Obs.Metrics.exit st_feed t0
    | exception e ->
      Obs.Metrics.exit st_feed t0;
      raise e
  end

(* Batched feed.  Occurrences keep their order; a temporal tree still
   advances the clock per occurrence (intermediate periodic/relative fires
   must interleave exactly as under N sequential feeds), while a
   non-temporal tree — where the advance walk is a pure traversal — defers
   the clock update to the batch boundary.  Either way the final clock and
   every accept are identical to N calls of {!feed}. *)
let feed_many_raw t os =
  if t.d_temporal then
    List.iter
      (fun (o : Occurrence.t) ->
        t.n_fed <- t.n_fed + 1;
        advance t o.at;
        t.root.accept o)
      os
  else begin
    let last = ref t.now in
    List.iter
      (fun (o : Occurrence.t) ->
        t.n_fed <- t.n_fed + 1;
        if o.at > !last then last := o.at;
        t.root.accept o)
      os;
    advance t !last
  end

let feed_many t os =
  match os with
  | [] -> ()
  | [ o ] -> feed t o
  | _ ->
    if not !Obs.armed then feed_many_raw t os
    else begin
      (* one sample per batch: the histogram prices the whole vector *)
      let t0 = Obs.Metrics.enter st_feed in
      match feed_many_raw t os with
      | () -> Obs.Metrics.exit st_feed t0
      | exception e ->
        Obs.Metrics.exit st_feed t0;
        raise e
    end

let reset t = t.root.reset ()
let expire t ~before = t.root.expire before
let leaves t = t.d_leaves
let leaf_prim leaf = leaf.leaf_prim

let offer_leaf_raw t leaf (o : Occurrence.t) =
  t.n_fed <- t.n_fed + 1;
  advance t o.at;
  leaf.leaf_accept o

let offer_leaf t leaf (o : Occurrence.t) =
  if not !Obs.armed then offer_leaf_raw t leaf o
  else begin
    let t0 = Obs.Metrics.enter st_feed in
    match offer_leaf_raw t leaf o with
    | () -> Obs.Metrics.exit st_feed t0
    | exception e ->
      Obs.Metrics.exit st_feed t0;
      raise e
  end
