open Import

(** Composite-event detection.

    A detector is the runtime behaviour of an event object: primitive
    occurrences are fed in (the paper's [Notify] on event objects) and the
    detector signals each {e instance} of the composite event, carrying the
    constituent occurrences and their parameters (the paper's [Record]).

    One detector instance serves one event expression under one parameter
    context; rules own detectors.  Detection is driven by {!feed}; the
    temporal operators (periodic, plus) additionally need {!advance} to be
    told that logical time has progressed — {!feed} advances to the incoming
    occurrence's timestamp automatically.

    The per-operator, per-context semantics are specified in {!Context} and
    in the operator documentation of {!Expr}; the unit tests under
    [test/test_detector.ml] pin them down. *)

type instance = {
  constituents : Occurrence.t list;  (** chronological *)
  t_start : Oodb.Types.timestamp;
  t_end : Oodb.Types.timestamp;
}

type t

val create :
  ?context:Context.t ->
  ?subsumes:(sub:string -> super:string -> bool) ->
  on_signal:(instance -> unit) ->
  Expr.t ->
  t
(** [create ~on_signal expr] compiles [expr] into a detector.
    - [context] defaults to {!Context.Recent}.
    - [subsumes] decides whether a runtime class matches a primitive
      event's declared class; the default is string equality, and the rule
      layer passes database-backed inheritance so that an event declared on
      a superclass matches subclass instances. *)

val expr : t -> Expr.t
val context : t -> Context.t

val set_label : t -> string -> unit
(** Name this detector in observability output ("detect" trace spans).  The
    rule layer sets it to the owning rule's name; default [""]. *)

val label : t -> string

val feed : t -> Occurrence.t -> unit
(** Advance time to the occurrence's timestamp, then offer it to every
    matching primitive leaf.  May call [on_signal] zero or more times,
    synchronously. *)

val feed_many : t -> Occurrence.t list -> unit
(** Feed a chronologically ordered batch.  Observationally equivalent to
    feeding each occurrence in order — temporal trees advance the clock per
    occurrence so intermediate periodic/relative fires interleave exactly;
    non-temporal trees defer the (pure-traversal) clock walk to the batch
    boundary.  One metrics sample covers the whole batch. *)

val advance : t -> Oodb.Types.timestamp -> unit
(** Declare that logical time has reached the given instant (monotone;
    earlier instants are ignored).  Fires any due periodic/plus instances. *)

val reset : t -> unit
(** Drop all partial state (buffered constituents, open windows). *)

val expire : t -> before:Oodb.Types.timestamp -> unit
(** Drop buffered partial instances whose newest constituent is older than
    [before].  Bounds detector memory for long-running systems: a chronicle
    conjunction whose right side never arrives would otherwise buffer
    forever.  Open monitoring windows (aperiodic/periodic) and scheduled
    relative events are kept — they are intent, not stale state. *)

val fed : t -> int
(** Occurrences fed so far. *)

val signalled : t -> int
(** Composite instances signalled so far. *)

val instance_of_occurrence : Occurrence.t -> instance
(** The singleton instance a primitive occurrence denotes; exposed for
    tests and for rules over bare primitive events. *)

(** {1 Leaf-level access (used by {!Event_graph})}

    A leaf is one primitive-event node of the compiled tree.  The shared
    event graph indexes all detectors' leaves by (method, modifier) so that
    an occurrence only reaches detectors with a potentially matching leaf,
    instead of being offered to every detector. *)

type leaf

val leaves : t -> leaf list
(** The compiled tree's primitive leaves, in the exact order the root's
    accept path visits them.  For the three-role operators (NOT, aperiodic,
    periodic) that is terminator, then canceller, then initiator — not
    source order — and indexes that bypass {!feed} must offer a multi-role
    occurrence to leaves in this order to stay observationally equivalent. *)

val leaf_prim : leaf -> Expr.prim

val offer_leaf : t -> leaf -> Occurrence.t -> unit
(** Advance time to the occurrence and offer it to this one leaf (which
    still applies its own full primitive filter). *)

val has_temporal : Expr.t -> bool
(** Does the expression contain periodic/relative operators that need
    {!advance} driving even without matching occurrences? *)

val pp_instance : Format.formatter -> instance -> unit
