(** The event algebra and composite-event detection.

    {!Expr} builds event expressions (primitives from signatures or
    constructors, composed with the Snoop operators); {!Parser} gives them
    a concrete syntax; {!Codec} a persistent encoding.  {!Detector}
    compiles an expression into a running detector under a parameter
    {!Context}; {!Event_graph} routes occurrences to many detectors through
    a (method, modifier) index, and {!Route} generalizes that index to the
    full rule layer (subscription filtering, lifecycle, cached class
    subsumption). *)

module Context = Context
module Signature = Signature
module Expr = Expr
module Detector = Detector
module Codec = Codec
module Parser = Parser
module Event_graph = Event_graph
module Route = Route
