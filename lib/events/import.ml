(* Aliases for the substrate modules this library builds on; opened by the
   other modules of the library so that types read naturally. *)

module Oid = Oodb.Oid
module Symbol = Oodb.Symbol
module Value = Oodb.Value
module Occurrence = Oodb.Occurrence
module Errors = Oodb.Errors
module Db = Oodb.Db
