open Import

(* A discrimination (alpha) index over the primitive leaves of every
   registered detector.  One hashtable keyed by (method, modifier) maps an
   occurrence to the candidate leaves across all consumers; per-candidate
   checks are then subscription, class subsumption, source set and parameter
   filters — each O(1) or O(size of the candidate's own predicate).  The
   class-derived sets are cached per entry and invalidated by comparing the
   database's generation stamps, so steady-state delivery never walks the
   class hierarchy. *)

type counters = {
  mutable candidates_probed : int;
  mutable leaves_offered : int;
  mutable index_hits : int;
  mutable batch_events : int;  (* occurrences delivered through deliver_many *)
  mutable coalesced_probes : int;
      (* index probes skipped by batch route-key coalescing: deliveries
         whose key's candidate list was already resolved this batch *)
}

(* Bucket keys pack the interned method name and the modifier into one int —
   [(meth_sym lsl 1) lor modifier_bit] — so a delivery probe neither hashes
   a string nor allocates a tuple. *)
let modifier_bit = function Oodb.Types.Before -> 0 | Oodb.Types.After -> 1
let key_of ~meth_sym ~modifier = (meth_sym lsl 1) lor modifier_bit modifier

let key_of_occ (occ : Occurrence.t) =
  (occ.Oodb.Occurrence.meth_sym lsl 1)
  lor modifier_bit occ.Oodb.Occurrence.modifier

type reg = {
  r_consumer : Oid.t;
  r_detector : Detector.t option;  (* [None] for wildcard handlers *)
  r_guard : unit -> bool;
  r_on_receive : Occurrence.t -> unit;
  r_keys : int list;  (* distinct bucket keys *)
  r_temporal : bool;
  mutable r_seen : int;  (* delivery sequence last received; dedups fan-in *)
  (* Classes whose instances this consumer hears through class-level
     subscription: for each subscribed class, that class and everything
     below it.  Stamped against both generations — the set changes when the
     hierarchy changes or when (un)subscription (including rollback) does. *)
  mutable r_sub_schema_stamp : int;
  mutable r_sub_stamp : int;
  r_sub_accept : (Symbol.t, unit) Hashtbl.t;
}

type entry = {
  e_reg : reg;
  e_leaf : Detector.leaf;
  e_prim : Expr.prim;
  (* [p_class]'s subsumption set — the declared class and its subclasses —
     resolved once per schema generation.  [None] when the leaf matches any
     class.  A stamp of -1 means never computed. *)
  e_classes : (Symbol.t, unit) Hashtbl.t option;
  mutable e_class_stamp : int;
}

type bucket = {
  mutable b_rev : entry list;  (* newest first: O(1) insertion *)
  mutable b_ordered : entry list;  (* registration order; rebuilt lazily *)
}

type t = {
  rt_db : Db.t;
  index : (int, bucket) Hashtbl.t;
  regs : reg Oid.Table.t;  (* detector registrations, by consumer *)
  temporal : reg Oid.Table.t;  (* subset whose detectors need clock driving *)
  wildcards : reg Oid.Table.t;  (* handlers that hear every subscribed event *)
  mutable seq : int;
  (* bumped whenever the index's buckets change (register/unregister); the
     batched delivery path stamps its per-batch key memo against it so a
     mid-batch (un)registration — e.g. a rule action creating a rule —
     invalidates the memo instead of serving stale candidate lists. *)
  mutable reg_gen : int;
  (* the live batch memo, when delivery is running under [with_batch]:
     distinct route key -> resolved candidate list, stamped against
     [reg_gen].  [None] outside a batch scope. *)
  mutable memo : (int, entry list) Hashtbl.t option;
  mutable memo_gen : int;
  counters : counters;
}

let create db =
  {
    rt_db = db;
    index = Hashtbl.create 64;
    regs = Oid.Table.create 64;
    temporal = Oid.Table.create 8;
    wildcards = Oid.Table.create 8;
    seq = 0;
    reg_gen = 0;
    memo = None;
    memo_gen = 0;
    counters =
      {
        candidates_probed = 0;
        leaves_offered = 0;
        index_hits = 0;
        batch_events = 0;
        coalesced_probes = 0;
      };
  }

let counters t = t.counters

let reset_counters t =
  let c = t.counters in
  c.candidates_probed <- 0;
  c.leaves_offered <- 0;
  c.index_hits <- 0;
  c.batch_events <- 0;
  c.coalesced_probes <- 0

(* --- registration ------------------------------------------------------- *)

let bucket t key =
  match Hashtbl.find_opt t.index key with
  | Some b -> b
  | None ->
    let b = { b_rev = []; b_ordered = [] } in
    Hashtbl.replace t.index key b;
    b

let drop_entries t reg =
  t.reg_gen <- t.reg_gen + 1;
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.index key with
      | None -> ()
      | Some b ->
        b.b_rev <- List.filter (fun e -> e.e_reg != reg) b.b_rev;
        b.b_ordered <- [];
        if b.b_rev = [] then Hashtbl.remove t.index key)
    reg.r_keys

let unregister t consumer =
  (match Oid.Table.find_opt t.regs consumer with
  | Some reg ->
    drop_entries t reg;
    Oid.Table.remove t.regs consumer;
    Oid.Table.remove t.temporal consumer
  | None -> ());
  Oid.Table.remove t.wildcards consumer

let default_guard () = true

let make_reg ~consumer ~detector ~guard ~on_receive ~keys ~temporal =
  {
    r_consumer = consumer;
    r_detector = detector;
    r_guard = guard;
    r_on_receive = on_receive;
    r_keys = keys;
    r_temporal = temporal;
    r_seen = 0;
    r_sub_schema_stamp = -1;
    r_sub_stamp = -1;
    r_sub_accept = Hashtbl.create 8;
  }

let register t ~consumer ?(guard = default_guard) ~on_receive detector =
  if Oid.Table.mem t.regs consumer then unregister t consumer;
  let leaves = Detector.leaves detector in
  let key_of_prim (p : Expr.prim) =
    key_of ~meth_sym:(Symbol.intern p.Expr.p_meth) ~modifier:p.Expr.p_modifier
  in
  let keys =
    List.fold_left
      (fun acc leaf ->
        let key = key_of_prim (Detector.leaf_prim leaf) in
        if List.mem key acc then acc else key :: acc)
      [] leaves
  in
  let temporal = Detector.has_temporal (Detector.expr detector) in
  let reg =
    make_reg ~consumer ~detector:(Some detector) ~guard ~on_receive ~keys
      ~temporal
  in
  List.iter
    (fun leaf ->
      let p = Detector.leaf_prim leaf in
      let b = bucket t (key_of_prim p) in
      let entry =
        {
          e_reg = reg;
          e_leaf = leaf;
          e_prim = p;
          e_classes =
            (match p.Expr.p_class with
            | None -> None
            | Some _ -> Some (Hashtbl.create 8));
          e_class_stamp = -1;
        }
      in
      b.b_rev <- entry :: b.b_rev;
      b.b_ordered <- [])
    leaves;
  t.reg_gen <- t.reg_gen + 1;
  Oid.Table.replace t.regs consumer reg;
  if temporal then Oid.Table.replace t.temporal consumer reg

let register_wildcard t ~consumer ?(guard = default_guard) handler =
  let reg =
    make_reg ~consumer ~detector:None ~guard ~on_receive:handler ~keys:[]
      ~temporal:false
  in
  Oid.Table.replace t.wildcards consumer reg

let registered t consumer =
  Oid.Table.mem t.regs consumer || Oid.Table.mem t.wildcards consumer

let reg_count t = Oid.Table.length t.regs + Oid.Table.length t.wildcards

let leaf_count t =
  Hashtbl.fold (fun _ b acc -> acc + List.length b.b_rev) t.index 0

(* --- cached predicate sets ---------------------------------------------- *)

(* The set of runtime classes the consumer hears via class-level
   subscription: for every class C it subscribes to, C and C's subclasses.
   Equivalent to the substrate walking the source's ancestry against
   [class_consumers], but probed with one hash lookup per event. *)
let refresh_sub_accept t reg =
  let sg = Db.schema_generation t.rt_db
  and cg = Db.class_sub_generation t.rt_db in
  if reg.r_sub_schema_stamp <> sg || reg.r_sub_stamp <> cg then begin
    Hashtbl.reset reg.r_sub_accept;
    List.iter
      (fun cls ->
        if List.exists (Oid.equal reg.r_consumer) (Db.class_consumers_of t.rt_db cls)
        then
          List.iter
            (fun sub -> Hashtbl.replace reg.r_sub_accept (Symbol.intern sub) ())
            (Db.subclasses t.rt_db cls))
      (Db.classes t.rt_db);
    reg.r_sub_schema_stamp <- sg;
    reg.r_sub_stamp <- cg
  end

let subscribed t reg (o : Oodb.Types.obj) =
  refresh_sub_accept t reg;
  Hashtbl.mem reg.r_sub_accept
    o.Oodb.Types.info.Oodb.Types.ri_layout.Oodb.Types.ly_class_sym
  || List.exists (Oid.equal reg.r_consumer) o.Oodb.Types.consumers

(* Same subsumption the detector leaf applies ([System.subsumes_of]): the
   declared class name itself always matches (covering synthetic classes
   like the detector's "<clock>"), and when it names a defined class so do
   its subclasses. *)
let class_ok t entry (occ : Occurrence.t) =
  match entry.e_classes with
  | None -> true
  | Some set ->
    let sg = Db.schema_generation t.rt_db in
    if entry.e_class_stamp <> sg then begin
      Hashtbl.reset set;
      (match entry.e_prim.Expr.p_class with
      | None -> ()
      | Some super ->
        Hashtbl.replace set (Symbol.intern super) ();
        List.iter
          (fun sub -> Hashtbl.replace set (Symbol.intern sub) ())
          (Db.subclasses t.rt_db super));
      entry.e_class_stamp <- sg
    end;
    Hashtbl.mem set occ.Oodb.Occurrence.class_sym

(* --- delivery ----------------------------------------------------------- *)

let st_route =
  Obs.Metrics.register
    ~id:(Symbol.intern "route.deliver")
    ~sample_shift:4 "route.deliver"

let entries_of_bucket b =
  match b.b_ordered with
  | [] ->
    let l = List.rev b.b_rev in
    b.b_ordered <- l;
    l
  | l -> l

(* The per-occurrence delivery body, over an already-resolved candidate
   list.  [entries = []] means the key had no bucket — the single-event path
   probes the index itself; the batched path resolves each distinct key once
   and replays the list for every occurrence in the group. *)
let deliver_entries t (o : Oodb.Types.obj) (occ : Occurrence.t) entries =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let receive reg =
    if reg.r_seen <> seq then begin
      reg.r_seen <- seq;
      let s = Db.stats t.rt_db in
      s.Oodb.Types.notifications <- s.Oodb.Types.notifications + 1;
      reg.r_on_receive occ
    end
  in
  (* Ad-hoc handlers hear every occurrence they are subscribed to,
     whatever its method — they have no leaves to index. *)
  Oid.Table.iter
    (fun _ reg -> if reg.r_guard () && subscribed t reg o then receive reg)
    t.wildcards;
  (* Temporal detectors must observe the clock from every occurrence their
     owner is subscribed to, even when no leaf matches — broadcast feeding
     gave them that for free. *)
  Oid.Table.iter
    (fun _ reg ->
      if reg.r_guard () && subscribed t reg o then begin
        receive reg;
        match reg.r_detector with
        | Some d -> Detector.advance d occ.Oodb.Occurrence.at
        | None -> ()
      end)
    t.temporal;
  match entries with
  | [] -> ()
  | entries ->
    t.counters.index_hits <- t.counters.index_hits + 1;
    List.iter
      (fun e ->
        t.counters.candidates_probed <- t.counters.candidates_probed + 1;
        let reg = e.e_reg in
        if reg.r_guard () && subscribed t reg o then begin
          receive reg;
          if
            class_ok t e occ
            && (Oid.Set.is_empty e.e_prim.Expr.p_sources
               || Oid.Set.mem occ.Oodb.Occurrence.source e.e_prim.Expr.p_sources)
            && List.for_all
                 (fun f -> Expr.filter_matches f occ.Oodb.Occurrence.params)
                 e.e_prim.Expr.p_filters
          then begin
            t.counters.leaves_offered <- t.counters.leaves_offered + 1;
            match reg.r_detector with
            | Some d -> Detector.offer_leaf d e.e_leaf occ
            | None -> ()
          end
        end)
      entries

(* Resolve an occurrence key to its candidate list.  Under a batch scope
   ([with_batch]) the resolution is memoized per distinct key — that is the
   route-key coalescing: within a batch, the discrimination index is probed
   once per distinct key and the candidate list replayed for every later
   occurrence in that key's group.  The memo is stamped against [reg_gen]:
   if delivery itself (an immediate rule's action) (un)registers a
   consumer, the memo is flushed and subsequent keys re-probe, keeping a
   batch observationally identical to the sequential path. *)
let resolve_entries t key =
  match Hashtbl.find_opt t.index key with
  | None -> []
  | Some b -> entries_of_bucket b

let entries_for t key =
  match t.memo with
  | None -> resolve_entries t key
  | Some memo ->
    if t.memo_gen <> t.reg_gen then begin
      Hashtbl.reset memo;
      t.memo_gen <- t.reg_gen
    end;
    (match Hashtbl.find_opt memo key with
    | Some es ->
      t.counters.coalesced_probes <- t.counters.coalesced_probes + 1;
      es
    | None ->
      let es = resolve_entries t key in
      Hashtbl.replace memo key es;
      es)

let deliver_raw t (o : Oodb.Types.obj) (occ : Occurrence.t) =
  if t.memo <> None then
    t.counters.batch_events <- t.counters.batch_events + 1;
  deliver_entries t o occ (entries_for t (key_of_occ occ))

(* Open a route-key-coalescing scope: every delivery [f] performs — however
   it interleaves with method execution and rule actions — shares one
   per-batch key memo.  Delivery points, ordering and detector interleaving
   are untouched; only redundant index probes are skipped.  Reentrant: a
   nested scope (a rule action ingesting a sub-batch) keeps using the
   outer memo. *)
let with_batch t f =
  match t.memo with
  | Some _ -> f ()
  | None ->
    t.memo <- Some (Hashtbl.create 16);
    t.memo_gen <- t.reg_gen;
    Fun.protect ~finally:(fun () -> t.memo <- None) f

(* Immediate-coupled rules execute synchronously inside delivery, so the
   "route" span (and histogram) covers candidate probing plus whatever the
   matched rules do — the cascade nests inside it, which is exactly the
   containment the trace view wants. *)
let deliver t (o : Oodb.Types.obj) (occ : Occurrence.t) =
  if not !Obs.armed then deliver_raw t o occ
  else begin
    let t0 = Obs.Metrics.enter st_route in
    let tok = Obs.Trace.enter "route" occ.Oodb.Occurrence.meth in
    match deliver_raw t o occ with
    | () ->
      Obs.Trace.exit tok;
      Obs.Metrics.exit st_route t0
    | exception e ->
      Obs.Trace.exit tok;
      Obs.Metrics.exit st_route t0;
      raise e
  end

let deliver_many t batch =
  match batch with
  | [] -> ()
  | [ (o, occ) ] -> deliver t o occ
  | _ ->
    with_batch t (fun () ->
        if not !Obs.armed then
          List.iter (fun (o, occ) -> deliver_raw t o occ) batch
        else begin
          (* one route span + one histogram sample covers the whole vector *)
          let t0 = Obs.Metrics.enter st_route in
          let tok =
            Obs.Trace.enter "route"
              (Printf.sprintf "batch:%d" (List.length batch))
          in
          match List.iter (fun (o, occ) -> deliver_raw t o occ) batch with
          | () ->
            Obs.Trace.exit tok;
            Obs.Metrics.exit st_route t0
          | exception e ->
            Obs.Trace.exit tok;
            Obs.Metrics.exit st_route t0;
            raise e
        end)
