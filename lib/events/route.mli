open Import

(** Discrimination-indexed event routing.

    Instead of broadcasting each occurrence to every subscribed rule's
    detector (which re-tests every primitive leaf of every rule), the rule
    layer registers each detector's leaves here once.  A shared hashtable
    keyed by (method, modifier) then maps an occurrence straight to the
    candidate leaves across {e all} consumers, and only candidates pay the
    remaining per-leaf checks: class subsumption (a precomputed set of the
    declared class and its subclasses), source-OID restriction and
    parameter filters.  Matching leaves receive the occurrence through
    {!Detector.offer_leaf}.

    The class-derived sets — per-leaf subsumption and per-consumer
    class-subscription acceptance — are resolved lazily and cached, stamped
    with {!Db.schema_generation} / {!Db.class_sub_generation}; any class
    definition, schema evolution or (un)subscription (including rollback)
    invalidates them by bumping a stamp, costing one integer compare per
    probe in the steady state.

    This generalizes {!Event_graph} (an index over bare detectors) to the
    full rule layer: subscription filtering, enable/disable lifecycle and
    temporal clock driving.

    Observable differences from broadcast delivery, by design: a consumer's
    [on_receive] fires only for occurrences whose (method, modifier) has a
    candidate leaf for it (plus every subscribed occurrence for temporal
    detectors and wildcard handlers), and detectors are not fed occurrences
    that cannot match any leaf — so {!Detector.fed} counts drop.  Detection
    outcomes — signalled instances, rule triggerings and firings — are
    identical; [test/test_differential.ml] checks that equivalence. *)

type t

type counters = {
  mutable candidates_probed : int;
      (** bucket entries examined across all deliveries *)
  mutable leaves_offered : int;
      (** candidates that passed every check and were offered *)
  mutable index_hits : int;  (** deliveries whose key had a bucket *)
  mutable batch_events : int;
      (** occurrences delivered through {!deliver_many} *)
  mutable coalesced_probes : int;
      (** index probes skipped by batch route-key coalescing: deliveries in
          a batch whose key's candidate list was already resolved *)
}

val create : Db.t -> t

val register :
  t ->
  consumer:Oid.t ->
  ?guard:(unit -> bool) ->
  on_receive:(Occurrence.t -> unit) ->
  Detector.t ->
  unit
(** Index every leaf of the detector under [consumer].  Re-registering the
    same consumer replaces its previous registration.  [guard] is consulted
    before anything is delivered (default: always true) — the rule layer
    uses it to cover rules whose object vanished (deleted, or creation
    rolled back).  [on_receive] fires at most once per delivered occurrence
    the consumer is subscribed to and is a candidate for — before any leaf
    is offered — and backs the rule's recorder and delivery statistics. *)

val register_wildcard :
  t -> consumer:Oid.t -> ?guard:(unit -> bool) -> (Occurrence.t -> unit) -> unit
(** Register a leafless consumer (an ad-hoc notifiable handler) that hears
    every occurrence it is subscribed to, whatever the method. *)

val unregister : t -> Oid.t -> unit
(** Drop the consumer's leaves (and/or wildcard handler) from the index.
    No-op for unknown consumers. *)

val registered : t -> Oid.t -> bool

val deliver : t -> Oodb.Types.obj -> Occurrence.t -> unit
(** Route one occurrence: wildcard handlers first, then clock advancement
    for subscribed temporal detectors, then the (method, modifier) bucket
    probe.  Installed as the database's {!Db.set_route} hook. *)

val deliver_many : t -> (Oodb.Types.obj * Occurrence.t) list -> unit
(** Route a batch in order under one {!with_batch} scope: the
    discrimination index is probed once per {e distinct} (method, modifier)
    key in the batch and the resolved candidate list replayed for every
    occurrence in that key's group.  Delivery order, detector interleaving,
    firings and statistics (bar
    {!counters}[.batch_events]/[.coalesced_probes]) are identical to
    calling {!deliver} per pair.  One "route" trace span and one histogram
    sample cover the whole batch. *)

val with_batch : t -> (unit -> 'a) -> 'a
(** Open a route-key-coalescing scope around [f]: every delivery inside —
    however it interleaves with method execution and rule actions — shares
    one per-batch key memo, so the index is probed once per distinct key.
    Delivery points and ordering are untouched; a mid-batch
    (un)registration flushes the memo, keeping the scope observationally
    identical to unscoped delivery.  Reentrant (a nested scope reuses the
    outer memo); {!Db.send_many} runs under this via {!System.ingest}. *)

(** {1 Introspection} *)

val counters : t -> counters
val reset_counters : t -> unit

val leaf_count : t -> int
(** Total leaf entries currently indexed. *)

val reg_count : t -> int
(** Registered consumers (detectors plus wildcards). *)
