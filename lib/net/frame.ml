let version = 1
let magic = "SNTL"
let header_len = 16
let max_payload = 16 * 1024 * 1024

exception Frame_error of string
exception Version_mismatch of int

let frame_error fmt = Printf.ksprintf (fun m -> raise (Frame_error m)) fmt

type t =
  | Hello of { version : int; client : string }
  | Send_many of { trace : int; events : string list }
  | Subscribe of { name : string; classes : string list; expr : string }
  | Unsubscribe of { sub_id : int }
  | Query of { cls : string; pred : string }
  | Drain
  | Stats_req
  | Ping of { token : int }
  | Hello_ack of { version : int; shards : int }
  | Ack of { count : int }
  | Sub_ack of { sub_id : int }
  | Notify of { sub_id : int; instances : string list }
  | Rows of { rows : (int * string * (string * string) list) list }
  | Query_done of { total : int }
  | Drain_done
  | Stats of { text : string }
  | Pong of { token : int }
  | Err of { code : int; msg : string }

let err_version = 1
let err_frame = 2
let err_request = 3
let err_degraded = 4
let err_overload = 5
let err_stopped = 6

let tag = function
  | Hello _ -> 0x01
  | Send_many _ -> 0x02
  | Subscribe _ -> 0x03
  | Unsubscribe _ -> 0x04
  | Query _ -> 0x05
  | Drain -> 0x06
  | Stats_req -> 0x07
  | Ping _ -> 0x08
  | Hello_ack _ -> 0x81
  | Ack _ -> 0x82
  | Sub_ack _ -> 0x83
  | Notify _ -> 0x84
  | Rows _ -> 0x85
  | Query_done _ -> 0x86
  | Drain_done -> 0x87
  | Stats _ -> 0x88
  | Pong _ -> 0x89
  | Err _ -> 0x8A

(* --- payload primitives ----------------------------------------------------

   Big-endian fixed-width integers and u32-length-prefixed strings over a
   Buffer (writing) / string+cursor (reading).  Ints travel as i64 (OCaml
   ints are 63-bit, so every int fits); short counts as u32. *)

let put_u32 buf v =
  if v < 0 || v > 0xFFFF_FFFF then frame_error "u32 out of range: %d" v;
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_i64 buf v =
  let v64 = Int64.of_int v in
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (i * 8)) 0xFFL)))
  done

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_list buf put items =
  put_u32 buf (List.length items);
  List.iter (put buf) items

type cursor = { data : string; mutable pos : int }

let need cur n =
  if cur.pos + n > String.length cur.data then
    frame_error "payload truncated at byte %d (need %d more)" cur.pos n

let get_u32 cur =
  need cur 4;
  let b i = Char.code cur.data.[cur.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  cur.pos <- cur.pos + 4;
  v

let get_i64 cur =
  need cur 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code cur.data.[cur.pos + i]))
  done;
  cur.pos <- cur.pos + 8;
  Int64.to_int !v

let get_str cur =
  let len = get_u32 cur in
  need cur len;
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let get_list cur get =
  let n = get_u32 cur in
  (* cheap bomb guard: every element costs at least one length byte *)
  if n > String.length cur.data - cur.pos then
    frame_error "list count %d exceeds remaining payload" n;
  List.init n (fun _ -> get cur)

(* --- message payloads ------------------------------------------------------ *)

let encode_payload buf = function
  | Hello { version; client } ->
    put_u32 buf version;
    put_str buf client
  | Send_many { trace; events } ->
    put_i64 buf trace;
    put_list buf put_str events
  | Subscribe { name; classes; expr } ->
    put_str buf name;
    put_list buf put_str classes;
    put_str buf expr
  | Unsubscribe { sub_id } -> put_u32 buf sub_id
  | Query { cls; pred } ->
    put_str buf cls;
    put_str buf pred
  | Drain | Stats_req | Drain_done -> ()
  | Ping { token } -> put_i64 buf token
  | Hello_ack { version; shards } ->
    put_u32 buf version;
    put_u32 buf shards
  | Ack { count } -> put_u32 buf count
  | Sub_ack { sub_id } -> put_u32 buf sub_id
  | Notify { sub_id; instances } ->
    put_u32 buf sub_id;
    put_list buf put_str instances
  | Rows { rows } ->
    put_list buf
      (fun buf (oid, cls, attrs) ->
        put_i64 buf oid;
        put_str buf cls;
        put_list buf
          (fun buf (name, v) ->
            put_str buf name;
            put_str buf v)
          attrs)
      rows
  | Query_done { total } -> put_u32 buf total
  | Stats { text } -> put_str buf text
  | Pong { token } -> put_i64 buf token
  | Err { code; msg } ->
    put_u32 buf code;
    put_str buf msg

let decode_payload tag_v cur =
  match tag_v with
  | 0x01 ->
    let version = get_u32 cur in
    let client = get_str cur in
    Hello { version; client }
  | 0x02 ->
    let trace = get_i64 cur in
    let events = get_list cur get_str in
    Send_many { trace; events }
  | 0x03 ->
    let name = get_str cur in
    let classes = get_list cur get_str in
    let expr = get_str cur in
    Subscribe { name; classes; expr }
  | 0x04 -> Unsubscribe { sub_id = get_u32 cur }
  | 0x05 ->
    let cls = get_str cur in
    let pred = get_str cur in
    Query { cls; pred }
  | 0x06 -> Drain
  | 0x07 -> Stats_req
  | 0x08 -> Ping { token = get_i64 cur }
  | 0x81 ->
    let version = get_u32 cur in
    let shards = get_u32 cur in
    Hello_ack { version; shards }
  | 0x82 -> Ack { count = get_u32 cur }
  | 0x83 -> Sub_ack { sub_id = get_u32 cur }
  | 0x84 ->
    let sub_id = get_u32 cur in
    let instances = get_list cur get_str in
    Notify { sub_id; instances }
  | 0x85 ->
    let rows =
      get_list cur (fun cur ->
          let oid = get_i64 cur in
          let cls = get_str cur in
          let attrs =
            get_list cur (fun cur ->
                let name = get_str cur in
                let v = get_str cur in
                (name, v))
          in
          (oid, cls, attrs))
    in
    Rows { rows }
  | 0x86 -> Query_done { total = get_u32 cur }
  | 0x87 -> Drain_done
  | 0x88 -> Stats { text = get_str cur }
  | 0x89 -> Pong { token = get_i64 cur }
  | 0x8A ->
    let code = get_u32 cur in
    let msg = get_str cur in
    Err { code; msg }
  | t -> frame_error "unknown message tag 0x%02x" t

(* --- framing --------------------------------------------------------------- *)

let crc32 s = Int32.to_int (Oodb.Storage.Crc32.string s) land 0xFFFF_FFFF

let encode ?(version = version) msg =
  let payload = Buffer.create 64 in
  encode_payload payload msg;
  let payload = Buffer.contents payload in
  if String.length payload > max_payload then
    frame_error "payload %d bytes exceeds max %d" (String.length payload)
      max_payload;
  let buf = Buffer.create (header_len + String.length payload) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr (version land 0xFF));
  Buffer.add_char buf (Char.chr (tag msg));
  Buffer.add_char buf '\000';
  Buffer.add_char buf '\000';
  put_u32 buf (String.length payload);
  put_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Parse the 16-byte header; returns (version, tag, payload_len, crc). *)
let parse_header h =
  if String.length h < header_len then frame_error "header truncated";
  if String.sub h 0 4 <> magic then
    frame_error "bad magic %S" (String.sub h 0 4);
  let v = Char.code h.[4] in
  let tag_v = Char.code h.[5] in
  if h.[6] <> '\000' || h.[7] <> '\000' then frame_error "non-zero flags";
  let b i = Char.code h.[i] in
  let len = (b 8 lsl 24) lor (b 9 lsl 16) lor (b 10 lsl 8) lor b 11 in
  let crc = (b 12 lsl 24) lor (b 13 lsl 16) lor (b 14 lsl 8) lor b 15 in
  if len > max_payload then frame_error "payload length %d exceeds max" len;
  if v <> version then raise (Version_mismatch v);
  (v, tag_v, len, crc)

let decode_body tag_v payload crc =
  if crc32 payload <> crc then frame_error "CRC mismatch";
  let cur = { data = payload; pos = 0 } in
  let msg = decode_payload tag_v cur in
  if cur.pos <> String.length payload then
    frame_error "trailing payload bytes (%d unread)"
      (String.length payload - cur.pos);
  msg

let decode s =
  let _, tag_v, len, crc = parse_header s in
  if String.length s <> header_len + len then
    frame_error "frame length %d, header promises %d" (String.length s)
      (header_len + len);
  decode_body tag_v (String.sub s header_len len) crc

(* --- blocking stream I/O --------------------------------------------------- *)

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = retry_eintr (fun () -> Unix.write fd b pos len) in
    write_all fd b (pos + n) (len - n)
  end

let write_fd fd ?version msg =
  let s = encode ?version msg in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s);
  String.length s

(* Read exactly [len] bytes; End_of_file on a peer close. *)
let read_exact fd len =
  let b = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let n = retry_eintr (fun () -> Unix.read fd b !pos (len - !pos)) in
    if n = 0 then raise End_of_file;
    pos := !pos + n
  done;
  Bytes.unsafe_to_string b

let read_fd fd =
  let header = read_exact fd header_len in
  let _, tag_v, len, crc = parse_header header in
  let payload = if len = 0 then "" else read_exact fd len in
  (decode_body tag_v payload crc, header_len + len)
