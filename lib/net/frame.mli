(** The Sentinel wire protocol: length-prefixed, CRC-checked binary frames.

    Every frame is a fixed 16-byte header followed by the payload:

    {v
      offset  size  field
      0       4     magic "SNTL"
      4       1     protocol version (see {!version})
      5       1     message tag
      6       2     flags (reserved, must be 0)
      8       4     payload length, big-endian
      12      4     CRC-32 of the payload, big-endian
      16      len   payload
    v}

    Payload fields are big-endian fixed-width integers and
    length-prefixed strings; free-form values — event expressions,
    occurrences, send requests, attribute values — reuse the
    {!Events.Codec} / {!Oodb.Persist} textual encodings rather than a
    second serializer, so the dead-letter queue, the WAL and the wire
    all speak the same value language.

    [decode (encode m)] is structurally equal to [m].  A frame that is
    truncated, carries a bad magic, a flipped CRC bit or a malformed
    payload decodes to {!Frame_error}; only the version byte is reported
    separately ({!Version_mismatch}) so a server can answer an
    incompatible client with a typed error frame instead of dropping the
    connection silently. *)

val version : int
(** The protocol version this build speaks (1). *)

val max_payload : int
(** Upper bound on accepted payload length (16 MiB); longer frames are
    rejected as {!Frame_error} before any allocation. *)

exception Frame_error of string
(** Malformed frame: bad magic, bad CRC, truncated, oversized, non-zero
    flags, unknown tag, or a malformed payload. *)

exception Version_mismatch of int
(** The frame's version byte (the argument is the version {e received});
    raised before the payload is touched. *)

(** One protocol message.  Tags [0x01..] flow client-to-server, [0x81..]
    server-to-client; the codec itself is direction-agnostic. *)
type t =
  | Hello of { version : int; client : string }
      (** handshake; the in-payload version must match the header's *)
  | Send_many of { trace : int; events : string list }
      (** streaming ingestion: {!Events.Codec.encode_event}-encoded send
          requests, executed as one partitioned batch ingest.  [trace]
          carries the client's cascade id ([0] = none). *)
  | Subscribe of { name : string; classes : string list; expr : string }
      (** register a rule ({!Events.Codec.encode}-encoded event
          expression over [classes]) whose firings stream back as
          {!Notify} frames *)
  | Unsubscribe of { sub_id : int }
  | Query of { cls : string; pred : string }
      (** predicate in {!Oodb.Query_parser} syntax; rows stream back *)
  | Drain  (** block until the engine is quiescent *)
  | Stats_req
  | Ping of { token : int }
  | Hello_ack of { version : int; shards : int }
  | Ack of { count : int }  (** the batch was accepted, [count] events *)
  | Sub_ack of { sub_id : int }
  | Notify of { sub_id : int; instances : string list }
      (** a chunked outlet flush: one frame, up to the server's
          [flush_max] {!Events.Codec.encode_instance}-encoded firings *)
  | Rows of { rows : (int * string * (string * string) list) list }
      (** query results, chunked: (oid, class, attrs) with
          {!Oodb.Persist.encode_value}-encoded attribute values *)
  | Query_done of { total : int }
  | Drain_done
  | Stats of { text : string }
  | Pong of { token : int }
  | Err of { code : int; msg : string }

(** {1 Error codes} (the [code] of {!Err}) *)

val err_version : int
(** 1 — protocol version mismatch *)

val err_frame : int
(** 2 — malformed frame; the stream is unrecoverable *)

val err_request : int
(** 3 — bad request payload (expr, predicate, class) *)

val err_degraded : int
(** 4 — a shard is degraded; engine-side failure *)

val err_overload : int
(** 5 — backpressure shed the request *)

val err_stopped : int
(** 6 — server or pool stopping *)

val tag : t -> int
(** The message's wire tag (for tests and diagnostics). *)

val encode : ?version:int -> t -> string
(** The full frame — header plus payload.  [?version] overrides the
    header/handshake version byte (tests use it to provoke
    {!Version_mismatch}). *)

val decode : string -> t
(** Decode exactly one whole frame.
    @raise Frame_error on any malformation, including trailing garbage
    @raise Version_mismatch before payload inspection *)

(** {1 Blocking stream I/O}

    Frame-at-a-time reads and writes over a connected socket; both
    retry [EINTR] and treat a peer close as [End_of_file]. *)

val write_fd : Unix.file_descr -> ?version:int -> t -> int
(** Write one frame; returns the bytes written. *)

val read_fd : Unix.file_descr -> t * int
(** Read one frame; returns it with the bytes consumed.
    @raise End_of_file when the peer closed between frames (or mid-frame)
    @raise Frame_error / Version_mismatch as {!decode} *)
