exception Connection_failed of string
exception Version_mismatch of { server : int; client : int }
exception Server_error of { code : int; msg : string }
exception Connection_lost

type stats = {
  events_sent : int;
  flushes : int;
  events_buffered : int;
  notifications : int;
  reconnects : int;
}

type sub = {
  s_id : int;  (* client-side, stable *)
  mutable s_server_id : int;  (* changes on reconnect *)
  s_name : string;
  s_classes : string list;
  s_expr : string;  (* Codec-encoded, ready to resend *)
  s_cb : Events.Detector.instance list -> unit;
}

type subscription = sub

type t = {
  host : string;
  port : int;
  client_name : string;
  buffer_max : int;
  max_attempts : int;
  rand : unit -> float;
  mu : Mutex.t;  (* connection state, replies, buffer, subs *)
  reply_cond : Condition.t;
  replies : Frame.t Queue.t;
  mutable fd : Unix.file_descr option;
  mutable receiver : Thread.t option;
  mutable shards : int;
  mutable buffer : string list;  (* encoded events, newest first *)
  mutable buffered : int;
  mutable subs : sub list;
  mutable next_sub : int;
  mutable closed : bool;
  mutable ever_connected : bool;
  req_mu : Mutex.t;  (* one outstanding request at a time *)
  mutable n_sent : int;
  mutable n_flushes : int;
  mutable n_notifications : int;
  mutable n_reconnects : int;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* --- receiver -------------------------------------------------------------- *)

(* Frames read off the socket: Notify dispatches to its subscription's
   callback, everything else is a reply for the (single) waiting request.
   On any read failure the connection is marked down and waiters woken —
   the next request reconnects. *)
let receiver_loop t fd =
  let dispatch_notify sub_id instances =
    let cb =
      locked t.mu (fun () ->
          t.n_notifications <- t.n_notifications + List.length instances;
          List.find_opt (fun s -> s.s_server_id = sub_id) t.subs
          |> Option.map (fun s -> s.s_cb))
    in
    match cb with
    | None -> ()  (* raced an unsubscribe; drop *)
    | Some cb -> cb (List.map Events.Codec.decode_instance instances)
  in
  let rec loop () =
    match Frame.read_fd fd with
    | exception _ -> ()
    | Frame.Notify { sub_id; instances }, _ ->
      dispatch_notify sub_id instances;
      loop ()
    | frame, _ ->
      locked t.mu (fun () ->
          Queue.push frame t.replies;
          Condition.broadcast t.reply_cond);
      loop ()
  in
  loop ();
  locked t.mu (fun () ->
      (match t.fd with
      | Some cur when cur == fd ->
        t.fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | _ -> ());
      Condition.broadcast t.reply_cond)

(* Pop the next reply frame; Connection_lost when the link drops while
   waiting.  Caller holds req_mu (so the next reply is ours) but not mu. *)
let wait_reply t =
  locked t.mu (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.replies) then Queue.pop t.replies
        else if t.closed || t.fd = None then raise Connection_lost
        else begin
          Condition.wait t.reply_cond t.mu;
          wait ()
        end
      in
      wait ())

let server_version_of_msg msg =
  (* best effort: the server's text is "server speaks protocol %d, ..." *)
  try Scanf.sscanf msg "server speaks protocol %d" (fun v -> v)
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> 0

let raise_err code msg =
  if code = Frame.err_version then
    raise
      (Version_mismatch
         { server = server_version_of_msg msg; client = Frame.version })
  else raise (Server_error { code; msg })

(* --- connection management ------------------------------------------------- *)

let write_frame t frame =
  let fd = locked t.mu (fun () -> t.fd) in
  match fd with
  | None -> raise Connection_lost
  | Some fd -> (
    try ignore (Frame.write_fd fd frame)
    with Unix.Unix_error _ | Sys_error _ ->
      locked t.mu (fun () ->
          (match t.fd with
          | Some cur when cur == fd ->
            t.fd <- None;
            (try Unix.close fd with Unix.Unix_error _ -> ())
          | _ -> ());
          Condition.broadcast t.reply_cond);
      raise Connection_lost)

(* Establish a socket, handshake, and re-register live subscriptions.
   Caller holds req_mu.  Any successful handshake after the first counts
   as a reconnect. *)
let connect_once t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     let addr =
       try Unix.inet_addr_of_string t.host
       with Failure _ -> (Unix.gethostbyname t.host).Unix.h_addr_list.(0)
     in
     Unix.connect fd (Unix.ADDR_INET (addr, t.port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  locked t.mu (fun () ->
      Queue.clear t.replies;
      t.fd <- Some fd);
  t.receiver <- Some (Thread.create (fun () -> receiver_loop t fd) ());
  write_frame t (Frame.Hello { version = Frame.version; client = t.client_name });
  (match wait_reply t with
  | Frame.Hello_ack { version = _; shards } ->
    locked t.mu (fun () -> t.shards <- shards)
  | Frame.Err { code; msg } -> raise_err code msg
  | _ -> raise (Server_error { code = Frame.err_frame; msg = "bad handshake reply" }));
  (* re-register subscriptions; server-side ids change *)
  let subs = locked t.mu (fun () -> t.subs) in
  List.iter
    (fun s ->
      write_frame t
        (Frame.Subscribe
           { name = s.s_name; classes = s.s_classes; expr = s.s_expr });
      match wait_reply t with
      | Frame.Sub_ack { sub_id } ->
        locked t.mu (fun () -> s.s_server_id <- sub_id)
      | Frame.Err { code; msg } -> raise_err code msg
      | _ ->
        raise (Server_error { code = Frame.err_frame; msg = "bad subscribe reply" }))
    subs;
  locked t.mu (fun () ->
      if t.ever_connected then t.n_reconnects <- t.n_reconnects + 1;
      t.ever_connected <- true)

let ensure_connected t =
  if locked t.mu (fun () -> t.closed) then raise Connection_lost;
  if locked t.mu (fun () -> t.fd) = None then begin
    let rec attempt n =
      match connect_once t with
      | () -> ()
      | exception (Version_mismatch _ as e) -> raise e
      | exception (Server_error _ as e) -> raise e
      | exception e ->
        (match locked t.mu (fun () -> t.fd) with
        | Some _ ->
          (* partial handshake failure: tear the socket down before retry *)
          locked t.mu (fun () ->
              match t.fd with
              | Some fd ->
                t.fd <- None;
                (try Unix.close fd with Unix.Unix_error _ -> ())
              | None -> ())
        | None -> ());
        if n >= t.max_attempts then
          raise (Connection_failed (Printexc.to_string e))
        else begin
          Thread.delay (Sentinel.Error_policy.retry_delay ~rand:t.rand n);
          attempt (n + 1)
        end
    in
    attempt 1
  end

(* Run one request with lazy reconnect: a connection lost mid-call is
   re-established and the request retried (at-least-once semantics). *)
let rpc t f =
  Mutex.lock t.req_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.req_mu)
    (fun () ->
      let rec go () =
        ensure_connected t;
        try f () with Connection_lost when not (locked t.mu (fun () -> t.closed)) -> go ()
      in
      go ())

(* --- API ------------------------------------------------------------------- *)

let connect ?(client_name = "sentinel-client") ?(buffer_max = 64)
    ?(max_attempts = 10) ?(rand = fun () -> Random.float 1.0) ~host ~port () =
  if buffer_max < 1 then invalid_arg "Sentinel_client.connect: buffer_max < 1";
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  let t =
    {
      host;
      port;
      client_name;
      buffer_max;
      max_attempts;
      rand;
      mu = Mutex.create ();
      reply_cond = Condition.create ();
      replies = Queue.create ();
      fd = None;
      receiver = None;
      shards = 0;
      buffer = [];
      buffered = 0;
      subs = [];
      next_sub = 0;
      closed = false;
      ever_connected = false;
      req_mu = Mutex.create ();
      n_sent = 0;
      n_flushes = 0;
      n_notifications = 0;
      n_reconnects = 0;
    }
  in
  rpc t (fun () -> ());
  t

let shards t = locked t.mu (fun () -> t.shards)

let do_flush t =
  let events =
    locked t.mu (fun () ->
        let evs = List.rev t.buffer in
        t.buffer <- [];
        t.buffered <- 0;
        evs)
  in
  if events = [] then 0
  else begin
    let trace =
      let cur = Obs.Trace.current () in
      if cur <> 0 then cur else Obs.Trace.fresh_id ()
    in
    let reply =
      try
        rpc t (fun () ->
            write_frame t (Frame.Send_many { trace; events });
            wait_reply t)
      with e ->
        (* connection gone for good: the batch is lost, restore nothing *)
        raise e
    in
    match reply with
    | Frame.Ack { count } ->
      locked t.mu (fun () ->
          t.n_sent <- t.n_sent + count;
          t.n_flushes <- t.n_flushes + 1);
      count
    | Frame.Err { code; msg } -> raise_err code msg
    | _ -> raise (Server_error { code = Frame.err_frame; msg = "bad ack reply" })
  end

let send t event =
  let full =
    locked t.mu (fun () ->
        t.buffer <- Events.Codec.encode_event event :: t.buffer;
        t.buffered <- t.buffered + 1;
        t.buffered >= t.buffer_max)
  in
  if full then ignore (do_flush t)

let flush t = do_flush t

let subscribe t ?(name = "") ~classes expr cb =
  let sub =
    locked t.mu (fun () ->
        let id = t.next_sub in
        t.next_sub <- id + 1;
        {
          s_id = id;
          s_server_id = -1;
          s_name = name;
          s_classes = classes;
          s_expr = Events.Codec.encode expr;
          s_cb = cb;
        })
  in
  let reply =
    rpc t (fun () ->
        write_frame t
          (Frame.Subscribe
             { name = sub.s_name; classes = sub.s_classes; expr = sub.s_expr });
        wait_reply t)
  in
  (match reply with
  | Frame.Sub_ack { sub_id } ->
    locked t.mu (fun () ->
        sub.s_server_id <- sub_id;
        t.subs <- sub :: t.subs)
  | Frame.Err { code; msg } -> raise_err code msg
  | _ ->
    raise (Server_error { code = Frame.err_frame; msg = "bad subscribe reply" }));
  sub

let unsubscribe t sub =
  let server_id =
    locked t.mu (fun () ->
        t.subs <- List.filter (fun s -> s.s_id <> sub.s_id) t.subs;
        sub.s_server_id)
  in
  if server_id >= 0 then
    let reply =
      rpc t (fun () ->
          write_frame t (Frame.Unsubscribe { sub_id = server_id });
          wait_reply t)
    in
    match reply with
    | Frame.Ack _ -> ()
    | Frame.Err { code; msg } -> raise_err code msg
    | _ ->
      raise (Server_error { code = Frame.err_frame; msg = "bad unsubscribe reply" })

let query t ~cls ~pred =
  rpc t (fun () ->
      write_frame t (Frame.Query { cls; pred });
      let rec collect acc =
        match wait_reply t with
        | Frame.Rows { rows } -> collect (List.rev_append rows acc)
        | Frame.Query_done { total = _ } -> List.rev acc
        | Frame.Err { code; msg } -> raise_err code msg
        | _ ->
          raise (Server_error { code = Frame.err_frame; msg = "bad query reply" })
      in
      collect [])

let drain t =
  ignore (do_flush t);
  let reply =
    rpc t (fun () ->
        write_frame t Frame.Drain;
        wait_reply t)
  in
  match reply with
  | Frame.Drain_done -> ()
  | Frame.Err { code; msg } -> raise_err code msg
  | _ -> raise (Server_error { code = Frame.err_frame; msg = "bad drain reply" })

let ping t =
  let token = locked t.mu (fun () -> t.next_sub * 7919 + 13) in
  let t0 = Unix.gettimeofday () in
  let reply =
    rpc t (fun () ->
        write_frame t (Frame.Ping { token });
        wait_reply t)
  in
  match reply with
  | Frame.Pong { token = tk } when tk = token -> Unix.gettimeofday () -. t0
  | Frame.Pong _ ->
    raise (Server_error { code = Frame.err_frame; msg = "pong token mismatch" })
  | Frame.Err { code; msg } -> raise_err code msg
  | _ -> raise (Server_error { code = Frame.err_frame; msg = "bad ping reply" })

let server_stats t =
  let reply =
    rpc t (fun () ->
        write_frame t Frame.Stats_req;
        wait_reply t)
  in
  match reply with
  | Frame.Stats { text } -> text
  | Frame.Err { code; msg } -> raise_err code msg
  | _ -> raise (Server_error { code = Frame.err_frame; msg = "bad stats reply" })

let stats t =
  locked t.mu (fun () ->
      {
        events_sent = t.n_sent;
        flushes = t.n_flushes;
        events_buffered = t.buffered;
        notifications = t.n_notifications;
        reconnects = t.n_reconnects;
      })

let close t =
  let receiver =
    locked t.mu (fun () ->
        if t.closed then None
        else begin
          t.closed <- true;
          (match t.fd with
          | Some fd ->
            t.fd <- None;
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ())
          | None -> ());
          Condition.broadcast t.reply_cond;
          let r = t.receiver in
          t.receiver <- None;
          r
        end)
  in
  match receiver with Some th -> Thread.join th | None -> ()
