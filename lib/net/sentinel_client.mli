(** OCaml client for the Sentinel wire protocol.

    A client owns one TCP connection plus a receiver thread that routes
    server frames: replies feed the (single-outstanding, FIFO) request
    path, [Notify] frames dispatch subscription callbacks.  All calls are
    thread-safe; requests from concurrent threads serialize.

    {2 Buffered sends}

    {!send} appends to a client-side buffer; {!flush} ships the whole
    buffer as one [Send_many] frame — one partitioned cross-shard ingest,
    one group-commit fsync per destination shard — and waits for the
    [Ack].  The buffer auto-flushes at [buffer_max] events.  Each flush
    stamps the frame with the current {!Obs.Trace} cascade id (or a fresh
    one, {!Obs.Trace.fresh_id}) so a wire hop stays in one trace.

    {2 Reconnection}

    A broken connection is re-established lazily by the next request:
    up to [max_attempts] tries with {!Sentinel.Error_policy.retry_delay}
    equal-jitter backoff between them, then {!Connection_failed}.  After
    the handshake every live subscription is re-registered (server-side
    subscription ids change; the client-side {!subscription} id you hold
    stays stable).  An in-flight request interrupted by a disconnect is
    retried on the new connection — sends are therefore at-least-once
    across reconnects. *)

exception Connection_failed of string
(** Could not (re)connect within [max_attempts]. *)

exception Version_mismatch of { server : int; client : int }
(** The server rejected the protocol version ([server = 0] when the
    server's version could not be recovered from its error reply). *)

exception Server_error of { code : int; msg : string }
(** A typed [Err] reply (see the {!Frame} error codes). *)

exception Connection_lost
(** Internal marker for a connection dropping mid-request; surfaces only
    if a reconnect is impossible mid-call. *)

type t

type subscription
(** A client-side handle, stable across reconnects. *)

type stats = {
  events_sent : int;  (** events acked by the server *)
  flushes : int;  (** [Send_many] frames acked *)
  events_buffered : int;  (** gauge: waiting for the next {!flush} *)
  notifications : int;  (** rule-firing instances received *)
  reconnects : int;  (** successful re-handshakes after a drop *)
}

val connect :
  ?client_name:string ->
  ?buffer_max:int ->
  ?max_attempts:int ->
  ?rand:(unit -> float) ->
  host:string ->
  port:int ->
  unit ->
  t
(** Connect and handshake.  [buffer_max] (default 64) is the auto-flush
    threshold; [max_attempts] (default 10) bounds each (re)connect loop;
    [rand] (default {!Random.float}[ 1.0]) feeds the backoff jitter.
    @raise Connection_failed after [max_attempts] refused attempts
    @raise Version_mismatch when the server speaks another version *)

val shards : t -> int
(** The server pool's shard count, from the handshake. *)

val send : t -> Oodb.Oid.t * string * Oodb.Value.t list -> unit
(** Buffer one event; auto-flushes at [buffer_max]. *)

val flush : t -> int
(** Ship the buffer as one [Send_many] and wait for the [Ack]; returns the
    acked event count (0 on an empty buffer).
    @raise Server_error when the pool rejected the batch *)

val subscribe :
  t ->
  ?name:string ->
  classes:string list ->
  Events.Expr.t ->
  (Events.Detector.instance list -> unit) ->
  subscription
(** Register a rule on every server shard; the callback runs on the
    receiver thread for each [Notify] chunk (keep it quick, or hand off).
    Re-registered automatically after a reconnect. *)

val unsubscribe : t -> subscription -> unit

val query :
  t -> cls:string -> pred:string -> (int * string * (string * string) list) list
(** Select on every shard: [(oid, class, attrs)] rows with
    {!Oodb.Persist.encode_value}-encoded attribute values.  [pred] is
    {!Oodb.Query_parser} syntax. *)

val drain : t -> unit
(** Flush the send buffer, then block until the server pool is quiescent. *)

val ping : t -> float
(** Round-trip time, seconds. *)

val server_stats : t -> string
(** The server's {!Server.render_stats} text. *)

val stats : t -> stats

val close : t -> unit
(** Close the socket and join the receiver.  Idempotent; buffered unsent
    events are dropped. *)
