module Shard_pool = Sentinel.Shard_pool
module System = Sentinel.System

(* --- metrics stages -------------------------------------------------------- *)

let stage name = Obs.Metrics.register ~id:(Oodb.Symbol.intern name) name
let st_connections = stage "net.connections"
let st_frames_in = stage "net.frames_in"
let st_frames_out = stage "net.frames_out"
let st_bytes_in = stage "net.bytes_in"
let st_bytes_out = stage "net.bytes_out"
let st_events = stage "net.events"
let st_notifications = stage "net.notifications"
let st_shed = stage "net.shed"
let st_flush = stage "net.flush"

type stats = {
  connections_accepted : int;
  connections_active : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  events_ingested : int;
  subscriptions_active : int;
  notifications_produced : int;
  notifications_enqueued : int;
  notifications_delivered : int;
  notifications_shed : int;
  notifications_parked : int;
  errors_sent : int;
}

(* A subscription: its wire id and the per-shard rule OIDs its registration
   created, in shard index order. *)
type sub = { sub_id : int; sub_rules : Oodb.Oid.t list }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_mu : Mutex.t;
  c_cond : Condition.t;  (* work available / space freed / shutdown *)
  c_control : Frame.t Queue.t;  (* unbounded: replies and errors *)
  c_notify : (int * string) Queue.t;  (* bounded outlet: (sub_id, instance) *)
  c_parked : (int * string) Queue.t;  (* Dead_letter ring *)
  mutable c_subs : sub list;
  mutable c_alive : bool;
  mutable c_cleaned : bool;
  mutable c_inflight : bool;  (* writer is mid-frame on the socket *)
  mutable c_reader : Thread.t option;
  mutable c_writer : Thread.t option;
}

type t = {
  s_pool : Shard_pool.t;
  s_listen : Unix.file_descr;
  s_port : int;
  s_capacity : int;
  s_policy : Shard_pool.backpressure;
  s_parked_limit : int;
  s_flush_max : int;
  s_so_sndbuf : int option;
  s_mu : Mutex.t;  (* conns list, stop flag, conn/sub id counters *)
  mutable s_conns : conn list;
  mutable s_alive : bool;
  mutable s_accept : Thread.t option;
  mutable s_next_conn : int;
  mutable s_next_sub : int;
  s_engine_mu : Mutex.t;  (* serializes pool access when shards run inline *)
  s_inline : bool;
  mutable s_accepted : int;
  s_frames_in : int Atomic.t;
  s_frames_out : int Atomic.t;
  s_bytes_in : int Atomic.t;
  s_bytes_out : int Atomic.t;
  s_events : int Atomic.t;
  s_subs_active : int Atomic.t;
  s_produced : int Atomic.t;
  s_enqueued : int Atomic.t;
  s_delivered : int Atomic.t;
  s_shed : int Atomic.t;
  s_errors : int Atomic.t;
}

let port t = t.s_port
let pool t = t.s_pool

(* Subscription action names must be unique for the life of the process:
   see handle_subscribe. *)
let action_seq = Atomic.make 0

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

(* A 1-shard pool runs jobs inline on the calling thread, so concurrent
   connection threads would race the engine; serialize them.  Multi-shard
   pools take submissions through domain-safe mailboxes. *)
let with_engine t f =
  if t.s_inline then begin
    Mutex.lock t.s_engine_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.s_engine_mu) f
  end
  else f ()

(* --- stats ----------------------------------------------------------------- *)

let stats t =
  Mutex.lock t.s_mu;
  let accepted = t.s_accepted and conns = t.s_conns in
  Mutex.unlock t.s_mu;
  let parked =
    List.fold_left
      (fun acc c ->
        Mutex.lock c.c_mu;
        let n = Queue.length c.c_parked in
        Mutex.unlock c.c_mu;
        acc + n)
      0 conns
  in
  {
    connections_accepted = accepted;
    connections_active = List.length conns;
    frames_in = Atomic.get t.s_frames_in;
    frames_out = Atomic.get t.s_frames_out;
    bytes_in = Atomic.get t.s_bytes_in;
    bytes_out = Atomic.get t.s_bytes_out;
    events_ingested = Atomic.get t.s_events;
    subscriptions_active = Atomic.get t.s_subs_active;
    notifications_produced = Atomic.get t.s_produced;
    notifications_enqueued = Atomic.get t.s_enqueued;
    notifications_delivered = Atomic.get t.s_delivered;
    notifications_shed = Atomic.get t.s_shed;
    notifications_parked = parked;
    errors_sent = Atomic.get t.s_errors;
  }

let render_stats t =
  let s = stats t in
  String.concat "\n"
    [
      Printf.sprintf "connections_accepted %d" s.connections_accepted;
      Printf.sprintf "connections_active %d" s.connections_active;
      Printf.sprintf "frames_in %d" s.frames_in;
      Printf.sprintf "frames_out %d" s.frames_out;
      Printf.sprintf "bytes_in %d" s.bytes_in;
      Printf.sprintf "bytes_out %d" s.bytes_out;
      Printf.sprintf "events_ingested %d" s.events_ingested;
      Printf.sprintf "subscriptions_active %d" s.subscriptions_active;
      Printf.sprintf "notifications_produced %d" s.notifications_produced;
      Printf.sprintf "notifications_enqueued %d" s.notifications_enqueued;
      Printf.sprintf "notifications_delivered %d" s.notifications_delivered;
      Printf.sprintf "notifications_shed %d" s.notifications_shed;
      Printf.sprintf "notifications_parked %d" s.notifications_parked;
      Printf.sprintf "errors_sent %d" s.errors_sent;
    ]

(* --- outgoing queues ------------------------------------------------------- *)

let enqueue_control t conn frame =
  (match frame with
  | Frame.Err _ -> Atomic.incr t.s_errors
  | _ -> ());
  Mutex.lock conn.c_mu;
  if conn.c_alive then begin
    Queue.push frame conn.c_control;
    Condition.broadcast conn.c_cond
  end;
  Mutex.unlock conn.c_mu

(* Wait (bounded) until the writer has the control queue on the wire, so an
   error reply is not cut off by the close that follows it. *)
let flush_control conn ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    Mutex.lock conn.c_mu;
    let done_ =
      (not conn.c_alive)
      || (Queue.is_empty conn.c_control && not conn.c_inflight)
    in
    Mutex.unlock conn.c_mu;
    if (not done_) && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.001;
      wait ()
    end
  in
  wait ()

let notify_room conn capacity = Queue.length conn.c_notify < capacity

(* Offer one notification to the connection's outlet, governed by the
   server's backpressure policy.  Runs on an engine domain (it is a rule
   action), so a [Block] wait stalls that shard — exactly the coupling the
   policy asks for. *)
let push_notify t conn sub_id inst =
  Atomic.incr t.s_produced;
  Obs.Metrics.hit st_notifications;
  let enqueue () =
    Queue.push (sub_id, inst) conn.c_notify;
    Atomic.incr t.s_enqueued;
    Condition.broadcast conn.c_cond
  in
  let shed () =
    Atomic.incr t.s_shed;
    Obs.Metrics.hit st_shed
  in
  Mutex.lock conn.c_mu;
  (if not conn.c_alive then shed ()
   else if notify_room conn t.s_capacity then enqueue ()
   else
     match t.s_policy with
     | Shard_pool.Shed_newest -> shed ()
     | Shard_pool.Dead_letter ->
       (* park; evict the oldest parked entry when the ring is full *)
       if Queue.length conn.c_parked >= t.s_parked_limit then begin
         ignore (Queue.pop conn.c_parked);
         shed ()
       end;
       Queue.push (sub_id, inst) conn.c_parked
     | Shard_pool.Block { max_wait_ms } ->
       let deadline =
         Unix.gettimeofday () +. (float_of_int max_wait_ms /. 1000.)
       in
       let rec wait () =
         if not conn.c_alive then shed ()
         else if notify_room conn t.s_capacity then enqueue ()
         else if Unix.gettimeofday () >= deadline then shed ()
         else begin
           (* Condition has no timed wait; poll with the lock released *)
           Mutex.unlock conn.c_mu;
           Thread.delay 0.0005;
           Mutex.lock conn.c_mu;
           wait ()
         end
       in
       wait ());
  Mutex.unlock conn.c_mu

(* --- writer thread --------------------------------------------------------- *)

(* Only the connection's writer thread calls this (single-writer invariant:
   frames never interleave on the socket). *)
let send_frame t conn frame =
  let n = Frame.write_fd conn.c_fd frame in
  Atomic.incr t.s_frames_out;
  ignore (Atomic.fetch_and_add t.s_bytes_out n);
  Obs.Metrics.hit st_frames_out;
  Obs.Metrics.add st_bytes_out n

(* Pop a chunk of notifications for one subscription: a run of entries
   sharing the front entry's sub_id, up to flush_max.  Caller holds c_mu. *)
let pop_chunk t conn =
  let sub_id, first = Queue.pop conn.c_notify in
  let rec take acc n =
    if n >= t.s_flush_max then List.rev acc
    else
      match Queue.peek_opt conn.c_notify with
      | Some (sid, _) when sid = sub_id ->
        let _, inst = Queue.pop conn.c_notify in
        take (inst :: acc) (n + 1)
      | _ -> List.rev acc
  in
  (sub_id, take [ first ] 1)

let writer_loop t conn =
  let rec loop () =
    Mutex.lock conn.c_mu;
    while
      conn.c_alive
      && Queue.is_empty conn.c_control
      && Queue.is_empty conn.c_notify
      && Queue.is_empty conn.c_parked
    do
      Condition.wait conn.c_cond conn.c_mu
    done;
    if not conn.c_alive then Mutex.unlock conn.c_mu
    else if not (Queue.is_empty conn.c_control) then begin
      let frame = Queue.pop conn.c_control in
      conn.c_inflight <- true;
      Mutex.unlock conn.c_mu;
      send_frame t conn frame;
      Mutex.lock conn.c_mu;
      conn.c_inflight <- false;
      Mutex.unlock conn.c_mu;
      loop ()
    end
    else begin
      (* the consumer caught up: replay parked notifications in order *)
      if Queue.is_empty conn.c_notify then begin
        let n = ref 0 in
        while (not (Queue.is_empty conn.c_parked)) && !n < t.s_flush_max do
          Queue.push (Queue.pop conn.c_parked) conn.c_notify;
          Atomic.incr t.s_enqueued;
          incr n
        done
      end;
      let sub_id, instances = pop_chunk t conn in
      conn.c_inflight <- true;
      Condition.broadcast conn.c_cond;
      Mutex.unlock conn.c_mu;
      let t0 = Obs.Metrics.enter st_flush in
      send_frame t conn (Frame.Notify { sub_id; instances });
      Obs.Metrics.exit st_flush t0;
      ignore (Atomic.fetch_and_add t.s_delivered (List.length instances));
      Mutex.lock conn.c_mu;
      conn.c_inflight <- false;
      Mutex.unlock conn.c_mu;
      loop ()
    end
  in
  try loop () with
  | Unix.Unix_error _ | Frame.Frame_error _ | Sys_error _ ->
    (* peer went away mid-write; the reader's EOF triggers cleanup *)
    Mutex.lock conn.c_mu;
    conn.c_alive <- false;
    conn.c_inflight <- false;
    Condition.broadcast conn.c_cond;
    Mutex.unlock conn.c_mu

(* --- request handling ------------------------------------------------------ *)

let pool_error_frame = function
  | Shard_pool.Shard_error e ->
    let code =
      match e with
      | Shard_pool.Stopped -> Frame.err_stopped
      | Shard_pool.Degraded _ -> Frame.err_degraded
      | Shard_pool.Overloaded _ | Shard_pool.Dead_lettered _ ->
        Frame.err_overload
      | Shard_pool.Timed_out _ -> Frame.err_degraded
    in
    Frame.Err { code; msg = Shard_pool.error_to_string e }
  | exn -> Frame.Err { code = Frame.err_degraded; msg = Printexc.to_string exn }

let handle_send_many t conn ~trace ~events =
  match List.map Events.Codec.decode_event events with
  | exception Oodb.Errors.Parse_error m ->
    enqueue_control t conn (Frame.Err { code = Frame.err_request; msg = m })
  | batch ->
    let n = List.length batch in
    let result =
      with_engine t (fun () ->
          Obs.Trace.with_trace trace (fun () ->
              Shard_pool.ingest ~wait:true t.s_pool batch))
    in
    (match result with
    | Ok () ->
      ignore (Atomic.fetch_and_add t.s_events n);
      Obs.Metrics.add st_events n;
      enqueue_control t conn (Frame.Ack { count = n })
    | Error e ->
      enqueue_control t conn (pool_error_frame (Shard_pool.Shard_error e)))

let handle_subscribe t conn ~name ~classes ~expr =
  match Events.Codec.decode expr with
  | exception Oodb.Errors.Parse_error m ->
    enqueue_control t conn (Frame.Err { code = Frame.err_request; msg = m })
  | event ->
    if classes = [] then
      enqueue_control t conn
        (Frame.Err
           {
             code = Frame.err_request;
             msg = "subscribe needs at least one class";
           })
    else begin
      let sub_id =
        Mutex.lock t.s_mu;
        let id = t.s_next_sub in
        t.s_next_sub <- id + 1;
        Mutex.unlock t.s_mu;
        id
      in
      (* the action name doubles as the rule-name prefix so a failed
         registration can be rolled back by name on the shards it reached.
         The process-wide sequence keeps names unique across server
         instances sharing one pool: actions cannot be unregistered, so a
         reused (conn, sub) pair must not collide with a dead server's. *)
      let action =
        Printf.sprintf "__net.%d.c%d.s%d"
          (Atomic.fetch_and_add action_seq 1)
          conn.c_id sub_id
      in
      let rule_name = if name = "" then action else action ^ ":" ^ name in
      let register () =
        Shard_pool.each t.s_pool (fun _i sys ->
            System.register_action sys action (fun _db inst ->
                push_notify t conn sub_id (Events.Codec.encode_instance inst));
            System.create_rule sys ~name:rule_name ~monitor_classes:classes
              ~event ~condition:"true" ~action ())
      in
      match with_engine t (fun () -> register ()) with
      | Ok rules ->
        Mutex.lock conn.c_mu;
        conn.c_subs <- { sub_id; sub_rules = rules } :: conn.c_subs;
        Mutex.unlock conn.c_mu;
        Atomic.incr t.s_subs_active;
        enqueue_control t conn (Frame.Sub_ack { sub_id })
      | Error exn ->
        (* roll back the shards that did register before the failure *)
        ignore
          (with_engine t (fun () ->
               Shard_pool.each t.s_pool (fun _i sys ->
                   match System.find_rule sys rule_name with
                   | Some oid -> System.delete_rule sys oid
                   | None -> ())));
        enqueue_control t conn (pool_error_frame exn)
    end

let delete_sub t sub =
  (* best effort: the pool may already be stopped or degraded *)
  ignore
    (with_engine t (fun () ->
         Shard_pool.each t.s_pool (fun i sys ->
             match List.nth_opt sub.sub_rules i with
             | Some oid -> ( try System.delete_rule sys oid with _ -> ())
             | None -> ())))

let handle_unsubscribe t conn ~sub_id =
  Mutex.lock conn.c_mu;
  let sub = List.find_opt (fun s -> s.sub_id = sub_id) conn.c_subs in
  (match sub with
  | Some _ ->
    conn.c_subs <- List.filter (fun s -> s.sub_id <> sub_id) conn.c_subs
  | None -> ());
  Mutex.unlock conn.c_mu;
  match sub with
  | None ->
    enqueue_control t conn
      (Frame.Err
         {
           code = Frame.err_request;
           msg = Printf.sprintf "unknown subscription %d" sub_id;
         })
  | Some sub ->
    delete_sub t sub;
    ignore (Atomic.fetch_and_add t.s_subs_active (-1));
    enqueue_control t conn (Frame.Ack { count = 1 })

let handle_query t conn ~cls ~pred =
  match Oodb.Query_parser.parse pred with
  | exception Oodb.Errors.Parse_error m ->
    enqueue_control t conn (Frame.Err { code = Frame.err_request; msg = m })
  | p -> (
    let select () =
      Shard_pool.each t.s_pool (fun _i sys ->
          let db = System.db sys in
          Oodb.Query.select db cls p
          |> List.map (fun oid ->
                 let attrs =
                   Oodb.Db.attrs db oid
                   |> List.map (fun (a, v) -> (a, Oodb.Persist.encode_value v))
                 in
                 (Oodb.Oid.to_int oid, Oodb.Db.class_of db oid, attrs)))
    in
    match with_engine t (fun () -> select ()) with
    | Ok per_shard ->
      let rows = List.concat per_shard in
      let total = List.length rows in
      let rec chunk = function
        | [] -> ()
        | rows ->
          let rec split i acc rest =
            match rest with
            | [] -> (List.rev acc, [])
            | _ when i >= t.s_flush_max -> (List.rev acc, rest)
            | r :: tl -> split (i + 1) (r :: acc) tl
          in
          let head, rest = split 0 [] rows in
          enqueue_control t conn (Frame.Rows { rows = head });
          chunk rest
      in
      chunk rows;
      enqueue_control t conn (Frame.Query_done { total })
    | Error (Oodb.Errors.No_such_class c) ->
      enqueue_control t conn
        (Frame.Err
           {
             code = Frame.err_request;
             msg = Printf.sprintf "no such class %s" c;
           })
    | Error exn -> enqueue_control t conn (pool_error_frame exn))

let handle_frame t conn = function
  | Frame.Hello { version = v; client = _ } ->
    if v <> Frame.version then
      enqueue_control t conn
        (Frame.Err
           {
             code = Frame.err_version;
             msg =
               Printf.sprintf "server speaks protocol %d, client sent %d"
                 Frame.version v;
           })
    else
      enqueue_control t conn
        (Frame.Hello_ack
           { version = Frame.version; shards = Shard_pool.shard_count t.s_pool })
  | Frame.Send_many { trace; events } -> handle_send_many t conn ~trace ~events
  | Frame.Subscribe { name; classes; expr } ->
    handle_subscribe t conn ~name ~classes ~expr
  | Frame.Unsubscribe { sub_id } -> handle_unsubscribe t conn ~sub_id
  | Frame.Query { cls; pred } -> handle_query t conn ~cls ~pred
  | Frame.Drain ->
    with_engine t (fun () -> Shard_pool.drain t.s_pool);
    enqueue_control t conn Frame.Drain_done
  | Frame.Stats_req -> enqueue_control t conn (Frame.Stats { text = render_stats t })
  | Frame.Ping { token } -> enqueue_control t conn (Frame.Pong { token })
  | Frame.Hello_ack _ | Frame.Ack _ | Frame.Sub_ack _ | Frame.Notify _
  | Frame.Rows _ | Frame.Query_done _ | Frame.Drain_done | Frame.Stats _
  | Frame.Pong _ | Frame.Err _ ->
    enqueue_control t conn
      (Frame.Err
         {
           code = Frame.err_request;
           msg = "server-to-client message on ingress";
         })

(* --- connection lifecycle -------------------------------------------------- *)

let cleanup t conn =
  let first =
    Mutex.lock conn.c_mu;
    let first = not conn.c_cleaned in
    conn.c_cleaned <- true;
    conn.c_alive <- false;
    Condition.broadcast conn.c_cond;
    let subs = conn.c_subs in
    conn.c_subs <- [];
    Mutex.unlock conn.c_mu;
    if first then Some subs else None
  in
  match first with
  | None -> ()
  | Some subs ->
    (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    List.iter (fun sub -> delete_sub t sub) subs;
    ignore (Atomic.fetch_and_add t.s_subs_active (-(List.length subs)));
    Mutex.lock t.s_mu;
    t.s_conns <- List.filter (fun c -> c.c_id <> conn.c_id) t.s_conns;
    Mutex.unlock t.s_mu

let reader_loop t conn =
  let rec loop () =
    match Frame.read_fd conn.c_fd with
    | exception End_of_file -> ()
    | exception Frame.Version_mismatch v ->
      (* reply before closing so the client can tell this from a drop *)
      enqueue_control t conn
        (Frame.Err
           {
             code = Frame.err_version;
             msg =
               Printf.sprintf "server speaks protocol %d, client sent %d"
                 Frame.version v;
           });
      flush_control conn ~timeout_s:1.0
    | exception Frame.Frame_error m ->
      enqueue_control t conn (Frame.Err { code = Frame.err_frame; msg = m });
      flush_control conn ~timeout_s:1.0
    | exception Unix.Unix_error _ -> ()
    | frame, nbytes ->
      Atomic.incr t.s_frames_in;
      ignore (Atomic.fetch_and_add t.s_bytes_in nbytes);
      Obs.Metrics.hit st_frames_in;
      Obs.Metrics.add st_bytes_in nbytes;
      handle_frame t conn frame;
      loop ()
  in
  (try loop () with _ -> ());
  cleanup t conn

let spawn_conn t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  (match t.s_so_sndbuf with
  | Some n -> (
    try Unix.setsockopt_int fd Unix.SO_SNDBUF n with Unix.Unix_error _ -> ())
  | None -> ());
  let conn =
    Mutex.lock t.s_mu;
    let id = t.s_next_conn in
    t.s_next_conn <- id + 1;
    t.s_accepted <- t.s_accepted + 1;
    let conn =
      {
        c_id = id;
        c_fd = fd;
        c_mu = Mutex.create ();
        c_cond = Condition.create ();
        c_control = Queue.create ();
        c_notify = Queue.create ();
        c_parked = Queue.create ();
        c_subs = [];
        c_alive = true;
        c_cleaned = false;
        c_inflight = false;
        c_reader = None;
        c_writer = None;
      }
    in
    t.s_conns <- conn :: t.s_conns;
    Mutex.unlock t.s_mu;
    conn
  in
  Obs.Metrics.hit st_connections;
  conn.c_writer <- Some (Thread.create (fun () -> writer_loop t conn) ());
  conn.c_reader <- Some (Thread.create (fun () -> reader_loop t conn) ())

let accept_loop t =
  let rec loop () =
    match retry_eintr (fun () -> Unix.accept t.s_listen) with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error _ -> if t.s_alive then loop ()
    | fd, _addr ->
      if t.s_alive then begin
        spawn_conn t fd;
        loop ()
      end
      else Unix.close fd
  in
  loop ()

(* --- creation / shutdown --------------------------------------------------- *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      invalid_arg (Printf.sprintf "Server.create: cannot resolve %s" host))

let create ?(host = "127.0.0.1") ?(port = 0) ?(backlog = 64)
    ?(outlet_capacity = 1024)
    ?(outlet_policy = Shard_pool.Block { max_wait_ms = 100 })
    ?(parked_limit = 1024) ?(flush_max = 64) ?so_sndbuf ~pool () =
  if outlet_capacity < 1 then invalid_arg "Server.create: outlet_capacity < 1";
  if flush_max < 1 then invalid_arg "Server.create: flush_max < 1";
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (resolve host, port));
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let t =
    {
      s_pool = pool;
      s_listen = fd;
      s_port = bound_port;
      s_capacity = outlet_capacity;
      s_policy = outlet_policy;
      s_parked_limit = parked_limit;
      s_flush_max = flush_max;
      s_so_sndbuf = so_sndbuf;
      s_mu = Mutex.create ();
      s_conns = [];
      s_alive = true;
      s_accept = None;
      s_next_conn = 0;
      s_next_sub = 0;
      s_engine_mu = Mutex.create ();
      s_inline = Shard_pool.shard_count pool = 1;
      s_accepted = 0;
      s_frames_in = Atomic.make 0;
      s_frames_out = Atomic.make 0;
      s_bytes_in = Atomic.make 0;
      s_bytes_out = Atomic.make 0;
      s_events = Atomic.make 0;
      s_subs_active = Atomic.make 0;
      s_produced = Atomic.make 0;
      s_enqueued = Atomic.make 0;
      s_delivered = Atomic.make 0;
      s_shed = Atomic.make 0;
      s_errors = Atomic.make 0;
    }
  in
  t.s_accept <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  let conns =
    Mutex.lock t.s_mu;
    let was_alive = t.s_alive in
    t.s_alive <- false;
    let conns = t.s_conns in
    Mutex.unlock t.s_mu;
    if was_alive then Some conns else None
  in
  match conns with
  | None -> ()
  | Some conns ->
    (* a blocked accept() is not woken by close(); shut the listener down
       and poke it with a throwaway connection, then close after the join *)
    (try Unix.shutdown t.s_listen Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.s_port))
        with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    List.iter (fun conn -> cleanup t conn) conns;
    (match t.s_accept with Some th -> Thread.join th | None -> ());
    (try Unix.close t.s_listen with Unix.Unix_error _ -> ());
    List.iter
      (fun conn ->
        (match conn.c_reader with Some th -> Thread.join th | None -> ());
        match conn.c_writer with Some th -> Thread.join th | None -> ())
      conns
