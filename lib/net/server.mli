(** The Sentinel network server: a TCP front for a {!Sentinel.Shard_pool}.

    One server owns one listening socket and fronts one pool.  Each
    accepted connection gets a {e reader} thread (parses {!Frame}s,
    dispatches requests to the pool) and a {e writer} thread (drains the
    connection's {e outlet} — the bounded queue of notification frames —
    plus control replies).  Engine work itself always runs on the pool's
    shard domains; connection threads only move bytes, so a slow client
    never occupies an engine domain.

    {2 Request semantics}

    - [Send_many] decodes the batch ({!Events.Codec.decode_event}) and
      hands it to {!Sentinel.Shard_pool.ingest} under the frame's trace
      id ({!Obs.Trace.with_trace}) — a client batch becomes one
      partitioned cross-shard ingest: one transaction scope, one
      route-coalescing scope and (with a group-commit WAL attached) one
      fsync per destination shard.  The server ingests with
      [Shard_pool.ingest ~wait:true], so [Ack] means {e applied} — and on
      a pool whose [on_idle] hook seals a group-commit journal, {e
      durable}: concurrent clients landing on one shard then share a
      single seal and fsync (shard-level group commit), while a lone
      serial client pays a full durability round-trip per batch.  [Drain]
      awaits quiescence.
    - [Subscribe] registers a rule for the frame's event expression over
      its monitored classes on {e every} shard
      ({!Sentinel.Shard_pool.each}); the rule's action encodes each
      detected instance ({!Events.Codec.encode_instance}) and pushes it
      into the subscribing connection's outlet.  Firings stream back as
      chunked [Notify] frames (up to [flush_max] instances per frame).
    - [Query] parses the predicate ({!Oodb.Query_parser}), selects on
      every shard and streams [Rows] chunks followed by [Query_done].

    {2 Backpressure}

    The outlet is bounded at [outlet_capacity] notifications and governed
    by the pool's own {!Sentinel.Shard_pool.backpressure} policy type:
    [Block] makes the producing rule action wait (capped at its
    deadline, then sheds), [Shed_newest] drops the incoming notification,
    [Dead_letter] parks it in a bounded per-connection ring that the
    writer replays automatically once the consumer catches up (oldest
    parked entries are shed when the ring itself overflows).  Accounting
    is exact: [produced = enqueued + shed + parked] at quiescence —
    CI gates on it.

    A pool with one shard executes inline on the calling thread, so the
    server serializes engine access behind a mutex in that configuration;
    multi-shard pools take concurrent submissions lock-free.

    Everything is observable: [net.connections], [net.frames_in/out],
    [net.bytes_in/out], [net.events], [net.notifications], [net.shed]
    counters and the [net.flush] latency histogram in {!Obs.Metrics}. *)

type t

type stats = {
  connections_accepted : int;
  connections_active : int;  (** gauge *)
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  events_ingested : int;  (** events accepted into the pool *)
  subscriptions_active : int;  (** gauge *)
  notifications_produced : int;  (** rule firings offered to outlets *)
  notifications_enqueued : int;  (** accepted into an outlet queue *)
  notifications_delivered : int;  (** written to the wire *)
  notifications_shed : int;  (** dropped by policy (incl. ring eviction) *)
  notifications_parked : int;  (** gauge: waiting in dead-letter rings *)
  errors_sent : int;
}

val create :
  ?host:string ->
  ?port:int ->
  ?backlog:int ->
  ?outlet_capacity:int ->
  ?outlet_policy:Sentinel.Shard_pool.backpressure ->
  ?parked_limit:int ->
  ?flush_max:int ->
  ?so_sndbuf:int ->
  pool:Sentinel.Shard_pool.t ->
  unit ->
  t
(** Bind, listen and start the accept loop.  [host] (default
    ["127.0.0.1"]), [port] (default 0 = ephemeral, read it back with
    {!port}), [backlog] (default 64).  [outlet_capacity] (default 1024)
    bounds each connection's notification queue; [outlet_policy]
    (default [Block {max_wait_ms = 100}]) governs overflow;
    [parked_limit] (default 1024) bounds the [Dead_letter] ring;
    [flush_max] (default 64) caps instances per [Notify] frame and rows
    per [Rows] frame.  [so_sndbuf] shrinks each accepted socket's kernel
    send buffer (tests use it to make a slow consumer exert backpressure
    quickly).  The server does not own the pool: {!stop} leaves the pool
    running. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val pool : t -> Sentinel.Shard_pool.t
val stats : t -> stats

val render_stats : t -> string
(** The [Stats] frame body: one [key value] line per {!stats} field. *)

val stop : t -> unit
(** Close the listener and every connection, delete the rules their
    subscriptions registered, and join all connection threads.
    Idempotent. *)
