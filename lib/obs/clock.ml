external now_ns : unit -> float = "sentinel_clock_monotonic_ns"

let now_us () = now_ns () /. 1e3
