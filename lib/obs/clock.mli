(** Monotonic process clock.

    [CLOCK_MONOTONIC] via a C stub: never steps backwards, unaffected by NTP
    adjustments, zero at an arbitrary epoch (boot, typically).  All span
    timestamps and latency measurements in this library use it — durations
    computed from two reads are always non-negative. *)

val now_ns : unit -> float
(** Nanoseconds on the monotonic clock. *)

val now_us : unit -> float
(** Microseconds on the monotonic clock. *)
