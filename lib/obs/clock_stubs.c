/* Monotonic process clock for the observability layer.
 *
 * The stdlib shipped with this toolchain exposes no monotonic clock
 * (Unix.gettimeofday is wall time and steps under NTP), so we bind
 * clock_gettime(CLOCK_MONOTONIC) directly.  Returned as a double in
 * nanoseconds: doubles keep 53 bits of mantissa, enough for ~104 days of
 * uptime at full ns resolution, and the metrics layer only needs
 * power-of-two bucket precision anyway.
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value sentinel_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec * 1e9 + (double)ts.tv_nsec);
}
