(* Master switch shared by Metrics and Trace.  [armed] is the one ref the
   instrumented hot paths read when disabled; it is kept equal to
   [!metrics_on || !trace_on] by the enable/disable entry points. *)

let metrics_on = ref false
let trace_on = ref false
let armed = ref false
let recompute () = armed := !metrics_on || !trace_on
