let n_buckets = 48 (* 2^47 ns ≈ 39 h: everything measurable fits *)

(* Per-domain accumulator.  Each domain that touches a stage gets its own —
   obtained through a DLS key, so the enabled hot path mutates plain fields
   with no atomics and no sharing.  Readers merge every domain's accumulator
   with plain loads: merged views are weakly consistent while other domains
   are actively recording, exact once they quiesce. *)
type acc = {
  mutable a_count : int;
  a_buckets : int array;
  mutable a_samples : int;
  mutable a_sum_ns : float;
  mutable a_max_ns : float;
}

type stage = {
  st_id : int;
  st_name : string;
  st_shift : int;
  st_lock : Mutex.t; (* guards st_accs *)
  st_accs : acc list ref; (* one per domain that ever hit this stage *)
  st_local : acc Domain.DLS.key;
}

let on = Ctl.metrics_on

let enable () =
  on := true;
  Ctl.recompute ()

let disable () =
  on := false;
  Ctl.recompute ()

let registry : (int, stage) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let fresh_acc () =
  {
    a_count = 0;
    a_buckets = Array.make n_buckets 0;
    a_samples = 0;
    a_sum_ns = 0.;
    a_max_ns = 0.;
  }

let register ~id ?(sample_shift = 0) name =
  Mutex.protect registry_lock @@ fun () ->
  match Hashtbl.find_opt registry id with
  | Some st -> st
  | None ->
    let lock = Mutex.create () in
    let accs = ref [] in
    let local =
      (* runs on first DLS.get in each domain: allocate the domain's
         accumulator and register it for the merged read side *)
      Domain.DLS.new_key (fun () ->
          let a = fresh_acc () in
          Mutex.protect lock (fun () -> accs := a :: !accs);
          a)
    in
    let st =
      {
        st_id = id;
        st_name = name;
        st_shift = max 0 sample_shift;
        st_lock = lock;
        st_accs = accs;
        st_local = local;
      }
    in
    Hashtbl.replace registry id st;
    st

let find id =
  Mutex.protect registry_lock (fun () -> Hashtbl.find_opt registry id)

let now_ns () = Clock.now_ns ()

(* The counter doubles as the sampling phase: one increment per call on the
   enabled path, and a reset merely restarts the 1-in-2^shift stride. *)
let enter st =
  if not !on then 0.
  else begin
    let a = Domain.DLS.get st.st_local in
    let c = a.a_count + 1 in
    a.a_count <- c;
    if st.st_shift = 0 then now_ns ()
    else if c land ((1 lsl st.st_shift) - 1) = 0 then now_ns ()
    else 0.
  end

let bucket_of ns =
  let n = int_of_float ns in
  if n <= 1 then 0
  else begin
    let i = ref 0 and v = ref n in
    while !v > 1 do
      incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

let observe_ns st ns =
  let ns = max 0. ns in
  let a = Domain.DLS.get st.st_local in
  let b = bucket_of ns in
  a.a_buckets.(b) <- a.a_buckets.(b) + 1;
  a.a_samples <- a.a_samples + 1;
  a.a_sum_ns <- a.a_sum_ns +. ns;
  if ns > a.a_max_ns then a.a_max_ns <- ns

let exit st t0 = if t0 <> 0. then observe_ns st (now_ns () -. t0)

let hit st =
  if !on then begin
    let a = Domain.DLS.get st.st_local in
    a.a_count <- a.a_count + 1
  end

(* Bulk counter bump for quantity-valued stages (bytes written, commits
   coalesced): the count is the accumulated quantity, not a call tally. *)
let add st n =
  if !on then begin
    let a = Domain.DLS.get st.st_local in
    a.a_count <- a.a_count + n
  end

let name st = st.st_name
let id st = st.st_id

(* --- merged read side ---------------------------------------------------- *)

let accs st = Mutex.protect st.st_lock (fun () -> !(st.st_accs))

let count st = List.fold_left (fun n a -> n + a.a_count) 0 (accs st)
let samples st = List.fold_left (fun n a -> n + a.a_samples) 0 (accs st)

let merged_buckets st =
  let out = Array.make n_buckets 0 in
  List.iter
    (fun a ->
      for i = 0 to n_buckets - 1 do
        out.(i) <- out.(i) + a.a_buckets.(i)
      done)
    (accs st);
  out

(* bucket 0 holds observations <= 1 ns, so its upper bound is 1, not 2;
   bucket i >= 1 covers [2^i, 2^(i+1)). *)
let bucket_upper_ns i = if i <= 0 then 1. else Float.of_int (1 lsl min (i + 1) 62)

let percentile st p =
  let buckets = merged_buckets st in
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int total)) in
      min (max r 1) total
    in
    (* Walk the cumulative histogram to the bucket holding the rank-th
       observation, clamped to the last populated bucket: the rank is
       derived from the same merged snapshot, so the scan cannot run off
       the end of the array and report 2^48 ns for a histogram whose
       samples all sit far lower. *)
    let last = ref 0 in
    Array.iteri (fun i n -> if n > 0 then last := i) buckets;
    let i = ref 0 and seen = ref 0 in
    while !i < !last && !seen + buckets.(!i) < rank do
      seen := !seen + buckets.(!i);
      incr i
    done;
    bucket_upper_ns !i
  end

let mean_ns st =
  let sum, n =
    List.fold_left
      (fun (s, n) a -> (s +. a.a_sum_ns, n + a.a_samples))
      (0., 0) (accs st)
  in
  if n = 0 then Float.nan else sum /. float_of_int n

let max_ns st = List.fold_left (fun m a -> Float.max m a.a_max_ns) 0. (accs st)

let stages () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun _ st acc -> st :: acc) registry [])
  |> List.sort (fun a b -> String.compare a.st_name b.st_name)

let pp_ns ns =
  if Float.is_nan ns then "-"
  else if ns < 1_000. then Printf.sprintf "%.0fns" ns
  else if ns < 1_000_000. then Printf.sprintf "%.1fus" (ns /. 1_000.)
  else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let report () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-24s %12s %10s %8s %8s %8s %8s\n" "stage" "count"
       "samples" "p50" "p95" "p99" "max");
  List.iter
    (fun st ->
      let c = count st in
      if c > 0 then
        Buffer.add_string b
          (Printf.sprintf "%-24s %12d %10d %8s %8s %8s %8s\n" st.st_name c
             (samples st)
             (pp_ns (percentile st 50.))
             (pp_ns (percentile st 95.))
             (pp_ns (percentile st 99.))
             (pp_ns (max_ns st))))
    (stages ());
  Buffer.contents b

(* Zeroing races with domains actively recording (a concurrent increment can
   survive); callers reset between runs, not during them. *)
let reset () =
  List.iter
    (fun st ->
      List.iter
        (fun a ->
          a.a_count <- 0;
          a.a_samples <- 0;
          a.a_sum_ns <- 0.;
          a.a_max_ns <- 0.;
          Array.fill a.a_buckets 0 n_buckets 0)
        (accs st))
    (stages ())
