let n_buckets = 48 (* 2^47 ns ≈ 39 h: everything measurable fits *)

type stage = {
  st_id : int;
  st_name : string;
  st_shift : int;
  mutable st_count : int;
  st_buckets : int array;
  mutable st_samples : int;
  mutable st_sum_ns : float;
  mutable st_max_ns : float;
}

let on = Ctl.metrics_on

let enable () =
  on := true;
  Ctl.recompute ()

let disable () =
  on := false;
  Ctl.recompute ()

let registry : (int, stage) Hashtbl.t = Hashtbl.create 32

let register ~id ?(sample_shift = 0) name =
  match Hashtbl.find_opt registry id with
  | Some st -> st
  | None ->
    let st =
      {
        st_id = id;
        st_name = name;
        st_shift = max 0 sample_shift;
        st_count = 0;
        st_buckets = Array.make n_buckets 0;
        st_samples = 0;
        st_sum_ns = 0.;
        st_max_ns = 0.;
      }
    in
    Hashtbl.replace registry id st;
    st

let find id = Hashtbl.find_opt registry id
let now_ns () = Unix.gettimeofday () *. 1e9

(* The counter doubles as the sampling phase: one increment per call on the
   enabled path, and a reset merely restarts the 1-in-2^shift stride. *)
let enter st =
  if not !on then 0.
  else begin
    let c = st.st_count + 1 in
    st.st_count <- c;
    if st.st_shift = 0 then now_ns ()
    else if c land ((1 lsl st.st_shift) - 1) = 0 then now_ns ()
    else 0.
  end

let bucket_of ns =
  let n = int_of_float ns in
  if n <= 1 then 0
  else begin
    let i = ref 0 and v = ref n in
    while !v > 1 do
      incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

let observe_ns st ns =
  let ns = max 0. ns in
  st.st_buckets.(bucket_of ns) <- st.st_buckets.(bucket_of ns) + 1;
  st.st_samples <- st.st_samples + 1;
  st.st_sum_ns <- st.st_sum_ns +. ns;
  if ns > st.st_max_ns then st.st_max_ns <- ns

let exit st t0 = if t0 <> 0. then observe_ns st (now_ns () -. t0)
let hit st = if !on then st.st_count <- st.st_count + 1

(* Bulk counter bump for quantity-valued stages (bytes written, commits
   coalesced): the count is the accumulated quantity, not a call tally. *)
let add st n = if !on then st.st_count <- st.st_count + n

let name st = st.st_name
let id st = st.st_id
let count st = st.st_count
let samples st = st.st_samples

let percentile st p =
  if st.st_samples = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int st.st_samples)) in
      min (max r 1) st.st_samples
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < n_buckets do
      seen := !seen + st.st_buckets.(!i);
      if !seen < rank then incr i
    done;
    (* upper bound of the matched bucket: bucket i covers [2^i, 2^(i+1)) *)
    Float.of_int (1 lsl min (!i + 1) 62)
  end

let mean_ns st =
  if st.st_samples = 0 then Float.nan
  else st.st_sum_ns /. float_of_int st.st_samples

let max_ns st = st.st_max_ns

let stages () =
  Hashtbl.fold (fun _ st acc -> st :: acc) registry []
  |> List.sort (fun a b -> String.compare a.st_name b.st_name)

let pp_ns ns =
  if Float.is_nan ns then "-"
  else if ns < 1_000. then Printf.sprintf "%.0fns" ns
  else if ns < 1_000_000. then Printf.sprintf "%.1fus" (ns /. 1_000.)
  else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let report () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-24s %12s %10s %8s %8s %8s %8s\n" "stage" "count"
       "samples" "p50" "p95" "p99" "max");
  List.iter
    (fun st ->
      if st.st_count > 0 then
        Buffer.add_string b
          (Printf.sprintf "%-24s %12d %10d %8s %8s %8s %8s\n" st.st_name
             st.st_count st.st_samples
             (pp_ns (percentile st 50.))
             (pp_ns (percentile st 95.))
             (pp_ns (percentile st 99.))
             (pp_ns st.st_max_ns)))
    (stages ());
  Buffer.contents b

let reset () =
  Hashtbl.iter
    (fun _ st ->
      st.st_count <- 0;
      st.st_samples <- 0;
      st.st_sum_ns <- 0.;
      st.st_max_ns <- 0.;
      Array.fill st.st_buckets 0 n_buckets 0)
    registry
