(** Low-overhead metrics registry: per-stage monotonic counters and
    fixed-bucket latency histograms.

    A {e stage} is one instrumented point (e.g. ["db.send"], ["wal.append"]).
    Stages are registered once at module initialisation, keyed by an interned
    symbol id supplied by the caller — the layers above pass
    [Oodb.Symbol.intern name], which keeps the registry int-keyed without a
    dependency on the substrate.

    Histograms use power-of-two nanosecond buckets: an observation of [d] ns
    lands in bucket [floor (log2 d)], so a reported percentile is exact to
    within a factor of two.  Ultra-hot stages register with a
    [sample_shift]: the counter still counts every call, but only 1 in
    [2^shift] calls is timed, keeping the enabled cost of a ~50 ns operation
    bounded.  The clock is {!Clock.now_ns} ([CLOCK_MONOTONIC]), so durations
    are always non-negative — a wall-clock NTP step can no longer fold
    garbage into bucket 0.

    Domain-safety: each domain that hits a stage records into its own
    accumulator (domain-local storage, no atomics on the enabled path); the
    read side ({!count}, {!percentile}, {!report}, ...) merges every
    domain's accumulator.  Merged reads are weakly consistent while other
    domains are actively recording and exact once they quiesce; {!reset}
    likewise assumes a quiet system.

    When [!on] is false, {!enter} returns immediately without counting:
    disabled instrumentation is one ref load and one branch. *)

type stage

val on : bool ref
(** The metrics switch.  Flip via {!enable}/{!disable} (they also maintain
    the combined {!Obs.armed} flag); reading it directly is the hot path. *)

val enable : unit -> unit
val disable : unit -> unit

val register : id:int -> ?sample_shift:int -> string -> stage
(** [register ~id name] returns the stage keyed by interned-symbol [id],
    creating it on first call (idempotent — later calls return the existing
    stage and ignore the other arguments).  [sample_shift] (default 0 =
    time every call) times 1 in [2^shift] calls. *)

val find : int -> stage option
(** Look a stage up by its symbol id. *)

val enter : stage -> float
(** Count one hit and, when this call is sampled, return the start
    timestamp to pass to {!exit}.  Returns [0.] when metrics are off or the
    call is not sampled — {!exit} treats that as "nothing to record". *)

val exit : stage -> float -> unit
(** Record the elapsed time for a sampled {!enter}.  No-op on [0.]. *)

val hit : stage -> unit
(** Count without timing (outcome counters). *)

val add : stage -> int -> unit
(** [add st n] counts [n] at once, for quantity-valued stages (bytes
    written, commits coalesced into a group batch).  No-op when off. *)

val observe_ns : stage -> float -> unit
(** Record a duration directly (bypasses sampling and the [on] gate; used
    by tests and by callers that already hold a measured duration). *)

(** {1 Reading} *)

val name : stage -> string
val id : stage -> int
val count : stage -> int
(** Calls counted since the last {!reset}. *)

val samples : stage -> int
(** Timed observations in the histogram. *)

val percentile : stage -> float -> float
(** [percentile st p] for [p] in [0..100], in nanoseconds: the upper bound
    of the bucket containing the p-th percentile observation, clamped to
    the last populated bucket.  Bucket 0 holds observations of at most
    1 ns and reports 1.  [nan] when the histogram is empty. *)

val mean_ns : stage -> float
val max_ns : stage -> float

val stages : unit -> stage list
(** All registered stages, sorted by name. *)

val report : unit -> string
(** A plain-text table of every stage with a non-zero count: count, p50,
    p95, p99, max. *)

val reset : unit -> unit
(** Zero every counter and histogram (registrations persist). *)
