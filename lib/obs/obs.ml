(** Observability primitives for the Sentinel stack.

    This library sits {e below} the object substrate so that every layer —
    {!Oodb.Db} hot paths, event routing, the rule system — can report into
    one process-wide registry without a dependency cycle.  It knows nothing
    about databases: metric identities are plain ints (the layers above pass
    interned [Oodb.Symbol] ids), and everything else is strings and floats.

    - {!Ring} — the one bounded-ring eviction policy shared by the failure
      log, the audit trail, notifiable recorders and the span buffer;
    - {!Metrics} — monotonic counters and power-of-two-bucket latency
      histograms (p50/p95/p99), optionally sampled on ultra-hot stages;
    - {!Trace} — cascade tracing: a trace id assigned at the triggering
      send and threaded through routing, detection, scheduling and firing,
      with Chrome-trace-format JSON export.

    The overhead contract: when both {!Metrics.on} and {!Trace.on} are
    false, an instrumented call site costs one ref load and one branch
    ({!armed}), nothing more. *)

module Clock = Clock
module Ring = Ring
module Metrics = Metrics
module Trace = Trace

let armed = Ctl.armed
(** [!armed] is true when metrics or tracing (or both) are enabled.  Call
    sites guard the whole instrumented path on this one ref so the disabled
    cost is a single load+branch. *)
