type 'a t = {
  cap : int;
  (* [| |] until the first push: a ring needs a seed element to build its
     backing array without boxing everything in options. *)
  mutable buf : 'a array;
  mutable next : int; (* write cursor *)
  mutable stored : int; (* <= cap *)
  mutable pushed : int; (* monotone total *)
  mutable dropped : int; (* monotone: entries evicted by capacity *)
}

let create cap =
  { cap = max 0 cap; buf = [||]; next = 0; stored = 0; pushed = 0; dropped = 0 }

let capacity t = t.cap
let length t = t.stored
let total t = t.pushed
let dropped t = t.dropped

let push t x =
  t.pushed <- t.pushed + 1;
  if t.cap = 0 then t.dropped <- t.dropped + 1
  else begin
    if Array.length t.buf = 0 then t.buf <- Array.make t.cap x;
    if t.stored = t.cap then t.dropped <- t.dropped + 1;
    t.buf.(t.next) <- x;
    t.next <- (t.next + 1) mod t.cap;
    if t.stored < t.cap then t.stored <- t.stored + 1
  end

(* index 0 = oldest retained entry *)
let nth_oldest t i = t.buf.((t.next - t.stored + i + (2 * t.cap)) mod t.cap)

let to_list t = List.init t.stored (nth_oldest t)

let to_list_rev t =
  List.init t.stored (fun i -> nth_oldest t (t.stored - 1 - i))

let recent t n =
  let n = min (max 0 n) t.stored in
  List.init n (fun i -> nth_oldest t (t.stored - n + i))

let iter f t =
  for i = 0 to t.stored - 1 do
    f (nth_oldest t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.stored - 1 do
    acc := f !acc (nth_oldest t i)
  done;
  !acc

let clear t =
  (* release references so cleared rings do not pin old entries *)
  t.buf <- [||];
  t.next <- 0;
  t.stored <- 0
