(** A bounded ring buffer: O(1) push, oldest entries overwritten.

    This is the single eviction policy behind every capped in-memory log in
    the system — the execution-failure log, the audit trail, notifiable
    recorders and the tracer's span buffer — so "bounded" means the same
    thing everywhere: at most [capacity] entries retained, exactly the
    newest ones, with a monotone total of everything ever pushed.

    A ring of capacity 0 retains nothing but still counts pushes.  The
    backing array is allocated lazily on the first push, so idle rings cost
    one small record. *)

type 'a t

val create : int -> 'a t
(** [create cap] — capacity is clamped to [max 0 cap]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append, overwriting the oldest entry when full. *)

val length : 'a t -> int
(** Entries currently retained ([<= capacity]). *)

val total : 'a t -> int
(** Entries ever pushed, including overwritten ones and pushes into a
    zero-capacity ring.  Survives {!clear}. *)

val dropped : 'a t -> int
(** Entries evicted because the ring was full (or pushed into a
    zero-capacity ring), monotone since creation.  This — not
    [total - length] — is the drop count: {!clear} empties the ring without
    anything having been dropped, so after a clear the subtraction
    over-reports.  Survives {!clear}. *)

val to_list : 'a t -> 'a list
(** Retained entries, oldest first. *)

val to_list_rev : 'a t -> 'a list
(** Retained entries, newest first. *)

val recent : 'a t -> int -> 'a list
(** [recent t n] — the [n] newest entries, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)

val clear : 'a t -> unit
(** Discard the retained entries (an explicit empty, not an eviction:
    {!dropped} is unchanged); {!total} keeps counting from where it was. *)
