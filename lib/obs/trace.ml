type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_label : string;
  sp_ts : float;
  sp_dur : float;
}

(* A token carries everything needed to close the span and restore the
   tracing context, so enter/exit pairs nest correctly even when the code
   between them opens further spans or raises. *)
type token =
  | No_span
  | Span of {
      tk_trace : int;
      tk_id : int;
      tk_parent : int;
      tk_name : string;
      tk_label : string;
      tk_ts : float;
      tk_saved_trace : int;
      tk_saved_parent : int;
    }

let on = Ctl.trace_on

let enable () =
  on := true;
  Ctl.recompute ()

let disable () =
  on := false;
  Ctl.recompute ()

(* Trace and span ids are process-wide (a cascade hops domains when a rule
   action targets an object owned by another shard), so the allocators are
   atomics.  Everything else is per-domain: each domain owns a span ring and
   its current trace/parent context, reached through one DLS key. *)
let next_trace = Atomic.make 0
let next_span = Atomic.make 0
let recorded = Atomic.make 0
let dropped_carry = Atomic.make 0

let capacity = Atomic.make 4096

(* Bumped by set_capacity/clear: domains lazily swap in a fresh ring when
   their generation is stale, so the global operations never touch another
   domain's live ring. *)
let generation = Atomic.make 0
let rings_lock = Mutex.create ()
let rings : span Ring.t list ref = ref []

type dstate = {
  mutable cur_trace : int;
  mutable cur_parent : int;
  mutable ring : span Ring.t;
  mutable ring_gen : int; (* -1 until the first recorded span *)
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { cur_trace = 0; cur_parent = 0; ring = Ring.create 0; ring_gen = -1 })

let my_ring st =
  let g = Atomic.get generation in
  if st.ring_gen <> g then begin
    let r = Ring.create (Atomic.get capacity) in
    Mutex.protect rings_lock (fun () -> rings := r :: !rings);
    st.ring <- r;
    st.ring_gen <- g
  end;
  st.ring

let discard_rings () =
  Mutex.protect rings_lock (fun () ->
      List.iter
        (fun r -> ignore (Atomic.fetch_and_add dropped_carry (Ring.dropped r)))
        !rings;
      rings := [];
      Atomic.incr generation)

let set_capacity n =
  Atomic.set capacity (max 0 n);
  discard_rings ();
  Atomic.set recorded 0;
  Atomic.set dropped_carry 0

let clear () = discard_rings ()

let now_us () = Clock.now_us ()

let enter tk_name tk_label =
  if not !on then No_span
  else begin
    let st = Domain.DLS.get dls in
    let tk_saved_trace = st.cur_trace and tk_saved_parent = st.cur_parent in
    let tk_trace =
      if tk_saved_trace = 0 then 1 + Atomic.fetch_and_add next_trace 1
      else tk_saved_trace
    in
    let tk_parent = if tk_saved_trace = 0 then 0 else tk_saved_parent in
    let tk_id = 1 + Atomic.fetch_and_add next_span 1 in
    st.cur_trace <- tk_trace;
    st.cur_parent <- tk_id;
    Span
      {
        tk_trace;
        tk_id;
        tk_parent;
        tk_name;
        tk_label;
        tk_ts = now_us ();
        tk_saved_trace;
        tk_saved_parent;
      }
  end

let exit = function
  | No_span -> ()
  | Span s ->
    let st = Domain.DLS.get dls in
    st.cur_trace <- s.tk_saved_trace;
    st.cur_parent <- s.tk_saved_parent;
    Atomic.incr recorded;
    Ring.push (my_ring st)
      {
        sp_trace = s.tk_trace;
        sp_id = s.tk_id;
        sp_parent = s.tk_parent;
        sp_name = s.tk_name;
        sp_label = s.tk_label;
        sp_ts = s.tk_ts;
        sp_dur = now_us () -. s.tk_ts;
      }

let instant name label =
  if !on then begin
    let st = Domain.DLS.get dls in
    let sp_id = 1 + Atomic.fetch_and_add next_span 1 in
    Atomic.incr recorded;
    Ring.push (my_ring st)
      {
        sp_trace = st.cur_trace;
        sp_id;
        sp_parent = st.cur_parent;
        sp_name = name;
        sp_label = label;
        sp_ts = now_us ();
        sp_dur = -1.;
      }
  end

let current () = (Domain.DLS.get dls).cur_trace

let fresh_id () = if !on then 1 + Atomic.fetch_and_add next_trace 1 else 0

let with_trace trace f =
  let st = Domain.DLS.get dls in
  let saved_trace = st.cur_trace and saved_parent = st.cur_parent in
  st.cur_trace <- trace;
  st.cur_parent <- 0;
  Fun.protect
    ~finally:(fun () ->
      st.cur_trace <- saved_trace;
      st.cur_parent <- saved_parent)
    f

(* Rings are grouped per domain in registration order; within a ring, spans
   are in exit order exactly as before.  Reading while another domain is
   recording is safe (OCaml arrays never tear) but best-effort — quiesce for
   an exact view. *)
let spans () =
  let rs = Mutex.protect rings_lock (fun () -> List.rev !rings) in
  List.concat_map Ring.to_list rs

let find_trace id = List.filter (fun s -> s.sp_trace = id) (spans ())
let traces_started () = Atomic.get next_trace
let spans_recorded () = Atomic.get recorded

let spans_dropped () =
  let live =
    Mutex.protect rings_lock (fun () ->
        List.fold_left (fun n r -> n + Ring.dropped r) 0 !rings)
  in
  Atomic.get dropped_carry + live

(* --- Chrome trace-event export ------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json ?spans:spec () =
  let items = match spec with Some l -> l | None -> spans () in
  let t0 =
    List.fold_left (fun acc s -> Float.min acc s.sp_ts) Float.infinity items
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      let common =
        Printf.sprintf
          "\"name\": \"%s\", \"cat\": \"sentinel\", \"pid\": 1, \"tid\": %d, \
           \"ts\": %.3f, \"args\": {\"label\": \"%s\", \"span\": %d, \
           \"parent\": %d}"
          (json_escape s.sp_name) s.sp_trace (s.sp_ts -. t0)
          (json_escape s.sp_label) s.sp_id s.sp_parent
      in
      if s.sp_dur < 0. then
        Buffer.add_string b
          (Printf.sprintf "  {\"ph\": \"i\", \"s\": \"t\", %s}" common)
      else
        Buffer.add_string b
          (Printf.sprintf "  {\"ph\": \"X\", \"dur\": %.3f, %s}" s.sp_dur
             common))
    items;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
