type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_label : string;
  sp_ts : float;
  sp_dur : float;
}

(* A token carries everything needed to close the span and restore the
   tracing context, so enter/exit pairs nest correctly even when the code
   between them opens further spans or raises. *)
type token =
  | No_span
  | Span of {
      tk_trace : int;
      tk_id : int;
      tk_parent : int;
      tk_name : string;
      tk_label : string;
      tk_ts : float;
      tk_saved_trace : int;
      tk_saved_parent : int;
    }

let on = Ctl.trace_on

let enable () =
  on := true;
  Ctl.recompute ()

let disable () =
  on := false;
  Ctl.recompute ()

let buffer = ref (Ring.create 4096)
let set_capacity n = buffer := Ring.create n
let next_trace = ref 0
let next_span = ref 0
let cur_trace = ref 0
let cur_parent = ref 0

let now_us () = Unix.gettimeofday () *. 1e6

let enter tk_name tk_label =
  if not !on then No_span
  else begin
    let tk_saved_trace = !cur_trace and tk_saved_parent = !cur_parent in
    let tk_trace =
      if tk_saved_trace = 0 then begin
        incr next_trace;
        !next_trace
      end
      else tk_saved_trace
    in
    let tk_parent = if tk_saved_trace = 0 then 0 else tk_saved_parent in
    incr next_span;
    let tk_id = !next_span in
    cur_trace := tk_trace;
    cur_parent := tk_id;
    Span
      {
        tk_trace;
        tk_id;
        tk_parent;
        tk_name;
        tk_label;
        tk_ts = now_us ();
        tk_saved_trace;
        tk_saved_parent;
      }
  end

let exit = function
  | No_span -> ()
  | Span s ->
    cur_trace := s.tk_saved_trace;
    cur_parent := s.tk_saved_parent;
    Ring.push !buffer
      {
        sp_trace = s.tk_trace;
        sp_id = s.tk_id;
        sp_parent = s.tk_parent;
        sp_name = s.tk_name;
        sp_label = s.tk_label;
        sp_ts = s.tk_ts;
        sp_dur = now_us () -. s.tk_ts;
      }

let instant name label =
  if !on then begin
    incr next_span;
    Ring.push !buffer
      {
        sp_trace = !cur_trace;
        sp_id = !next_span;
        sp_parent = !cur_parent;
        sp_name = name;
        sp_label = label;
        sp_ts = now_us ();
        sp_dur = -1.;
      }
  end

let current () = !cur_trace

let with_trace trace f =
  let saved_trace = !cur_trace and saved_parent = !cur_parent in
  cur_trace := trace;
  cur_parent := 0;
  Fun.protect
    ~finally:(fun () ->
      cur_trace := saved_trace;
      cur_parent := saved_parent)
    f

let spans () = Ring.to_list !buffer
let find_trace id = List.filter (fun s -> s.sp_trace = id) (spans ())
let traces_started () = !next_trace
let spans_recorded () = Ring.total !buffer
let clear () = Ring.clear !buffer

(* --- Chrome trace-event export ------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json ?spans:spec () =
  let items = match spec with Some l -> l | None -> spans () in
  let t0 =
    List.fold_left (fun acc s -> Float.min acc s.sp_ts) Float.infinity items
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      let common =
        Printf.sprintf
          "\"name\": \"%s\", \"cat\": \"sentinel\", \"pid\": 1, \"tid\": %d, \
           \"ts\": %.3f, \"args\": {\"label\": \"%s\", \"span\": %d, \
           \"parent\": %d}"
          (json_escape s.sp_name) s.sp_trace (s.sp_ts -. t0)
          (json_escape s.sp_label) s.sp_id s.sp_parent
      in
      if s.sp_dur < 0. then
        Buffer.add_string b
          (Printf.sprintf "  {\"ph\": \"i\", \"s\": \"t\", %s}" common)
      else
        Buffer.add_string b
          (Printf.sprintf "  {\"ph\": \"X\", \"dur\": %.3f, %s}" s.sp_dur
             common))
    items;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
