(** Cascade tracing.

    A {e trace} follows one cascade through the system: the triggering send,
    the routing of the occurrences it generates, composite detection,
    scheduling of deferred firings, the firings themselves, and any sends
    those actions cascade into.  The trace id is assigned at the outermost
    {!enter} (the triggering send) and propagated implicitly: spans opened
    while another span is live inherit its trace, and the rule layer carries
    the id across the deferred/detached gap with {!with_trace}.

    Spans land in a bounded {!Ring} at {!exit} time and export as
    Chrome-trace-format JSON (load in [chrome://tracing] or Perfetto; each
    trace renders as its own track via the [tid] field).

    Domain-safety: trace and span ids are process-wide atomics — a cascade
    keeps its id when it hops domains (capture with {!current}, replay with
    {!with_trace} on the other side).  The current-trace context and the
    span ring are per-domain; {!spans} merges every domain's ring, grouped
    per domain, exact once recording domains quiesce.

    When [!on] is false, {!enter} returns a constant token and {!exit} is a
    no-op: one ref load and one branch per call site. *)

type span = {
  sp_trace : int;  (** cascade id; 0 for instants outside any cascade *)
  sp_id : int;  (** unique per span *)
  sp_parent : int;  (** enclosing span id, 0 at the cascade root *)
  sp_name : string;  (** stage: "send", "route", "detect", "schedule", "fire" *)
  sp_label : string;  (** method or rule name; "" when not applicable *)
  sp_ts : float;  (** start, µs on the monotonic process clock *)
  sp_dur : float;  (** µs; [-1.] marks an instant event *)
}

type token

val on : bool ref
(** The tracing switch; flip via {!enable}/{!disable}. *)

val enable : unit -> unit
val disable : unit -> unit

val set_capacity : int -> unit
(** Replace the span buffers with empty ones of the given per-domain
    capacity (default 4096) and zero {!spans_recorded}/{!spans_dropped}. *)

val enter : string -> string -> token
(** [enter name label] opens a span.  Starts a fresh trace when no span is
    live; nests into the current trace otherwise.  [label] is positional —
    pass [""] — so the disabled path allocates nothing. *)

val exit : token -> unit
(** Close the span and record it.  Call sites are responsible for calling
    this on exception paths too (re-raise after). *)

val instant : string -> string -> unit
(** Record a zero-duration marker in the current trace (e.g. a contained
    failure, a deferred enqueue). *)

val current : unit -> int
(** The live trace id, 0 when none.  Capture at enqueue time and replay via
    {!with_trace} to carry a cascade across a deferred or detached gap. *)

val fresh_id : unit -> int
(** Mint a cascade id without opening a span — for carrying a trace across a
    process boundary (e.g. a wire protocol frame): the sender stamps the
    message with a fresh id, the receiver replays it with {!with_trace} so
    the remote cascade joins the same trace.  Counts toward
    {!traces_started}.  Returns [0] (the no-trace id) while tracing is
    disabled, so a disabled sender costs one load and one branch. *)

val with_trace : int -> (unit -> 'a) -> 'a
(** Run the thunk with the given trace id current (0 = no trace: spans
    opened inside start fresh traces).  Restores the previous trace state on
    return or exception. *)

(** {1 Reading} *)

val spans : unit -> span list
(** Retained spans, oldest first within each domain's ring (rings are
    concatenated in the order domains first recorded). *)

val find_trace : int -> span list
(** The retained spans of one trace, oldest first. *)

val traces_started : unit -> int
(** Trace ids handed out so far (monotone). *)

val spans_recorded : unit -> int
(** Spans ever recorded, including ones the ring has evicted. *)

val spans_dropped : unit -> int
(** Spans evicted by ring capacity (see {!Ring.dropped}): the honest drop
    count for status output — [spans_recorded - length-of-spans] would
    over-report after a {!clear}. *)

val clear : unit -> unit
(** Drop retained spans; counters keep their totals. *)

val to_chrome_json : ?spans:span list -> unit -> string
(** Chrome-trace-format export ([{"traceEvents": [...]}]): duration events
    ([ph:"X"]) for spans, instant events ([ph:"i"]) for markers, [tid] = the
    trace id, timestamps rebased to the earliest span.  Defaults to every
    retained span. *)
