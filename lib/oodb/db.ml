open Types

type t = db

let create () =
  {
    next_oid = 1;
    now = 0;
    next_txn_id = 1;
    wal_applied_seq = 0;
    objects = Oid.Table.create 1024;
    classes = Hashtbl.create 64;
    extents = Hashtbl.create 64;
    class_info = Hashtbl.create 64;
    class_consumers = Hashtbl.create 16;
    indexes = Hashtbl.create 16;
    txns = [];
    notify = (fun _ ~consumer:_ _ -> ());
    route = None;
    taps = [];
    on_journal = None;
    schema_gen = 0;
    class_sub_gen = 0;
    deliver_scratch = [];
    stats =
      {
        sends = 0;
        events_generated = 0;
        notifications = 0;
        txns_committed = 0;
        txns_aborted = 0;
        wal_batches_replayed = 0;
        wal_batches_discarded = 0;
        wal_checksum_failures = 0;
        wal_fsyncs = 0;
      };
  }

let now db = db.now

let tick db =
  db.now <- db.now + 1;
  db.now

let advance_clock db t = if t > db.now then db.now <- t

let journal db e = match db.on_journal with Some f -> f e | None -> ()

(* Generation stamps: cheap monotone counters that let derived caches (the
   Events.Route subsumption and subscription sets) detect staleness with one
   integer compare instead of a change-notification protocol. *)
let schema_generation db = db.schema_gen
let bump_schema_gen db = db.schema_gen <- db.schema_gen + 1
let class_sub_generation db = db.class_sub_gen
let bump_class_sub_gen db = db.class_sub_gen <- db.class_sub_gen + 1

let stats db = db.stats

let reset_stats db =
  let s = db.stats in
  s.sends <- 0;
  s.events_generated <- 0;
  s.notifications <- 0;
  s.txns_committed <- 0;
  s.txns_aborted <- 0;
  s.wal_batches_replayed <- 0;
  s.wal_batches_discarded <- 0;
  s.wal_checksum_failures <- 0;
  s.wal_fsyncs <- 0

(* --- schema ------------------------------------------------------------ *)

let info db cls =
  match Hashtbl.find_opt db.class_info cls with
  | Some i -> i
  | None -> raise (Errors.No_such_class cls)

let compute_info db (c : class_def) =
  let parent = Option.map (info db) c.super in
  let ri_ancestry =
    c.cname :: (match parent with Some p -> p.ri_ancestry | None -> [])
  in
  let ri_reactive =
    c.reactive || match parent with Some p -> p.ri_reactive | None -> false
  in
  (* Effective event interface: inherited entries, overridden by our own. *)
  let ri_iface = Hashtbl.create 8 in
  (match parent with
  | Some p -> Hashtbl.iter (Hashtbl.replace ri_iface) p.ri_iface
  | None -> ());
  Hashtbl.iter (Hashtbl.replace ri_iface) c.interface;
  { ri_reactive; ri_ancestry; ri_iface }

let define_class db (c : class_def) =
  if Hashtbl.mem db.classes c.cname then raise (Errors.Duplicate_class c.cname);
  (match c.super with
  | Some s when not (Hashtbl.mem db.classes s) ->
    raise (Errors.No_such_class s)
  | _ -> ());
  Hashtbl.replace db.classes c.cname c;
  let ri = compute_info db c in
  (* Every event-interface method must resolve along the chain. *)
  let check_event m _ = ignore (Schema.lookup_method db c.cname m) in
  (try Hashtbl.iter check_event c.interface
   with e ->
     Hashtbl.remove db.classes c.cname;
     raise e);
  if Hashtbl.length c.interface > 0 && not ri.ri_reactive then begin
    Hashtbl.remove db.classes c.cname;
    Errors.type_error "class %s declares an event interface but is not reactive"
      c.cname
  end;
  Hashtbl.replace db.class_info c.cname ri;
  (* A new class extends subsumption sets of its ancestors. *)
  bump_schema_gen db

let classes db = Hashtbl.fold (fun name _ acc -> name :: acc) db.classes []
let has_class db name = Hashtbl.mem db.classes name

(* --- objects ------------------------------------------------------------ *)

let new_object db ?(attrs = []) cls =
  if not (Hashtbl.mem db.classes cls) then raise (Errors.No_such_class cls);
  let spec = Schema.all_attrs db cls in
  let tbl = Hashtbl.create (max 4 (List.length spec)) in
  List.iter (fun (name, default) -> Hashtbl.replace tbl name default) spec;
  let put (name, v) =
    if not (Hashtbl.mem tbl name) then raise (Errors.No_such_attribute (cls, name));
    Hashtbl.replace tbl name v
  in
  List.iter put attrs;
  let id = Oid.of_int db.next_oid in
  db.next_oid <- db.next_oid + 1;
  let o = { id; cls; attrs = tbl; consumers = []; alive = true } in
  Heap.insert_obj db o;
  Transaction.log_undo db (U_created id);
  journal db
    (J_mutation
       (M_create
          ( id,
            cls,
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b) )));
  id

let delete_object db oid =
  let o = Heap.find_obj db oid in
  Transaction.log_undo db (U_deleted o);
  o.alive <- false;
  Heap.remove_obj db o;
  journal db (J_mutation (M_delete oid))

let exists db oid =
  match Oid.Table.find_opt db.objects oid with
  | Some o -> o.alive
  | None -> false

let class_of db oid = (Heap.find_obj db oid).cls

let is_instance_of db oid cls =
  let o = Heap.find_obj db oid in
  List.exists (String.equal cls) (info db o.cls).ri_ancestry

let get db oid name =
  let o = Heap.find_obj db oid in
  match Hashtbl.find_opt o.attrs name with
  | Some v -> v
  | None -> raise (Errors.No_such_attribute (o.cls, name))

let get_opt db oid name =
  let o = Heap.find_obj db oid in
  Hashtbl.find_opt o.attrs name

let set db oid name v =
  let o = Heap.find_obj db oid in
  if not (Hashtbl.mem o.attrs name) then
    raise (Errors.No_such_attribute (o.cls, name));
  let old = Heap.raw_set_attr db o name (Some v) in
  Transaction.log_undo db (U_set_attr (oid, name, old));
  journal db (J_mutation (M_set (oid, name, v)))

let attrs db oid =
  let o = Heap.find_obj db oid in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.attrs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- subscription ------------------------------------------------------- *)

(* Consumer lists are stored newest-first so subscription is O(1) instead of
   the former quadratic [old @ [consumer]]; readers that care about
   subscription order iterate in reverse. *)
let iter_rev f l =
  let rec go = function
    | [] -> ()
    | x :: tl ->
      go tl;
      f x
  in
  go l

let subscribe db ~reactive ~consumer =
  let o = Heap.find_obj db reactive in
  if not (List.exists (Oid.equal consumer) o.consumers) then begin
    Transaction.log_undo db (U_consumers (reactive, o.consumers));
    o.consumers <- consumer :: o.consumers;
    journal db (J_mutation (M_subscribe (reactive, consumer)))
  end

let unsubscribe db ~reactive ~consumer =
  let o = Heap.find_obj db reactive in
  if List.exists (Oid.equal consumer) o.consumers then begin
    Transaction.log_undo db (U_consumers (reactive, o.consumers));
    o.consumers <- List.filter (fun c -> not (Oid.equal c consumer)) o.consumers;
    journal db (J_mutation (M_unsubscribe (reactive, consumer)))
  end

let consumers_of db oid = List.rev (Heap.find_obj db oid).consumers

let raw_class_consumers db cls =
  if not (Hashtbl.mem db.classes cls) then raise (Errors.No_such_class cls);
  Option.value ~default:[] (Hashtbl.find_opt db.class_consumers cls)

let class_consumers_of db cls = List.rev (raw_class_consumers db cls)

let subscribe_class db ~cls ~consumer =
  let old = raw_class_consumers db cls in
  if not (List.exists (Oid.equal consumer) old) then begin
    Transaction.log_undo db (U_class_consumers (cls, old));
    Hashtbl.replace db.class_consumers cls (consumer :: old);
    bump_class_sub_gen db;
    journal db (J_mutation (M_subscribe_class (cls, consumer)))
  end

let unsubscribe_class db ~cls ~consumer =
  let old = raw_class_consumers db cls in
  if List.exists (Oid.equal consumer) old then begin
    Transaction.log_undo db (U_class_consumers (cls, old));
    Hashtbl.replace db.class_consumers cls
      (List.filter (fun c -> not (Oid.equal c consumer)) old);
    bump_class_sub_gen db;
    journal db (J_mutation (M_unsubscribe_class (cls, consumer)))
  end

let set_notify db f = db.notify <- f
let set_route db f = db.route <- f
let add_tap db f = db.taps <- f :: db.taps
let clear_taps db = db.taps <- []

(* --- event generation and delivery -------------------------------------- *)

(* The per-event dedup table is pooled rather than allocated per delivery;
   rule actions can generate further events, so deliver is reentrant and a
   single scratch table would be corrupted mid-iteration. *)
let scratch_acquire db =
  match db.deliver_scratch with
  | t :: rest ->
    db.deliver_scratch <- rest;
    t
  | [] -> Oid.Table.create 32

let scratch_release db t =
  Oid.Table.reset t;
  db.deliver_scratch <- t :: db.deliver_scratch

let broadcast db (o : obj) occ =
  (* Instance-level consumers first, then class-level ones along the chain;
     a consumer subscribed both ways hears the occurrence once. *)
  let seen = scratch_acquire db in
  Fun.protect
    ~finally:(fun () -> scratch_release db seen)
    (fun () ->
      let notify_once c =
        if not (Oid.Table.mem seen c) then begin
          Oid.Table.replace seen c ();
          db.stats.notifications <- db.stats.notifications + 1;
          db.notify db ~consumer:c occ
        end
      in
      iter_rev notify_once o.consumers;
      let class_level cls =
        match Hashtbl.find_opt db.class_consumers cls with
        | Some cs -> iter_rev notify_once cs
        | None -> ()
      in
      List.iter class_level (info db o.cls).ri_ancestry)

let deliver db (o : obj) occ =
  db.stats.events_generated <- db.stats.events_generated + 1;
  iter_rev (fun tap -> tap db occ) db.taps;
  match db.route with
  | Some route -> route db o occ
  | None -> broadcast db o occ

let make_occurrence db (o : obj) meth modifier params =
  { source = o.id; source_class = o.cls; meth; modifier; params; at = tick db }

let signal db ~source ~meth ~modifier params =
  let o = Heap.find_obj db source in
  deliver db o (make_occurrence db o meth modifier params)

let send db receiver meth args =
  let o = Heap.find_obj db receiver in
  db.stats.sends <- db.stats.sends + 1;
  let m = Schema.lookup_method db o.cls meth in
  let ri = info db o.cls in
  if not ri.ri_reactive then m.impl db receiver args
  else begin
    match Hashtbl.find_opt ri.ri_iface meth with
    | None -> m.impl db receiver args
    | Some entry ->
      if entry.on_begin then
        deliver db o (make_occurrence db o meth Before args);
      let result = m.impl db receiver args in
      if entry.on_end then deliver db o (make_occurrence db o meth After args);
      result
  end

(* --- extents and indexes ------------------------------------------------ *)

let subclasses db cls =
  Hashtbl.fold
    (fun name i acc ->
      if List.exists (String.equal cls) i.ri_ancestry then name :: acc else acc)
    db.class_info []

let extent db ?(deep = true) cls =
  if not (Hashtbl.mem db.classes cls) then raise (Errors.No_such_class cls);
  let of_class c =
    match Hashtbl.find_opt db.extents c with
    | None -> []
    | Some t -> Oid.Table.fold (fun oid () acc -> oid :: acc) t []
  in
  let oids = if deep then List.concat_map of_class (subclasses db cls) else of_class cls in
  List.sort Oid.compare oids

let create_index db ?(kind = `Hash) ~cls ~attr () =
  if not (Hashtbl.mem db.classes cls) then raise (Errors.No_such_class cls);
  if not (Hashtbl.mem db.indexes (cls, attr)) then begin
    let ix_backing =
      match kind with
      | `Hash -> Ix_hash (Hashtbl.create 64)
      | `Ordered -> Ix_ordered (Btree.create ())
    in
    let ix = { ix_class = cls; ix_attr = attr; ix_backing } in
    Hashtbl.replace db.indexes (cls, attr) ix;
    let add oid =
      let o = Heap.find_obj db oid in
      match Hashtbl.find_opt o.attrs attr with
      | Some v -> Heap.index_add ix v oid
      | None -> ()
    in
    List.iter add (extent db ~deep:true cls);
    journal db (J_mutation (M_create_index (cls, attr, kind = `Ordered)))
  end

let drop_index db ~cls ~attr =
  if Hashtbl.mem db.indexes (cls, attr) then begin
    Hashtbl.remove db.indexes (cls, attr);
    journal db (J_mutation (M_drop_index (cls, attr)))
  end
let has_index db ~cls ~attr = Hashtbl.mem db.indexes (cls, attr)

let index_kind db ~cls ~attr =
  match Hashtbl.find_opt db.indexes (cls, attr) with
  | None -> None
  | Some { ix_backing = Ix_hash _; _ } -> Some `Hash
  | Some { ix_backing = Ix_ordered _; _ } -> Some `Ordered

let find_index db ~cls ~attr =
  match Hashtbl.find_opt db.indexes (cls, attr) with
  | None -> Errors.type_error "no index on %s.%s" cls attr
  | Some ix -> ix

let index_lookup db ~cls ~attr v =
  match (find_index db ~cls ~attr).ix_backing with
  | Ix_hash entries -> (
    match Hashtbl.find_opt entries v with
    | None -> []
    | Some bucket ->
      Oid.Table.fold (fun oid () acc -> oid :: acc) bucket []
      |> List.sort Oid.compare)
  | Ix_ordered tree -> Btree.find tree v

let index_range db ~cls ~attr ?lo ?hi () =
  match (find_index db ~cls ~attr).ix_backing with
  | Ix_hash _ ->
    Errors.type_error "index on %s.%s is a hash index; ranges need ~kind:`Ordered"
      cls attr
  | Ix_ordered tree ->
    Btree.range tree ?lo ?hi () |> List.concat_map snd |> List.sort Oid.compare
