open Types

type t = db
type slot = Types.slot

let create ?(layout = `Slots) () =
  {
    next_oid = 1;
    oid_stride = 1;
    now = 0;
    next_txn_id = 1;
    wal_applied_seq = 0;
    snapshot_seq = 0;
    dirty = Oid.Table.create 256;
    dirty_dead = Oid.Table.create 64;
    ckpt_gen = 1;
    slots_mode = (layout = `Slots);
    objects = Oid.Table.create 1024;
    classes = Hashtbl.create 64;
    extents = Hashtbl.create 64;
    class_info = Hashtbl.create 64;
    class_consumers = Hashtbl.create 16;
    indexes = Hashtbl.create 16;
    txns = [];
    notify = (fun _ ~consumer:_ _ -> ());
    route = None;
    taps = [];
    on_journal = None;
    schema_gen = 0;
    class_sub_gen = 0;
    index_gen = 0;
    deliver_scratch = [];
    stats =
      {
        sends = 0;
        events_generated = 0;
        notifications = 0;
        txns_committed = 0;
        txns_aborted = 0;
        wal_batches_replayed = 0;
        wal_batches_discarded = 0;
        wal_checksum_failures = 0;
        wal_fsyncs = 0;
        wal_bytes = 0;
        snapshot_bytes = 0;
        group_commit_batches = 0;
        delta_checkpoints = 0;
      };
  }

let layout_mode db = if db.slots_mode then `Slots else `Hashtbl

let now db = db.now

let tick db =
  db.now <- db.now + 1;
  db.now

let advance_clock db t = if t > db.now then db.now <- t

let journal db e = match db.on_journal with Some f -> f e | None -> ()

(* Generation stamps: cheap monotone counters that let derived caches (the
   Events.Route subsumption and subscription sets) detect staleness with one
   integer compare instead of a change-notification protocol. *)
let schema_generation db = db.schema_gen
let bump_schema_gen db = db.schema_gen <- db.schema_gen + 1
let class_sub_generation db = db.class_sub_gen
let bump_class_sub_gen db = db.class_sub_gen <- db.class_sub_gen + 1

let stats db = db.stats

let reset_stats db =
  let s = db.stats in
  s.sends <- 0;
  s.events_generated <- 0;
  s.notifications <- 0;
  s.txns_committed <- 0;
  s.txns_aborted <- 0;
  s.wal_batches_replayed <- 0;
  s.wal_batches_discarded <- 0;
  s.wal_checksum_failures <- 0;
  s.wal_fsyncs <- 0;
  s.wal_bytes <- 0;
  s.snapshot_bytes <- 0;
  s.group_commit_batches <- 0;
  s.delta_checkpoints <- 0

(* --- schema ------------------------------------------------------------ *)

let info = Heap.class_info

let compute_info db (c : class_def) =
  let parent = Option.map (info db) c.super in
  let ri_ancestry =
    c.cname :: (match parent with Some p -> p.ri_ancestry | None -> [])
  in
  let ri_reactive =
    c.reactive || match parent with Some p -> p.ri_reactive | None -> false
  in
  (* Effective event interface: inherited entries, overridden by our own. *)
  let ri_iface = Hashtbl.create 8 in
  (match parent with
  | Some p -> Hashtbl.iter (Hashtbl.replace ri_iface) p.ri_iface
  | None -> ());
  Hashtbl.iter (Hashtbl.replace ri_iface) c.interface;
  (* Slot layout.  Schema.all_attrs walks root-first, so the slots of this
     class are the parent's slots followed by our own declarations: the
     subclass prefix invariant that makes a resolved slot index valid across
     a deep extent. *)
  let spec = Schema.all_attrs db c.cname in
  let n = List.length spec in
  let ly_names = Array.make n "" in
  let ly_defaults = Array.make n Value.Null in
  List.iteri
    (fun i (name, d) ->
      ly_names.(i) <- name;
      ly_defaults.(i) <- d)
    spec;
  let ly_syms = Array.map Symbol.intern ly_names in
  let ly_by_name = Hashtbl.create (max 4 n) in
  let ly_by_sym = Hashtbl.create (max 4 n) in
  Array.iteri
    (fun i name ->
      Hashtbl.replace ly_by_name name i;
      Hashtbl.replace ly_by_sym ly_syms.(i) i)
    ly_names;
  (match parent with
  | Some p ->
    (* prefix invariant: cheap to check once per class (re)definition *)
    let psyms = p.ri_layout.ly_syms in
    assert (Array.length psyms <= n);
    Array.iteri (fun i s -> assert (Symbol.equal ly_syms.(i) s)) psyms
  | None -> ());
  let ri_layout =
    {
      ly_class = c.cname;
      ly_class_sym = Symbol.intern c.cname;
      ly_names;
      ly_syms;
      ly_defaults;
      ly_by_name;
      ly_by_sym;
      ly_ix_stamp = -1;
      ly_covering = Array.make n [];
    }
  in
  (* Dispatch cache: implementation, effective interface entry and interned
     name per understood method, so Db.send resolves a message with one
     hashtable probe. *)
  let ri_dispatch = Hashtbl.create 16 in
  List.iter
    (fun m ->
      Hashtbl.replace ri_dispatch m
        {
          de_method = Schema.lookup_method db c.cname m;
          de_iface = Hashtbl.find_opt ri_iface m;
          de_sym = Symbol.intern m;
        })
    (Schema.methods_of db c.cname);
  { ri_reactive; ri_ancestry; ri_iface; ri_layout; ri_dispatch }

let define_class db (c : class_def) =
  if Hashtbl.mem db.classes c.cname then raise (Errors.Duplicate_class c.cname);
  (match c.super with
  | Some s when not (Hashtbl.mem db.classes s) ->
    raise (Errors.No_such_class s)
  | _ -> ());
  Hashtbl.replace db.classes c.cname c;
  let ri = compute_info db c in
  (* Every event-interface method must resolve along the chain. *)
  let check_event m _ = ignore (Schema.lookup_method db c.cname m) in
  (try Hashtbl.iter check_event c.interface
   with e ->
     Hashtbl.remove db.classes c.cname;
     raise e);
  if Hashtbl.length c.interface > 0 && not ri.ri_reactive then begin
    Hashtbl.remove db.classes c.cname;
    Errors.type_error "class %s declares an event interface but is not reactive"
      c.cname
  end;
  Hashtbl.replace db.class_info c.cname ri;
  (* A new class extends subsumption sets of its ancestors. *)
  bump_schema_gen db

let classes db = Hashtbl.fold (fun name _ acc -> name :: acc) db.classes []
let has_class db name = Hashtbl.mem db.classes name

(* --- objects ------------------------------------------------------------ *)

let new_object db ?(attrs = []) cls =
  let info = info db cls in
  let o = Heap.make_obj db ~id:(Oid.of_int 0) ~cls ~info ~seed:`Defaults ~consumers:[] in
  let put (name, v) =
    (* the declared attribute set is exactly what `Defaults seeded *)
    match Heap.obj_get o name with
    | None -> raise (Errors.No_such_attribute (cls, name))
    | Some _ -> Heap.store_put_raw o name v
  in
  List.iter put attrs;
  let id = Oid.of_int db.next_oid in
  db.next_oid <- db.next_oid + db.oid_stride;
  let o = { o with id } in
  Heap.insert_obj db o;
  Transaction.log_undo db (U_created id);
  journal db (J_mutation (M_create (id, cls, Heap.sorted_attrs o)));
  id

(* Align the allocator to the shard's residue class.  Called at shard setup
   and again after recovery (replay restores next_oid monotonically but not
   the stride, which is never persisted). *)
let configure_shard db ~index ~of_ =
  if of_ <= 0 || index < 0 || index >= of_ then
    invalid_arg "Db.configure_shard: need 0 <= index < of_";
  db.oid_stride <- of_;
  let base = max db.next_oid 1 in
  let residue = index mod of_ in
  let k = ref base in
  while !k mod of_ <> residue do
    incr k
  done;
  db.next_oid <- !k

let delete_object db oid =
  let o = Heap.find_obj db oid in
  Transaction.log_undo db (U_deleted o);
  o.alive <- false;
  Heap.remove_obj db o;
  journal db (J_mutation (M_delete oid))

let exists db oid =
  match Oid.Table.find_opt db.objects oid with
  | Some o -> o.alive
  | None -> false

let class_of db oid = (Heap.find_obj db oid).cls

let is_instance_of db oid cls =
  let o = Heap.find_obj db oid in
  List.exists (String.equal cls) o.info.ri_ancestry

let get db oid name =
  let o = Heap.find_obj db oid in
  match o.store with
  | S_slots slots -> (
    match Hashtbl.find_opt o.info.ri_layout.ly_by_name name with
    | Some i ->
      let v = Array.unsafe_get slots i in
      if v == absent then raise (Errors.No_such_attribute (o.cls, name)) else v
    | None -> raise (Errors.No_such_attribute (o.cls, name)))
  | S_table tbl -> (
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None -> raise (Errors.No_such_attribute (o.cls, name)))

let get_opt db oid name = Heap.obj_get (Heap.find_obj db oid) name

let log_set db oid name old v =
  Transaction.log_undo db (U_set_attr (oid, name, old));
  journal db (J_mutation (M_set (oid, name, v)))

let set db oid name v =
  let o = Heap.find_obj db oid in
  match o.store with
  | S_slots slots -> (
    match Hashtbl.find_opt o.info.ri_layout.ly_by_name name with
    | Some i when Array.unsafe_get slots i != absent ->
      log_set db oid name (Heap.raw_set_slot db o i (Some v)) v
    | _ -> raise (Errors.No_such_attribute (o.cls, name)))
  | S_table tbl ->
    if not (Hashtbl.mem tbl name) then
      raise (Errors.No_such_attribute (o.cls, name));
    log_set db oid name (Heap.raw_set_attr db o name (Some v)) v

let attrs db oid = Heap.sorted_attrs (Heap.find_obj db oid)

(* --- pre-resolved slots -------------------------------------------------- *)

(* Observability stages (lib/obs), registered once at module initialisation
   and keyed by interned symbols.  The [!Obs.armed] guard keeps the disabled
   cost of each instrumented entry point to one ref load and one branch; the
   sample shifts bound the enabled cost of the sub-100ns operations (the
   counter counts every call, only 1 in 2^shift is timed). *)
let st_send =
  Obs.Metrics.register ~id:(Symbol.intern "db.send") ~sample_shift:4 "db.send"

let st_slot_get =
  Obs.Metrics.register
    ~id:(Symbol.intern "db.slot_get")
    ~sample_shift:6 "db.slot_get"

let st_slot_set =
  Obs.Metrics.register
    ~id:(Symbol.intern "db.slot_set")
    ~sample_shift:6 "db.slot_set"

let resolve db cls name =
  let i = info db cls in
  match Hashtbl.find_opt i.ri_layout.ly_by_name name with
  | Some idx ->
    { sl_name = name; sl_sym = i.ri_layout.ly_syms.(idx); sl_index = idx }
  | None -> raise (Errors.No_such_attribute (cls, name))

(* Validate a handle against the object's current layout: one array read and
   an int compare on the hot path; a miss (layout evolved, or the handle was
   resolved against an unrelated class) re-resolves by name. *)
let slot_index (o : obj) (s : slot) =
  let syms = o.info.ri_layout.ly_syms in
  let i = s.sl_index in
  if i < Array.length syms && Symbol.equal (Array.unsafe_get syms i) s.sl_sym
  then i
  else
    match Hashtbl.find_opt o.info.ri_layout.ly_by_name s.sl_name with
    | Some j -> j
    | None -> raise (Errors.No_such_attribute (o.cls, s.sl_name))

let slot_get_raw db oid (s : slot) =
  let o = Heap.find_obj db oid in
  match o.store with
  | S_slots slots ->
    let v = Array.unsafe_get slots (slot_index o s) in
    if v == absent then raise (Errors.No_such_attribute (o.cls, s.sl_name))
    else v
  | S_table tbl -> (
    match Hashtbl.find_opt tbl s.sl_name with
    | Some v -> v
    | None -> raise (Errors.No_such_attribute (o.cls, s.sl_name)))

let slot_get db oid (s : slot) =
  if not !Obs.armed then slot_get_raw db oid s
  else begin
    let t0 = Obs.Metrics.enter st_slot_get in
    match slot_get_raw db oid s with
    | v ->
      Obs.Metrics.exit st_slot_get t0;
      v
    | exception e ->
      Obs.Metrics.exit st_slot_get t0;
      raise e
  end

let slot_get_opt db oid (s : slot) =
  let o = Heap.find_obj db oid in
  match o.store with
  | S_slots slots -> (
    match Hashtbl.find_opt o.info.ri_layout.ly_by_name s.sl_name with
    | exception _ -> None
    | None -> None
    | Some _ ->
      let v = Array.unsafe_get slots (slot_index o s) in
      if v == absent then None else Some v)
  | S_table tbl -> Hashtbl.find_opt tbl s.sl_name

let slot_set_raw db oid (s : slot) v =
  let o = Heap.find_obj db oid in
  match o.store with
  | S_slots slots ->
    let i = slot_index o s in
    if Array.unsafe_get slots i == absent then
      raise (Errors.No_such_attribute (o.cls, s.sl_name));
    log_set db oid s.sl_name (Heap.raw_set_slot db o i (Some v)) v
  | S_table tbl ->
    if not (Hashtbl.mem tbl s.sl_name) then
      raise (Errors.No_such_attribute (o.cls, s.sl_name));
    log_set db oid s.sl_name (Heap.raw_set_attr db o s.sl_name (Some v)) v

let slot_set db oid (s : slot) v =
  if not !Obs.armed then slot_set_raw db oid s v
  else begin
    let t0 = Obs.Metrics.enter st_slot_set in
    match slot_set_raw db oid s v with
    | () -> Obs.Metrics.exit st_slot_set t0
    | exception e ->
      Obs.Metrics.exit st_slot_set t0;
      raise e
  end

(* --- subscription ------------------------------------------------------- *)

(* Consumer lists are stored newest-first so subscription is O(1) instead of
   the former quadratic [old @ [consumer]]; readers that care about
   subscription order iterate in reverse.  Tail-recursive: consumer and tap
   lists can be arbitrarily long, so the reversal is materialized instead of
   borrowed from the call stack. *)
let iter_rev f l =
  match l with
  | [] -> ()
  | [ x ] -> f x
  | l -> List.iter f (List.rev l)

let subscribe db ~reactive ~consumer =
  let o = Heap.find_obj db reactive in
  if not (List.exists (Oid.equal consumer) o.consumers) then begin
    Transaction.log_undo db (U_consumers (reactive, o.consumers));
    o.consumers <- consumer :: o.consumers;
    Heap.mark_dirty db o;
    journal db (J_mutation (M_subscribe (reactive, consumer)))
  end

let unsubscribe db ~reactive ~consumer =
  let o = Heap.find_obj db reactive in
  if List.exists (Oid.equal consumer) o.consumers then begin
    Transaction.log_undo db (U_consumers (reactive, o.consumers));
    o.consumers <- List.filter (fun c -> not (Oid.equal c consumer)) o.consumers;
    Heap.mark_dirty db o;
    journal db (J_mutation (M_unsubscribe (reactive, consumer)))
  end

let consumers_of db oid = List.rev (Heap.find_obj db oid).consumers

let raw_class_consumers db cls =
  if not (Hashtbl.mem db.classes cls) then raise (Errors.No_such_class cls);
  Option.value ~default:[] (Hashtbl.find_opt db.class_consumers cls)

let class_consumers_of db cls = List.rev (raw_class_consumers db cls)

let subscribe_class db ~cls ~consumer =
  let old = raw_class_consumers db cls in
  if not (List.exists (Oid.equal consumer) old) then begin
    Transaction.log_undo db (U_class_consumers (cls, old));
    Hashtbl.replace db.class_consumers cls (consumer :: old);
    bump_class_sub_gen db;
    journal db (J_mutation (M_subscribe_class (cls, consumer)))
  end

let unsubscribe_class db ~cls ~consumer =
  let old = raw_class_consumers db cls in
  if List.exists (Oid.equal consumer) old then begin
    Transaction.log_undo db (U_class_consumers (cls, old));
    Hashtbl.replace db.class_consumers cls
      (List.filter (fun c -> not (Oid.equal c consumer)) old);
    bump_class_sub_gen db;
    journal db (J_mutation (M_unsubscribe_class (cls, consumer)))
  end

let set_notify db f = db.notify <- f
let set_route db f = db.route <- f
let add_tap db f = db.taps <- f :: db.taps
let clear_taps db = db.taps <- []

(* --- event generation and delivery -------------------------------------- *)

(* The per-event dedup table is pooled rather than allocated per delivery;
   rule actions can generate further events, so deliver is reentrant and a
   single scratch table would be corrupted mid-iteration. *)
let scratch_acquire db =
  match db.deliver_scratch with
  | t :: rest ->
    db.deliver_scratch <- rest;
    t
  | [] -> Oid.Table.create 32

let scratch_release db t =
  Oid.Table.reset t;
  db.deliver_scratch <- t :: db.deliver_scratch

let broadcast db (o : obj) occ =
  (* Instance-level consumers first, then class-level ones along the chain;
     a consumer subscribed both ways hears the occurrence once. *)
  let seen = scratch_acquire db in
  Fun.protect
    ~finally:(fun () -> scratch_release db seen)
    (fun () ->
      let notify_once c =
        if not (Oid.Table.mem seen c) then begin
          Oid.Table.replace seen c ();
          db.stats.notifications <- db.stats.notifications + 1;
          db.notify db ~consumer:c occ
        end
      in
      iter_rev notify_once o.consumers;
      let class_level cls =
        match Hashtbl.find_opt db.class_consumers cls with
        | Some cs -> iter_rev notify_once cs
        | None -> ()
      in
      List.iter class_level o.info.ri_ancestry)

let deliver db (o : obj) occ =
  db.stats.events_generated <- db.stats.events_generated + 1;
  iter_rev (fun tap -> tap db occ) db.taps;
  match db.route with
  | Some route -> route db o occ
  | None -> broadcast db o occ

let make_occurrence db (o : obj) ~meth ~meth_sym modifier params =
  {
    source = o.id;
    source_class = o.cls;
    class_sym = o.info.ri_layout.ly_class_sym;
    meth;
    meth_sym;
    modifier;
    params;
    at = tick db;
  }

let signal db ~source ~meth ~modifier params =
  let o = Heap.find_obj db source in
  deliver db o
    (make_occurrence db o ~meth ~meth_sym:(Symbol.intern meth) modifier params)

let send_raw db receiver meth args =
  let o = Heap.find_obj db receiver in
  db.stats.sends <- db.stats.sends + 1;
  let i = o.info in
  match Hashtbl.find_opt i.ri_dispatch meth with
  | None -> raise (Errors.No_such_method (o.cls, meth))
  | Some de ->
    if not i.ri_reactive then de.de_method.impl db receiver args
    else begin
      match de.de_iface with
      | None -> de.de_method.impl db receiver args
      | Some entry ->
        if entry.on_begin then
          deliver db o
            (make_occurrence db o ~meth ~meth_sym:de.de_sym Before args);
        let result = de.de_method.impl db receiver args in
        if entry.on_end then
          deliver db o
            (make_occurrence db o ~meth ~meth_sym:de.de_sym After args);
        result
    end

(* A traced send is the root of a cascade: Trace.enter assigns a fresh trace
   id when no span is live, and any rule action sending further messages
   nests inside this span under the same id. *)
let send db receiver meth args =
  if not !Obs.armed then send_raw db receiver meth args
  else begin
    let t0 = Obs.Metrics.enter st_send in
    let tok = Obs.Trace.enter "send" meth in
    match send_raw db receiver meth args with
    | r ->
      Obs.Trace.exit tok;
      Obs.Metrics.exit st_send t0;
      r
    | exception e ->
      Obs.Trace.exit tok;
      Obs.Metrics.exit st_send t0;
      raise e
  end

(* Vectorized send.  Each event of the batch executes exactly as
   [send_raw] — begin-occurrence, implementation, end-occurrence, in batch
   order — so firings, audit entries and detector states are identical to N
   sequential sends.  What the batch amortizes is the observability
   envelope: one "send_many" cascade span (the root every event's cascade
   nests under) and one histogram sample cover the vector, with per-event
   "send" spans sampled 1-in-16 rather than unconditional.  Route-key
   coalescing lives one layer up: [System.ingest] wraps this call in
   [Events.Route.with_batch]. *)
let st_send_many =
  Obs.Metrics.register ~id:(Symbol.intern "db.send_many") "db.send_many"

let send_many_raw db batch =
  List.map (fun (receiver, meth, args) -> send_raw db receiver meth args) batch

let send_many db batch =
  match batch with
  | [] -> []
  | [ (receiver, meth, args) ] -> [ send db receiver meth args ]
  | _ ->
    if not !Obs.armed then send_many_raw db batch
    else begin
      let t0 = Obs.Metrics.enter st_send_many in
      let tok =
        Obs.Trace.enter "send_many"
          (Printf.sprintf "batch:%d" (List.length batch))
      in
      let finish () =
        Obs.Trace.exit tok;
        Obs.Metrics.exit st_send_many t0
      in
      match
        List.mapi
          (fun i (receiver, meth, args) ->
            (* the send stage still counts every event; only the envelope
               (span + timing) is per batch *)
            Obs.Metrics.hit st_send;
            if i land 15 = 0 && !Obs.Trace.on then begin
              let tk = Obs.Trace.enter "send" meth in
              match send_raw db receiver meth args with
              | r ->
                Obs.Trace.exit tk;
                r
              | exception e ->
                Obs.Trace.exit tk;
                raise e
            end
            else send_raw db receiver meth args)
          batch
      with
      | rs ->
        finish ();
        rs
      | exception e ->
        finish ();
        raise e
    end

(* --- extents and indexes ------------------------------------------------ *)

let subclasses db cls =
  Hashtbl.fold
    (fun name i acc ->
      if List.exists (String.equal cls) i.ri_ancestry then name :: acc else acc)
    db.class_info []

let extent db ?(deep = true) cls =
  if not (Hashtbl.mem db.classes cls) then raise (Errors.No_such_class cls);
  let of_class c =
    match Hashtbl.find_opt db.extents c with
    | None -> []
    | Some t -> Oid.Table.fold (fun oid () acc -> oid :: acc) t []
  in
  let oids = if deep then List.concat_map of_class (subclasses db cls) else of_class cls in
  List.sort Oid.compare oids

let create_index db ?(kind = `Hash) ~cls ~attr () =
  if not (Hashtbl.mem db.classes cls) then raise (Errors.No_such_class cls);
  if not (Hashtbl.mem db.indexes (cls, attr)) then begin
    let ix_backing =
      match kind with
      | `Hash -> Ix_hash (Hashtbl.create 64)
      | `Ordered -> Ix_ordered (Btree.create ())
    in
    let ix = { ix_class = cls; ix_attr = attr; ix_backing } in
    Hashtbl.replace db.indexes (cls, attr) ix;
    db.index_gen <- db.index_gen + 1;
    let add oid =
      let o = Heap.find_obj db oid in
      match Heap.obj_get o attr with
      | Some v -> Heap.index_add ix v oid
      | None -> ()
    in
    List.iter add (extent db ~deep:true cls);
    journal db (J_mutation (M_create_index (cls, attr, kind = `Ordered)))
  end

let drop_index db ~cls ~attr =
  if Hashtbl.mem db.indexes (cls, attr) then begin
    Hashtbl.remove db.indexes (cls, attr);
    db.index_gen <- db.index_gen + 1;
    journal db (J_mutation (M_drop_index (cls, attr)))
  end
let has_index db ~cls ~attr = Hashtbl.mem db.indexes (cls, attr)

let index_kind db ~cls ~attr =
  match Hashtbl.find_opt db.indexes (cls, attr) with
  | None -> None
  | Some { ix_backing = Ix_hash _; _ } -> Some `Hash
  | Some { ix_backing = Ix_ordered _; _ } -> Some `Ordered

let find_index db ~cls ~attr =
  match Hashtbl.find_opt db.indexes (cls, attr) with
  | None -> Errors.type_error "no index on %s.%s" cls attr
  | Some ix -> ix

let index_lookup db ~cls ~attr v =
  match (find_index db ~cls ~attr).ix_backing with
  | Ix_hash entries -> (
    match Hashtbl.find_opt entries v with
    | None -> []
    | Some bucket ->
      Oid.Table.fold (fun oid () acc -> oid :: acc) bucket []
      |> List.sort Oid.compare)
  | Ix_ordered tree -> Btree.find tree v

let index_range db ~cls ~attr ?lo ?hi () =
  match (find_index db ~cls ~attr).ix_backing with
  | Ix_hash _ ->
    Errors.type_error "index on %s.%s is a hash index; ranges need ~kind:`Ordered"
      cls attr
  | Ix_ordered tree ->
    Btree.range tree ?lo ?hi () |> List.concat_map snd |> List.sort Oid.compare
