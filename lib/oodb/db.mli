(** The object database: registration, object lifecycle, message dispatch
    with primitive-event generation, and the subscription mechanism.

    This is the Zeitgeist stand-in.  The rule layer ([Sentinel]) installs a
    delivery hook with {!set_notify}; the ADAM baseline instead installs a
    {!add_tap} tap that sees every occurrence, modelling centralized rule
    checking.  The substrate itself knows nothing about rules. *)

type t = Types.db

val create : ?layout:[ `Slots | `Hashtbl ] -> unit -> t
(** [`Slots] (the default) compiles every object to a flat value array
    addressed through its class's slot layout; [`Hashtbl] keeps the legacy
    per-object name-keyed hashtable.  The switch exists so the two
    representations can be benchmarked against each other in one binary;
    both honour the same semantics. *)

val layout_mode : t -> [ `Slots | `Hashtbl ]

(** {1 Schema} *)

val define_class : t -> Schema.t -> unit
(** Registers a class.  Checks: the name is fresh, the superclass (if any)
    exists, and every method named in the event interface resolves along the
    inheritance chain.  A class with a non-empty event interface must be
    reactive (directly or by inheritance).
    @raise Errors.Duplicate_class
    @raise Errors.No_such_class
    @raise Errors.No_such_method
    @raise Errors.Type_error *)

val classes : t -> string list
val has_class : t -> string -> bool

(** {1 Objects} *)

val new_object : t -> ?attrs:(string * Value.t) list -> string -> Oid.t
(** Instantiate a class.  Unlisted attributes take their declared defaults;
    listing an attribute the class does not declare is a
    {!Errors.No_such_attribute} error. *)

val configure_shard : t -> index:int -> of_:int -> unit
(** [configure_shard db ~index ~of_] partitions the OID space for an
    [of_]-way shard pool: this store allocates only OIDs congruent to
    [index mod of_], striding by [of_], so sibling shards' OID spaces are
    disjoint and [Oid.to_int oid mod of_] identifies the owning shard.  The
    stride is not persisted — call again after {!Wal.recover} (alignment
    resumes above whatever replay restored).  [index] must satisfy
    [0 <= index < of_].
    @raise Invalid_argument otherwise. *)

val delete_object : t -> Oid.t -> unit
val exists : t -> Oid.t -> bool
val class_of : t -> Oid.t -> string
val is_instance_of : t -> Oid.t -> string -> bool
(** True when the object's class equals or inherits from the given class. *)

val get : t -> Oid.t -> string -> Value.t
val get_opt : t -> Oid.t -> string -> Value.t option
val set : t -> Oid.t -> string -> Value.t -> unit
(** Direct attribute access.  [set] is undo-logged and index-maintained but
    generates no events: only message dispatch ({!send}) and explicit
    {!signal} generate events, exactly as in the paper where primitive
    events are method invocations. *)

val attrs : t -> Oid.t -> (string * Value.t) list

(** {1 Pre-resolved attribute slots}

    Hot paths that touch the same attribute for many objects (rule
    conditions, the Route index, query plans, workload inner loops) resolve
    the attribute once and then address the compiled slot directly,
    replacing a string hash per access with an integer compare. *)

type slot = Types.slot

val resolve : t -> string -> string -> slot
(** [resolve db cls attr] compiles [cls].[attr] into a slot handle.  Thanks
    to the subclass prefix invariant the handle is valid for every instance
    in [cls]'s deep extent.  Accessors validate the handle against the
    object's current layout and silently re-resolve by name when stale
    (schema evolution) or foreign (resolved against an unrelated class), so
    holding a handle is always safe — at worst it degrades to the string
    path.
    @raise Errors.No_such_class
    @raise Errors.No_such_attribute *)

val slot_get : t -> Oid.t -> slot -> Value.t
val slot_get_opt : t -> Oid.t -> slot -> Value.t option
val slot_set : t -> Oid.t -> slot -> Value.t -> unit
(** Same semantics (undo logging, index maintenance, absence errors) as the
    string-keyed {!get}/{!get_opt}/{!set}. *)

val iter_rev : ('a -> unit) -> 'a list -> unit
(** Iterate a newest-first list in subscription (oldest-first) order.
    Tail-safe: materializes the reversal, so arbitrarily long consumer and
    tap lists do not overflow the stack. *)

(** {1 Message dispatch and event generation} *)

val send : t -> Oid.t -> string -> Value.t list -> Value.t
(** [send db receiver m args] resolves [m] along the receiver's class chain
    and runs it.  When the effective event interface declares [m], a
    begin-of-method and/or end-of-method occurrence is generated and
    propagated: first to global taps, then to the receiver's subscribed
    consumers and to class-level consumers of the receiver's class and its
    ancestors (each distinct consumer is notified once per occurrence). *)

val send_many : t -> (Oid.t * string * Value.t list) list -> Value.t list
(** Vectorized {!send}: run each [(receiver, m, args)] of the batch in
    order and return the results in order.  Observationally equivalent to N
    sequential sends — each event still generates and delivers its
    begin/end occurrences at exactly the same points relative to method
    execution — but the batch pays one observability envelope (one
    "send_many" cascade span all the events' cascades nest under, one
    histogram sample, per-event "send" spans sampled 1-in-16) instead of N.
    An exception aborts the remainder of the batch and propagates; pair
    with {!Transaction.atomically} (as {!System.ingest} does) for
    all-or-nothing ingestion. *)

val signal :
  t -> source:Oid.t -> meth:string -> modifier:Types.modifier -> Value.t list -> unit
(** Explicitly generate a primitive event from inside a method body (paper
    footnote 3: "the class designer can also explicitly generate other
    primitive events, within the body of the method"). *)

(** {1 Subscription (paper §3.5, §4.1)} *)

val subscribe : t -> reactive:Oid.t -> consumer:Oid.t -> unit
(** Append [consumer] to the reactive object's consumers list (idempotent).
    Undo-logged. *)

val unsubscribe : t -> reactive:Oid.t -> consumer:Oid.t -> unit
val consumers_of : t -> Oid.t -> Oid.t list

val subscribe_class : t -> cls:string -> consumer:Oid.t -> unit
(** Class-level subscription: the consumer hears events from every instance
    of [cls] and its subclasses — the mechanism behind class-level rules. *)

val unsubscribe_class : t -> cls:string -> consumer:Oid.t -> unit
val class_consumers_of : t -> string -> Oid.t list

val set_notify : t -> (t -> consumer:Oid.t -> Types.occurrence -> unit) -> unit
(** Install the delivery hook used for subscribed consumers. *)

val set_route : t -> (t -> Types.obj -> Types.occurrence -> unit) option -> unit
(** Install (or clear, with [None]) a whole-occurrence routing hook.  When
    set, {!deliver} hands each occurrence to the hook exactly once — with the
    source object, so the hook can consult its subscription lists — instead
    of fanning out per subscribed consumer.  The rule layer uses this to
    route through a shared predicate index ({!Events.Route}); taps still see
    every occurrence first. *)

val schema_generation : t -> int
(** Monotone counter bumped by {!define_class} and by {!Evolution} DDL.
    Caches derived from the class hierarchy (e.g. precomputed subsumption
    sets) compare stamps instead of subscribing to change notifications. *)

val class_sub_generation : t -> int
(** Monotone counter bumped whenever any class-level subscription changes,
    including restoration by transaction rollback. *)

val add_tap : t -> (t -> Types.occurrence -> unit) -> unit
(** Register a centralized listener that receives every occurrence. *)

val clear_taps : t -> unit

(** {1 Extents, indexes} *)

val subclasses : t -> string -> string list
(** The class itself plus every class inheriting from it (unsorted).
    Returns [[]] for undefined classes. *)

val extent : t -> ?deep:bool -> string -> Oid.t list
(** Instances of a class; [~deep:true] (default) includes subclasses. *)

val create_index :
  t -> ?kind:[ `Hash | `Ordered ] -> cls:string -> attr:string -> unit -> unit
(** Secondary index over [attr] for instances of [cls] and its subclasses,
    maintained by every subsequent mutation.  [`Hash] (default) serves
    equality probes; [`Ordered] is a B+-tree ({!Btree}) that additionally
    serves range scans.  Idempotent per (class, attribute). *)

val drop_index : t -> cls:string -> attr:string -> unit

val index_lookup : t -> cls:string -> attr:string -> Value.t -> Oid.t list
(** Equality probe (either kind).
    @raise Errors.Type_error when no such index exists. *)

val index_range :
  t ->
  cls:string ->
  attr:string ->
  ?lo:Value.t * bool ->
  ?hi:Value.t * bool ->
  unit ->
  Oid.t list
(** Range probe over an ordered index; bounds are [(value, inclusive)].
    @raise Errors.Type_error when the index is missing or hash-backed. *)

val has_index : t -> cls:string -> attr:string -> bool
val index_kind : t -> cls:string -> attr:string -> [ `Hash | `Ordered ] option

(** {1 Clock and statistics} *)

val now : t -> Types.timestamp
val tick : t -> Types.timestamp
(** Advance the logical clock and return the new timestamp. *)

val advance_clock : t -> Types.timestamp -> unit
(** Move the logical clock forward to at least the given instant (earlier
    instants are ignored).  Used to drive temporal (periodic/relative)
    events without generating occurrences. *)

val stats : t -> Types.stats
val reset_stats : t -> unit

(**/**)

val compute_info : t -> Types.class_def -> Types.class_info
(** Internal: used by {!Evolution} to refresh flattened class caches. *)

val bump_schema_gen : t -> unit
(** Internal: {!Evolution} invalidates schema-derived caches after DDL. *)

(**/**)
