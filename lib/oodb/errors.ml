exception No_such_class of string
exception Duplicate_class of string
exception No_such_object of Oid.t
exception Dead_object of Oid.t
exception No_such_method of string * string
exception No_such_attribute of string * string
exception Type_error of string
exception Transaction_error of string
exception Lock_conflict of Oid.t * string
exception Rule_abort of string
exception Parse_error of string

exception Io_error of string
(* Transient storage failure (e.g. an injected fault or a short write);
   callers may retry with bounded backoff (Storage.with_retries). *)

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let () =
  Printexc.register_printer (function
    | No_such_class c -> Some (Printf.sprintf "No_such_class %S" c)
    | Duplicate_class c -> Some (Printf.sprintf "Duplicate_class %S" c)
    | No_such_object o -> Some ("No_such_object " ^ Oid.to_string o)
    | Dead_object o -> Some ("Dead_object " ^ Oid.to_string o)
    | No_such_method (c, m) -> Some (Printf.sprintf "No_such_method %S::%S" c m)
    | No_such_attribute (c, a) ->
      Some (Printf.sprintf "No_such_attribute %S.%S" c a)
    | Type_error m -> Some ("Type_error: " ^ m)
    | Transaction_error m -> Some ("Transaction_error: " ^ m)
    | Lock_conflict (o, m) ->
      Some (Printf.sprintf "Lock_conflict on %s: %s" (Oid.to_string o) m)
    | Rule_abort m -> Some ("Rule_abort: " ^ m)
    | Parse_error m -> Some ("Parse_error: " ^ m)
    | Io_error m -> Some ("Io_error: " ^ m)
    | _ -> None)
