(** Exceptions shared by the substrate and the rule layer. *)

exception No_such_class of string
exception Duplicate_class of string
exception No_such_object of Oid.t
exception Dead_object of Oid.t  (** the OID named a deleted object *)

exception No_such_method of string * string
(** [(class, method)]: message not understood anywhere along the chain. *)

exception No_such_attribute of string * string  (** [(class, attribute)] *)

exception Type_error of string

exception Transaction_error of string
(** commit/abort without an open transaction, and similar misuse. *)

exception Lock_conflict of Oid.t * string
(** A session could not acquire a lock (holder description attached).
    No-wait two-phase locking: the requester should abort and retry. *)

exception Rule_abort of string
(** Raised by a rule action (or an Ode hard constraint) to abort the
    triggering transaction — the paper's [A: abort] in Figure 9. *)

exception Parse_error of string
(** Event-signature or persistence-format syntax errors. *)

exception Io_error of string
(** Transient storage failure (an injected fault, a short write).  Retryable:
    see {!Storage.with_retries}. *)

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)
