open Types

let ddl_guard db what =
  if Transaction.in_progress db then
    raise
      (Errors.Transaction_error
         (Printf.sprintf "%s is DDL and cannot run inside a transaction" what))

let journal db e = match db.on_journal with Some f -> f e | None -> ()

(* Re-derive the flattened class_info caches for [cls] and everything below
   it, then migrate every stored instance onto its class's fresh info
   (rewriting slot arrays when the attribute set changed — Heap.migrate_obj
   carries values across by symbol).  Parents first, so each recomputation
   sees fresh parent info and the subclass prefix invariant holds while we
   rebuild. *)
let refresh_info db cls =
  let affected =
    Hashtbl.fold
      (fun name info acc ->
        if List.exists (String.equal cls) info.ri_ancestry then
          (name, List.length info.ri_ancestry) :: acc
        else acc)
      db.class_info []
    |> List.sort (fun (_, d1) (_, d2) -> Int.compare d1 d2)
  in
  List.iter
    (fun (name, _) ->
      let ninfo = Db.compute_info db (Schema.find db name) in
      Hashtbl.replace db.class_info name ninfo;
      match Hashtbl.find_opt db.extents name with
      | None -> ()
      | Some ext ->
        Oid.Table.iter
          (fun oid () -> Heap.migrate_obj (Heap.find_obj_any db oid) ninfo)
          ext)
    affected;
  Db.bump_schema_gen db

let declares_attr (c : class_def) attr = List.mem_assoc attr c.attr_spec

let subclasses_declaring db cls attr =
  Hashtbl.fold
    (fun name info acc ->
      if
        List.exists (String.equal cls) info.ri_ancestry
        && declares_attr (Schema.find db name) attr
      then name :: acc
      else acc)
    db.class_info []

let add_attribute db ~cls ~attr ~default =
  ddl_guard db "add_attribute";
  let c = Schema.find db cls in
  if List.mem_assoc attr (Schema.all_attrs db cls) then
    Errors.type_error "class %s already has attribute %s (possibly inherited)"
      cls attr;
  (match subclasses_declaring db cls attr with
  | [] -> ()
  | sub :: _ ->
    Errors.type_error "subclass %s already declares attribute %s" sub attr);
  c.attr_spec <- c.attr_spec @ [ (attr, default) ];
  (* new layouts first (the fresh slot starts absent), then backfill every
     stored instance of the class and its subclasses *)
  refresh_info db cls;
  let instances = Db.extent db ~deep:true cls in
  List.iter
    (fun oid ->
      let o = Heap.find_obj db oid in
      match Heap.obj_get o attr with
      | None -> ignore (Heap.raw_set_attr db o attr (Some default))
      | Some _ -> ())
    instances;
  List.length instances

let remove_attribute db ~cls ~attr =
  ddl_guard db "remove_attribute";
  let c = Schema.find db cls in
  if not (declares_attr c attr) then
    Errors.type_error "class %s does not itself declare attribute %s" cls attr;
  (* strip stored values while the old layouts still carry the slot, so
     covering indexes are maintained; then shrink the layouts *)
  let instances = Db.extent db ~deep:true cls in
  List.iter
    (fun oid ->
      let o = Heap.find_obj db oid in
      match Heap.obj_get o attr with
      | Some _ -> ignore (Heap.raw_set_attr db o attr None)
      | None -> ())
    instances;
  c.attr_spec <- List.remove_assoc attr c.attr_spec;
  refresh_info db cls;
  List.length instances

let rename_attribute db ~cls ~attr ~into =
  ddl_guard db "rename_attribute";
  let c = Schema.find db cls in
  if not (declares_attr c attr) then
    Errors.type_error "class %s does not itself declare attribute %s" cls attr;
  if String.equal attr into then
    Errors.type_error "rename_attribute: %s already is the name" attr;
  if List.mem_assoc into (Schema.all_attrs db cls) then
    Errors.type_error "class %s already has attribute %s (possibly inherited)"
      cls into;
  (match subclasses_declaring db cls into with
  | [] -> ()
  | sub :: _ ->
    Errors.type_error "subclass %s already declares attribute %s" sub into);
  (* Pull values (and their index entries) out under the old layout... *)
  let instances = Db.extent db ~deep:true cls in
  let carried =
    List.filter_map
      (fun oid ->
        let o = Heap.find_obj db oid in
        match Heap.raw_set_attr db o attr None with
        | Some v -> Some (oid, v)
        | None -> None)
      instances
  in
  (* ...re-key any index on the attribute (instances they covered are all in
     [instances], so the backings are empty of live entries by now)... *)
  List.iter
    (fun c2 ->
      match Hashtbl.find_opt db.indexes (c2, attr) with
      | None -> ()
      | Some ix ->
        Hashtbl.remove db.indexes (c2, attr);
        ix.ix_attr <- into;
        Hashtbl.replace db.indexes (c2, into) ix;
        journal db (J_mutation (M_drop_index (c2, attr)));
        journal db
          (J_mutation
             (M_create_index
                (c2, into, match ix.ix_backing with Ix_ordered _ -> true | Ix_hash _ -> false))))
    (Db.subclasses db cls);
  db.index_gen <- db.index_gen + 1;
  (* ...rename in the spec at its declared position (slot order is part of
     the layout contract, so a rename must not move the slot)... *)
  c.attr_spec <-
    List.map (fun (n, d) -> if String.equal n attr then (into, d) else (n, d)) c.attr_spec;
  refresh_info db cls;
  (* ...and put the values back under the new name (re-indexing them). *)
  List.iter
    (fun (oid, v) ->
      ignore (Heap.raw_set_attr db (Heap.find_obj db oid) into (Some v)))
    carried;
  List.length instances

let add_method db ~cls mname impl =
  ddl_guard db "add_method";
  let c = Schema.find db cls in
  if Hashtbl.mem c.methods mname then
    Errors.type_error "class %s already defines method %s" cls mname;
  Hashtbl.replace c.methods mname { mname; impl };
  (* dispatch tables are precomputed per class *)
  refresh_info db cls

let add_event_generator db ~cls ~meth when_ =
  ddl_guard db "add_event_generator";
  let c = Schema.find db cls in
  (* the method must be understood by instances of this class *)
  let (_ : method_def) = Schema.lookup_method db cls meth in
  let entry =
    match when_ with
    | Schema.On_begin -> { on_begin = true; on_end = false }
    | Schema.On_end -> { on_begin = false; on_end = true }
    | Schema.On_both -> { on_begin = true; on_end = true }
  in
  Hashtbl.replace c.interface meth entry;
  if not c.reactive then c.reactive <- true;
  refresh_info db cls

let remove_event_generator db ~cls ~meth =
  ddl_guard db "remove_event_generator";
  let c = Schema.find db cls in
  if Hashtbl.mem c.interface meth then begin
    Hashtbl.remove c.interface meth;
    refresh_info db cls
  end
