open Types

let ddl_guard db what =
  if Transaction.in_progress db then
    raise
      (Errors.Transaction_error
         (Printf.sprintf "%s is DDL and cannot run inside a transaction" what))

(* Re-derive the flattened class_info caches for [cls] and everything below
   it.  Parents first, so each recomputation sees fresh parent info. *)
let refresh_info db cls =
  let affected =
    Hashtbl.fold
      (fun name info acc ->
        if List.exists (String.equal cls) info.ri_ancestry then
          (name, List.length info.ri_ancestry) :: acc
        else acc)
      db.class_info []
    |> List.sort (fun (_, d1) (_, d2) -> Int.compare d1 d2)
  in
  List.iter
    (fun (name, _) ->
      Hashtbl.replace db.class_info name
        (Db.compute_info db (Schema.find db name)))
    affected;
  Db.bump_schema_gen db

let declares_attr (c : class_def) attr = List.mem_assoc attr c.attr_spec

let subclasses_declaring db cls attr =
  Hashtbl.fold
    (fun name info acc ->
      if
        List.exists (String.equal cls) info.ri_ancestry
        && declares_attr (Schema.find db name) attr
      then name :: acc
      else acc)
    db.class_info []

let add_attribute db ~cls ~attr ~default =
  ddl_guard db "add_attribute";
  let c = Schema.find db cls in
  if List.mem_assoc attr (Schema.all_attrs db cls) then
    Errors.type_error "class %s already has attribute %s (possibly inherited)"
      cls attr;
  (match subclasses_declaring db cls attr with
  | [] -> ()
  | sub :: _ ->
    Errors.type_error "subclass %s already declares attribute %s" sub attr);
  c.attr_spec <- c.attr_spec @ [ (attr, default) ];
  (* backfill every stored instance of the class and its subclasses *)
  let instances = Db.extent db ~deep:true cls in
  List.iter
    (fun oid ->
      let o = Heap.find_obj db oid in
      if not (Hashtbl.mem o.attrs attr) then
        ignore (Heap.raw_set_attr db o attr (Some default)))
    instances;
  List.length instances

let remove_attribute db ~cls ~attr =
  ddl_guard db "remove_attribute";
  let c = Schema.find db cls in
  if not (declares_attr c attr) then
    Errors.type_error "class %s does not itself declare attribute %s" cls attr;
  c.attr_spec <- List.remove_assoc attr c.attr_spec;
  let instances = Db.extent db ~deep:true cls in
  List.iter
    (fun oid ->
      let o = Heap.find_obj db oid in
      if Hashtbl.mem o.attrs attr then ignore (Heap.raw_set_attr db o attr None))
    instances;
  List.length instances

let add_method db ~cls mname impl =
  ddl_guard db "add_method";
  let c = Schema.find db cls in
  if Hashtbl.mem c.methods mname then
    Errors.type_error "class %s already defines method %s" cls mname;
  Hashtbl.replace c.methods mname { mname; impl }

let add_event_generator db ~cls ~meth when_ =
  ddl_guard db "add_event_generator";
  let c = Schema.find db cls in
  (* the method must be understood by instances of this class *)
  let (_ : method_def) = Schema.lookup_method db cls meth in
  let entry =
    match when_ with
    | Schema.On_begin -> { on_begin = true; on_end = false }
    | Schema.On_end -> { on_begin = false; on_end = true }
    | Schema.On_both -> { on_begin = true; on_end = true }
  in
  Hashtbl.replace c.interface meth entry;
  if not c.reactive then c.reactive <- true;
  refresh_info db cls

let remove_event_generator db ~cls ~meth =
  ddl_guard db "remove_event_generator";
  let c = Schema.find db cls in
  if Hashtbl.mem c.interface meth then begin
    Hashtbl.remove c.interface meth;
    refresh_info db cls
  end
