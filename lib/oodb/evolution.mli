(** Runtime schema evolution.

    The paper's §2 motivation: systems that fix behaviour at
    class-definition time "present some difficulties to already existing
    and stored instances of the class, thereby compromising the
    extensibility of the system".  This module evolves live classes:

    - {!add_attribute} extends a class and {e backfills} every stored
      instance (its own and its subclasses') with the default;
    - {!add_method} teaches a class a new message;
    - {!add_event_generator} promotes an existing method to a primitive
      event generator — the key move: an object designed without monitoring
      in mind becomes monitorable without touching its definition source or
      its stored instances;
    - {!remove_event_generator} demotes it again.

    Schema changes are DDL: they auto-commit and are refused inside a
    transaction (the attribute backfill is not undoable).  Like class
    registration itself, they are code-level and therefore not persisted —
    an application that evolves its schema re-applies the evolution after
    registering classes, before loading data. *)

val add_attribute : Db.t -> cls:string -> attr:string -> default:Value.t -> int
(** Returns the number of instances backfilled.
    @raise Errors.Type_error when the attribute already exists anywhere in
    the inheritance chain (or is declared by a subclass)
    @raise Errors.Transaction_error inside a transaction *)

val remove_attribute : Db.t -> cls:string -> attr:string -> int
(** Drop an attribute declared by exactly this class; removes the stored
    value from every instance (and any index on it).  Returns instances
    touched.
    @raise Errors.Type_error when the class does not itself declare it *)

val rename_attribute : Db.t -> cls:string -> attr:string -> into:string -> int
(** Rename an attribute declared by exactly this class, carrying every
    stored value (and re-keying any index on the attribute) to the new
    name.  The attribute keeps its declared position, so its slot index in
    compiled layouts is unchanged.  Returns instances touched.
    @raise Errors.Type_error when the class does not itself declare [attr],
    or [into] already exists in the chain or in a subclass *)

val add_method : Db.t -> cls:string -> string -> Schema.method_impl -> unit
(** @raise Errors.Type_error when the class already defines the method
    (inherited methods may be overridden). *)

val add_event_generator : Db.t -> cls:string -> meth:string -> Schema.event_when -> unit
(** Declare that invocations of [meth] (which must resolve on [cls])
    generate events; makes the class reactive if it was passive.
    Overwrites an existing entry for the method on this class. *)

val remove_event_generator : Db.t -> cls:string -> meth:string -> unit
(** Remove this class's own interface entry for the method (an inherited
    entry, if any, becomes visible again).  No-op when absent. *)
