(* Raw heap mutations shared by Db (the logging, event-raising front door)
   and Transaction (undo replay).  Nothing here logs undo records or raises
   events; callers are responsible for that.

   Objects carry one of two attribute stores (Types.attr_store): the
   compiled S_slots array addressed through the class layout, or the legacy
   S_table hashtable kept as the measured baseline.  Everything below is
   polymorphic over the store so the rest of the system never matches on the
   representation. *)

open Types

let find_obj db oid =
  match Oid.Table.find_opt db.objects oid with
  | None -> raise (Errors.No_such_object oid)
  | Some o when not o.alive -> raise (Errors.Dead_object oid)
  | Some o -> o

let find_obj_any db oid =
  (* Used by undo replay, which may legitimately touch dead objects. *)
  match Oid.Table.find_opt db.objects oid with
  | None -> raise (Errors.No_such_object oid)
  | Some o -> o

let class_info db cls =
  match Hashtbl.find_opt db.class_info cls with
  | Some i -> i
  | None -> raise (Errors.No_such_class cls)

let extent_table db cls =
  match Hashtbl.find_opt db.extents cls with
  | Some t -> t
  | None ->
    let t = Oid.Table.create 16 in
    Hashtbl.replace db.extents cls t;
    t

let add_to_extent db cls oid = Oid.Table.replace (extent_table db cls) oid ()
let remove_from_extent db cls oid = Oid.Table.remove (extent_table db cls) oid

(* All indexes that cover attribute [attr] of an instance whose runtime class
   is [cls]: an index declared on (C, a) covers instances of C and of every
   subclass of C. *)
let covering_indexes db cls attr =
  List.filter_map
    (fun c -> Hashtbl.find_opt db.indexes (c, attr))
    (Schema.ancestry db cls)

(* Slot-mode covering lookup: cached per layout slot, refreshed when the
   database's index generation moved. *)
let covering_of_slot db (ly : layout) i =
  if ly.ly_ix_stamp <> db.index_gen then begin
    Array.iteri
      (fun j name -> ly.ly_covering.(j) <- covering_indexes db ly.ly_class name)
      ly.ly_names;
    ly.ly_ix_stamp <- db.index_gen
  end;
  Array.unsafe_get ly.ly_covering i

let index_remove ix v oid =
  match ix.ix_backing with
  | Ix_hash entries -> (
    match Hashtbl.find_opt entries v with
    | None -> ()
    | Some bucket ->
      Oid.Table.remove bucket oid;
      if Oid.Table.length bucket = 0 then Hashtbl.remove entries v)
  | Ix_ordered tree -> Btree.remove tree v oid

let index_add ix v oid =
  match ix.ix_backing with
  | Ix_hash entries ->
    let bucket =
      match Hashtbl.find_opt entries v with
      | Some b -> b
      | None ->
        let b = Oid.Table.create 4 in
        Hashtbl.replace entries v b;
        b
    in
    Oid.Table.replace bucket oid ()
  | Ix_ordered tree -> Btree.insert tree v oid

(* --- store access -------------------------------------------------------- *)

let layout_of (o : obj) = o.info.ri_layout

(* Slot index of [name] in the object's layout, or -1. *)
let slot_by_name (o : obj) name =
  match Hashtbl.find_opt (layout_of o).ly_by_name name with
  | Some i -> i
  | None -> -1

let obj_get (o : obj) name =
  match o.store with
  | S_table tbl -> Hashtbl.find_opt tbl name
  | S_slots slots -> (
    match Hashtbl.find_opt (layout_of o).ly_by_name name with
    | None -> None
    | Some i ->
      let v = Array.unsafe_get slots i in
      if v == absent then None else Some v)

let iter_attrs f (o : obj) =
  match o.store with
  | S_table tbl -> Hashtbl.iter f tbl
  | S_slots slots ->
    let ly = layout_of o in
    Array.iteri (fun i v -> if v != absent then f ly.ly_names.(i) v) slots

let sorted_attrs (o : obj) =
  let acc = ref [] in
  iter_attrs (fun k v -> acc := (k, v) :: !acc) o;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* Write without index maintenance or undo logging: object construction and
   schema-evolution plumbing.  @raise No_such_attribute in slot mode when
   the layout has no slot for [name]. *)
let store_put_raw (o : obj) name v =
  match o.store with
  | S_table tbl -> Hashtbl.replace tbl name v
  | S_slots slots ->
    let i = slot_by_name o name in
    if i < 0 then raise (Errors.No_such_attribute (o.cls, name))
    else slots.(i) <- v

(* Lenient variant for snapshot loading: an attribute the current layout
   does not declare is dropped (the hashtable store keeps it, preserving the
   legacy behaviour of carrying undeclared snapshot attributes). *)
let store_put_loose (o : obj) name v =
  match o.store with
  | S_table tbl -> Hashtbl.replace tbl name v
  | S_slots slots ->
    let i = slot_by_name o name in
    if i >= 0 then slots.(i) <- v

let store_remove_raw (o : obj) name =
  match o.store with
  | S_table tbl -> Hashtbl.remove tbl name
  | S_slots slots ->
    let i = slot_by_name o name in
    if i >= 0 then slots.(i) <- absent

(* --- construction -------------------------------------------------------- *)

(* A fresh store for an instance of [info]'s class: [`Defaults] seeds every
   declared attribute with its default (object creation), [`Empty] starts
   all-absent (snapshot loading, which replays the saved attributes on
   top). *)
let fresh_store db (info : class_info) seed =
  let ly = info.ri_layout in
  if db.slots_mode then
    S_slots
      (match seed with
      | `Defaults -> Array.copy ly.ly_defaults
      | `Empty -> Array.make (Array.length ly.ly_defaults) absent)
  else begin
    let tbl = Hashtbl.create (max 4 (Array.length ly.ly_names)) in
    (match seed with
    | `Defaults ->
      Array.iteri (fun i n -> Hashtbl.replace tbl n ly.ly_defaults.(i)) ly.ly_names
    | `Empty -> ());
    S_table tbl
  end

let make_obj db ~id ~cls ~info ~seed ~consumers =
  {
    id;
    cls;
    info;
    store = fresh_store db info seed;
    consumers;
    alive = true;
    dirty_gen = 0;
  }

(* --- mutation ------------------------------------------------------------ *)

(* Dirty tracking for incremental checkpoints: the generation stamp keeps
   the steady-state cost of re-touching an already-dirty object to one
   load+compare; the hashtable write happens once per object per epoch. *)
let mark_dirty db (o : obj) =
  if o.dirty_gen <> db.ckpt_gen then begin
    o.dirty_gen <- db.ckpt_gen;
    Oid.Table.replace db.dirty o.id ()
  end

let clear_dirty db =
  Oid.Table.reset db.dirty;
  Oid.Table.reset db.dirty_dead;
  db.ckpt_gen <- db.ckpt_gen + 1

(* Set or remove ([v = None]) the attribute at slot [i], keeping covering
   indexes in sync.  Returns the previous binding.  Slot stores only. *)
let raw_set_slot db (o : obj) i v =
  match o.store with
  | S_table _ -> invalid_arg "Heap.raw_set_slot: hashtable store"
  | S_slots slots ->
    mark_dirty db o;
    let cur = Array.unsafe_get slots i in
    let old = if cur == absent then None else Some cur in
    let ixs = covering_of_slot db (layout_of o) i in
    (match (ixs, old) with
    | [], _ | _, None -> ()
    | ixs, Some ov -> List.iter (fun ix -> index_remove ix ov o.id) ixs);
    (match v with
    | Some nv ->
      Array.unsafe_set slots i nv;
      if ixs <> [] then List.iter (fun ix -> index_add ix nv o.id) ixs
    | None -> Array.unsafe_set slots i absent);
    old

(* Set or remove ([v = None]) an attribute by name, keeping covering indexes
   in sync.  Returns the previous binding. *)
let raw_set_attr db (o : obj) name v =
  match o.store with
  | S_slots _ -> (
    let i = slot_by_name o name in
    if i >= 0 then raw_set_slot db o i v
    else
      match v with
      | None -> None (* removing an attribute the layout never had *)
      | Some _ -> raise (Errors.No_such_attribute (o.cls, name)))
  | S_table tbl ->
    mark_dirty db o;
    let old = Hashtbl.find_opt tbl name in
    let ixs = covering_indexes db o.cls name in
    List.iter
      (fun ix -> match old with Some ov -> index_remove ix ov o.id | None -> ())
      ixs;
    (match v with
    | Some nv ->
      Hashtbl.replace tbl name nv;
      List.iter (fun ix -> index_add ix nv o.id) ixs
    | None -> Hashtbl.remove tbl name);
    old

let index_all_attrs db o =
  iter_attrs
    (fun name v ->
      List.iter (fun ix -> index_add ix v o.id) (covering_indexes db o.cls name))
    o

let unindex_all_attrs db o =
  iter_attrs
    (fun name v ->
      List.iter
        (fun ix -> index_remove ix v o.id)
        (covering_indexes db o.cls name))
    o

let insert_obj db o =
  Oid.Table.replace db.objects o.id o;
  add_to_extent db o.cls o.id;
  index_all_attrs db o;
  mark_dirty db o;
  (* undo of a delete resurrects the OID: it is live again, not dead *)
  Oid.Table.remove db.dirty_dead o.id

let remove_obj db o =
  unindex_all_attrs db o;
  remove_from_extent db o.cls o.id;
  Oid.Table.remove db.objects o.id;
  Oid.Table.remove db.dirty o.id;
  o.dirty_gen <- 0;
  Oid.Table.replace db.dirty_dead o.id ()

(* --- schema evolution support -------------------------------------------- *)

(* Re-point an object at its class's freshly computed info, rewriting the
   slot array when the layout's attribute set changed.  Values are carried
   by symbol; slots new to the layout start absent (Evolution backfills and
   indexes them explicitly), and values whose slot disappeared are dropped
   (Evolution unindexed them before the spec change). *)
let migrate_obj (o : obj) (ninfo : class_info) =
  (match o.store with
  | S_table _ -> ()
  | S_slots slots ->
    let oly = o.info.ri_layout and nly = ninfo.ri_layout in
    if oly != nly && oly.ly_syms <> nly.ly_syms then begin
      let fresh = Array.make (Array.length nly.ly_syms) absent in
      Array.iteri
        (fun i s ->
          match Hashtbl.find_opt oly.ly_by_sym s with
          | Some j -> fresh.(i) <- slots.(j)
          | None -> ())
        nly.ly_syms;
      o.store <- S_slots fresh
    end);
  o.info <- ninfo
