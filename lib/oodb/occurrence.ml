type t = Types.occurrence = {
  source : Oid.t;
  source_class : string;
  class_sym : Symbol.t;
  meth : string;
  meth_sym : Symbol.t;
  modifier : Types.modifier;
  params : Value.t list;
  at : Types.timestamp;
}

let make ~source ~source_class ~meth ~modifier ~params ~at =
  {
    source;
    source_class;
    class_sym = Symbol.intern source_class;
    meth;
    meth_sym = Symbol.intern meth;
    modifier;
    params;
    at;
  }

let modifier_to_string = function Types.Before -> "begin" | Types.After -> "end"

let modifier_of_string = function
  | "begin" | "before" -> Types.Before
  | "end" | "after" -> Types.After
  | s -> raise (Errors.Parse_error ("unknown event modifier: " ^ s))

let equal a b =
  a.at = b.at
  && Oid.equal a.source b.source
  && Symbol.equal a.meth_sym b.meth_sym
  && a.modifier = b.modifier
  && Symbol.equal a.class_sym b.class_sym
  && List.equal Value.equal a.params b.params

let modifier_rank = function Types.Before -> 0 | Types.After -> 1

let compare a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Oid.compare a.source b.source in
    if c <> 0 then c
    else
      let c = String.compare a.meth b.meth in
      if c <> 0 then c
      else
        (* A begin and an end of the same method share a timestamp only when
           raised by distinct sends in one clock tick; order begins first so
           merged detector streams stay deterministic. *)
        let c = Int.compare (modifier_rank a.modifier) (modifier_rank b.modifier) in
        if c <> 0 then c else String.compare a.source_class b.source_class

let pp ppf o =
  Format.fprintf ppf "%s %s::%s%a@@t%d" (modifier_to_string o.modifier)
    o.source_class o.meth
    (fun ppf params ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Value.pp)
        params)
    o.params o.at

let to_string o = Format.asprintf "%a" pp o
