(** Primitive event occurrences.

    The record itself is defined in {!Types} (it is part of the recursive
    knot); this module provides construction, comparison and printing.

    [class_sym] and [meth_sym] are the interned counterparts of
    [source_class] and [meth]; {!make} keeps them consistent, and consumers
    on per-event hot paths (routing, detector leaf matching) compare the
    symbols instead of the strings. *)

type t = Types.occurrence = {
  source : Oid.t;
  source_class : string;
  class_sym : Symbol.t;
  meth : string;
  meth_sym : Symbol.t;
  modifier : Types.modifier;
  params : Value.t list;
  at : Types.timestamp;
}

val make :
  source:Oid.t ->
  source_class:string ->
  meth:string ->
  modifier:Types.modifier ->
  params:Value.t list ->
  at:Types.timestamp ->
  t
(** Builds an occurrence, interning [source_class] and [meth]. *)

val modifier_to_string : Types.modifier -> string
(** ["begin"] / ["end"], matching the paper's event-signature syntax. *)

val modifier_of_string : string -> Types.modifier
(** Accepts ["begin"], ["before"], ["end"], ["after"].
    @raise Errors.Parse_error otherwise. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total over the identifying fields: timestamp, then source, then method,
    then modifier ([Before] before [After]), then source class.  Detector
    merge sorts by this, so two distinct occurrences must never compare
    equal merely because they share a timestamp, source and method. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
