(** The object-database substrate — the role Zeitgeist plays in the paper.

    Start at {!Db} (object lifecycle, message dispatch, subscription) and
    {!Schema} (class definitions with event interfaces).  The storage
    services around them: {!Transaction} (nested, undo-logged), {!Persist}
    (snapshots), {!Wal} (write-ahead logging and crash recovery), {!Storage}
    (pluggable file I/O with a fault-injecting in-memory backend), {!Query}
    / {!Query_parser} (predicate selection with index planning), {!Btree}
    (ordered index backing), {!Evolution} (runtime schema changes), {!Gc}
    (reachability collection) and {!Introspect} (reports).

    {!Types} holds the shared record definitions; {!Occurrence} is the
    primitive-event record the event layer consumes. *)

module Oid = Oid
module Symbol = Symbol
module Value = Value
module Errors = Errors
module Types = Types
module Schema = Schema
module Transaction = Transaction
module Db = Db
module Occurrence = Occurrence
module Query = Query
module Query_parser = Query_parser
module Persist = Persist
module Storage = Storage
module Btree = Btree
module Wal = Wal
module Evolution = Evolution
module Gc = Gc
module Introspect = Introspect
module Session = Session
module Verify = Verify
