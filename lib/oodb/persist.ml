open Types

let magic = "SENTINELDB 1"

(* --- value encoding ------------------------------------------------------
   Single-token grammar (no whitespace):
     n | b:t | b:f | i:<int> | f:<hex float> | o:<int>
     s:<escaped>          %XX-escaping for bytes outside the safe set
     l(<enc>,<enc>,...)   recursive; l() is the empty list                  *)

let safe_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '.' | '-' | '_' | '/' | '@' | '!' | '?' | '+' | '*' | '=' | '<' | '>' -> true
  | _ -> false

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if safe_char c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let rec encode_value = function
  | Value.Null -> "n"
  | Value.Bool true -> "b:t"
  | Value.Bool false -> "b:f"
  | Value.Int n -> "i:" ^ string_of_int n
  | Value.Float f -> Printf.sprintf "f:%h" f
  | Value.Str s -> "s:" ^ escape s
  | Value.Obj o -> "o:" ^ string_of_int (Oid.to_int o)
  | Value.List vs -> "l(" ^ String.concat "," (List.map encode_value vs) ^ ")"

exception Bad of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Errors.Parse_error s)) fmt

(* Cursor-based recursive descent over the token. *)
let decode_value s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
  in
  (* scan until one of the delimiters [,)] or end of string *)
  let scan_token () =
    let start = !pos in
    while !pos < n && s.[!pos] <> ',' && s.[!pos] <> ')' do
      advance ()
    done;
    String.sub s start (!pos - start)
  in
  let unescape t =
    let buf = Buffer.create (String.length t) in
    let i = ref 0 in
    let m = String.length t in
    while !i < m do
      if t.[!i] = '%' then begin
        if !i + 2 >= m then raise (Bad "truncated escape");
        let hex = String.sub t (!i + 1) 2 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> raise (Bad ("bad escape %" ^ hex)));
        i := !i + 3
      end
      else begin
        Buffer.add_char buf t.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let rec value () =
    match peek () with
    | None -> raise (Bad "empty value")
    | Some 'n' ->
      advance ();
      Value.Null
    | Some 'b' ->
      advance ();
      expect ':';
      (match peek () with
      | Some 't' ->
        advance ();
        Value.Bool true
      | Some 'f' ->
        advance ();
        Value.Bool false
      | _ -> raise (Bad "bad bool"))
    | Some 'i' ->
      advance ();
      expect ':';
      let t = scan_token () in
      (match int_of_string_opt t with
      | Some v -> Value.Int v
      | None -> raise (Bad ("bad int " ^ t)))
    | Some 'f' ->
      advance ();
      expect ':';
      let t = scan_token () in
      (match float_of_string_opt t with
      | Some v -> Value.Float v
      | None -> raise (Bad ("bad float " ^ t)))
    | Some 's' ->
      advance ();
      expect ':';
      Value.Str (unescape (scan_token ()))
    | Some 'o' ->
      advance ();
      expect ':';
      let t = scan_token () in
      (match int_of_string_opt t with
      | Some v -> Value.Obj (Oid.of_int v)
      | None -> raise (Bad ("bad oid " ^ t)))
    | Some 'l' ->
      advance ();
      expect '(';
      let items = ref [] in
      (match peek () with
      | Some ')' -> advance ()
      | _ ->
        let rec elems () =
          items := value () :: !items;
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ')' -> advance ()
          | _ -> raise (Bad "unterminated list")
        in
        elems ());
      Value.List (List.rev !items)
    | Some c -> raise (Bad (Printf.sprintf "unexpected %c" c))
  in
  try
    let v = value () in
    if !pos <> n then raise (Bad "trailing garbage");
    v
  with Bad msg -> parse_error "value %S: %s" s msg

(* --- writing ------------------------------------------------------------ *)

let oid_list oids =
  String.concat " " (List.map (fun c -> string_of_int (Oid.to_int c)) oids)

let emit_obj emit o =
  emit (Printf.sprintf "obj %d %s\n" (Oid.to_int o.id) o.cls);
  List.iter
    (fun (k, v) -> emit (Printf.sprintf "a %s %s\n" k (encode_value v)))
    (Heap.sorted_attrs o);
  if o.consumers <> [] then emit (Printf.sprintf "c %s\n" (oid_list o.consumers));
  emit "end\n"

let emit_classcons emit db =
  Hashtbl.fold (fun cls cs acc -> (cls, cs) :: acc) db.class_consumers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (cls, cs) ->
         if cs <> [] then
           emit (Printf.sprintf "classcons %s %s\n" cls (oid_list cs)))

let emit_indexes emit db =
  Hashtbl.fold (fun key ix acc -> (key, ix) :: acc) db.indexes []
  |> List.sort compare
  |> List.iter (fun ((cls, attr), ix) ->
         let kind =
           match ix.ix_backing with Ix_hash _ -> "hash" | Ix_ordered _ -> "ordered"
         in
         emit (Printf.sprintf "index %s %s %s\n" cls attr kind))

let write db emit =
  let pr fmt = Printf.ksprintf emit fmt in
  pr "%s\n" magic;
  pr "clock %d\n" db.now;
  pr "nextoid %d\n" db.next_oid;
  if db.wal_applied_seq > 0 then pr "walseq %d\n" db.wal_applied_seq;
  Oid.Table.fold (fun _ o acc -> o :: acc) db.objects []
  |> List.sort (fun a b -> Oid.compare a.id b.id)
  |> List.iter (emit_obj emit);
  emit_classcons emit db;
  emit_indexes emit db;
  pr "EOF\n"

let to_channel db oc = write db (output_string oc)

let to_string db =
  let buf = Buffer.create 4096 in
  write db (Buffer.add_string buf);
  Buffer.contents buf

(* Temp names carry the pid and a process-local counter so two stores saving
   to the same path — from this process or another — cannot clobber each
   other's in-flight file. *)
let tmp_counter = ref 0

let tmp_name path =
  incr tmp_counter;
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_counter

(* Write [emit_body]'s output crash-atomically to [path]: fsynced temp file,
   atomic rename, directory fsync.  Returns the bytes written. *)
let save_atomic storage db path emit_body =
  let tmp = tmp_name path in
  let bytes = ref 0 in
  let w = storage.Storage.open_writer ~append:false tmp in
  let emit s =
    bytes := !bytes + String.length s;
    w.Storage.write s
  in
  (try
     emit_body emit;
     w.Storage.fsync ();
     db.stats.wal_fsyncs <- db.stats.wal_fsyncs + 1;
     w.Storage.close ()
   with e ->
     w.Storage.close ();
     (try storage.Storage.unlink tmp with _ -> ());
     raise e);
  (* The snapshot becomes visible only whole: fsynced temp file, atomic
     rename, then directory fsync so the rename itself is durable. *)
  storage.Storage.rename tmp path;
  storage.Storage.fsync_dir path;
  !bytes

let save ?(storage = Storage.unix) db path =
  let bytes = save_atomic storage db path (write db) in
  db.stats.snapshot_bytes <- bytes;
  (* The snapshot is the new incremental-checkpoint baseline: it covers
     every applied WAL batch, and nothing is dirty relative to it. *)
  db.snapshot_seq <- db.wal_applied_seq;
  Heap.clear_dirty db

(* --- reading ------------------------------------------------------------ *)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let read db read_line =
  if Transaction.in_progress db then
    raise (Errors.Transaction_error "cannot load during a transaction");
  if Oid.Table.length db.objects > 0 then
    raise (Errors.Transaction_error "cannot load into a non-empty database");
  let lineno = ref 0 in
  let next_line () =
    match read_line () with
    | Some l ->
      incr lineno;
      Some l
    | None -> None
  in
  let fail fmt = Printf.ksprintf (fun m -> parse_error "line %d: %s" !lineno m) fmt in
  (match next_line () with
  | Some l when l = magic -> ()
  | _ -> fail "bad magic");
  let parse_oid w =
    match int_of_string_opt w with
    | Some n -> Oid.of_int n
    | None -> fail "bad oid %s" w
  in
  let pending_indexes = ref [] in
  let read_object oid cls =
    if not (Db.has_class db cls) then raise (Errors.No_such_class cls);
    let info = Heap.class_info db cls in
    (* `Empty seed: an attribute the snapshot does not carry (it predates an
       add_attribute) loads as absent, not as the current default *)
    let o = Heap.make_obj db ~id:oid ~cls ~info ~seed:`Empty ~consumers:[] in
    let rec body () =
      match next_line () with
      | None -> fail "unterminated object"
      | Some line -> (
        match split_words line with
        | [ "end" ] -> ()
        | "a" :: name :: [ enc ] ->
          (* loose: snapshot attributes the current schema no longer
             declares are dropped in slot mode, carried in table mode *)
          Heap.store_put_loose o name (decode_value enc);
          body ()
        | "c" :: oids ->
          o.consumers <- List.map parse_oid oids;
          body ()
        | _ -> fail "bad object body: %s" line)
    in
    body ();
    Heap.insert_obj db o
  in
  let rec toplevel () =
    match next_line () with
    | None -> fail "missing EOF marker"
    | Some line -> (
      match split_words line with
      | [ "EOF" ] -> ()
      | [ "clock"; v ] ->
        db.now <- (match int_of_string_opt v with Some n -> n | None -> fail "bad clock");
        toplevel ()
      | [ "nextoid"; v ] ->
        db.next_oid <-
          (match int_of_string_opt v with Some n -> n | None -> fail "bad nextoid");
        toplevel ()
      | [ "walseq"; v ] ->
        db.wal_applied_seq <-
          (match int_of_string_opt v with Some n -> n | None -> fail "bad walseq");
        toplevel ()
      | [ "obj"; oid; cls ] ->
        read_object (parse_oid oid) cls;
        toplevel ()
      | "classcons" :: cls :: oids ->
        if not (Db.has_class db cls) then raise (Errors.No_such_class cls);
        Hashtbl.replace db.class_consumers cls (List.map parse_oid oids);
        toplevel ()
      | [ "index"; cls; attr ] ->
        pending_indexes := (cls, attr, `Hash) :: !pending_indexes;
        toplevel ()
      | [ "index"; cls; attr; kind ] ->
        let kind =
          match kind with
          | "hash" -> `Hash
          | "ordered" -> `Ordered
          | other -> fail "unknown index kind %s" other
        in
        pending_indexes := (cls, attr, kind) :: !pending_indexes;
        toplevel ()
      | [] -> toplevel ()
      | _ -> fail "bad line: %s" line)
  in
  toplevel ();
  List.iter
    (fun (cls, attr, kind) -> Db.create_index db ~kind ~cls ~attr ())
    !pending_indexes;
  (* The loaded snapshot is the incremental-checkpoint baseline: everything
     it carries is clean relative to it. *)
  db.snapshot_seq <- db.wal_applied_seq;
  Heap.clear_dirty db

let of_channel db ic = read db (fun () -> In_channel.input_line ic)

let of_string db s =
  let lines = String.split_on_char '\n' s in
  let rest = ref lines in
  let next () =
    match !rest with
    | [] -> None
    | l :: tl ->
      rest := tl;
      Some l
  in
  read db next

let load ?(storage = Storage.unix) db path =
  let content = storage.Storage.read_file path in
  of_string db content;
  db.stats.snapshot_bytes <- String.length content

(* --- incremental (delta) checkpoints -------------------------------------

   A delta persists only the objects dirtied since the last snapshot
   artifact, chained to it by WAL sequence number:

     SENTINELDELTA 1
     prev <P>        sequence the previous chain element covered
     walseq <D>      sequence this delta covers through
     clock/nextoid   absolute values at delta time
     obj ... end     full record per dirty object (replace semantics)
     del <oid>       objects deleted since the previous element
     classcons/index full replacement (both sections are small)
     EOF

   A delta is valid on top of a store exactly when [prev] equals the
   store's [snapshot_seq]; a stale delta (e.g. left behind by a crashed
   compaction) fails that check and is ignored by recovery, which is safe
   because the WAL retains every batch past the base it chains from. *)

let delta_magic = "SENTINELDELTA 1"

let write_delta db emit =
  let pr fmt = Printf.ksprintf emit fmt in
  pr "%s\n" delta_magic;
  pr "prev %d\n" db.snapshot_seq;
  pr "walseq %d\n" db.wal_applied_seq;
  pr "clock %d\n" db.now;
  pr "nextoid %d\n" db.next_oid;
  Oid.Table.fold
    (fun oid () acc ->
      match Oid.Table.find_opt db.objects oid with
      | Some o when o.alive -> o :: acc
      | _ -> acc)
    db.dirty []
  |> List.sort (fun a b -> Oid.compare a.id b.id)
  |> List.iter (emit_obj emit);
  Oid.Table.fold (fun oid () acc -> oid :: acc) db.dirty_dead []
  |> List.sort Oid.compare
  |> List.iter (fun oid -> pr "del %d\n" (Oid.to_int oid));
  emit_classcons emit db;
  emit_indexes emit db;
  pr "EOF\n"

let save_delta ?(storage = Storage.unix) db path =
  let bytes = save_atomic storage db path (write_delta db) in
  (* This delta is the new baseline: the next one chains from here. *)
  db.snapshot_seq <- db.wal_applied_seq;
  Heap.clear_dirty db;
  bytes

let delta_header ?(storage = Storage.unix) path =
  if not (storage.Storage.exists path) then None
  else
    let content = try storage.Storage.read_file path with _ -> "" in
    match String.split_on_char '\n' content with
    | m :: p :: w :: _ when m = delta_magic -> (
      match (split_words p, split_words w) with
      | [ "prev"; p ], [ "walseq"; w ] -> (
        match (int_of_string_opt p, int_of_string_opt w) with
        | Some p, Some w -> Some (p, w)
        | _ -> None)
      | _ -> None)
    | _ -> None

let apply_delta ?(storage = Storage.unix) db path =
  if Transaction.in_progress db then
    raise (Errors.Transaction_error "cannot apply a delta during a transaction");
  match delta_header ~storage path with
  | None -> `Stale
  | Some (prev, dseq) when prev <> db.snapshot_seq || dseq < prev -> `Stale
  | Some (_, dseq) ->
    let lines = String.split_on_char '\n' (storage.Storage.read_file path) in
    let rest = ref lines and lineno = ref 0 in
    let next_line () =
      match !rest with
      | [] -> None
      | l :: tl ->
        rest := tl;
        incr lineno;
        Some l
    in
    let fail fmt =
      Printf.ksprintf (fun m -> parse_error "delta line %d: %s" !lineno m) fmt
    in
    let parse_int w =
      match int_of_string_opt w with Some n -> n | None -> fail "bad int %s" w
    in
    let parse_oid w = Oid.of_int (parse_int w) in
    (* Replaying mutations below must not re-journal them: the WAL already
       holds (or held) these batches. *)
    let saved_journal = db.on_journal in
    db.on_journal <- None;
    Fun.protect
      ~finally:(fun () -> db.on_journal <- saved_journal)
      (fun () ->
        let classcons = ref [] and desired_ix = ref [] in
        let apply_obj oid cls =
          if not (Db.has_class db cls) then raise (Errors.No_such_class cls);
          let info = Heap.class_info db cls in
          let o = Heap.make_obj db ~id:oid ~cls ~info ~seed:`Empty ~consumers:[] in
          let rec body () =
            match next_line () with
            | None -> fail "unterminated object"
            | Some line -> (
              match split_words line with
              | [ "end" ] -> ()
              | "a" :: name :: [ enc ] ->
                Heap.store_put_loose o name (decode_value enc);
                body ()
              | "c" :: oids ->
                o.consumers <- List.map parse_oid oids;
                body ()
              | _ -> fail "bad object body: %s" line)
          in
          body ();
          (* replace semantics: a base-snapshot version of the object gives
             way to the delta's newer record *)
          (match Oid.Table.find_opt db.objects oid with
          | Some old -> Heap.remove_obj db old
          | None -> ());
          Heap.insert_obj db o
        in
        let rec toplevel () =
          match next_line () with
          | None -> fail "missing EOF marker"
          | Some line -> (
            match split_words line with
            | [ "EOF" ] -> ()
            | [ "prev"; _ ] | [ "walseq"; _ ] -> toplevel ()
            | [ "clock"; v ] ->
              Db.advance_clock db (parse_int v);
              toplevel ()
            | [ "nextoid"; v ] ->
              db.next_oid <- max db.next_oid (parse_int v);
              toplevel ()
            | [ "obj"; oid; cls ] ->
              apply_obj (parse_oid oid) cls;
              toplevel ()
            | [ "del"; oid ] ->
              (* lenient: the object may never have reached the base *)
              (match Oid.Table.find_opt db.objects (parse_oid oid) with
              | Some o -> Heap.remove_obj db o
              | None -> ());
              toplevel ()
            | "classcons" :: cls :: oids ->
              if not (Db.has_class db cls) then raise (Errors.No_such_class cls);
              classcons := (cls, List.map parse_oid oids) :: !classcons;
              toplevel ()
            | [ "index"; cls; attr; kind ] ->
              let kind =
                match kind with
                | "hash" -> `Hash
                | "ordered" -> `Ordered
                | other -> fail "unknown index kind %s" other
              in
              desired_ix := (cls, attr, kind) :: !desired_ix;
              toplevel ()
            | [] -> toplevel ()
            | _ -> fail "bad line: %s" line)
        in
        (match next_line () with
        | Some l when l = delta_magic -> ()
        | _ -> fail "bad delta magic");
        toplevel ();
        (* full-replacement sections *)
        Hashtbl.reset db.class_consumers;
        List.iter
          (fun (cls, oids) -> Hashtbl.replace db.class_consumers cls oids)
          !classcons;
        db.class_sub_gen <- db.class_sub_gen + 1;
        let current =
          Hashtbl.fold
            (fun (cls, attr) ix acc ->
              let kind =
                match ix.ix_backing with
                | Ix_hash _ -> `Hash
                | Ix_ordered _ -> `Ordered
              in
              (cls, attr, kind) :: acc)
            db.indexes []
        in
        List.iter
          (fun (cls, attr, kind) ->
            (* kind mismatch drops too: the create pass rebuilds it *)
            if not (List.mem (cls, attr, kind) !desired_ix) then
              Db.drop_index db ~cls ~attr)
          current;
        List.iter
          (fun (cls, attr, kind) ->
            if not (Hashtbl.mem db.indexes (cls, attr)) then
              Db.create_index db ~kind ~cls ~attr ())
          !desired_ix);
    db.wal_applied_seq <- max db.wal_applied_seq dseq;
    db.snapshot_seq <- dseq;
    Heap.clear_dirty db;
    `Applied
