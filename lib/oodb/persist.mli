(** Persistence — the role Zeitgeist's [zg-pos] class plays in the paper.

    The store is serialized to a line-oriented text format: the logical
    clock, every live object (OID, class, attributes, consumers list),
    class-level consumer lists, and index declarations.  Because rule and
    event objects are ordinary objects, they persist like everything else;
    what does {e not} persist is executable code — method bodies and rule
    conditions/actions — which is re-bound from registered classes and the
    rule layer's function registry after loading, exactly as Sentinel
    re-links C++ member-function pointers.

    Loading therefore requires the same class definitions to be registered
    in the target database first; the loader fails on objects of unknown
    classes. *)

val to_channel : Db.t -> out_channel -> unit
val to_string : Db.t -> string

val save : ?storage:Storage.t -> Db.t -> string -> unit
(** [save db path] writes crash-atomically: a per-process-unique temp file
    is written, fsynced and atomically renamed over [path], then the
    containing directory is fsynced — a crash at any point leaves either
    the old snapshot or the new one, never a torn mix, and a failure while
    serializing removes the temp file.  The snapshot records the store's
    {!Wal} high-water sequence number ([walseq]), so replaying a log that
    predates it cannot double-apply batches.  [storage] (default
    {!Storage.unix}) selects the I/O backend. *)

val of_channel : Db.t -> in_channel -> unit
(** [of_channel db ic] populates [db] — which must contain no objects but
    must already have all needed classes registered — from the stream.
    @raise Errors.Parse_error on malformed input
    @raise Errors.No_such_class for objects of unregistered classes
    @raise Errors.Transaction_error when [db] already contains objects or a
    transaction is open. *)

val of_string : Db.t -> string -> unit

val load : ?storage:Storage.t -> Db.t -> string -> unit
(** Read a snapshot file through [storage] (default {!Storage.unix}). *)

(** {1 Value encoding} (exposed for tests) *)

val encode_value : Value.t -> string
(** Single-token, whitespace-free encoding. *)

val decode_value : string -> Value.t
(** @raise Errors.Parse_error *)
