(** Persistence — the role Zeitgeist's [zg-pos] class plays in the paper.

    The store is serialized to a line-oriented text format: the logical
    clock, every live object (OID, class, attributes, consumers list),
    class-level consumer lists, and index declarations.  Because rule and
    event objects are ordinary objects, they persist like everything else;
    what does {e not} persist is executable code — method bodies and rule
    conditions/actions — which is re-bound from registered classes and the
    rule layer's function registry after loading, exactly as Sentinel
    re-links C++ member-function pointers.

    Loading therefore requires the same class definitions to be registered
    in the target database first; the loader fails on objects of unknown
    classes. *)

val to_channel : Db.t -> out_channel -> unit
val to_string : Db.t -> string

val save : ?storage:Storage.t -> Db.t -> string -> unit
(** [save db path] writes crash-atomically: a per-process-unique temp file
    is written, fsynced and atomically renamed over [path], then the
    containing directory is fsynced — a crash at any point leaves either
    the old snapshot or the new one, never a torn mix, and a failure while
    serializing removes the temp file.  The snapshot records the store's
    {!Wal} high-water sequence number ([walseq]), so replaying a log that
    predates it cannot double-apply batches.  [storage] (default
    {!Storage.unix}) selects the I/O backend. *)

val of_channel : Db.t -> in_channel -> unit
(** [of_channel db ic] populates [db] — which must contain no objects but
    must already have all needed classes registered — from the stream.
    @raise Errors.Parse_error on malformed input
    @raise Errors.No_such_class for objects of unregistered classes
    @raise Errors.Transaction_error when [db] already contains objects or a
    transaction is open. *)

val of_string : Db.t -> string -> unit

val load : ?storage:Storage.t -> Db.t -> string -> unit
(** Read a snapshot file through [storage] (default {!Storage.unix}). *)

(** {1 Incremental (delta) checkpoints}

    A delta persists only the objects created, mutated or deleted since the
    last snapshot artifact (base snapshot or previous delta), chained to it
    by WAL sequence number: the delta's [prev] header must equal the
    store's [snapshot_seq] for the delta to apply.  Written with the same
    tmp+fsync+rename+dir-fsync discipline as {!save}.  {!Wal.checkpoint}
    with [~mode:`Delta] and {!Wal.recover} drive these; they are exposed
    here for tests and tooling. *)

val save_delta : ?storage:Storage.t -> Db.t -> string -> int
(** [save_delta db path] writes the dirty set as a delta chained to the
    current baseline, makes the delta the new baseline (clears the dirty
    set, advances [snapshot_seq]) and returns the bytes written. *)

val apply_delta : ?storage:Storage.t -> Db.t -> string -> [ `Applied | `Stale ]
(** [apply_delta db path] applies the delta on top of the store's current
    state.  Returns [`Stale] without touching the store when the chain
    check fails ([prev] does not match [snapshot_seq]) or the file is not a
    delta — recovery treats that as the end of the usable chain.
    @raise Errors.Parse_error on a malformed body past the header
    @raise Errors.Transaction_error when a transaction is open. *)

val delta_header : ?storage:Storage.t -> string -> (int * int) option
(** [(prev, walseq)] from a delta file's header, or [None] when the file is
    missing or not a delta. *)

(** {1 Value encoding} (exposed for tests) *)

val encode_value : Value.t -> string
(** Single-token, whitespace-free encoding. *)

val decode_value : string -> Value.t
(** @raise Errors.Parse_error *)
