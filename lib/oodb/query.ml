type pred =
  | True
  | Eq of string * Value.t
  | Ne of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Has of string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(* Object fetches performed by [matches]: the E-oltp bench asserts one fetch
   per evaluated candidate, however many attribute nodes the predicate has. *)
let probe_count = ref 0
let probes () = !probe_count
let reset_probes () = probe_count := 0

let matches db oid p =
  (* fetch the candidate once; every attribute node reads the pinned object *)
  let o = Heap.find_obj db oid in
  incr probe_count;
  let rec eval p =
    let attr name = Heap.obj_get o name in
    let cmp name v f =
      match attr name with
      | Some actual -> f (Value.compare actual v)
      | None -> false
    in
    match p with
    | True -> true
    | Eq (name, v) -> cmp name v (fun c -> c = 0)
    | Ne (name, v) -> cmp name v (fun c -> c <> 0)
    | Lt (name, v) -> cmp name v (fun c -> c < 0)
    | Le (name, v) -> cmp name v (fun c -> c <= 0)
    | Gt (name, v) -> cmp name v (fun c -> c > 0)
    | Ge (name, v) -> cmp name v (fun c -> c >= 0)
    | Has name -> (
      match attr name with Some v -> not (Value.is_null v) | None -> false)
    | And (a, b) -> eval a && eval b
    | Or (a, b) -> eval a || eval b
    | Not a -> not (eval a)
  in
  eval p

(* Index access-path selection over the predicate's top-level conjuncts:
   an equality on any index wins; otherwise all comparison conjuncts on one
   ordered-indexed attribute fold into a single range probe (so
   [salary >= a AND salary < b] becomes one B+-tree scan). *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

(* Tighten (lo, hi) bounds; lo takes the larger lower bound, hi the
   smaller upper bound.  (value, inclusive) as in Db.index_range. *)
let tighten_lo current candidate =
  match (current, candidate) with
  | None, c -> Some c
  | Some (v, i), (w, j) ->
    let cmp = Value.compare v w in
    if cmp < 0 then Some (w, j)
    else if cmp > 0 then Some (v, i)
    else Some (v, i && j)

let tighten_hi current candidate =
  match (current, candidate) with
  | None, c -> Some c
  | Some (v, i), (w, j) ->
    let cmp = Value.compare v w in
    if cmp > 0 then Some (w, j)
    else if cmp < 0 then Some (v, i)
    else Some (v, i && j)

(* A disjunction every branch of which is an equality covered by an index
   plans as a deduplicated union of index probes instead of a full extent
   scan.  Any other branch shape poisons the union: the candidate set must
   be a superset of the matching set, and only full coverage of every
   disjunct guarantees that. *)
let rec union_eqs db cls p acc =
  match (p, acc) with
  | _, None -> None
  | Or (a, b), _ -> union_eqs db cls b (union_eqs db cls a acc)
  | Eq (name, v), Some eqs when Db.has_index db ~cls ~attr:name ->
    Some ((name, v) :: eqs)
  | _, Some _ -> None

let indexed_plan db cls p =
  let cs = conjuncts p in
  let eq =
    List.find_map
      (function
        | Eq (name, v) when Db.has_index db ~cls ~attr:name -> Some (name, v)
        | _ -> None)
      cs
  in
  match eq with
  | Some (attr, v) -> Some (`Eq (attr, v))
  | None -> (
    let union =
      List.find_map
        (function
          | Or _ as c -> (
            match union_eqs db cls c (Some []) with
            | Some eqs -> Some (`Union eqs)
            | None -> None)
          | _ -> None)
        cs
    in
    match union with
    | Some _ as u -> u
    | None -> (
      let ordered name = Db.index_kind db ~cls ~attr:name = Some `Ordered in
      let range_attr =
        List.find_map
          (function
            | (Lt (name, _) | Le (name, _) | Gt (name, _) | Ge (name, _))
              when ordered name ->
              Some name
            | _ -> None)
          cs
      in
      match range_attr with
      | None -> None
      | Some attr ->
        let fold (lo, hi) = function
          | Lt (name, v) when name = attr -> (lo, tighten_hi hi (v, false))
          | Le (name, v) when name = attr -> (lo, tighten_hi hi (v, true))
          | Gt (name, v) when name = attr -> (tighten_lo lo (v, false), hi)
          | Ge (name, v) when name = attr -> (tighten_lo lo (v, true), hi)
          | _ -> (lo, hi)
        in
        let lo, hi = List.fold_left fold (None, None) cs in
        Some (`Range (attr, lo, hi))))

let candidates db ~deep cls p =
  match if deep then indexed_plan db cls p else None with
  | Some (`Eq (attr, v)) -> Db.index_lookup db ~cls ~attr v
  | Some (`Union eqs) ->
    (* distinct probes can return overlapping OID sets (and Or branches can
       repeat a key): sort_uniq both dedupes and restores OID order *)
    List.sort_uniq Oid.compare
      (List.concat_map (fun (attr, v) -> Db.index_lookup db ~cls ~attr v) eqs)
  | Some (`Range (attr, lo, hi)) -> Db.index_range db ~cls ~attr ?lo ?hi ()
  | None -> Db.extent db ~deep cls

let select db ?(deep = true) cls p =
  List.filter (fun oid -> matches db oid p) (candidates db ~deep cls p)

let count db ?(deep = true) cls p =
  (* counting never needs the result list: fold the scan directly *)
  List.fold_left
    (fun n oid -> if matches db oid p then n + 1 else n)
    0
    (candidates db ~deep cls p)

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Eq (a, v) -> Format.fprintf ppf "%s = %a" a Value.pp v
  | Ne (a, v) -> Format.fprintf ppf "%s <> %a" a Value.pp v
  | Lt (a, v) -> Format.fprintf ppf "%s < %a" a Value.pp v
  | Le (a, v) -> Format.fprintf ppf "%s <= %a" a Value.pp v
  | Gt (a, v) -> Format.fprintf ppf "%s > %a" a Value.pp v
  | Ge (a, v) -> Format.fprintf ppf "%s >= %a" a Value.pp v
  | Has a -> Format.fprintf ppf "has %s" a
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "(not %a)" pp_pred a
