type pred =
  | True
  | Eq of string * Value.t
  | Ne of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Has of string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(* Object fetches performed by [matches]: the E-oltp bench asserts one fetch
   per evaluated candidate, however many attribute nodes the predicate has. *)
let probe_count = ref 0
let probes () = !probe_count
let reset_probes () = probe_count := 0

let matches db oid p =
  (* fetch the candidate once; every attribute node reads the pinned object *)
  let o = Heap.find_obj db oid in
  incr probe_count;
  let rec eval p =
    let attr name = Heap.obj_get o name in
    let cmp name v f =
      match attr name with
      | Some actual -> f (Value.compare actual v)
      | None -> false
    in
    match p with
    | True -> true
    | Eq (name, v) -> cmp name v (fun c -> c = 0)
    | Ne (name, v) -> cmp name v (fun c -> c <> 0)
    | Lt (name, v) -> cmp name v (fun c -> c < 0)
    | Le (name, v) -> cmp name v (fun c -> c <= 0)
    | Gt (name, v) -> cmp name v (fun c -> c > 0)
    | Ge (name, v) -> cmp name v (fun c -> c >= 0)
    | Has name -> (
      match attr name with Some v -> not (Value.is_null v) | None -> false)
    | And (a, b) -> eval a && eval b
    | Or (a, b) -> eval a || eval b
    | Not a -> not (eval a)
  in
  eval p

(* Index access-path selection over the predicate's top-level conjuncts:
   an equality on any index wins; otherwise all comparison conjuncts on one
   ordered-indexed attribute fold into a single range probe (so
   [salary >= a AND salary < b] becomes one B+-tree scan). *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

(* Tighten (lo, hi) bounds; lo takes the larger lower bound, hi the
   smaller upper bound.  (value, inclusive) as in Db.index_range. *)
let tighten_lo current candidate =
  match (current, candidate) with
  | None, c -> Some c
  | Some (v, i), (w, j) ->
    let cmp = Value.compare v w in
    if cmp < 0 then Some (w, j)
    else if cmp > 0 then Some (v, i)
    else Some (v, i && j)

let tighten_hi current candidate =
  match (current, candidate) with
  | None, c -> Some c
  | Some (v, i), (w, j) ->
    let cmp = Value.compare v w in
    if cmp > 0 then Some (w, j)
    else if cmp < 0 then Some (v, i)
    else Some (v, i && j)

let indexed_plan db cls p =
  let cs = conjuncts p in
  let eq =
    List.find_map
      (function
        | Eq (name, v) when Db.has_index db ~cls ~attr:name -> Some (name, v)
        | _ -> None)
      cs
  in
  match eq with
  | Some (attr, v) -> Some (`Eq (attr, v))
  | None -> (
    let ordered name = Db.index_kind db ~cls ~attr:name = Some `Ordered in
    let range_attr =
      List.find_map
        (function
          | (Lt (name, _) | Le (name, _) | Gt (name, _) | Ge (name, _))
            when ordered name ->
            Some name
          | _ -> None)
        cs
    in
    match range_attr with
    | None -> None
    | Some attr ->
      let fold (lo, hi) = function
        | Lt (name, v) when name = attr -> (lo, tighten_hi hi (v, false))
        | Le (name, v) when name = attr -> (lo, tighten_hi hi (v, true))
        | Gt (name, v) when name = attr -> (tighten_lo lo (v, false), hi)
        | Ge (name, v) when name = attr -> (tighten_lo lo (v, true), hi)
        | _ -> (lo, hi)
      in
      let lo, hi = List.fold_left fold (None, None) cs in
      Some (`Range (attr, lo, hi)))

let select db ?(deep = true) cls p =
  let candidates =
    match if deep then indexed_plan db cls p else None with
    | Some (`Eq (attr, v)) -> Db.index_lookup db ~cls ~attr v
    | Some (`Range (attr, lo, hi)) -> Db.index_range db ~cls ~attr ?lo ?hi ()
    | None -> Db.extent db ~deep cls
  in
  List.filter (fun oid -> matches db oid p) candidates

let count db ?deep cls p = List.length (select db ?deep cls p)

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Eq (a, v) -> Format.fprintf ppf "%s = %a" a Value.pp v
  | Ne (a, v) -> Format.fprintf ppf "%s <> %a" a Value.pp v
  | Lt (a, v) -> Format.fprintf ppf "%s < %a" a Value.pp v
  | Le (a, v) -> Format.fprintf ppf "%s <= %a" a Value.pp v
  | Gt (a, v) -> Format.fprintf ppf "%s > %a" a Value.pp v
  | Ge (a, v) -> Format.fprintf ppf "%s >= %a" a Value.pp v
  | Has a -> Format.fprintf ppf "has %s" a
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "(not %a)" pp_pred a
