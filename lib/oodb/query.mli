(** Predicate-based selection over class extents.

    A small query facility so the substrate is a usable database on its own:
    conditions and actions of rules, and the examples, select objects by
    attribute predicates.  Top-level equality conjuncts use a matching hash
    index when one exists. *)

type pred =
  | True
  | Eq of string * Value.t
  | Ne of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Has of string  (** attribute present and non-null *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val matches : Db.t -> Oid.t -> pred -> bool
(** Evaluate a predicate against one object.  A predicate naming an
    attribute the object lacks is simply false (rather than an error), so
    queries over heterogeneous deep extents behave sensibly.  The object is
    fetched once per call; attribute nodes read the pinned object rather
    than re-resolving the OID. *)

val probes : unit -> int
(** Process-wide count of object fetches performed by {!matches} — one per
    evaluated candidate.  The E-oltp benchmark uses it to verify the
    fetch-once contract. *)

val reset_probes : unit -> unit

val select : Db.t -> ?deep:bool -> string -> pred -> Oid.t list
(** [select db cls p] returns the instances of [cls] (by default including
    subclasses) satisfying [p], in OID order.  When [p] contains a top-level
    equality conjunct covered by an index on [cls], candidates come from the
    index instead of a full extent scan; a top-level disjunction whose every
    branch is an indexed equality becomes a deduplicated union of index
    probes. *)

val count : Db.t -> ?deep:bool -> string -> pred -> int
(** Like {!select} but counts during the scan — the filtered list is never
    materialized. *)

val pp_pred : Format.formatter -> pred -> unit
