type mode = Shared | Exclusive

type manager = {
  m_db : Db.t;
  (* object -> (session id -> mode held) *)
  locks : (int, mode) Hashtbl.t Oid.Table.t;
  mutable next_session : int;
  mutable n_conflicts : int;
}

type t = {
  s_id : int;
  s_name : string;
  s_manager : manager;
  mutable s_active : bool;
  mutable s_held : Oid.Set.t;
  mutable s_undo : (unit -> unit) list; (* newest first *)
}

let manager db =
  { m_db = db; locks = Oid.Table.create 64; next_session = 1; n_conflicts = 0 }

let session ?name m =
  let id = m.next_session in
  m.next_session <- id + 1;
  let s_name =
    match name with Some n -> n | None -> Printf.sprintf "session-%d" id
  in
  { s_id = id; s_name; s_manager = m; s_active = false; s_held = Oid.Set.empty; s_undo = [] }

let name s = s.s_name
let active s = s.s_active
let conflicts m = m.n_conflicts

let require_active s what =
  if not s.s_active then
    raise
      (Errors.Transaction_error
         (Printf.sprintf "%s: session %s has no open transaction" what s.s_name))

let begin_ s =
  if s.s_active then
    raise
      (Errors.Transaction_error
         (Printf.sprintf "session %s already has an open transaction" s.s_name));
  if Transaction.in_progress s.s_manager.m_db then
    raise
      (Errors.Transaction_error
         "cannot open a session transaction while a global transaction is in \
          progress");
  s.s_active <- true;
  s.s_undo <- [];
  s.s_held <- Oid.Set.empty

(* --- locking ---------------------------------------------------------------- *)

let holders m oid =
  match Oid.Table.find_opt m.locks oid with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 4 in
    Oid.Table.replace m.locks oid h;
    h

let conflict m oid others =
  m.n_conflicts <- m.n_conflicts + 1;
  raise (Errors.Lock_conflict (oid, others))

let describe_holders h except =
  Hashtbl.fold
    (fun id mode acc ->
      if id = except then acc
      else
        Printf.sprintf "session-%d:%s" id
          (match mode with Shared -> "S" | Exclusive -> "X")
        :: acc)
    h []
  |> String.concat ", "

let acquire s oid mode =
  require_active s "lock acquisition";
  let m = s.s_manager in
  let h = holders m oid in
  let mine = Hashtbl.find_opt h s.s_id in
  let others_with pred =
    Hashtbl.fold
      (fun id held acc -> acc || (id <> s.s_id && pred held))
      h false
  in
  (match (mode, mine) with
  | Shared, Some _ -> () (* any held mode covers a shared request *)
  | Shared, None ->
    if others_with (fun held -> held = Exclusive) then
      conflict m oid ("exclusively held by " ^ describe_holders h s.s_id)
    else Hashtbl.replace h s.s_id Shared
  | Exclusive, Some Exclusive -> ()
  | Exclusive, (Some Shared | None) ->
    if others_with (fun _ -> true) then
      conflict m oid ("held by " ^ describe_holders h s.s_id)
    else Hashtbl.replace h s.s_id Exclusive);
  s.s_held <- Oid.Set.add oid s.s_held

let release_all s =
  let m = s.s_manager in
  Oid.Set.iter
    (fun oid ->
      match Oid.Table.find_opt m.locks oid with
      | None -> ()
      | Some h ->
        Hashtbl.remove h s.s_id;
        if Hashtbl.length h = 0 then Oid.Table.remove m.locks oid)
    s.s_held;
  s.s_held <- Oid.Set.empty

let locks_held s =
  let m = s.s_manager in
  Oid.Set.elements s.s_held
  |> List.filter_map (fun oid ->
         match Oid.Table.find_opt m.locks oid with
         | None -> None
         | Some h -> (
           match Hashtbl.find_opt h s.s_id with
           | Some Shared -> Some (oid, `Shared)
           | Some Exclusive -> Some (oid, `Exclusive)
           | None -> None))

(* --- transaction end --------------------------------------------------------- *)

let commit s =
  require_active s "commit";
  s.s_active <- false;
  s.s_undo <- [];
  release_all s

let abort s =
  require_active s "abort";
  s.s_active <- false;
  let undo = s.s_undo in
  s.s_undo <- [];
  List.iter (fun f -> f ()) undo;
  release_all s

(* --- data access -------------------------------------------------------------- *)

let get s oid attr =
  require_active s "get";
  acquire s oid Shared;
  Db.get s.s_manager.m_db oid attr

let set s oid attr v =
  require_active s "set";
  acquire s oid Exclusive;
  let db = s.s_manager.m_db in
  let old = Db.get db oid attr in
  s.s_undo <- (fun () -> Db.set db oid attr old) :: s.s_undo;
  Db.set db oid attr v

(* Snapshot an object's attributes so a session abort can restore state the
   method body changed on the receiver. *)
let snapshot_attrs db oid =
  let saved = Db.attrs db oid in
  fun () -> List.iter (fun (attr, v) -> Db.set db oid attr v) saved

let send s oid meth args =
  require_active s "send";
  acquire s oid Exclusive;
  let db = s.s_manager.m_db in
  s.s_undo <- snapshot_attrs db oid :: s.s_undo;
  Db.send db oid meth args

let new_object s ?attrs cls =
  require_active s "new_object";
  let db = s.s_manager.m_db in
  let oid = Db.new_object db ?attrs cls in
  (* born locked: the creator holds it exclusively until commit *)
  let h = holders s.s_manager oid in
  Hashtbl.replace h s.s_id Exclusive;
  s.s_held <- Oid.Set.add oid s.s_held;
  s.s_undo <- (fun () -> Db.delete_object db oid) :: s.s_undo;
  oid

let delete_object s oid =
  require_active s "delete_object";
  acquire s oid Exclusive;
  let db = s.s_manager.m_db in
  (* capture everything needed to resurrect the same identity on abort *)
  let cls = Db.class_of db oid in
  let saved = Db.attrs db oid in
  let consumers = Db.consumers_of db oid in
  let resurrect () =
    let info = Heap.class_info db cls in
    let o = Heap.make_obj db ~id:oid ~cls ~info ~seed:`Empty ~consumers in
    List.iter (fun (attr, v) -> Heap.store_put_raw o attr v) saved;
    Heap.insert_obj db o
  in
  s.s_undo <- resurrect :: s.s_undo;
  Db.delete_object db oid
