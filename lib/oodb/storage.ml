type writer = {
  write : string -> unit;
  flush : unit -> unit;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  name : string;
  exists : string -> bool;
  size : string -> int;
  read_file : string -> string;
  open_writer : append:bool -> string -> writer;
  rename : string -> string -> unit;
  unlink : string -> unit;
  truncate : string -> int -> unit;
  fsync_dir : string -> unit;
}

exception Crash

(* --- retry ---------------------------------------------------------------- *)

let default_backoff attempt =
  try Unix.sleepf (0.002 *. float_of_int (1 lsl min (attempt - 1) 6))
  with Unix.Unix_error _ -> ()

let with_retries ?(attempts = 5) ?(backoff = default_backoff) f =
  let rec go n =
    try f ()
    with Errors.Io_error _ when n + 1 < attempts ->
      backoff (n + 1);
      go (n + 1)
  in
  go 0

(* --- CRC-32 --------------------------------------------------------------- *)

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             c :=
               if Int32.logand !c 1l <> 0l then
                 Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
               else Int32.shift_right_logical !c 1
           done;
           !c))

  let string ?(crc = 0l) s =
    let t = Lazy.force table in
    let c = ref (Int32.lognot crc) in
    String.iter
      (fun ch ->
        let i =
          Int32.to_int
            (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
        in
        c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
      s;
    Int32.lognot !c

  let to_hex c = Printf.sprintf "%08lx" c
end

(* --- the real filesystem -------------------------------------------------- *)

let unix_fsync_oc oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let unix =
  {
    name = "unix";
    exists = Sys.file_exists;
    size =
      (fun path ->
        match Unix.stat path with
        | { Unix.st_size; _ } -> st_size
        | exception Unix.Unix_error _ -> 0);
    read_file =
      (fun path -> In_channel.with_open_bin path In_channel.input_all);
    open_writer =
      (fun ~append path ->
        let flags =
          Open_wronly :: Open_creat :: Open_binary
          :: (if append then [ Open_append ] else [ Open_trunc ])
        in
        let oc = open_out_gen flags 0o644 path in
        {
          write = (fun s -> output_string oc s);
          flush = (fun () -> flush oc);
          fsync = (fun () -> unix_fsync_oc oc);
          close = (fun () -> close_out_noerr oc);
        });
    rename = Sys.rename;
    unlink = (fun path -> if Sys.file_exists path then Sys.remove path);
    truncate = Unix.truncate;
    fsync_dir =
      (fun path ->
        (* Not every filesystem lets you fsync a directory fd; durability of
           the rename is best effort there, and failure is not an error the
           caller can act on. *)
        match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
        | fd ->
          (try Unix.fsync fd with Unix.Unix_error _ -> ());
          Unix.close fd
        | exception Unix.Unix_error _ -> ());
  }

(* --- the fault-injecting in-memory filesystem ----------------------------- *)

module Mem = struct
  type file = { mutable durable : string; pending : Buffer.t }

  type fs = {
    table : (string, file) Hashtbl.t;
    cache : bool;
    mutable crash_bytes : int option;
    mutable crash_ops : int option;
    mutable crash_reads : int option;
    mutable transient : int;
    mutable crashed : bool;
    mutable n_fsyncs : int;
    mutable n_ops : int;
  }

  let create ?(cache = false) () =
    {
      table = Hashtbl.create 8;
      cache;
      crash_bytes = None;
      crash_ops = None;
      crash_reads = None;
      transient = 0;
      crashed = false;
      n_fsyncs = 0;
      n_ops = 0;
    }

  let crash_after_bytes fs n = fs.crash_bytes <- Some n
  let crash_after_ops fs n = fs.crash_ops <- Some n
  let crash_after_reads fs n = fs.crash_reads <- Some n
  let fail_writes fs n = fs.transient <- n

  let clear_faults fs =
    fs.crash_bytes <- None;
    fs.crash_ops <- None;
    fs.crash_reads <- None;
    fs.transient <- 0;
    fs.crashed <- false

  let fsyncs fs = fs.n_fsyncs
  let ops fs = fs.n_ops

  (* Every mutating operation passes through here: it honours a pending
     crash-after-ops budget and keeps raising once crashed. *)
  let op fs =
    if fs.crashed then raise Crash;
    (match fs.crash_ops with
    | Some n when n <= 0 ->
      fs.crashed <- true;
      raise Crash
    | Some n -> fs.crash_ops <- Some (n - 1)
    | None -> ());
    fs.n_ops <- fs.n_ops + 1

  let promote f =
    f.durable <- f.durable ^ Buffer.contents f.pending;
    Buffer.clear f.pending

  let find fs path = Hashtbl.find_opt fs.table path

  let get fs path =
    match find fs path with
    | Some f -> f
    | None ->
      let f = { durable = ""; pending = Buffer.create 64 } in
      Hashtbl.replace fs.table path f;
      f

  let live f = f.durable ^ Buffer.contents f.pending

  let contents fs path = match find fs path with Some f -> live f | None -> ""
  let durable fs path = match find fs path with Some f -> f.durable | None -> ""

  let set_file fs path s =
    let f = get fs path in
    f.durable <- s;
    Buffer.clear f.pending

  let files fs =
    Hashtbl.fold (fun k _ acc -> k :: acc) fs.table [] |> List.sort compare

  let reboot fs =
    let fs' = create ~cache:fs.cache () in
    Hashtbl.iter (fun path f -> set_file fs' path f.durable) fs.table;
    fs'

  let append fs f s =
    Buffer.add_string f.pending s;
    if not fs.cache then promote f

  let write fs f s =
    if fs.crashed then raise Crash;
    if fs.transient > 0 then begin
      fs.transient <- fs.transient - 1;
      raise (Errors.Io_error "injected transient write failure")
    end;
    op fs;
    match fs.crash_bytes with
    | Some budget when String.length s > budget ->
      (* the crash tears the write in flight: only a prefix lands *)
      append fs f (String.sub s 0 budget);
      fs.crash_bytes <- Some 0;
      fs.crashed <- true;
      raise Crash
    | Some budget ->
      fs.crash_bytes <- Some (budget - String.length s);
      append fs f s
    | None -> append fs f s

  let storage fs =
    {
      name = "mem";
      exists = (fun path -> Hashtbl.mem fs.table path);
      size = (fun path -> String.length (contents fs path));
      read_file =
        (fun path ->
          (* reads honour their own crash budget: recovery is a read-only
             pipeline, so interrupting it needs a read-side fault.  The
             budget stays exhausted (reads keep crashing) until
             [clear_faults]. *)
          (match fs.crash_reads with
          | Some n when n <= 0 ->
            fs.crashed <- true;
            raise Crash
          | Some n -> fs.crash_reads <- Some (n - 1)
          | None -> ());
          match find fs path with
          | Some f -> live f
          | None -> raise (Sys_error (path ^ ": No such file or directory")));
      open_writer =
        (fun ~append:app path ->
          op fs;
          let f = get fs path in
          if not app then begin
            f.durable <- "";
            Buffer.clear f.pending
          end;
          {
            write = (fun s -> write fs f s);
            flush = (fun () -> ());
            fsync =
              (fun () ->
                op fs;
                promote f;
                fs.n_fsyncs <- fs.n_fsyncs + 1);
            close = (fun () -> ());
          });
      rename =
        (fun src dst ->
          op fs;
          match find fs src with
          | None -> raise (Sys_error (src ^ ": No such file or directory"))
          | Some f ->
            Hashtbl.remove fs.table src;
            Hashtbl.replace fs.table dst f);
      unlink =
        (fun path ->
          op fs;
          Hashtbl.remove fs.table path);
      truncate =
        (fun path n ->
          op fs;
          let f = get fs path in
          let s = live f in
          f.durable <- String.sub s 0 (min n (String.length s));
          Buffer.clear f.pending);
      fsync_dir = (fun _ -> op fs);
    }
end
